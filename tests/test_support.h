/**
 * @file
 * Helpers shared by the runtime-facing test suites (test_batched,
 * test_runtime, test_sched): bitwise comparison of linalg containers
 * and random DynamicsRequest batches. One definition here instead of
 * a drifting copy per suite.
 */

#ifndef DADU_TESTS_TEST_SUPPORT_H
#define DADU_TESTS_TEST_SUPPORT_H

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "linalg/matrixx.h"
#include "linalg/vec.h"
#include "model/robot_model.h"
#include "runtime/request.h"

namespace dadu::tests {

inline void
expectBitwiseEqual(const linalg::VectorX &a, const linalg::VectorX &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

inline void
expectBitwiseEqual(const linalg::MatrixX &a, const linalg::MatrixX &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            EXPECT_EQ(a(r, c), b(r, c));
}

inline std::vector<runtime::DynamicsRequest>
randomRequests(const model::RobotModel &robot, int n, unsigned seed)
{
    std::mt19937 rng(seed);
    std::vector<runtime::DynamicsRequest> reqs(n);
    for (auto &r : reqs) {
        r.q = robot.randomConfiguration(rng);
        r.qd = robot.randomVelocity(rng);
        r.qdd_or_tau = robot.randomVelocity(rng);
    }
    return reqs;
}

} // namespace dadu::tests

#endif // DADU_TESTS_TEST_SUPPORT_H
