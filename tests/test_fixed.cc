/**
 * @file
 * Tests for fixed-point arithmetic and the Taylor trigonometric
 * module.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "fixed/fixed_point.h"
#include "fixed/trig.h"

namespace {

using dadu::fixed::Fix;
using dadu::fixed::FixedPoint;
using dadu::fixed::reciprocal;
using dadu::fixed::reciprocalRefined;
using dadu::fixed::reduceAngle;
using dadu::fixed::taylorSinCos;

TEST(FixedPoint, RoundTripConversion)
{
    for (double v : {0.0, 1.0, -1.0, 3.14159, -123.456, 1e-6}) {
        const Fix f(v);
        EXPECT_NEAR(f.toDouble(), v, 1.0 / Fix::scale);
    }
}

TEST(FixedPoint, AdditionIsExact)
{
    const Fix a(1.25), b(-0.75);
    EXPECT_DOUBLE_EQ((a + b).toDouble(), 0.5);
    EXPECT_DOUBLE_EQ((a - b).toDouble(), 2.0);
    EXPECT_DOUBLE_EQ((-a).toDouble(), -1.25);
}

TEST(FixedPoint, MultiplicationNearExact)
{
    std::mt19937 rng(9);
    std::uniform_real_distribution<double> d(-100.0, 100.0);
    for (int i = 0; i < 1000; ++i) {
        const double x = d(rng), y = d(rng);
        const Fix fx(x), fy(y);
        EXPECT_NEAR((fx * fy).toDouble(), x * y, 1e-5);
    }
}

TEST(FixedPoint, MultiplicationTruncatesTowardZeroSymmetrically)
{
    // Regression: the multiply used a bare arithmetic right shift,
    // which floors — so negative products picked up a -1 ULP bias
    // while positive products truncated toward zero. The documented
    // DSP-truncation drops the fractional tail for either sign, so
    // negation must commute with multiplication at the raw level.

    // The minimal biased case: |product| has only fractional bits.
    const Fix tiny_a = Fix::fromRaw(3), tiny_b = Fix::fromRaw(1);
    EXPECT_EQ((tiny_a * tiny_b).raw(), 0);
    EXPECT_EQ(((-tiny_a) * tiny_b).raw(), 0); // was -1 (floor)
    EXPECT_EQ((tiny_a * (-tiny_b)).raw(), 0);

    std::mt19937 rng(31);
    std::uniform_real_distribution<double> d(-50.0, 50.0);
    for (int i = 0; i < 2000; ++i) {
        const Fix a(d(rng)), b(d(rng));
        const Fix p = a * b;
        EXPECT_EQ(((-a) * b).raw(), (-p).raw());
        EXPECT_EQ((a * (-b)).raw(), (-p).raw());
        EXPECT_EQ(((-a) * (-b)).raw(), p.raw());
        // Truncation toward zero never grows the magnitude.
        EXPECT_LE(std::abs(p.toDouble()),
                  std::abs(a.toDouble() * b.toDouble()) +
                      1.0 / Fix::scale);
    }
}

TEST(FixedPoint, AccumulationStaysExact)
{
    // Repeated accumulation of exactly representable values must not
    // drift (this is why the datapath is fixed point).
    Fix acc(0.0);
    const Fix step(0.125);
    for (int i = 0; i < 1 << 16; ++i)
        acc += step;
    EXPECT_DOUBLE_EQ(acc.toDouble(), 8192.0);
}

TEST(FixedPoint, ComparisonOperators)
{
    EXPECT_TRUE(Fix(1.0) < Fix(2.0));
    EXPECT_TRUE(Fix(0.5) == Fix(0.5));
}

TEST(FixedPoint, FloatAssistedReciprocal)
{
    // The float-assisted reciprocal has single-precision accuracy
    // (Section IV-B2): relative error ~1e-7.
    for (double v : {0.001, 0.1, 1.0, 3.7, 250.0, -4.2}) {
        const Fix f(v);
        const double r = reciprocal(f).toDouble();
        EXPECT_NEAR(r * v, 1.0, 2e-6) << v;
    }
}

TEST(FixedPoint, RefinedReciprocalIsMoreAccurate)
{
    // Newton refinement pays off when the fixed-point grid is finer
    // than single-precision (the regime the refinement stage of [48]
    // targets): use a Q23.40 format.
    std::mt19937 rng(21);
    std::uniform_real_distribution<double> d(0.5, 2.0);
    double err_plain = 0.0, err_refined = 0.0;
    for (int i = 0; i < 200; ++i) {
        const double v = d(rng);
        const FixedPoint<40> f(v);
        err_plain += std::fabs(reciprocal(f).toDouble() * v - 1.0);
        err_refined += std::fabs(reciprocalRefined(f).toDouble() * v - 1.0);
    }
    EXPECT_LT(err_refined, 0.1 * err_plain);
}

TEST(FixedPoint, NarrowFormatQuantizes)
{
    // A 8-fractional-bit format has 1/256 resolution.
    const FixedPoint<8> f(0.3);
    EXPECT_NEAR(f.toDouble(), 0.3, 1.0 / 256.0);
    EXPECT_NE(f.toDouble(), 0.3);
}

TEST(Trig, ReduceAngleRange)
{
    for (double q : {0.0, 3.0, -3.0, 7.5, -7.5, 100.0, -100.0}) {
        const double r = reduceAngle(q);
        EXPECT_LE(std::fabs(r), M_PI + 1e-12);
        EXPECT_NEAR(std::sin(r), std::sin(q), 1e-12);
    }
}

TEST(Trig, TaylorMatchesLibm)
{
    for (double q = -10.0; q <= 10.0; q += 0.037) {
        const auto [s, c] = taylorSinCos(q);
        EXPECT_NEAR(s, std::sin(q), 1e-9) << q;
        EXPECT_NEAR(c, std::cos(q), 1e-9) << q;
    }
}

TEST(Trig, PythagoreanIdentity)
{
    for (double q = -3.0; q <= 3.0; q += 0.1) {
        const auto [s, c] = taylorSinCos(q);
        EXPECT_NEAR(s * s + c * c, 1.0, 1e-9);
    }
}

TEST(Trig, FewTermsDegradeGracefully)
{
    // The hardware knob: fewer Taylor terms -> larger but bounded
    // error on the reduced range.
    double worst = 0.0;
    for (double q = -M_PI; q <= M_PI; q += 0.01) {
        const auto [s, c] = taylorSinCos(q, 3);
        worst = std::max(worst, std::fabs(s - std::sin(q)));
        worst = std::max(worst, std::fabs(c - std::cos(q)));
    }
    EXPECT_LT(worst, 1e-3);
    EXPECT_GT(worst, 1e-9); // genuinely lower precision than 6 terms
}

} // namespace
