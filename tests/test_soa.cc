/**
 * @file
 * SoA lane-kernel contract tests:
 *
 *  - pack kernels (ABA, RNEA, ∆RNEA via ∆FD, FD, M⁻¹, CRBA) are
 *    bitwise identical to the scalar workspace kernels, per lane, on
 *    all three evaluation robots at W ∈ {4, 8};
 *  - masked lanes: inactive lanes are never written;
 *  - the batched engine splits full packs / ragged remainder without
 *    changing any point's bits, at any configured lane width
 *    (batch-width-invariant determinism);
 *  - the packed submit path performs zero steady-state heap
 *    allocations (counted global allocator, aligned forms included —
 *    the SoA arenas allocate via the C++17 aligned operator new).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <random>
#include <vector>

#include "algorithms/aba.h"
#include "algorithms/batched.h"
#include "algorithms/crba.h"
#include "algorithms/dynamics.h"
#include "algorithms/mminv_gen.h"
#include "algorithms/rnea.h"
#include "algorithms/soa/kernels.h"
#include "algorithms/workspace.h"
#include "linalg/aligned.h"
#include "model/builders.h"
#include "runtime/backends.h"

using namespace dadu;
using namespace dadu::algo;

// -----------------------------------------------------------------
// Counted global allocator. Counting is off by default; the
// zero-allocation tests switch it on around the measured region.
// The aligned forms matter here: the SoA arenas (aligned_vector)
// allocate through operator new(size, align_val_t).
// -----------------------------------------------------------------

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<long> g_alloc_count{0};

void *
countedAlloc(std::size_t size, std::size_t align)
{
    if (g_count_allocs.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void *p = align ? std::aligned_alloc(
                          align, (size + align - 1) / align * align)
                    : std::malloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}
} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size, 0);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size, 0);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlloc(size, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlloc(size, static_cast<std::size_t>(align));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace {

// -----------------------------------------------------------------
// Bitwise comparison helpers: memcmp over the raw doubles, so even
// -0.0 vs +0.0 differences fail (EXPECT_EQ would let them pass).
// -----------------------------------------------------------------

void
expectBitwise(const linalg::VectorX &a, const linalg::VectorX &b,
              const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double x = a[i], y = b[i];
        EXPECT_EQ(std::memcmp(&x, &y, sizeof(double)), 0)
            << what << " entry " << i << ": " << x << " vs " << y;
    }
}

void
expectBitwise(const linalg::MatrixX &a, const linalg::MatrixX &b,
              const char *what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c) {
            const double x = a(r, c), y = b(r, c);
            EXPECT_EQ(std::memcmp(&x, &y, sizeof(double)), 0)
                << what << " (" << r << ", " << c << "): " << x << " vs "
                << y;
        }
}

struct Points
{
    std::vector<linalg::VectorX> q, qd, tau;
};

Points
randomPoints(const model::RobotModel &robot, int n, unsigned seed = 23)
{
    std::mt19937 rng(seed);
    Points p;
    for (int i = 0; i < n; ++i) {
        p.q.push_back(robot.randomConfiguration(rng));
        p.qd.push_back(robot.randomVelocity(rng));
        p.tau.push_back(robot.randomVelocity(rng));
    }
    return p;
}

struct RobotCase
{
    const char *name;
    model::RobotModel (*make)();
};

const RobotCase kRobots[] = {
    {"iiwa", model::makeIiwa},
    {"hyq", model::makeHyq},
    {"atlas", model::makeAtlas},
};

// -----------------------------------------------------------------
// Scalar-vs-pack parity, all kernels, W in {4, 8}, three robots.
// -----------------------------------------------------------------

TEST(SoaParity, AllKernelsBitwiseMatchScalar)
{
    for (const auto &rc : kRobots) {
        const model::RobotModel robot = rc.make();
        for (int w : {4, 8}) {
            SCOPED_TRACE(testing::Message() << rc.name << " W=" << w);
            const Points p = randomPoints(robot, w);

            // Scalar references, one workspace reused point-by-point
            // exactly like the batched engine's scalar path.
            DynamicsWorkspace sws(robot);
            std::vector<linalg::VectorX> s_fd(w), s_aba(w), s_rnea(w);
            std::vector<FdDerivatives> s_dfd(w);
            std::vector<linalg::MatrixX> s_minv(w), s_m(w);
            RneaResult rr;
            for (int l = 0; l < w; ++l) {
                forwardDynamics(robot, sws, p.q[l], p.qd[l], p.tau[l],
                                s_fd[l]);
                aba(robot, sws, p.q[l], p.qd[l], p.tau[l], s_aba[l]);
                // τ = RNEA(q, q̇, q̈): reuse the ABA q̈ as the target
                // acceleration so the round trip is nontrivial.
                rnea(robot, sws, p.q[l], p.qd[l], s_aba[l], rr);
                s_rnea[l] = rr.tau;
                fdDerivatives(robot, sws, p.q[l], p.qd[l], p.tau[l],
                              s_dfd[l]);
                massMatrixInverse(robot, sws, p.q[l], s_minv[l]);
                crba(robot, sws, p.q[l], s_m[l]);
            }

            // Pack evaluation of the same points.
            DynamicsWorkspace pws(robot);
            soa::LaneBatch lanes;
            lanes.mask = soa::LaneBatch::fullMask(w);
            std::vector<linalg::VectorX> o_fd(w), o_aba(w), o_rnea(w);
            std::vector<FdDerivatives> o_dfd(w);
            std::vector<linalg::MatrixX> o_minv(w), o_m(w);
            linalg::VectorX *vp[soa::kMaxLaneWidth];
            FdDerivatives *dp[soa::kMaxLaneWidth];
            linalg::MatrixX *mp[soa::kMaxLaneWidth];
            for (int l = 0; l < w; ++l) {
                lanes.q[l] = &p.q[l];
                lanes.qd[l] = &p.qd[l];
                lanes.tau[l] = &p.tau[l];
                lanes.qdd[l] = &s_aba[l];
            }

            for (int l = 0; l < w; ++l)
                vp[l] = &o_fd[l];
            soa::packForwardDynamics(robot, pws, w, lanes, vp);
            for (int l = 0; l < w; ++l)
                vp[l] = &o_aba[l];
            soa::packAba(robot, pws, w, lanes, vp);
            for (int l = 0; l < w; ++l)
                vp[l] = &o_rnea[l];
            soa::packRnea(robot, pws, w, lanes, vp);
            for (int l = 0; l < w; ++l)
                dp[l] = &o_dfd[l];
            soa::packFdDerivatives(robot, pws, w, lanes, dp);
            for (int l = 0; l < w; ++l)
                mp[l] = &o_minv[l];
            soa::packMinv(robot, pws, w, lanes, mp);
            for (int l = 0; l < w; ++l)
                mp[l] = &o_m[l];
            soa::packCrba(robot, pws, w, lanes, mp);

            for (int l = 0; l < w; ++l) {
                SCOPED_TRACE(testing::Message() << "lane " << l);
                expectBitwise(s_fd[l], o_fd[l], "FD qdd");
                expectBitwise(s_aba[l], o_aba[l], "ABA qdd");
                expectBitwise(s_rnea[l], o_rnea[l], "RNEA tau");
                expectBitwise(s_dfd[l].qdd, o_dfd[l].qdd, "dFD qdd");
                expectBitwise(s_dfd[l].minv, o_dfd[l].minv, "dFD minv");
                expectBitwise(s_dfd[l].dqdd_dq, o_dfd[l].dqdd_dq,
                              "dFD dqdd_dq");
                expectBitwise(s_dfd[l].dqdd_dqd, o_dfd[l].dqdd_dqd,
                              "dFD dqdd_dqd");
                expectBitwise(s_minv[l], o_minv[l], "Minv");
                expectBitwise(s_m[l], o_m[l], "CRBA M");
            }
        }
    }
}

// -----------------------------------------------------------------
// Masked lanes: inactive lanes' outputs are never touched.
// -----------------------------------------------------------------

TEST(SoaMask, InactiveLanesNeverWritten)
{
    const model::RobotModel robot = model::makeIiwa();
    const int w = 8;
    const unsigned mask = 0b00100101u; // lanes 0, 2, 5 active
    const Points p = randomPoints(robot, w);

    DynamicsWorkspace sws(robot);
    std::vector<FdDerivatives> want(w);
    for (int l = 0; l < w; ++l)
        if (mask >> l & 1u)
            fdDerivatives(robot, sws, p.q[l], p.qd[l], p.tau[l], want[l]);

    DynamicsWorkspace pws(robot);
    soa::LaneBatch lanes;
    lanes.mask = mask;
    std::vector<FdDerivatives> got(w);
    FdDerivatives *dp[soa::kMaxLaneWidth] = {};
    const double sentinel = -1234.5;
    for (int l = 0; l < w; ++l) {
        if (mask >> l & 1u) {
            lanes.q[l] = &p.q[l];
            lanes.qd[l] = &p.qd[l];
            lanes.tau[l] = &p.tau[l];
            dp[l] = &got[l];
        } else {
            // Inactive: no input, and the output must stay untouched.
            got[l].qdd.resize(1);
            got[l].qdd[0] = sentinel;
            dp[l] = &got[l];
        }
    }
    soa::packFdDerivatives(robot, pws, w, lanes, dp);

    for (int l = 0; l < w; ++l) {
        SCOPED_TRACE(testing::Message() << "lane " << l);
        if (mask >> l & 1u) {
            expectBitwise(want[l].qdd, got[l].qdd, "masked qdd");
            expectBitwise(want[l].dqdd_dq, got[l].dqdd_dq,
                          "masked dqdd_dq");
            expectBitwise(want[l].dqdd_dqd, got[l].dqdd_dqd,
                          "masked dqdd_dqd");
            expectBitwise(want[l].minv, got[l].minv, "masked minv");
        } else {
            ASSERT_EQ(got[l].qdd.size(), 1u);
            EXPECT_EQ(got[l].qdd[0], sentinel);
            EXPECT_EQ(got[l].dqdd_dq.rows(), 0u);
        }
    }
}

// -----------------------------------------------------------------
// Engine: ragged remainder + batch-width invariance. N = 13 runs as
// one full pack of 8 plus 5 scalar points (or 3x4 + 1, or 13 scalar),
// and every split produces identical bits.
// -----------------------------------------------------------------

TEST(SoaEngine, RaggedRemainderMatchesScalarBitwise)
{
    for (const auto &rc : kRobots) {
        const model::RobotModel robot = rc.make();
        SCOPED_TRACE(rc.name);
        const int n = 13;
        const Points p = randomPoints(robot, n);

        DynamicsWorkspace sws(robot);
        std::vector<FdDerivatives> want(n);
        for (int i = 0; i < n; ++i)
            fdDerivatives(robot, sws, p.q[i], p.qd[i], p.tau[i], want[i]);

        BatchedDynamics engine(robot, 1);
        engine.setLaneWidth(8);
        const auto &got = engine.batchFdDerivatives(p.q, p.qd, p.tau);
        for (int i = 0; i < n; ++i) {
            SCOPED_TRACE(testing::Message() << "point " << i);
            expectBitwise(want[i].qdd, got[i].qdd, "qdd");
            expectBitwise(want[i].dqdd_dq, got[i].dqdd_dq, "dqdd_dq");
            expectBitwise(want[i].dqdd_dqd, got[i].dqdd_dqd, "dqdd_dqd");
            expectBitwise(want[i].minv, got[i].minv, "minv");
        }
    }
}

TEST(SoaEngine, BatchWidthInvariantBitwise)
{
    const model::RobotModel robot = model::makeHyq();
    const int n = 13;
    const Points p = randomPoints(robot, n);

    // Reference: scalar path (lane width 1).
    BatchedDynamics scalar_engine(robot, 1);
    scalar_engine.setLaneWidth(1);
    std::vector<linalg::VectorX> want_fd =
        scalar_engine.batchForwardDynamics(p.q, p.qd, p.tau);
    std::vector<FdDerivatives> want_dfd =
        scalar_engine.batchFdDerivatives(p.q, p.qd, p.tau);
    std::vector<linalg::MatrixX> want_minv = scalar_engine.batchMinv(p.q);

    for (int w : {4, 8, 16}) {
        SCOPED_TRACE(testing::Message() << "W=" << w);
        BatchedDynamics engine(robot, 1);
        engine.setLaneWidth(w);
        EXPECT_EQ(engine.laneWidth(), w);
        const auto &fd = engine.batchForwardDynamics(p.q, p.qd, p.tau);
        for (int i = 0; i < n; ++i)
            expectBitwise(want_fd[i], fd[i], "qdd");
        const auto &dfd = engine.batchFdDerivatives(p.q, p.qd, p.tau);
        for (int i = 0; i < n; ++i) {
            expectBitwise(want_dfd[i].qdd, dfd[i].qdd, "dfd qdd");
            expectBitwise(want_dfd[i].dqdd_dq, dfd[i].dqdd_dq,
                          "dfd dqdd_dq");
            expectBitwise(want_dfd[i].dqdd_dqd, dfd[i].dqdd_dqd,
                          "dfd dqdd_dqd");
            expectBitwise(want_dfd[i].minv, dfd[i].minv, "dfd minv");
        }
        const auto &minv = engine.batchMinv(p.q);
        for (int i = 0; i < n; ++i)
            expectBitwise(want_minv[i], minv[i], "minv");
    }
}

TEST(SoaEngine, UnsupportedLaneWidthIgnored)
{
    const model::RobotModel robot = model::makeIiwa();
    BatchedDynamics engine(robot, 1);
    const int before = engine.laneWidth();
    EXPECT_TRUE(before == 1 || soa::laneWidthSupported(before));
    engine.setLaneWidth(5);
    EXPECT_EQ(engine.laneWidth(), before);
    engine.setLaneWidth(0);
    EXPECT_EQ(engine.laneWidth(), before);
    engine.setLaneWidth(4);
    EXPECT_EQ(engine.laneWidth(), 4);
    engine.setLaneWidth(1);
    EXPECT_EQ(engine.laneWidth(), 1);
}

// -----------------------------------------------------------------
// Arena alignment: every pack the kernels read sits on a cache line.
// -----------------------------------------------------------------

TEST(SoaArena, AlignedAllocations)
{
    linalg::aligned_vector<double> v(1000);
    EXPECT_TRUE(linalg::isAligned(v.data()));
    const model::RobotModel atlas = model::makeAtlas();
    DynamicsWorkspace ws(atlas);
    ws.ensure(atlas);
    // The scalar arenas share the aligned allocator.
    EXPECT_TRUE(linalg::isAligned(ws.xup.data()));
    EXPECT_TRUE(linalg::isAligned(ws.v.data()));
    EXPECT_TRUE(linalg::isAligned(ws.ia.data()));
}

// -----------------------------------------------------------------
// Zero-allocation: after the first (arena-building) batch, repeat
// submits through the packed path allocate nothing.
// -----------------------------------------------------------------

TEST(SoaZeroAlloc, PackedEngineSteadyState)
{
    const model::RobotModel robot = model::makeIiwa();
    const int n = 13; // full pack + ragged remainder
    const Points p = randomPoints(robot, n);

    BatchedDynamics engine(robot, 1);
    engine.setLaneWidth(8);
    // Warm-up builds the SoA arenas and output vectors.
    engine.batchForwardDynamics(p.q, p.qd, p.tau);
    engine.batchFdDerivatives(p.q, p.qd, p.tau);
    engine.batchMinv(p.q);

    g_alloc_count.store(0);
    g_count_allocs.store(true);
    engine.batchForwardDynamics(p.q, p.qd, p.tau);
    engine.batchFdDerivatives(p.q, p.qd, p.tau);
    engine.batchMinv(p.q);
    g_count_allocs.store(false);
    EXPECT_EQ(g_alloc_count.load(), 0)
        << "steady-state packed batches must not allocate";
}

TEST(SoaZeroAlloc, PackedBackendSubmitSteadyState)
{
    const model::RobotModel robot = model::makeIiwa();
    runtime::CpuBatchedBackend backend(robot, 1);
    const int n = 13;

    std::mt19937 rng(29);
    std::vector<runtime::DynamicsRequest> reqs(n);
    for (auto &r : reqs) {
        r.q = robot.randomConfiguration(rng);
        r.qd = robot.randomVelocity(rng);
        r.qdd_or_tau = robot.randomVelocity(rng);
    }
    std::vector<runtime::DynamicsResult> results(n);

    runtime::BatchStats stats;
    backend.submit(runtime::FunctionType::DeltaFD, reqs.data(), n,
                   results.data(), &stats);
    backend.submit(runtime::FunctionType::FD, reqs.data(), n,
                   results.data(), &stats);

    g_alloc_count.store(0);
    g_count_allocs.store(true);
    backend.submit(runtime::FunctionType::DeltaFD, reqs.data(), n,
                   results.data(), &stats);
    backend.submit(runtime::FunctionType::FD, reqs.data(), n,
                   results.data(), &stats);
    g_count_allocs.store(false);
    EXPECT_EQ(g_alloc_count.load(), 0)
        << "steady-state packed submits must not allocate";
}

} // namespace
