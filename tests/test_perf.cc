/**
 * @file
 * Tests for the performance/resource/power models and the baseline
 * platform models.
 */

#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "model/builders.h"
#include "perf/baselines.h"
#include "perf/power_model.h"
#include "perf/resource_model.h"
#include "perf/timing.h"

namespace {

using namespace dadu::perf;
using dadu::accel::Accelerator;
using dadu::accel::FunctionType;
using dadu::model::makeIiwa;

TEST(Baselines, RobomorphicOnlyImplementsDerivatives)
{
    // Robomorphic supports a single function (Section I).
    EXPECT_GT(paperThroughputMtasks(Platform::Robomorphic,
                                    EvalRobot::Iiwa,
                                    FunctionType::DeltaiFD),
              0.0);
    EXPECT_EQ(paperThroughputMtasks(Platform::Robomorphic,
                                    EvalRobot::Iiwa, FunctionType::ID),
              0.0);
}

TEST(Baselines, GridHasNoMassMatrix)
{
    // Fig. 15: "GRiD does not realize the calculation of the mass
    // matrix".
    EXPECT_EQ(paperThroughputMtasks(Platform::AgxGpu, EvalRobot::Hyq,
                                    FunctionType::M),
              0.0);
    EXPECT_EQ(paperThroughputMtasks(Platform::Rtx4090m, EvalRobot::Hyq,
                                    FunctionType::M),
              0.0);
}

TEST(Baselines, RobomorphicIiwaLatencyAnchor)
{
    // Section VI-A: 0.61 µs for iiwa ∆iFD.
    EXPECT_NEAR(paperLatencyUs(Platform::Robomorphic, EvalRobot::Iiwa,
                               FunctionType::DeltaiFD),
                0.61, 1e-9);
}

TEST(Baselines, AtlasSlowerThanIiwaEverywhere)
{
    for (auto p : {Platform::AgxCpu, Platform::I9Cpu}) {
        for (auto fn : {FunctionType::ID, FunctionType::FD,
                        FunctionType::DeltaFD}) {
            EXPECT_GT(paperLatencyUs(p, EvalRobot::Atlas, fn),
                      paperLatencyUs(p, EvalRobot::Iiwa, fn));
        }
    }
}

TEST(Baselines, BatchedTimeFlatThenLinear)
{
    // The Fig. 17 shape: latency-bound at small batches, linear at
    // large ones.
    const double t16 = batchedTimeUs(Platform::Rtx4090m,
                                     EvalRobot::Iiwa,
                                     FunctionType::DeltaFD, 16);
    const double t64 = batchedTimeUs(Platform::Rtx4090m,
                                     EvalRobot::Iiwa,
                                     FunctionType::DeltaFD, 64);
    const double t4096 = batchedTimeUs(Platform::Rtx4090m,
                                       EvalRobot::Iiwa,
                                       FunctionType::DeltaFD, 4096);
    const double t8192 = batchedTimeUs(Platform::Rtx4090m,
                                       EvalRobot::Iiwa,
                                       FunctionType::DeltaFD, 8192);
    EXPECT_NEAR(t16, t64, t64);        // near-flat early
    EXPECT_NEAR(t8192 / t4096, 2.0, 0.2); // linear late
}

TEST(Baselines, GpuBeatsAcceleratorOnlyAtLargeBatch)
{
    // Fig. 17: "RTX 4090M will outperform our implementation when
    // batch size is more than 512."
    const dadu::model::RobotModel robot = makeIiwa();
    Accelerator accel(robot);
    const auto est = accel.analytic(FunctionType::DeltaFD);
    const double freq = accel.config().freq_mhz * 1e6;

    auto dadu_time = [&](int batch) {
        return (batch * est.ii_cycles + est.latency_cycles) / freq * 1e6;
    };
    auto gpu_time = [&](int batch) {
        return batchedTimeUs(Platform::Rtx4090m, EvalRobot::Iiwa,
                             FunctionType::DeltaFD, batch);
    };
    EXPECT_LT(dadu_time(64), gpu_time(64));
    EXPECT_GT(dadu_time(8192), gpu_time(8192));
}

TEST(Power, WithinPaperRange)
{
    const dadu::model::RobotModel robot = makeIiwa();
    Accelerator accel(robot);
    // Section VI-C: 6.2 W to 36.8 W across functions for iiwa.
    double lo = 1e9, hi = 0.0;
    for (auto fn : {FunctionType::ID, FunctionType::FD, FunctionType::M,
                    FunctionType::Minv, FunctionType::DeltaID,
                    FunctionType::DeltaFD, FunctionType::DeltaiFD}) {
        const double w = accelPower(accel, fn).total();
        lo = std::min(lo, w);
        hi = std::max(hi, w);
    }
    EXPECT_GT(lo, 3.0);
    EXPECT_LT(lo, 12.0);
    EXPECT_GT(hi, 25.0);
    EXPECT_LT(hi, 45.0);
}

TEST(Power, DeltaIfdEnergyBeatsRobomorphic)
{
    // Section VI-C: Robomorphic's energy per task is ~2x Dadu-RBD's.
    const dadu::model::RobotModel robot = makeIiwa();
    Accelerator accel(robot);
    const double dadu_energy =
        accelEnergyPerTaskUj(accel, FunctionType::DeltaiFD);
    const double robo_power = platformPowerW(Platform::Robomorphic);
    const double robo_task_us =
        1.0 / paperThroughputMtasks(Platform::Robomorphic,
                                    EvalRobot::Iiwa,
                                    FunctionType::DeltaiFD);
    const double robo_energy = robo_power * robo_task_us;
    EXPECT_GT(robo_energy / dadu_energy, 1.2);
    EXPECT_LT(robo_energy / dadu_energy, 4.0);
}

TEST(Resources, RobomorphicUsesHalfTheDsp)
{
    EXPECT_NEAR(robomorphicResources().dsp_pct, 50.0, 1e-9);
    EXPECT_FALSE(formatResources(robomorphicResources()).empty());
}

TEST(Timing, HostLatencyIsPositiveAndOrdered)
{
    const dadu::model::RobotModel robot = makeIiwa();
    const double id = hostLatencyUs(robot, FunctionType::ID, 8, 3);
    const double dfd = hostLatencyUs(robot, FunctionType::DeltaFD, 8, 3);
    EXPECT_GT(id, 0.0);
    EXPECT_GT(dfd, id); // derivatives cost more than plain ID
}

TEST(Timing, ThreadScalingSaturates)
{
    // Fig. 2b: speedup grows sublinearly and flattens.
    EXPECT_NEAR(threadScaling(1), 1.0, 1e-12);
    EXPECT_GT(threadScaling(4), 2.5);
    EXPECT_LT(threadScaling(12), 8.0);
    EXPECT_LT(threadScaling(12) - threadScaling(10), 1.0);
}

} // namespace
