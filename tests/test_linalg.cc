/**
 * @file
 * Unit tests for the fixed-size and dynamic linear algebra types.
 */

#include <gtest/gtest.h>

#include <random>

#include "linalg/factorize.h"
#include "linalg/mat.h"
#include "linalg/matrixx.h"
#include "linalg/vec.h"

namespace {

using namespace dadu::linalg;

TEST(Vec, BasicArithmetic)
{
    const Vec3 a{1, 2, 3};
    const Vec3 b{4, 5, 6};
    const Vec3 s = a + b;
    EXPECT_DOUBLE_EQ(s[0], 5);
    EXPECT_DOUBLE_EQ(s[1], 7);
    EXPECT_DOUBLE_EQ(s[2], 9);
    const Vec3 d = b - a;
    EXPECT_DOUBLE_EQ(d[0], 3);
    EXPECT_DOUBLE_EQ((a * 2.0)[2], 6);
    EXPECT_DOUBLE_EQ((2.0 * a)[2], 6);
    EXPECT_DOUBLE_EQ((-a)[1], -2);
}

TEST(Vec, DotAndNorm)
{
    const Vec3 a{3, 4, 0};
    EXPECT_DOUBLE_EQ(a.dot(a), 25);
    EXPECT_DOUBLE_EQ(a.norm(), 5);
    EXPECT_DOUBLE_EQ(a.maxAbs(), 4);
}

TEST(Vec, CrossProduct)
{
    const Vec3 x = Vec3::unit(0), y = Vec3::unit(1), z = Vec3::unit(2);
    EXPECT_EQ(cross(x, y), z);
    EXPECT_EQ(cross(y, z), x);
    EXPECT_EQ(cross(z, x), y);
    // Antisymmetry.
    const Vec3 a{1, 2, 3}, b{-2, 0.5, 4};
    EXPECT_LT((cross(a, b) + cross(b, a)).maxAbs(), 1e-15);
}

TEST(Vec, JoinAndHalves)
{
    const Vec6 v = join(Vec3{1, 2, 3}, Vec3{4, 5, 6});
    EXPECT_EQ(topHalf(v), (Vec3{1, 2, 3}));
    EXPECT_EQ(bottomHalf(v), (Vec3{4, 5, 6}));
}

TEST(Vec, UnitAndConstant)
{
    EXPECT_DOUBLE_EQ(Vec6::unit(4)[4], 1);
    EXPECT_DOUBLE_EQ(Vec6::unit(4)[3], 0);
    EXPECT_DOUBLE_EQ(Vec3::constant(2.5)[1], 2.5);
}

TEST(Mat, IdentityAndMultiply)
{
    const Mat3 i = Mat3::identity();
    const Vec3 v{1, 2, 3};
    EXPECT_EQ(i * v, v);
    const Mat3 a{1, 2, 3, 4, 5, 6, 7, 8, 10};
    EXPECT_EQ(a * i, a);
    EXPECT_EQ(i * a, a);
}

TEST(Mat, TransposeRoundTrip)
{
    const Mat3 a{1, 2, 3, 4, 5, 6, 7, 8, 10};
    EXPECT_EQ(a.transpose().transpose(), a);
    // (AB)^T == B^T A^T.
    const Mat3 b{0, 1, 0, -1, 0, 2, 3, 0, 1};
    EXPECT_LT(((a * b).transpose() - b.transpose() * a.transpose()).maxAbs(),
              1e-14);
}

TEST(Mat, SkewMatchesCross)
{
    const Vec3 a{1.5, -2, 0.25}, b{3, 0.5, -1};
    EXPECT_LT((skew(a) * b - cross(a, b)).maxAbs(), 1e-15);
    // skew is antisymmetric.
    EXPECT_LT((skew(a) + skew(a).transpose()).maxAbs(), 1e-15);
}

TEST(Mat, RotationsAreOrthonormal)
{
    for (double q : {0.0, 0.3, -1.2, 2.9}) {
        for (const Mat3 &r : {rotX(q), rotY(q), rotZ(q)}) {
            EXPECT_LT((r * r.transpose() - Mat3::identity()).maxAbs(),
                      1e-14);
        }
    }
}

TEST(Mat, RotZRotatesXToY)
{
    // Coordinate transform: a vector fixed along world x, expressed
    // in a frame rotated +90° about z, appears along -y... E acts as
    // coordinates-of-fixed-vector-in-rotated-frame.
    const Vec3 ex = Vec3::unit(0);
    const Vec3 out = rotZ(M_PI / 2.0) * ex;
    EXPECT_NEAR(out[0], 0.0, 1e-15);
    EXPECT_NEAR(out[1], -1.0, 1e-15);
}

TEST(Mat, Blocks66RoundTrip)
{
    const Mat3 a = Mat3::identity() * 2.0;
    const Mat3 b{1, 2, 3, 4, 5, 6, 7, 8, 9};
    const Mat66 m = blocks66(a, b, b.transpose(), a);
    EXPECT_DOUBLE_EQ(m(0, 0), 2);
    EXPECT_DOUBLE_EQ(m(0, 4), 2);
    EXPECT_DOUBLE_EQ(m(3, 1), 4);
    EXPECT_DOUBLE_EQ(m(4, 0), 2);
}

TEST(Mat, ColRowAccessors)
{
    const Mat3 a{1, 2, 3, 4, 5, 6, 7, 8, 9};
    EXPECT_EQ(a.col(1), (Vec3{2, 5, 8}));
    EXPECT_EQ(a.row(2), (Vec3{7, 8, 9}));
    Mat3 b;
    b.setCol(0, Vec3{1, 2, 3});
    EXPECT_DOUBLE_EQ(b(2, 0), 3);
}

TEST(MatrixX, BasicOps)
{
    MatrixX a(2, 3);
    a(0, 0) = 1;
    a(1, 2) = 5;
    const MatrixX at = a.transpose();
    EXPECT_EQ(at.rows(), 3u);
    EXPECT_DOUBLE_EQ(at(2, 1), 5);

    const MatrixX i = MatrixX::identity(3);
    const MatrixX ai = a * i;
    EXPECT_DOUBLE_EQ(ai(1, 2), 5);
    EXPECT_DOUBLE_EQ((a + a)(1, 2), 10);
    EXPECT_DOUBLE_EQ((a - a).maxAbs(), 0);
    EXPECT_DOUBLE_EQ((-a)(1, 2), -5);
}

TEST(MatrixX, BlockOps)
{
    MatrixX m(4, 4);
    MatrixX b(2, 2);
    b(0, 0) = 1;
    b(0, 1) = 2;
    b(1, 0) = 3;
    b(1, 1) = 4;
    m.setBlock(1, 2, b);
    EXPECT_DOUBLE_EQ(m(1, 2), 1);
    EXPECT_DOUBLE_EQ(m(2, 3), 4);
    const MatrixX c = m.block(1, 2, 2, 2);
    EXPECT_DOUBLE_EQ(c(1, 1), 4);
}

TEST(VectorX, SegmentOps)
{
    VectorX v{1, 2, 3, 4, 5};
    const VectorX s = v.segment(1, 3);
    EXPECT_EQ(s.size(), 3u);
    EXPECT_DOUBLE_EQ(s[2], 4);
    v.setSegment(0, VectorX{9, 8});
    EXPECT_DOUBLE_EQ(v[0], 9);
    EXPECT_DOUBLE_EQ(v[1], 8);
    EXPECT_DOUBLE_EQ(v[2], 3);
}

MatrixX
randomSpd(int n, unsigned seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> d(-1.0, 1.0);
    MatrixX a(n, n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            a(i, j) = d(rng);
    MatrixX m = a * a.transpose();
    for (int i = 0; i < n; ++i)
        m(i, i) += n; // ensure positive-definiteness
    return m;
}

class FactorizeTest : public ::testing::TestWithParam<int>
{};

TEST_P(FactorizeTest, CholeskyReconstructs)
{
    const int n = GetParam();
    const MatrixX m = randomSpd(n, 42 + n);
    Cholesky chol(m);
    ASSERT_TRUE(chol.ok());
    const MatrixX l = chol.matrixL();
    EXPECT_LT((l * l.transpose() - m).maxAbs(), 1e-10);
}

TEST_P(FactorizeTest, CholeskySolves)
{
    const int n = GetParam();
    const MatrixX m = randomSpd(n, 7 + n);
    std::mt19937 rng(n);
    std::uniform_real_distribution<double> d(-1.0, 1.0);
    VectorX b(n);
    for (int i = 0; i < n; ++i)
        b[i] = d(rng);
    Cholesky chol(m);
    const VectorX x = chol.solve(b);
    EXPECT_LT((m * x - b).maxAbs(), 1e-9);
}

TEST_P(FactorizeTest, CholeskyInverse)
{
    const int n = GetParam();
    const MatrixX m = randomSpd(n, 99 + n);
    const MatrixX minv = Cholesky(m).inverse();
    EXPECT_LT((m * minv - MatrixX::identity(n)).maxAbs(), 1e-9);
}

TEST_P(FactorizeTest, LdltReconstructs)
{
    const int n = GetParam();
    const MatrixX m = randomSpd(n, 5 + n);
    Ldlt ldlt(m);
    ASSERT_TRUE(ldlt.ok());
    const MatrixX l = ldlt.matrixL();
    MatrixX ld = l;
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            ld(i, j) *= ldlt.vectorD()[j];
    EXPECT_LT((ld * l.transpose() - m).maxAbs(), 1e-10);
}

TEST_P(FactorizeTest, LdltSolveMatchesCholesky)
{
    const int n = GetParam();
    const MatrixX m = randomSpd(n, 13 + n);
    VectorX b(n);
    for (int i = 0; i < n; ++i)
        b[i] = std::sin(i + 1.0);
    const VectorX x1 = Cholesky(m).solve(b);
    const VectorX x2 = Ldlt(m).solve(b);
    EXPECT_LT((x1 - x2).maxAbs(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FactorizeTest,
                         ::testing::Values(1, 2, 3, 6, 7, 18, 36));

TEST(Factorize, CholeskyRejectsIndefinite)
{
    MatrixX m = MatrixX::identity(3);
    m(2, 2) = -1.0;
    EXPECT_FALSE(Cholesky(m).ok());
}

TEST(Factorize, TriangularSolves)
{
    MatrixX l(3, 3);
    l(0, 0) = 2;
    l(1, 0) = 1;
    l(1, 1) = 3;
    l(2, 0) = 0.5;
    l(2, 1) = -1;
    l(2, 2) = 1.5;
    const VectorX b{2, 5, 1};
    const VectorX x = solveLowerTriangular(l, b);
    EXPECT_LT((l * x - b).maxAbs(), 1e-12);
    const VectorX y = solveLowerTriangularTransposed(l, b);
    EXPECT_LT((l.transpose() * y - b).maxAbs(), 1e-12);
}

} // namespace
