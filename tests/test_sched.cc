/**
 * @file
 * Tests for the QoS scheduling subsystem (src/runtime/sched/):
 *
 *  - policy unit picks on a fake queue view (EDF order, coalescing
 *    caps, steal eligibility);
 *  - the acceptance invariant: under the default FIFO policy the
 *    synchronous drain() path stays bitwise-identical — results AND
 *    accounting — to the async worker path;
 *  - EDF pops the earliest-deadline queued item instead of front();
 *  - the coalescer merges small same-function flat batches from
 *    different clients into one backend batch and splits the merged
 *    BatchStats back per job;
 *  - an idle lane steals queued flat work from a lane stuck behind a
 *    long serial-stage job (and never steals the serial job itself);
 *  - starvation/fairness property: with a saturating bulk client
 *    under EDF, every deadline-tagged job completes and lands in
 *    exactly one of SchedStats::deadline_met / deadline_misses — no
 *    job is dropped or parked;
 *  - deadline-tagged serveMultiClient accounts every tagged job.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "app/mpc_workload.h"
#include "app/scheduler.h"
#include "model/builders.h"
#include "perf/timing.h"
#include "runtime/sched/policy.h"
#include "runtime/server.h"
#include "test_support.h"

namespace {

using namespace dadu;
using dadu::model::RobotModel;
using dadu::runtime::BatchStats;
using dadu::runtime::DynamicsRequest;
using dadu::runtime::DynamicsResult;
using dadu::runtime::FunctionType;
using dadu::runtime::sched::JobTag;
using dadu::runtime::sched::kNoDeadline;
using dadu::runtime::sched::PolicyKind;
using dadu::runtime::sched::SchedConfig;
using dadu::runtime::sched::SchedStats;
using dadu::tests::expectBitwiseEqual;
using dadu::tests::randomRequests;

/**
 * Modeled-cost backend: batch makespan = base + count * per_task in
 * backend (virtual) time; echoes q̇ as q̈; records every batch size in
 * submission order — the deterministic probe for pop order, merge
 * shapes and steal targets.
 */
class RecordingBackend : public runtime::DynamicsBackend
{
  public:
    RecordingBackend(const RobotModel &robot, double base_us,
                     double per_task_us)
        : robot_(robot), base_us_(base_us), per_task_us_(per_task_us)
    {}

    const char *name() const override { return "recording"; }
    const RobotModel &robot() const override { return robot_; }
    bool offloaded() const override { return true; }

    std::unique_ptr<runtime::DynamicsBackend> clone() const override
    {
        return std::make_unique<RecordingBackend>(robot_, base_us_,
                                                  per_task_us_);
    }

    runtime::SubmitStatus
    submit(FunctionType fn, const DynamicsRequest *requests,
           std::size_t count, DynamicsResult *results,
           BatchStats *stats) override
    {
        for (std::size_t i = 0; i < count; ++i) {
            results[i].qdd = requests[i].qd;
            // ∆FD also produces derivative matrices; write a marker
            // so tests can detect fields leaking between batches.
            if (fn == FunctionType::DeltaFD)
                results[i].dqdd_dq = linalg::MatrixX::identity(2);
        }
        batch_counts_.push_back(count);
        if (wall_us_per_batch_ > 0.0) {
            in_batch_.store(true, std::memory_order_release);
            std::this_thread::sleep_for(std::chrono::microseconds(
                static_cast<long>(wall_us_per_batch_)));
            in_batch_.store(false, std::memory_order_release);
        }
        if (stats) {
            *stats = BatchStats{};
            stats->total_us = base_us_ + count * per_task_us_;
            stats->latency_us =
                count ? stats->total_us / count : 0.0;
            stats->throughput_mtasks =
                stats->total_us > 0.0 ? count / stats->total_us : 0.0;
        }
        return runtime::SubmitStatus::Ok;
    }

    /** Make batches take real wall time (steal/starvation tests). */
    void setWallUsPerBatch(double us) { wall_us_per_batch_ = us; }
    bool inBatch() const
    {
        return in_batch_.load(std::memory_order_acquire);
    }

    const std::vector<std::size_t> &batchCounts() const
    {
        return batch_counts_;
    }

  private:
    const RobotModel &robot_;
    double base_us_, per_task_us_;
    double wall_us_per_batch_ = 0.0;
    std::atomic<bool> in_batch_{false};
    std::vector<std::size_t> batch_counts_;
};

// ---------------------------------------------------------------------
// Policy unit picks on a fake queue view
// ---------------------------------------------------------------------

/** Hand-built QueueView for exercising policies without a server. */
class FakeQueue : public runtime::sched::QueueView
{
  public:
    explicit FakeQueue(int lanes) : items_(lanes) {}

    void
    push(int lane, runtime::sched::ItemView item)
    {
        item.seq = next_seq_++;
        items_[lane].push_back(item);
    }

    int lanes() const override
    {
        return static_cast<int>(items_.size());
    }
    std::size_t depth(int lane) const override
    {
        return items_[lane].size();
    }
    runtime::sched::ItemView item(int lane,
                                  std::size_t pos) const override
    {
        return items_[lane][pos];
    }
    std::size_t flatCount(int lane) const override
    {
        std::size_t n = 0;
        for (const auto &it : items_[lane])
            n += it.flat ? 1 : 0;
        return n;
    }

  private:
    std::vector<std::vector<runtime::sched::ItemView>> items_;
    std::uint64_t next_seq_ = 0;
};

runtime::sched::ItemView
flatItem(FunctionType fn, std::size_t count,
         double deadline = kNoDeadline, int priority = 0)
{
    runtime::sched::ItemView v;
    v.fn = fn;
    v.count = count;
    v.deadline_us = deadline;
    v.priority = priority;
    v.flat = true;
    return v;
}

TEST(SchedPolicy, EdfPicksDeadlineThenPriorityThenFifo)
{
    FakeQueue q(1);
    q.push(0, flatItem(FunctionType::FD, 8));                    // seq 0
    q.push(0, flatItem(FunctionType::FD, 8, 900.0));             // seq 1
    q.push(0, flatItem(FunctionType::FD, 8, 500.0));             // seq 2
    q.push(0, flatItem(FunctionType::FD, 8, 500.0, /*prio=*/3)); // seq 3

    SchedConfig edf_cfg;
    edf_cfg.kind = PolicyKind::Edf;
    auto edf = runtime::sched::makePolicy(edf_cfg);
    runtime::sched::Pick pick;
    ASSERT_TRUE(edf->pick(q, 0, pick));
    EXPECT_EQ(pick.lane, 0);
    ASSERT_EQ(pick.positions.size(), 1u);
    // Equal deadlines: the higher-priority item wins; earlier
    // deadlines beat later ones; untagged work goes last.
    EXPECT_EQ(pick.positions[0], 3u);

    auto fifo = runtime::sched::makePolicy(SchedConfig{});
    ASSERT_TRUE(fifo->pick(q, 0, pick));
    EXPECT_EQ(pick.positions[0], 0u);
    EXPECT_FALSE(fifo->crossLane());
}

TEST(SchedPolicy, CoalesceMergesOnlySmallSameFnFlatWithinCaps)
{
    SchedConfig cfg;
    cfg.coalesce = true;
    cfg.coalesce_only_below = 16;
    cfg.coalesce_max_tasks = 20;
    FakeQueue q(1);
    q.push(0, flatItem(FunctionType::FD, 4));   // primary
    q.push(0, flatItem(FunctionType::FD, 6));   // merges (total 10)
    q.push(0, flatItem(FunctionType::Minv, 4)); // other fn: skipped
    q.push(0, flatItem(FunctionType::FD, 64));  // too big: skipped
    {
        auto serial = flatItem(FunctionType::FD, 4);
        serial.flat = false; // serial-stage item: never merged
        q.push(0, serial);
    }
    q.push(0, flatItem(FunctionType::FD, 12)); // would bust max_tasks
    q.push(0, flatItem(FunctionType::FD, 8));  // merges (total 18)

    auto policy = runtime::sched::makePolicy(cfg);
    runtime::sched::Pick pick;
    ASSERT_TRUE(policy->pick(q, 0, pick));
    ASSERT_EQ(pick.positions.size(), 3u);
    EXPECT_EQ(pick.positions[0], 0u);
    EXPECT_EQ(pick.positions[1], 1u);
    EXPECT_EQ(pick.positions[2], 6u);
}

TEST(SchedPolicy, StealTakesFlatWorkOnlyAndOnlyWhenIdle)
{
    SchedConfig cfg;
    cfg.steal = true;
    FakeQueue q(2);
    {
        auto serial = flatItem(FunctionType::FD, 4, 100.0);
        serial.flat = false;
        q.push(0, serial); // urgent but serial: not stealable
    }
    q.push(0, flatItem(FunctionType::FD, 8, 900.0));
    q.push(0, flatItem(FunctionType::FD, 8, 500.0));

    auto policy = runtime::sched::makePolicy(cfg);
    EXPECT_TRUE(policy->crossLane());
    runtime::sched::Pick pick;
    // Lane 1 is empty: steals the earliest-deadline FLAT item of 0.
    ASSERT_TRUE(policy->pick(q, 1, pick));
    EXPECT_EQ(pick.lane, 0);
    ASSERT_EQ(pick.positions.size(), 1u);
    EXPECT_EQ(pick.positions[0], 2u);
    // Lane 0 serves its own queue (FIFO base): no steal.
    ASSERT_TRUE(policy->pick(q, 0, pick));
    EXPECT_EQ(pick.lane, 0);
    EXPECT_EQ(pick.positions[0], 0u);

    // A queue with only serial work offers nothing to a thief.
    FakeQueue q2(2);
    auto serial = flatItem(FunctionType::FD, 4);
    serial.flat = false;
    q2.push(0, serial);
    EXPECT_FALSE(policy->pick(q2, 1, pick));
}

// ---------------------------------------------------------------------
// Acceptance: default-FIFO sync drain() == async path, bitwise
// ---------------------------------------------------------------------

namespace doubling {

void
advance(void *ctx, int /*next_stage*/, const DynamicsResult *results,
        DynamicsRequest *requests, std::size_t points)
{
    ++*static_cast<int *>(ctx);
    for (std::size_t p = 0; p < points; ++p) {
        requests[p].qd = results[p].qdd;
        for (std::size_t j = 0; j < requests[p].qd.size(); ++j)
            requests[p].qd[j] *= 2.0;
    }
}

} // namespace doubling

TEST(SchedQos, FifoSyncDrainBitwiseIdenticalToAsync)
{
    // The same deterministic job set — flat batches on both lanes, a
    // sharded batch, a serial-stage job — queued identically on two
    // 2-lane servers; one drains synchronously, the other executes
    // on worker threads. Default FIFO must make results AND interval
    // accounting bitwise-identical.
    const RobotModel robot = model::makeHyq();
    const auto flat_a = randomRequests(robot, 6, 1);
    const auto flat_b = randomRequests(robot, 9, 2);
    const auto shard_src = randomRequests(robot, 24, 3);
    const auto serial_src = randomRequests(robot, 5, 4);

    struct Run
    {
        runtime::ServerStats stats;
        SchedStats sstats;
        std::vector<DynamicsResult> ra, rb, rs, rr;
        double job_us[4] = {0, 0, 0, 0};
        int advances = 0;
    };
    auto execute = [&](bool async) {
        Run run;
        RecordingBackend b0(robot, 5.0, 1.0);
        auto b1 = b0.clone();
        runtime::DynamicsServer server(b0);
        server.addBackend(*b1);
        run.ra.resize(6);
        run.rb.resize(9);
        run.rs.resize(24);
        run.rr.resize(5);
        auto serial_req = serial_src;
        // Queue everything BEFORE execution starts, so the sharding
        // water-filling sees identical lane loads on both paths.
        const int ja = server.submit(FunctionType::FD, flat_a.data(), 6,
                                     run.ra.data(), 0);
        const int jb = server.submit(FunctionType::FD, flat_b.data(), 9,
                                     run.rb.data(), 1);
        const int js = server.submitSharded(
            FunctionType::DeltaFD, shard_src.data(), 24, run.rs.data());
        const int jr = server.submitSerialStages(
            FunctionType::FD, serial_req.data(), 5, 3,
            &doubling::advance, &run.advances, run.rr.data(), 0);
        if (async) {
            server.start();
            server.stop();
        }
        server.drain(&run.stats, &run.sstats);
        const int ids[4] = {ja, jb, js, jr};
        for (int i = 0; i < 4; ++i)
            run.job_us[i] = server.jobUs(ids[i]);
        return run;
    };

    const Run sync = execute(false);
    const Run async = execute(true);

    EXPECT_EQ(sync.advances, 2);
    EXPECT_EQ(async.advances, 2);
    EXPECT_DOUBLE_EQ(sync.stats.busy_us, async.stats.busy_us);
    EXPECT_DOUBLE_EQ(sync.stats.makespan_us, async.stats.makespan_us);
    EXPECT_EQ(sync.stats.jobs, async.stats.jobs);
    EXPECT_EQ(sync.stats.batches, async.stats.batches);
    EXPECT_EQ(sync.stats.tasks, async.stats.tasks);
    EXPECT_EQ(sync.sstats.picks, async.sstats.picks);
    EXPECT_EQ(sync.sstats.coalesced_batches, 0u);
    EXPECT_EQ(async.sstats.coalesced_batches, 0u);
    EXPECT_EQ(sync.sstats.steals, 0u);
    EXPECT_EQ(async.sstats.steals, 0u);
    for (int i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(sync.job_us[i], async.job_us[i]);
    for (int i = 0; i < 6; ++i)
        expectBitwiseEqual(sync.ra[i].qdd, async.ra[i].qdd);
    for (int i = 0; i < 9; ++i)
        expectBitwiseEqual(sync.rb[i].qdd, async.rb[i].qdd);
    for (int i = 0; i < 24; ++i)
        expectBitwiseEqual(sync.rs[i].qdd, async.rs[i].qdd);
    for (int i = 0; i < 5; ++i)
        expectBitwiseEqual(sync.rr[i].qdd, async.rr[i].qdd);
}

// ---------------------------------------------------------------------
// EDF through the server
// ---------------------------------------------------------------------

TEST(SchedQos, EdfPopsEarliestDeadlineBeforeQueuedBulk)
{
    const RobotModel robot = model::makeHyq();
    RecordingBackend backend(robot, 5.0, 1.0);
    runtime::DynamicsServer server(backend);
    SchedConfig edf_cfg;
    edf_cfg.kind = PolicyKind::Edf;
    server.setPolicy(edf_cfg);

    auto bulk = randomRequests(robot, 9, 11);
    auto crit = randomRequests(robot, 3, 12);
    std::vector<DynamicsResult> bulk_res(9), bulk2_res(9), crit_res(3);
    server.submit(FunctionType::FD, bulk.data(), 9, bulk_res.data());
    JobTag tag;
    tag.deadline_us = perf::nowUs() + 1e7; // generous: always met
    const int crit_job = server.submit(FunctionType::FD, crit.data(), 3,
                                       crit_res.data(), 0, tag);
    server.submit(FunctionType::FD, bulk.data(), 9, bulk2_res.data());

    runtime::ServerStats stats;
    SchedStats sstats;
    server.drain(&stats, &sstats);

    // The deadline-tagged batch (3 tasks) jumped both bulk batches.
    ASSERT_EQ(backend.batchCounts().size(), 3u);
    EXPECT_EQ(backend.batchCounts()[0], 3u);
    EXPECT_EQ(backend.batchCounts()[1], 9u);
    EXPECT_EQ(backend.batchCounts()[2], 9u);
    EXPECT_EQ(sstats.deadline_met, 1u);
    EXPECT_EQ(sstats.deadline_misses, 0u);
    EXPECT_FALSE(server.jobMissedDeadline(crit_job));
    for (int i = 0; i < 3; ++i)
        expectBitwiseEqual(crit_res[i].qdd, crit[i].qd);
}

// ---------------------------------------------------------------------
// Coalescing through the server
// ---------------------------------------------------------------------

TEST(SchedQos, CoalesceMergesSmallFlatBatchesAndSplitsStats)
{
    const RobotModel robot = model::makeHyq();
    RecordingBackend backend(robot, 5.0, 1.0);
    runtime::DynamicsServer server(backend);
    SchedConfig cfg;
    cfg.coalesce = true;
    cfg.coalesce_only_below = 64;
    server.setPolicy(cfg);

    // Three "clients" queue small FD batches plus one Minv batch and
    // one big FD batch on the same lane.
    auto r1 = randomRequests(robot, 4, 21);
    auto r2 = randomRequests(robot, 5, 22);
    auto r3 = randomRequests(robot, 6, 23);
    auto rm = randomRequests(robot, 4, 24);
    auto rbig = randomRequests(robot, 100, 25);
    std::vector<DynamicsResult> s1(4), s2(5), s3(6), sm(4), sbig(100);
    const int j1 = server.submit(FunctionType::FD, r1.data(), 4, s1.data());
    const int j2 = server.submit(FunctionType::FD, r2.data(), 5, s2.data());
    const int jm =
        server.submit(FunctionType::Minv, rm.data(), 4, sm.data());
    const int j3 = server.submit(FunctionType::FD, r3.data(), 6, s3.data());
    const int jbig =
        server.submit(FunctionType::FD, rbig.data(), 100, sbig.data());

    runtime::ServerStats stats;
    SchedStats sstats;
    server.drain(&stats, &sstats);

    // One merged 15-task FD batch (4+5+6), then Minv, then the big
    // batch that exceeded coalesce_only_below.
    ASSERT_EQ(backend.batchCounts().size(), 3u);
    EXPECT_EQ(backend.batchCounts()[0], 15u);
    EXPECT_EQ(backend.batchCounts()[1], 4u);
    EXPECT_EQ(backend.batchCounts()[2], 100u);
    EXPECT_EQ(sstats.coalesced_batches, 1u);
    EXPECT_EQ(sstats.coalesced_items, 2u);
    EXPECT_EQ(stats.batches, 3u);
    EXPECT_EQ(stats.jobs, 5u);
    EXPECT_EQ(stats.tasks, 4u + 5u + 6u + 4u + 100u);

    // The merged batch cost base + 15 tasks = 20 backend-µs; each
    // job is charged its task-proportional share.
    const double merged_us = 5.0 + 15.0 * 1.0;
    EXPECT_DOUBLE_EQ(server.jobUs(j1), merged_us * (4.0 / 15.0));
    EXPECT_DOUBLE_EQ(server.jobUs(j2), merged_us * (5.0 / 15.0));
    EXPECT_DOUBLE_EQ(server.jobUs(j3), merged_us * (6.0 / 15.0));
    EXPECT_DOUBLE_EQ(server.jobUs(jm), 5.0 + 4.0);
    EXPECT_DOUBLE_EQ(server.jobUs(jbig), 5.0 + 100.0);
    EXPECT_DOUBLE_EQ(stats.busy_us, merged_us + 9.0 + 105.0);

    // Every client still got exactly its own results.
    for (int i = 0; i < 4; ++i)
        expectBitwiseEqual(s1[i].qdd, r1[i].qd);
    for (int i = 0; i < 5; ++i)
        expectBitwiseEqual(s2[i].qdd, r2[i].qd);
    for (int i = 0; i < 6; ++i)
        expectBitwiseEqual(s3[i].qdd, r3[i].qd);
    for (int i = 0; i < 4; ++i)
        expectBitwiseEqual(sm[i].qdd, rm[i].qd);
    for (int i = 0; i < 100; ++i)
        expectBitwiseEqual(sbig[i].qdd, rbig[i].qd);

    // Regression: the lane's merged-batch staging is reused across
    // batches, and a later merged batch of a narrower function must
    // not leak the earlier batch's untouched fields into its
    // clients' results. Seed the staging with a ∆FD merge (fills
    // the derivative matrices), then merge two FD jobs at the same
    // offsets: their results must carry FD's q̈ and nothing else.
    std::vector<DynamicsResult> t1(4), t2(5);
    server.submit(FunctionType::DeltaFD, r1.data(), 4, t1.data());
    server.submit(FunctionType::DeltaFD, r2.data(), 5, t2.data());
    server.drain();
    std::vector<DynamicsResult> u1(4), u2(5);
    server.submit(FunctionType::FD, r1.data(), 4, u1.data());
    server.submit(FunctionType::FD, r2.data(), 5, u2.data());
    server.drain();
    for (int i = 0; i < 4; ++i) {
        expectBitwiseEqual(u1[i].qdd, r1[i].qd);
        EXPECT_EQ(u1[i].dqdd_dq.rows(), 0u)
            << "stale staging field leaked into a merged FD result";
    }
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(u2[i].dqdd_dq.rows(), 0u);
}

// ---------------------------------------------------------------------
// Work stealing through the server
// ---------------------------------------------------------------------

TEST(SchedQos, IdleLaneStealsQueuedFlatWorkBehindSerialJob)
{
    const RobotModel robot = model::makeHyq();
    RecordingBackend b0(robot, 5.0, 1.0);
    RecordingBackend b1(robot, 5.0, 1.0);
    b0.setWallUsPerBatch(30000.0); // 30 ms per batch: lane 0 is slow
    runtime::DynamicsServer server(b0);
    server.addBackend(b1);
    SchedConfig cfg;
    cfg.steal = true;
    server.setPolicy(cfg);
    server.start();

    // A 4-stage serial job occupies lane 0...
    auto serial_req = randomRequests(robot, 4, 31);
    std::vector<DynamicsResult> serial_res(4);
    int advances = 0;
    const int js = server.submitSerialStages(
        FunctionType::FD, serial_req.data(), 4, 4, &doubling::advance,
        &advances, serial_res.data(), 0);
    // ... wait until its first batch is really executing, then queue
    // flat work behind it on the SAME lane.
    while (!b0.inBatch())
        std::this_thread::yield();
    auto flat = randomRequests(robot, 6, 32);
    std::vector<DynamicsResult> flat_res(6);
    const int jf = server.submit(FunctionType::FD, flat.data(), 6,
                                 flat_res.data(), 0);
    server.wait(jf);
    server.wait(js);
    server.stop();

    runtime::ServerStats stats;
    SchedStats sstats;
    server.drain(&stats, &sstats);

    // The idle lane pulled the flat job; the serial job's four
    // stages all stayed on lane 0.
    ASSERT_EQ(b1.batchCounts().size(), 1u);
    EXPECT_EQ(b1.batchCounts()[0], 6u);
    EXPECT_EQ(b0.batchCounts().size(), 4u);
    EXPECT_EQ(sstats.steals, 1u);
    EXPECT_EQ(advances, 3);
    for (int i = 0; i < 6; ++i)
        expectBitwiseEqual(flat_res[i].qdd, flat[i].qd);
    // Load accounting drained to zero on both lanes.
    EXPECT_DOUBLE_EQ(server.laneLoadWeight(0), 0.0);
    EXPECT_DOUBLE_EQ(server.laneLoadWeight(1), 0.0);
}

// ---------------------------------------------------------------------
// Starvation / fairness property under saturation
// ---------------------------------------------------------------------

TEST(SchedQos, EveryTaggedJobCompletesOrIsReportedMissed)
{
    // A saturating bulk client keeps the (EDF, 1-lane) server's
    // queue full with untagged work while a latency-critical client
    // submits deadline-tagged jobs, some with deadlines that cannot
    // be met (already in the past) and some that trivially can.
    // Property: every tagged job completes (none dropped or parked),
    // and each lands in exactly one of deadline_met/deadline_misses,
    // consistently with its own completion timestamp.
    const RobotModel robot = model::makeHyq();
    RecordingBackend backend(robot, 1.0, 1.0);
    backend.setWallUsPerBatch(300.0); // real wall time per batch
    runtime::DynamicsServer server(backend);
    SchedConfig edf_cfg;
    edf_cfg.kind = PolicyKind::Edf;
    server.setPolicy(edf_cfg);
    server.start();

    constexpr int kBulkJobs = 24, kTagged = 16, kBulkN = 16;
    auto bulk_req = randomRequests(robot, kBulkN, 41);
    auto crit_req = randomRequests(robot, 2, 42);

    std::vector<std::vector<DynamicsResult>> bulk_res(
        kBulkJobs, std::vector<DynamicsResult>(kBulkN));
    std::vector<std::vector<DynamicsResult>> crit_res(
        kTagged, std::vector<DynamicsResult>(2));
    std::vector<int> tagged_jobs(kTagged);
    std::vector<double> tagged_deadlines(kTagged);

    std::thread bulk([&] {
        for (int i = 0; i < kBulkJobs; ++i)
            server.submit(FunctionType::FD, bulk_req.data(), kBulkN,
                          bulk_res[i].data());
    });
    std::thread critical([&] {
        for (int i = 0; i < kTagged; ++i) {
            JobTag tag;
            // Alternate infeasible (already passed) and trivially
            // feasible deadlines, so both buckets are exercised
            // deterministically.
            tag.deadline_us = i % 2 == 0 ? perf::nowUs() - 1000.0
                                         : perf::nowUs() + 60e6;
            tagged_deadlines[i] = tag.deadline_us;
            tagged_jobs[i] = server.submit(FunctionType::FD,
                                           crit_req.data(), 2,
                                           crit_res[i].data(), 0, tag);
        }
    });
    bulk.join();
    critical.join();
    server.stop();

    // No tagged job was dropped or parked: all complete...
    std::size_t missed = 0, met = 0;
    for (int i = 0; i < kTagged; ++i) {
        ASSERT_TRUE(server.jobDone(tagged_jobs[i]));
        const double done_at = server.jobDoneAtUs(tagged_jobs[i]);
        ASSERT_GT(done_at, 0.0);
        // ... and each is bucketed consistently with its own
        // completion timestamp.
        const bool late = done_at > tagged_deadlines[i];
        EXPECT_EQ(server.jobMissedDeadline(tagged_jobs[i]), late);
        (late ? missed : met) += 1;
        for (int p = 0; p < 2; ++p)
            expectBitwiseEqual(crit_res[i][p].qdd, crit_req[p].qd);
    }
    // The infeasible half must have missed; the 60-second half must
    // have made it (the whole run takes well under a minute).
    EXPECT_GE(missed, static_cast<std::size_t>(kTagged / 2));
    EXPECT_GE(met, 1u);

    runtime::ServerStats stats;
    SchedStats sstats;
    server.drain(&stats, &sstats);
    EXPECT_EQ(sstats.deadline_met + sstats.deadline_misses,
              static_cast<std::size_t>(kTagged));
    EXPECT_EQ(sstats.deadline_misses, missed);
    EXPECT_EQ(sstats.deadline_met, met);
    EXPECT_EQ(stats.jobs, static_cast<std::size_t>(kBulkJobs + kTagged));
}

// ---------------------------------------------------------------------
// Deadline-tagged multi-client workload
// ---------------------------------------------------------------------

TEST(SchedQos, ServeMultiClientTagsAndAccountsDeadlines)
{
    const auto robot = model::makeQuadrupedArm();
    app::MpcConfig cfg;
    cfg.horizon_points = 12;
    app::MpcWorkload workload(robot, cfg);
    accel::Accelerator accel(robot);
    runtime::AnalyticBackend base(accel);
    auto lane1 = base.clone();
    runtime::DynamicsServer server(base);
    server.addBackend(*lane1);
    SchedConfig qos;
    qos.kind = PolicyKind::Edf;
    qos.coalesce = true;
    qos.steal = true;
    server.setPolicy(qos);

    constexpr int kClients = 3, kRounds = 3;
    const app::MultiClientReport r = workload.serveMultiClient(
        server, kClients, kRounds, /*deadline_slack=*/50.0);
    EXPECT_EQ(r.jobs, static_cast<std::size_t>(kClients * kRounds * 2));
    // First round per client runs untagged (no calibration yet); the
    // remaining rounds tag both jobs, and all of them are accounted.
    EXPECT_EQ(r.deadline_met + r.deadline_misses,
              static_cast<std::size_t>(kClients * (kRounds - 1) * 2));
}

// ---------------------------------------------------------------------
// Deadline tags through sharded and serial-stage jobs
// ---------------------------------------------------------------------

TEST(SchedQos, DeadlineTagPropagatesToEveryShardUnderEdf)
{
    // Untagged bulk queued on BOTH lanes, then one tagged sharded
    // job: if the tag reaches every shard, EDF pops the shard ahead
    // of the bulk batch on each lane.
    const auto robot = model::makeSerialChain(3);
    RecordingBackend lane0(robot, 5.0, 2.0);
    RecordingBackend lane1(robot, 5.0, 2.0);
    runtime::DynamicsServer server(lane0);
    server.addBackend(lane1);
    SchedConfig cfg;
    cfg.kind = PolicyKind::Edf;
    server.setPolicy(cfg);

    const auto bulk = randomRequests(robot, 32, 1);
    std::vector<DynamicsResult> bulk_res0(32), bulk_res1(32);
    server.submit(FunctionType::FD, bulk.data(), 32, bulk_res0.data(),
                  0);
    server.submit(FunctionType::FD, bulk.data(), 32, bulk_res1.data(),
                  1);

    const auto tagged = randomRequests(robot, 12, 2);
    std::vector<DynamicsResult> tagged_res(12);
    JobTag tag;
    tag.deadline_us = perf::nowUs() + 1e6;
    const int job = server.submitSharded(FunctionType::FD,
                                         tagged.data(), 12,
                                         tagged_res.data(), tag);
    server.drain();

    EXPECT_TRUE(server.jobDone(job));
    EXPECT_FALSE(server.jobMissedDeadline(job));
    // Equal lane loads water-fill 6/6; each lane must have served
    // its 6-task shard BEFORE its 32-task bulk batch.
    ASSERT_GE(lane0.batchCounts().size(), 2u);
    ASSERT_GE(lane1.batchCounts().size(), 2u);
    EXPECT_EQ(lane0.batchCounts()[0], 6u);
    EXPECT_EQ(lane1.batchCounts()[0], 6u);
    EXPECT_EQ(lane0.batchCounts()[1], 32u);
    EXPECT_EQ(lane1.batchCounts()[1], 32u);
}

TEST(SchedQos, SerialStageResubmissionsKeepTheDeadline)
{
    // A tagged 3-stage serial job against queued untagged bulk on
    // one lane: every stage re-submission must carry the tag, so
    // stages 2 and 3 also overtake the bulk batches under EDF.
    const auto robot = model::makeSerialChain(3);
    RecordingBackend lane(robot, 5.0, 2.0);
    runtime::DynamicsServer server(lane);
    SchedConfig cfg;
    cfg.kind = PolicyKind::Edf;
    server.setPolicy(cfg);

    const auto bulk = randomRequests(robot, 16, 3);
    std::vector<DynamicsResult> bulk_res0(16), bulk_res1(16);
    server.submit(FunctionType::FD, bulk.data(), 16, bulk_res0.data());
    server.submit(FunctionType::FD, bulk.data(), 16, bulk_res1.data());

    auto serial = randomRequests(robot, 4, 4);
    std::vector<DynamicsResult> serial_res(4);
    JobTag tag;
    tag.deadline_us = perf::nowUs() + 1e6;
    const int job = server.submitSerialStages(
        FunctionType::FD, serial.data(), 4, 3, nullptr, nullptr,
        serial_res.data(), 0, tag);
    server.drain();

    EXPECT_TRUE(server.jobDone(job));
    // All three 4-task stages run before the two 16-task bulk
    // batches (the first pick happens before the serial job's later
    // stages exist, so this only holds when the tag propagates to
    // every stage re-submission).
    const std::vector<std::size_t> &counts = lane.batchCounts();
    ASSERT_EQ(counts.size(), 5u);
    EXPECT_EQ(counts[0], 4u);
    EXPECT_EQ(counts[1], 4u);
    EXPECT_EQ(counts[2], 4u);
    EXPECT_EQ(counts[3], 16u);
    EXPECT_EQ(counts[4], 16u);
}

TEST(SchedQos, LateShardedOrSerialJobIsMissedExactlyOnce)
{
    // A sharded job completes when its LAST shard does, so a
    // deadline miss marks the whole job — once, not per shard.
    const auto robot = model::makeSerialChain(3);
    RecordingBackend lane0(robot, 5.0, 2.0);
    RecordingBackend lane1(robot, 5.0, 2.0);
    runtime::DynamicsServer server(lane0);
    server.addBackend(lane1);

    const auto reqs = randomRequests(robot, 12, 5);
    std::vector<DynamicsResult> res(12);
    JobTag late;
    late.deadline_us = perf::nowUs() - 1000.0; // already in the past
    const int missed = server.submitSharded(
        FunctionType::FD, reqs.data(), 12, res.data(), late);
    runtime::sched::SchedStats s1;
    server.drain(nullptr, &s1);
    EXPECT_TRUE(server.jobMissedDeadline(missed));
    EXPECT_EQ(s1.deadline_misses, 1u);
    EXPECT_EQ(s1.deadline_met, 0u);

    JobTag generous;
    generous.deadline_us = perf::nowUs() + 60e6;
    auto serial = randomRequests(robot, 4, 6);
    std::vector<DynamicsResult> serial_res(4);
    const int met = server.submitSerialStages(
        FunctionType::FD, serial.data(), 4, 3, nullptr, nullptr,
        serial_res.data(), 0, generous);
    JobTag late2;
    late2.deadline_us = perf::nowUs() - 1000.0;
    auto serial2 = randomRequests(robot, 4, 7);
    std::vector<DynamicsResult> serial2_res(4);
    const int missed2 = server.submitSerialStages(
        FunctionType::FD, serial2.data(), 4, 3, nullptr, nullptr,
        serial2_res.data(), 0, late2);
    runtime::sched::SchedStats s2;
    server.drain(nullptr, &s2);
    EXPECT_FALSE(server.jobMissedDeadline(met));
    EXPECT_TRUE(server.jobMissedDeadline(missed2));
    EXPECT_EQ(s2.deadline_met, 1u);
    EXPECT_EQ(s2.deadline_misses, 1u);
}

// ---------------------------------------------------------------------
// predictedAdmissionUs vs executed makespan under the QoS policies
// ---------------------------------------------------------------------

TEST(SchedQos, PredictedAdmissionMatchesExecutionUnderEdfCoalesce)
{
    // Single modeled lane (no per-batch base cost, 2 µs/task) under
    // EDF + coalescing: the closed-form admission prediction for a
    // job behind a known queue must match the executed makespan in
    // backend time. Coalescing merges the small queued jobs but
    // preserves total task time, so the prediction stays tight.
    const auto robot = model::makeSerialChain(3);
    RecordingBackend lane(robot, 0.0, 2.0);
    runtime::DynamicsServer server(lane);
    SchedConfig cfg;
    cfg.kind = PolicyKind::Edf;
    cfg.coalesce = true;
    server.setPolicy(cfg);

    const auto small = randomRequests(robot, 8, 8);
    std::vector<std::vector<DynamicsResult>> small_res(
        6, std::vector<DynamicsResult>(8));
    for (int i = 0; i < 6; ++i)
        server.submit(FunctionType::FD, small.data(), 8,
                      small_res[i].data());

    const double queued = server.laneLoadWeight(0);
    EXPECT_DOUBLE_EQ(queued, 48.0); // 6 x 8 FD-equivalent tasks

    const int points = 16;
    const double predicted = app::predictedAdmissionUs(
        queued, points, 1, 2.0, 0.0,
        runtime::sched::functionWeight(FunctionType::FD));

    const auto probe = randomRequests(robot, points, 9);
    std::vector<DynamicsResult> probe_res(points);
    server.submit(FunctionType::FD, probe.data(), points,
                  probe_res.data());
    runtime::ServerStats stats;
    runtime::sched::SchedStats sstats;
    server.drain(&stats, &sstats);

    // Executed makespan in backend time: every queued task plus the
    // probe, all on the one lane.
    EXPECT_NEAR(stats.makespan_us, predicted, 0.05 * predicted);
    EXPECT_GT(sstats.coalesced_batches, 0u);
}

TEST(SchedQos, PredictedAdmissionBoundsExecutionWithStealing)
{
    // Two lanes under EDF + coalesce + steal with equal queued bulk:
    // the per-lane prediction cannot anticipate stealing, so it is
    // an upper bound on the executed makespan — but stays within the
    // band a deadline tag needs (stealing at best halves the queue).
    const auto robot = model::makeSerialChain(3);
    RecordingBackend lane0(robot, 0.0, 2.0);
    RecordingBackend lane1(robot, 0.0, 2.0);
    runtime::DynamicsServer server(lane0);
    server.addBackend(lane1);
    SchedConfig cfg;
    cfg.kind = PolicyKind::Edf;
    cfg.coalesce = true;
    cfg.steal = true;
    server.setPolicy(cfg);

    const auto small = randomRequests(robot, 8, 10);
    std::vector<std::vector<DynamicsResult>> small_res(
        6, std::vector<DynamicsResult>(8));
    for (int i = 0; i < 6; ++i)
        server.submit(FunctionType::FD, small.data(), 8,
                      small_res[i].data(), i % 2);

    double queued = server.laneLoadWeight(0);
    for (int l = 1; l < server.backendCount(); ++l)
        queued = std::min(queued, server.laneLoadWeight(l));
    EXPECT_DOUBLE_EQ(queued, 24.0); // 3 x 8 per lane

    const int points = 16;
    const double predicted = app::predictedAdmissionUs(
        queued, points, 1, 2.0, 0.0,
        runtime::sched::functionWeight(FunctionType::FD));

    const auto probe = randomRequests(robot, points, 11);
    std::vector<DynamicsResult> probe_res(points);
    const int job = server.submit(FunctionType::FD, probe.data(),
                                  points, probe_res.data(),
                                  runtime::DynamicsServer::kLeastLoaded);
    runtime::ServerStats stats;
    server.drain(&stats, nullptr);

    EXPECT_TRUE(server.jobDone(job));
    // Stealing migrates queued work between lanes, so the per-lane
    // prediction is not exact here — in the degenerate synchronous
    // drain the serving lane may pull the OTHER lane's queue ahead
    // of the probe (makespan up to all queued work + the probe).
    // What deadline tagging needs is the slack envelope: a tag of
    // now + 2x prediction must still be met in backend time, and
    // the prediction must not overshoot reality by more than 2x.
    EXPECT_LE(stats.makespan_us, predicted * 2.0);
    EXPECT_GE(stats.makespan_us, predicted * 0.5);
}

// ---------------------------------------------------------------------
// Admission predictor telemetry through the metrics registry
// ---------------------------------------------------------------------

TEST(SchedQos, AdmissionPredictionErrorConverges)
{
    // One modeled lane (no base cost, 10 µs/task, and a real wall
    // time matched to the model: 16 tasks x 10 µs = 160 µs/batch)
    // under EDF with the metrics registry on. Untagged bulk
    // completions calibrate the admission EWMA; tagged jobs then
    // carry a predicted completion whose realized error the registry
    // tracks. With a uniform workload the per-task estimate must
    // converge to the modeled 10 µs and the relative prediction
    // error must stay bounded.
    const auto robot = model::makeSerialChain(3);
    RecordingBackend backend(robot, 0.0, 10.0);
    backend.setWallUsPerBatch(160.0);
    runtime::DynamicsServer server(backend);
    SchedConfig cfg;
    cfg.kind = PolicyKind::Edf;
    cfg.obs.metrics = true;
    server.setPolicy(cfg);
    server.start();

    constexpr int kBulkJobs = 30, kTagged = 12, kN = 16;
    const auto reqs = randomRequests(robot, kN, 21);
    std::vector<std::vector<DynamicsResult>> bulk_res(
        kBulkJobs, std::vector<DynamicsResult>(kN));
    std::vector<std::vector<DynamicsResult>> crit_res(
        kTagged, std::vector<DynamicsResult>(kN));

    // Seed the EWMA with a few untagged completions before any
    // tagged submission, so every tagged job carries a prediction.
    for (int i = 0; i < 4; ++i)
        server.wait(server.submit(FunctionType::FD, reqs.data(), kN,
                                  bulk_res[i].data()));

    std::thread bulk([&] {
        for (int i = 4; i < kBulkJobs; ++i)
            server.submit(FunctionType::FD, reqs.data(), kN,
                          bulk_res[i].data());
    });
    std::thread tagged([&] {
        for (int i = 0; i < kTagged; ++i) {
            JobTag tag;
            tag.deadline_us = perf::nowUs() + 60e6; // generous
            server.wait(server.submit(FunctionType::FD, reqs.data(),
                                      kN, crit_res[i].data(), 0, tag));
        }
    });
    bulk.join();
    tagged.join();
    server.stop();

    const runtime::obs::MetricsRegistry *m = server.metricsRegistry();
    ASSERT_NE(m, nullptr);
    using runtime::obs::Counter;
    using runtime::obs::Gauge;
    // The per-task estimate converged to the modeled 10 µs/task
    // (every batch reports count x 10 µs of backend time).
    EXPECT_GT(m->gaugeSamples(Gauge::TaskUsEwma), 0u);
    EXPECT_NEAR(m->gauge(Gauge::TaskUsEwma), 10.0, 2.0);
    // Every tagged completion contributed an admission sample.
    EXPECT_GE(m->counter(Counter::AdmissionSamples),
              static_cast<std::uint64_t>(10));
    // The realized relative error is live and bounded: the modeled
    // time matches the wall time here, so predictions are within a
    // few multiples of the horizon even with queueing noise.
    EXPECT_GT(m->gauge(Gauge::AdmissionErrRelEwma), 0.0);
    EXPECT_LT(m->gauge(Gauge::AdmissionErrRelEwma), 5.0);
    // All jobs flowed through the registry's counters too.
    EXPECT_EQ(m->counter(Counter::JobsSubmitted),
              static_cast<std::uint64_t>(kBulkJobs + kTagged));
    EXPECT_EQ(m->counter(Counter::JobsCompleted),
              static_cast<std::uint64_t>(kBulkJobs + kTagged));
}

} // namespace
