/**
 * @file
 * Tests for the end-to-end MPC workload, the thread pool and the
 * Fig. 13 scheduler.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "accel/accelerator.h"
#include "app/mpc_workload.h"
#include "app/scheduler.h"
#include "app/thread_pool.h"
#include "model/builders.h"

namespace {

using namespace dadu::app;
using dadu::accel::Accelerator;
using dadu::model::makeQuadrupedArm;

TEST(ThreadPool, RunsAllTasks)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.waitAll();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitAllIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.waitAll();
    pool.submit([&count] { ++count; });
    pool.waitAll();
    EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, RunIndexedCoversEveryIndexOnce)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(257);
    for (auto &h : hits)
        h.store(0);
    pool.runIndexed(
        [](void *ctx, int i) {
            ++(*static_cast<std::vector<std::atomic<int>> *>(ctx))[i];
        },
        &hits, 257);
    for (int i = 0; i < 257; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ConcurrentRunIndexedCallersDoNotInterfere)
{
    // Regression: runIndexed's bulk_* dispatch state was shared and
    // unguarded across callers, so two concurrent bulk dispatches
    // clobbered each other's task/ctx/count and silently corrupted
    // the index space. Dispatches are now serialized on an internal
    // gate: each caller must see every one of ITS indices exactly
    // once, run with ITS context.
    ThreadPool pool(3);
    constexpr int kCallers = 4, kCount = 512, kReps = 8;
    struct Caller
    {
        std::vector<std::atomic<int>> hits =
            std::vector<std::atomic<int>>(kCount);
    };
    std::vector<Caller> callers(kCallers);
    std::vector<std::thread> threads;
    for (int c = 0; c < kCallers; ++c) {
        threads.emplace_back([&pool, &callers, c] {
            for (int rep = 0; rep < kReps; ++rep) {
                for (auto &h : callers[c].hits)
                    h.store(0);
                pool.runIndexed(
                    [](void *ctx, int i) {
                        ++(*static_cast<Caller *>(ctx)).hits[i];
                    },
                    &callers[c], kCount);
                for (int i = 0; i < kCount; ++i)
                    ASSERT_EQ(callers[c].hits[i].load(), 1)
                        << "caller " << c << " rep " << rep
                        << " index " << i;
            }
        });
    }
    for (auto &t : threads)
        t.join();
}

TEST(Scheduler, ShardedMakespanHalvesAndReducesToSerial)
{
    // shards = 1 is exactly the serial-stage model; sharding divides
    // the streamed portion but pays the per-stage latency in full.
    const double serial =
        scheduleSerialStagesUs(100, 4, 24.0, 120.0, 125.0);
    EXPECT_NEAR(scheduleShardedUs(100, 4, 1, 24.0, 120.0, 125.0),
                serial, 1e-12);
    const double two = scheduleShardedUs(100, 4, 2, 24.0, 120.0, 125.0);
    EXPECT_NEAR(two,
                scheduleSerialStagesUs(50, 4, 24.0, 120.0, 125.0),
                1e-12);
    EXPECT_LT(two, serial);
    EXPECT_GT(2.0 * two, serial); // latency share does not shard away
}

TEST(Scheduler, PipelineBeatsCpuOnParallelStages)
{
    // 100 points x 4 serial stages: the pipeline pays latency per
    // stage boundary, the CPU pays the full task time per stage.
    const double accel_us =
        scheduleSerialStagesUs(100, 4, 24.0, 120.0, 125.0);
    const double cpu_us = scheduleCpuUs(100, 4, 8.0, 4);
    EXPECT_LT(accel_us, cpu_us);
}

TEST(Scheduler, SerialStagesScaleLinearly)
{
    const double two = scheduleSerialStagesUs(100, 2, 24.0, 120.0, 125.0);
    const double four = scheduleSerialStagesUs(100, 4, 24.0, 120.0, 125.0);
    EXPECT_NEAR(four / two, 2.0, 1e-9);
}

TEST(Scheduler, CpuRoundsUpToThreadGranularity)
{
    EXPECT_DOUBLE_EQ(scheduleCpuUs(5, 1, 10.0, 4), 20.0);
    EXPECT_DOUBLE_EQ(scheduleCpuUs(4, 1, 10.0, 4), 10.0);
}

TEST(MpcBreakdown, DerivativeShareIsZeroOnEmptyBreakdown)
{
    // A default (all-zero) breakdown must not divide by zero.
    const MpcBreakdown empty;
    EXPECT_EQ(empty.derivativeShare(), 0.0);
}

TEST(MpcWorkload, BreakdownDominatedByDynamics)
{
    // Fig. 2c: the LQ approximation (dynamics derivatives) is the
    // largest share of the iteration.
    const auto robot = makeQuadrupedArm();
    MpcConfig cfg;
    cfg.horizon_points = 10; // keep the test fast
    MpcWorkload workload(robot, cfg);
    const MpcBreakdown b = workload.measureCpu();
    EXPECT_GT(b.lq_us, 0.0);
    EXPECT_GT(b.rollout_us, 0.0);
    EXPECT_GT(b.solver_us, 0.0);
    EXPECT_GT(b.derivativeShare(), 0.3);
}

TEST(MpcWorkload, MoreThreadsReduceIterationTime)
{
    const auto robot = makeQuadrupedArm();
    MpcConfig cfg;
    cfg.horizon_points = 8;
    MpcWorkload workload(robot, cfg);
    // One measurement, two thread counts: comparing separate
    // wall-clock measurements is load-sensitive (parallel ctest on a
    // small container), while the scaling model is deterministic.
    const MpcBreakdown b = workload.measureCpu();
    const double t1 = MpcWorkload::cpuIterationUsFrom(b, 1);
    const double t4 = MpcWorkload::cpuIterationUsFrom(b, 4);
    EXPECT_LT(t4, t1);
}

TEST(MpcWorkload, AcceleratorBeatsFourThreadCpu)
{
    // Section VI-B: the accelerated tasks speed up ~11x and the
    // control frequency rises vs a 4-thread CPU. The accelerated
    // dynamics phases are real simulated batches (deterministic);
    // the measured CPU phases are shared between both sides so
    // wall-clock jitter under parallel test load cannot flip the
    // comparison.
    const auto robot = makeQuadrupedArm();
    MpcConfig cfg;
    cfg.horizon_points = 16;
    MpcWorkload workload(robot, cfg);
    Accelerator accel(robot);
    dadu::runtime::AcceleratorBackend backend(accel);

    const MpcBreakdown cpu = workload.measureCpu();
    const MpcBreakdown sim = workload.backendBreakdown(backend);
    const double cpu4 = MpcWorkload::cpuIterationUsFrom(cpu, 4);
    const double accelerated = MpcWorkload::iterationUsFrom(
        MpcBreakdown{sim.lq_us, sim.rollout_us, cpu.solver_us},
        /*offloaded=*/true);
    EXPECT_LT(accelerated, cpu4);
}

} // namespace
