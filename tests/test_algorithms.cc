/**
 * @file
 * Cross-validation tests for the reference dynamics algorithms:
 * the identities of Section III-A (FD = M⁻¹ ID, ∆FD = M⁻¹ ∆ID),
 * algorithm-vs-algorithm agreement, and analytical derivatives vs
 * finite differences.
 */

#include <gtest/gtest.h>

#include <random>

#include "algorithms/aba.h"
#include "algorithms/crba.h"
#include "algorithms/dynamics.h"
#include "algorithms/finite_diff.h"
#include "algorithms/mminv_gen.h"
#include "algorithms/rnea.h"
#include "algorithms/rnea_derivatives.h"
#include "linalg/factorize.h"
#include "model/builders.h"

namespace {

using namespace dadu::algo;
using dadu::linalg::MatrixX;
using dadu::linalg::Vec6;
using dadu::linalg::VectorX;
using dadu::model::makeAtlas;
using dadu::model::makeHyq;
using dadu::model::makeIiwa;
using dadu::model::makeQuadrupedArm;
using dadu::model::makeSerialChain;
using dadu::model::makeSpotArm;
using dadu::model::makeTiago;
using dadu::model::RobotModel;

/** All evaluation and walkthrough robots, keyed for TEST_P. */
RobotModel
robotByName(const std::string &name)
{
    if (name == "iiwa")
        return makeIiwa();
    if (name == "hyq")
        return makeHyq();
    if (name == "atlas")
        return makeAtlas();
    if (name == "quadarm")
        return makeQuadrupedArm();
    if (name == "tiago")
        return makeTiago();
    if (name == "spot")
        return makeSpotArm();
    return makeSerialChain(5);
}

std::vector<Vec6>
randomExternalForces(const RobotModel &robot, std::mt19937 &rng)
{
    std::uniform_real_distribution<double> d(-2.0, 2.0);
    std::vector<Vec6> f(robot.nb());
    for (auto &v : f)
        for (int i = 0; i < 6; ++i)
            v[i] = d(rng);
    return f;
}

class DynamicsTest : public ::testing::TestWithParam<std::string>
{
  protected:
    void
    SetUp() override
    {
        robot_ = robotByName(GetParam());
        rng_.seed(2024);
    }

    RobotModel robot_{"empty"};
    std::mt19937 rng_;
};

TEST_P(DynamicsTest, GravityTorqueAtRest)
{
    // At rest with q̈ = 0, τ = gravity torque; for a fixed-base arm
    // hanging under gravity the shoulder torque is nonzero while a
    // weightless configuration yields zero.
    const VectorX q = robot_.neutralConfiguration();
    const VectorX zero(robot_.nv());
    RobotModel weightless = robot_;
    weightless.setGravity(Vec6::zero());
    const VectorX tau = rnea(weightless, q, zero, zero).tau;
    EXPECT_LT(tau.maxAbs(), 1e-10);
}

TEST_P(DynamicsTest, RneaLinearInQdd)
{
    // τ(q̈₁ + q̈₂) - τ(0) == (τ(q̈₁) - τ(0)) + (τ(q̈₂) - τ(0)):
    // the equation of motion is linear in q̈ (Section III-A).
    const VectorX q = robot_.randomConfiguration(rng_);
    const VectorX qd = robot_.randomVelocity(rng_);
    const VectorX a1 = robot_.randomVelocity(rng_);
    const VectorX a2 = robot_.randomVelocity(rng_);
    const VectorX zero(robot_.nv());

    const VectorX t0 = rnea(robot_, q, qd, zero).tau;
    const VectorX t1 = rnea(robot_, q, qd, a1).tau;
    const VectorX t2 = rnea(robot_, q, qd, a2).tau;
    const VectorX t12 = rnea(robot_, q, qd, a1 + a2).tau;
    EXPECT_LT((t12 - t0 - (t1 - t0) - (t2 - t0)).maxAbs(), 1e-8);
}

TEST_P(DynamicsTest, MassMatrixMatchesRneaColumns)
{
    // M e_k = ID(q, 0, e_k) - ID(q, 0, 0): probe CRBA against RNEA.
    const VectorX q = robot_.randomConfiguration(rng_);
    const VectorX zero(robot_.nv());
    const MatrixX m = crba(robot_, q);
    const VectorX bias = rnea(robot_, q, zero, zero).tau;
    for (int k = 0; k < robot_.nv(); ++k) {
        VectorX ek(robot_.nv());
        ek[k] = 1.0;
        const VectorX col = rnea(robot_, q, zero, ek).tau - bias;
        for (int r = 0; r < robot_.nv(); ++r)
            EXPECT_NEAR(m(r, k), col[r], 1e-8);
    }
}

TEST_P(DynamicsTest, MassMatrixSymmetricPositiveDefinite)
{
    const VectorX q = robot_.randomConfiguration(rng_);
    const MatrixX m = crba(robot_, q);
    EXPECT_LT((m - m.transpose()).maxAbs(), 1e-9);
    EXPECT_TRUE(dadu::linalg::Cholesky(m).ok());
}

TEST_P(DynamicsTest, MMinvGenMassMatrixMatchesCrba)
{
    const VectorX q = robot_.randomConfiguration(rng_);
    const MatrixX m_crba = crba(robot_, q);
    const MatrixX m_gen = massMatrix(robot_, q);
    EXPECT_LT((m_crba - m_gen).maxAbs(), 1e-8);
}

TEST_P(DynamicsTest, MMinvGenInverseIsTrueInverse)
{
    const VectorX q = robot_.randomConfiguration(rng_);
    const MatrixX m = crba(robot_, q);
    const MatrixX minv = massMatrixInverse(robot_, q);
    const MatrixX eye = MatrixX::identity(robot_.nv());
    EXPECT_LT((m * minv - eye).maxAbs(), 1e-7);
    EXPECT_LT((minv * m - eye).maxAbs(), 1e-7);
}

TEST_P(DynamicsTest, MinvIsSymmetric)
{
    const VectorX q = robot_.randomConfiguration(rng_);
    const MatrixX minv = massMatrixInverse(robot_, q);
    EXPECT_LT((minv - minv.transpose()).maxAbs(), 1e-8);
}

TEST_P(DynamicsTest, FdIdRoundTrip)
{
    // q̈ = FD(q, q̇, ID(q, q̇, q̈)): Eq. (2) of the paper.
    const VectorX q = robot_.randomConfiguration(rng_);
    const VectorX qd = robot_.randomVelocity(rng_);
    const VectorX qdd = robot_.randomVelocity(rng_);
    const VectorX tau = rnea(robot_, q, qd, qdd).tau;
    const VectorX qdd_back = forwardDynamics(robot_, q, qd, tau);
    EXPECT_LT((qdd_back - qdd).maxAbs(), 1e-6);
}

TEST_P(DynamicsTest, AbaMatchesMinvRoute)
{
    const VectorX q = robot_.randomConfiguration(rng_);
    const VectorX qd = robot_.randomVelocity(rng_);
    const VectorX tau = robot_.randomVelocity(rng_);
    const VectorX qdd_aba = aba(robot_, q, qd, tau);
    const VectorX qdd_minv = forwardDynamics(robot_, q, qd, tau);
    EXPECT_LT((qdd_aba - qdd_minv).maxAbs(), 1e-6);
}

TEST_P(DynamicsTest, CholeskyFdMatchesAba)
{
    const VectorX q = robot_.randomConfiguration(rng_);
    const VectorX qd = robot_.randomVelocity(rng_);
    const VectorX tau = robot_.randomVelocity(rng_);
    EXPECT_LT((forwardDynamicsCholesky(robot_, q, qd, tau) -
               aba(robot_, q, qd, tau)).maxAbs(),
              1e-6);
}

TEST_P(DynamicsTest, ExternalForcesEnterRnea)
{
    const VectorX q = robot_.randomConfiguration(rng_);
    const VectorX qd = robot_.randomVelocity(rng_);
    const VectorX qdd = robot_.randomVelocity(rng_);
    const auto fext = randomExternalForces(robot_, rng_);
    const VectorX t_with = rnea(robot_, q, qd, qdd, &fext).tau;
    const VectorX t_without = rnea(robot_, q, qd, qdd).tau;
    EXPECT_GT((t_with - t_without).maxAbs(), 1e-6);
}

TEST_P(DynamicsTest, FdIdRoundTripWithExternalForces)
{
    const VectorX q = robot_.randomConfiguration(rng_);
    const VectorX qd = robot_.randomVelocity(rng_);
    const VectorX qdd = robot_.randomVelocity(rng_);
    const auto fext = randomExternalForces(robot_, rng_);
    const VectorX tau = rnea(robot_, q, qd, qdd, &fext).tau;
    const VectorX back = aba(robot_, q, qd, tau, &fext);
    EXPECT_LT((back - qdd).maxAbs(), 1e-6);
}

TEST_P(DynamicsTest, DtauDqMatchesFiniteDifferences)
{
    const VectorX q = robot_.randomConfiguration(rng_);
    const VectorX qd = robot_.randomVelocity(rng_);
    const VectorX qdd = robot_.randomVelocity(rng_);
    const RneaDerivatives d = rneaDerivatives(robot_, q, qd, qdd);
    const MatrixX num = numericalDtauDq(robot_, q, qd, qdd);
    EXPECT_LT((d.dtau_dq - num).maxAbs(), 1e-4);
}

TEST_P(DynamicsTest, DtauDqdMatchesFiniteDifferences)
{
    const VectorX q = robot_.randomConfiguration(rng_);
    const VectorX qd = robot_.randomVelocity(rng_);
    const VectorX qdd = robot_.randomVelocity(rng_);
    const RneaDerivatives d = rneaDerivatives(robot_, q, qd, qdd);
    const MatrixX num = numericalDtauDqd(robot_, q, qd, qdd);
    EXPECT_LT((d.dtau_dqd - num).maxAbs(), 1e-5);
}

TEST_P(DynamicsTest, DerivativesWithExternalForces)
{
    const VectorX q = robot_.randomConfiguration(rng_);
    const VectorX qd = robot_.randomVelocity(rng_);
    const VectorX qdd = robot_.randomVelocity(rng_);
    const auto fext = randomExternalForces(robot_, rng_);
    const RneaDerivatives d = rneaDerivatives(robot_, q, qd, qdd, &fext);
    const MatrixX num = numericalDtauDq(robot_, q, qd, qdd, &fext);
    EXPECT_LT((d.dtau_dq - num).maxAbs(), 1e-4);
}

TEST_P(DynamicsTest, FdDerivativesMatchFiniteDifferences)
{
    const VectorX q = robot_.randomConfiguration(rng_);
    const VectorX qd = robot_.randomVelocity(rng_);
    const VectorX tau = robot_.randomVelocity(rng_);
    const FdDerivatives d = fdDerivatives(robot_, q, qd, tau);
    const MatrixX num_q = numericalDqddDq(robot_, q, qd, tau);
    const MatrixX num_qd = numericalDqddDqd(robot_, q, qd, tau);
    EXPECT_LT((d.dqdd_dq - num_q).maxAbs(), 2e-4);
    EXPECT_LT((d.dqdd_dqd - num_qd).maxAbs(), 1e-4);
}

TEST_P(DynamicsTest, DiFdMatchesDFd)
{
    // ∆iFD (q̈ and M⁻¹ supplied) agrees with the full ∆FD.
    const VectorX q = robot_.randomConfiguration(rng_);
    const VectorX qd = robot_.randomVelocity(rng_);
    const VectorX tau = robot_.randomVelocity(rng_);
    const FdDerivatives full = fdDerivatives(robot_, q, qd, tau);
    const FdDerivatives given = fdDerivativesGivenAccel(
        robot_, q, qd, full.qdd, full.minv);
    EXPECT_LT((full.dqdd_dq - given.dqdd_dq).maxAbs(), 1e-10);
    EXPECT_LT((full.dqdd_dqd - given.dqdd_dqd).maxAbs(), 1e-10);
}

TEST_P(DynamicsTest, DtauDqdSparsityFollowsTopology)
{
    // ∂τ_i/∂q̇_j == 0 when joints i and j lie on unrelated branches —
    // the branch-induced sparsity of Fig. 5 / Section V-C4.
    const VectorX q = robot_.randomConfiguration(rng_);
    const VectorX qd = robot_.randomVelocity(rng_);
    const VectorX qdd = robot_.randomVelocity(rng_);
    const RneaDerivatives d = rneaDerivatives(robot_, q, qd, qdd);
    for (int i = 0; i < robot_.nb(); ++i) {
        for (int j = 0; j < robot_.nb(); ++j) {
            if (robot_.isAncestorOf(i, j) || robot_.isAncestorOf(j, i))
                continue;
            const auto &li = robot_.link(i);
            const auto &lj = robot_.link(j);
            for (int r = 0; r < robot_.subspace(i).nv(); ++r)
                for (int c = 0; c < robot_.subspace(j).nv(); ++c)
                    EXPECT_NEAR(d.dtau_dqd(li.vIndex + r, lj.vIndex + c),
                                0.0, 1e-12);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Robots, DynamicsTest,
                         ::testing::Values("iiwa", "hyq", "atlas",
                                           "quadarm", "tiago", "spot"),
                         [](const auto &info) { return info.param; });

TEST(DynamicsScaling, SerialChainsOfManySizes)
{
    // Property sweep: FD∘ID identity across chain lengths.
    std::mt19937 rng(5);
    for (int n : {1, 2, 3, 4, 6, 9, 14, 20}) {
        const RobotModel robot = makeSerialChain(n);
        const VectorX q = robot.randomConfiguration(rng);
        const VectorX qd = robot.randomVelocity(rng);
        const VectorX qdd = robot.randomVelocity(rng);
        const VectorX tau = rnea(robot, q, qd, qdd).tau;
        EXPECT_LT((aba(robot, q, qd, tau) - qdd).maxAbs(), 1e-7)
            << "n=" << n;
    }
}

TEST(DynamicsEnergy, PowerBalance)
{
    // d/dt (kinetic energy) == q̇·τ - q̇·g-term when no velocity
    // bias work: verified via τ·q̇ = q̇ᵀ M q̈ + q̇ᵀ C. Here simply check
    // q̇ᵀ(ID(q,q̇,q̈) - C) == q̇ᵀ M q̈ (linearity consistency).
    std::mt19937 rng(11);
    const RobotModel robot = makeIiwa();
    const VectorX q = robot.randomConfiguration(rng);
    const VectorX qd = robot.randomVelocity(rng);
    const VectorX qdd = robot.randomVelocity(rng);
    const VectorX c = biasForce(robot, q, qd);
    const VectorX tau = rnea(robot, q, qd, qdd).tau;
    const MatrixX m = crba(robot, q);
    EXPECT_NEAR(qd.dot(tau - c), qd.dot(m * qdd), 1e-8);
}

TEST(DynamicsEdge, SingleLinkPendulum)
{
    // Closed-form check: a point mass m on a massless rod of length l
    // about a revolute-y joint: τ = m l² q̈ + m g l sin(q)... with our
    // frame conventions, the link CoM at (0,0,-l) and rotation about
    // y gives M = m l² and gravity torque m g l sin(q).
    RobotModel robot("pendulum");
    const double m = 2.0, l = 0.5, g = 9.81;
    robot.addLink("rod", -1, dadu::model::JointType::RevoluteY,
                  dadu::spatial::SpatialTransform::identity(),
                  dadu::spatial::SpatialInertia::fromComInertia(
                      m, dadu::linalg::Vec3{0, 0, -l},
                      dadu::linalg::Mat3::zero()));
    const MatrixX mm = crba(robot, VectorX{0.3});
    EXPECT_NEAR(mm(0, 0), m * l * l, 1e-12);

    const VectorX tau =
        rnea(robot, VectorX{0.3}, VectorX{0}, VectorX{0}).tau;
    EXPECT_NEAR(tau[0], m * g * l * std::sin(0.3), 1e-10);
}

} // namespace
