/**
 * @file
 * Tests for the workspace/batched dynamics engine:
 *
 *  - batched results match the single-point reference bitwise for a
 *    quadruped (HyQ) and a humanoid (Atlas);
 *  - a reused workspace produces identical results across repeated
 *    calls with different inputs;
 *  - a counted global allocator shows zero heap allocations in the
 *    steady-state hot loop, both for the single-thread workspace
 *    path and for a whole batched dispatch.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <random>
#include <vector>

#include "algorithms/aba.h"
#include "algorithms/batched.h"
#include "algorithms/crba.h"
#include "algorithms/dynamics.h"
#include "algorithms/finite_diff.h"
#include "algorithms/mminv_gen.h"
#include "algorithms/rnea.h"
#include "algorithms/workspace.h"
#include "linalg/factorize.h"
#include "model/builders.h"
#include "test_support.h"

// ---------------------------------------------------------------------
// Counted global allocator. Counting is off by default so the test
// harness itself is unaffected; the zero-allocation tests switch it
// on around the measured region only.
// ---------------------------------------------------------------------

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<long> g_alloc_count{0};

} // namespace

void *
operator new(std::size_t size)
{
    if (g_count_allocs.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace dadu::algo;
using dadu::linalg::MatrixX;
using dadu::linalg::VectorX;
using dadu::model::makeAtlas;
using dadu::model::makeHyq;
using dadu::model::RobotModel;

struct Batch
{
    std::vector<VectorX> q, qd, tau;
};

Batch
randomBatch(const RobotModel &robot, int n, unsigned seed)
{
    std::mt19937 rng(seed);
    Batch b;
    for (int i = 0; i < n; ++i) {
        b.q.push_back(robot.randomConfiguration(rng));
        b.qd.push_back(robot.randomVelocity(rng));
        b.tau.push_back(robot.randomVelocity(rng));
    }
    return b;
}

using dadu::tests::expectBitwiseEqual;

class BatchedTest : public ::testing::TestWithParam<const char *>
{
  protected:
    RobotModel
    robot() const
    {
        return std::string(GetParam()) == "hyq" ? makeHyq() : makeAtlas();
    }
};

TEST_P(BatchedTest, ForwardDynamicsMatchesSinglePointBitwise)
{
    const RobotModel robot = this->robot();
    const Batch in = randomBatch(robot, 24, 42);
    BatchedDynamics engine(robot, 4);
    const auto &batch = engine.batchForwardDynamics(in.q, in.qd, in.tau);

    DynamicsWorkspace ws(robot);
    VectorX qdd;
    for (int i = 0; i < 24; ++i) {
        forwardDynamics(robot, ws, in.q[i], in.qd[i], in.tau[i], qdd);
        expectBitwiseEqual(batch[i], qdd);
    }
}

TEST_P(BatchedTest, FdDerivativesMatchSinglePointBitwise)
{
    const RobotModel robot = this->robot();
    const Batch in = randomBatch(robot, 16, 7);
    BatchedDynamics engine(robot, 3);
    const auto &batch = engine.batchFdDerivatives(in.q, in.qd, in.tau);

    DynamicsWorkspace ws(robot);
    FdDerivatives single;
    for (int i = 0; i < 16; ++i) {
        fdDerivatives(robot, ws, in.q[i], in.qd[i], in.tau[i], single);
        expectBitwiseEqual(batch[i].qdd, single.qdd);
        expectBitwiseEqual(batch[i].minv, single.minv);
        expectBitwiseEqual(batch[i].dqdd_dq, single.dqdd_dq);
        expectBitwiseEqual(batch[i].dqdd_dqd, single.dqdd_dqd);
    }
}

TEST_P(BatchedTest, MinvMatchesSinglePointBitwise)
{
    const RobotModel robot = this->robot();
    const Batch in = randomBatch(robot, 12, 99);
    BatchedDynamics engine(robot, 4);
    const auto &batch = engine.batchMinv(in.q);

    DynamicsWorkspace ws(robot);
    MatrixX minv;
    for (int i = 0; i < 12; ++i) {
        massMatrixInverse(robot, ws, in.q[i], minv);
        expectBitwiseEqual(batch[i], minv);
    }
}

TEST_P(BatchedTest, AllocatingWrappersMatchWorkspaceOverloads)
{
    const RobotModel robot = this->robot();
    const Batch in = randomBatch(robot, 4, 3);
    DynamicsWorkspace ws(robot);
    VectorX qdd;
    FdDerivatives fd;
    for (int i = 0; i < 4; ++i) {
        aba(robot, ws, in.q[i], in.qd[i], in.tau[i], qdd);
        expectBitwiseEqual(aba(robot, in.q[i], in.qd[i], in.tau[i]), qdd);
        fdDerivatives(robot, ws, in.q[i], in.qd[i], in.tau[i], fd);
        const FdDerivatives ref =
            fdDerivatives(robot, in.q[i], in.qd[i], in.tau[i]);
        expectBitwiseEqual(ref.qdd, fd.qdd);
        expectBitwiseEqual(ref.dqdd_dq, fd.dqdd_dq);
    }
}

TEST_P(BatchedTest, ReusedWorkspaceIsDeterministicAcrossInputs)
{
    // Evaluate A, then B (different input), then A again with the
    // same workspace: the second A result must be bitwise identical
    // to the first — no state may leak between calls.
    const RobotModel robot = this->robot();
    const Batch in = randomBatch(robot, 2, 1234);
    DynamicsWorkspace ws(robot);

    FdDerivatives first_a, b, second_a;
    fdDerivatives(robot, ws, in.q[0], in.qd[0], in.tau[0], first_a);
    // Copy: the next calls overwrite the output struct.
    const MatrixX dq_a = first_a.dqdd_dq;
    const MatrixX dqd_a = first_a.dqdd_dqd;
    const VectorX qdd_a = first_a.qdd;

    fdDerivatives(robot, ws, in.q[1], in.qd[1], in.tau[1], b);
    fdDerivatives(robot, ws, in.q[0], in.qd[0], in.tau[0], second_a);

    expectBitwiseEqual(qdd_a, second_a.qdd);
    expectBitwiseEqual(dq_a, second_a.dqdd_dq);
    expectBitwiseEqual(dqd_a, second_a.dqdd_dqd);

    // Same for ABA and the finite-difference helpers.
    VectorX aba_a, aba_b, aba_a2;
    aba(robot, ws, in.q[0], in.qd[0], in.tau[0], aba_a);
    const VectorX aba_a_copy = aba_a;
    aba(robot, ws, in.q[1], in.qd[1], in.tau[1], aba_b);
    aba(robot, ws, in.q[0], in.qd[0], in.tau[0], aba_a2);
    expectBitwiseEqual(aba_a_copy, aba_a2);

    MatrixX j_a, j_b, j_a2;
    numericalDqddDq(robot, ws, in.q[0], in.qd[0], in.tau[0], j_a);
    const MatrixX j_a_copy = j_a;
    numericalDqddDq(robot, ws, in.q[1], in.qd[1], in.tau[1], j_b);
    numericalDqddDq(robot, ws, in.q[0], in.qd[0], in.tau[0], j_a2);
    expectBitwiseEqual(j_a_copy, j_a2);
}

TEST_P(BatchedTest, WorkspaceHotLoopIsAllocationFree)
{
    const RobotModel robot = this->robot();
    const Batch in = randomBatch(robot, 8, 5);
    DynamicsWorkspace ws(robot);
    VectorX qdd;
    FdDerivatives fd;
    RneaResult rnea_res;
    MatrixX m;

    // Warm up: first calls size every output buffer.
    for (int i = 0; i < 8; ++i) {
        fdDerivatives(robot, ws, in.q[i], in.qd[i], in.tau[i], fd);
        aba(robot, ws, in.q[i], in.qd[i], in.tau[i], qdd);
        rnea(robot, ws, in.q[i], in.qd[i], in.tau[i], rnea_res);
        crba(robot, ws, in.q[i], m);
        massMatrixInverse(robot, ws, in.q[i], m);
    }

    g_alloc_count.store(0);
    g_count_allocs.store(true);
    for (int rep = 0; rep < 3; ++rep) {
        for (int i = 0; i < 8; ++i) {
            fdDerivatives(robot, ws, in.q[i], in.qd[i], in.tau[i], fd);
            aba(robot, ws, in.q[i], in.qd[i], in.tau[i], qdd);
            rnea(robot, ws, in.q[i], in.qd[i], in.tau[i], rnea_res);
            crba(robot, ws, in.q[i], m);
            massMatrixInverse(robot, ws, in.q[i], m);
        }
    }
    g_count_allocs.store(false);
    EXPECT_EQ(g_alloc_count.load(), 0)
        << "steady-state workspace loop allocated";
}

TEST_P(BatchedTest, BatchedSteadyStateIsAllocationFree)
{
    const RobotModel robot = this->robot();
    const Batch in = randomBatch(robot, 32, 77);
    BatchedDynamics engine(robot, 4);

    // Warm up: sizes the engine outputs and every chunk workspace.
    engine.batchFdDerivatives(in.q, in.qd, in.tau);
    engine.batchForwardDynamics(in.q, in.qd, in.tau);
    engine.batchMinv(in.q);

    // Steady state: the whole dispatch — runIndexed fan-out across
    // the pool included — must stay off the heap.
    g_alloc_count.store(0);
    g_count_allocs.store(true);
    for (int rep = 0; rep < 3; ++rep) {
        engine.batchFdDerivatives(in.q, in.qd, in.tau);
        engine.batchForwardDynamics(in.q, in.qd, in.tau);
        engine.batchMinv(in.q);
    }
    g_count_allocs.store(false);
    EXPECT_EQ(g_alloc_count.load(), 0)
        << "steady-state batched dispatch allocated";
}

INSTANTIATE_TEST_SUITE_P(Robots, BatchedTest,
                         ::testing::Values("hyq", "atlas"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

TEST(BatchedEngine, GrowAndShrinkBatches)
{
    // Batch size may change between calls; results stay correct.
    const RobotModel robot = makeHyq();
    BatchedDynamics engine(robot, 4);
    DynamicsWorkspace ws(robot);
    VectorX qdd;
    for (int n : {5, 17, 3, 32}) {
        const Batch in = randomBatch(robot, n, 50 + n);
        const auto &batch =
            engine.batchForwardDynamics(in.q, in.qd, in.tau);
        for (int i = 0; i < n; ++i) {
            forwardDynamics(robot, ws, in.q[i], in.qd[i], in.tau[i], qdd);
            for (std::size_t k = 0; k < qdd.size(); ++k)
                EXPECT_EQ(batch[i][k], qdd[k]);
        }
    }
}

TEST(BatchedEngine, SingleThreadEngineRunsInline)
{
    // threads = 1 spawns no pool workers; everything runs on the
    // calling thread and still matches the reference.
    const RobotModel robot = makeHyq();
    BatchedDynamics engine(robot, 1);
    EXPECT_EQ(engine.workspaceCount(), 1);
    const Batch in = randomBatch(robot, 6, 9);
    const auto &batch = engine.batchForwardDynamics(in.q, in.qd, in.tau);
    DynamicsWorkspace ws(robot);
    VectorX qdd;
    for (int i = 0; i < 6; ++i) {
        forwardDynamics(robot, ws, in.q[i], in.qd[i], in.tau[i], qdd);
        for (std::size_t k = 0; k < qdd.size(); ++k)
            EXPECT_EQ(batch[i][k], qdd[k]);
    }
}

TEST(SmallLdltTest, MatchesGeneralLdltInverse)
{
    std::mt19937 rng(2024);
    std::uniform_real_distribution<double> d(-1.0, 1.0);
    for (int n = 1; n <= 6; ++n) {
        // SPD matrix A = B B^T + n I.
        MatrixX b(n, n);
        for (int r = 0; r < n; ++r)
            for (int c = 0; c < n; ++c)
                b(r, c) = d(rng);
        MatrixX a = b * b.transpose();
        for (int i = 0; i < n; ++i)
            a(i, i) += n;

        dadu::linalg::SmallLdlt small;
        ASSERT_TRUE(small.compute(a));
        double inv[36];
        small.inverseInto(inv);

        const MatrixX ref = dadu::linalg::Ldlt(a).inverse();
        for (int r = 0; r < n; ++r)
            for (int c = 0; c < n; ++c)
                EXPECT_EQ(inv[r * n + c], ref(r, c))
                    << "n=" << n << " r=" << r << " c=" << c;
    }
}

TEST(LdltInPlace, RefactorizeReusesStorage)
{
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> d(-1.0, 1.0);
    dadu::linalg::Ldlt ldlt;
    for (int round = 0; round < 3; ++round) {
        MatrixX b(5, 5);
        for (int r = 0; r < 5; ++r)
            for (int c = 0; c < 5; ++c)
                b(r, c) = d(rng);
        MatrixX a = b * b.transpose();
        for (int i = 0; i < 5; ++i)
            a(i, i) += 5.0;
        ASSERT_TRUE(ldlt.compute(a));
        VectorX rhs(5);
        for (int i = 0; i < 5; ++i)
            rhs[i] = d(rng);
        VectorX x = rhs;
        ldlt.solveInPlace(x);
        const VectorX ref = dadu::linalg::Ldlt(a).solve(rhs);
        for (int i = 0; i < 5; ++i)
            EXPECT_EQ(x[i], ref[i]);
    }
}

} // namespace
