/**
 * @file
 * Unit and property tests for spatial algebra: Plücker transforms,
 * cross operators, inertias.
 */

#include <gtest/gtest.h>

#include <random>

#include "spatial/cross.h"
#include "spatial/inertia.h"
#include "spatial/transform.h"

namespace {

using namespace dadu::linalg;
using namespace dadu::spatial;

std::mt19937 &
rng()
{
    static std::mt19937 gen(1234);
    return gen;
}

double
uni(double lo = -1.0, double hi = 1.0)
{
    std::uniform_real_distribution<double> d(lo, hi);
    return d(rng());
}

Vec6
randomVec6()
{
    Vec6 v;
    for (int i = 0; i < 6; ++i)
        v[i] = uni();
    return v;
}

SpatialTransform
randomTransform()
{
    const Mat3 e = rotZ(uni(-3, 3)) * rotY(uni(-3, 3)) * rotX(uni(-3, 3));
    return SpatialTransform(e, Vec3{uni(), uni(), uni()});
}

SpatialInertia
randomInertia()
{
    const double m = uni(0.5, 5.0);
    const Vec3 com{uni(-0.2, 0.2), uni(-0.2, 0.2), uni(-0.2, 0.2)};
    // Diagonal-dominant positive-definite rotational inertia.
    Mat3 ic;
    ic(0, 0) = uni(0.05, 0.5);
    ic(1, 1) = uni(0.05, 0.5);
    ic(2, 2) = uni(0.05, 0.5);
    ic(0, 1) = ic(1, 0) = uni(-0.01, 0.01);
    ic(0, 2) = ic(2, 0) = uni(-0.01, 0.01);
    ic(1, 2) = ic(2, 1) = uni(-0.01, 0.01);
    return SpatialInertia::fromComInertia(m, com, ic);
}

TEST(Cross, MotionMatchesMatrixForm)
{
    for (int t = 0; t < 20; ++t) {
        const Vec6 v = randomVec6(), w = randomVec6();
        EXPECT_LT((crossMotion(v, w) - crmMatrix(v) * w).maxAbs(), 1e-14);
    }
}

TEST(Cross, ForceMatchesMatrixForm)
{
    for (int t = 0; t < 20; ++t) {
        const Vec6 v = randomVec6(), f = randomVec6();
        EXPECT_LT((crossForce(v, f) - crfMatrix(v) * f).maxAbs(), 1e-14);
    }
}

TEST(Cross, MotionAntisymmetric)
{
    for (int t = 0; t < 20; ++t) {
        const Vec6 v = randomVec6(), w = randomVec6();
        EXPECT_LT((crossMotion(v, w) + crossMotion(w, v)).maxAbs(), 1e-14);
    }
}

TEST(Cross, CrfIsMinusCrmTransposed)
{
    for (int t = 0; t < 10; ++t) {
        const Vec6 v = randomVec6();
        EXPECT_LT((crfMatrix(v) + crmMatrix(v).transpose()).maxAbs(),
                  1e-14);
    }
}

TEST(Cross, SelfCrossIsZero)
{
    const Vec6 v = randomVec6();
    EXPECT_LT(crossMotion(v, v).maxAbs(), 1e-14);
}

TEST(Transform, IdentityIsNeutral)
{
    const Vec6 v = randomVec6();
    const SpatialTransform id;
    EXPECT_LT((id.applyMotion(v) - v).maxAbs(), 1e-15);
    EXPECT_LT((id.applyForce(v) - v).maxAbs(), 1e-15);
}

TEST(Transform, MatchesDenseMatrix)
{
    for (int t = 0; t < 20; ++t) {
        const SpatialTransform x = randomTransform();
        const Vec6 v = randomVec6();
        EXPECT_LT((x.applyMotion(v) - x.toMatrix() * v).maxAbs(), 1e-13);
        EXPECT_LT((x.applyForce(v) - x.toForceMatrix() * v).maxAbs(),
                  1e-13);
        EXPECT_LT((x.applyTransposeForce(v) -
                   x.toMatrix().transpose() * v).maxAbs(),
                  1e-13);
    }
}

TEST(Transform, TopRightBlockIsZero)
{
    // The sparsity the paper calls out in Section II.
    const SpatialTransform x = randomTransform();
    const Mat66 m = x.toMatrix();
    for (int i = 0; i < 3; ++i)
        for (int j = 3; j < 6; ++j)
            EXPECT_DOUBLE_EQ(m(i, j), 0.0);
}

TEST(Transform, InverseRoundTrip)
{
    for (int t = 0; t < 20; ++t) {
        const SpatialTransform x = randomTransform();
        const Vec6 v = randomVec6();
        EXPECT_LT((x.applyInverseMotion(x.applyMotion(v)) - v).maxAbs(),
                  1e-13);
        EXPECT_LT((x.inverse().applyMotion(x.applyMotion(v)) - v).maxAbs(),
                  1e-13);
    }
}

TEST(Transform, CompositionMatchesMatrixProduct)
{
    for (int t = 0; t < 20; ++t) {
        const SpatialTransform x1 = randomTransform();
        const SpatialTransform x2 = randomTransform();
        const SpatialTransform x12 = x1 * x2;
        EXPECT_LT((x12.toMatrix() - x1.toMatrix() * x2.toMatrix()).maxAbs(),
                  1e-12);
    }
}

TEST(Transform, ForceTransformIsInverseTransposeOfMotion)
{
    const SpatialTransform x = randomTransform();
    const Mat66 xf = x.toForceMatrix();
    const Mat66 xm = x.inverse().toMatrix().transpose();
    EXPECT_LT((xf - xm).maxAbs(), 1e-12);
}

TEST(Transform, PowerConservation)
{
    // f·v is invariant: f_child · v_child == f_parent · v_parent.
    for (int t = 0; t < 20; ++t) {
        const SpatialTransform x = randomTransform();
        const Vec6 v_parent = randomVec6();
        const Vec6 f_child = randomVec6();
        const Vec6 v_child = x.applyMotion(v_parent);
        const Vec6 f_parent = x.applyTransposeForce(f_child);
        EXPECT_NEAR(f_child.dot(v_child), f_parent.dot(v_parent), 1e-12);
    }
}

TEST(Inertia, ApplyMatchesDense)
{
    for (int t = 0; t < 20; ++t) {
        const SpatialInertia si = randomInertia();
        const Vec6 v = randomVec6();
        EXPECT_LT((si.apply(v) - si.toMatrix() * v).maxAbs(), 1e-13);
    }
}

TEST(Inertia, MatrixIsSymmetric)
{
    const SpatialInertia si = randomInertia();
    const Mat66 m = si.toMatrix();
    EXPECT_LT((m - m.transpose()).maxAbs(), 1e-14);
}

TEST(Inertia, KineticEnergyPositive)
{
    for (int t = 0; t < 20; ++t) {
        const SpatialInertia si = randomInertia();
        const Vec6 v = randomVec6();
        EXPECT_GT(v.dot(si.apply(v)), 0.0);
    }
}

TEST(Inertia, PointMassKineticEnergy)
{
    // A point mass at the origin moving linearly: E = 1/2 m v².
    const SpatialInertia si = SpatialInertia::fromComInertia(
        2.0, Vec3::zero(), Mat3::zero());
    const Vec6 v = join(Vec3::zero(), Vec3{3, 0, 0});
    EXPECT_NEAR(0.5 * v.dot(si.apply(v)), 0.5 * 2.0 * 9.0, 1e-12);
}

TEST(ArticulatedInertia, CongruenceMatchesDense)
{
    for (int t = 0; t < 10; ++t) {
        const SpatialInertia si = randomInertia();
        const SpatialTransform x = randomTransform();
        const ArticulatedInertia ai(si);
        const Mat66 expect =
            x.toMatrix().transpose() * si.toMatrix() * x.toMatrix();
        EXPECT_LT((ai.transformToParent(x).matrix() - expect).maxAbs(),
                  1e-12);
    }
}

TEST(ArticulatedInertia, CongruencePreservesEnergy)
{
    // v^T (X^T I X) v == (X v)^T I (X v).
    const SpatialInertia si = randomInertia();
    const SpatialTransform x = randomTransform();
    const ArticulatedInertia ai(si);
    const ArticulatedInertia ap = ai.transformToParent(x);
    const Vec6 v = randomVec6();
    EXPECT_NEAR(v.dot(ap.apply(v)),
                x.applyMotion(v).dot(ai.apply(x.applyMotion(v))), 1e-11);
}

TEST(ArticulatedInertia, AccumulateIsAdditive)
{
    const SpatialInertia a = randomInertia(), b = randomInertia();
    ArticulatedInertia acc(a);
    acc += ArticulatedInertia(b);
    const Vec6 v = randomVec6();
    EXPECT_LT((acc.apply(v) - (a.apply(v) + b.apply(v))).maxAbs(), 1e-13);
}

} // namespace
