/**
 * @file
 * Observability layer: trace rings, latency histograms, metrics
 * registry, exporters, and the server/client instrumentation.
 *
 *  - TraceRing drop-oldest wraparound with exact dropped accounting;
 *  - LatencyHistogram percentile extraction within one bucket of the
 *    exact order statistic, with exact count/sum/min/max;
 *  - per-job lifecycle event ordering through a live server
 *    (submit -> admitted -> enqueued -> picked -> exec -> completed);
 *  - allocation-free recording on every steady path (counted global
 *    allocator), and a fully disabled server exposing no buffers;
 *  - concurrent recording from many claimed rings (the TSan suite
 *    runs this test too);
 *  - the acceptance scenario: 4 closed-loop MPC clients over 2
 *    fault-injecting lanes under QoS + bulk overload, with the
 *    deadline-missed job's wait segment, coalesce/steal/retry
 *    markers, and a structurally valid Chrome trace export.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "ctrl/mpc_session.h"
#include "ctrl/scenarios.h"
#include "model/builders.h"
#include "perf/timing.h"
#include "runtime/backends.h"
#include "runtime/fault.h"
#include "runtime/obs/aggregate.h"
#include "runtime/obs/endpoint.h"
#include "runtime/obs/export.h"
#include "runtime/obs/metrics.h"
#include "runtime/obs/stream.h"
#include "runtime/obs/trace.h"
#include "runtime/server.h"
#include "test_support.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

// ---------------------------------------------------------------------
// Counted global allocator (see tests/test_batched.cc): off by
// default; the zero-allocation test switches it on around the
// measured region only.
// ---------------------------------------------------------------------

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<long> g_alloc_count{0};

} // namespace

void *
operator new(std::size_t size)
{
    if (g_count_allocs.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace dadu;
using dadu::model::RobotModel;
using dadu::runtime::DynamicsResult;
using dadu::runtime::DynamicsServer;
using dadu::runtime::FaultInjectingBackend;
using dadu::runtime::FaultPlan;
using dadu::runtime::FunctionType;
using dadu::runtime::obs::Counter;
using dadu::runtime::obs::EventKind;
using dadu::runtime::obs::Gauge;
using dadu::runtime::obs::LatencyHistogram;
using dadu::runtime::obs::LatKind;
using dadu::runtime::obs::MetricsRegistry;
using dadu::runtime::obs::AggregatorConfig;
using dadu::runtime::obs::ObsAggregator;
using dadu::runtime::obs::ObsSample;
using dadu::runtime::obs::StatsEndpoint;
using dadu::runtime::obs::StatsSnapshot;
using dadu::runtime::obs::TraceBuffer;
using dadu::runtime::obs::TraceEvent;
using dadu::runtime::obs::TraceReader;
using dadu::runtime::obs::TraceRing;
using dadu::runtime::obs::TraceStreamer;
using dadu::runtime::sched::PolicyKind;
using dadu::runtime::sched::SchedConfig;
using dadu::tests::randomRequests;

// ---------------------------------------------------------------------
// TraceRing wraparound
// ---------------------------------------------------------------------

TEST(ObsTrace, RingWrapsDropOldestWithExactDroppedCount)
{
    TraceRing ring(8, "t");
    EXPECT_EQ(ring.capacity(), 8u);
    for (int i = 0; i < 21; ++i)
        ring.record(EventKind::Submit, static_cast<double>(i),
                    /*job=*/i, /*lane=*/-1, FunctionType::FD,
                    static_cast<std::uint32_t>(i));
    EXPECT_EQ(ring.recorded(), 21u);
    EXPECT_EQ(ring.retained(), 8u);
    EXPECT_EQ(ring.dropped(), 13u);
    // The survivors are exactly the 8 newest, oldest first: 13..20.
    for (std::size_t i = 0; i < ring.retained(); ++i) {
        const TraceEvent &ev = ring.at(i);
        EXPECT_EQ(ev.job, static_cast<std::int32_t>(13 + i));
        EXPECT_DOUBLE_EQ(ev.t_us, static_cast<double>(13 + i));
    }
}

TEST(ObsTrace, BufferLayoutAndClaiming)
{
    TraceBuffer buf(2, 16);
    EXPECT_EQ(buf.lanes(), 2);
    EXPECT_EQ(buf.ringCount(), 3u); // lane0, lane1, control
    EXPECT_STREQ(buf.lane(0).name(), "lane0");
    EXPECT_STREQ(buf.lane(1).name(), "lane1");
    EXPECT_STREQ(buf.control().name(), "control");
    TraceRing *mine = buf.claimRing("client");
    ASSERT_NE(mine, nullptr);
    EXPECT_STREQ(mine->name(), "client");
    EXPECT_EQ(buf.ringCount(), 4u);
    // Claiming more rings must not move already-claimed ones.
    for (int i = 0; i < 32; ++i)
        buf.claimRing("more");
    mine->record(EventKind::TickBegin, 1.0, -1, -1, FunctionType::FD);
    EXPECT_EQ(mine->recorded(), 1u);
    EXPECT_EQ(buf.ringCount(), 36u);
    EXPECT_EQ(buf.totalDropped(), 0u);
}

// ---------------------------------------------------------------------
// Histogram percentiles vs exact order statistics
// ---------------------------------------------------------------------

TEST(ObsMetrics, PercentilesWithinOneBucketOfExact)
{
    // Log-uniform samples over [1µs, 500ms] — five decades, the
    // realistic latency range. The histogram's percentile must land
    // within one bucket (≤4.4% relative) of the exact order
    // statistic, and the exact scalars must be exact.
    std::mt19937 rng(17);
    std::uniform_real_distribution<double> u(std::log(1.0),
                                             std::log(5e5));
    LatencyHistogram h;
    std::vector<double> samples;
    double sum = 0.0;
    for (int i = 0; i < 5000; ++i) {
        const double us = std::exp(u(rng));
        samples.push_back(us);
        sum += us;
        h.record(us);
    }
    std::sort(samples.begin(), samples.end());

    EXPECT_EQ(h.count(), 5000u);
    EXPECT_DOUBLE_EQ(h.sumUs(), sum);
    EXPECT_DOUBLE_EQ(h.minUs(), samples.front());
    EXPECT_DOUBLE_EQ(h.maxUs(), samples.back());

    for (const double p : {0.5, 0.9, 0.99, 0.999}) {
        const std::size_t rank = static_cast<std::size_t>(std::min(
            std::max(std::ceil(p * 5000.0), 1.0), 5000.0));
        const double exact = samples[rank - 1];
        const double est = h.percentileUs(p);
        const int bi_exact = LatencyHistogram::bucketIndex(exact);
        const int bi_est = LatencyHistogram::bucketIndex(est);
        EXPECT_LE(std::abs(bi_exact - bi_est), 1)
            << "p" << p << ": est " << est << " vs exact " << exact;
    }

    // merge() preserves the distribution: a histogram merged into an
    // empty one reports identical percentiles.
    LatencyHistogram merged;
    merged.merge(h);
    EXPECT_EQ(merged.count(), h.count());
    EXPECT_DOUBLE_EQ(merged.percentileUs(0.99), h.percentileUs(0.99));

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentileUs(0.5), 0.0);
}

TEST(ObsMetrics, BucketEdgesPartitionTheAxis)
{
    // Every bucket's [low, high) must tile the axis and agree with
    // bucketIndex on both edges.
    for (int i = 0; i < LatencyHistogram::kBuckets - 1; ++i) {
        const double hi = LatencyHistogram::bucketHighUs(i);
        EXPECT_DOUBLE_EQ(LatencyHistogram::bucketLowUs(i + 1), hi);
        EXPECT_EQ(LatencyHistogram::bucketIndex(hi), i + 1);
        if (i > 0)
            EXPECT_EQ(LatencyHistogram::bucketIndex(
                          LatencyHistogram::bucketLowUs(i)),
                      i);
    }
    // Underflow: negatives and NaN land in bucket 0, never UB.
    EXPECT_EQ(LatencyHistogram::bucketIndex(-3.0), 0);
    EXPECT_EQ(LatencyHistogram::bucketIndex(
                  std::numeric_limits<double>::quiet_NaN()),
              0);
    EXPECT_EQ(LatencyHistogram::bucketIndex(
                  std::numeric_limits<double>::infinity()),
              LatencyHistogram::kBuckets - 1);
}

// ---------------------------------------------------------------------
// Per-job lifecycle ordering through a live server
// ---------------------------------------------------------------------

TEST(ObsServer, JobLifecycleEventsAreOrdered)
{
    const RobotModel robot = model::makeSerialChain(3);
    accel::Accelerator accel(robot);
    runtime::AnalyticBackend backend(accel);
    DynamicsServer server(backend);
    SchedConfig cfg;
    cfg.obs.trace = true;
    cfg.obs.metrics = true;
    server.setPolicy(cfg);
    server.start();

    constexpr int kJobs = 5, kN = 4;
    const auto reqs = randomRequests(robot, kN, 31);
    std::vector<std::vector<DynamicsResult>> res(
        kJobs, std::vector<DynamicsResult>(kN));
    std::vector<int> ids(kJobs);
    for (int i = 0; i < kJobs; ++i) {
        ids[i] = server.submit(FunctionType::FD, reqs.data(), kN,
                               res[i].data(), 0);
        server.wait(ids[i]);
    }
    server.stop();

    const TraceBuffer *buf = server.traceBuffer();
    ASSERT_NE(buf, nullptr);
    const TraceRing &ctl = buf->control();
    const TraceRing &lane = buf->lane(0);

    for (int id : ids) {
        double t_submit = -1.0, t_enq = -1.0, t_done = -1.0, e2e = -1.0;
        bool admitted = false;
        for (std::size_t i = 0; i < ctl.retained(); ++i) {
            const TraceEvent &ev = ctl.at(i);
            if (ev.job != id)
                continue;
            switch (ev.kind) {
              case EventKind::Submit:
                t_submit = ev.t_us;
                EXPECT_EQ(ev.a, static_cast<std::uint32_t>(kN));
                break;
              case EventKind::Admitted:
                admitted = true;
                EXPECT_EQ(ev.a, 0u); // lane 0
                break;
              case EventKind::Enqueued:
                t_enq = ev.t_us;
                EXPECT_EQ(ev.lane, 0);
                break;
              case EventKind::Completed:
                t_done = ev.t_us;
                e2e = ev.b;
                EXPECT_EQ(ev.a, 0u); // untagged: never "missed"
                break;
              default:
                break;
            }
        }
        ASSERT_GE(t_submit, 0.0) << "job " << id;
        EXPECT_TRUE(admitted);
        ASSERT_GE(t_enq, t_submit);
        ASSERT_GE(t_done, t_enq);
        EXPECT_NEAR(e2e, t_done - t_submit, 1e-6);

        // The lane ring brackets the execution of this job: its
        // Picked precedes an ExecBegin/ExecEnd pair, all inside the
        // submit→completed window.
        double t_pick = -1.0, t_exec0 = -1.0, t_exec1 = -1.0;
        for (std::size_t i = 0; i < lane.retained(); ++i) {
            const TraceEvent &ev = lane.at(i);
            if (ev.job != id)
                continue;
            if (ev.kind == EventKind::Picked && t_pick < 0.0)
                t_pick = ev.t_us;
            if (ev.kind == EventKind::ExecBegin && t_exec0 < 0.0)
                t_exec0 = ev.t_us;
            if (ev.kind == EventKind::ExecEnd)
                t_exec1 = ev.t_us;
        }
        ASSERT_GE(t_pick, 0.0) << "job " << id;
        EXPECT_GE(t_pick, t_submit);
        EXPECT_GE(t_exec0, t_pick);
        EXPECT_GE(t_exec1, t_exec0);
        EXPECT_GE(t_done, t_exec1);
    }

    // The registry agrees with the trace.
    const MetricsRegistry *m = server.metricsRegistry();
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->counter(Counter::JobsSubmitted),
              static_cast<std::uint64_t>(kJobs));
    EXPECT_EQ(m->counter(Counter::JobsCompleted),
              static_cast<std::uint64_t>(kJobs));
    const LatencyHistogram &e2e_hist =
        m->histogram(FunctionType::FD, false, LatKind::EndToEnd);
    EXPECT_EQ(e2e_hist.count(), static_cast<std::uint64_t>(kJobs));
}

// ---------------------------------------------------------------------
// Allocation-free recording
// ---------------------------------------------------------------------

TEST(ObsTrace, SteadyRecordingPathsNeverAllocate)
{
    // Construct everything (rings, registry, claimed client ring)
    // BEFORE arming the counter: construction allocates by design,
    // the steady recording paths must not.
    TraceBuffer buf(2, 1024);
    TraceRing *client = buf.claimRing("client");
    MetricsRegistry reg(2);
    TraceEvent ev;
    ev.kind = EventKind::ExecBegin;
    ev.fn = FunctionType::DeltaFD;

    g_alloc_count.store(0);
    g_count_allocs.store(true);
    for (int i = 0; i < 10000; ++i) {
        ev.t_us = static_cast<double>(i);
        ev.job = i;
        buf.lane(i & 1).record(ev);
        buf.control().record(EventKind::Submit, ev.t_us, i, -1,
                             FunctionType::FD,
                             static_cast<std::uint32_t>(i), 8.0);
        client->record(EventKind::TickBegin, ev.t_us, -1, -1,
                       FunctionType::FD);
        reg.histogram(FunctionType::FD, (i & 1) != 0,
                      LatKind::EndToEnd)
            .record(1.0 + static_cast<double>(i));
        reg.add(Counter::JobsSubmitted);
        reg.set(Gauge::TaskUsEwma, 2.0);
        reg.ewma(Gauge::AdmissionErrRelEwma, 0.25);
        reg.setLaneLoad(i & 1, static_cast<double>(i));
    }
    // Reading is allocation-free too (rings wrapped 4x over by now).
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < buf.lane(0).retained(); ++i)
        sum += static_cast<std::uint64_t>(buf.lane(0).at(i).job);
    g_count_allocs.store(false);
    EXPECT_GT(sum, 0u);
    EXPECT_EQ(g_alloc_count.load(), 0);
    EXPECT_EQ(buf.lane(0).dropped() + buf.lane(0).retained(), 5000u);
}

// ---------------------------------------------------------------------
// Concurrent recording (exercised under TSan too)
// ---------------------------------------------------------------------

TEST(ObsTrace, ConcurrentClaimAndRecordIsRaceFree)
{
    TraceBuffer buf(2, 256);
    constexpr int kThreads = 6, kEvents = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&buf, t] {
            // claimRing is the only locked operation; each thread
            // then owns its ring exclusively (SPSC).
            TraceRing *ring = buf.claimRing("worker");
            for (int i = 0; i < kEvents; ++i)
                ring->record(EventKind::IterBegin,
                             static_cast<double>(i), t, -1,
                             FunctionType::FD,
                             static_cast<std::uint32_t>(i));
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(buf.ringCount(), static_cast<std::size_t>(3 + kThreads));
    std::uint64_t recorded = 0;
    for (std::size_t i = 3; i < buf.ringCount(); ++i)
        recorded += buf.ring(i).recorded();
    EXPECT_EQ(recorded,
              static_cast<std::uint64_t>(kThreads) * kEvents);
    EXPECT_EQ(buf.totalDropped(),
              static_cast<std::uint64_t>(kThreads) * (kEvents - 256));
}

// ---------------------------------------------------------------------
// Disabled observability records (and allocates) nothing
// ---------------------------------------------------------------------

TEST(ObsServer, DisabledConfigExposesNoBuffers)
{
    const RobotModel robot = model::makeSerialChain(3);
    accel::Accelerator accel(robot);
    runtime::AnalyticBackend backend(accel);
    DynamicsServer server(backend);
    SchedConfig cfg; // obs defaults: everything off
    server.setPolicy(cfg);
    server.start();
    EXPECT_EQ(server.traceBuffer(), nullptr);
    EXPECT_EQ(server.metricsRegistry(), nullptr);
    const auto reqs = randomRequests(robot, 4, 33);
    std::vector<DynamicsResult> res(4);
    server.wait(
        server.submit(FunctionType::FD, reqs.data(), 4, res.data()));
    server.stop();
    // Still nothing materialized by serving traffic.
    EXPECT_EQ(server.traceBuffer(), nullptr);
    EXPECT_EQ(server.metricsRegistry(), nullptr);
}

// ---------------------------------------------------------------------
// Acceptance: 4-client MPC overload — reconstruct a missed job and
// export a structurally valid Chrome trace
// ---------------------------------------------------------------------

/** Count non-overlapping occurrences of @p needle in @p s. */
std::size_t
countOccurrences(const std::string &s, const char *needle)
{
    std::size_t n = 0, pos = 0;
    const std::size_t len = std::strlen(needle);
    while ((pos = s.find(needle, pos)) != std::string::npos) {
        ++n;
        pos += len;
    }
    return n;
}

TEST(ObsServer, MpcOverloadTraceReconstructsMissedJob)
{
    const RobotModel robot = model::makeIiwa();

    // Two lanes, both behind deterministic fault injectors: every
    // 9th batch transient-fails, so the retry path records Retry and
    // Fault events at a guaranteed rate.
    runtime::CpuBatchedBackend cpu0(robot, 2);
    auto cpu1 = cpu0.clone();
    FaultPlan plan;
    plan.transient_every_n = 9;
    FaultInjectingBackend lane0(cpu0, plan);
    FaultPlan plan1 = plan;
    plan1.seed = 23;
    FaultInjectingBackend lane1(*cpu1, plan1);

    DynamicsServer server;
    server.addBackend(lane0);
    server.addBackend(lane1);
    SchedConfig cfg;
    cfg.kind = PolicyKind::Edf;
    cfg.coalesce = true;
    cfg.steal = true;
    cfg.max_retries = 3;
    cfg.obs.trace = true;
    cfg.obs.metrics = true;
    cfg.obs.ring_capacity = 32768;
    server.setPolicy(cfg);

    TraceBuffer *buf = server.traceBuffer();
    ASSERT_NE(buf, nullptr);
    // The fault injectors record on their lane's ring: same producer
    // thread as the lane's serving events, so SPSC holds.
    lane0.setTraceRing(&buf->lane(0), 0);
    lane1.setTraceRing(&buf->lane(1), 1);
    server.start();

    // Four closed-loop MPC clients with a DELIBERATELY tight
    // deadline budget (30% of the predicted makespan): under bulk
    // overload many tagged jobs must miss.
    constexpr int kClients = 4, kTicks = 10;
    std::vector<std::unique_ptr<ctrl::MpcSession>> sessions;
    for (int c = 0; c < kClients; ++c) {
        ctrl::MpcSession::Config mcfg;
        mcfg.deadline_slack = 0.3;
        sessions.push_back(std::make_unique<ctrl::MpcSession>(
            robot, ctrl::makeScenario(robot, c, 16, 0.01, 0.5 * c),
            ctrl::IlqrOptions{}, mcfg));
        // Claim span rings AFTER the final server configuration.
        sessions.back()->attachTrace(server, "mpc");
    }
    for (auto &s : sessions)
        s->start(server);

    // Bulk saturation pinned to lane 0: keeps a deep flat same-fn
    // backlog there, so coalescing (adjacent small FD jobs merge)
    // and stealing (idle lane 1 pulls lane 0's flat work) both
    // trigger while the sessions tick.
    std::atomic<bool> ticking{true};
    std::thread bulk([&] {
        const auto reqs = randomRequests(robot, 8, 77);
        std::vector<std::vector<DynamicsResult>> res(
            16, std::vector<DynamicsResult>(8));
        std::vector<int> jobs;
        int i = 0;
        while (ticking.load(std::memory_order_acquire)) {
            if (jobs.size() >= 16) {
                server.wait(jobs.front());
                jobs.erase(jobs.begin());
            }
            jobs.push_back(server.submit(FunctionType::FD,
                                         reqs.data(), 8,
                                         res[i++ % 16].data(), 0));
        }
        for (int j : jobs)
            server.wait(j);
    });

    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            const ctrl::Scenario &sc = sessions[c]->scenario();
            for (int t = 0; t < kTicks; ++t)
                sessions[c]->tick(server, sc.q0, sc.qd0);
        });
    }
    for (auto &t : clients)
        t.join();
    ticking.store(false, std::memory_order_release);
    bulk.join();
    server.stop();

    // --- A deadline-missed tagged job is reconstructable. ---------
    // Take the NEWEST miss: even if the control ring wrapped during
    // the run, this job's Submit is recent enough to be retained.
    const TraceRing &ctl = buf->control();
    std::int32_t missed_job = -1;
    double t_missed_done = 0.0, missed_e2e = 0.0;
    for (std::size_t i = 0; i < ctl.retained(); ++i) {
        const TraceEvent &ev = ctl.at(i);
        if (ev.kind == EventKind::Completed && ev.a == 1) {
            missed_job = ev.job;
            t_missed_done = ev.t_us;
            missed_e2e = ev.b;
        }
    }
    ASSERT_GE(missed_job, 0)
        << "no tagged job missed its deadline under overload";
    double t_submit = -1.0;
    for (std::size_t i = 0; i < ctl.retained(); ++i) {
        const TraceEvent &ev = ctl.at(i);
        if (ev.job == missed_job && ev.kind == EventKind::Submit)
            t_submit = ev.t_us;
    }
    ASSERT_GE(t_submit, 0.0);
    // Wait + service segment: the Completed payload carries the
    // end-to-end latency, which must equal the reconstructed span.
    EXPECT_NEAR(missed_e2e, t_missed_done - t_submit, 1e-6);
    EXPECT_GT(missed_e2e, 0.0);

    // --- Coalesce, steal, retry, and fault markers all present. ---
    std::size_t n_coalesced = 0, n_stolen = 0, n_retry = 0,
                n_fault = 0, n_exec_pairs = 0;
    for (int l = 0; l < 2; ++l) {
        const TraceRing &ring = buf->lane(l);
        std::size_t begins = 0;
        for (std::size_t i = 0; i < ring.retained(); ++i) {
            switch (ring.at(i).kind) {
              case EventKind::CoalescedInto: ++n_coalesced; break;
              case EventKind::StolenFrom: ++n_stolen; break;
              case EventKind::Retry: ++n_retry; break;
              case EventKind::Fault: ++n_fault; break;
              case EventKind::ExecBegin: ++begins; break;
              case EventKind::ExecEnd:
                if (begins > 0) {
                    --begins;
                    ++n_exec_pairs;
                }
                break;
              default: break;
            }
        }
    }
    EXPECT_GT(n_coalesced, 0u) << "no coalesce markers";
    EXPECT_GT(n_stolen, 0u) << "no steal markers";
    EXPECT_GT(n_retry, 0u) << "no retry markers";
    EXPECT_GT(n_fault, 0u) << "no fault markers";
    EXPECT_GT(n_exec_pairs, 0u);

    // Client span tracks recorded ticks and solver iterations.
    std::size_t n_ticks = 0, n_iters = 0;
    for (std::size_t r = 3; r < buf->ringCount(); ++r) {
        const TraceRing &ring = buf->ring(r);
        for (std::size_t i = 0; i < ring.retained(); ++i) {
            n_ticks += ring.at(i).kind == EventKind::TickEnd ? 1 : 0;
            n_iters += ring.at(i).kind == EventKind::IterEnd ? 1 : 0;
        }
    }
    EXPECT_EQ(n_ticks, static_cast<std::size_t>(kClients * kTicks));
    EXPECT_GE(n_iters, n_ticks); // >= 1 iteration per tick

    // The registry saw the same story.
    const MetricsRegistry *m = server.metricsRegistry();
    ASSERT_NE(m, nullptr);
    EXPECT_GT(m->counter(Counter::DeadlineMissed), 0u);
    EXPECT_GT(m->counter(Counter::CoalescedItems), 0u);
    EXPECT_GT(m->counter(Counter::StolenItems), 0u);
    EXPECT_GT(m->counter(Counter::Retries), 0u);
    EXPECT_GT(m->counter(Counter::TransientFaults), 0u);
    EXPECT_GT(
        m->mergedHistogram(true, LatKind::EndToEnd).count(), 0u);

    // --- Chrome trace export is structurally valid. ---------------
    const char *path = "trace_obs_test.json";
    ASSERT_TRUE(runtime::obs::writeChromeTrace(*buf, path));
    std::string json;
    {
        std::FILE *f = std::fopen(path, "rb");
        ASSERT_NE(f, nullptr);
        char chunk[4096];
        std::size_t got;
        while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0)
            json.append(chunk, got);
        std::fclose(f);
    }
    std::remove(path);
    ASSERT_FALSE(json.empty());
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_EQ(json.back(), '\n');
    // Every event object carries the required Chrome keys — their
    // counts must agree (thread-name metadata included).
    const std::size_t n_ph = countOccurrences(json, "\"ph\":");
    const std::size_t n_pid = countOccurrences(json, "\"pid\":");
    const std::size_t n_tid = countOccurrences(json, "\"tid\":");
    const std::size_t n_ts = countOccurrences(json, "\"ts\":");
    EXPECT_GT(n_ph, 100u);
    EXPECT_EQ(n_ph, n_pid);
    EXPECT_EQ(n_ph, n_tid);
    EXPECT_EQ(n_ph, n_ts);
    // The missed job's flow stitch survives serialization: its
    // Completed flow event closes the path ("bp":"e").
    EXPECT_NE(json.find("\"id\":" + std::to_string(missed_job) +
                        ",\"bp\":\"e\""),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Live streaming: reader vs racing producer (runs under TSan too)
// ---------------------------------------------------------------------

TEST(ObsStream, ConcurrentReaderConservesEveryEvent)
{
    // A 256-slot ring wraps ~780x under a 200k-event producer while
    // the reader drains concurrently. The conservation contract:
    // after quiesce + final drain, delivered + dropped == recorded,
    // every delivered event is INTACT (its three redundant sequence
    // encodings agree — a torn slot cannot pass), and delivery is in
    // recording order.
    TraceRing ring(256, "t");
    constexpr std::uint64_t kEvents = 200000;
    std::thread producer([&ring] {
        for (std::uint64_t s = 0; s < kEvents; ++s)
            ring.record(EventKind::IterBegin, static_cast<double>(s),
                        static_cast<std::int32_t>(s & 0x7fffffff), -1,
                        FunctionType::FD,
                        static_cast<std::uint32_t>(s),
                        3.0 * static_cast<double>(s));
    });

    TraceReader reader(&ring);
    TraceEvent chunk[64];
    double last_seq = -1.0;
    std::uint64_t seen = 0;
    auto validate = [&](std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) {
            const TraceEvent &ev = chunk[i];
            const auto s = static_cast<std::uint64_t>(ev.t_us);
            ASSERT_GT(ev.t_us, last_seq) << "out of order";
            last_seq = ev.t_us;
            ASSERT_EQ(ev.job,
                      static_cast<std::int32_t>(s & 0x7fffffff))
                << "torn event at seq " << s;
            ASSERT_EQ(ev.a, static_cast<std::uint32_t>(s));
            ASSERT_DOUBLE_EQ(ev.b, 3.0 * static_cast<double>(s));
            ++seen;
        }
    };
    // Live phase: drain while the producer races ahead.
    while (ring.recorded() < kEvents) {
        const std::size_t n = reader.read(chunk, 64);
        validate(n);
    }
    producer.join();
    // Quiesced phase: drain the tail to empty.
    for (std::size_t n; (n = reader.read(chunk, 64)) > 0;)
        validate(n);

    EXPECT_EQ(ring.recorded(), kEvents);
    EXPECT_EQ(reader.delivered(), seen);
    EXPECT_EQ(reader.delivered() + reader.dropped(), kEvents);
    EXPECT_EQ(reader.cursor(), kEvents);
    // The reader kept up at least as well as the drop-oldest window
    // allows: it must have delivered SOMETHING.
    EXPECT_GT(reader.delivered(), 0u);
}

// ---------------------------------------------------------------------
// Streaming a quiesced buffer reproduces the post-hoc exporter
// ---------------------------------------------------------------------

TEST(ObsStream, QuiescedStreamMatchesPostHocExportByteForByte)
{
    const RobotModel robot = model::makeSerialChain(3);
    accel::Accelerator accel(robot);
    runtime::AnalyticBackend backend(accel);
    DynamicsServer server(backend);
    SchedConfig cfg;
    cfg.obs.trace = true;
    server.setPolicy(cfg);
    server.start();
    const auto reqs = randomRequests(robot, 4, 51);
    std::vector<DynamicsResult> res(4);
    for (int i = 0; i < 12; ++i)
        server.wait(server.submit(FunctionType::FD, reqs.data(), 4,
                                  res.data(), 0));
    server.stop();

    const TraceBuffer *buf = server.traceBuffer();
    ASSERT_NE(buf, nullptr);
    const char *posthoc = "trace_stream_ref.json";
    const char *streamed = "trace_stream_live.json";
    ASSERT_TRUE(runtime::obs::writeChromeTrace(*buf, posthoc));
    {
        TraceStreamer streamer(*buf, /*chunk_events=*/64);
        ASSERT_TRUE(streamer.openFile(streamed));
        EXPECT_GT(streamer.flush(), 0u);
        EXPECT_EQ(streamer.flush(), 0u); // caught up
        ASSERT_TRUE(streamer.closeFile());
        EXPECT_EQ(streamer.dropped(), 0u);
    }
    auto slurp = [](const char *path) {
        std::string s;
        std::FILE *f = std::fopen(path, "rb");
        EXPECT_NE(f, nullptr);
        if (f) {
            char c[4096];
            std::size_t got;
            while ((got = std::fread(c, 1, sizeof c, f)) > 0)
                s.append(c, got);
            std::fclose(f);
        }
        return s;
    };
    const std::string a = slurp(posthoc), b = slurp(streamed);
    std::remove(posthoc);
    std::remove(streamed);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "streamed file diverges from writeChromeTrace";
}

// ---------------------------------------------------------------------
// Aggregator time-series is monotone and delta-consistent
// ---------------------------------------------------------------------

TEST(ObsAggregate, SnapshotsAreMonotoneAndDeltaConsistent)
{
    const RobotModel robot = model::makeSerialChain(3);
    accel::Accelerator accel(robot);
    runtime::AnalyticBackend backend(accel);
    DynamicsServer server(backend);
    SchedConfig cfg;
    cfg.obs.trace = true;
    cfg.obs.metrics = true;
    server.setPolicy(cfg);
    server.start();

    // Driven synchronously via tickOnce(): no background thread, so
    // the series content is fully deterministic in structure.
    AggregatorConfig acfg;
    acfg.history = 4; // force eviction: 6 ticks, bound 4
    ObsAggregator agg(server, acfg);

    const auto reqs = randomRequests(robot, 4, 61);
    std::vector<DynamicsResult> res(4);
    for (int t = 0; t < 6; ++t) {
        for (int i = 0; i < 3; ++i)
            server.wait(server.submit(FunctionType::FD, reqs.data(),
                                      4, res.data(), 0));
        agg.tickOnce();
    }
    server.stop();

    EXPECT_EQ(agg.sampleCount(), 6u);
    const std::vector<ObsSample> hist = agg.history();
    ASSERT_EQ(hist.size(), 4u); // bounded by history, oldest evicted
    EXPECT_EQ(hist.front().seq, 3u);
    for (std::size_t i = 0; i < hist.size(); ++i) {
        const ObsSample &s = hist[i];
        ASSERT_EQ(s.lanes.size(), 1u);
        EXPECT_TRUE(s.lanes[0].healthy);
        if (i == 0)
            continue;
        const ObsSample &p = hist[i - 1];
        EXPECT_EQ(s.seq, p.seq + 1) << "seq not strictly increasing";
        EXPECT_GE(s.t_us, p.t_us);
        EXPECT_GE(s.trace_recorded, p.trace_recorded);
        for (int c = 0; c < runtime::obs::kCounters; ++c) {
            EXPECT_GE(s.counters[c], p.counters[c])
                << "counter " << c << " went backwards";
            EXPECT_EQ(s.counters[c], p.counters[c] + s.delta[c])
                << "delta " << c << " inconsistent";
        }
    }
    // 3 jobs completed between consecutive ticks.
    const auto idx = static_cast<std::size_t>(Counter::JobsCompleted);
    EXPECT_EQ(hist.back().delta[idx], 3u);
    EXPECT_EQ(hist.back().counters[idx], 18u);

    const StatsSnapshot snap = agg.latest();
    EXPECT_EQ(snap.sample.seq, 6u);
    ASSERT_TRUE(snap.have_registry);
    EXPECT_EQ(snap.registry.counter(Counter::JobsCompleted), 18u);
    // Both renderings of the snapshot are non-empty and well-formed
    // enough to carry the headline counter.
    const std::string json = snap.toJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"jobs_completed\":18"), std::string::npos);
    const std::string prom = snap.toPrometheus();
    EXPECT_NE(prom.find("dadu_jobs_completed_total 18"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Embedded endpoint smoke: raw-socket GET against a live server
// ---------------------------------------------------------------------

/** Blocking HTTP GET of @p path against 127.0.0.1:@p port. */
std::string
httpGet(int port, const char *path)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    std::string resp;
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) == 0)
    {
        char req[128];
        const int n = std::snprintf(req, sizeof(req),
                                    "GET %s HTTP/1.0\r\n\r\n", path);
        if (n > 0 &&
            ::send(fd, req, static_cast<std::size_t>(n), 0) == n)
        {
            char c[4096];
            ssize_t got;
            while ((got = ::recv(fd, c, sizeof c, 0)) > 0)
                resp.append(c, static_cast<std::size_t>(got));
        }
    }
    ::close(fd);
    return resp;
}

TEST(ObsEndpoint, ServesStatsAndMetricsWhileServerRuns)
{
    const RobotModel robot = model::makeSerialChain(3);
    accel::Accelerator accel(robot);
    runtime::AnalyticBackend lane0(accel);
    auto lane1 = lane0.clone();
    DynamicsServer server(lane0);
    server.addBackend(*lane1);
    SchedConfig cfg;
    cfg.obs.metrics = true;
    cfg.obs.aggregate_interval_ms = 5;
    cfg.obs.stats_port = 0; // ephemeral: never collides in CI
    server.setPolicy(cfg);
    server.start();

    ASSERT_NE(server.aggregator(), nullptr);
    ASSERT_NE(server.statsEndpoint(), nullptr);
    const int port = server.statsEndpoint()->port();
    ASSERT_GT(port, 0);

    // Scrape while jobs are actively flowing.
    const auto reqs = randomRequests(robot, 4, 71);
    std::vector<DynamicsResult> res(4);
    for (int i = 0; i < 20; ++i)
        server.wait(server.submit(FunctionType::FD, reqs.data(), 4,
                                  res.data(), 0));
    // Let the aggregator observe the completed work.
    while (server.aggregator()->sampleCount() < 2)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    const std::string stats = httpGet(port, "/stats");
    ASSERT_NE(stats.find("HTTP/1.0 200 OK"), std::string::npos);
    ASSERT_NE(stats.find("Content-Type: application/json"),
              std::string::npos);
    // Two lanes, both visible in the lane array.
    EXPECT_NE(stats.find("\"lanes\":[{\"id\":0"), std::string::npos);
    EXPECT_NE(stats.find("{\"id\":1"), std::string::npos);
    EXPECT_NE(stats.find("\"jobs_completed\":"), std::string::npos);

    const std::string metrics = httpGet(port, "/metrics");
    ASSERT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(metrics.find("# TYPE dadu_jobs_completed_total counter"),
              std::string::npos);
    EXPECT_NE(metrics.find("dadu_lane_healthy{lane=\"1\"} 1"),
              std::string::npos);

    const std::string nope = httpGet(port, "/nope");
    EXPECT_NE(nope.find("HTTP/1.0 404 Not Found"), std::string::npos);

    server.stop();
    // The endpoint is torn down with the live plane: its socket is
    // closed (connect now fails → empty response).
    ASSERT_NE(server.statsEndpoint(), nullptr);
    EXPECT_EQ(server.statsEndpoint()->port(), -1);
    EXPECT_EQ(httpGet(port, "/stats"), "");
    // The aggregator survives stop() for post-run reads; its final
    // tick saw the drained server.
    ASSERT_NE(server.aggregator(), nullptr);
    EXPECT_EQ(server.aggregator()->latest().sample.pending_jobs, 0u);
    EXPECT_EQ(server.aggregator()
                  ->latest()
                  .registry.counter(Counter::JobsCompleted),
              20u);
}

} // namespace
