/**
 * @file
 * Tests for column-sparsity gating of the derivative pipeline:
 *
 *  - ColumnPlan resolution: seed validation, dense fallbacks, and
 *    the adaptive gap coalescing rules;
 *  - masked scalar and masked SoA sweeps are bitwise identical on
 *    all three evaluation robots;
 *  - every live column of a gated sweep is bitwise identical to the
 *    dense sweep and every dead column is exactly +0.0 (∆FD, ∆ID
 *    and ∆iFD);
 *  - adaptive coalescing is value-invariant: it may compute MORE
 *    columns than the simple seed (fewer runs, same numbers), never
 *    different ones;
 *  - gated steady-state backend submission performs zero heap
 *    allocations (counted global allocator);
 *  - an iLQR solve with gating enabled at tolerance 0 is bitwise
 *    identical to the dense solve, and gated solves still converge.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <random>
#include <vector>

#include "algorithms/batched.h"
#include "algorithms/col_gating.h"
#include "algorithms/dynamics.h"
#include "algorithms/rnea_derivatives.h"
#include "algorithms/workspace.h"
#include "ctrl/ilqr.h"
#include "ctrl/scenarios.h"
#include "model/builders.h"
#include "runtime/backends.h"
#include "test_support.h"

// ---------------------------------------------------------------------
// Counted global allocator (see tests/test_batched.cc): off by
// default, switched on around the measured region only.
// ---------------------------------------------------------------------

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<long> g_alloc_count{0};

} // namespace

void *
operator new(std::size_t size)
{
    if (g_count_allocs.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace dadu::algo;
using dadu::linalg::MatrixX;
using dadu::linalg::VectorX;
using dadu::model::RobotModel;
using dadu::runtime::DynamicsRequest;
using dadu::runtime::DynamicsResult;
using dadu::runtime::FunctionType;
using dadu::tests::expectBitwiseEqual;

namespace ctrl = dadu::ctrl;
namespace model = dadu::model;
namespace runtime = dadu::runtime;

RobotModel
makeRobot(const std::string &name)
{
    if (name == "iiwa")
        return model::makeIiwa();
    if (name == "hyq")
        return model::makeHyq();
    return model::makeAtlas();
}

/** A scattered seed with roughly 1/3 of the columns live. */
std::vector<int>
scatteredSeed(int nv)
{
    std::vector<int> seed;
    for (int j = 0; j < nv; j += 3)
        seed.push_back(j);
    return seed;
}

/** Columns live under @p plan match @p dense bitwise; dead columns
 *  of @p gated are exactly +0.0. */
void
expectGatedColumns(const ColumnPlan &plan, const MatrixX &gated,
                   const MatrixX &dense)
{
    ASSERT_EQ(gated.rows(), dense.rows());
    ASSERT_EQ(gated.cols(), dense.cols());
    for (std::size_t r = 0; r < gated.rows(); ++r) {
        for (std::size_t c = 0; c < gated.cols(); ++c) {
            if (plan.isLive(static_cast<int>(c)))
                EXPECT_EQ(gated(r, c), dense(r, c));
            else
                EXPECT_EQ(gated(r, c), 0.0);
        }
    }
}

// ---------------------------------------------------------------------
// ColumnPlan resolution and validation
// ---------------------------------------------------------------------

TEST(ColumnPlan, EmptySeedAndModeNoneResolveDense)
{
    ColumnPlan plan;
    EXPECT_TRUE(plan.dense()); // default-constructed plans are dense

    EXPECT_TRUE(plan.resolve(GatingMode::Simple, {}, 7));
    EXPECT_TRUE(plan.dense());
    EXPECT_EQ(plan.liveCount(), 7);

    EXPECT_TRUE(plan.resolve(GatingMode::None, {1, 3}, 7));
    EXPECT_TRUE(plan.dense());

    // Full coverage also resolves dense (no per-column bookkeeping).
    EXPECT_TRUE(
        plan.resolve(GatingMode::Simple, {0, 1, 2, 3, 4, 5, 6}, 7));
    EXPECT_TRUE(plan.dense());
    EXPECT_EQ(plan.runCount(), 1);
}

TEST(ColumnPlan, InvalidSeedsRejectedDeterministically)
{
    const std::vector<std::vector<int>> bad = {
        {7},        // == nv: out of range
        {-1},       // negative
        {0, 3, 3},  // duplicate
        {100, 2},   // far out of range
        {2, -2, 4}, // mixed
    };
    for (const auto &seed : bad) {
        EXPECT_FALSE(seedValid(seed, 7));
        for (GatingMode mode : {GatingMode::Simple, GatingMode::Adaptive}) {
            ColumnPlan plan;
            // Rejection is deterministic and leaves the plan dense.
            EXPECT_FALSE(plan.resolve(mode, seed, 7));
            EXPECT_TRUE(plan.dense());
            EXPECT_FALSE(plan.resolve(mode, seed, 7));
            EXPECT_TRUE(plan.dense());
        }
    }
    EXPECT_TRUE(seedValid({}, 7));
    EXPECT_TRUE(seedValid({6, 0, 3}, 7)); // unsorted is fine
}

TEST(ColumnPlan, SimpleModeIsExactlyTheSeedSorted)
{
    ColumnPlan plan;
    ASSERT_TRUE(plan.resolve(GatingMode::Simple, {5, 0, 3}, 8));
    EXPECT_FALSE(plan.dense());
    EXPECT_EQ(plan.liveCount(), 3);
    ASSERT_EQ(plan.cols().size(), 3u);
    EXPECT_EQ(plan.cols()[0], 0);
    EXPECT_EQ(plan.cols()[1], 3);
    EXPECT_EQ(plan.cols()[2], 5);
    EXPECT_EQ(plan.runCount(), 3);
    EXPECT_TRUE(plan.isLive(0));
    EXPECT_FALSE(plan.isLive(1));
    EXPECT_TRUE(plan.isLive(3));
    EXPECT_FALSE(plan.isLive(7));
}

TEST(ColumnPlan, AdaptiveCoalescesSmallGapsOnly)
{
    // Gap of kAdaptiveMaxGap dead columns between 0 and 3: merged
    // into one contiguous run with the filler columns live.
    ColumnPlan plan;
    ASSERT_TRUE(plan.resolve(GatingMode::Adaptive, {0, 3}, 10));
    EXPECT_FALSE(plan.dense());
    EXPECT_EQ(plan.runCount(), 1);
    EXPECT_EQ(plan.liveCount(), 4);
    EXPECT_TRUE(plan.isLive(1));
    EXPECT_TRUE(plan.isLive(2));

    // Gap of kAdaptiveMaxGap + 1: kept as two separate runs.
    ASSERT_TRUE(plan.resolve(GatingMode::Adaptive, {0, 4}, 10));
    EXPECT_EQ(plan.runCount(), 2);
    EXPECT_EQ(plan.liveCount(), 2);
    EXPECT_FALSE(plan.isLive(2));

    // Coalescing up to full coverage degrades to dense.
    ASSERT_TRUE(plan.resolve(GatingMode::Adaptive, {0, 3, 6}, 7));
    EXPECT_TRUE(plan.dense());
}

TEST(ColumnPlan, GatedLiveCountMatchesResolvedPlan)
{
    std::mt19937 rng(2024);
    for (int trial = 0; trial < 200; ++trial) {
        const int nv = 1 + static_cast<int>(rng() % 36);
        std::vector<int> seed;
        for (int j = 0; j < nv; ++j)
            if (rng() % 3 == 0)
                seed.push_back(j);
        std::shuffle(seed.begin(), seed.end(), rng);
        for (GatingMode mode :
             {GatingMode::None, GatingMode::Simple, GatingMode::Adaptive}) {
            ColumnPlan plan;
            ASSERT_TRUE(plan.resolve(mode, seed, nv));
            EXPECT_EQ(gatedLiveCount(mode, seed, nv), plan.liveCount())
                << "mode=" << gatingModeName(mode) << " nv=" << nv;
        }
    }
}

// ---------------------------------------------------------------------
// Masked sweep parity across robots
// ---------------------------------------------------------------------

struct Batch
{
    std::vector<VectorX> q, qd, tau;
};

Batch
randomBatch(const RobotModel &robot, int n, unsigned seed)
{
    std::mt19937 rng(seed);
    Batch b;
    for (int i = 0; i < n; ++i) {
        b.q.push_back(robot.randomConfiguration(rng));
        b.qd.push_back(robot.randomVelocity(rng));
        b.tau.push_back(robot.randomVelocity(rng));
    }
    return b;
}

class SparsityTest : public ::testing::TestWithParam<const char *>
{
  protected:
    RobotModel robot() const { return makeRobot(GetParam()); }
};

TEST_P(SparsityTest, MaskedSoaMatchesMaskedScalarBitwise)
{
    const RobotModel robot = this->robot();
    const Batch in = randomBatch(robot, 13, 71); // ragged remainder
    ColumnPlan plan;
    ASSERT_TRUE(plan.resolve(GatingMode::Simple,
                             scatteredSeed(robot.nv()), robot.nv()));
    ASSERT_FALSE(plan.dense());

    BatchedDynamics engine(robot, 2);
    engine.setLaneWidth(1); // pure scalar path
    std::vector<FdDerivatives> scalar =
        engine.batchFdDerivatives(in.q, in.qd, in.tau, &plan);
    engine.setLaneWidth(8); // SoA packs + scalar remainder
    const std::vector<FdDerivatives> &soa =
        engine.batchFdDerivatives(in.q, in.qd, in.tau, &plan);

    for (int i = 0; i < 13; ++i) {
        expectBitwiseEqual(soa[i].qdd, scalar[i].qdd);
        expectBitwiseEqual(soa[i].minv, scalar[i].minv);
        expectBitwiseEqual(soa[i].dqdd_dq, scalar[i].dqdd_dq);
        expectBitwiseEqual(soa[i].dqdd_dqd, scalar[i].dqdd_dqd);
    }
}

TEST_P(SparsityTest, GivenAccelSoaMatchesMaskedScalarBitwise)
{
    // The batched ∆iFD path (q̈/M⁻¹ supplied, steps ④⑤⑥ only) is
    // bitwise lane-width invariant — SoA packs vs the pure scalar
    // fdDerivativesGivenAccel, under the same shared mask.
    const RobotModel robot = this->robot();
    const int nv = robot.nv();
    const Batch in = randomBatch(robot, 13, 72); // ragged remainder
    ColumnPlan plan;
    ASSERT_TRUE(
        plan.resolve(GatingMode::Simple, scatteredSeed(nv), nv));
    ASSERT_FALSE(plan.dense());

    BatchedDynamics engine(robot, 2);
    // Bank q̈/M⁻¹ from a dense ∆FD pass — the client's usage shape
    // (copies: the engine's output array is reused across calls).
    std::vector<VectorX> qdd;
    std::vector<MatrixX> minv;
    {
        const auto &fd = engine.batchFdDerivatives(in.q, in.qd, in.tau);
        for (int i = 0; i < 13; ++i) {
            qdd.push_back(fd[i].qdd);
            minv.push_back(fd[i].minv);
        }
    }
    std::vector<const MatrixX *> minv_ptrs;
    for (int i = 0; i < 13; ++i)
        minv_ptrs.push_back(&minv[i]);

    engine.setLaneWidth(1); // pure scalar path
    const std::vector<FdDerivatives> scalar =
        engine.batchFdDerivativesGivenAccel(in.q.data(), in.qd.data(),
                                            qdd.data(), minv_ptrs.data(),
                                            13, &plan);
    engine.setLaneWidth(8); // SoA packs + scalar remainder
    const std::vector<FdDerivatives> &soa =
        engine.batchFdDerivativesGivenAccel(in.q.data(), in.qd.data(),
                                            qdd.data(), minv_ptrs.data(),
                                            13, &plan);

    for (int i = 0; i < 13; ++i) {
        expectBitwiseEqual(soa[i].qdd, scalar[i].qdd);
        expectBitwiseEqual(soa[i].minv, scalar[i].minv);
        expectBitwiseEqual(soa[i].dqdd_dq, scalar[i].dqdd_dq);
        expectBitwiseEqual(soa[i].dqdd_dqd, scalar[i].dqdd_dqd);
    }
}

TEST_P(SparsityTest, GatedGivenAccelBackendMatchesDenseSubset)
{
    // End-to-end ∆iFD through CpuBatchedBackend: with q̈/M⁻¹ from a
    // dense ∆FD batch as inputs, the gated engine path (mask-uniform)
    // and the mixed-mask reference fallback both agree with the dense
    // ∆iFD batch on live columns and zero dead ones.
    const RobotModel robot = this->robot();
    const int nv = robot.nv();
    runtime::CpuBatchedBackend backend(robot, 2);

    auto reqs = dadu::tests::randomRequests(robot, 10, 34);
    std::vector<DynamicsResult> fd(10), dense(10), gated(10);
    ASSERT_EQ(backend.submit(FunctionType::DeltaFD, reqs.data(), 10,
                             fd.data()),
              runtime::SubmitStatus::Ok);
    for (int i = 0; i < 10; ++i) {
        reqs[i].qdd_or_tau = fd[i].qdd;
        reqs[i].minv = fd[i].minv;
    }

    ASSERT_EQ(backend.submit(FunctionType::DeltaiFD, reqs.data(), 10,
                             dense.data()),
              runtime::SubmitStatus::Ok);
    // ∆iFD reuses ∆FD's inputs bitwise, so its derivative columns
    // equal the dense ∆FD batch's exactly.
    for (int i = 0; i < 10; ++i) {
        expectBitwiseEqual(dense[i].dqdd_dq, fd[i].dqdd_dq);
        expectBitwiseEqual(dense[i].dqdd_dqd, fd[i].dqdd_dqd);
    }

    // Mask-uniform batch (the gated iLQR refresh shape).
    for (auto &r : reqs) {
        r.gating = GatingMode::Simple;
        r.seed_cols = scatteredSeed(nv);
    }
    ASSERT_EQ(backend.submit(FunctionType::DeltaiFD, reqs.data(), 10,
                             gated.data()),
              runtime::SubmitStatus::Ok);
    ColumnPlan plan;
    ASSERT_TRUE(plan.resolve(GatingMode::Simple, scatteredSeed(nv), nv));
    for (int i = 0; i < 10; ++i) {
        expectBitwiseEqual(gated[i].qdd, dense[i].qdd);
        expectGatedColumns(plan, gated[i].dqdd_dq, dense[i].dqdd_dq);
        expectGatedColumns(plan, gated[i].dqdd_dqd, dense[i].dqdd_dqd);
    }

    // Mixed masks: request i keeps only column i % nv (reference
    // fallback path).
    std::vector<ColumnPlan> plans(10);
    for (int i = 0; i < 10; ++i) {
        reqs[i].seed_cols = {i % nv};
        ASSERT_TRUE(
            plans[i].resolve(GatingMode::Simple, reqs[i].seed_cols, nv));
    }
    ASSERT_EQ(backend.submit(FunctionType::DeltaiFD, reqs.data(), 10,
                             gated.data()),
              runtime::SubmitStatus::Ok);
    for (int i = 0; i < 10; ++i) {
        expectGatedColumns(plans[i], gated[i].dqdd_dq, dense[i].dqdd_dq);
        expectGatedColumns(plans[i], gated[i].dqdd_dqd,
                           dense[i].dqdd_dqd);
    }
}

TEST_P(SparsityTest, MaskedMatchesDenseOnLiveColumnsDeadExactlyZero)
{
    const RobotModel robot = this->robot();
    const Batch in = randomBatch(robot, 4, 5);
    DynamicsWorkspace ws(robot);
    ColumnPlan plan;
    ASSERT_TRUE(plan.resolve(GatingMode::Simple,
                             scatteredSeed(robot.nv()), robot.nv()));

    FdDerivatives dense_fd, gated_fd;
    RneaDerivatives dense_id, gated_id;
    for (int i = 0; i < 4; ++i) {
        // ∆FD: steps ①②③ (q̈, M⁻¹) stay dense regardless of gating.
        fdDerivatives(robot, ws, in.q[i], in.qd[i], in.tau[i], dense_fd);
        fdDerivatives(robot, ws, in.q[i], in.qd[i], in.tau[i], gated_fd,
                      nullptr, &plan);
        expectBitwiseEqual(gated_fd.qdd, dense_fd.qdd);
        expectBitwiseEqual(gated_fd.minv, dense_fd.minv);
        expectGatedColumns(plan, gated_fd.dqdd_dq, dense_fd.dqdd_dq);
        expectGatedColumns(plan, gated_fd.dqdd_dqd, dense_fd.dqdd_dqd);

        // ∆ID.
        rneaDerivatives(robot, ws, in.q[i], in.qd[i], in.tau[i],
                        dense_id);
        rneaDerivatives(robot, ws, in.q[i], in.qd[i], in.tau[i],
                        gated_id, nullptr, false, &plan);
        expectGatedColumns(plan, gated_id.dtau_dq, dense_id.dtau_dq);
        expectGatedColumns(plan, gated_id.dtau_dqd, dense_id.dtau_dqd);

        // ∆iFD: q̈ and M⁻¹ supplied from the dense ∆FD.
        fdDerivativesGivenAccel(robot, ws, in.q[i], in.qd[i],
                                dense_fd.qdd, dense_fd.minv, gated_fd,
                                nullptr, &plan);
        expectGatedColumns(plan, gated_fd.dqdd_dq, dense_fd.dqdd_dq);
        expectGatedColumns(plan, gated_fd.dqdd_dqd, dense_fd.dqdd_dqd);
    }
}

TEST_P(SparsityTest, AdaptiveCoalescingIsValueInvariant)
{
    // The adaptive plan fills gaps with columns computed at their
    // TRUE values: every column live under EITHER plan is bitwise
    // equal to the dense sweep, and adaptive never has more runs.
    const RobotModel robot = this->robot();
    const int nv = robot.nv();
    const Batch in = randomBatch(robot, 6, 17);
    const std::vector<int> seed = scatteredSeed(nv);

    ColumnPlan simple, adaptive;
    ASSERT_TRUE(simple.resolve(GatingMode::Simple, seed, nv));
    ASSERT_TRUE(adaptive.resolve(GatingMode::Adaptive, seed, nv));
    EXPECT_LE(adaptive.runCount(), simple.runCount());
    EXPECT_GE(adaptive.liveCount(), simple.liveCount());
    for (int c : seed) // adaptive only ever ADDS live columns
        EXPECT_TRUE(adaptive.isLive(c));

    BatchedDynamics engine(robot, 2);
    const std::vector<FdDerivatives> dense =
        engine.batchFdDerivatives(in.q, in.qd, in.tau);
    const std::vector<FdDerivatives> with_simple =
        engine.batchFdDerivatives(in.q, in.qd, in.tau, &simple);
    const std::vector<FdDerivatives> &with_adaptive =
        engine.batchFdDerivatives(in.q, in.qd, in.tau, &adaptive);

    for (int i = 0; i < 6; ++i) {
        expectGatedColumns(simple, with_simple[i].dqdd_dq,
                           dense[i].dqdd_dq);
        expectGatedColumns(simple, with_simple[i].dqdd_dqd,
                           dense[i].dqdd_dqd);
        expectGatedColumns(adaptive, with_adaptive[i].dqdd_dq,
                           dense[i].dqdd_dq);
        expectGatedColumns(adaptive, with_adaptive[i].dqdd_dqd,
                           dense[i].dqdd_dqd);
    }
}

TEST_P(SparsityTest, GatedBackendSubmitMatchesDenseSubset)
{
    // End-to-end through CpuBatchedBackend: a gated ∆FD batch agrees
    // with the dense batch on live columns and zeroes dead ones —
    // including the mask-uniform SoA fast path (shared seed) and the
    // mixed-mask reference fallback (per-request seeds).
    const RobotModel robot = this->robot();
    const int nv = robot.nv();
    runtime::CpuBatchedBackend backend(robot, 2);

    auto reqs = dadu::tests::randomRequests(robot, 10, 33);
    std::vector<DynamicsResult> dense(10), gated(10);
    ASSERT_EQ(backend.submit(FunctionType::DeltaFD, reqs.data(), 10,
                             dense.data()),
              runtime::SubmitStatus::Ok);

    // Mask-uniform batch (the iLQR shape).
    for (auto &r : reqs) {
        r.gating = GatingMode::Simple;
        r.seed_cols = scatteredSeed(nv);
    }
    ASSERT_EQ(backend.submit(FunctionType::DeltaFD, reqs.data(), 10,
                             gated.data()),
              runtime::SubmitStatus::Ok);
    ColumnPlan plan;
    ASSERT_TRUE(plan.resolve(GatingMode::Simple, scatteredSeed(nv), nv));
    for (int i = 0; i < 10; ++i) {
        expectBitwiseEqual(gated[i].qdd, dense[i].qdd);
        expectGatedColumns(plan, gated[i].dqdd_dq, dense[i].dqdd_dq);
        expectGatedColumns(plan, gated[i].dqdd_dqd, dense[i].dqdd_dqd);
    }

    // Mixed masks: request i keeps only column i % nv.
    std::vector<ColumnPlan> plans(10);
    for (int i = 0; i < 10; ++i) {
        reqs[i].seed_cols = {i % nv};
        ASSERT_TRUE(
            plans[i].resolve(GatingMode::Simple, reqs[i].seed_cols, nv));
    }
    ASSERT_EQ(backend.submit(FunctionType::DeltaFD, reqs.data(), 10,
                             gated.data()),
              runtime::SubmitStatus::Ok);
    for (int i = 0; i < 10; ++i) {
        expectBitwiseEqual(gated[i].qdd, dense[i].qdd);
        expectGatedColumns(plans[i], gated[i].dqdd_dq, dense[i].dqdd_dq);
        expectGatedColumns(plans[i], gated[i].dqdd_dqd,
                           dense[i].dqdd_dqd);
    }
}

INSTANTIATE_TEST_SUITE_P(EvalRobots, SparsityTest,
                         ::testing::Values("iiwa", "hyq", "atlas"));

// ---------------------------------------------------------------------
// Zero steady-state allocations with masks
// ---------------------------------------------------------------------

TEST(Sparsity, GatedBackendSubmitSteadyStateAllocationFree)
{
    const RobotModel robot = model::makeHyq();
    runtime::CpuBatchedBackend backend(robot, 2);

    auto reqs = dadu::tests::randomRequests(robot, 8, 9);
    for (auto &r : reqs) {
        r.gating = GatingMode::Adaptive;
        r.seed_cols = scatteredSeed(robot.nv());
    }
    std::vector<DynamicsResult> results(8);

    // Warm-up sizes the staging vectors, result storage and the
    // backend's resolved plan (grow-only internals).
    ASSERT_EQ(backend.submit(FunctionType::DeltaFD, reqs.data(), 8,
                             results.data()),
              runtime::SubmitStatus::Ok);

    g_alloc_count.store(0);
    g_count_allocs.store(true);
    const runtime::SubmitStatus status = backend.submit(
        FunctionType::DeltaFD, reqs.data(), 8, results.data());
    g_count_allocs.store(false);
    EXPECT_EQ(status, runtime::SubmitStatus::Ok);
    EXPECT_EQ(g_alloc_count.load(), 0)
        << "gated steady-state submission allocated";

    // Same contract for the gated ∆iFD refresh path (q̈/M⁻¹ inputs
    // staged as pointers — no per-point matrix copies).
    for (int i = 0; i < 8; ++i) {
        reqs[i].qdd_or_tau = results[i].qdd;
        reqs[i].minv = results[i].minv;
    }
    ASSERT_EQ(backend.submit(FunctionType::DeltaiFD, reqs.data(), 8,
                             results.data()),
              runtime::SubmitStatus::Ok);
    g_alloc_count.store(0);
    g_count_allocs.store(true);
    const runtime::SubmitStatus difd_status = backend.submit(
        FunctionType::DeltaiFD, reqs.data(), 8, results.data());
    g_count_allocs.store(false);
    EXPECT_EQ(difd_status, runtime::SubmitStatus::Ok);
    EXPECT_EQ(g_alloc_count.load(), 0)
        << "gated steady-state ∆iFD submission allocated";
}

// ---------------------------------------------------------------------
// Gated iLQR client
// ---------------------------------------------------------------------

TEST(Sparsity, GatedIlqrWithZeroToleranceBitwiseEqualsDense)
{
    // gating_tol = 0 keeps every column's drift at/above threshold,
    // so every gated linearization degrades to dense and the whole
    // solve — iterates, costs, trajectories — is bitwise identical.
    for (auto make : {model::makeIiwa, model::makeHyq}) {
        const RobotModel robot = make();
        runtime::CpuBatchedBackend backend(robot, 2);
        const ctrl::Scenario sc = ctrl::makeReachingScenario(robot);

        ctrl::IlqrSolver dense(robot, sc.problem);
        ctrl::IlqrOptions gated_opts;
        gated_opts.gating = GatingMode::Simple;
        gated_opts.gating_tol = 0.0;
        ctrl::IlqrSolver gated(robot, sc.problem, gated_opts);

        const ctrl::IlqrSummary a = dense.solve(backend, sc.q0, sc.qd0);
        const ctrl::IlqrSummary b = gated.solve(backend, sc.q0, sc.qd0);

        SCOPED_TRACE(robot.name());
        EXPECT_EQ(a.iterations, b.iterations);
        EXPECT_EQ(a.cost, b.cost);
        EXPECT_EQ(a.grad_norm, b.grad_norm);
        for (int k = 0; k <= dense.knots(); ++k) {
            expectBitwiseEqual(dense.q(k), gated.q(k));
            expectBitwiseEqual(dense.qd(k), gated.qd(k));
        }
        for (int k = 0; k < dense.knots(); ++k)
            expectBitwiseEqual(dense.u(k), gated.u(k));
    }
}

TEST(Sparsity, GatedIlqrConvergesOnAllRobots)
{
    // With a real tolerance the gated solver reuses cached columns;
    // the line search still guards every accepted step, so solves
    // must converge with a cost no worse than the dense baseline's
    // acceptance criteria.
    for (auto make : {model::makeIiwa, model::makeHyq, model::makeAtlas}) {
        const RobotModel robot = make();
        runtime::CpuBatchedBackend backend(robot, 2);
        const ctrl::Scenario sc = ctrl::makeReachingScenario(robot);

        ctrl::IlqrOptions opts;
        opts.gating = GatingMode::Adaptive;
        opts.gating_tol = 1e-4;
        opts.dense_refresh_every = 8;
        ctrl::IlqrSolver solver(robot, sc.problem, opts);
        const ctrl::IlqrSummary sum = solver.solve(backend, sc.q0, sc.qd0);

        SCOPED_TRACE(robot.name());
        EXPECT_TRUE(sum.converged);
        EXPECT_LT(sum.cost, sum.initial_cost);
        const std::vector<double> &trace = solver.costTrace();
        for (std::size_t i = 1; i < trace.size(); ++i)
            EXPECT_LE(trace[i], trace[i - 1]);
    }
}

} // namespace
