/**
 * @file
 * Tests for the cycle-driven simulation kernel: FIFO semantics,
 * module ticking, quiescence detection, and a small producer/
 * consumer pipeline whose cycle count is known analytically.
 */

#include <gtest/gtest.h>

#include "sim/kernel.h"

namespace {

using namespace dadu::sim;

/** Emits the integers [0, n) at one token per cycle. */
class Producer : public Module
{
  public:
    Producer(Fifo<int> *out, int n)
        : Module("producer"), out_(out), n_(n)
    {}

    void
    tick(Cycle) override
    {
        if (next_ < n_ && out_->push(next_))
            ++next_;
    }

    bool idle() const override { return next_ >= n_; }

  private:
    Fifo<int> *out_;
    int n_;
    int next_ = 0;
};

/** Consumes one token every @p ii cycles, accumulating a sum. */
class Consumer : public Module
{
  public:
    Consumer(Fifo<int> *in, int ii)
        : Module("consumer"), in_(in), ii_(ii)
    {}

    void
    tick(Cycle now) override
    {
        if (busy_until_ > now)
            return;
        if (!in_->empty()) {
            sum_ += in_->pop();
            ++count_;
            busy_until_ = now + ii_;
        }
    }

    bool idle() const override { return in_->empty(); }

    long sum() const { return sum_; }
    int count() const { return count_; }

  private:
    Fifo<int> *in_;
    int ii_;
    Cycle busy_until_ = 0;
    long sum_ = 0;
    int count_ = 0;
};

TEST(Fifo, PushVisibleNextCycleOnly)
{
    Fifo<int> f("f", 4);
    EXPECT_TRUE(f.push(1));
    EXPECT_TRUE(f.empty()); // not yet committed
    f.commit();
    EXPECT_EQ(f.size(), 1u);
    EXPECT_EQ(f.front(), 1);
}

TEST(Fifo, CapacityCountsStagedTokens)
{
    Fifo<int> f("f", 2);
    EXPECT_TRUE(f.push(1));
    EXPECT_TRUE(f.push(2));
    EXPECT_FALSE(f.push(3)); // full including staged
    EXPECT_EQ(f.fullStalls(), 1u);
    f.commit();
    EXPECT_FALSE(f.canPush());
    f.pop();
    EXPECT_TRUE(f.canPush());
}

TEST(Fifo, OrderingIsFifo)
{
    Fifo<int> f("f", 8);
    for (int i = 0; i < 5; ++i)
        f.push(i);
    f.commit();
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(f.pop(), i);
}

TEST(Fifo, StatsTrackHighWater)
{
    Fifo<int> f("f", 8);
    for (int i = 0; i < 5; ++i)
        f.push(i);
    f.commit();
    f.pop();
    f.commit();
    EXPECT_EQ(f.highWater(), 5u);
    EXPECT_EQ(f.totalPushes(), 5u);
}

TEST(Kernel, ProducerConsumerCompletes)
{
    Kernel k;
    auto *f = k.makeFifo<int>("chan", 4);
    Producer p(f, 10);
    Consumer c(f, 1);
    k.addModule(&p);
    k.addModule(&c);
    const Cycle cycles = k.run(1000);
    EXPECT_EQ(c.count(), 10);
    EXPECT_EQ(c.sum(), 45);
    EXPECT_LT(cycles, 30u);
}

TEST(Kernel, SlowConsumerThrottlesProducer)
{
    // With II = 3 at the consumer and a deep enough run, total time
    // ≈ n * 3 cycles; FIFO high-water stays at its capacity.
    Kernel k;
    auto *f = k.makeFifo<int>("chan", 2);
    Producer p(f, 20);
    Consumer c(f, 3);
    k.addModule(&p);
    k.addModule(&c);
    const Cycle cycles = k.run(10000);
    EXPECT_EQ(c.count(), 20);
    EXPECT_GE(cycles, 20u * 3u - 3u);
    EXPECT_LE(cycles, 20u * 3u + 10u);
    EXPECT_LE(f->highWater(), 2u);
}

TEST(Kernel, RunStopsAtMaxCycles)
{
    // A producer with no consumer saturates its FIFO and the kernel
    // must hit the cycle cap, not hang.
    Kernel k;
    auto *f = k.makeFifo<int>("chan", 1);
    Producer p(f, 5);
    k.addModule(&p);
    const Cycle cycles = k.run(50);
    EXPECT_EQ(cycles, 50u);
    EXPECT_EQ(f->size(), 1u);
}

TEST(Kernel, QuiescentImmediately)
{
    Kernel k;
    auto *f = k.makeFifo<int>("chan", 4);
    Producer p(f, 0);
    k.addModule(&p);
    EXPECT_LE(k.run(100), 1u);
}

TEST(Kernel, TwoStagePipelineLatency)
{
    // producer -> [f1] -> relay -> [f2] -> consumer: tokens need two
    // commit boundaries, so completion takes ~n + 2 cycles.
    class Relay : public Module
    {
      public:
        Relay(Fifo<int> *in, Fifo<int> *out)
            : Module("relay"), in_(in), out_(out)
        {}

        void
        tick(Cycle) override
        {
            if (!in_->empty() && out_->canPush())
                out_->push(in_->pop());
        }

        bool idle() const override { return in_->empty(); }

      private:
        Fifo<int> *in_;
        Fifo<int> *out_;
    };

    Kernel k;
    auto *f1 = k.makeFifo<int>("f1", 4);
    auto *f2 = k.makeFifo<int>("f2", 4);
    Producer p(f1, 16);
    Relay r(f1, f2);
    Consumer c(f2, 1);
    k.addModule(&p);
    k.addModule(&r);
    k.addModule(&c);
    const Cycle cycles = k.run(1000);
    EXPECT_EQ(c.count(), 16);
    EXPECT_GE(cycles, 18u);
    EXPECT_LE(cycles, 24u);
}

} // namespace
