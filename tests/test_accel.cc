/**
 * @file
 * Accelerator tests: SAP topology compilation, op counts, and — most
 * importantly — functional equivalence of the simulated pipelines
 * against the reference algorithms for every function in Table I and
 * every evaluation robot.
 */

#include <gtest/gtest.h>

#include <random>

#include "accel/accelerator.h"
#include "accel/op_count.h"
#include "accel/topology.h"
#include "algorithms/crba.h"
#include "algorithms/dynamics.h"
#include "algorithms/mminv_gen.h"
#include "algorithms/rnea.h"
#include "algorithms/rnea_derivatives.h"
#include "model/builders.h"

namespace {

using namespace dadu::accel;
using dadu::algo::crba;
using dadu::algo::fdDerivatives;
using dadu::algo::forwardDynamics;
using dadu::algo::massMatrixInverse;
using dadu::algo::rnea;
using dadu::algo::rneaDerivatives;
using dadu::linalg::MatrixX;
using dadu::linalg::VectorX;
using dadu::model::makeAtlas;
using dadu::model::makeHyq;
using dadu::model::makeIiwa;
using dadu::model::makeQuadrupedArm;
using dadu::model::makeSpotArm;
using dadu::model::makeTiago;
using dadu::model::RobotModel;

// Fixed-point tolerance: the Q29 grid is ~2e-9, but error accumulates
// through the pipeline stages and the float-assisted reciprocal is
// single-precision, so validated tolerances are looser.
constexpr double kFixTol = 2e-3;

TaskInput
randomTask(const RobotModel &robot, std::mt19937 &rng)
{
    TaskInput in;
    in.q = robot.randomConfiguration(rng);
    in.qd = robot.randomVelocity(rng);
    in.qdd_or_tau = robot.randomVelocity(rng);
    return in;
}

// ---------------- topology compiler ----------------

TEST(Topology, QuadrupedArmBranches)
{
    const RobotModel robot = makeQuadrupedArm();
    const SapPlan plan = compileSap(robot);
    // 5 physical branches (4 legs + arm) -> 2 leg arrays + 1 arm
    // array with pairwise TDM (Fig. 11b).
    EXPECT_EQ(plan.branchCount, 5);
    ASSERT_EQ(plan.hwBranches.size(), 3u);
    int tdm2 = 0;
    for (const auto &hw : plan.hwBranches)
        if (hw.tdmFactor() == 2)
            ++tdm2;
    EXPECT_EQ(tdm2, 2);
}

TEST(Topology, TiagoIsLinear)
{
    const SapPlan plan = compileSap(makeTiago());
    EXPECT_EQ(plan.branchCount, 0);
    EXPECT_EQ(plan.hwBranches.size(), 0u);
    EXPECT_GT(plan.rootChain.size(), 0u);
}

TEST(Topology, AtlasRerootingReducesDepth)
{
    const RobotModel atlas = makeAtlas();
    SapConfig with, without;
    without.reroot = false;
    const SapPlan rerooted = compileSap(atlas, with);
    const SapPlan original = compileSap(atlas, without);
    // Fig. 11c: pelvis-rooted depth 11 vs torso-rooted depth 9 (the
    // paper's Atlas lacks our neck link; the reduction is the claim).
    EXPECT_LT(rerooted.maxDepth, original.maxDepth);
    EXPECT_EQ(original.maxDepth, atlas.maxDepth());
}

TEST(Topology, RerootParentsIsValidTree)
{
    const RobotModel robot = makeAtlas();
    const int root = bestRoot(robot);
    const auto parents = rerootParents(robot, root);
    EXPECT_EQ(parents[root], -1);
    int roots = 0;
    for (int i = 0; i < robot.nb(); ++i) {
        if (parents[i] == -1)
            ++roots;
        else
            EXPECT_GE(parents[i], 0);
    }
    EXPECT_EQ(roots, 1);
}

TEST(Topology, SymmetricLegsShareSignature)
{
    const RobotModel robot = makeSpotArm();
    std::vector<int> parents(robot.nb());
    for (int i = 0; i < robot.nb(); ++i)
        parents[i] = robot.parent(i);
    // Legs: links 1, 4, 7, 10 head the four 3-link chains.
    const auto s1 = branchSignature(robot, parents, 1);
    const auto s2 = branchSignature(robot, parents, 4);
    EXPECT_EQ(s1, s2);
    // The arm (link 13) differs.
    EXPECT_NE(s1, branchSignature(robot, parents, 13));
}

TEST(Topology, MergeDisabledKeepsAllBranches)
{
    SapConfig cfg;
    cfg.merge_symmetric = false;
    const SapPlan plan = compileSap(makeQuadrupedArm(), cfg);
    EXPECT_EQ(plan.hwBranches.size(), 5u);
}

// ---------------- op counts ----------------

TEST(OpCount, DeltaGrowsWithDepth)
{
    // Section IV-A4: deeper ∆RNEA submodules process more columns.
    const RobotModel iiwa = makeIiwa();
    const OpCount shallow = submoduleOps(iiwa, 0, SubmoduleKind::DeltaFwd);
    const OpCount deep = submoduleOps(iiwa, 6, SubmoduleKind::DeltaFwd);
    EXPECT_GT(deep.mul, 3 * shallow.mul);
}

TEST(OpCount, BwdCheaperThanFwd)
{
    const RobotModel iiwa = makeIiwa();
    const OpCount fwd = submoduleOps(iiwa, 3, SubmoduleKind::RneaFwd);
    const OpCount bwd = submoduleOps(iiwa, 3, SubmoduleKind::RneaBwd);
    EXPECT_LT(bwd.mul, fwd.mul);
}

TEST(OpCount, MMinvHasReciprocal)
{
    const RobotModel iiwa = makeIiwa();
    EXPECT_GT(submoduleOps(iiwa, 2, SubmoduleKind::MMinvBwd).recip, 0);
}

TEST(OpCount, TimingAllocationMeetsTarget)
{
    const OpCount ops{120, 80, 0};
    const SubmoduleTiming t = allocateTiming(ops, 8, 64);
    EXPECT_LE(t.ii, 8);
    EXPECT_EQ(t.units, 15);
    // Capped allocation degrades II instead of exceeding units.
    const SubmoduleTiming capped = allocateTiming(ops, 8, 4);
    EXPECT_EQ(capped.units, 4);
    EXPECT_EQ(capped.ii, 30);
}

// ---------------- functional equivalence ----------------

class AccelFunctionTest : public ::testing::TestWithParam<std::string>
{
  protected:
    RobotModel
    robot() const
    {
        const std::string &n = GetParam();
        if (n == "iiwa")
            return makeIiwa();
        if (n == "hyq")
            return makeHyq();
        if (n == "atlas")
            return makeAtlas();
        if (n == "quadarm")
            return makeQuadrupedArm();
        return makeTiago();
    }
};

TEST_P(AccelFunctionTest, IdMatchesRnea)
{
    const RobotModel robot = this->robot();
    Accelerator accel(robot);
    std::mt19937 rng(7);
    std::vector<TaskInput> batch;
    for (int i = 0; i < 8; ++i)
        batch.push_back(randomTask(robot, rng));
    BatchStats stats;
    const auto out = accel.run(FunctionType::ID, batch, &stats);
    ASSERT_EQ(out.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const VectorX expect =
            rnea(robot, batch[i].q, batch[i].qd, batch[i].qdd_or_tau).tau;
        EXPECT_LT((out[i].tau - expect).maxAbs(), kFixTol) << i;
    }
    EXPECT_GT(stats.cycles, 0u);
}

TEST_P(AccelFunctionTest, MassMatrixMatchesCrba)
{
    const RobotModel robot = this->robot();
    Accelerator accel(robot);
    std::mt19937 rng(11);
    std::vector<TaskInput> batch{randomTask(robot, rng),
                                 randomTask(robot, rng)};
    const auto out = accel.run(FunctionType::M, batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const MatrixX expect = crba(robot, batch[i].q);
        EXPECT_LT((out[i].m - expect).maxAbs(), kFixTol) << i;
    }
}

TEST_P(AccelFunctionTest, MinvMatchesReference)
{
    const RobotModel robot = this->robot();
    Accelerator accel(robot);
    std::mt19937 rng(13);
    std::vector<TaskInput> batch{randomTask(robot, rng)};
    const auto out = accel.run(FunctionType::Minv, batch);
    const MatrixX expect = massMatrixInverse(robot, batch[0].q);
    // Minv entries reach O(100) for light wrist links, so compare
    // relative to the matrix scale.
    EXPECT_LT((out[0].minv - expect).maxAbs() / expect.maxAbs(),
              kFixTol);
    // And it actually inverts the true mass matrix.
    const MatrixX m = crba(robot, batch[0].q);
    const MatrixX eye = MatrixX::identity(robot.nv());
    EXPECT_LT((out[0].minv * m - eye).maxAbs(), 5e-2);
}

TEST_P(AccelFunctionTest, FdMatchesReference)
{
    const RobotModel robot = this->robot();
    Accelerator accel(robot);
    std::mt19937 rng(17);
    std::vector<TaskInput> batch{randomTask(robot, rng),
                                 randomTask(robot, rng)};
    const auto out = accel.run(FunctionType::FD, batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const VectorX expect = forwardDynamics(
            robot, batch[i].q, batch[i].qd, batch[i].qdd_or_tau);
        EXPECT_LT((out[i].qdd - expect).maxAbs(), 100 * kFixTol) << i;
    }
}

TEST_P(AccelFunctionTest, DeltaIdMatchesReference)
{
    const RobotModel robot = this->robot();
    Accelerator accel(robot);
    std::mt19937 rng(19);
    std::vector<TaskInput> batch{randomTask(robot, rng)};
    const auto out = accel.run(FunctionType::DeltaID, batch);
    const auto expect = rneaDerivatives(robot, batch[0].q, batch[0].qd,
                                        batch[0].qdd_or_tau);
    EXPECT_LT((out[0].dtau_dq - expect.dtau_dq).maxAbs(), kFixTol);
    EXPECT_LT((out[0].dtau_dqd - expect.dtau_dqd).maxAbs(), kFixTol);
}

TEST_P(AccelFunctionTest, DeltaFdMatchesReference)
{
    const RobotModel robot = this->robot();
    Accelerator accel(robot);
    std::mt19937 rng(23);
    std::vector<TaskInput> batch{randomTask(robot, rng)};
    const auto out = accel.run(FunctionType::DeltaFD, batch);
    const auto expect = fdDerivatives(robot, batch[0].q, batch[0].qd,
                                      batch[0].qdd_or_tau);
    EXPECT_LT((out[0].qdd - expect.qdd).maxAbs(), 100 * kFixTol);
    EXPECT_LT((out[0].dqdd_dq - expect.dqdd_dq).maxAbs(), 1.0);
    // Relative check on the dominant entries.
    const double scale = expect.dqdd_dq.maxAbs();
    EXPECT_LT((out[0].dqdd_dq - expect.dqdd_dq).maxAbs() / scale, 2e-2);
}

TEST_P(AccelFunctionTest, DeltaiFdMatchesReference)
{
    const RobotModel robot = this->robot();
    Accelerator accel(robot);
    std::mt19937 rng(29);
    TaskInput in = randomTask(robot, rng);
    // ∆iFD receives q̈ and M⁻¹ as inputs (Robomorphic-compatible).
    const auto ref = fdDerivatives(robot, in.q, in.qd, in.qdd_or_tau);
    in.qdd_or_tau = ref.qdd;
    in.minv = ref.minv;
    const auto out = accel.run(FunctionType::DeltaiFD, {in});
    const double scale = ref.dqdd_dq.maxAbs();
    EXPECT_LT((out[0].dqdd_dq - ref.dqdd_dq).maxAbs() / scale, 2e-2);
    EXPECT_LT((out[0].dqdd_dqd - ref.dqdd_dqd).maxAbs() / scale, 2e-2);
}

INSTANTIATE_TEST_SUITE_P(Robots, AccelFunctionTest,
                         ::testing::Values("iiwa", "hyq", "atlas",
                                           "quadarm", "tiago"),
                         [](const auto &info) { return info.param; });

// ---------------- float mode is exact ----------------

TEST(AccelNumerics, FloatModeMatchesReferenceExactly)
{
    const RobotModel robot = makeIiwa();
    AccelConfig cfg;
    cfg.numeric.fixed_point = false;
    cfg.numeric.taylor_terms = 12; // near-exact trig
    Accelerator accel(robot, cfg);
    std::mt19937 rng(31);
    TaskInput in = randomTask(robot, rng);
    const auto out = accel.run(FunctionType::ID, {in});
    const VectorX expect = rnea(robot, in.q, in.qd, in.qdd_or_tau).tau;
    EXPECT_LT((out[0].tau - expect).maxAbs(), 1e-9);
}

TEST(AccelNumerics, FixedPointErrorBounded)
{
    // The fixed-point datapath loses precision but stays within the
    // documented tolerance band across a batch.
    const RobotModel robot = makeQuadrupedArm();
    Accelerator accel(robot);
    std::mt19937 rng(37);
    std::vector<TaskInput> batch;
    for (int i = 0; i < 16; ++i)
        batch.push_back(randomTask(robot, rng));
    const auto out = accel.run(FunctionType::ID, batch);
    double worst = 0.0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const VectorX expect =
            rnea(robot, batch[i].q, batch[i].qd, batch[i].qdd_or_tau).tau;
        worst = std::max(worst, (out[i].tau - expect).maxAbs());
    }
    EXPECT_LT(worst, kFixTol);
    EXPECT_GT(worst, 0.0); // quantization is actually happening
}

// ---------------- timing behaviour ----------------

TEST(AccelTiming, ThroughputScalesWithBatch)
{
    const RobotModel robot = makeIiwa();
    Accelerator accel(robot);
    std::mt19937 rng(41);
    std::vector<TaskInput> small, large;
    for (int i = 0; i < 4; ++i)
        small.push_back(randomTask(robot, rng));
    for (int i = 0; i < 64; ++i)
        large.push_back(randomTask(robot, rng));
    BatchStats s1, s2;
    accel.run(FunctionType::ID, small, &s1);
    accel.run(FunctionType::ID, large, &s2);
    // Pipelining: larger batches amortize the fill latency.
    EXPECT_GT(s2.throughput_mtasks, 1.5 * s1.throughput_mtasks);
}

TEST(AccelTiming, SimMatchesAnalyticWithinBand)
{
    const RobotModel robot = makeIiwa();
    Accelerator accel(robot);
    std::mt19937 rng(43);
    std::vector<TaskInput> batch;
    for (int i = 0; i < 128; ++i)
        batch.push_back(randomTask(robot, rng));
    BatchStats stats;
    accel.run(FunctionType::ID, batch, &stats);
    const TimingEstimate est = accel.analytic(FunctionType::ID);
    EXPECT_GT(stats.throughput_mtasks, 0.3 * est.throughput_mtasks);
    EXPECT_LT(stats.throughput_mtasks, 3.0 * est.throughput_mtasks);
}

TEST(AccelTiming, DeltaFdSlowerThanId)
{
    const RobotModel robot = makeIiwa();
    Accelerator accel(robot);
    const auto id = accel.analytic(FunctionType::ID);
    const auto dfd = accel.analytic(FunctionType::DeltaFD);
    EXPECT_GT(dfd.latency_us, id.latency_us);
    EXPECT_LT(dfd.throughput_mtasks, id.throughput_mtasks);
}

TEST(AccelTiming, NoFifoStallsWithGenerousBuffers)
{
    const RobotModel robot = makeHyq();
    Accelerator accel(robot);
    std::mt19937 rng(47);
    std::vector<TaskInput> batch;
    for (int i = 0; i < 32; ++i)
        batch.push_back(randomTask(robot, rng));
    BatchStats stats;
    accel.run(FunctionType::ID, batch, &stats);
    EXPECT_EQ(stats.fifo_stalls, 0u);
    EXPECT_GT(stats.fifo_high_water, 0u);
}

// ---------------- resources ----------------

TEST(AccelResources, WithinDeviceBudget)
{
    // Section VI-C: 62% DSP / 17% FF / 54% LUT for the
    // quadruped-with-arm configuration; the model must land in a
    // credible band and fit the device.
    Accelerator accel(makeQuadrupedArm());
    const ResourceEstimate r = accel.resources();
    EXPECT_GT(r.dsp_pct, 20.0);
    EXPECT_LT(r.dsp_pct, 100.0);
    EXPECT_LT(r.lut_pct, 100.0);
    EXPECT_LT(r.ff_pct, 100.0);
}

TEST(AccelResources, TdmSavesResources)
{
    // At a fixed lane-allocation target, sharing leg arrays halves
    // their hardware (compare without the budget auto-fit).
    AccelConfig merged, unmerged;
    merged.auto_fit = false;
    merged.target_ii = 8;
    unmerged = merged;
    unmerged.sap.merge_symmetric = false;
    Accelerator a1(makeQuadrupedArm(), merged);
    Accelerator a2(makeQuadrupedArm(), unmerged);
    EXPECT_LT(a1.resources().dsp, a2.resources().dsp);
}

} // namespace
