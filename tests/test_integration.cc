/**
 * @file
 * Cross-module integration and stress tests: accelerator-vs-
 * reference sweeps over chain lengths, configuration stress
 * (tiny FIFOs, tiny task pools), plan invariants, and determinism.
 */

#include <gtest/gtest.h>

#include <random>

#include "accel/accelerator.h"
#include "algorithms/dynamics.h"
#include "algorithms/rnea.h"
#include "model/builders.h"

namespace {

using namespace dadu::accel;
using dadu::linalg::VectorX;
using dadu::model::makeQuadrupedArm;
using dadu::model::makeSerialChain;
using dadu::model::RobotModel;

std::vector<TaskInput>
randomBatch(const RobotModel &robot, int n, unsigned seed)
{
    std::mt19937 rng(seed);
    std::vector<TaskInput> batch(n);
    for (auto &t : batch) {
        t.q = robot.randomConfiguration(rng);
        t.qd = robot.randomVelocity(rng);
        t.qdd_or_tau = robot.randomVelocity(rng);
    }
    return batch;
}

/** Property sweep: accelerator ID matches RNEA on chains of many
 * lengths. */
class ChainSweep : public ::testing::TestWithParam<int>
{};

TEST_P(ChainSweep, AccelIdMatchesReference)
{
    const RobotModel robot = makeSerialChain(GetParam());
    Accelerator accel(robot);
    const auto batch = randomBatch(robot, 4, 11 + GetParam());
    const auto out = accel.run(FunctionType::ID, batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const VectorX expect =
            dadu::algo::rnea(robot, batch[i].q, batch[i].qd,
                             batch[i].qdd_or_tau)
                .tau;
        EXPECT_LT((out[i].tau - expect).maxAbs(), 2e-3) << GetParam();
    }
}

TEST_P(ChainSweep, AccelDeltaIdMatchesReference)
{
    const RobotModel robot = makeSerialChain(GetParam());
    Accelerator accel(robot);
    const auto batch = randomBatch(robot, 2, 23 + GetParam());
    const auto out = accel.run(FunctionType::DeltaID, batch);
    const auto ref = dadu::algo::rneaDerivatives(
        robot, batch[0].q, batch[0].qd, batch[0].qdd_or_tau);
    EXPECT_LT((out[0].dtau_dq - ref.dtau_dq).maxAbs(), 2e-3);
}

INSTANTIATE_TEST_SUITE_P(Lengths, ChainSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 16));

// ---------------- stress / failure injection ----------------

TEST(AccelStress, TinyFifosStillProduceCorrectResults)
{
    // Capacity-2 channels force continuous back-pressure; the
    // dataflow must stall, not corrupt or deadlock.
    const RobotModel robot = makeQuadrupedArm();
    AccelConfig cfg;
    cfg.fifo_capacity = 2;
    Accelerator accel(robot, cfg);
    const auto batch = randomBatch(robot, 12, 5);
    BatchStats stats;
    const auto out = accel.run(FunctionType::ID, batch, &stats);
    EXPECT_GT(stats.fifo_stalls, 0u); // back-pressure actually occurred
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const VectorX expect =
            dadu::algo::rnea(robot, batch[i].q, batch[i].qd,
                             batch[i].qdd_or_tau)
                .tau;
        EXPECT_LT((out[i].tau - expect).maxAbs(), 2e-3) << i;
    }
}

TEST(AccelStress, TinyFifosCostThroughput)
{
    const RobotModel robot = makeQuadrupedArm();
    AccelConfig small, big;
    small.fifo_capacity = 2;
    Accelerator a_small(robot, small), a_big(robot, big);
    BatchStats s_small, s_big;
    a_small.run(FunctionType::ID, randomBatch(robot, 64, 7), &s_small);
    a_big.run(FunctionType::ID, randomBatch(robot, 64, 7), &s_big);
    // The paper's bypass buffers exist precisely to avoid this loss.
    EXPECT_LT(s_small.throughput_mtasks, s_big.throughput_mtasks);
}

TEST(AccelStress, PoolSmallerThanBatch)
{
    // Task-state reuse: a 4-entry pool must serve a 32-task batch.
    const RobotModel robot = makeSerialChain(6);
    AccelConfig cfg;
    cfg.task_pool = 4;
    Accelerator accel(robot, cfg);
    const auto batch = randomBatch(robot, 32, 13);
    const auto out = accel.run(FunctionType::ID, batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const VectorX expect =
            dadu::algo::rnea(robot, batch[i].q, batch[i].qd,
                             batch[i].qdd_or_tau)
                .tau;
        EXPECT_LT((out[i].tau - expect).maxAbs(), 2e-3) << i;
    }
}

TEST(AccelStress, EmptyBatchIsANoop)
{
    const RobotModel robot = makeSerialChain(3);
    Accelerator accel(robot);
    BatchStats stats;
    const auto out = accel.run(FunctionType::ID, {}, &stats);
    EXPECT_TRUE(out.empty());
}

TEST(AccelStress, DeterministicAcrossRuns)
{
    // Same batch, fresh kernels: identical results and cycle counts.
    const RobotModel robot = makeQuadrupedArm();
    Accelerator accel(robot);
    const auto batch = randomBatch(robot, 16, 19);
    BatchStats s1, s2;
    const auto o1 = accel.run(FunctionType::DeltaID, batch, &s1);
    const auto o2 = accel.run(FunctionType::DeltaID, batch, &s2);
    EXPECT_EQ(s1.cycles, s2.cycles);
    for (std::size_t i = 0; i < batch.size(); ++i)
        EXPECT_EQ((o1[i].dtau_dq - o2[i].dtau_dq).maxAbs(), 0.0);
}

TEST(AccelStress, SlowInputIssueDegradesGracefully)
{
    const RobotModel robot = makeSerialChain(7);
    AccelConfig fast, slow;
    slow.input_issue_ii = 200; // starved input stream
    Accelerator a_fast(robot, fast), a_slow(robot, slow);
    BatchStats s_fast, s_slow;
    a_fast.run(FunctionType::ID, randomBatch(robot, 32, 3), &s_fast);
    a_slow.run(FunctionType::ID, randomBatch(robot, 32, 3), &s_slow);
    EXPECT_LT(s_slow.throughput_mtasks, s_fast.throughput_mtasks);
    // Throughput becomes input-bound: ~freq / issue interval.
    const double bound = 125.0 / 200.0; // Mtasks/s
    EXPECT_NEAR(s_slow.throughput_mtasks, bound, 0.25 * bound);
}

// ---------------- plan invariants ----------------

TEST(PlanInvariants, RepMapPointsAtStructuralTwins)
{
    for (const RobotModel &robot :
         {makeQuadrupedArm(), dadu::model::makeAtlas(),
          dadu::model::makeSpotArm()}) {
        const SapPlan plan = compileSap(robot);
        for (int i = 0; i < robot.nb(); ++i) {
            const int r = plan.rep[i];
            ASSERT_GE(r, 0);
            ASSERT_LT(r, robot.nb());
            // Same joint type and same depth as the link it serves.
            EXPECT_EQ(robot.link(r).joint, robot.link(i).joint);
            EXPECT_EQ(plan.depth[r], plan.depth[i]);
            // Representatives are their own representatives.
            EXPECT_EQ(plan.rep[r], r);
        }
    }
}

TEST(PlanInvariants, DepthsAreConsistentWithParents)
{
    const RobotModel robot = dadu::model::makeAtlas();
    const SapPlan plan = compileSap(robot);
    for (int i = 0; i < robot.nb(); ++i) {
        const int p = plan.parents[i];
        if (p == -1)
            EXPECT_EQ(plan.depth[i], 1);
        else
            EXPECT_EQ(plan.depth[i], plan.depth[p] + 1);
    }
}

TEST(PlanInvariants, EveryLinkInExactlyOneTopLevelGroup)
{
    const RobotModel robot = makeQuadrupedArm();
    const SapPlan plan = compileSap(robot);
    std::vector<int> seen(robot.nb(), 0);
    for (int l : plan.rootChain)
        ++seen[l];
    for (const HwBranch &hw : plan.hwBranches)
        for (const auto &b : hw.served)
            for (int l : b)
                ++seen[l];
    for (int i = 0; i < robot.nb(); ++i)
        EXPECT_EQ(seen[i], 1) << i;
}

} // namespace
