/**
 * @file
 * Tests for the fault-tolerance layer:
 *
 *  - FaultInjectingBackend executes its seeded FaultPlan
 *    deterministically (identical plans → identical fault sequences);
 *  - transient faults retry and succeed with exact accounting;
 *  - NaN-corrupted batches are caught by server-side validation and
 *    retried until clean;
 *  - a lane that dies mid-drain fails its work over: unfaulted tasks
 *    keep bitwise-identical results under EDF+steal, lane-sticky
 *    serial-stage jobs restart their current stage on a healthy lane
 *    with completed stages (and their advance calls) preserved;
 *  - chaos: one of four lanes killed mid-run under concurrent mixed
 *    traffic — every accepted job completes with correct results;
 *  - admission control sheds bulk on queue depth but never tagged
 *    traffic, with explicit Rejected outcomes;
 *  - already-late deadlines are admitted and counted as immediate
 *    misses (property-tested accounting);
 *  - start()/stop() idempotence and per-job accessor bounds checks;
 *  - the fault decorator preserves zero-allocation steady-state
 *    submission (counted allocator).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <new>
#include <random>
#include <thread>
#include <vector>

#include "model/builders.h"
#include "perf/timing.h"
#include "runtime/backends.h"
#include "runtime/fault.h"
#include "runtime/sched/admission.h"
#include "runtime/server.h"
#include "test_support.h"

// ---------------------------------------------------------------------
// Counted global allocator (see tests/test_batched.cc): off by
// default; the zero-allocation test switches it on around the
// measured region only.
// ---------------------------------------------------------------------

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<long> g_alloc_count{0};

} // namespace

void *
operator new(std::size_t size)
{
    if (g_count_allocs.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace dadu;
using dadu::model::RobotModel;
using dadu::runtime::BatchStats;
using dadu::runtime::DynamicsRequest;
using dadu::runtime::DynamicsResult;
using dadu::runtime::DynamicsServer;
using dadu::runtime::FaultInjectingBackend;
using dadu::runtime::FaultPlan;
using dadu::runtime::FunctionType;
using dadu::runtime::JobOutcome;
using dadu::runtime::SubmitStatus;
using dadu::runtime::sched::JobTag;
using dadu::runtime::sched::kNoDeadline;
using dadu::runtime::sched::PolicyKind;
using dadu::runtime::sched::SchedConfig;
using dadu::runtime::sched::SchedStats;
using dadu::tests::expectBitwiseEqual;
using dadu::tests::randomRequests;

/**
 * Pure-function echo backend: q̈ = q̇ (copy), so any lane — and any
 * re-execution after a fault — produces bitwise-identical results.
 * Optional wall time per batch for admission/overload tests.
 */
class EchoBackend : public runtime::DynamicsBackend
{
  public:
    explicit EchoBackend(const RobotModel &robot, double wall_us = 0.0)
        : robot_(robot), wall_us_(wall_us)
    {}

    const char *name() const override { return "echo"; }
    const RobotModel &robot() const override { return robot_; }
    bool offloaded() const override { return true; }

    std::unique_ptr<runtime::DynamicsBackend> clone() const override
    {
        return std::make_unique<EchoBackend>(robot_, wall_us_);
    }

    SubmitStatus
    submit(FunctionType, const DynamicsRequest *requests,
           std::size_t count, DynamicsResult *results,
           BatchStats *stats) override
    {
        for (std::size_t i = 0; i < count; ++i)
            results[i].qdd = requests[i].qd;
        if (wall_us_ > 0.0)
            std::this_thread::sleep_for(std::chrono::microseconds(
                static_cast<long>(wall_us_)));
        if (stats) {
            *stats = BatchStats{};
            stats->total_us = 10.0 + 1.0 * count;
        }
        return SubmitStatus::Ok;
    }

  private:
    const RobotModel &robot_;
    double wall_us_;
};

/** Stage-boundary advance: q̇ ← q̈ + 1 per element, counting calls. */
struct AdvanceCounter
{
    std::atomic<int> calls{0};
};

void
advancePlusOne(void *ctx, int, const DynamicsResult *results,
               DynamicsRequest *requests, std::size_t points)
{
    auto *counter = static_cast<AdvanceCounter *>(ctx);
    counter->calls.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t p = 0; p < points; ++p) {
        requests[p].qd = results[p].qdd;
        for (std::size_t i = 0; i < requests[p].qd.size(); ++i)
            requests[p].qd[i] += 1.0;
    }
}

// ---------------------------------------------------------------------
// FaultInjectingBackend unit behavior
// ---------------------------------------------------------------------

TEST(FaultInjectingBackend, SeededPlanIsDeterministic)
{
    const RobotModel robot = model::makeSerialChain(3);
    const auto reqs = randomRequests(robot, 4, 11);
    std::vector<DynamicsResult> res_a(4), res_b(4);

    FaultPlan plan;
    plan.seed = 42;
    plan.transient_fail_prob = 0.3;
    plan.corrupt_prob = 0.2;
    plan.latency_spike_prob = 0.25;
    plan.latency_spike_us = 500.0;

    EchoBackend inner_a(robot), inner_b(robot);
    FaultInjectingBackend a(inner_a, plan), b(inner_b, plan);
    for (int i = 0; i < 64; ++i) {
        BatchStats sa, sb;
        const SubmitStatus ra = a.submit(FunctionType::FD, reqs.data(), 4,
                                         res_a.data(), &sa);
        const SubmitStatus rb = b.submit(FunctionType::FD, reqs.data(), 4,
                                         res_b.data(), &sb);
        EXPECT_EQ(static_cast<int>(ra), static_cast<int>(rb));
        EXPECT_EQ(sa.total_us, sb.total_us);
    }
    EXPECT_EQ(a.transientFaults(), b.transientFaults());
    EXPECT_EQ(a.corruptedBatches(), b.corruptedBatches());
    EXPECT_EQ(a.latencySpikes(), b.latencySpikes());
    EXPECT_GT(a.transientFaults(), 0);
    EXPECT_GT(a.corruptedBatches(), 0);
    EXPECT_GT(a.latencySpikes(), 0);
}

TEST(FaultInjectingBackend, DiesAfterBatchBudgetAndStaysDead)
{
    const RobotModel robot = model::makeSerialChain(3);
    const auto reqs = randomRequests(robot, 2, 5);
    std::vector<DynamicsResult> results(2);

    FaultPlan plan;
    plan.die_after_batches = 3;
    EchoBackend inner(robot);
    FaultInjectingBackend backend(inner, plan);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(backend.submit(FunctionType::FD, reqs.data(), 2,
                                 results.data(), nullptr),
                  SubmitStatus::Ok);
    EXPECT_FALSE(backend.dead());
    BatchStats stats;
    EXPECT_EQ(backend.submit(FunctionType::FD, reqs.data(), 2,
                             results.data(), &stats),
              SubmitStatus::BackendDown);
    EXPECT_EQ(stats.status, SubmitStatus::BackendDown);
    EXPECT_TRUE(backend.dead());
    EXPECT_EQ(backend.submit(FunctionType::FD, reqs.data(), 2,
                             results.data(), nullptr),
              SubmitStatus::BackendDown);
}

// ---------------------------------------------------------------------
// Server-side retry and validation
// ---------------------------------------------------------------------

TEST(FaultServer, TransientRetryThenSucceedAccounting)
{
    const RobotModel robot = model::makeSerialChain(3);
    const auto reqs = randomRequests(robot, 4, 21);

    // Deterministic faults: every 3rd batch fails once; the retry
    // (batch counter advanced) succeeds immediately.
    FaultPlan plan;
    plan.transient_every_n = 3;
    EchoBackend inner(robot);
    FaultInjectingBackend backend(inner, plan);
    DynamicsServer server(backend);
    SchedConfig cfg;
    cfg.max_retries = 2;
    server.setPolicy(cfg);

    std::vector<std::vector<DynamicsResult>> results(6);
    std::vector<int> jobs;
    for (int j = 0; j < 6; ++j) {
        results[j].resize(4);
        jobs.push_back(server.submit(FunctionType::FD, reqs.data(), 4,
                                     results[j].data()));
    }
    SchedStats sstats;
    server.drain(nullptr, &sstats);

    // 6 batches submitted: decorator calls 1..8, faults at 3 and 6,
    // each recovered by exactly one retry.
    EXPECT_EQ(sstats.transient_faults, 2u);
    EXPECT_EQ(sstats.retries, 2u);
    EXPECT_EQ(sstats.lane_deaths, 0u);
    EXPECT_EQ(sstats.failed_jobs, 0u);
    EXPECT_TRUE(server.laneHealthy(0));
    for (int j = 0; j < 6; ++j) {
        EXPECT_EQ(server.jobOutcome(jobs[j]), JobOutcome::Completed);
        for (int i = 0; i < 4; ++i)
            expectBitwiseEqual(results[j][i].qdd, reqs[i].qd);
    }
}

TEST(FaultServer, CorruptResultsCaughtByValidationAndRetried)
{
    const RobotModel robot = model::makeSerialChain(3);
    const auto reqs = randomRequests(robot, 4, 33);

    FaultPlan plan;
    plan.seed = 7;
    plan.corrupt_prob = 0.4;
    EchoBackend inner(robot);
    FaultInjectingBackend backend(inner, plan);
    DynamicsServer server(backend);
    SchedConfig cfg;
    cfg.max_retries = 8; // corruption redraws per retry; 0.4^9 ≈ never
    cfg.validate_results = true;
    server.setPolicy(cfg);

    std::vector<std::vector<DynamicsResult>> results(16);
    std::vector<int> jobs;
    for (int j = 0; j < 16; ++j) {
        results[j].resize(4);
        jobs.push_back(server.submit(FunctionType::FD, reqs.data(), 4,
                                     results[j].data()));
    }
    SchedStats sstats;
    server.drain(nullptr, &sstats);

    EXPECT_GT(sstats.corrupt_results, 0u);
    EXPECT_EQ(sstats.failed_jobs, 0u);
    EXPECT_TRUE(server.laneHealthy(0));
    for (int j = 0; j < 16; ++j) {
        EXPECT_EQ(server.jobOutcome(jobs[j]), JobOutcome::Completed);
        for (int i = 0; i < 4; ++i) {
            for (std::size_t k = 0; k < results[j][i].qdd.size(); ++k)
                EXPECT_TRUE(std::isfinite(results[j][i].qdd[k]));
            expectBitwiseEqual(results[j][i].qdd, reqs[i].qd);
        }
    }
}

// ---------------------------------------------------------------------
// Lane failover
// ---------------------------------------------------------------------

TEST(FaultServer, SiblingLaneDeathMidDrainKeepsResultsBitwise)
{
    const RobotModel robot = model::makeSerialChain(3);
    const auto reqs = randomRequests(robot, 6, 55);

    EchoBackend lane0(robot);
    EchoBackend inner1(robot);
    FaultPlan plan;
    plan.die_after_batches = 1; // one batch, then dead mid-drain
    FaultInjectingBackend lane1(inner1, plan);

    DynamicsServer server(lane0);
    server.addBackend(lane1);
    SchedConfig cfg;
    cfg.kind = PolicyKind::Edf;
    cfg.steal = true;
    server.setPolicy(cfg);

    // Healthy reference run of the identical traffic.
    EchoBackend ref_backend(robot);
    DynamicsServer ref(ref_backend);

    const int kJobs = 10;
    std::vector<std::vector<DynamicsResult>> results(kJobs), expect(kJobs);
    std::vector<int> jobs, ref_jobs;
    const double now = perf::nowUs();
    for (int j = 0; j < kJobs; ++j) {
        results[j].resize(6);
        expect[j].resize(6);
        JobTag tag;
        tag.deadline_us = now + 1e6 + j * 100.0;
        jobs.push_back(server.submit(FunctionType::FD, reqs.data(), 6,
                                     results[j].data(), j % 2, tag));
        ref_jobs.push_back(ref.submit(FunctionType::FD, reqs.data(), 6,
                                      expect[j].data(), 0, tag));
    }
    // A lane-sticky serial-stage job pinned to the dying lane: it
    // cannot be stolen, so lane 1's own serving path must hit the
    // dead backend with work still owed — the failover trigger.
    auto sreqs = randomRequests(robot, 3, 56);
    std::vector<DynamicsResult> sres(3);
    const int serial = server.submitSerialStages(
        FunctionType::FD, sreqs.data(), 3, /*stages=*/3,
        /*advance=*/nullptr, nullptr, sres.data(), /*backend_id=*/1);
    SchedStats sstats;
    server.drain(nullptr, &sstats);
    ref.drain();

    EXPECT_TRUE(server.laneHealthy(0));
    EXPECT_FALSE(server.laneHealthy(1));
    EXPECT_EQ(sstats.lane_deaths, 1u);
    EXPECT_GT(sstats.requeued_items, 0u);
    EXPECT_EQ(sstats.failed_jobs, 0u);
    for (int j = 0; j < kJobs; ++j) {
        EXPECT_EQ(server.jobOutcome(jobs[j]), JobOutcome::Completed);
        for (int i = 0; i < 6; ++i)
            expectBitwiseEqual(results[j][i].qdd, expect[j][i].qdd);
    }
    // The serial job restarted its interrupted stage on lane 0; with
    // a null advance every stage echoes the same requests.
    EXPECT_EQ(server.jobOutcome(serial), JobOutcome::Completed);
    for (int i = 0; i < 3; ++i)
        expectBitwiseEqual(sres[i].qdd, sreqs[i].qd);
}

TEST(FaultServer, SerialStageJobRestartsFromLastCompletedStage)
{
    const RobotModel robot = model::makeSerialChain(3);
    auto reqs = randomRequests(robot, 4, 77);
    const auto reqs0 = reqs; // advance mutates reqs in place

    EchoBackend inner0(robot);
    FaultPlan plan;
    plan.die_after_batches = 2; // stages 1..2 execute, stage 3 kills
    FaultInjectingBackend lane0(inner0, plan);
    EchoBackend lane1(robot);

    DynamicsServer server(lane0);
    server.addBackend(lane1);

    const int kStages = 4;
    AdvanceCounter counter;
    std::vector<DynamicsResult> results(4);
    const int job = server.submitSerialStages(
        FunctionType::FD, reqs.data(), 4, kStages, advancePlusOne,
        &counter, results.data(), /*backend_id=*/0);
    SchedStats sstats;
    server.drain(nullptr, &sstats);

    EXPECT_FALSE(server.laneHealthy(0));
    EXPECT_TRUE(server.laneHealthy(1));
    EXPECT_EQ(sstats.lane_deaths, 1u);
    EXPECT_EQ(server.jobOutcome(job), JobOutcome::Completed);
    // Advance runs once per completed stage boundary, never twice:
    // the failed stage had not advanced yet, so its restart re-runs
    // the SAME stage on the healthy lane.
    EXPECT_EQ(counter.calls.load(), kStages - 1);
    // Echo + (q̇ ← q̈ + 1) per boundary: final q̈ = q̇₀ + (stages-1),
    // accumulated by the same op sequence so the compare is bitwise.
    for (int i = 0; i < 4; ++i) {
        ASSERT_EQ(results[i].qdd.size(), reqs0[i].qd.size());
        for (std::size_t k = 0; k < results[i].qdd.size(); ++k) {
            double e = reqs0[i].qd[k];
            for (int s = 1; s < kStages; ++s)
                e += 1.0;
            EXPECT_EQ(results[i].qdd[k], e);
        }
    }
}

TEST(FaultServer, AllLanesDeadFailsJobsExplicitly)
{
    const RobotModel robot = model::makeSerialChain(3);
    const auto reqs = randomRequests(robot, 2, 3);

    EchoBackend inner(robot);
    FaultPlan plan;
    plan.die_after_batches = 0; // dead on arrival
    FaultInjectingBackend backend(inner, plan);
    DynamicsServer server(backend);

    std::vector<DynamicsResult> results(2);
    const int job =
        server.submit(FunctionType::FD, reqs.data(), 2, results.data());
    SchedStats sstats;
    server.drain(nullptr, &sstats);
    EXPECT_EQ(server.jobOutcome(job), JobOutcome::Failed);
    EXPECT_TRUE(server.jobDone(job));
    EXPECT_EQ(sstats.failed_jobs, 1u);
    EXPECT_EQ(sstats.lane_deaths, 1u);

    // With the only lane quarantined, submission fails immediately
    // (explicit outcome, no hang).
    const int job2 =
        server.submit(FunctionType::FD, reqs.data(), 2, results.data());
    EXPECT_EQ(server.jobOutcome(job2), JobOutcome::Failed);
    server.wait(job2); // returns immediately
}

// ---------------------------------------------------------------------
// Chaos: one of four lanes killed mid-run under concurrent traffic
// ---------------------------------------------------------------------

TEST(FaultServer, ChaosKillOneOfFourLanesEveryAcceptedJobCompletes)
{
    const RobotModel robot = model::makeSerialChain(3);

    std::vector<std::unique_ptr<FaultInjectingBackend>> lanes;
    for (int l = 0; l < 4; ++l) {
        FaultPlan plan;
        plan.seed = 100u + l;
        plan.transient_every_n = 7 + l; // deterministic, retry recovers
        plan.corrupt_prob = 0.05;
        if (l == 2)
            plan.die_after_batches = 5; // killed mid-run
        lanes.push_back(std::make_unique<FaultInjectingBackend>(
            std::make_unique<EchoBackend>(robot), plan));
    }

    DynamicsServer server;
    for (auto &lane : lanes)
        server.addBackend(*lane);
    SchedConfig cfg;
    cfg.kind = PolicyKind::Edf;
    cfg.coalesce = true;
    cfg.steal = true;
    cfg.max_retries = 5;
    cfg.validate_results = true;
    server.setPolicy(cfg);
    server.start();

    const int kClients = 4;
    const int kJobsPerClient = 24;
    std::atomic<int> bad_outcomes{0}, bad_results{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            std::mt19937 rng(900u + c);
            auto reqs = randomRequests(robot, 16, 40u + c);
            std::vector<DynamicsResult> results(16);
            AdvanceCounter counter;
            for (int j = 0; j < kJobsPerClient; ++j) {
                const int shape = j % 3;
                int job;
                if (shape == 0) {
                    // Flat batch, random size and lane, some tagged.
                    const std::size_t n = 1 + rng() % 8;
                    JobTag tag;
                    if (j % 2)
                        tag.deadline_us = perf::nowUs() + 5e5;
                    job = server.submit(FunctionType::FD, reqs.data(), n,
                                        results.data(),
                                        DynamicsServer::kLeastLoaded, tag);
                    server.wait(job);
                    if (server.jobOutcome(job) != JobOutcome::Completed)
                        ++bad_outcomes;
                    else
                        for (std::size_t i = 0; i < n; ++i)
                            for (std::size_t k = 0;
                                 k < results[i].qdd.size(); ++k)
                                if (results[i].qdd[k] != reqs[i].qd[k])
                                    ++bad_results;
                } else if (shape == 1) {
                    // Sharded across every healthy lane.
                    job = server.submitSharded(FunctionType::FD,
                                               reqs.data(), 16,
                                               results.data());
                    server.wait(job);
                    if (server.jobOutcome(job) != JobOutcome::Completed)
                        ++bad_outcomes;
                    else
                        for (std::size_t i = 0; i < 16; ++i)
                            for (std::size_t k = 0;
                                 k < results[i].qdd.size(); ++k)
                                if (results[i].qdd[k] != reqs[i].qd[k])
                                    ++bad_results;
                } else {
                    // Lane-sticky serial-stage job.
                    auto sreqs = randomRequests(robot, 4, 60u + j);
                    const auto sreqs0 = sreqs;
                    std::vector<DynamicsResult> sres(4);
                    job = server.submitSerialStages(
                        FunctionType::FD, sreqs.data(), 4, 3,
                        advancePlusOne, &counter, sres.data(),
                        DynamicsServer::kLeastLoaded);
                    server.wait(job);
                    if (server.jobOutcome(job) != JobOutcome::Completed)
                        ++bad_outcomes;
                    else
                        for (int i = 0; i < 4; ++i)
                            for (std::size_t k = 0;
                                 k < sres[i].qdd.size(); ++k) {
                                // Same op sequence as the advance
                                // chain, so the compare is bitwise.
                                double e = sreqs0[i].qd[k];
                                e += 1.0;
                                e += 1.0;
                                if (sres[i].qdd[k] != e)
                                    ++bad_results;
                            }
                }
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    SchedStats sstats;
    server.drain(nullptr, &sstats);
    server.stop();

    EXPECT_EQ(bad_outcomes.load(), 0);
    EXPECT_EQ(bad_results.load(), 0);
    EXPECT_FALSE(server.laneHealthy(2));
    EXPECT_GE(sstats.lane_deaths, 1u);
    EXPECT_EQ(sstats.failed_jobs, 0u);
}

// ---------------------------------------------------------------------
// Admission control and overload shedding
// ---------------------------------------------------------------------

TEST(Admission, BulkShedsOnQueueDepthTaggedTrafficAdmitted)
{
    const RobotModel robot = model::makeSerialChain(3);
    const auto reqs = randomRequests(robot, 4, 9);

    EchoBackend backend(robot, /*wall_us=*/3000.0);
    DynamicsServer server(backend);
    runtime::sched::AdmissionConfig acfg;
    acfg.max_queue_depth = 2;
    server.setAdmission(runtime::sched::makeDeadlineAdmission(acfg));
    server.start();

    // Flood bulk: the lane serves one 3 ms batch at a time, so the
    // queue saturates and later bulk jobs shed.
    std::vector<std::vector<DynamicsResult>> results(12);
    std::vector<int> jobs;
    for (int j = 0; j < 12; ++j) {
        results[j].resize(4);
        jobs.push_back(server.submit(FunctionType::FD, reqs.data(), 4,
                                     results[j].data()));
    }
    int rejected = 0;
    for (const int job : jobs)
        if (server.jobOutcome(job) == JobOutcome::Rejected)
            ++rejected;
    EXPECT_GT(rejected, 0) << "overload never shed bulk work";

    // wait() on a shed job returns immediately — never a hang.
    for (const int job : jobs)
        if (server.jobOutcome(job) == JobOutcome::Rejected) {
            const double t0 = perf::nowUs();
            server.wait(job);
            EXPECT_LT(perf::nowUs() - t0, 1e5);
        }

    // Tagged traffic rides over the same overload: depth does not
    // apply, and a generous deadline passes the completion check.
    JobTag tag;
    tag.deadline_us = perf::nowUs() + 60e6;
    std::vector<DynamicsResult> tagged_res(4);
    const int tagged = server.submit(FunctionType::FD, reqs.data(), 4,
                                     tagged_res.data(),
                                     DynamicsServer::kLeastLoaded, tag);
    server.wait(tagged);
    EXPECT_EQ(server.jobOutcome(tagged), JobOutcome::Completed);

    server.waitAll();
    SchedStats sstats;
    server.drain(nullptr, &sstats);
    server.stop();
    EXPECT_EQ(static_cast<int>(sstats.rejected_jobs), rejected);
    // Every accepted bulk job completed.
    for (const int job : jobs) {
        const JobOutcome o = server.jobOutcome(job);
        EXPECT_TRUE(o == JobOutcome::Completed || o == JobOutcome::Rejected);
    }
}

TEST(Admission, PastDeadlineAcceptedAndCountedAsImmediateMiss)
{
    const RobotModel robot = model::makeSerialChain(3);
    const auto reqs = randomRequests(robot, 2, 13);

    std::mt19937 rng(4242);
    for (int trial = 0; trial < 4; ++trial) {
        EchoBackend backend(robot);
        DynamicsServer server(backend);
        SchedConfig cfg;
        cfg.kind = PolicyKind::Edf;
        server.setPolicy(cfg);
        runtime::sched::AdmissionConfig acfg;
        acfg.max_queue_depth = 0; // unbounded: depth must not shed here
        server.setAdmission(runtime::sched::makeDeadlineAdmission(acfg));

        const int kJobs = 16;
        std::vector<std::vector<DynamicsResult>> results(kJobs);
        std::vector<int> jobs;
        for (int j = 0; j < kJobs; ++j) {
            results[j].resize(2);
            JobTag tag;
            tag.priority = static_cast<int>(rng() % 3);
            // Already late by a random amount — and a NaN deadline in
            // the mix must read as untagged, not poison EDF.
            tag.deadline_us =
                perf::nowUs() - 1.0 - static_cast<double>(rng() % 1000);
            jobs.push_back(server.submit(FunctionType::FD, reqs.data(),
                                         2, results[j].data(),
                                         DynamicsServer::kLeastLoaded,
                                         tag));
        }
        JobTag nan_tag;
        nan_tag.deadline_us = std::nan("");
        std::vector<DynamicsResult> nan_res(2);
        const int nan_job =
            server.submit(FunctionType::FD, reqs.data(), 2,
                          nan_res.data(), DynamicsServer::kLeastLoaded,
                          nan_tag);

        SchedStats sstats;
        server.drain(nullptr, &sstats);

        // Property: none shed, none lost — every late job completed,
        // counted once as an immediate miss at submission and once as
        // a deadline miss at completion. The NaN-tagged job is bulk.
        EXPECT_EQ(sstats.rejected_jobs, 0u);
        EXPECT_EQ(sstats.failed_jobs, 0u);
        EXPECT_EQ(sstats.immediate_misses,
                  static_cast<std::size_t>(kJobs));
        EXPECT_EQ(sstats.deadline_misses,
                  static_cast<std::size_t>(kJobs));
        EXPECT_EQ(sstats.deadline_met, 0u);
        for (const int job : jobs)
            EXPECT_EQ(server.jobOutcome(job), JobOutcome::Completed);
        EXPECT_EQ(server.jobOutcome(nan_job), JobOutcome::Completed);
        EXPECT_FALSE(server.jobMissedDeadline(nan_job));
    }
}

// ---------------------------------------------------------------------
// Lifecycle idempotence and accessor bounds
// ---------------------------------------------------------------------

TEST(ServerLifecycle, StartStopIdempotentInBothOrders)
{
    const RobotModel robot = model::makeSerialChain(3);
    const auto reqs = randomRequests(robot, 2, 17);
    std::vector<DynamicsResult> results(2);

    EchoBackend backend(robot);
    DynamicsServer server(backend);

    // stop before start: no-op.
    server.stop();
    EXPECT_FALSE(server.running());

    server.start();
    EXPECT_TRUE(server.running());
    server.start(); // double start: no-op
    EXPECT_TRUE(server.running());

    const int job =
        server.submit(FunctionType::FD, reqs.data(), 2, results.data());
    server.wait(job);
    EXPECT_EQ(server.jobOutcome(job), JobOutcome::Completed);

    server.stop();
    EXPECT_FALSE(server.running());
    server.stop(); // double stop: no-op
    EXPECT_FALSE(server.running());

    // Restart serves again.
    server.start();
    const int job2 =
        server.submit(FunctionType::FD, reqs.data(), 2, results.data());
    server.wait(job2);
    EXPECT_EQ(server.jobOutcome(job2), JobOutcome::Completed);
    server.stop();
    server.stop();
}

TEST(ServerBounds, RetiredAndNeverIssuedJobIdsAreSafe)
{
    const RobotModel robot = model::makeSerialChain(3);
    const auto reqs = randomRequests(robot, 2, 19);
    std::vector<DynamicsResult> results(2);

    EchoBackend backend(robot);
    DynamicsServer server(backend);
    const int job =
        server.submit(FunctionType::FD, reqs.data(), 2, results.data());
    server.drain();
    server.drain(); // second drain retires the record

    // Retired id: done/zeroed.
    EXPECT_TRUE(server.jobDone(job));
    EXPECT_EQ(server.jobUs(job), 0.0);
    EXPECT_EQ(server.jobStats(job).total_us, 0.0);
    EXPECT_EQ(server.jobDoneAtUs(job), 0.0);
    EXPECT_FALSE(server.jobMissedDeadline(job));
    EXPECT_EQ(server.jobOutcome(job), JobOutcome::Completed);
    server.wait(job); // returns immediately

    // Never-issued ids (too large, negative): same contract, sync
    // and async mode, including wait() which must not hang.
    for (const int bogus : {job + 100, -1, -12345}) {
        EXPECT_TRUE(server.jobDone(bogus));
        EXPECT_EQ(server.jobUs(bogus), 0.0);
        EXPECT_EQ(server.jobStats(bogus).total_us, 0.0);
        EXPECT_EQ(server.jobDoneAtUs(bogus), 0.0);
        EXPECT_FALSE(server.jobMissedDeadline(bogus));
        EXPECT_EQ(server.jobOutcome(bogus), JobOutcome::Completed);
        server.wait(bogus);
    }
    server.start();
    for (const int bogus : {job + 100, -1}) {
        EXPECT_TRUE(server.jobDone(bogus));
        server.wait(bogus);
    }
    server.stop();
}

// ---------------------------------------------------------------------
// Allocation behavior
// ---------------------------------------------------------------------

TEST(FaultInjectingBackend, SteadyStateSubmissionStaysAllocationFree)
{
    const RobotModel robot = model::makeHyq();
    runtime::CpuBatchedBackend inner(robot, 4);
    FaultPlan plan;
    plan.seed = 3;
    plan.latency_spike_prob = 0.5;
    plan.latency_spike_us = 100.0; // stats-only: spike_wall = false
    plan.transient_fail_prob = 0.2;
    plan.corrupt_prob = 0.2;
    FaultInjectingBackend backend(inner, plan);

    const auto reqs = randomRequests(robot, 24, 77);
    std::vector<DynamicsResult> results(24);
    BatchStats stats;

    // Warm up: sizes staging, engine outputs and result storage.
    for (int i = 0; i < 4; ++i) {
        backend.submit(FunctionType::DeltaFD, reqs.data(), 24,
                       results.data(), &stats);
        backend.submit(FunctionType::FD, reqs.data(), 24, results.data(),
                       &stats);
    }

    g_alloc_count.store(0);
    g_count_allocs.store(true);
    for (int rep = 0; rep < 8; ++rep) {
        backend.submit(FunctionType::DeltaFD, reqs.data(), 24,
                       results.data(), &stats);
        backend.submit(FunctionType::FD, reqs.data(), 24, results.data(),
                       &stats);
    }
    g_count_allocs.store(false);
    EXPECT_EQ(g_alloc_count.load(), 0)
        << "fault decorator added steady-state allocations";
}

} // namespace
