/**
 * @file
 * Tests for the trajectory-optimization subsystem (src/ctrl/):
 *
 *  - manifold difference: RobotModel::differenceInto inverts
 *    integrate() on every joint type (quaternion log map);
 *  - iLQR convergence: monotone accepted-cost trace, gradient /
 *    cost tolerances met on all three scenarios of all three
 *    evaluation robots, dynamics served by the CPU batched backend;
 *  - backend equivalence: solver trajectories bitwise-identical
 *    between CpuBatchedBackend and AnalyticBackend numerics (the
 *    control-grade claim of the unified runtime);
 *  - zero steady-state allocations in the solve loop (counted
 *    global allocator), on both the SmallLdlt (nv <= 6) and the
 *    Ldlt Riccati paths;
 *  - receding-horizon MpcSession: closed-loop tracking on iiwa,
 *    bounded behavior on the floating-base HyQ, deadline accounting
 *    of the multi-client closed-loop serving scenario.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <random>

#include "app/mpc_workload.h"
#include "ctrl/ilqr.h"
#include "ctrl/mpc_session.h"
#include "ctrl/scenarios.h"
#include "model/builders.h"
#include "runtime/backends.h"
#include "runtime/sched/policy.h"
#include "runtime/server.h"
#include "test_support.h"

// ---------------------------------------------------------------------
// Counted global allocator (same idiom as test_batched/test_runtime):
// off by default, switched on around the measured solve only.
// ---------------------------------------------------------------------

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<long> g_alloc_count{0};

} // namespace

void *
operator new(std::size_t size)
{
    if (g_count_allocs.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace dadu;
using dadu::linalg::VectorX;
using dadu::model::RobotModel;
using dadu::tests::expectBitwiseEqual;

// ---------------------------------------------------------------------
// Manifold difference
// ---------------------------------------------------------------------

TEST(ModelDifference, InvertsIntegrateOnEveryJointType)
{
    std::mt19937 rng(11);
    for (auto make :
         {model::makeIiwa, model::makeHyq, model::makeAtlas,
          model::makeQuadrupedArm, model::makeTiago}) {
        const RobotModel robot = make();
        for (int trial = 0; trial < 20; ++trial) {
            const VectorX q = robot.randomConfiguration(rng);
            VectorX dv = robot.randomVelocity(rng);
            dv *= 0.5; // keep rotations well inside the log-map range
            const VectorX q2 = robot.integrate(q, dv);
            const VectorX back = robot.difference(q, q2);
            ASSERT_EQ(back.size(), dv.size());
            for (std::size_t j = 0; j < dv.size(); ++j)
                EXPECT_NEAR(back[j], dv[j], 1e-9)
                    << robot.name() << " dof " << j;
        }
    }
}

TEST(ModelDifference, IdentityAndAllocationFree)
{
    const RobotModel robot = model::makeAtlas();
    std::mt19937 rng(5);
    const VectorX q = robot.randomConfiguration(rng);
    VectorX out;
    robot.differenceInto(q, q, out); // size the output
    g_alloc_count.store(0);
    g_count_allocs.store(true);
    robot.differenceInto(q, q, out);
    g_count_allocs.store(false);
    EXPECT_EQ(g_alloc_count.load(), 0);
    EXPECT_NEAR(out.maxAbs(), 0.0, 1e-15);
}

// ---------------------------------------------------------------------
// Solver convergence
// ---------------------------------------------------------------------

TEST(Ilqr, ConvergesOnAllRobotsAndScenarios)
{
    for (auto make : {model::makeIiwa, model::makeHyq, model::makeAtlas}) {
        const RobotModel robot = make();
        runtime::CpuBatchedBackend backend(robot, 2);
        for (int which = 0; which < 3; ++which) {
            const ctrl::Scenario sc = ctrl::makeScenario(robot, which);
            ctrl::IlqrSolver solver(robot, sc.problem);
            const ctrl::IlqrSummary sum =
                solver.solve(backend, sc.q0, sc.qd0);

            SCOPED_TRACE(robot.name() + std::string(" / ") + sc.name);
            EXPECT_TRUE(sum.converged);
            EXPECT_FALSE(solver.stalled());
            EXPECT_LT(sum.cost, sum.initial_cost);
            // Stationarity: the Hamiltonian gradient residual is
            // driven down by orders of magnitude. The exact discrete
            // manifold Jacobians (right-Jacobian blocks instead of
            // ∂(q ⊕ h·q̇)/∂δq ≈ I on quaternion joints) hold every
            // robot/scenario pair below 7e-3.
            EXPECT_LT(sum.grad_norm, 7e-3);

            // Monotone accepted-cost trace.
            const std::vector<double> &trace = solver.costTrace();
            ASSERT_GE(trace.size(), 2u);
            for (std::size_t i = 1; i < trace.size(); ++i)
                EXPECT_LE(trace[i], trace[i - 1]);
        }
    }
}

TEST(Ilqr, SmallControlSpaceUsesConvergentSmallLdltPath)
{
    // nv = 4 <= SmallLdlt::kMaxDim exercises the stack-resident
    // factorization branch of the backward pass.
    const RobotModel robot = model::makeSerialChain(4);
    runtime::CpuBatchedBackend backend(robot, 2);
    const ctrl::Scenario sc = ctrl::makeReachingScenario(robot);
    ctrl::IlqrSolver solver(robot, sc.problem);
    const ctrl::IlqrSummary sum = solver.solve(backend, sc.q0, sc.qd0);
    EXPECT_TRUE(sum.converged);
    EXPECT_LT(sum.cost, sum.initial_cost);
}

// ---------------------------------------------------------------------
// Backend equivalence
// ---------------------------------------------------------------------

TEST(Ilqr, TrajectoriesBitwiseIdenticalAcrossCpuAndAnalyticBackends)
{
    for (auto make : {model::makeIiwa, model::makeHyq}) {
        const RobotModel robot = make();
        accel::Accelerator accel(robot);
        runtime::CpuBatchedBackend cpu(robot, 4);
        runtime::AnalyticBackend analytic(accel);

        const ctrl::Scenario sc = ctrl::makeReachingScenario(robot);
        ctrl::IlqrSolver s_cpu(robot, sc.problem);
        ctrl::IlqrSolver s_ana(robot, sc.problem);
        const ctrl::IlqrSummary r_cpu =
            s_cpu.solve(cpu, sc.q0, sc.qd0);
        const ctrl::IlqrSummary r_ana =
            s_ana.solve(analytic, sc.q0, sc.qd0);

        SCOPED_TRACE(robot.name());
        EXPECT_EQ(r_cpu.iterations, r_ana.iterations);
        EXPECT_EQ(r_cpu.cost, r_ana.cost);
        EXPECT_EQ(r_cpu.grad_norm, r_ana.grad_norm);
        for (int k = 0; k <= s_cpu.knots(); ++k) {
            expectBitwiseEqual(s_cpu.q(k), s_ana.q(k));
            expectBitwiseEqual(s_cpu.qd(k), s_ana.qd(k));
        }
        for (int k = 0; k < s_cpu.knots(); ++k)
            expectBitwiseEqual(s_cpu.u(k), s_ana.u(k));
    }
}

// ---------------------------------------------------------------------
// Zero steady-state allocations
// ---------------------------------------------------------------------

TEST(Ilqr, SolveLoopIsAllocationFreeInSteadyState)
{
    // Both Riccati paths: serial chain (nv = 4, SmallLdlt) and HyQ
    // (nv = 18, Ldlt). The first solve sizes every workspace; the
    // measured re-solve of the same problem must not allocate —
    // linearization staging, backward sweep, rollouts and line
    // search included.
    struct Case
    {
        RobotModel robot;
        const char *label;
    };
    const Case cases[] = {
        {model::makeSerialChain(4), "serial4-smallldlt"},
        {model::makeHyq(), "hyq-ldlt"},
    };
    for (const Case &c : cases) {
        runtime::CpuBatchedBackend backend(c.robot, 2);
        const ctrl::Scenario sc = ctrl::makeReachingScenario(c.robot);
        ctrl::IlqrSolver solver(c.robot, sc.problem);
        ctrl::BackendChannel channel(backend);

        // Warm-up: sizes solver workspaces, engine staging and
        // result storage along the whole iterate path.
        solver.solve(channel, sc.q0, sc.qd0);

        g_alloc_count.store(0);
        g_count_allocs.store(true);
        solver.solve(channel, sc.q0, sc.qd0);
        g_count_allocs.store(false);
        EXPECT_EQ(g_alloc_count.load(), 0)
            << c.label << ": steady-state solve loop allocated";
    }
}

// ---------------------------------------------------------------------
// Receding-horizon MPC sessions
// ---------------------------------------------------------------------

TEST(MpcSession, ClosedLoopReachesTargetOnIiwa)
{
    const RobotModel robot = model::makeIiwa();
    app::MpcWorkload workload(robot);
    runtime::CpuBatchedBackend backend(robot, 2);
    const app::ClosedLoopReport r = workload.solveClosedLoop(backend, 50);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.ticks, 50u);
    EXPECT_GT(r.jobs, 50u); // linearize + rollout traffic per tick
    EXPECT_LT(r.tracking_err, 0.05);
    EXPECT_GT(r.ticks_per_s, 0.0);
}

TEST(MpcSession, ClosedLoopStaysBoundedOnFloatingBase)
{
    // HyQ's floating base drifts slowly under 1-iteration-per-tick
    // MPC but must stay bounded — free fall would blow past the
    // reference by ~g·t²/2 (≈ 1.8 rad-equivalents over this run).
    const RobotModel robot = model::makeHyq();
    app::MpcWorkload workload(robot);
    runtime::CpuBatchedBackend backend(robot, 2);
    const app::ClosedLoopReport r = workload.solveClosedLoop(backend, 60);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(r.tracking_err, 1.0);
}

TEST(MpcSession, ClosedLoopIdenticalAcrossBackends)
{
    const RobotModel robot = model::makeIiwa();
    app::MpcWorkload workload(robot);
    accel::Accelerator accel(robot);
    runtime::CpuBatchedBackend cpu(robot, 2);
    runtime::AnalyticBackend analytic(accel);
    const app::ClosedLoopReport a = workload.solveClosedLoop(cpu, 30);
    const app::ClosedLoopReport b =
        workload.solveClosedLoop(analytic, 30);
    // The whole closed loop (solver + plant) is deterministic and
    // backend-independent in its numerics.
    EXPECT_EQ(a.tracking_err, b.tracking_err);
    EXPECT_EQ(a.final_cost, b.final_cost);
    EXPECT_EQ(a.jobs, b.jobs);
}

TEST(MpcSession, PeriodicReferenceShiftRotates)
{
    const RobotModel robot = model::makeIiwa();
    ctrl::Scenario sc = ctrl::makeGaitScenario(robot, 8, 0.01);
    ASSERT_TRUE(sc.problem.periodic_ref);
    ctrl::IlqrSolver solver(robot, sc.problem);
    const int N = solver.knots();
    const VectorX first = solver.problem().q_ref[0];
    const VectorX second = solver.problem().q_ref[1];
    solver.shiftReferences();
    expectBitwiseEqual(solver.problem().q_ref[0], second);
    // Period-N rotation: the old front re-enters at knot N-1 (the
    // terminal entry mirrors the new front, keeping first == last).
    expectBitwiseEqual(solver.problem().q_ref[N - 1], first);
    expectBitwiseEqual(solver.problem().q_ref[N],
                       solver.problem().q_ref[0]);
    // N shifts return the references to their original phase, so
    // the q_ref stream stays aligned with the N-entry u_ref stream.
    for (int t = 1; t < N; ++t)
        solver.shiftReferences();
    expectBitwiseEqual(solver.problem().q_ref[0], first);
}

TEST(MpcSession, ServeClosedLoopClientsAccountsEveryTaggedJob)
{
    const RobotModel robot = model::makeIiwa();
    app::MpcWorkload workload(robot);
    runtime::CpuBatchedBackend lane0(robot, 2);
    auto lane1 = lane0.clone();
    runtime::DynamicsServer server(lane0);
    server.addBackend(*lane1);
    runtime::sched::SchedConfig cfg;
    cfg.kind = runtime::sched::PolicyKind::Edf;
    cfg.coalesce = true;
    cfg.steal = true;
    server.setPolicy(cfg);

    const int clients = 3, ticks = 10;
    const app::ClosedLoopReport r =
        workload.serveClosedLoopClients(server, clients, ticks, 4.0);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.ticks, static_cast<std::size_t>(clients * ticks));
    EXPECT_GT(r.jobs, static_cast<std::size_t>(clients * ticks));
    // Deadline-tagged traffic flowed and every tagged job landed in
    // exactly one bucket (hit rate is well-defined and sane).
    EXPECT_GT(r.deadline_met + r.deadline_misses, 0u);
    EXPECT_GE(r.deadlineHitRate(), 0.0);
    EXPECT_LE(r.deadlineHitRate(), 1.0);
    EXPECT_GT(r.ticks_per_s, 0.0);
}

TEST(MpcSession, UntaggedServingReportsNoDeadlines)
{
    const RobotModel robot = model::makeIiwa();
    app::MpcWorkload workload(robot);
    runtime::CpuBatchedBackend lane0(robot, 2);
    runtime::DynamicsServer server(lane0);
    const app::ClosedLoopReport r =
        workload.serveClosedLoopClients(server, 2, 5, 0.0);
    EXPECT_EQ(r.deadline_met + r.deadline_misses, 0u);
    EXPECT_EQ(r.deadlineHitRate(), 1.0);
    EXPECT_EQ(r.ticks, 10u);
}

} // namespace
