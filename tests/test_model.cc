/**
 * @file
 * Tests for joints, quaternions, the kinematic tree and the robot
 * builders.
 */

#include <gtest/gtest.h>

#include <random>

#include "model/builders.h"
#include "model/joint.h"
#include "model/quaternion.h"
#include "model/robot_model.h"

namespace {

using namespace dadu::model;
using dadu::linalg::Mat3;
using dadu::linalg::Vec3;
using dadu::linalg::VectorX;

TEST(Quaternion, IdentityRotation)
{
    const Mat3 r = Quaternion::identity().toRotation();
    EXPECT_LT((r - Mat3::identity()).maxAbs(), 1e-15);
}

TEST(Quaternion, AxisAngleMatchesRotationMatrix)
{
    // R(q) rotates child vectors into the parent frame; rotZ() is the
    // coordinate transform, i.e. its transpose.
    const double angle = 0.7;
    const Quaternion q = Quaternion::fromAxisAngle(Vec3{0, 0, 1}, angle);
    EXPECT_LT((q.toRotation() - dadu::linalg::rotZ(angle).transpose())
                  .maxAbs(),
              1e-14);
}

TEST(Quaternion, ProductComposesRotations)
{
    const Quaternion a = Quaternion::fromAxisAngle(Vec3{1, 0, 0}, 0.4);
    const Quaternion b = Quaternion::fromAxisAngle(Vec3{0, 1, 0}, -0.9);
    const Mat3 rab = (a * b).toRotation();
    EXPECT_LT((rab - a.toRotation() * b.toRotation()).maxAbs(), 1e-14);
}

TEST(Quaternion, IntegrationMatchesAxisAngle)
{
    const Vec3 omega{0.2, -0.1, 0.4};
    const Quaternion q = Quaternion::identity().integrated(omega);
    const Quaternion expect =
        Quaternion::fromAxisAngle(omega * (1.0 / omega.norm()),
                                  omega.norm());
    EXPECT_NEAR(q.x, expect.x, 1e-12);
    EXPECT_NEAR(q.w, expect.w, 1e-12);
}

TEST(Joint, DofCounts)
{
    EXPECT_EQ(jointNq(JointType::RevoluteZ), 1);
    EXPECT_EQ(jointNv(JointType::RevoluteZ), 1);
    EXPECT_EQ(jointNq(JointType::Spherical), 4);
    EXPECT_EQ(jointNv(JointType::Spherical), 3);
    EXPECT_EQ(jointNq(JointType::Floating), 7);
    EXPECT_EQ(jointNv(JointType::Floating), 6);
    EXPECT_EQ(jointNq(JointType::Translation3), 3);
    EXPECT_EQ(jointNv(JointType::Translation3), 3);
}

TEST(Joint, RevoluteSubspaceIsOneHot)
{
    // Section II: for revolute/prismatic joints S is a one-hot vector.
    for (JointType t : {JointType::RevoluteX, JointType::RevoluteY,
                        JointType::RevoluteZ, JointType::PrismaticX,
                        JointType::PrismaticY, JointType::PrismaticZ}) {
        const MotionSubspace s = MotionSubspace::forType(t);
        ASSERT_EQ(s.nv(), 1);
        int nonzero = 0;
        for (int i = 0; i < 6; ++i) {
            if (s.col(0)[i] != 0.0) {
                ++nonzero;
                EXPECT_DOUBLE_EQ(s.col(0)[i], 1.0);
            }
        }
        EXPECT_EQ(nonzero, 1);
    }
}

TEST(Joint, TransformZeroIsIdentity)
{
    for (JointType t : {JointType::RevoluteX, JointType::RevoluteY,
                        JointType::RevoluteZ, JointType::PrismaticZ,
                        JointType::Spherical, JointType::Translation3,
                        JointType::Floating}) {
        const auto x = jointTransform(t, jointNeutral(t));
        EXPECT_LT((x.toMatrix() -
                   dadu::spatial::SpatialTransform::identity().toMatrix())
                      .maxAbs(),
                  1e-14)
            << jointTypeName(t);
    }
}

TEST(Joint, SubspaceApplyTranspose)
{
    const MotionSubspace s = MotionSubspace::forType(JointType::Spherical);
    const dadu::linalg::Vec6 f{1, 2, 3, 4, 5, 6};
    const VectorX r = s.applyTranspose(f);
    ASSERT_EQ(r.size(), 3u);
    EXPECT_DOUBLE_EQ(r[0], 1);
    EXPECT_DOUBLE_EQ(r[2], 3);
}

TEST(Joint, IntegrateRevoluteIsAddition)
{
    const VectorX q{0.3};
    const VectorX v{0.2};
    EXPECT_DOUBLE_EQ(jointIntegrate(JointType::RevoluteY, q, v)[0], 0.5);
}

TEST(Joint, IntegrateSphericalStaysNormalized)
{
    VectorX q = jointNeutral(JointType::Spherical);
    const VectorX v{0.3, -0.2, 0.5};
    for (int i = 0; i < 50; ++i)
        q = jointIntegrate(JointType::Spherical, q, v);
    const double n2 = q[0] * q[0] + q[1] * q[1] + q[2] * q[2] + q[3] * q[3];
    EXPECT_NEAR(n2, 1.0, 1e-12);
}

TEST(Joint, FloatingIntegrationMovesAlongBodyAxes)
{
    // Rotate the base 90° about z, then step along body x: world
    // motion should be along +y (right-handed, R = rotz(+90°)).
    VectorX q = jointNeutral(JointType::Floating);
    q = jointIntegrate(JointType::Floating, q,
                       VectorX{0, 0, M_PI / 2, 0, 0, 0});
    q = jointIntegrate(JointType::Floating, q, VectorX{0, 0, 0, 1, 0, 0});
    EXPECT_NEAR(q[0], 0.0, 1e-12);
    EXPECT_NEAR(q[1], 1.0, 1e-12);
    EXPECT_NEAR(q[2], 0.0, 1e-12);
}

TEST(RobotModel, IndexBookkeeping)
{
    const RobotModel r = makeQuadrupedArm();
    EXPECT_EQ(r.nb(), 19);
    EXPECT_EQ(r.nv(), 24); // the paper's N = 24 for Fig. 3
    EXPECT_EQ(r.nq(), 25); // floating base uses a quaternion (+1)
    // vIndex is contiguous and increasing.
    int expected = 0;
    for (int i = 0; i < r.nb(); ++i) {
        EXPECT_EQ(r.link(i).vIndex, expected);
        expected += jointNv(r.link(i).joint);
    }
    EXPECT_EQ(expected, r.nv());
}

TEST(RobotModel, ParentsPrecedeChildren)
{
    for (const RobotModel &r :
         {makeIiwa(), makeHyq(), makeAtlas(), makeQuadrupedArm(),
          makeTiago(), makeSpotArm()}) {
        for (int i = 0; i < r.nb(); ++i)
            EXPECT_LT(r.parent(i), i);
    }
}

TEST(RobotModel, SubtreeOfRootIsEverything)
{
    const RobotModel r = makeHyq();
    EXPECT_EQ(r.subtree(0).size(), static_cast<size_t>(r.nb()));
}

TEST(RobotModel, SubtreeLeafIsSelf)
{
    const RobotModel r = makeIiwa();
    const auto t = r.subtree(r.nb() - 1);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0], r.nb() - 1);
}

TEST(RobotModel, AncestorQueries)
{
    const RobotModel r = makeQuadrupedArm();
    EXPECT_TRUE(r.isAncestorOf(0, r.nb() - 1));
    EXPECT_TRUE(r.isAncestorOf(5, 5));
    // Different legs are not related.
    EXPECT_FALSE(r.isAncestorOf(1, 4));
}

TEST(RobotModel, DepthAndMaxDepth)
{
    const RobotModel iiwa = makeIiwa();
    EXPECT_EQ(iiwa.depth(0), 1);
    EXPECT_EQ(iiwa.maxDepth(), 7);
    const RobotModel quad = makeQuadrupedArm();
    EXPECT_EQ(quad.maxDepth(), 7); // body + 6-link arm
}

TEST(RobotModel, BranchDecomposition)
{
    const RobotModel quad = makeQuadrupedArm();
    const auto b = quad.branches();
    // Root chain (body) + 4 legs + arm.
    ASSERT_EQ(b.size(), 6u);
    EXPECT_EQ(b[0].size(), 1u);
    EXPECT_EQ(b[1].size(), 3u);
    EXPECT_EQ(b[5].size(), 6u);

    const RobotModel tiago = makeTiago();
    const auto bt = tiago.branches();
    // Tiago is linear: a single root chain covering all links
    // (Fig. 11a: one root + one branch, which our decomposition
    // reports as one linear chain).
    ASSERT_EQ(bt.size(), 1u);
    EXPECT_EQ(bt[0].size(), static_cast<size_t>(tiago.nb()));
}

TEST(RobotModel, ExpectedSizes)
{
    EXPECT_EQ(makeIiwa().nv(), 7);
    EXPECT_EQ(makeHyq().nv(), 18);
    EXPECT_EQ(makeHyq().nb(), 13);
    EXPECT_EQ(makeAtlas().nv(), 36);
    EXPECT_EQ(makeTiago().nv(), 10);
    EXPECT_EQ(makeSpotArm().nv(), 24);
}

TEST(RobotModel, NeutralConfigurationHasUnitQuaternions)
{
    const RobotModel r = makeHyq();
    const VectorX q = r.neutralConfiguration();
    EXPECT_DOUBLE_EQ(q[6], 1.0); // floating-base quaternion w
}

TEST(RobotModel, IntegrateZeroIsIdentity)
{
    const RobotModel r = makeAtlas();
    std::mt19937 rng(3);
    const VectorX q = r.randomConfiguration(rng);
    const VectorX q2 = r.integrate(q, VectorX(r.nv()));
    EXPECT_LT((q2 - q).maxAbs(), 1e-14);
}

TEST(RobotModel, RandomConfigurationIsOnManifold)
{
    const RobotModel r = makeHyq();
    std::mt19937 rng(7);
    for (int t = 0; t < 10; ++t) {
        const VectorX q = r.randomConfiguration(rng);
        const double n2 =
            q[3] * q[3] + q[4] * q[4] + q[5] * q[5] + q[6] * q[6];
        EXPECT_NEAR(n2, 1.0, 1e-12);
    }
}

TEST(RobotModel, LinkTransformUsesTreeOffset)
{
    const RobotModel r = makeIiwa();
    const VectorX q = r.neutralConfiguration();
    // At q = 0 the link transform equals the fixed tree transform.
    const auto x = r.linkTransform(1, q);
    EXPECT_LT((x.toMatrix() - r.link(1).xtree.toMatrix()).maxAbs(), 1e-14);
}

TEST(RobotModel, GravityDefault)
{
    const RobotModel r = makeIiwa();
    EXPECT_DOUBLE_EQ(r.gravity()[5], 9.81);
}

TEST(RobotModel, SerialChainSizes)
{
    const RobotModel c = makeSerialChain(12);
    EXPECT_EQ(c.nb(), 12);
    EXPECT_EQ(c.nv(), 12);
    EXPECT_EQ(c.maxDepth(), 12);
    EXPECT_EQ(c.branches().size(), 1u);
}

} // namespace
