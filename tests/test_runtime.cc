/**
 * @file
 * Tests for the unified dynamics runtime:
 *
 *  - backend equivalence: CpuBatchedBackend results bitwise-match
 *    the direct algo:: workspace kernels, AcceleratorBackend results
 *    bitwise-match Accelerator::run();
 *  - DynamicsServer: FIFO multi-client accounting, serial-stage
 *    chaining semantics, and the executable Fig. 13 makespan against
 *    the closed-form app::scheduleSerialStagesUs model;
 *  - a counted global allocator shows steady-state CPU-backend
 *    submission performs zero heap allocations;
 *  - the MPC accelerated iteration (cycle-accurate simulation)
 *    stays within tolerance of the AnalyticBackend estimate.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <random>
#include <thread>
#include <vector>

#include "accel/accelerator.h"
#include "algorithms/dynamics.h"
#include "algorithms/mminv_gen.h"
#include "algorithms/rnea.h"
#include "algorithms/workspace.h"
#include "app/mpc_workload.h"
#include "app/scheduler.h"
#include "model/builders.h"
#include "runtime/backends.h"
#include "runtime/server.h"
#include "test_support.h"

// ---------------------------------------------------------------------
// Counted global allocator (see tests/test_batched.cc): off by
// default, switched on around the measured region only.
// ---------------------------------------------------------------------

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<long> g_alloc_count{0};

} // namespace

void *
operator new(std::size_t size)
{
    if (g_count_allocs.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace dadu;
using dadu::linalg::MatrixX;
using dadu::linalg::VectorX;
using dadu::model::RobotModel;
using dadu::runtime::BatchStats;
using dadu::runtime::DynamicsRequest;
using dadu::runtime::DynamicsResult;
using dadu::runtime::FunctionType;
using dadu::tests::expectBitwiseEqual;
using dadu::tests::randomRequests;

// ---------------------------------------------------------------------
// Backend equivalence
// ---------------------------------------------------------------------

TEST(CpuBatchedBackend, MatchesDirectAlgoCallsBitwise)
{
    const RobotModel robot = model::makeHyq();
    runtime::CpuBatchedBackend backend(robot, 4);
    const auto reqs = randomRequests(robot, 16, 11);
    std::vector<DynamicsResult> results;

    algo::DynamicsWorkspace ws(robot);
    VectorX qdd;
    algo::FdDerivatives fd;
    MatrixX minv;

    backend.submit(FunctionType::FD, reqs, results);
    for (int i = 0; i < 16; ++i) {
        algo::forwardDynamics(robot, ws, reqs[i].q, reqs[i].qd,
                              reqs[i].qdd_or_tau, qdd);
        expectBitwiseEqual(results[i].qdd, qdd);
    }

    backend.submit(FunctionType::DeltaFD, reqs, results);
    for (int i = 0; i < 16; ++i) {
        algo::fdDerivatives(robot, ws, reqs[i].q, reqs[i].qd,
                            reqs[i].qdd_or_tau, fd);
        expectBitwiseEqual(results[i].qdd, fd.qdd);
        expectBitwiseEqual(results[i].minv, fd.minv);
        expectBitwiseEqual(results[i].dqdd_dq, fd.dqdd_dq);
        expectBitwiseEqual(results[i].dqdd_dqd, fd.dqdd_dqd);
    }

    backend.submit(FunctionType::Minv, reqs, results);
    for (int i = 0; i < 16; ++i) {
        algo::massMatrixInverse(robot, ws, reqs[i].q, minv);
        expectBitwiseEqual(results[i].minv, minv);
    }

    // Non-engine Table I functions route through the reference
    // kernels and must equal the allocating reference calls.
    backend.submit(FunctionType::ID, reqs, results);
    for (int i = 0; i < 16; ++i) {
        const auto ref =
            algo::rnea(robot, reqs[i].q, reqs[i].qd, reqs[i].qdd_or_tau);
        expectBitwiseEqual(results[i].tau, ref.tau);
    }
}

TEST(AcceleratorBackend, MatchesAcceleratorRunBitwise)
{
    const RobotModel robot = model::makeIiwa();
    accel::Accelerator accel(robot);
    runtime::AcceleratorBackend backend(accel);
    const auto reqs = randomRequests(robot, 6, 21);

    for (FunctionType fn : {FunctionType::FD, FunctionType::DeltaFD}) {
        std::vector<DynamicsResult> via_backend;
        BatchStats backend_stats;
        backend.submit(fn, reqs, via_backend, &backend_stats);

        BatchStats direct_stats;
        const auto direct = accel.run(fn, reqs, &direct_stats);
        ASSERT_EQ(direct.size(), reqs.size());
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            expectBitwiseEqual(via_backend[i].qdd, direct[i].qdd);
            if (fn == FunctionType::DeltaFD) {
                expectBitwiseEqual(via_backend[i].dqdd_dq,
                                   direct[i].dqdd_dq);
                expectBitwiseEqual(via_backend[i].dqdd_dqd,
                                   direct[i].dqdd_dqd);
            }
        }
        // Same simulated schedule on both paths.
        EXPECT_EQ(backend_stats.cycles, direct_stats.cycles);
    }
}

TEST(AnalyticBackend, NumericsMatchReferenceAndTimingMatchesEstimate)
{
    const RobotModel robot = model::makeIiwa();
    accel::Accelerator accel(robot);
    runtime::AnalyticBackend backend(accel);
    const auto reqs = randomRequests(robot, 8, 5);

    std::vector<DynamicsResult> results;
    BatchStats stats;
    backend.submit(FunctionType::DeltaFD, reqs, results, &stats);

    algo::DynamicsWorkspace ws(robot);
    algo::FdDerivatives fd;
    for (int i = 0; i < 8; ++i) {
        algo::fdDerivatives(robot, ws, reqs[i].q, reqs[i].qd,
                            reqs[i].qdd_or_tau, fd);
        expectBitwiseEqual(results[i].qdd, fd.qdd);
        expectBitwiseEqual(results[i].dqdd_dq, fd.dqdd_dq);
    }

    const auto est = accel.analytic(FunctionType::DeltaFD);
    const double freq_hz = accel.config().freq_mhz * 1e6;
    const double expect_us =
        (8 * est.ii_cycles + est.latency_cycles) / freq_hz * 1e6;
    EXPECT_NEAR(stats.total_us, expect_us, 1e-9);
}

// ---------------------------------------------------------------------
// Mask validation at submit
// ---------------------------------------------------------------------

TEST(MaskValidation, BackendsRejectInvalidSeedsDeterministically)
{
    // Property test: every backend accepts exactly the seed sets
    // algo::seedValid accepts, rejects the rest with InvalidRequest
    // BEFORE executing anything, and does so deterministically on
    // resubmission. An empty seed means dense and is always Ok.
    const RobotModel robot = model::makeIiwa();
    const int nv = robot.nv();
    runtime::CpuBatchedBackend cpu(robot, 2);
    accel::Accelerator accel_hw(robot);
    runtime::AcceleratorBackend acc(accel_hw);
    accel::Accelerator accel_ana(robot);
    runtime::AnalyticBackend ana(accel_ana);
    runtime::DynamicsBackend *backends[] = {&cpu, &acc, &ana};

    std::mt19937 rng(4242);
    auto reqs = randomRequests(robot, 3, 77);
    std::vector<DynamicsResult> results(3);
    for (int trial = 0; trial < 64; ++trial) {
        // Random seed sets: in-range, out-of-range or duplicated.
        std::vector<int> seed;
        const int len = static_cast<int>(rng() % 5);
        for (int i = 0; i < len; ++i)
            seed.push_back(static_cast<int>(rng() % (nv + 2)) - 1);
        const bool valid = algo::seedValid(seed, nv);
        for (auto &r : reqs) {
            r.gating = algo::GatingMode::Simple;
            r.seed_cols = seed;
        }
        const runtime::SubmitStatus want =
            valid ? runtime::SubmitStatus::Ok
                  : runtime::SubmitStatus::InvalidRequest;
        for (runtime::DynamicsBackend *b : backends) {
            EXPECT_EQ(b->submit(FunctionType::DeltaFD, reqs.data(), 3,
                                results.data()),
                      want)
                << b->name() << " trial " << trial;
            EXPECT_EQ(b->submit(FunctionType::DeltaFD, reqs.data(), 3,
                                results.data()),
                      want)
                << b->name() << " resubmission diverged, trial " << trial;
        }
        // Non-derivative functions ignore the mask entirely.
        for (runtime::DynamicsBackend *b : backends)
            EXPECT_EQ(b->submit(FunctionType::FD, reqs.data(), 3,
                                results.data()),
                      runtime::SubmitStatus::Ok)
                << b->name() << " trial " << trial;
    }
}

TEST(DynamicsServer, InvalidMaskRejectedAtSubmission)
{
    const RobotModel robot = model::makeIiwa();
    runtime::CpuBatchedBackend backend(robot, 2);
    runtime::DynamicsServer server(backend);

    auto reqs = randomRequests(robot, 4, 3);
    for (auto &r : reqs) {
        r.gating = algo::GatingMode::Simple;
        r.seed_cols = {0, 0}; // duplicate index: invalid
    }
    std::vector<DynamicsResult> res(4);
    const int bad =
        server.submit(FunctionType::DeltaFD, reqs.data(), 4, res.data());
    server.wait(bad);
    EXPECT_EQ(server.jobOutcome(bad), runtime::JobOutcome::Rejected);
    EXPECT_EQ(server.schedStats().rejected_jobs, 1u);

    // A valid sparse mask on the same batch completes normally.
    for (auto &r : reqs)
        r.seed_cols = {0, 2};
    const int ok =
        server.submit(FunctionType::DeltaFD, reqs.data(), 4, res.data());
    server.wait(ok);
    EXPECT_EQ(server.jobOutcome(ok), runtime::JobOutcome::Completed);
    EXPECT_EQ(server.schedStats().rejected_jobs, 1u);
}

// ---------------------------------------------------------------------
// DynamicsServer
// ---------------------------------------------------------------------

/** Deterministic test backend: fixed cost per batch, echoes q̇ as q̈. */
class FixedCostBackend : public runtime::DynamicsBackend
{
  public:
    FixedCostBackend(const RobotModel &robot, double batch_us)
        : robot_(robot), batch_us_(batch_us)
    {}

    const char *name() const override { return "fixed-cost"; }
    const RobotModel &robot() const override { return robot_; }
    bool offloaded() const override { return true; }

    runtime::SubmitStatus
    submit(FunctionType, const DynamicsRequest *requests,
           std::size_t count, DynamicsResult *results,
           BatchStats *stats) override
    {
        for (std::size_t i = 0; i < count; ++i)
            results[i].qdd = requests[i].qd;
        ++batches_;
        if (stats) {
            *stats = BatchStats{};
            stats->total_us = batch_us_;
        }
        return runtime::SubmitStatus::Ok;
    }

    int batches() const { return batches_; }

  private:
    const RobotModel &robot_;
    double batch_us_;
    int batches_ = 0;
};

TEST(DynamicsServer, FifoMultiClientAccounting)
{
    const RobotModel robot = model::makeHyq();
    FixedCostBackend backend(robot, 10.0);
    runtime::DynamicsServer server(backend);

    // Two clients enqueue before anything runs.
    auto reqs_a = randomRequests(robot, 4, 1);
    auto reqs_b = randomRequests(robot, 7, 2);
    std::vector<DynamicsResult> res_a(4), res_b(7);
    const int a = server.submit(FunctionType::FD, reqs_a.data(), 4,
                                res_a.data());
    const int b = server.submit(FunctionType::FD, reqs_b.data(), 7,
                                res_b.data());
    EXPECT_EQ(server.pending(), 2u);
    EXPECT_EQ(backend.batches(), 0);

    runtime::ServerStats stats;
    const double busy = server.drain(&stats);
    EXPECT_EQ(server.pending(), 0u);
    EXPECT_EQ(backend.batches(), 2);
    EXPECT_DOUBLE_EQ(busy, 20.0);
    EXPECT_DOUBLE_EQ(server.jobUs(a), 10.0);
    EXPECT_DOUBLE_EQ(server.jobUs(b), 10.0);
    EXPECT_EQ(stats.jobs, 2u);
    EXPECT_EQ(stats.batches, 2u);
    EXPECT_EQ(stats.tasks, 11u);

    // Both clients' results were written.
    for (int i = 0; i < 4; ++i)
        expectBitwiseEqual(res_a[i].qdd, reqs_a[i].qd);
    for (int i = 0; i < 7; ++i)
        expectBitwiseEqual(res_b[i].qdd, reqs_b[i].qd);
}

namespace serialstage {

/** Counts advance invocations; doubles q̇ every stage boundary. */
void
advance(void *ctx, int /*next_stage*/, const DynamicsResult *results,
        DynamicsRequest *requests, std::size_t points)
{
    ++*static_cast<int *>(ctx);
    for (std::size_t p = 0; p < points; ++p) {
        requests[p].qd = results[p].qdd;
        for (std::size_t j = 0; j < requests[p].qd.size(); ++j)
            requests[p].qd[j] *= 2.0;
    }
}

} // namespace serialstage

TEST(DynamicsServer, SerialStagesChainAndCostPerStage)
{
    const RobotModel robot = model::makeHyq();
    FixedCostBackend backend(robot, 7.0);
    runtime::DynamicsServer server(backend);

    auto reqs = randomRequests(robot, 5, 3);
    const auto qd0 = reqs[2].qd;
    std::vector<DynamicsResult> res(5);
    int advances = 0;
    const int job = server.submitSerialStages(
        FunctionType::FD, reqs.data(), 5, 4, &serialstage::advance,
        &advances, res.data());
    server.drain();

    // Four stage batches, three stage boundaries.
    EXPECT_EQ(backend.batches(), 4);
    EXPECT_EQ(advances, 3);
    EXPECT_DOUBLE_EQ(server.jobUs(job), 4 * 7.0);

    // The echo backend + doubling advance chain: each boundary sets
    // q̇ <- 2 q̈ = 2 q̇, so the final q̈ is 2^3 the initial q̇.
    for (std::size_t j = 0; j < qd0.size(); ++j)
        EXPECT_EQ(res[2].qdd[j], 8.0 * qd0[j]);
}

TEST(DynamicsServer, ExecutedSerialStageMakespanMatchesFormula)
{
    // The Fig. 13 claim, now executable: a points x stages job on
    // the cycle-accurate simulator lands near the closed-form
    // schedule model stages·(points·II + latency).
    const RobotModel robot = model::makeIiwa();
    accel::Accelerator accel(robot);
    runtime::AcceleratorBackend backend(accel);
    runtime::DynamicsServer server(backend);

    const int points = 32, stages = 4;
    auto reqs = randomRequests(robot, points, 9);
    std::vector<DynamicsResult> res(points);
    const int job = server.submitSerialStages(FunctionType::FD,
                                              reqs.data(), points, stages,
                                              nullptr, nullptr, res.data());
    server.drain();

    const auto est = accel.analytic(FunctionType::FD);
    const double model_us = app::scheduleSerialStagesUs(
        points, stages, est.ii_cycles, est.latency_cycles,
        accel.config().freq_mhz);
    const double executed_us = server.jobUs(job);
    EXPECT_GT(executed_us, 0.0);
    // Both sides are deterministic (simulated cycles vs the closed
    // form), so the band can be tight: within 15%.
    EXPECT_NEAR(executed_us / model_us, 1.0, 0.15)
        << "executed " << executed_us << " us vs model " << model_us;
}

TEST(DynamicsServer, SyncWaitServesInlineWithoutConsumingTheInterval)
{
    // wait() on a never-start()ed server serves inline but must not
    // behave like drain(): the accounting interval and the job
    // records survive until the caller drains explicitly, exactly as
    // in async mode.
    const RobotModel robot = model::makeHyq();
    FixedCostBackend backend(robot, 4.0);
    runtime::DynamicsServer server(backend);

    auto reqs = randomRequests(robot, 3, 71);
    std::vector<DynamicsResult> res(3);
    const int j1 =
        server.submit(FunctionType::FD, reqs.data(), 3, res.data());
    server.wait(j1);
    EXPECT_TRUE(server.jobDone(j1));
    const int j2 =
        server.submit(FunctionType::FD, reqs.data(), 3, res.data());
    server.wait(j2);

    // Both job records still readable, and one drain reports the
    // whole interval.
    EXPECT_DOUBLE_EQ(server.jobUs(j1), 4.0);
    EXPECT_DOUBLE_EQ(server.jobUs(j2), 4.0);
    runtime::ServerStats stats;
    EXPECT_DOUBLE_EQ(server.drain(&stats), 8.0);
    EXPECT_EQ(stats.jobs, 2u);
    EXPECT_EQ(stats.tasks, 6u);
}

TEST(DynamicsServer, ReentrantSubmitFromAdvanceCallback)
{
    // Regression: the pre-async drain() held `Job &job = queue_[next_]`
    // across the advance callback, so a reentrant submit() could
    // reallocate the job vector and leave the reference (and the
    // backend's stats pointer) dangling. Jobs now live in a deque and
    // the serving loop never holds a reference across a callback, so
    // submitting from inside an advance callback is defined — and the
    // inner job must be served by the same drain.
    const RobotModel robot = model::makeHyq();
    FixedCostBackend backend(robot, 3.0);
    runtime::DynamicsServer server(backend);

    struct Ctx
    {
        runtime::DynamicsServer *server;
        std::vector<DynamicsRequest> inner_req;
        std::vector<DynamicsResult> inner_res;
        int inner_job = -1;
        int advances = 0;
    } ctx;
    ctx.server = &server;
    ctx.inner_req = randomRequests(robot, 6, 41);
    ctx.inner_res.resize(6);

    auto advance = [](void *vctx, int /*next_stage*/,
                      const DynamicsResult *results,
                      DynamicsRequest *requests, std::size_t points) {
        auto *c = static_cast<Ctx *>(vctx);
        if (c->advances++ == 0) {
            // Reentrant submission mid-drain, mid-job. Enough jobs to
            // force a small-vector reallocation in the old layout.
            for (int i = 0; i < 8; ++i)
                c->inner_job = c->server->submit(
                    FunctionType::FD, c->inner_req.data(), 6,
                    c->inner_res.data());
        }
        for (std::size_t p = 0; p < points; ++p)
            requests[p].qd = results[p].qdd;
    };

    auto reqs = randomRequests(robot, 5, 42);
    std::vector<DynamicsResult> res(5);
    const int outer = server.submitSerialStages(
        FunctionType::FD, reqs.data(), 5, 3, advance, &ctx, res.data());

    runtime::ServerStats stats;
    server.drain(&stats);
    EXPECT_EQ(ctx.advances, 2);
    EXPECT_TRUE(server.jobDone(outer));
    ASSERT_GE(ctx.inner_job, 0);
    EXPECT_TRUE(server.jobDone(ctx.inner_job));
    // 3 outer stage batches + 8 inner jobs, all accounted.
    EXPECT_EQ(stats.jobs, 9u);
    EXPECT_EQ(stats.batches, 11u);
    EXPECT_DOUBLE_EQ(server.jobUs(outer), 3 * 3.0);
    for (int i = 0; i < 6; ++i)
        expectBitwiseEqual(ctx.inner_res[i].qdd, ctx.inner_req[i].qd);
}

// ---------------------------------------------------------------------
// Sharded serving
// ---------------------------------------------------------------------

/**
 * Modeled-cost backend: batch makespan = base + count * per_task, in
 * backend (virtual) time — the deterministic stand-in for "one more
 * accelerator instance" that makes sharding arithmetic exact.
 */
class LinearCostBackend : public runtime::DynamicsBackend
{
  public:
    LinearCostBackend(const RobotModel &robot, double base_us,
                      double per_task_us)
        : robot_(robot), base_us_(base_us), per_task_us_(per_task_us)
    {}

    const char *name() const override { return "linear-cost"; }
    const RobotModel &robot() const override { return robot_; }
    bool offloaded() const override { return true; }

    std::unique_ptr<runtime::DynamicsBackend> clone() const override
    {
        return std::make_unique<LinearCostBackend>(robot_, base_us_,
                                                   per_task_us_);
    }

    runtime::SubmitStatus
    submit(FunctionType, const DynamicsRequest *requests,
           std::size_t count, DynamicsResult *results,
           BatchStats *stats) override
    {
        for (std::size_t i = 0; i < count; ++i)
            results[i].qdd = requests[i].qd;
        ++batches_;
        tasks_ += count;
        if (stats) {
            *stats = BatchStats{};
            stats->total_us = base_us_ + count * per_task_us_;
        }
        return runtime::SubmitStatus::Ok;
    }

    int batches() const { return batches_; }
    std::size_t tasks() const { return tasks_; }

  private:
    const RobotModel &robot_;
    double base_us_, per_task_us_;
    int batches_ = 0;
    std::size_t tasks_ = 0;
};

TEST(DynamicsServer, ShardedBatchSplitsResultsAndMergesStats)
{
    const RobotModel robot = model::makeHyq();
    LinearCostBackend b0(robot, 5.0, 1.0);
    auto b1 = b0.clone();
    runtime::DynamicsServer server(b0);
    server.addBackend(*b1);

    const int n = 24;
    auto reqs = randomRequests(robot, n, 17);
    std::vector<DynamicsResult> res(n);
    const int job =
        server.submitSharded(FunctionType::FD, reqs.data(), n, res.data());
    runtime::ServerStats stats;
    server.drain(&stats);

    // Every request was answered exactly once, in order.
    for (int i = 0; i < n; ++i)
        expectBitwiseEqual(res[i].qdd, reqs[i].qd);
    // Even split across idle lanes: 12 + 12 tasks, two batches.
    EXPECT_EQ(b0.tasks() + static_cast<LinearCostBackend &>(*b1).tasks(),
              static_cast<std::size_t>(n));
    EXPECT_EQ(b0.batches(), 1);
    EXPECT_EQ(stats.batches, 2u);
    EXPECT_EQ(stats.tasks, static_cast<std::size_t>(n));
    // Concurrent shards: job makespan = slowest shard (12 tasks),
    // lane busy = both shards summed, server makespan = max lane.
    EXPECT_DOUBLE_EQ(server.jobUs(job), 5.0 + 12.0);
    EXPECT_DOUBLE_EQ(stats.busy_us, 2 * (5.0 + 12.0));
    EXPECT_DOUBLE_EQ(stats.makespan_us, 5.0 + 12.0);
    EXPECT_DOUBLE_EQ(server.jobStats(job).total_us, 5.0 + 12.0);
}

TEST(DynamicsServer, ShardedThroughputScalesWithBackendCount)
{
    // The acceptance arithmetic of the serving layer, pinned on the
    // deterministic modeled backend: a pipeline-shaped cost
    // (latency base + per-task interval) sharded 2 and 4 ways must
    // scale throughput by >= 1.7x and >= 3x.
    const RobotModel robot = model::makeHyq();
    const int n = 192;
    auto reqs = randomRequests(robot, n, 23);

    double makespan[3] = {0, 0, 0};
    const int shard_counts[3] = {1, 2, 4};
    for (int s = 0; s < 3; ++s) {
        LinearCostBackend base(robot, 6.0, 0.5);
        std::vector<std::unique_ptr<runtime::DynamicsBackend>> owned;
        runtime::DynamicsServer server(base);
        for (int k = 1; k < shard_counts[s]; ++k) {
            owned.push_back(base.clone());
            server.addBackend(*owned.back());
        }
        std::vector<DynamicsResult> res(n);
        server.submitSharded(FunctionType::FD, reqs.data(), n,
                             res.data());
        runtime::ServerStats stats;
        server.drain(&stats);
        makespan[s] = stats.makespan_us;
    }
    EXPECT_GE(makespan[0] / makespan[1], 1.7);
    EXPECT_GE(makespan[0] / makespan[2], 3.0);
}

TEST(DynamicsServer, LeastLoadedShardingFillsTheLighterLane)
{
    const RobotModel robot = model::makeHyq();
    LinearCostBackend b0(robot, 0.0, 1.0);
    auto b1_owned = b0.clone();
    auto &b1 = static_cast<LinearCostBackend &>(*b1_owned);
    runtime::DynamicsServer server(b0);
    server.addBackend(b1);

    // Pre-load lane 0 with 20 queued tasks, then shard 30: water-
    // filling should give the idle lane 25 and lane 0 only 5.
    auto pre = randomRequests(robot, 20, 3);
    std::vector<DynamicsResult> pre_res(20);
    server.submit(FunctionType::FD, pre.data(), 20, pre_res.data(), 0);

    auto reqs = randomRequests(robot, 30, 4);
    std::vector<DynamicsResult> res(30);
    server.submitSharded(FunctionType::FD, reqs.data(), 30, res.data());
    server.drain();

    EXPECT_EQ(b0.tasks(), 25u); // 20 pre-load + 5 shard
    EXPECT_EQ(b1.tasks(), 25u);
    for (int i = 0; i < 30; ++i)
        expectBitwiseEqual(res[i].qdd, reqs[i].qd);
}

TEST(DynamicsServer, LeastLoadedWeighsLanesByFunctionII)
{
    // ROADMAP "load metric refinement": lane load is FD-equivalent
    // work (sched::functionWeight, ∆FD = 1.5x FD), not raw task
    // counts. Lane 0 holds 10 ∆FD tasks (weight 15), lane 1 holds 12
    // FD tasks (weight 12): a raw count would call lane 0 lighter,
    // the II-weighted metric must send the next flat job to lane 1.
    const RobotModel robot = model::makeHyq();
    LinearCostBackend b0(robot, 0.0, 1.0);
    auto b1_owned = b0.clone();
    auto &b1 = static_cast<LinearCostBackend &>(*b1_owned);
    runtime::DynamicsServer server(b0);
    server.addBackend(b1);

    auto dfd = randomRequests(robot, 10, 51);
    auto fd = randomRequests(robot, 12, 52);
    std::vector<DynamicsResult> dfd_res(10), fd_res(12);
    server.submit(FunctionType::DeltaFD, dfd.data(), 10, dfd_res.data(),
                  0);
    server.submit(FunctionType::FD, fd.data(), 12, fd_res.data(), 1);
    EXPECT_DOUBLE_EQ(server.laneLoadWeight(0), 15.0);
    EXPECT_DOUBLE_EQ(server.laneLoadWeight(1), 12.0);

    auto next = randomRequests(robot, 4, 53);
    std::vector<DynamicsResult> next_res(4);
    server.submit(FunctionType::FD, next.data(), 4, next_res.data(),
                  runtime::DynamicsServer::kLeastLoaded);
    server.drain();
    EXPECT_EQ(b0.tasks(), 10u);
    EXPECT_EQ(b1.tasks(), 12u + 4u);
}

TEST(DynamicsServer, ShardedWaterFillingUsesWeightedLoads)
{
    // The sharded analogue: lane 0 pre-loaded with 10 ∆FD tasks owes
    // 15 FD-equivalents = 15 FD tasks; water-filling 25 FD tasks must
    // level both lanes at 20 — shares 5 and 20, tighter than the 7/18
    // a raw task-stage count would produce.
    const RobotModel robot = model::makeHyq();
    LinearCostBackend b0(robot, 0.0, 1.0);
    auto b1_owned = b0.clone();
    auto &b1 = static_cast<LinearCostBackend &>(*b1_owned);
    runtime::DynamicsServer server(b0);
    server.addBackend(b1);

    auto pre = randomRequests(robot, 10, 54);
    std::vector<DynamicsResult> pre_res(10);
    server.submit(FunctionType::DeltaFD, pre.data(), 10, pre_res.data(),
                  0);

    auto reqs = randomRequests(robot, 25, 55);
    std::vector<DynamicsResult> res(25);
    server.submitSharded(FunctionType::FD, reqs.data(), 25, res.data());
    server.drain();

    EXPECT_EQ(b0.tasks(), 10u + 5u);
    EXPECT_EQ(b1.tasks(), 20u);
    for (int i = 0; i < 25; ++i)
        expectBitwiseEqual(res[i].qdd, reqs[i].qd);
}

TEST(DynamicsServer, ShardedExecutionMatchesShardedScheduleModel)
{
    // The sharded analogue of the Fig. 13 validation: a flat batch
    // split over two cloned cycle-accurate accelerator instances
    // lands near the closed-form scheduleShardedUs model.
    const RobotModel robot = model::makeIiwa();
    accel::Accelerator accel(robot);
    runtime::AcceleratorBackend backend(accel);
    auto clone = backend.clone();
    runtime::DynamicsServer server(backend);
    server.addBackend(*clone);

    const int points = 96;
    auto reqs = randomRequests(robot, points, 13);
    std::vector<DynamicsResult> res(points);
    const int job = server.submitSharded(FunctionType::DeltaFD,
                                         reqs.data(), points, res.data());
    server.drain();

    const auto est = accel.analytic(FunctionType::DeltaFD);
    const double model_us = app::scheduleShardedUs(
        points, 1, 2, est.ii_cycles, est.latency_cycles,
        accel.config().freq_mhz);
    const double executed_us = server.jobUs(job);
    EXPECT_GT(executed_us, 0.0);
    EXPECT_NEAR(executed_us / model_us, 1.0, 0.25)
        << "executed " << executed_us << " us vs model " << model_us;

    // And the numerics are the same tasks, shard boundaries or not.
    std::vector<DynamicsResult> direct(points);
    accel.run(FunctionType::DeltaFD, reqs.data(), points, direct.data());
    for (int i = 0; i < points; ++i)
        expectBitwiseEqual(res[i].qdd, direct[i].qdd);
}

// ---------------------------------------------------------------------
// Concurrent serving stress
// ---------------------------------------------------------------------

TEST(DynamicsServer, ConcurrentClientsMatchSynchronousBitwise)
{
    // M client threads x K backend lanes, flat sharded + serial-stage
    // jobs mixed: results must be bitwise-identical to the same jobs
    // served synchronously, and the job/task accounting must sum.
    const RobotModel robot = model::makeIiwa();
    accel::Accelerator accel(robot);
    runtime::AnalyticBackend base(accel);

    constexpr int kClients = 4, kRounds = 3, kPoints = 6, kStages = 3;

    struct ClientData
    {
        std::vector<DynamicsRequest> flat_req, serial_req;
        std::vector<DynamicsResult> flat_res, serial_res;
        int advances = 0;
    };

    auto makeRequests = [&](int client) {
        return randomRequests(robot, kPoints, 100 + client);
    };

    // Reference: every client's jobs served synchronously on a fresh
    // single-lane server.
    std::vector<ClientData> ref(kClients);
    for (int c = 0; c < kClients; ++c) {
        runtime::AnalyticBackend backend(accel);
        runtime::DynamicsServer server(backend);
        ref[c].flat_req = makeRequests(c);
        ref[c].serial_req = makeRequests(c);
        ref[c].flat_res.resize(kPoints);
        ref[c].serial_res.resize(kPoints);
        server.submit(FunctionType::DeltaFD, ref[c].flat_req.data(),
                      kPoints, ref[c].flat_res.data());
        server.submitSerialStages(FunctionType::FD,
                                  ref[c].serial_req.data(), kPoints,
                                  kStages, &serialstage::advance,
                                  &ref[c].advances,
                                  ref[c].serial_res.data());
        server.drain();
    }

    // Async: 3 lanes over clones sharing the read-only accelerator
    // model, 4 client threads, 3 rounds each.
    auto lane1 = base.clone();
    auto lane2 = base.clone();
    runtime::DynamicsServer server(base);
    server.addBackend(*lane1);
    server.addBackend(*lane2);
    server.start();

    std::vector<ClientData> got(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (int r = 0; r < kRounds; ++r) {
                ClientData data;
                data.flat_req = makeRequests(c);
                data.serial_req = makeRequests(c);
                data.flat_res.resize(kPoints);
                data.serial_res.resize(kPoints);
                const int flat = server.submitSharded(
                    FunctionType::DeltaFD, data.flat_req.data(), kPoints,
                    data.flat_res.data());
                const int serial = server.submitSerialStages(
                    FunctionType::FD, data.serial_req.data(), kPoints,
                    kStages, &serialstage::advance, &data.advances,
                    data.serial_res.data(),
                    runtime::DynamicsServer::kLeastLoaded);
                server.wait(flat);
                server.wait(serial);
                got[c] = std::move(data);
            }
        });
    }
    for (auto &t : clients)
        t.join();
    server.stop();

    runtime::ServerStats stats;
    server.drain(&stats);
    EXPECT_EQ(stats.jobs,
              static_cast<std::size_t>(kClients * kRounds * 2));
    EXPECT_EQ(stats.tasks, static_cast<std::size_t>(
                               kClients * kRounds *
                               (kPoints + kPoints * kStages)));
    EXPECT_GE(stats.busy_us, stats.makespan_us);

    for (int c = 0; c < kClients; ++c) {
        EXPECT_EQ(got[c].advances, kStages - 1);
        for (int p = 0; p < kPoints; ++p) {
            expectBitwiseEqual(got[c].flat_res[p].qdd,
                               ref[c].flat_res[p].qdd);
            expectBitwiseEqual(got[c].flat_res[p].dqdd_dq,
                               ref[c].flat_res[p].dqdd_dq);
            expectBitwiseEqual(got[c].serial_res[p].qdd,
                               ref[c].serial_res[p].qdd);
        }
    }
}

TEST(MpcRuntime, MultiClientServingScalesWithShards)
{
    // The workload-level serving scenario on the modeled backend:
    // more accelerator shards, proportionally shorter serving
    // makespan for the same multi-client traffic.
    const auto robot = model::makeQuadrupedArm();
    app::MpcConfig cfg;
    cfg.horizon_points = 16;
    app::MpcWorkload workload(robot, cfg);
    accel::Accelerator accel(robot);
    runtime::AnalyticBackend base(accel);

    double makespan[2] = {0, 0};
    for (int s = 0; s < 2; ++s) {
        const int shards = s == 0 ? 1 : 2;
        std::vector<std::unique_ptr<runtime::DynamicsBackend>> owned;
        runtime::DynamicsServer server(base);
        for (int k = 1; k < shards; ++k) {
            owned.push_back(base.clone());
            server.addBackend(*owned.back());
        }
        const app::MultiClientReport r =
            workload.serveMultiClient(server, 3, 2);
        EXPECT_EQ(r.jobs, 3u * 2u * 2u);
        makespan[s] = r.makespan_us;
    }
    EXPECT_GT(makespan[0] / makespan[1], 1.2);
}

// ---------------------------------------------------------------------
// Shared host pool across CPU backend clones
// ---------------------------------------------------------------------

TEST(CpuBatchedBackend, ClonesShareOneHostPoolAndSubmitConcurrently)
{
    // ROADMAP item: CpuBatchedBackend clones used to spawn a
    // full-width thread pool each, oversubscribing the host when
    // sharding CPU lanes. Clones now share the original's pool
    // (per-clone workspaces); concurrent submits from two lanes
    // serialize on the pool's bulk gate and still produce the exact
    // reference results.
    const RobotModel robot = model::makeHyq();
    runtime::CpuBatchedBackend base(robot, 4);
    auto clone_owned = base.clone();
    auto &clone = static_cast<runtime::CpuBatchedBackend &>(*clone_owned);
    ASSERT_EQ(base.engine().pool().get(), clone.engine().pool().get());
    EXPECT_EQ(base.engine().threadCount(), clone.engine().threadCount());

    const auto reqs_a = randomRequests(robot, 16, 61);
    const auto reqs_b = randomRequests(robot, 16, 62);
    std::vector<DynamicsResult> res_a(16), res_b(16);
    constexpr int kReps = 8;
    std::thread ta([&] {
        for (int r = 0; r < kReps; ++r)
            base.submit(FunctionType::DeltaFD, reqs_a.data(), 16,
                        res_a.data());
    });
    std::thread tb([&] {
        for (int r = 0; r < kReps; ++r)
            clone.submit(FunctionType::DeltaFD, reqs_b.data(), 16,
                         res_b.data());
    });
    ta.join();
    tb.join();

    algo::DynamicsWorkspace ws(robot);
    algo::FdDerivatives fd;
    for (int i = 0; i < 16; ++i) {
        algo::fdDerivatives(robot, ws, reqs_a[i].q, reqs_a[i].qd,
                            reqs_a[i].qdd_or_tau, fd);
        expectBitwiseEqual(res_a[i].dqdd_dq, fd.dqdd_dq);
        algo::fdDerivatives(robot, ws, reqs_b[i].q, reqs_b[i].qd,
                            reqs_b[i].qdd_or_tau, fd);
        expectBitwiseEqual(res_b[i].dqdd_dq, fd.dqdd_dq);
    }
}

// ---------------------------------------------------------------------
// Allocation behavior
// ---------------------------------------------------------------------

TEST(CpuBatchedBackend, SteadyStateSubmissionIsAllocationFree)
{
    const RobotModel robot = model::makeHyq();
    runtime::CpuBatchedBackend backend(robot, 4);
    const auto reqs = randomRequests(robot, 24, 77);
    std::vector<DynamicsResult> results(24);
    BatchStats stats;

    // Columnar views for the submitColumns fast path.
    std::vector<VectorX> q(24), qd(24), tau(24);
    for (int i = 0; i < 24; ++i) {
        q[i] = reqs[i].q;
        qd[i] = reqs[i].qd;
        tau[i] = reqs[i].qdd_or_tau;
    }

    // Warm up: sizes staging, engine outputs and result storage.
    backend.submit(FunctionType::DeltaFD, reqs.data(), 24, results.data(),
                   &stats);
    backend.submit(FunctionType::FD, reqs.data(), 24, results.data(),
                   &stats);
    backend.submit(FunctionType::Minv, reqs.data(), 24, results.data(),
                   &stats);

    g_alloc_count.store(0);
    g_count_allocs.store(true);
    for (int rep = 0; rep < 3; ++rep) {
        backend.submit(FunctionType::DeltaFD, reqs.data(), 24,
                       results.data(), &stats);
        backend.submit(FunctionType::FD, reqs.data(), 24, results.data(),
                       &stats);
        backend.submit(FunctionType::Minv, reqs.data(), 24,
                       results.data(), &stats);
        backend.submitColumns(FunctionType::DeltaFD, q.data(), qd.data(),
                              tau.data(), 24, results.data(), &stats);
    }
    g_count_allocs.store(false);
    EXPECT_EQ(g_alloc_count.load(), 0)
        << "steady-state CPU-backend submission allocated";
}

// ---------------------------------------------------------------------
// MPC through the runtime
// ---------------------------------------------------------------------

TEST(MpcRuntime, AcceleratedExecutionWithinToleranceOfAnalytic)
{
    // Acceptance: the simulated accelerated iteration (LQ ∆FD batch
    // + Fig. 13 rollout on the cycle-accurate backend) stays within
    // the stated tolerance band of the closed-form AnalyticBackend
    // estimate, and every backend is reachable through the one
    // DynamicsBackend interface.
    const auto robot = model::makeQuadrupedArm();
    app::MpcConfig cfg;
    cfg.horizon_points = 12;
    app::MpcWorkload workload(robot, cfg);
    accel::Accelerator accel(robot);

    runtime::AcceleratorBackend sim_backend(accel);
    runtime::AnalyticBackend analytic_backend(accel);

    const app::MpcBreakdown sim = workload.backendBreakdown(sim_backend);
    const app::MpcBreakdown est =
        workload.backendBreakdown(analytic_backend);
    const double sim_dyn = sim.lq_us + sim.rollout_us;
    const double est_dyn = est.lq_us + est.rollout_us;
    ASSERT_GT(sim_dyn, 0.0);
    ASSERT_GT(est_dyn, 0.0);
    // Stated tolerance: simulated execution within 25% of the
    // analytic estimate (same II model, plus simulated contention;
    // both sides deterministic).
    EXPECT_LT(sim_dyn / est_dyn, 1.25);
    EXPECT_GT(sim_dyn / est_dyn, 0.75);
}

TEST(MpcRuntime, AllBackendsProduceSameRolloutResults)
{
    // The serial-stage job really executes on every backend: the
    // final-stage FD results agree across CPU, simulator and
    // analytic backends (approximately — the simulator's functional
    // core models the fixed-point hardware datapath).
    const auto robot = model::makeIiwa();
    accel::Accelerator accel(robot);
    runtime::CpuBatchedBackend cpu(robot, 2);
    runtime::AcceleratorBackend sim(accel);
    runtime::AnalyticBackend analytic(accel);

    const int points = 4, stages = 3;
    std::vector<std::vector<DynamicsResult>> finals;
    for (runtime::DynamicsBackend *backend :
         std::initializer_list<runtime::DynamicsBackend *>{&cpu, &sim,
                                                           &analytic}) {
        auto reqs = randomRequests(robot, points, 31);
        std::vector<DynamicsResult> res(points);
        int advances = 0;
        runtime::DynamicsServer server(*backend);
        server.submitSerialStages(FunctionType::FD, reqs.data(), points,
                                  stages, &serialstage::advance, &advances,
                                  res.data());
        server.drain();
        EXPECT_EQ(advances, stages - 1);
        finals.push_back(res);
    }
    for (int p = 0; p < points; ++p) {
        ASSERT_EQ(finals[0][p].qdd.size(), finals[1][p].qdd.size());
        for (std::size_t j = 0; j < finals[0][p].qdd.size(); ++j) {
            EXPECT_NEAR(finals[1][p].qdd[j], finals[0][p].qdd[j],
                        2e-2 * std::max(1.0,
                                        std::abs(finals[0][p].qdd[j])));
            EXPECT_EQ(finals[2][p].qdd[j], finals[0][p].qdd[j]);
        }
    }
}

TEST(MpcRuntime, SimulatedAcceleratorBeatsCpuBackend)
{
    const auto robot = model::makeQuadrupedArm();
    app::MpcConfig cfg;
    cfg.horizon_points = 12;
    app::MpcWorkload workload(robot, cfg);
    accel::Accelerator accel(robot);
    runtime::AcceleratorBackend sim_backend(accel);

    // Shared measured phases on both sides (see the rationale in
    // test_app.cc's AcceleratorBeatsFourThreadCpu): only the
    // deterministic simulated dynamics differ.
    const app::MpcBreakdown cpu = workload.measureCpu();
    const app::MpcBreakdown sim = workload.backendBreakdown(sim_backend);
    const double accelerated = app::MpcWorkload::iterationUsFrom(
        app::MpcBreakdown{sim.lq_us, sim.rollout_us, cpu.solver_us},
        /*offloaded=*/true);
    const double cpu4 = app::MpcWorkload::cpuIterationUsFrom(cpu, 4);
    EXPECT_LT(accelerated, cpu4);
}

} // namespace
