/**
 * @file
 * Physics-level property tests: invariants of the equation of motion
 * that must hold for any correct implementation — stronger checks
 * than algorithm-vs-algorithm agreement because they catch
 * consistently-wrong pairs.
 */

#include <gtest/gtest.h>

#include <random>

#include "algorithms/aba.h"
#include "algorithms/crba.h"
#include "algorithms/rnea.h"
#include "linalg/factorize.h"
#include "model/builders.h"

namespace {

using namespace dadu;
using algo::aba;
using algo::crba;
using algo::rnea;
using linalg::MatrixX;
using linalg::Vec6;
using linalg::VectorX;
using model::RobotModel;

/** Total mechanical energy of the system at (q, q̇). */
double
totalEnergy(const RobotModel &robot, const VectorX &q, const VectorX &qd)
{
    // Kinetic: 1/2 q̇ᵀ M q̇. Potential: Σ m_i g h_i via the RNEA's
    // forward kinematics of the CoM (approximated with the gravity
    // torque path: we integrate instead, so use KE + PE from link
    // states).
    const MatrixX m = crba(robot, q);
    const double ke = 0.5 * qd.dot(m * qd);
    // Potential energy via CoM heights.
    double pe = 0.0;
    // World pose of each link from the model transforms.
    std::vector<spatial::SpatialTransform> x(robot.nb());
    for (int i = 0; i < robot.nb(); ++i) {
        const auto xup = robot.linkTransform(i, q);
        const int lam = robot.parent(i);
        x[i] = lam == -1 ? xup : xup * x[lam];
        const auto &inertia = robot.link(i).inertia;
        if (inertia.mass() <= 0.0)
            continue;
        const linalg::Vec3 com_local =
            inertia.firstMoment() * (1.0 / inertia.mass());
        const linalg::Vec3 com_world =
            x[i].rotationPart().transpose() * com_local +
            x[i].translationPart();
        pe += inertia.mass() * 9.81 * com_world[2];
    }
    return ke + pe;
}

class EnergyTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(EnergyTest, PassiveChainConservesEnergy)
{
    // Simulate the unactuated iiwa with small symplectic-Euler steps:
    // total energy must be (nearly) conserved over the horizon.
    const RobotModel robot = model::makeIiwa();
    std::mt19937 rng(GetParam());
    VectorX q = robot.randomConfiguration(rng);
    VectorX qd = robot.randomVelocity(rng) * 0.3;
    const VectorX tau(robot.nv());

    const double e0 = totalEnergy(robot, q, qd);
    const double dt = 2e-4;
    for (int step = 0; step < 500; ++step) {
        const VectorX qdd = aba(robot, q, qd, tau);
        qd += qdd * dt;
        q = robot.integrate(q, qd * dt);
    }
    const double e1 = totalEnergy(robot, q, qd);
    EXPECT_NEAR(e1, e0, 0.02 * std::abs(e0) + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnergyTest,
                         ::testing::Values(1u, 2u, 3u));

TEST(Invariants, CoriolisMatrixPowerIdentity)
{
    // q̇ᵀ (Ṁ - 2C_mat) q̇ = 0 is hard to form directly, but its
    // consequence is testable: the Coriolis force C(q, q̇) - g(q) is
    // quadratic in q̇, so C(q, αq̇) - g scales with α².
    const RobotModel robot = model::makeHyq();
    std::mt19937 rng(17);
    const VectorX q = robot.randomConfiguration(rng);
    const VectorX qd = robot.randomVelocity(rng);
    const VectorX zero(robot.nv());
    const VectorX g = rnea(robot, q, zero, zero).tau;
    const VectorX c1 = rnea(robot, q, qd, zero).tau - g;
    const VectorX c2 = rnea(robot, q, qd * 2.0, zero).tau - g;
    EXPECT_LT((c2 - c1 * 4.0).maxAbs(), 1e-8);
}

TEST(Invariants, GravityTorqueIndependentOfVelocitySign)
{
    // Coriolis terms are even under q̇ -> -q̇ only in their quadratic
    // part; the full bias satisfies C(q, -q̇) = C(q, q̇) exactly.
    const RobotModel robot = model::makeAtlas();
    std::mt19937 rng(23);
    const VectorX q = robot.randomConfiguration(rng);
    const VectorX qd = robot.randomVelocity(rng);
    const VectorX zero(robot.nv());
    const VectorX cp = rnea(robot, q, qd, zero).tau;
    const VectorX cm = rnea(robot, q, -qd, zero).tau;
    EXPECT_LT((cp - cm).maxAbs(), 1e-9);
}

class MassMatrixSweep
    : public ::testing::TestWithParam<std::tuple<int, unsigned>>
{};

TEST_P(MassMatrixSweep, SpdAndBoundedConditioning)
{
    const auto [links, seed] = GetParam();
    const RobotModel robot = model::makeSerialChain(links);
    std::mt19937 rng(seed);
    const VectorX q = robot.randomConfiguration(rng);
    const MatrixX m = crba(robot, q);
    const linalg::Cholesky chol(m);
    ASSERT_TRUE(chol.ok());
    // Diagonal dominance of inertia: every diagonal entry positive
    // and bounded by the total chain inertia.
    for (int i = 0; i < robot.nv(); ++i) {
        EXPECT_GT(m(i, i), 0.0);
        EXPECT_LT(m(i, i), 1e3);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MassMatrixSweep,
    ::testing::Combine(::testing::Values(2, 5, 9, 14),
                       ::testing::Values(1u, 2u, 3u)));

TEST(Invariants, NewtonThirdLawAtBase)
{
    // For a fixed-base arm at rest, the base reaction force equals
    // the total weight: check via the accumulated root force of the
    // RNEA.
    const RobotModel robot = model::makeIiwa();
    const VectorX q = robot.neutralConfiguration();
    const VectorX zero(robot.nv());
    const auto res = rnea(robot, q, zero, zero);
    double total_mass = 0.0;
    for (int i = 0; i < robot.nb(); ++i)
        total_mass += robot.link(i).inertia.mass();
    // res.f[0] is the root link's accumulated spatial force in its
    // own frame; at neutral pose the frame is axis-aligned with the
    // world, so the linear z component carries the weight.
    EXPECT_NEAR(res.f[0][5], total_mass * 9.81, 1e-9);
}

TEST(Invariants, MassMatrixIndependentOfVelocity)
{
    const RobotModel robot = model::makeSpotArm();
    std::mt19937 rng(31);
    const VectorX q = robot.randomConfiguration(rng);
    const MatrixX m = crba(robot, q);
    // Probing M via RNEA at a *nonzero* velocity still recovers M:
    // τ(q, q̇, e_k) - τ(q, q̇, 0) = M e_k.
    const VectorX qd = robot.randomVelocity(rng);
    const VectorX bias = rnea(robot, q, qd, VectorX(robot.nv())).tau;
    for (int k = 0; k < robot.nv(); k += 5) {
        VectorX ek(robot.nv());
        ek[k] = 1.0;
        const VectorX col = rnea(robot, q, qd, ek).tau - bias;
        for (int r = 0; r < robot.nv(); ++r)
            EXPECT_NEAR(col[r], m(r, k), 1e-8);
    }
}

} // namespace
