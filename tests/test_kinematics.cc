/**
 * @file
 * Tests for forward kinematics and geometric Jacobians, including
 * cross-checks against the RNEA's internal link states.
 */

#include <gtest/gtest.h>

#include <random>

#include "algorithms/kinematics.h"
#include "algorithms/rnea.h"
#include "model/builders.h"

namespace {

using namespace dadu;
using algo::bodyJacobian;
using algo::forwardKinematics;
using algo::linkPosition;
using algo::linkVelocity;
using linalg::Vec3;
using linalg::Vec6;
using linalg::VectorX;
using model::RobotModel;

TEST(Kinematics, NeutralPoseMatchesTreeOffsets)
{
    const RobotModel robot = model::makeSerialChain(4, 0.3);
    const VectorX q = robot.neutralConfiguration();
    // Chain links stack along +z with 0.3 m spacing from link 2 on.
    EXPECT_LT((linkPosition(robot, q, 0) - Vec3{0, 0, 0}).maxAbs(),
              1e-12);
    EXPECT_LT((linkPosition(robot, q, 3) - Vec3{0, 0, 0.9}).maxAbs(),
              1e-12);
}

TEST(Kinematics, PendulumTipTracksAngle)
{
    // One revolute-y link: rotating by q swings the +z axis.
    RobotModel robot("pend");
    robot.addLink("l", -1, model::JointType::RevoluteY,
                  spatial::SpatialTransform::identity(),
                  spatial::SpatialInertia::fromComInertia(
                      1.0, Vec3{0, 0, -0.5},
                      linalg::Mat3::identity() * 0.01));
    const double angle = 0.7;
    const auto x = forwardKinematics(robot, VectorX{angle});
    // A point fixed at (0,0,-1) in the link frame, in world coords:
    // X^-1 motion transform of positions — use the inverse transform
    // of a pure position via the rotation part.
    const Vec3 tip_local{0, 0, -1};
    const Vec3 tip_world =
        x[0].rotationPart().transpose() * tip_local +
        x[0].translationPart();
    EXPECT_NEAR(tip_world[0], -std::sin(angle), 1e-12);
    EXPECT_NEAR(tip_world[2], -std::cos(angle), 1e-12);
}

class KinematicsRobots : public ::testing::TestWithParam<std::string>
{
  protected:
    RobotModel
    robot() const
    {
        const std::string &n = GetParam();
        if (n == "iiwa")
            return model::makeIiwa();
        if (n == "hyq")
            return model::makeHyq();
        if (n == "atlas")
            return model::makeAtlas();
        return model::makeTiago();
    }
};

TEST_P(KinematicsRobots, JacobianTimesQdMatchesRneaVelocity)
{
    const RobotModel robot = this->robot();
    std::mt19937 rng(3);
    const VectorX q = robot.randomConfiguration(rng);
    const VectorX qd = robot.randomVelocity(rng);
    const auto res = algo::rnea(robot, q, qd, VectorX(robot.nv()));
    for (int link : {0, robot.nb() / 2, robot.nb() - 1}) {
        const auto j = bodyJacobian(robot, q, link);
        const VectorX jv = j * qd;
        for (int r = 0; r < 6; ++r)
            EXPECT_NEAR(jv[r], res.v[link][r], 1e-9)
                << "link " << link;
    }
}

TEST_P(KinematicsRobots, LinkVelocityMatchesRnea)
{
    const RobotModel robot = this->robot();
    std::mt19937 rng(5);
    const VectorX q = robot.randomConfiguration(rng);
    const VectorX qd = robot.randomVelocity(rng);
    const auto res = algo::rnea(robot, q, qd, VectorX(robot.nv()));
    const int tip = robot.nb() - 1;
    const Vec6 v = linkVelocity(robot, q, qd, tip);
    EXPECT_LT((v - res.v[tip]).maxAbs(), 1e-9);
}

TEST_P(KinematicsRobots, JacobianSparsityFollowsTopology)
{
    const RobotModel robot = this->robot();
    std::mt19937 rng(7);
    const VectorX q = robot.randomConfiguration(rng);
    const int tip = robot.nb() - 1;
    const auto j = bodyJacobian(robot, q, tip);
    for (int a = 0; a < robot.nb(); ++a) {
        if (robot.isAncestorOf(a, tip))
            continue;
        const int va = robot.link(a).vIndex;
        for (int k = 0; k < robot.subspace(a).nv(); ++k)
            for (int r = 0; r < 6; ++r)
                EXPECT_EQ(j(r, va + k), 0.0);
    }
}

TEST_P(KinematicsRobots, FiniteDifferencePositionMatchesJacobian)
{
    // d(position)/dq via the body Jacobian's linear rows, rotated to
    // world, vs central differences through integrate().
    const RobotModel robot = this->robot();
    std::mt19937 rng(11);
    const VectorX q = robot.randomConfiguration(rng);
    const int tip = robot.nb() - 1;
    const auto x = forwardKinematics(robot, q);
    const auto j = bodyJacobian(robot, q, tip);
    const double eps = 1e-6;
    for (int k = 0; k < robot.nv(); ++k) {
        VectorX dv(robot.nv());
        dv[k] = eps;
        const Vec3 pp =
            linkPosition(robot, robot.integrate(q, dv), tip);
        dv[k] = -eps;
        const Vec3 pm =
            linkPosition(robot, robot.integrate(q, dv), tip);
        const Vec3 num = (pp - pm) * (1.0 / (2.0 * eps));
        // Body-frame linear velocity of the origin = bottom rows.
        const Vec3 body_lin{j(3, k), j(4, k), j(5, k)};
        const Vec3 world_lin =
            x[tip].rotationPart().transpose() * body_lin;
        EXPECT_LT((num - world_lin).maxAbs(), 1e-5) << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Robots, KinematicsRobots,
                         ::testing::Values("iiwa", "hyq", "atlas",
                                           "tiago"),
                         [](const auto &info) { return info.param; });

} // namespace
