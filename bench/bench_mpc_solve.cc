/**
 * @file
 * Real trajectory optimization over the runtime: iLQR/DDP solve and
 * closed-loop MPC throughput per backend, plus the multi-client MPC
 * serving scenario.
 *
 * Three parts (BENCH_mpc.json via --json):
 *
 *  1. Open-loop solves — for each evaluation robot (iiwa, HyQ,
 *     Atlas) and scenario (reaching, gait tracking, disturbance
 *     recovery), iterations-to-convergence and cost drop of the
 *     iLQR solver with the dynamics on the CPU batched backend.
 *     Every problem must converge: the dynamics backends are only
 *     control-grade if they drive a solver to an optimum.
 *
 *  2. Closed-loop ticks/s per backend — the receding-horizon MPC
 *     loop (warm-start shift + one solver iteration per tick) of
 *     MpcWorkload::solveClosedLoop on the CPU batched backend and
 *     the analytic accelerator backend. This path replaces the
 *     synthetic Riccati sweep: the solver phase is a real backward
 *     pass over real ∆FD linearizations.
 *
 *  3. MPC serving — M closed-loop clients (scenario mix) tick
 *     concurrently against the async DynamicsServer over two
 *     analytic lanes under EDF + coalescing + stealing, every
 *     dynamics job deadline-tagged through the
 *     predictedAdmissionUs admission path. Reported: aggregate
 *     ticks/s and the deadline-hit rate.
 *
 * --trace additionally records the serving section's job lifecycle
 * (per-lane rings plus one claimed ring per MPC client, wired by
 * MpcWorkload::serveClosedLoopClients via MpcSession::attachTrace)
 * and exports trace_mpc.json.
 */

#include "bench_util.h"

#include <string>

#include "app/mpc_workload.h"
#include "ctrl/ilqr.h"
#include "ctrl/scenarios.h"
#include "runtime/backends.h"
#include "runtime/obs/export.h"
#include "runtime/obs/trace.h"
#include "runtime/sched/policy.h"
#include "runtime/server.h"

using namespace dadu;
using namespace dadu::bench;

namespace {

constexpr int kClosedLoopTicks = 60;
constexpr int kServeClients = 4;
constexpr int kServeTicks = 40;
constexpr double kServeSlack = 4.0;

} // namespace

int
main(int argc, char **argv)
{
    banner("MPC solve — iLQR/DDP trajectory optimization over the "
           "runtime");
    JsonReport report;

    // ---- 1. open-loop convergence per robot x scenario -----------
    std::printf("\n%-6s %-22s %5s %12s %12s %10s %5s\n", "robot",
                "scenario", "iters", "cost0", "cost*", "grad", "conv");
    for (const EvalEntry &e : evalRobots()) {
        const RobotModel robot = e.make();
        runtime::CpuBatchedBackend backend(robot, 4);
        for (int which = 0; which < 3; ++which) {
            ctrl::Scenario sc = ctrl::makeScenario(robot, which);
            ctrl::IlqrSolver solver(robot, sc.problem);
            const ctrl::IlqrSummary sum =
                solver.solve(backend, sc.q0, sc.qd0);
            std::printf("%-6s %-22s %5d %12.4f %12.4f %10.2e %5d\n",
                        e.name, sc.name, sum.iterations,
                        sum.initial_cost, sum.cost, sum.grad_norm,
                        sum.converged);
            const std::string k =
                std::string("solve_") + e.name + "_" + sc.name;
            report.add(k + "_iters", sum.iterations);
            report.add(k + "_cost", sum.cost);
            report.add(k + "_converged", sum.converged ? 1.0 : 0.0);
        }
    }

    // ---- 2. closed-loop ticks/s per backend ----------------------
    std::printf("\n%-6s %-16s %10s %10s %10s\n", "robot", "backend",
                "ticks/s", "track err", "jobs");
    for (const EvalEntry &e : evalRobots()) {
        const RobotModel robot = e.make();
        app::MpcWorkload workload(robot);
        Accelerator accel(robot);

        runtime::CpuBatchedBackend cpu(robot, 4);
        runtime::AnalyticBackend analytic(accel);
        runtime::DynamicsBackend *backends[] = {&cpu, &analytic};
        for (runtime::DynamicsBackend *b : backends) {
            const app::ClosedLoopReport r =
                workload.solveClosedLoop(*b, kClosedLoopTicks);
            std::printf("%-6s %-16s %10.0f %10.4f %10zu\n", e.name,
                        b->name(), r.ticks_per_s, r.tracking_err,
                        r.jobs);
            const std::string k = std::string("closed_loop_") +
                                  e.name + "_" + b->name();
            report.add(k + "_ticks_per_s", r.ticks_per_s);
            report.add(k + "_tracking_err", r.tracking_err);
        }
    }

    // ---- 3. MPC serving: M clients on the async server -----------
    {
        const RobotModel robot = model::makeIiwa();
        app::MpcWorkload workload(robot);
        Accelerator accel(robot);
        runtime::AnalyticBackend lane0(accel);
        auto lane1 = lane0.clone();
        runtime::DynamicsServer server(lane0);
        server.addBackend(*lane1);
        runtime::sched::SchedConfig cfg;
        cfg.kind = runtime::sched::PolicyKind::Edf;
        cfg.coalesce = true;
        cfg.steal = true;
        const bool want_trace = hasFlag(argc, argv, "--trace");
        if (want_trace) {
            cfg.obs.trace = true;
            // kServeClients sessions x kServeTicks ticks each fan
            // out many jobs per tick; give the rings headroom so the
            // exported trace keeps whole job flows.
            cfg.obs.ring_capacity = 1 << 15;
        }
        server.setPolicy(cfg);

        const app::ClosedLoopReport r = workload.serveClosedLoopClients(
            server, kServeClients, kServeTicks, kServeSlack);
        if (want_trace && server.traceBuffer()) {
            const char *path = "trace_mpc.json";
            if (runtime::obs::writeChromeTrace(*server.traceBuffer(),
                                               path))
                std::printf("wrote %s\n", path);
            else
                std::printf("failed to write %s\n", path);
        }
        std::printf("\nserving: %d clients x %d ticks on 2 analytic "
                    "lanes (EDF+coalesce+steal)\n",
                    kServeClients, kServeTicks);
        std::printf("  ticks/s %.0f  deadline hit rate %.3f "
                    "(%zu met / %zu missed)  merged %zu  steals %zu\n",
                    r.ticks_per_s, r.deadlineHitRate(), r.deadline_met,
                    r.deadline_misses, r.coalesced_batches, r.steals);
        report.add("serve_clients", kServeClients);
        report.add("serve_ticks_per_s", r.ticks_per_s);
        report.add("serve_deadline_hit_rate", r.deadlineHitRate());
        report.add("serve_deadline_met",
                   static_cast<double>(r.deadline_met));
        report.add("serve_deadline_misses",
                   static_cast<double>(r.deadline_misses));
        report.add("serve_coalesced_batches",
                   static_cast<double>(r.coalesced_batches));
        report.add("serve_steals", static_cast<double>(r.steals));
    }

    maybeWriteJson(argc, argv, report, "BENCH_mpc.json");
    return 0;
}
