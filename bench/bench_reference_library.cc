/**
 * @file
 * Google-benchmark microbenchmarks of the reference dynamics library
 * (the measured host-CPU columns of Fig. 15 use these kernels; this
 * binary gives per-algorithm timings in the standard harness).
 */

#include <benchmark/benchmark.h>

#include <random>

#include "algorithms/aba.h"
#include "algorithms/crba.h"
#include "algorithms/dynamics.h"
#include "algorithms/mminv_gen.h"
#include "algorithms/rnea.h"
#include "algorithms/rnea_derivatives.h"
#include "model/builders.h"

namespace {

using namespace dadu;
using linalg::VectorX;
using model::RobotModel;

RobotModel
robotFor(int idx)
{
    switch (idx) {
      case 0: return model::makeIiwa();
      case 1: return model::makeHyq();
      default: return model::makeAtlas();
    }
}

struct Inputs
{
    VectorX q, qd, u;
};

Inputs
inputsFor(const RobotModel &robot)
{
    std::mt19937 rng(12);
    return {robot.randomConfiguration(rng), robot.randomVelocity(rng),
            robot.randomVelocity(rng)};
}

void
BM_Rnea(benchmark::State &state)
{
    const RobotModel robot = robotFor(state.range(0));
    const Inputs in = inputsFor(robot);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            algo::rnea(robot, in.q, in.qd, in.u).tau[0]);
}

void
BM_Aba(benchmark::State &state)
{
    const RobotModel robot = robotFor(state.range(0));
    const Inputs in = inputsFor(robot);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            algo::aba(robot, in.q, in.qd, in.u)[0]);
}

void
BM_Crba(benchmark::State &state)
{
    const RobotModel robot = robotFor(state.range(0));
    const Inputs in = inputsFor(robot);
    for (auto _ : state)
        benchmark::DoNotOptimize(algo::crba(robot, in.q)(0, 0));
}

void
BM_MinvGen(benchmark::State &state)
{
    const RobotModel robot = robotFor(state.range(0));
    const Inputs in = inputsFor(robot);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            algo::massMatrixInverse(robot, in.q)(0, 0));
}

void
BM_RneaDerivatives(benchmark::State &state)
{
    const RobotModel robot = robotFor(state.range(0));
    const Inputs in = inputsFor(robot);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            algo::rneaDerivatives(robot, in.q, in.qd, in.u)
                .dtau_dq(0, 0));
}

void
BM_FdDerivatives(benchmark::State &state)
{
    const RobotModel robot = robotFor(state.range(0));
    const Inputs in = inputsFor(robot);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            algo::fdDerivatives(robot, in.q, in.qd, in.u)
                .dqdd_dq(0, 0));
}

BENCHMARK(BM_Rnea)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_Aba)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_Crba)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_MinvGen)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_RneaDerivatives)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_FdDerivatives)->Arg(0)->Arg(1)->Arg(2);

} // namespace

BENCHMARK_MAIN();
