/**
 * @file
 * Experiment E3/E7 — Fig. 15 a/c/e: single-task latency per function
 * for iiwa, HyQ and Atlas.
 *
 * Columns: host CPU (measured, our reference library = the Pinocchio
 * role), AGX CPU and i9-13900HX (paper-reported models), and
 * Dadu-RBD (cycle simulation of a small batch, reporting mean task
 * latency, cross-checked by the analytic estimate).
 *
 * The summary rows reproduce the paper's latency-ratio claims:
 * vs AGX CPU 0.12x-0.55x (avg 0.29x); vs i9 0.34x-1.91x (avg 0.82x).
 */

#include "bench_util.h"

#include <string>

#include "perf/timing.h"
#include "runtime/backends.h"

using namespace dadu;
using namespace dadu::bench;

int
main(int argc, char **argv)
{
    banner("Fig. 15 a/c/e — latency (us/task), lower is better");
    double sum_agx_ratio = 0.0, sum_i9_ratio = 0.0;
    double min_agx = 1e9, max_agx = 0.0;
    int count = 0;
    JsonReport report;

    for (const auto &entry : evalRobots()) {
        const RobotModel robot = entry.make();
        Accelerator accel(robot);
        // The simulated column goes through the runtime interface —
        // the same submit() path every other consumer uses.
        runtime::AcceleratorBackend backend(accel);
        std::vector<runtime::DynamicsResult> outputs;
        std::printf("\n[%s]  (configured: %s)\n", entry.name,
                    accel.plan().summary().c_str());
        std::printf("%6s %12s %12s %12s %12s %12s\n", "fn",
                    "host(meas)", "AGX(model)", "i9(model)",
                    "Dadu(sim)", "Dadu(analytic)");
        for (FunctionType fn : fig15Functions()) {
            const double host = perf::hostLatencyUs(robot, fn, 16, 5);
            const double agx =
                perf::paperLatencyUs(perf::Platform::AgxCpu, entry.key,
                                     fn);
            const double i9 = perf::paperLatencyUs(
                perf::Platform::I9Cpu, entry.key, fn);
            accel::BatchStats stats;
            backend.submit(fn, randomBatch(robot, 16), outputs, &stats);
            const auto est = accel.analytic(fn);
            std::printf("%6s %12.2f %12.2f %12.2f %12.2f %12.2f\n",
                        accel::functionName(fn), host, agx, i9,
                        stats.latency_us, est.latency_us);
            report.add(std::string("latency_") + entry.name + "_" +
                           accel::functionName(fn) + "_us",
                       stats.latency_us);
            const double r_agx = stats.latency_us / agx;
            const double r_i9 = stats.latency_us / i9;
            sum_agx_ratio += r_agx;
            sum_i9_ratio += r_i9;
            min_agx = std::min(min_agx, r_agx);
            max_agx = std::max(max_agx, r_agx);
            ++count;
        }
    }

    banner("Latency ratio summary (Dadu / baseline, lower is better)");
    std::printf("vs AGX CPU: %.2fx-%.2fx, average %.2fx "
                "(paper: 0.12x-0.55x, avg 0.29x)\n",
                min_agx, max_agx, sum_agx_ratio / count);
    std::printf("vs i9-13900HX: average %.2fx "
                "(paper: 0.34x-1.91x, avg 0.82x)\n",
                sum_i9_ratio / count);

    report.add("latency_ratio_vs_agx_avg", sum_agx_ratio / count);
    report.add("latency_ratio_vs_i9_avg", sum_i9_ratio / count);
    maybeWriteJson(argc, argv, report, "BENCH_fig15.json",
                   /*merge=*/true);
    return 0;
}
