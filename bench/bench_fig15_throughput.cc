/**
 * @file
 * Experiment E4/E8 — Fig. 15 b/d/f: 256-task batch throughput per
 * function for iiwa, HyQ and Atlas (million tasks per second).
 *
 * Columns: AGX CPU / AGX GPU / i9 / RTX 4090M (paper-reported
 * models; GRiD has no mass-matrix kernel so the GPU M column is
 * empty) and Dadu-RBD (cycle simulation of a 256-task batch).
 *
 * The summary reproduces the paper's throughput-ratio claims:
 * vs AGX CPU 8.1x-43.6x (avg 19.2x); vs AGX GPU 3.5x-13.4x (avg
 * 7.2x); vs i9 4.1x-20.2x (avg 8.2x); vs RTX 4090M 0.5x-2.8x (avg
 * 1.4x).
 */

#include "bench_util.h"

#include <string>

#include "runtime/backends.h"

using namespace dadu;
using namespace dadu::bench;

int
main(int argc, char **argv)
{
    banner("Fig. 15 b/d/f — throughput (Mtasks/s), 256-task batches");
    JsonReport report;
    struct Acc
    {
        double sum = 0, lo = 1e9, hi = 0;
        int n = 0;
        void
        add(double r)
        {
            sum += r;
            lo = std::min(lo, r);
            hi = std::max(hi, r);
            ++n;
        }
    } vs_agx_cpu, vs_agx_gpu, vs_i9, vs_rtx;

    for (const auto &entry : evalRobots()) {
        const RobotModel robot = entry.make();
        Accelerator accel(robot);
        // Simulated batches submitted through the runtime interface.
        runtime::AcceleratorBackend backend(accel);
        std::vector<runtime::DynamicsResult> outputs;
        std::printf("\n[%s]\n", entry.name);
        std::printf("%6s %11s %11s %11s %11s %11s\n", "fn", "AGX-CPU",
                    "AGX-GPU", "i9", "RTX4090M", "Dadu(sim)");
        for (FunctionType fn : fig15Functions()) {
            const double agx_cpu = perf::paperThroughputMtasks(
                perf::Platform::AgxCpu, entry.key, fn);
            const double agx_gpu = perf::paperThroughputMtasks(
                perf::Platform::AgxGpu, entry.key, fn);
            const double i9 = perf::paperThroughputMtasks(
                perf::Platform::I9Cpu, entry.key, fn);
            const double rtx = perf::paperThroughputMtasks(
                perf::Platform::Rtx4090m, entry.key, fn);
            accel::BatchStats stats;
            backend.submit(fn, randomBatch(robot, 256), outputs, &stats);
            const double dadu = stats.throughput_mtasks;
            std::printf("%6s %11.2f %11.2f %11.2f %11.2f %11.2f\n",
                        accel::functionName(fn), agx_cpu, agx_gpu, i9,
                        rtx, dadu);
            report.add(std::string("throughput_") + entry.name + "_" +
                           accel::functionName(fn) + "_mtps",
                       dadu);
            vs_agx_cpu.add(dadu / agx_cpu);
            if (agx_gpu > 0)
                vs_agx_gpu.add(dadu / agx_gpu);
            vs_i9.add(dadu / i9);
            if (rtx > 0)
                vs_rtx.add(dadu / rtx);
        }
    }

    banner("Throughput ratio summary (Dadu / baseline, higher is "
           "better)");
    std::printf("vs AGX CPU:  %5.1fx-%5.1fx avg %5.1fx "
                "(paper: 8.1x-43.6x avg 19.2x)\n",
                vs_agx_cpu.lo, vs_agx_cpu.hi,
                vs_agx_cpu.sum / vs_agx_cpu.n);
    std::printf("vs AGX GPU:  %5.1fx-%5.1fx avg %5.1fx "
                "(paper: 3.5x-13.4x avg 7.2x)\n",
                vs_agx_gpu.lo, vs_agx_gpu.hi,
                vs_agx_gpu.sum / vs_agx_gpu.n);
    std::printf("vs i9:       %5.1fx-%5.1fx avg %5.1fx "
                "(paper: 4.1x-20.2x avg 8.2x)\n",
                vs_i9.lo, vs_i9.hi, vs_i9.sum / vs_i9.n);
    std::printf("vs RTX4090M: %5.1fx-%5.1fx avg %5.1fx "
                "(paper: 0.5x-2.8x avg 1.4x)\n",
                vs_rtx.lo, vs_rtx.hi, vs_rtx.sum / vs_rtx.n);

    report.add("throughput_ratio_vs_agx_cpu_avg",
               vs_agx_cpu.sum / vs_agx_cpu.n);
    report.add("throughput_ratio_vs_i9_avg", vs_i9.sum / vs_i9.n);
    maybeWriteJson(argc, argv, report, "BENCH_fig15.json",
                   /*merge=*/true);
    return 0;
}
