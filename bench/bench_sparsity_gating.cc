/**
 * @file
 * Column-sparsity gating sweep (BENCH_sparsity.json via --json).
 *
 * Three parts:
 *
 *  1. Measured single-core derivative refresh — none/simple/adaptive
 *     gating at seed densities 12.5/25/50 % on the evaluation robots
 *     (iiwa, HyQ, Atlas), in two pipelines:
 *
 *     dfd_*  — one-shot ∆FD: the gated sweeps skip dead columns of
 *              the derivative steps ④⑤⑥ while q̈ and M⁻¹ (steps
 *              ①②③) stay dense, so the speedup saturates at the
 *              dense share of those steps.
 *     difd_* — the gated REFRESH pipeline the iLQR client actually
 *              runs: q̈/M⁻¹ are banked from the last dense ∆FD
 *              refresh and the refresh submits ∆iFD, so the dense
 *              ①②③ prefix disappears and cost scales with the
 *              live-column count alone. Speedups are quoted against
 *              dense ∆FD — the work a non-gating client would do
 *              for the same refresh.
 *
 *  2. Modeled accelerator ∆FD — the AnalyticBackend's closed-form
 *     batch time dense vs gated at 25 % density: the ∆ submodule
 *     streams and the step-⑥ matmul are priced for live columns
 *     only, over the dense-sized lane allocation (the bitstream is
 *     fixed; sparsity buys cycles, not area).
 *
 *  3. Closed-loop MPC — receding-horizon ticks/s of the real
 *     iLQR+plant loop with gating off vs on (adaptive, drift
 *     tolerance 3e-3, dense refresh every 4): the solver requests
 *     only the Jacobian columns whose coordinates moved since their
 *     last linearization, skipping the batch outright when nothing
 *     moved. Tracking error is reported for both so the speedup is
 *     only claimed when control quality holds.
 */

#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/batched.h"
#include "algorithms/col_gating.h"
#include "app/mpc_workload.h"
#include "ctrl/problem.h"
#include "runtime/backends.h"

using namespace dadu;
using namespace dadu::bench;

namespace {

/** Evenly spaced seed with round(nv * density) live columns. */
std::vector<int>
spacedSeed(int nv, double density)
{
    const int live = std::max(
        1, static_cast<int>(std::lround(nv * density)));
    std::vector<int> seed;
    for (int i = 0; i < live; ++i)
        seed.push_back(static_cast<int>(
            static_cast<long long>(i) * nv / live));
    return seed;
}

/** One gated configuration of the single-core refresh sweep. */
struct GateConfig
{
    std::string label;
    algo::GatingMode mode = algo::GatingMode::None;
    double density = 1.0;
    bool given_accel = false; ///< ∆iFD refresh pipeline (banked q̈/M⁻¹)
    algo::ColumnPlan plan;    ///< resolved; dense for the baselines
};

void
gatedCpuSection(JsonReport &report)
{
    banner("measured single-core derivative refresh — pipeline x "
           "gating mode x seed density (µs/point, speedup vs dense "
           "∆FD)");
    const int points = 96;
    const int rounds = 7;
    const std::vector<double> densities = {0.125, 0.25, 0.5};

    std::printf("\n%-6s %-5s %-14s %8s %10s %8s %5s\n", "robot", "fn",
                "mode", "density", "us/point", "speedup", "live");
    for (const EvalEntry &e : evalRobots()) {
        const RobotModel robot = e.make();
        const int nv = robot.nv();
        std::mt19937 rng(23);
        std::vector<linalg::VectorX> qs, qds, taus;
        for (int i = 0; i < points; ++i) {
            qs.push_back(robot.randomConfiguration(rng));
            qds.push_back(robot.randomVelocity(rng));
            taus.push_back(robot.randomVelocity(rng));
        }
        algo::BatchedDynamics engine(robot, 1); // single core

        // Bank q̈/M⁻¹ per point for the ∆iFD refresh rows (copies:
        // the engine's output array is reused across calls).
        std::vector<linalg::VectorX> qdd_in;
        std::vector<linalg::MatrixX> minv_in;
        {
            const auto &fd = engine.batchFdDerivatives(
                qs.data(), qds.data(), taus.data(), points);
            for (int i = 0; i < points; ++i) {
                qdd_in.push_back(fd[i].qdd);
                minv_in.push_back(fd[i].minv);
            }
        }
        std::vector<const linalg::MatrixX *> minv_ptrs;
        for (int i = 0; i < points; ++i)
            minv_ptrs.push_back(&minv_in[i]);

        std::vector<GateConfig> configs(1);
        configs[0].label = "dense";
        for (bool given_accel : {false, true}) {
            if (given_accel) {
                GateConfig c;
                c.label = "dense";
                c.given_accel = true;
                configs.push_back(std::move(c));
            }
            for (algo::GatingMode mode :
                 {algo::GatingMode::Simple, algo::GatingMode::Adaptive}) {
                for (double density : densities) {
                    GateConfig c;
                    c.mode = mode;
                    c.density = density;
                    c.given_accel = given_accel;
                    c.label = std::string(algo::gatingModeName(mode)) +
                              "_d" +
                              std::to_string(static_cast<int>(
                                  std::lround(density * 100)));
                    c.plan.resolve(mode, spacedSeed(nv, density), nv);
                    configs.push_back(std::move(c));
                }
            }
        }

        const auto sweep = [&](const GateConfig &c) {
            const algo::ColumnPlan *plan =
                c.mode == algo::GatingMode::None ? nullptr : &c.plan;
            const auto &out =
                c.given_accel
                    ? engine.batchFdDerivativesGivenAccel(
                          qs.data(), qds.data(), qdd_in.data(),
                          minv_ptrs.data(), points, plan)
                    : engine.batchFdDerivatives(qs.data(), qds.data(),
                                                taus.data(), points, plan);
            volatile double sink = out[0].dqdd_dq(0, 0);
            (void)sink;
        };

        // Warm-up once, then interleaved timed rounds, best-of kept —
        // load spikes hit every configuration alike.
        for (const GateConfig &c : configs)
            sweep(c);
        std::vector<double> best(configs.size(), 0.0);
        for (int rep = 0; rep < rounds; ++rep) {
            for (std::size_t i = 0; i < configs.size(); ++i) {
                const double t0 = nowUs();
                sweep(configs[i]);
                const double dt = nowUs() - t0;
                if (rep == 0 || dt < best[i])
                    best[i] = dt;
            }
        }

        const double dense_us = best[0] / points;
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const GateConfig &c = configs[i];
            const double us = best[i] / points;
            const double speedup = us > 0.0 ? dense_us / us : 0.0;
            std::printf("%-6s %-5s %-14s %7.0f%% %10.3f %7.2fx %5d\n",
                        e.name, c.given_accel ? "difd" : "dfd",
                        c.label.c_str(), c.density * 100.0, us, speedup,
                        c.plan.liveCount());
            const std::string k = std::string(c.given_accel ? "difd_"
                                                            : "dfd_") +
                                  e.name + "_" + c.label;
            report.add(k + "_us_per_point", us);
            if (i > 0)
                report.add(k + "_speedup", speedup);
        }
    }
}

void
accelSection(JsonReport &report)
{
    banner("modeled accelerator ∆FD batch — dense vs gated at 25% "
           "density (batch of 32)");
    const int n = 32;
    std::printf("\n%-6s %12s %12s %8s\n", "robot", "dense us",
                "gated us", "speedup");
    for (const EvalEntry &e : evalRobots()) {
        const RobotModel robot = e.make();
        Accelerator accel(robot);
        runtime::AnalyticBackend backend(accel);

        std::mt19937 rng(41);
        std::vector<runtime::DynamicsRequest> reqs(n);
        for (auto &r : reqs) {
            r.q = robot.randomConfiguration(rng);
            r.qd = robot.randomVelocity(rng);
            r.qdd_or_tau = robot.randomVelocity(rng);
        }
        std::vector<runtime::DynamicsResult> res(n);

        runtime::BatchStats stats;
        backend.submit(runtime::FunctionType::DeltaFD, reqs.data(), n,
                       res.data(), &stats);
        const double dense_us = stats.total_us;

        for (auto &r : reqs) {
            r.gating = algo::GatingMode::Simple;
            r.seed_cols = spacedSeed(robot.nv(), 0.25);
        }
        backend.submit(runtime::FunctionType::DeltaFD, reqs.data(), n,
                       res.data(), &stats);
        const double gated_us = stats.total_us;

        const double speedup =
            gated_us > 0.0 ? dense_us / gated_us : 0.0;
        std::printf("%-6s %12.3f %12.3f %7.2fx\n", e.name, dense_us,
                    gated_us, speedup);
        const std::string k = std::string("accel_dfd_") + e.name;
        report.add(k + "_dense_us", dense_us);
        report.add(k + "_gated25_us", gated_us);
        report.add(k + "_speedup", speedup);
    }
}

void
mpcSection(JsonReport &report)
{
    banner("closed-loop MPC — ticks/s with gating off vs on "
           "(adaptive, drift tol 3e-3, dense refresh every 4)");
    // Tick counts sized per robot so each run spans its interesting
    // regime (iiwa settles onto the target — the skip-heavy phase;
    // the bigger robots stay mid-reach) at comparable wall time.
    const int rounds = 3;
    std::printf("\n%-6s %-8s %10s %12s %8s %18s %8s\n", "robot",
                "gating", "ticks/s", "track err", "speedup",
                "dense/gated/skip", "density");
    for (const EvalEntry &e : evalRobots()) {
        const RobotModel robot = e.make();
        const int ticks = robot.nv() <= 10    ? 360
                          : robot.nv() <= 20 ? 240
                                             : 120;
        app::MpcWorkload workload(robot);
        runtime::CpuBatchedBackend cpu(robot, 4);

        ctrl::IlqrOptions gated;
        gated.gating = algo::GatingMode::Adaptive;
        gated.gating_tol = 3e-3;
        gated.dense_refresh_every = 4;

        // Interleaved rounds, best-of ticks/s per configuration —
        // the runs are deterministic, so tracking error and the
        // engagement counters are round-invariant.
        app::ClosedLoopReport off, on;
        double best_off = 0.0, best_on = 0.0;
        for (int r = 0; r < rounds; ++r) {
            off = workload.solveClosedLoop(cpu, ticks);
            on = workload.solveClosedLoop(cpu, ticks, gated);
            best_off = std::max(best_off, off.ticks_per_s);
            best_on = std::max(best_on, on.ticks_per_s);
        }

        const double speedup =
            best_off > 0.0 ? best_on / best_off : 0.0;
        std::printf("%-6s %-8s %10.0f %12.4f %8s %18s %8s\n", e.name,
                    "off", best_off, off.tracking_err, "", "", "");
        char eng[32];
        std::snprintf(eng, sizeof eng, "%lld/%lld/%lld",
                      on.dense_refreshes, on.gated_refreshes,
                      on.skipped_refreshes);
        std::printf("%-6s %-8s %10.0f %12.4f %7.2fx %18s %7.0f%%\n",
                    e.name, "on", best_on, on.tracking_err, speedup,
                    eng, on.mean_live_density * 100.0);

        const std::string k = std::string("mpc_") + e.name;
        report.add(k + "_dense_ticks_per_s", best_off);
        report.add(k + "_gated_ticks_per_s", best_on);
        report.add(k + "_dense_tracking_err", off.tracking_err);
        report.add(k + "_gated_tracking_err", on.tracking_err);
        report.add(k + "_ticks_speedup", speedup);
        report.add(k + "_gated_refreshes",
                   static_cast<double>(on.gated_refreshes));
        report.add(k + "_skipped_refreshes",
                   static_cast<double>(on.skipped_refreshes));
        report.add(k + "_mean_live_density", on.mean_live_density);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    banner("sparsity gating — compute only the Jacobian columns "
           "that moved");
    JsonReport report;

    gatedCpuSection(report);
    accelSection(report);
    mpcSection(report);

    maybeWriteJson(argc, argv, report, "BENCH_sparsity.json");
    return 0;
}
