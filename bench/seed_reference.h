/**
 * @file
 * Frozen copy of the seed's allocating ∆FD implementation (RNEA,
 * MMinvGen and ∆RNEA with per-call std::vector/MatrixX temporaries,
 * as shipped in the v0 seed). Used exclusively as the benchmark
 * baseline for the zero-allocation workspace/batched engine, so the
 * "seed single-point loop" column keeps measuring the original code
 * even as the library evolves. Do not use outside the bench harness.
 */

#ifndef DADU_BENCH_SEED_REFERENCE_H
#define DADU_BENCH_SEED_REFERENCE_H

#include <vector>

#include "algorithms/dynamics.h"
#include "algorithms/mminv_gen.h"
#include "algorithms/rnea.h"
#include "algorithms/rnea_derivatives.h"
#include "linalg/factorize.h"
#include "linalg/mat.h"
#include "model/robot_model.h"
#include "spatial/cross.h"
#include "spatial/transform.h"

namespace dadu::bench::seedref {

using algo::FdDerivatives;
using algo::RneaDerivatives;
using algo::RneaResult;
using linalg::Mat66;
using linalg::MatrixX;
using linalg::Vec6;
using linalg::VectorX;
using model::RobotModel;
using spatial::crossForce;
using spatial::crossMotion;
using spatial::SpatialTransform;

inline RneaResult
rnea(const RobotModel &robot, const VectorX &q, const VectorX &qd,
     const VectorX &qdd, const std::vector<Vec6> *fext = nullptr)
{
    const int nb = robot.nb();
    RneaResult res;
    res.tau.resize(robot.nv());
    res.v.assign(nb, Vec6::zero());
    res.a.assign(nb, Vec6::zero());
    res.f.assign(nb, Vec6::zero());

    std::vector<SpatialTransform> xup(nb);

    for (int i = 0; i < nb; ++i) {
        const int lam = robot.parent(i);
        xup[i] = robot.linkTransform(i, q);
        const auto &s = robot.subspace(i);
        const Vec6 vj = s.apply(robot.jointVelocity(i, qd));
        const Vec6 aj = s.apply(robot.jointVelocity(i, qdd));

        const Vec6 vparent =
            lam == -1 ? Vec6::zero() : res.v[static_cast<size_t>(lam)];
        const Vec6 aparent =
            lam == -1 ? robot.gravity() : res.a[static_cast<size_t>(lam)];

        res.v[i] = xup[i].applyMotion(vparent) + vj;
        res.a[i] = xup[i].applyMotion(aparent) + aj +
                   crossMotion(res.v[i], vj);
        res.f[i] = robot.link(i).inertia.apply(res.a[i]) +
                   crossForce(res.v[i],
                              robot.link(i).inertia.apply(res.v[i]));
        if (fext)
            res.f[i] -= (*fext)[i];
    }

    for (int i = nb - 1; i >= 0; --i) {
        const auto &s = robot.subspace(i);
        const VectorX taui = s.applyTranspose(res.f[i]);
        res.tau.setSegment(robot.link(i).vIndex, taui);
        const int lam = robot.parent(i);
        if (lam != -1)
            res.f[lam] += xup[i].applyTransposeForce(res.f[i]);
    }
    return res;
}

inline VectorX
biasForce(const RobotModel &robot, const VectorX &q, const VectorX &qd,
          const std::vector<Vec6> *fext = nullptr)
{
    return rnea(robot, q, qd, VectorX(robot.nv()), fext).tau;
}

inline MatrixX
mminvGen(const RobotModel &robot, const VectorX &q, bool out_m,
         bool out_minv)
{
    const int nb = robot.nb();
    const int nv = robot.nv();
    MatrixX out(nv, nv);

    std::vector<SpatialTransform> xup(nb);
    std::vector<Mat66> ia(nb, Mat66::zero());
    std::vector<MatrixX> f(nb, MatrixX(6, nv));
    std::vector<std::vector<Vec6>> ucols(nb);
    std::vector<MatrixX> dinv(nb);

    std::vector<std::vector<int>> tree_cols(nb);
    for (int i = 0; i < nb; ++i) {
        for (int j : robot.subtree(i)) {
            const int vj = robot.link(j).vIndex;
            for (int k = 0; k < robot.subspace(j).nv(); ++k)
                tree_cols[i].push_back(vj + k);
        }
    }

    for (int i = nb - 1; i >= 0; --i) {
        const int lam = robot.parent(i);
        xup[i] = robot.linkTransform(i, q);
        const auto &s = robot.subspace(i);
        const int ni = s.nv();
        const int vi = robot.link(i).vIndex;

        ia[i] += robot.link(i).inertia.toMatrix();

        ucols[i].resize(ni);
        for (int k = 0; k < ni; ++k)
            ucols[i][k] = ia[i] * s.col(k);
        MatrixX d(ni, ni);
        for (int r = 0; r < ni; ++r)
            for (int k = 0; k < ni; ++k)
                d(r, k) = s.col(r).dot(ucols[i][k]);
        dinv[i] = linalg::Ldlt(d).inverse();

        if (out_minv) {
            out.setBlock(vi, vi, dinv[i]);
            for (int j : tree_cols[i]) {
                if (j >= vi && j < vi + ni)
                    continue;
                VectorX stf(ni);
                for (int r = 0; r < ni; ++r) {
                    double acc = 0.0;
                    for (int a = 0; a < 6; ++a)
                        acc += s.col(r)[a] * f[i](a, j);
                    stf[r] = acc;
                }
                for (int r = 0; r < ni; ++r) {
                    double val = 0.0;
                    for (int k = 0; k < ni; ++k)
                        val -= dinv[i](r, k) * stf[k];
                    out(vi + r, j) = val;
                }
            }
        }
        if (out_m) {
            out.setBlock(vi, vi, d);
            for (int j : tree_cols[i]) {
                if (j >= vi && j < vi + ni)
                    continue;
                for (int r = 0; r < ni; ++r) {
                    double acc = 0.0;
                    for (int a = 0; a < 6; ++a)
                        acc += s.col(r)[a] * f[i](a, j);
                    out(vi + r, j) = acc;
                    out(j, vi + r) = acc;
                }
            }
        }

        if (lam != -1) {
            if (out_minv) {
                for (int j : tree_cols[i]) {
                    for (int a = 0; a < 6; ++a) {
                        double acc = 0.0;
                        for (int k = 0; k < ni; ++k)
                            acc += ucols[i][k][a] * out(vi + k, j);
                        f[i](a, j) += acc;
                    }
                }
                for (int r = 0; r < ni; ++r) {
                    for (int k = 0; k < ni; ++k) {
                        const double dk = dinv[i](r, k);
                        if (dk == 0.0)
                            continue;
                        for (int a = 0; a < 6; ++a)
                            for (int b = 0; b < 6; ++b)
                                ia[i](a, b) -=
                                    dk * ucols[i][r][a] * ucols[i][k][b];
                    }
                }
            }
            if (out_m) {
                for (int k = 0; k < ni; ++k)
                    for (int a = 0; a < 6; ++a)
                        f[i](a, vi + k) = ucols[i][k][a];
            }
            for (int j : tree_cols[i]) {
                Vec6 col;
                for (int a = 0; a < 6; ++a)
                    col[a] = f[i](a, j);
                const Vec6 up = xup[i].applyTransposeForce(col);
                for (int a = 0; a < 6; ++a)
                    f[lam](a, j) += up[a];
            }
            const Mat66 xm = xup[i].toMatrix();
            ia[lam] += xm.transpose() * ia[i] * xm;
        }
    }

    if (out_minv) {
        std::vector<MatrixX> p(nb, MatrixX(6, nv));
        for (int i = 0; i < nb; ++i) {
            const int lam = robot.parent(i);
            const auto &s = robot.subspace(i);
            const int ni = s.nv();
            const int vi = robot.link(i).vIndex;

            if (lam != -1) {
                for (int j = vi; j < nv; ++j) {
                    Vec6 pcol;
                    for (int a = 0; a < 6; ++a)
                        pcol[a] = p[lam](a, j);
                    const Vec6 xp = xup[i].applyMotion(pcol);
                    VectorX ut(ni);
                    for (int r = 0; r < ni; ++r)
                        ut[r] = ucols[i][r].dot(xp);
                    for (int r = 0; r < ni; ++r) {
                        double val = 0.0;
                        for (int k = 0; k < ni; ++k)
                            val += dinv[i](r, k) * ut[k];
                        out(vi + r, j) -= val;
                    }
                }
            }
            for (int j = vi; j < nv; ++j) {
                Vec6 pcol;
                for (int k = 0; k < ni; ++k)
                    pcol += s.col(k) * out(vi + k, j);
                if (lam != -1) {
                    Vec6 plam;
                    for (int a = 0; a < 6; ++a)
                        plam[a] = p[lam](a, j);
                    pcol += xup[i].applyMotion(plam);
                }
                for (int a = 0; a < 6; ++a)
                    p[i](a, j) = pcol[a];
            }
        }
        for (int r = 0; r < nv; ++r)
            for (int c = r + 1; c < nv; ++c)
                out(c, r) = out(r, c);
    }
    return out;
}

namespace detail {

struct ColJacobian
{
    explicit ColJacobian(int nv) : cols(nv, Vec6::zero()) {}

    std::vector<Vec6> cols;
};

} // namespace detail

inline RneaDerivatives
rneaDerivatives(const RobotModel &robot, const VectorX &q,
                const VectorX &qd, const VectorX &qdd,
                const std::vector<Vec6> *fext = nullptr)
{
    using detail::ColJacobian;
    const int nb = robot.nb();
    const int nv = robot.nv();

    RneaDerivatives res;
    res.dtau_dq.resize(nv, nv);
    res.dtau_dqd.resize(nv, nv);

    std::vector<SpatialTransform> xup(nb);
    std::vector<Vec6> v(nb), a(nb), f(nb);
    std::vector<std::vector<int>> active(nb);

    std::vector<ColJacobian> dv_dq(nb, ColJacobian(nv));
    std::vector<ColJacobian> dv_dqd(nb, ColJacobian(nv));
    std::vector<ColJacobian> da_dq(nb, ColJacobian(nv));
    std::vector<ColJacobian> da_dqd(nb, ColJacobian(nv));
    std::vector<ColJacobian> df_dq(nb, ColJacobian(nv));
    std::vector<ColJacobian> df_dqd(nb, ColJacobian(nv));

    for (int i = 0; i < nb; ++i) {
        const int lam = robot.parent(i);
        xup[i] = robot.linkTransform(i, q);
        const auto &s = robot.subspace(i);
        const int ni = s.nv();
        const int vi = robot.link(i).vIndex;

        if (lam != -1)
            active[i] = active[lam];
        for (int k = 0; k < ni; ++k)
            active[i].push_back(vi + k);

        const Vec6 vj = s.apply(robot.jointVelocity(i, qd));
        const Vec6 aj = s.apply(robot.jointVelocity(i, qdd));
        const Vec6 vparent = lam == -1 ? Vec6::zero() : v[lam];
        const Vec6 aparent = lam == -1 ? robot.gravity() : a[lam];

        const Vec6 vc = xup[i].applyMotion(vparent);
        const Vec6 ac = xup[i].applyMotion(aparent);
        v[i] = vc + vj;
        a[i] = ac + aj + crossMotion(v[i], vj);

        if (lam != -1) {
            for (int col : active[lam]) {
                const Vec6 dvq = xup[i].applyMotion(dv_dq[lam].cols[col]);
                const Vec6 dvqd = xup[i].applyMotion(dv_dqd[lam].cols[col]);
                dv_dq[i].cols[col] = dvq;
                dv_dqd[i].cols[col] = dvqd;
                da_dq[i].cols[col] =
                    xup[i].applyMotion(da_dq[lam].cols[col]) +
                    crossMotion(dvq, vj);
                da_dqd[i].cols[col] =
                    xup[i].applyMotion(da_dqd[lam].cols[col]) +
                    crossMotion(dvqd, vj);
            }
        }
        for (int k = 0; k < ni; ++k) {
            const int col = vi + k;
            const Vec6 sk = s.col(k);
            const Vec6 dvq = crossMotion(vc, sk);
            dv_dq[i].cols[col] = dvq;
            dv_dqd[i].cols[col] = sk;
            da_dq[i].cols[col] =
                crossMotion(ac, sk) + crossMotion(dvq, vj);
            da_dqd[i].cols[col] =
                crossMotion(sk, vj) + crossMotion(v[i], sk);
        }

        const auto &inertia = robot.link(i).inertia;
        const Vec6 iv = inertia.apply(v[i]);
        f[i] = inertia.apply(a[i]) + crossForce(v[i], iv);
        if (fext)
            f[i] -= (*fext)[i];
        for (int col : active[i]) {
            df_dq[i].cols[col] =
                inertia.apply(da_dq[i].cols[col]) +
                crossForce(dv_dq[i].cols[col], iv) +
                crossForce(v[i], inertia.apply(dv_dq[i].cols[col]));
            df_dqd[i].cols[col] =
                inertia.apply(da_dqd[i].cols[col]) +
                crossForce(dv_dqd[i].cols[col], iv) +
                crossForce(v[i], inertia.apply(dv_dqd[i].cols[col]));
        }
    }

    for (int i = nb - 1; i >= 0; --i) {
        const int lam = robot.parent(i);
        const auto &s = robot.subspace(i);
        const int ni = s.nv();
        const int vi = robot.link(i).vIndex;

        for (int col = 0; col < nv; ++col) {
            for (int r = 0; r < ni; ++r) {
                res.dtau_dq(vi + r, col) = s.col(r).dot(df_dq[i].cols[col]);
                res.dtau_dqd(vi + r, col) =
                    s.col(r).dot(df_dqd[i].cols[col]);
            }
        }

        if (lam != -1) {
            for (int col = 0; col < nv; ++col) {
                Vec6 dq_col = df_dq[i].cols[col];
                if (col >= vi && col < vi + ni)
                    dq_col += crossForce(s.col(col - vi), f[i]);
                if (dq_col.maxAbs() != 0.0) {
                    df_dq[lam].cols[col] +=
                        xup[i].applyTransposeForce(dq_col);
                }
                const Vec6 &dqd_col = df_dqd[i].cols[col];
                if (dqd_col.maxAbs() != 0.0) {
                    df_dqd[lam].cols[col] +=
                        xup[i].applyTransposeForce(dqd_col);
                }
            }
            f[lam] += xup[i].applyTransposeForce(f[i]);
        }
    }
    return res;
}

/** The seed ∆FD: steps ①-⑥ with per-call heap temporaries. */
inline FdDerivatives
fdDerivatives(const RobotModel &robot, const VectorX &q, const VectorX &qd,
              const VectorX &tau, const std::vector<Vec6> *fext = nullptr)
{
    FdDerivatives out;
    const VectorX c = biasForce(robot, q, qd, fext);   // step ①
    out.minv = mminvGen(robot, q, false, true);        // step ②
    out.qdd = out.minv * (tau - c);                    // step ③
    const RneaDerivatives did =
        rneaDerivatives(robot, q, qd, out.qdd, fext);  // steps ④⑤
    out.dqdd_dq = -(out.minv * did.dtau_dq);           // step ⑥
    out.dqdd_dqd = -(out.minv * did.dtau_dqd);
    return out;
}

} // namespace dadu::bench::seedref

#endif // DADU_BENCH_SEED_REFERENCE_H
