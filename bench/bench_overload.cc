/**
 * @file
 * Fault-tolerant serving under overload: offered-load sweep with one
 * of four lanes killed mid-run.
 *
 * Scenario (iiwa, 4 analytic-backend lanes, every lane wrapped in a
 * FaultInjectingBackend): two bulk clients keep large untagged ∆FD
 * jobs in flight — the window scales with the offered-load factor —
 * while three latency-critical clients submit small deadline-tagged
 * ∆FD jobs at an MPC-style pace and block on them. All lanes draw
 * rare transient submit faults from seeded plans; lane 3 dies
 * permanently partway through every run, so failover is part of the
 * measured path. The same faulted traffic runs under two configs:
 *
 *   fifo — the no-admission baseline: FIFO pop, nothing shed, every
 *          critical job queues behind the bulk backlog;
 *   qos  — EDF + coalescing + stealing + result validation, with the
 *          deadline admission policy bounding per-lane bulk depth
 *          (overload is shed as explicit Rejected outcomes, never
 *          silently, and never for tagged traffic).
 *
 * The numbers to watch (BENCH_overload.json via --json):
 *   crit_hit_qos_2x  >= 0.9   (acceptance: deadline-hit rate of the
 *                              critical clients under ~2x overload)
 *   crit_hit_fifo_2x  < crit_hit_qos_2x
 *   crit_rejected_*   == 0    (admission sheds bulk, not critical)
 */

#include "bench_util.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/backends.h"
#include "runtime/fault.h"
#include "runtime/obs/export.h"
#include "runtime/sched/admission.h"
#include "runtime/sched/policy.h"
#include "runtime/server.h"

using namespace dadu;
using namespace dadu::bench;

namespace {

using runtime::DynamicsResult;
using runtime::FaultInjectingBackend;
using runtime::FaultPlan;
using runtime::JobOutcome;
using runtime::obs::LatencyHistogram;
using runtime::sched::PolicyKind;
using runtime::sched::SchedConfig;

constexpr int kLanes = 4;
constexpr int kBulkClients = 2;
constexpr int kBulkN = 512;       ///< tasks per bulk job (never merged)
constexpr int kBaseDepth = 4;     ///< in-flight bulk jobs per client at 1x
constexpr int kCritClients = 3;
constexpr int kCritN = 8;         ///< tasks per latency-critical job
constexpr int kCritPeriodUs = 2000;
constexpr double kTargetServeUs = 220000.0; ///< bulk sweep length at 1x

struct LoadResult
{
    double wall_us = 0.0;
    double offered_qps = 0.0; ///< submitted jobs per wall second
    double served_qps = 0.0;  ///< completed jobs per wall second
    LatencyHistogram crit_hist; ///< wall submit→completion latency
    double crit_hit = 0.0;    ///< deadline-hit rate of critical jobs
    double shed_rate = 0.0;   ///< rejected / submitted
    std::size_t crit_total = 0;
    std::size_t crit_rejected = 0;
    runtime::sched::SchedStats sched;
};

/** Median wall time of one n-task ∆FD batch on an unloaded lane. */
double
calibrateBatchWallUs(Accelerator &accel, int n)
{
    runtime::AnalyticBackend backend(accel);
    const auto reqs = randomBatch(accel.robot(), n, 3);
    std::vector<DynamicsResult> res(n);
    LatencyHistogram walls;
    for (int i = 0; i < 5; ++i) {
        const double t0 = nowUs();
        backend.submit(FunctionType::DeltaFD, reqs.data(), n, res.data(),
                       nullptr);
        walls.record(nowUs() - t0);
    }
    // Bucketed median — within 4.4% of exact, plenty for calibration.
    return walls.percentileUs(0.5);
}

LoadResult
runOverload(Accelerator &accel, const SchedConfig &cfg,
            bool use_admission, int load, int bulk_jobs,
            long die_after, double deadline_budget_us,
            const char *trace_path = nullptr)
{
    const RobotModel &robot = accel.robot();
    runtime::AnalyticBackend base(accel);

    // Four lanes, every one behind a seeded fault decorator; lane 3
    // additionally dies for good partway through the sweep.
    std::vector<std::unique_ptr<runtime::DynamicsBackend>> inners;
    std::vector<std::unique_ptr<FaultInjectingBackend>> lanes;
    for (int l = 0; l < kLanes; ++l) {
        FaultPlan plan;
        plan.seed = 17u + static_cast<unsigned>(l);
        plan.transient_fail_prob = 0.01;
        if (l == 3)
            plan.die_after_batches = die_after;
        inners.push_back(l == 0 ? nullptr : base.clone());
        lanes.push_back(std::make_unique<FaultInjectingBackend>(
            l == 0 ? base : *inners[l], plan));
    }

    runtime::DynamicsServer server;
    for (auto &lane : lanes)
        server.addBackend(*lane);
    SchedConfig run_cfg = cfg;
    if (trace_path)
        run_cfg.obs.trace = true; // fault marks + failover in the trace
    server.setPolicy(run_cfg);
    if (trace_path)
        // Injected faults record onto the injecting lane's own ring
        // (same producer thread as the lane's lifecycle events).
        for (int l = 0; l < kLanes; ++l)
            lanes[static_cast<std::size_t>(l)]->setTraceRing(
                &server.traceBuffer()->lane(l), l);
    if (use_admission) {
        runtime::sched::AdmissionConfig acfg;
        acfg.max_queue_depth = 3; // bulk backlog bound per lane
        server.setAdmission(runtime::sched::makeDeadlineAdmission(acfg));
    }
    server.start();

    const double t0 = nowUs();
    std::atomic<bool> bulk_done{false};
    std::atomic<int> bulk_active{kBulkClients};
    std::atomic<long> submitted{0}, completed{0};

    // Bulk clients: fixed job count, in-flight window scaled by the
    // offered-load factor. A shed job completes instantly, so under
    // admission the client immediately offers the next — the offered
    // rate rises with shedding, which is the point of the sweep.
    std::vector<std::thread> bulk;
    for (int b = 0; b < kBulkClients; ++b) {
        bulk.emplace_back([&, b] {
            const int depth = kBaseDepth * load;
            const auto reqs = randomBatch(robot, kBulkN, 100 + b);
            std::vector<std::vector<DynamicsResult>> res(
                depth, std::vector<DynamicsResult>(kBulkN));
            std::vector<int> jobs;
            for (int i = 0; i < bulk_jobs; ++i) {
                if (jobs.size() >= static_cast<std::size_t>(depth)) {
                    server.wait(jobs.front());
                    if (server.jobOutcome(jobs.front()) ==
                        JobOutcome::Completed)
                        completed.fetch_add(1);
                    jobs.erase(jobs.begin());
                }
                jobs.push_back(server.submit(
                    FunctionType::DeltaFD, reqs.data(), kBulkN,
                    res[i % depth].data(),
                    runtime::DynamicsServer::kLeastLoaded));
                submitted.fetch_add(1);
            }
            for (int j : jobs) {
                server.wait(j);
                if (server.jobOutcome(j) == JobOutcome::Completed)
                    completed.fetch_add(1);
            }
            if (bulk_active.fetch_sub(1, std::memory_order_acq_rel) == 1)
                bulk_done.store(true, std::memory_order_release);
        });
    }

    // Latency-critical clients: small deadline-tagged jobs at a fixed
    // pace for as long as the bulk sweep lasts; wall latency and the
    // per-job deadline outcome measured around submit + wait.
    LatencyHistogram latencies;
    std::size_t crit_total = 0, crit_hits = 0, crit_rejected = 0;
    std::mutex crit_mu;
    std::vector<std::thread> critical;
    for (int c = 0; c < kCritClients; ++c) {
        critical.emplace_back([&, c] {
            const auto reqs = randomBatch(robot, kCritN, 200 + c);
            std::vector<DynamicsResult> res(kCritN);
            LatencyHistogram mine;
            std::size_t total = 0, hits = 0, rejected = 0;
            while (!bulk_done.load(std::memory_order_acquire)) {
                runtime::sched::JobTag tag;
                tag.deadline_us = nowUs() + deadline_budget_us;
                const double start = nowUs();
                const int job = server.submit(
                    FunctionType::DeltaFD, reqs.data(), kCritN,
                    res.data(), runtime::DynamicsServer::kLeastLoaded,
                    tag);
                submitted.fetch_add(1);
                server.wait(job);
                mine.record(nowUs() - start);
                ++total;
                const JobOutcome outcome = server.jobOutcome(job);
                if (outcome == JobOutcome::Rejected)
                    ++rejected;
                else if (outcome == JobOutcome::Completed) {
                    completed.fetch_add(1);
                    if (!server.jobMissedDeadline(job))
                        ++hits;
                }
                std::this_thread::sleep_for(
                    std::chrono::microseconds(kCritPeriodUs));
            }
            std::lock_guard<std::mutex> lock(crit_mu);
            latencies.merge(mine);
            crit_total += total;
            crit_hits += hits;
            crit_rejected += rejected;
        });
    }
    for (auto &t : critical)
        t.join();
    for (auto &t : bulk)
        t.join();
    server.stop();

    LoadResult out;
    out.wall_us = nowUs() - t0;
    runtime::ServerStats stats;
    server.drain(&stats, &out.sched);
    const double wall_s = out.wall_us / 1e6;
    out.offered_qps = wall_s > 0.0 ? submitted.load() / wall_s : 0.0;
    out.served_qps = wall_s > 0.0 ? completed.load() / wall_s : 0.0;
    out.crit_hist = latencies;
    out.crit_total = crit_total;
    out.crit_rejected = crit_rejected;
    out.crit_hit = crit_total > 0
                       ? static_cast<double>(crit_hits) / crit_total
                       : 0.0;
    out.shed_rate =
        submitted.load() > 0
            ? static_cast<double>(out.sched.rejected_jobs) /
                  static_cast<double>(submitted.load())
            : 0.0;
    if (trace_path && server.traceBuffer()) {
        if (runtime::obs::writeChromeTrace(*server.traceBuffer(),
                                           trace_path))
            std::printf("wrote %s\n", trace_path);
        else
            std::printf("failed to write %s\n", trace_path);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Overload + faults — shedding, failover, critical deadlines");
    const RobotModel robot = model::makeIiwa();
    Accelerator accel(robot);

    // Calibrate the scenario to the machine: bulk sweep length, the
    // lane-3 death point, and a deadline budget that a QoS-scheduled
    // critical job makes comfortably (one in-flight bulk batch plus
    // its own service) but a FIFO backlog of them blows through. The
    // calibrated single-lane batch wall time understates the loaded
    // service time when the lanes outnumber the cores (they then
    // time-slice one CPU), so the budget scales with oversubscription.
    const double bulk_wall = calibrateBatchWallUs(accel, kBulkN);
    const double crit_wall = calibrateBatchWallUs(accel, kCritN);
    const int bulk_jobs = std::min(
        240, std::max(16, static_cast<int>(kLanes * kTargetServeUs /
                                           (bulk_wall * kBulkClients))));
    const long die_after =
        std::max<long>(4, kBulkClients * bulk_jobs / (2 * kLanes));
    const unsigned cores =
        std::max(1u, std::thread::hardware_concurrency());
    const double oversub =
        std::max(1.0, static_cast<double>(kLanes) / cores);
    const double deadline_budget =
        oversub * (2.5 * bulk_wall + 8.0 * crit_wall) + 2000.0;

    std::printf("\ncalibration: %d-task dFD %.0f us, %d-task dFD %.0f us"
                "\n%d bulk clients x %d jobs x %d tasks, %d critical "
                "clients x %d tasks @ %d us,\ndeadline budget %.0f us "
                "(%.0fx lane oversubscription on %u cores),\n"
                "%d lanes (transient faults on all, lane 3 dies after "
                "%ld batches)\n",
                kBulkN, bulk_wall, kCritN, crit_wall, kBulkClients,
                bulk_jobs, kBulkN, kCritClients, kCritN, kCritPeriodUs,
                deadline_budget, oversub, cores, kLanes, die_after);

    SchedConfig fifo_cfg; // FIFO, no validation, no admission
    SchedConfig qos_cfg;
    qos_cfg.kind = PolicyKind::Edf;
    qos_cfg.coalesce = true;
    qos_cfg.steal = true;
    qos_cfg.validate_results = true;
    qos_cfg.max_retries = 3;
    struct Entry
    {
        const char *name;
        const SchedConfig &cfg;
        bool admission;
    };
    const Entry entries[] = {{"fifo", fifo_cfg, false},
                             {"qos", qos_cfg, true}};

    std::printf("\n%6s %5s %9s %9s %10s %10s %8s %8s %7s %7s\n", "cfg",
                "load", "offer/s", "serve/s", "crit p50", "crit p99",
                "hit", "shed", "deaths", "requeue");
    JsonReport report;
    const runtime::obs::MetricEmitFn emit =
        [&report](const std::string &key, double value) {
            report.add(key, value);
        };
    // --trace: the qos 2x cell (faults + failover + shedding, the
    // interesting one) additionally records lifecycle + fault events
    // and exports them as trace_overload.json.
    const bool want_trace = hasFlag(argc, argv, "--trace");
    for (const Entry &e : entries) {
        for (int load = 1; load <= 2; ++load) {
            const bool traced = want_trace && e.admission && load == 2;
            const LoadResult r =
                runOverload(accel, e.cfg, e.admission, load, bulk_jobs,
                            die_after, deadline_budget,
                            traced ? "trace_overload.json" : nullptr);
            const double p50 = r.crit_hist.percentileUs(0.50);
            const double p99 = r.crit_hist.percentileUs(0.99);
            std::printf("%6s %4dx %9.0f %9.0f %9.0fu %9.0fu %7.1f%% "
                        "%7.1f%% %7zu %7zu\n",
                        e.name, load, r.offered_qps, r.served_qps,
                        p50, p99, 100.0 * r.crit_hit,
                        100.0 * r.shed_rate, r.sched.lane_deaths,
                        r.sched.requeued_items);
            const std::string k =
                std::string(e.name) + "_" + std::to_string(load) + "x";
            report.add("qps_" + k, r.served_qps);
            report.add("offered_qps_" + k, r.offered_qps);
            report.add("crit_p99_" + k + "_us", p99);
            report.add("crit_hit_" + k, r.crit_hit);
            report.add("shed_rate_" + k, r.shed_rate);
            report.add("crit_rejected_" + k,
                       static_cast<double>(r.crit_rejected));
            report.add("lane_deaths_" + k,
                       static_cast<double>(r.sched.lane_deaths));
            // Full critical-latency distribution per cell.
            int nonzero = 0;
            for (int i = 0; i < LatencyHistogram::kBuckets; ++i)
                nonzero += r.crit_hist.bucketCount(i) > 0 ? 1 : 0;
            report.add("crit_hist_" + k + "_nonzero",
                       static_cast<double>(nonzero));
            emitHistogram(r.crit_hist, "crit_hist_" + k, emit);
        }
    }
    runtime::obs::emitHistogramScheme(emit);

    maybeWriteJson(argc, argv, report, "BENCH_overload.json");
    return 0;
}
