/**
 * @file
 * Experiment E5/E9 — Fig. 16: batched ∆iFD (iiwa) against the
 * platforms of [33]: i7-7700 (4 threads), RTX 2080, and the
 * Robomorphic FPGA, for batch sizes 16/32/64/128.
 *
 * Also prints the single-task latency comparison of Section VI-A:
 * Dadu-RBD 0.76 µs vs Robomorphic 0.61 µs for iiwa ∆iFD (Dadu
 * trades a little latency for much higher throughput).
 */

#include "bench_util.h"
#include "seed_reference.h"

#include <memory>
#include <thread>

#include "algorithms/batched.h"
#include "algorithms/dynamics.h"
#include "algorithms/soa/kernels.h"
#include "algorithms/workspace.h"
#include "runtime/backends.h"

using namespace dadu;
using namespace dadu::bench;

namespace {

/**
 * Measured host-CPU ∆FD: the seed's allocating single-point loop
 * against the workspace single-point loop and the batched engine
 * (PR 1's zero-allocation batched dynamics). The configurations are
 * timed in interleaved rounds — one sweep of each per round, best
 * sweep kept — so load spikes hit every configuration alike instead
 * of skewing whichever happened to be running.
 */
void
measuredCpuSection(const RobotModel &robot, JsonReport &report)
{
    banner("measured CPU ∆FD throughput (points/sec), higher is better");
    const int points = 128;
    const int rounds = 7;
    std::mt19937 rng(17);
    std::vector<linalg::VectorX> qs, qds, taus;
    for (int i = 0; i < points; ++i) {
        qs.push_back(robot.randomConfiguration(rng));
        qds.push_back(robot.randomVelocity(rng));
        taus.push_back(robot.randomVelocity(rng));
    }

    // Environment stamps: the committed numbers are meaningless
    // without them (a 1-core container shows 4t ≈ 1t, and the SoA
    // speedup depends on the lane width the engines ran at).
    const double hw =
        static_cast<double>(std::thread::hardware_concurrency());
    report.add("hardware_concurrency", hw);
    report.add("lane_width", algo::soa::defaultLaneWidth());

    algo::DynamicsWorkspace ws(robot);
    algo::FdDerivatives d;
    std::vector<std::unique_ptr<algo::BatchedDynamics>> engines;
    const std::vector<int> engine_threads = {2, 4, 8};
    for (int threads : engine_threads)
        engines.push_back(
            std::make_unique<algo::BatchedDynamics>(robot, threads));

    // Single-thread engines per lane width: the W sweep isolates the
    // SIMD contribution from threading (W = 1 is the scalar path).
    std::vector<std::unique_ptr<algo::BatchedDynamics>> lane_engines;
    const std::vector<int> lane_widths = {1, 4, 8, 16};
    for (int w : lane_widths) {
        lane_engines.push_back(
            std::make_unique<algo::BatchedDynamics>(robot, 1));
        lane_engines.back()->setLaneWidth(w);
    }

    // Sweeps: seed loop, workspace loop, one per engine config.
    const auto seed_sweep = [&] {
        volatile double sink = 0.0;
        for (int i = 0; i < points; ++i) {
            const auto fd = seedref::fdDerivatives(robot, qs[i], qds[i],
                                                   taus[i]);
            sink = fd.dqdd_dq(0, 0);
        }
        (void)sink;
    };
    const auto ws_sweep = [&] {
        volatile double sink = 0.0;
        for (int i = 0; i < points; ++i) {
            algo::fdDerivatives(robot, ws, qs[i], qds[i], taus[i], d);
            sink = d.dqdd_dq(0, 0);
        }
        (void)sink;
    };
    const auto engine_sweep = [&](algo::BatchedDynamics &engine) {
        const auto &out = engine.batchFdDerivatives(qs, qds, taus);
        volatile double sink = out[0].dqdd_dq(0, 0);
        (void)sink;
    };

    // Warm-up once, then interleaved timed rounds, best-of kept.
    seed_sweep();
    ws_sweep();
    for (auto &e : engines)
        engine_sweep(*e);
    for (auto &e : lane_engines)
        engine_sweep(*e);
    double seed_us = 0.0, ws_us = 0.0;
    std::vector<double> engine_us(engines.size(), 0.0);
    std::vector<double> lane_us(lane_engines.size(), 0.0);
    for (int rep = 0; rep < rounds; ++rep) {
        double t0 = nowUs();
        seed_sweep();
        double dt = nowUs() - t0;
        if (rep == 0 || dt < seed_us)
            seed_us = dt;
        t0 = nowUs();
        ws_sweep();
        dt = nowUs() - t0;
        if (rep == 0 || dt < ws_us)
            ws_us = dt;
        for (std::size_t e = 0; e < engines.size(); ++e) {
            t0 = nowUs();
            engine_sweep(*engines[e]);
            dt = nowUs() - t0;
            if (rep == 0 || dt < engine_us[e])
                engine_us[e] = dt;
        }
        for (std::size_t e = 0; e < lane_engines.size(); ++e) {
            t0 = nowUs();
            engine_sweep(*lane_engines[e]);
            dt = nowUs() - t0;
            if (rep == 0 || dt < lane_us[e])
                lane_us[e] = dt;
        }
    }

    const double seed_pps = points / (seed_us * 1e-6);
    const double ws_pps = points / (ws_us * 1e-6);
    std::printf("%-34s %12.0f pts/s\n",
                "seed single-point loop (1t):", seed_pps);
    report.add("seed_pts_per_sec", seed_pps);
    std::printf("%-34s %12.0f pts/s   (%.2fx seed)\n",
                "workspace (reused arena, 1t):", ws_pps, ws_pps / seed_pps);
    report.add("workspace_1t_pts_per_sec", ws_pps);

    for (std::size_t e = 0; e < engines.size(); ++e) {
        const int threads = engine_threads[e];
        const double pps = points / (engine_us[e] * 1e-6);
        char label[64];
        std::snprintf(label, sizeof label, "batched engine (%dt, eff %dt):",
                      threads, engines[e]->threadCount());
        std::printf("%-34s %12.0f pts/s   (%.2fx seed, %.2fx 1t)\n",
                    label, pps, pps / seed_pps, pps / ws_pps);
        char key[64];
        std::snprintf(key, sizeof key, "batched_%dt_pts_per_sec", threads);
        report.add(key, pps);
        std::snprintf(key, sizeof key, "batched_%dt_threads_effective",
                      threads);
        report.add(key, engines[e]->threadCount());
        if (threads == 4) {
            report.add("batched_4t_speedup_vs_seed", pps / seed_pps);
            report.add("batched_4t_speedup_vs_1t", pps / ws_pps);
        }
    }

    for (std::size_t e = 0; e < lane_engines.size(); ++e) {
        const int w = lane_widths[e];
        const double pps = points / (lane_us[e] * 1e-6);
        char label[64];
        std::snprintf(label, sizeof label,
                      w == 1 ? "engine 1t, scalar path (W=%d):"
                             : "engine 1t, SoA lanes (W=%d):",
                      w);
        std::printf("%-34s %12.0f pts/s   (%.2fx seed, %.2fx 1t)\n",
                    label, pps, pps / seed_pps, pps / ws_pps);
        char key[64];
        std::snprintf(key, sizeof key, "soa_w%d_1t_pts_per_sec", w);
        report.add(key, pps);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Fig. 16 — batched iiwa ∆iFD time (us), lower is better");
    const RobotModel robot = model::makeIiwa();
    Accelerator accel(robot);
    runtime::AcceleratorBackend backend(accel);
    std::vector<runtime::DynamicsResult> outputs;

    // ∆iFD inputs include q̈ and M⁻¹ (computed up front, as in the
    // Robomorphic protocol where the CPU supplies them).
    auto make_batch = [&](int n) {
        auto batch = randomBatch(robot, n);
        for (auto &t : batch) {
            const auto pre =
                algo::fdDerivatives(robot, t.q, t.qd, t.qdd_or_tau);
            t.qdd_or_tau = pre.qdd;
            t.minv = pre.minv;
        }
        return batch;
    };

    std::printf("%8s %14s %14s %14s %14s\n", "batch", "i7-7700(4t)",
                "RTX2080", "Robomorphic", "Dadu(sim)");
    for (int batch : {16, 32, 64, 128}) {
        const double cpu = perf::batchedTimeUs(
            perf::Platform::CpuOf33, perf::EvalRobot::Iiwa,
            FunctionType::DeltaiFD, batch);
        const double gpu = perf::batchedTimeUs(
            perf::Platform::GpuOf33, perf::EvalRobot::Iiwa,
            FunctionType::DeltaiFD, batch);
        const double robo = perf::batchedTimeUs(
            perf::Platform::Robomorphic, perf::EvalRobot::Iiwa,
            FunctionType::DeltaiFD, batch);
        accel::BatchStats stats;
        backend.submit(FunctionType::DeltaiFD, make_batch(batch), outputs,
                       &stats);
        std::printf("%8d %14.2f %14.2f %14.2f %14.2f   "
                    "(speedup: %4.1fx cpu, %4.1fx gpu, %4.1fx fpga)\n",
                    batch, cpu, gpu, robo, stats.total_us,
                    cpu / stats.total_us, gpu / stats.total_us,
                    robo / stats.total_us);
    }
    std::printf("\npaper speedups: 10.3x-13.0x cpu, 3.4x-11.3x gpu, "
                "6.3x-7.0x fpga\n");

    banner("Section VI-A — single-task iiwa ∆iFD latency");
    accel::BatchStats single;
    backend.submit(FunctionType::DeltaiFD, make_batch(1), outputs,
                   &single);
    std::printf("Dadu-RBD (sim):    %.2f us  (paper: 0.76 us)\n",
                single.latency_us);
    std::printf("Robomorphic model: %.2f us  (paper: 0.61 us)\n",
                perf::paperLatencyUs(perf::Platform::Robomorphic,
                                     perf::EvalRobot::Iiwa,
                                     FunctionType::DeltaiFD));

    JsonReport report;
    measuredCpuSection(robot, report);
    maybeWriteJson(argc, argv, report, "BENCH_batched.json");
    return 0;
}
