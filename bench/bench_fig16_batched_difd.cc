/**
 * @file
 * Experiment E5/E9 — Fig. 16: batched ∆iFD (iiwa) against the
 * platforms of [33]: i7-7700 (4 threads), RTX 2080, and the
 * Robomorphic FPGA, for batch sizes 16/32/64/128.
 *
 * Also prints the single-task latency comparison of Section VI-A:
 * Dadu-RBD 0.76 µs vs Robomorphic 0.61 µs for iiwa ∆iFD (Dadu
 * trades a little latency for much higher throughput).
 */

#include "bench_util.h"

#include "algorithms/dynamics.h"

using namespace dadu;
using namespace dadu::bench;

int
main()
{
    banner("Fig. 16 — batched iiwa ∆iFD time (us), lower is better");
    const RobotModel robot = model::makeIiwa();
    Accelerator accel(robot);

    // ∆iFD inputs include q̈ and M⁻¹ (computed up front, as in the
    // Robomorphic protocol where the CPU supplies them).
    auto make_batch = [&](int n) {
        auto batch = randomBatch(robot, n);
        for (auto &t : batch) {
            const auto pre =
                algo::fdDerivatives(robot, t.q, t.qd, t.qdd_or_tau);
            t.qdd_or_tau = pre.qdd;
            t.minv = pre.minv;
        }
        return batch;
    };

    std::printf("%8s %14s %14s %14s %14s\n", "batch", "i7-7700(4t)",
                "RTX2080", "Robomorphic", "Dadu(sim)");
    for (int batch : {16, 32, 64, 128}) {
        const double cpu = perf::batchedTimeUs(
            perf::Platform::CpuOf33, perf::EvalRobot::Iiwa,
            FunctionType::DeltaiFD, batch);
        const double gpu = perf::batchedTimeUs(
            perf::Platform::GpuOf33, perf::EvalRobot::Iiwa,
            FunctionType::DeltaiFD, batch);
        const double robo = perf::batchedTimeUs(
            perf::Platform::Robomorphic, perf::EvalRobot::Iiwa,
            FunctionType::DeltaiFD, batch);
        accel::BatchStats stats;
        accel.run(FunctionType::DeltaiFD, make_batch(batch), &stats);
        std::printf("%8d %14.2f %14.2f %14.2f %14.2f   "
                    "(speedup: %4.1fx cpu, %4.1fx gpu, %4.1fx fpga)\n",
                    batch, cpu, gpu, robo, stats.total_us,
                    cpu / stats.total_us, gpu / stats.total_us,
                    robo / stats.total_us);
    }
    std::printf("\npaper speedups: 10.3x-13.0x cpu, 3.4x-11.3x gpu, "
                "6.3x-7.0x fpga\n");

    banner("Section VI-A — single-task iiwa ∆iFD latency");
    accel::BatchStats single;
    accel.run(FunctionType::DeltaiFD, make_batch(1), &single);
    std::printf("Dadu-RBD (sim):    %.2f us  (paper: 0.76 us)\n",
                single.latency_us);
    std::printf("Robomorphic model: %.2f us  (paper: 0.61 us)\n",
                perf::paperLatencyUs(perf::Platform::Robomorphic,
                                     perf::EvalRobot::Iiwa,
                                     FunctionType::DeltaiFD));
    return 0;
}
