/**
 * @file
 * Experiment E10 — Section VI-B: end-to-end application speedup.
 *
 * Offloads the FD/∆FD task classes of the MPC iteration to the
 * accelerator (Fig. 13 scheduling) and compares against the 4-thread
 * CPU implementation. The paper reports an 11.2x speedup on the
 * accelerated tasks and an 80% control-frequency improvement for the
 * whole system.
 */

#include "bench_util.h"

#include "app/mpc_workload.h"
#include "app/scheduler.h"
#include "perf/timing.h"

using namespace dadu;
using namespace dadu::bench;

int
main(int argc, char **argv)
{
    banner("Section VI-B — end-to-end MPC application");
    const RobotModel robot = model::makeQuadrupedArm();
    app::MpcConfig cfg;
    cfg.horizon_points = 64;
    cfg.threads = 4;
    app::MpcWorkload workload(robot, cfg);
    Accelerator accel(robot);

    const app::MpcBreakdown b = workload.measureCpu();
    const double accel_tasks_cpu4 =
        (b.lq_us + b.rollout_us) / perf::threadScaling(4);

    // Measured multi-threaded CPU: the LQ phase through the
    // zero-allocation batched engine (4 workspaces over the pool),
    // instead of the modeled thread-scaling curve.
    const app::MpcBreakdown bm = workload.measureCpuBatched();
    std::printf("LQ approximation (∆FD x %d points):\n",
                cfg.horizon_points);
    std::printf("  1-thread measured:      %8.0f us\n", b.lq_us);
    std::printf("  4-thread batched (meas):%8.0f us   (%.2fx)\n",
                bm.lq_us, b.lq_us / bm.lq_us);

    // Accelerated dynamics-task time (the supported-task classes).
    const auto dfd = accel.analytic(FunctionType::DeltaFD);
    const auto fd = accel.analytic(FunctionType::FD);
    const double freq = accel.config().freq_mhz * 1e6;
    const double lq_accel =
        (cfg.horizon_points * dfd.ii_cycles + dfd.latency_cycles) /
        freq * 1e6;
    const double rollout_accel = app::scheduleSerialStagesUs(
        cfg.horizon_points, 4, fd.ii_cycles, fd.latency_cycles,
        accel.config().freq_mhz);
    const double accel_tasks = lq_accel + rollout_accel;

    std::printf("accelerated task classes (FD + ∆FD):\n");
    std::printf("  4-thread CPU: %8.0f us\n", accel_tasks_cpu4);
    std::printf("  Dadu-RBD:     %8.0f us\n", accel_tasks);
    std::printf("  speedup:      %8.1fx   (paper: 11.2x)\n",
                accel_tasks_cpu4 / accel_tasks);

    // Control frequency: iteration time determines achievable rate.
    const double cpu_iter = workload.cpuIterationUs(4);
    const double accel_iter = workload.acceleratedIterationUs(accel);
    std::printf("\nwhole-iteration control frequency:\n");
    std::printf("  4-thread CPU: %8.1f Hz\n", 1e6 / cpu_iter);
    std::printf("  with Dadu:    %8.1f Hz\n", 1e6 / accel_iter);
    std::printf("  improvement:  %8.0f%%   (paper: +80%%)\n",
                100.0 * (cpu_iter / accel_iter - 1.0));

    if (hasFlag(argc, argv, "--json")) {
        JsonReport report;
        report.add("lq_1t_us", b.lq_us);
        report.add("lq_batched_4t_us", bm.lq_us);
        report.add("lq_batched_speedup", b.lq_us / bm.lq_us);
        report.add("cpu_iter_us", cpu_iter);
        report.add("accel_iter_us", accel_iter);
        const char *path = "BENCH_e2e.json";
        if (report.writeTo(path))
            std::printf("\nwrote %s\n", path);
    }
    return 0;
}
