/**
 * @file
 * Experiment E10 — Section VI-B: end-to-end application speedup.
 *
 * Offloads the FD/∆FD task classes of the MPC iteration to the
 * accelerator (Fig. 13 scheduling) and compares against the 4-thread
 * CPU implementation. The paper reports an 11.2x speedup on the
 * accelerated tasks and an 80% control-frequency improvement for the
 * whole system.
 *
 * Since the runtime layer, every variant goes through the one
 * DynamicsBackend interface: the accelerated number is produced by
 * real batches on the cycle-accurate simulator (AcceleratorBackend),
 * with the closed-form AnalyticBackend printed alongside as the
 * model cross-check and the CpuBatchedBackend as the measured host
 * path.
 */

#include "bench_util.h"

#include "app/mpc_workload.h"
#include "perf/timing.h"
#include "runtime/backends.h"

using namespace dadu;
using namespace dadu::bench;

int
main(int argc, char **argv)
{
    banner("Section VI-B — end-to-end MPC application");
    const RobotModel robot = model::makeQuadrupedArm();
    app::MpcConfig cfg;
    cfg.horizon_points = 64;
    cfg.threads = 4;
    app::MpcWorkload workload(robot, cfg);
    Accelerator accel(robot);

    const app::MpcBreakdown b = workload.measureCpu();
    const double accel_tasks_cpu4 =
        (b.lq_us + b.rollout_us) / perf::threadScaling(4);

    // Measured multi-threaded CPU: the LQ phase submitted through
    // the runtime's CPU backend (zero-allocation batched engine, 4
    // workspaces over the pool), instead of the modeled
    // thread-scaling curve.
    const app::MpcBreakdown bm = workload.measureCpuBatched();
    std::printf("LQ approximation (∆FD x %d points):\n",
                cfg.horizon_points);
    std::printf("  1-thread measured:      %8.0f us\n", b.lq_us);
    std::printf("  4-thread batched (meas):%8.0f us   (%.2fx)\n",
                bm.lq_us, b.lq_us / bm.lq_us);

    // The three backends behind the single runtime interface.
    runtime::AcceleratorBackend sim_backend(accel);
    runtime::AnalyticBackend analytic_backend(accel);
    runtime::DynamicsBackend *backends[] = {&workload.cpuBackend(),
                                            &sim_backend,
                                            &analytic_backend};

    std::printf("\ndynamics phases through the runtime "
                "(DynamicsServer, Fig. 13 scheduling):\n");
    std::printf("%16s %12s %12s %12s\n", "backend", "LQ us",
                "rollout us", "iter us");
    app::MpcBreakdown sim_breakdown;
    double iter_us[3] = {0, 0, 0};
    for (int i = 0; i < 3; ++i) {
        const app::MpcBreakdown rb =
            workload.backendBreakdown(*backends[i]);
        iter_us[i] = app::MpcWorkload::iterationUsFrom(
            rb, backends[i]->offloaded());
        if (backends[i] == &sim_backend)
            sim_breakdown = rb;
        std::printf("%16s %12.0f %12.0f %12.0f\n", backends[i]->name(),
                    rb.lq_us, rb.rollout_us, iter_us[i]);
    }

    // Accelerated dynamics-task time (the supported-task classes),
    // now backed by simulated execution on the pipelines.
    const double accel_tasks =
        sim_breakdown.lq_us + sim_breakdown.rollout_us;
    std::printf("\naccelerated task classes (FD + ∆FD):\n");
    std::printf("  4-thread CPU: %8.0f us\n", accel_tasks_cpu4);
    std::printf("  Dadu-RBD:     %8.0f us  (cycle-accurate sim)\n",
                accel_tasks);
    std::printf("  speedup:      %8.1fx   (paper: 11.2x)\n",
                accel_tasks_cpu4 / accel_tasks);

    // Control frequency: iteration time determines achievable rate.
    const double cpu_iter = workload.cpuIterationUs(4);
    const double accel_iter = iter_us[1];
    std::printf("\nwhole-iteration control frequency:\n");
    std::printf("  4-thread CPU: %8.1f Hz\n", 1e6 / cpu_iter);
    std::printf("  with Dadu:    %8.1f Hz\n", 1e6 / accel_iter);
    std::printf("  improvement:  %8.0f%%   (paper: +80%%)\n",
                100.0 * (cpu_iter / accel_iter - 1.0));

    JsonReport report;
    report.add("lq_1t_us", b.lq_us);
    report.add("lq_batched_4t_us", bm.lq_us);
    report.add("lq_batched_speedup", b.lq_us / bm.lq_us);
    report.add("cpu_iter_us", cpu_iter);
    report.add("accel_iter_us", accel_iter);
    report.add("accel_analytic_iter_us", iter_us[2]);
    report.add("cpu_backend_iter_us", iter_us[0]);
    report.add("accel_tasks_sim_us", accel_tasks);
    report.add("accel_tasks_speedup_vs_cpu4",
               accel_tasks_cpu4 / accel_tasks);
    maybeWriteJson(argc, argv, report, "BENCH_e2e.json");
    return 0;
}
