/**
 * @file
 * Shared helpers for the experiment harness binaries.
 *
 * Each bench binary regenerates one table/figure of the paper
 * (see DESIGN.md's experiment index) and prints the paper-reported
 * values next to the reproduced ones so EXPERIMENTS.md can record
 * the comparison.
 */

#ifndef DADU_BENCH_BENCH_UTIL_H
#define DADU_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "accel/accelerator.h"
#include "model/builders.h"
#include "perf/baselines.h"

namespace dadu::bench {

using accel::Accelerator;
using accel::FunctionType;
using accel::TaskInput;
using model::RobotModel;

/** The six Fig. 15 functions, in figure order. */
inline const std::vector<FunctionType> &
fig15Functions()
{
    static const std::vector<FunctionType> fns = {
        FunctionType::ID, FunctionType::FD, FunctionType::M,
        FunctionType::Minv, FunctionType::DeltaID,
        FunctionType::DeltaFD};
    return fns;
}

/** The three Fig. 15 robots with their baseline-table keys. */
struct EvalEntry
{
    const char *name;
    RobotModel (*make)();
    perf::EvalRobot key;
};

inline const std::vector<EvalEntry> &
evalRobots()
{
    static const std::vector<EvalEntry> robots = {
        {"iiwa", model::makeIiwa, perf::EvalRobot::Iiwa},
        {"HyQ", model::makeHyq, perf::EvalRobot::Hyq},
        {"Atlas", model::makeAtlas, perf::EvalRobot::Atlas},
    };
    return robots;
}

/** Random batch of accelerator task inputs. */
inline std::vector<TaskInput>
randomBatch(const RobotModel &robot, int n, unsigned seed = 7)
{
    std::mt19937 rng(seed);
    std::vector<TaskInput> batch(n);
    for (auto &t : batch) {
        t.q = robot.randomConfiguration(rng);
        t.qd = robot.randomVelocity(rng);
        t.qdd_or_tau = robot.randomVelocity(rng);
    }
    return batch;
}

/** Monotonic wall clock in microseconds. */
inline double
nowUs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
               .count() /
           1000.0;
}

/** True when @p flag (e.g. "--json") appears in argv. */
inline bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    }
    return false;
}

/**
 * Flat key -> number metric report, written as a JSON object so
 * future PRs can track the perf trajectory (the --json output mode
 * of the bench binaries).
 */
class JsonReport
{
  public:
    void add(const std::string &key, double value)
    {
        entries_.emplace_back(key, value);
    }

    /** Write {"k": v, ...} to @p path; returns false on I/O error. */
    bool
    writeTo(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            return false;
        std::fprintf(f, "{\n");
        for (std::size_t i = 0; i < entries_.size(); ++i)
            std::fprintf(f, "  \"%s\": %.6f%s\n", entries_[i].first.c_str(),
                         entries_[i].second,
                         i + 1 < entries_.size() ? "," : "");
        std::fprintf(f, "}\n");
        std::fclose(f);
        return true;
    }

  private:
    std::vector<std::pair<std::string, double>> entries_;
};

/** Section header in the output stream. */
inline void
banner(const std::string &title)
{
    std::printf("\n============================================"
                "====================\n%s\n"
                "============================================"
                "====================\n",
                title.c_str());
}

} // namespace dadu::bench

#endif // DADU_BENCH_BENCH_UTIL_H
