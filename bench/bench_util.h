/**
 * @file
 * Shared helpers for the experiment harness binaries.
 *
 * Each bench binary regenerates one table/figure of the paper
 * (see DESIGN.md's experiment index) and prints the paper-reported
 * values next to the reproduced ones so EXPERIMENTS.md can record
 * the comparison.
 */

#ifndef DADU_BENCH_BENCH_UTIL_H
#define DADU_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "accel/accelerator.h"
#include "model/builders.h"
#include "perf/baselines.h"
#include "perf/timing.h"

namespace dadu::bench {

using accel::Accelerator;
using accel::FunctionType;
using accel::TaskInput;
using model::RobotModel;

/** The six Fig. 15 functions, in figure order. */
inline const std::vector<FunctionType> &
fig15Functions()
{
    static const std::vector<FunctionType> fns = {
        FunctionType::ID, FunctionType::FD, FunctionType::M,
        FunctionType::Minv, FunctionType::DeltaID,
        FunctionType::DeltaFD};
    return fns;
}

/** The three Fig. 15 robots with their baseline-table keys. */
struct EvalEntry
{
    const char *name;
    RobotModel (*make)();
    perf::EvalRobot key;
};

inline const std::vector<EvalEntry> &
evalRobots()
{
    static const std::vector<EvalEntry> robots = {
        {"iiwa", model::makeIiwa, perf::EvalRobot::Iiwa},
        {"HyQ", model::makeHyq, perf::EvalRobot::Hyq},
        {"Atlas", model::makeAtlas, perf::EvalRobot::Atlas},
    };
    return robots;
}

/** Random batch of accelerator task inputs. */
inline std::vector<TaskInput>
randomBatch(const RobotModel &robot, int n, unsigned seed = 7)
{
    std::mt19937 rng(seed);
    std::vector<TaskInput> batch(n);
    for (auto &t : batch) {
        t.q = robot.randomConfiguration(rng);
        t.qd = robot.randomVelocity(rng);
        t.qdd_or_tau = robot.randomVelocity(rng);
    }
    return batch;
}

/** Monotonic wall clock in microseconds. */
using perf::nowUs;

/** True when @p flag (e.g. "--json") appears in argv. */
inline bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    }
    return false;
}

/** Value of "--flag <value>", or nullptr when absent / valueless. */
inline const char *
flagValue(int argc, char **argv, const char *flag)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    }
    return nullptr;
}

/** Integer value of "--flag <n>", or @p fallback when absent. */
inline int
flagInt(int argc, char **argv, const char *flag, int fallback)
{
    const char *v = flagValue(argc, argv, flag);
    return v ? std::atoi(v) : fallback;
}

/**
 * Flat key -> number metric report, written as a JSON object so
 * future PRs can track the perf trajectory (the --json output mode
 * of the bench binaries).
 */
class JsonReport
{
  public:
    void add(const std::string &key, double value)
    {
        entries_.emplace_back(key, value);
    }

    /** Write {"k": v, ...} to @p path; returns false on I/O error. */
    bool
    writeTo(const std::string &path) const
    {
        return writeEntries(path, entries_);
    }

    /**
     * Merge this report into @p path: existing keys written by other
     * bench binaries sharing the file are preserved (this report's
     * values win on collision), so e.g. the two Fig. 15 benches can
     * both contribute to one BENCH_fig15.json.
     */
    bool
    mergeTo(const std::string &path) const
    {
        std::vector<std::pair<std::string, double>> merged;
        if (std::FILE *f = std::fopen(path.c_str(), "r")) {
            // The flat {"k": v} format writeEntries produces.
            char line[512];
            char key[256];
            double value;
            while (std::fgets(line, sizeof line, f)) {
                if (std::sscanf(line, " \"%255[^\"]\" : %lf", key,
                                &value) == 2)
                    merged.emplace_back(key, value);
            }
            std::fclose(f);
        }
        for (const auto &e : entries_) {
            bool found = false;
            for (auto &m : merged) {
                if (m.first == e.first) {
                    m.second = e.second;
                    found = true;
                    break;
                }
            }
            if (!found)
                merged.push_back(e);
        }
        return writeEntries(path, merged);
    }

  private:
    static bool
    writeEntries(const std::string &path,
                 const std::vector<std::pair<std::string, double>> &entries)
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            return false;
        std::fprintf(f, "{\n");
        for (std::size_t i = 0; i < entries.size(); ++i)
            std::fprintf(f, "  \"%s\": %.6f%s\n", entries[i].first.c_str(),
                         entries[i].second,
                         i + 1 < entries.size() ? "," : "");
        std::fprintf(f, "}\n");
        std::fclose(f);
        return true;
    }

    std::vector<std::pair<std::string, double>> entries_;
};

/**
 * Version of the flat {"key": number} BENCH_*.json schema. Bump when
 * the report format itself (not the metric set) changes.
 */
inline constexpr double kBenchJsonSchemaVersion = 2.0;

/**
 * The shared --json epilogue of every bench binary: when the flag is
 * present, write @p report to @p path and report the outcome. A
 * single-writer file is overwritten (dropped keys disappear); pass
 * @p merge = true only when several binaries share @p path (the two
 * Fig. 15 benches), so each preserves the other's keys.
 *
 * Every report is stamped self-describing before writing:
 * "schema_version" and a "bench.<binary>" marker per contributing
 * binary (numeric so merged files accumulate one marker per writer).
 * No timestamps — reruns of unchanged code produce identical files.
 * @return true when the file was written.
 */
inline bool
maybeWriteJson(int argc, char **argv, const JsonReport &report,
               const char *path, bool merge = false)
{
    if (!hasFlag(argc, argv, "--json"))
        return false;
    JsonReport stamped = report;
    stamped.add("schema_version", kBenchJsonSchemaVersion);
    if (argc > 0 && argv[0]) {
        const char *base = argv[0];
        for (const char *p = argv[0]; *p; ++p) {
            if (*p == '/')
                base = p + 1;
        }
        stamped.add(std::string("bench.") + base, 1.0);
    }
    if (merge ? stamped.mergeTo(path) : stamped.writeTo(path)) {
        std::printf("\nwrote %s\n", path);
        return true;
    }
    std::printf("\nfailed to write %s\n", path);
    return false;
}

/** Section header in the output stream. */
inline void
banner(const std::string &title)
{
    std::printf("\n============================================"
                "====================\n%s\n"
                "============================================"
                "====================\n",
                title.c_str());
}

} // namespace dadu::bench

#endif // DADU_BENCH_BENCH_UTIL_H
