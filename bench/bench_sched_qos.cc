/**
 * @file
 * QoS scheduling under mixed load: p99 latency of latency-critical
 * MPC-style clients while bulk ∆FD sweeps saturate the server.
 *
 * Scenario (iiwa, 2 analytic-backend lanes over one fitted
 * accelerator model): two bulk clients keep several 256-point ∆FD
 * jobs queued at all times — the background sweep — while three
 * latency-critical clients each submit small deadline-tagged 8-point
 * ∆FD jobs and block on them, measuring the wall-clock
 * submit-to-completion latency a real MPC loop would see. The same
 * traffic runs under four configurations:
 *
 *   fifo    — the pre-QoS baseline: critical jobs queue behind every
 *             bulk batch already in the lane;
 *   edf     — deadline-aware pop: critical jobs overtake queued bulk
 *             work (but never preempt the batch in flight);
 *   qos     — EDF + coalescing (the three critical clients' small
 *             batches merge into one pipeline-filling batch) + work
 *             stealing (an idle lane pulls critical work from a busy
 *             one);
 *   qos_obs — qos with the observability layer fully on (lifecycle
 *             tracing + metrics registry): the overhead probe.
 *   qos_stream — qos_obs plus the LIVE telemetry plane: background
 *             aggregator at 25 ms, trace rings streamed to
 *             trace_sched_qos_stream.json during the run, and (with
 *             --stats-port <p>) the embedded /stats + /metrics
 *             endpoint. qos vs qos_stream is the streaming-overhead
 *             probe (obs_stream_overhead_ratio, a slowdown factor:
 *             1.0 = free).
 *
 * Client latencies go through the obs LatencyHistogram (the same
 * log-bucketed type the server's registry uses), so the JSON carries
 * the full distribution, not just two pre-picked percentiles.
 *
 * The numbers to watch (BENCH_sched.json via --json):
 *   p99_speedup_qos      >= 2    (acceptance criterion)
 *   throughput_ratio_qos within 10% of FIFO
 *   obs_overhead_ratio   within 3% of 1 (tracing must be ~free)
 *
 * With --trace the qos_obs run also exports trace_sched_qos.json,
 * a Chrome trace-event file (chrome://tracing / Perfetto).
 *
 * Live-plane flags (qos_stream run): --stream-trace <path> overrides
 * the streamed trace file, --stats-port <p> serves GET /stats and
 * GET /metrics on 127.0.0.1:<p> while the scenario runs, and
 * --stats-hold-ms <n> keeps the server (and endpoint) up n extra
 * milliseconds after the clients finish so an external scraper has a
 * guaranteed window — throughput is measured in backend time, so the
 * hold does not distort the numbers.
 */

#include "bench_util.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "app/scheduler.h"
#include "runtime/backends.h"
#include "runtime/obs/aggregate.h"
#include "runtime/obs/export.h"
#include "runtime/sched/policy.h"
#include "runtime/server.h"

using namespace dadu;
using namespace dadu::bench;

namespace {

using runtime::DynamicsResult;
using runtime::obs::LatencyHistogram;
using runtime::sched::PolicyKind;
using runtime::sched::SchedConfig;

constexpr int kBulkClients = 2;
constexpr int kBulkN = 256;   ///< tasks per bulk job
constexpr int kBulkJobs = 30; ///< jobs per bulk client (fixed work)
constexpr int kBulkDepth = 6; ///< jobs each bulk client keeps in flight
constexpr int kCritClients = 3;
constexpr int kCritN = 8; ///< tasks per latency-critical job
constexpr int kCritPeriodUs = 3000; ///< MPC-style submission pacing

struct ScenarioResult
{
    LatencyHistogram crit_hist; ///< wall submit→completion latency
    double wall_us = 0.0;
    std::size_t tasks = 0;
    double throughput_mtasks = 0.0; ///< tasks per makespan µs
    runtime::sched::SchedStats sched;
    /** Registry snapshot when the scenario ran with metrics on. */
    std::shared_ptr<runtime::obs::MetricsRegistry> metrics;
    double trace_events = 0.0;  ///< retained trace events (obs runs)
    double trace_dropped = 0.0; ///< events lost to ring wraparound
    // Live-plane accounting (qos_stream run).
    double stream_events = 0.0;  ///< events delivered to the live stream
    double stream_dropped = 0.0; ///< stream cursor drops + overruns
    double stream_samples = 0.0; ///< aggregator ticks taken
};

ScenarioResult
runScenario(Accelerator &accel, const SchedConfig &cfg,
            const char *trace_path, int hold_ms = 0)
{
    const RobotModel &robot = accel.robot();
    runtime::AnalyticBackend base(accel);
    auto lane1 = base.clone();
    runtime::DynamicsServer server(base);
    server.addBackend(*lane1);
    server.setPolicy(cfg);
    server.start();

    const double t0 = nowUs();
    std::atomic<bool> bulk_done{false};

    // Bulk clients: a FIXED amount of background work (so total
    // throughput is comparable across policies), submitted with
    // kBulkDepth jobs in flight each so the lanes always hold queued
    // bulk batches while the sweep lasts.
    std::vector<std::thread> bulk;
    std::atomic<int> bulk_active{kBulkClients};
    for (int b = 0; b < kBulkClients; ++b) {
        bulk.emplace_back([&, b] {
            const auto reqs = randomBatch(robot, kBulkN, 100 + b);
            std::vector<std::vector<DynamicsResult>> res(
                kBulkDepth, std::vector<DynamicsResult>(kBulkN));
            std::vector<int> jobs;
            for (int i = 0; i < kBulkJobs; ++i) {
                if (jobs.size() >=
                    static_cast<std::size_t>(kBulkDepth)) {
                    server.wait(jobs.front());
                    jobs.erase(jobs.begin());
                }
                jobs.push_back(server.submit(
                    FunctionType::DeltaFD, reqs.data(), kBulkN,
                    res[i % kBulkDepth].data(),
                    runtime::DynamicsServer::kLeastLoaded));
            }
            for (int j : jobs)
                server.wait(j);
            if (bulk_active.fetch_sub(1, std::memory_order_acq_rel) ==
                1)
                bulk_done.store(true, std::memory_order_release);
        });
    }

    // Latency-critical clients: small deadline-tagged jobs at an
    // MPC-style fixed pace for as long as the bulk sweep keeps the
    // server loaded, wall latency measured around submit + wait —
    // the control loop's view. The pacing keeps the critical task
    // volume comparable across policies (an unpaced client under EDF
    // would spin thousands of extra rounds in the time FIFO serves
    // a handful, distorting the throughput comparison). Each client
    // records into its own histogram (no shared state on the timed
    // path) and merges once at the end.
    LatencyHistogram latencies;
    std::mutex lat_mu;
    std::vector<std::thread> critical;
    for (int c = 0; c < kCritClients; ++c) {
        critical.emplace_back([&, c] {
            const auto reqs = randomBatch(robot, kCritN, 200 + c);
            std::vector<DynamicsResult> res(kCritN);
            LatencyHistogram mine;
            while (!bulk_done.load(std::memory_order_acquire)) {
                runtime::sched::JobTag tag;
                tag.deadline_us = nowUs() + 3000.0;
                const double start = nowUs();
                const int job = server.submit(
                    FunctionType::DeltaFD, reqs.data(), kCritN,
                    res.data(), runtime::DynamicsServer::kLeastLoaded,
                    tag);
                server.wait(job);
                mine.record(nowUs() - start);
                std::this_thread::sleep_for(
                    std::chrono::microseconds(kCritPeriodUs));
            }
            std::lock_guard<std::mutex> lock(lat_mu);
            latencies.merge(mine);
        });
    }
    for (auto &t : critical)
        t.join();
    for (auto &t : bulk)
        t.join();
    // Optional scrape window: the server (and with it the stats
    // endpoint) stays up, idle, so an external poller is guaranteed
    // to catch it live. Backend-time throughput is unaffected.
    if (hold_ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
    server.stop();

    ScenarioResult out;
    out.wall_us = nowUs() - t0;
    runtime::ServerStats stats;
    server.drain(&stats, &out.sched);
    out.tasks = stats.tasks;
    // Serving throughput in backend time — tasks over the busiest
    // lane's accumulated makespan, the same protocol as
    // bench_multi_client — so the FIFO-vs-QoS comparison is not
    // polluted by host scheduling jitter on the measuring machine
    // (client latencies above stay wall-clock: queueing delay IS the
    // quantity under test there).
    out.throughput_mtasks =
        stats.makespan_us > 0.0 ? stats.tasks / stats.makespan_us : 0.0;
    out.crit_hist = latencies;
    if (const runtime::obs::MetricsRegistry *m = server.metricsRegistry())
        out.metrics = std::make_shared<runtime::obs::MetricsRegistry>(*m);
    if (const runtime::obs::TraceBuffer *buf = server.traceBuffer()) {
        for (std::size_t i = 0; i < buf->ringCount(); ++i)
            out.trace_events += static_cast<double>(buf->ring(i).retained());
        out.trace_dropped = static_cast<double>(buf->totalDropped());
        if (trace_path) {
            if (runtime::obs::writeChromeTrace(*buf, trace_path))
                std::printf("wrote %s\n", trace_path);
            else
                std::printf("failed to write %s\n", trace_path);
        }
    }
    if (const runtime::obs::ObsAggregator *agg = server.aggregator()) {
        out.stream_events = static_cast<double>(agg->streamedEvents());
        out.stream_dropped = static_cast<double>(agg->streamedDropped());
        out.stream_samples = static_cast<double>(agg->sampleCount());
        if (agg->streaming())
            std::printf("streamed %s (%.0f events, %.0f samples)\n",
                        agg->config().stream_path.c_str(),
                        out.stream_events, out.stream_samples);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    banner("QoS scheduling — critical-client p99 under bulk load");
    const RobotModel robot = model::makeIiwa();
    Accelerator accel(robot);

    std::printf("\n%d bulk clients x %d jobs x %d-task dFD (depth %d), "
                "%d critical clients x %d-task dFD until bulk done, "
                "2 lanes\n",
                kBulkClients, kBulkJobs, kBulkN, kBulkDepth,
                kCritClients, kCritN);

    struct Entry
    {
        const char *name;
        SchedConfig cfg;
    };
    SchedConfig fifo_cfg;
    SchedConfig edf_cfg;
    edf_cfg.kind = PolicyKind::Edf;
    SchedConfig qos_cfg;
    qos_cfg.kind = PolicyKind::Edf;
    qos_cfg.coalesce = true;
    qos_cfg.steal = true;
    // Same traffic and policy as qos, with the full observability
    // layer on: lifecycle tracing into per-lane rings plus the
    // metrics registry. qos vs qos_obs is the overhead measurement.
    SchedConfig obs_cfg = qos_cfg;
    obs_cfg.obs.trace = true;
    obs_cfg.obs.metrics = true;
    // The live plane on top of qos_obs: aggregator ticking at 25 ms,
    // rings streamed to a Chrome-trace file DURING the run, and the
    // /stats endpoint when a port was requested.
    const char *stream_path = flagValue(argc, argv, "--stream-trace");
    SchedConfig stream_cfg = obs_cfg;
    stream_cfg.obs.aggregate_interval_ms = 25;
    stream_cfg.obs.stream_trace_path =
        stream_path ? stream_path : "trace_sched_qos_stream.json";
    stream_cfg.obs.stats_port = flagInt(argc, argv, "--stats-port", -1);
    const int hold_ms = flagInt(argc, argv, "--stats-hold-ms", 0);
    const Entry entries[] = {{"fifo", fifo_cfg},
                             {"edf", edf_cfg},
                             {"qos", qos_cfg},
                             {"qos_obs", obs_cfg},
                             {"qos_stream", stream_cfg}};

    const bool want_trace = hasFlag(argc, argv, "--trace");

    std::printf("%8s %10s %10s %12s %10s %8s %8s\n", "policy",
                "p50 us", "p99 us", "tasks/ms", "misses", "merged",
                "steals");
    JsonReport report;
    const runtime::obs::MetricEmitFn emit =
        [&report](const std::string &key, double value) {
            report.add(key, value);
        };
    double fifo_p99 = 0.0, fifo_tput = 0.0, qos_tput = 0.0;
    for (const Entry &e : entries) {
        const std::string k = e.name;
        const bool is_obs = k == "qos_obs";
        const bool is_stream = k == "qos_stream";
        const ScenarioResult r = runScenario(
            accel, e.cfg,
            is_obs && want_trace ? "trace_sched_qos.json" : nullptr,
            is_stream ? hold_ms : 0);
        const double p50 = r.crit_hist.percentileUs(0.50);
        const double p99 = r.crit_hist.percentileUs(0.99);
        std::printf("%8s %10.1f %10.1f %12.1f %10zu %8zu %8zu\n",
                    e.name, p50, p99, r.throughput_mtasks * 1000.0,
                    r.sched.deadline_misses, r.sched.coalesced_batches,
                    r.sched.steals);
        report.add("crit_p50_" + k + "_us", p50);
        report.add("crit_p99_" + k + "_us", p99);
        report.add("throughput_" + k + "_mtasks", r.throughput_mtasks);
        if (k == "fifo") {
            fifo_p99 = p99;
            fifo_tput = r.throughput_mtasks;
        } else if (!is_obs && !is_stream) {
            report.add("p99_speedup_" + k,
                       p99 > 0.0 ? fifo_p99 / p99 : 0.0);
            report.add("throughput_ratio_" + k,
                       fifo_tput > 0.0
                           ? r.throughput_mtasks / fifo_tput
                           : 0.0);
        }
        if (k == "qos") {
            qos_tput = r.throughput_mtasks;
            report.add("qos_coalesced_batches",
                       static_cast<double>(r.sched.coalesced_batches));
            report.add("qos_steals",
                       static_cast<double>(r.sched.steals));
            // The critical-latency distribution that the acceptance
            // percentiles summarize, in full.
            emitHistogram(r.crit_hist, "crit_hist_qos", emit);
        }
        if (is_obs) {
            // Observability cost: serving throughput with tracing +
            // metrics on, relative to the identical run without.
            report.add("obs_overhead_ratio",
                       qos_tput > 0.0
                           ? r.throughput_mtasks / qos_tput
                           : 0.0);
            report.add("obs_trace_events", r.trace_events);
            report.add("obs_trace_dropped", r.trace_dropped);
            if (r.metrics)
                emitRegistry(*r.metrics, "obs", emit);
        }
        if (is_stream) {
            // Streaming cost as a slowdown factor: qos throughput
            // over the identical run with the whole live plane on
            // (aggregator + ring streaming). 1.0 = free; the
            // acceptance bound is <= 1.05.
            report.add("obs_stream_overhead_ratio",
                       r.throughput_mtasks > 0.0
                           ? qos_tput / r.throughput_mtasks
                           : 0.0);
            report.add("obs_stream_events", r.stream_events);
            report.add("obs_stream_dropped", r.stream_dropped);
            report.add("obs_stream_samples", r.stream_samples);
        }
    }
    runtime::obs::emitHistogramScheme(emit);

    maybeWriteJson(argc, argv, report, "BENCH_sched.json");
    return 0;
}
