/**
 * @file
 * QoS scheduling under mixed load: p99 latency of latency-critical
 * MPC-style clients while bulk ∆FD sweeps saturate the server.
 *
 * Scenario (iiwa, 2 analytic-backend lanes over one fitted
 * accelerator model): two bulk clients keep several 256-point ∆FD
 * jobs queued at all times — the background sweep — while three
 * latency-critical clients each submit small deadline-tagged 8-point
 * ∆FD jobs and block on them, measuring the wall-clock
 * submit-to-completion latency a real MPC loop would see. The same
 * traffic runs under three policies:
 *
 *   fifo — the pre-QoS baseline: critical jobs queue behind every
 *          bulk batch already in the lane;
 *   edf  — deadline-aware pop: critical jobs overtake queued bulk
 *          work (but never preempt the batch in flight);
 *   qos  — EDF + coalescing (the three critical clients' small
 *          batches merge into one pipeline-filling batch) + work
 *          stealing (an idle lane pulls critical work from a busy
 *          one).
 *
 * The numbers to watch (BENCH_sched.json via --json):
 *   p99_speedup_qos      >= 2  (acceptance criterion)
 *   throughput_ratio_qos within 10% of FIFO
 */

#include "bench_util.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "app/scheduler.h"
#include "runtime/backends.h"
#include "runtime/sched/policy.h"
#include "runtime/server.h"

using namespace dadu;
using namespace dadu::bench;

namespace {

using runtime::DynamicsResult;
using runtime::sched::PolicyKind;
using runtime::sched::SchedConfig;

constexpr int kBulkClients = 2;
constexpr int kBulkN = 256;   ///< tasks per bulk job
constexpr int kBulkJobs = 30; ///< jobs per bulk client (fixed work)
constexpr int kBulkDepth = 6; ///< jobs each bulk client keeps in flight
constexpr int kCritClients = 3;
constexpr int kCritN = 8; ///< tasks per latency-critical job
constexpr int kCritPeriodUs = 3000; ///< MPC-style submission pacing

struct ScenarioResult
{
    double p50_us = 0.0;
    double p99_us = 0.0;
    double wall_us = 0.0;
    std::size_t tasks = 0;
    double throughput_mtasks = 0.0; ///< tasks per makespan µs
    runtime::sched::SchedStats sched;
};

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    const std::size_t idx = static_cast<std::size_t>(
        std::max(0.0, std::ceil(p * n) - 1.0));
    return sorted[std::min(idx, n - 1)];
}

ScenarioResult
runScenario(Accelerator &accel, const SchedConfig &cfg)
{
    const RobotModel &robot = accel.robot();
    runtime::AnalyticBackend base(accel);
    auto lane1 = base.clone();
    runtime::DynamicsServer server(base);
    server.addBackend(*lane1);
    server.setPolicy(cfg);
    server.start();

    const double t0 = nowUs();
    std::atomic<bool> bulk_done{false};

    // Bulk clients: a FIXED amount of background work (so total
    // throughput is comparable across policies), submitted with
    // kBulkDepth jobs in flight each so the lanes always hold queued
    // bulk batches while the sweep lasts.
    std::vector<std::thread> bulk;
    std::atomic<int> bulk_active{kBulkClients};
    for (int b = 0; b < kBulkClients; ++b) {
        bulk.emplace_back([&, b] {
            const auto reqs = randomBatch(robot, kBulkN, 100 + b);
            std::vector<std::vector<DynamicsResult>> res(
                kBulkDepth, std::vector<DynamicsResult>(kBulkN));
            std::vector<int> jobs;
            for (int i = 0; i < kBulkJobs; ++i) {
                if (jobs.size() >=
                    static_cast<std::size_t>(kBulkDepth)) {
                    server.wait(jobs.front());
                    jobs.erase(jobs.begin());
                }
                jobs.push_back(server.submit(
                    FunctionType::DeltaFD, reqs.data(), kBulkN,
                    res[i % kBulkDepth].data(),
                    runtime::DynamicsServer::kLeastLoaded));
            }
            for (int j : jobs)
                server.wait(j);
            if (bulk_active.fetch_sub(1, std::memory_order_acq_rel) ==
                1)
                bulk_done.store(true, std::memory_order_release);
        });
    }

    // Latency-critical clients: small deadline-tagged jobs at an
    // MPC-style fixed pace for as long as the bulk sweep keeps the
    // server loaded, wall latency measured around submit + wait —
    // the control loop's view. The pacing keeps the critical task
    // volume comparable across policies (an unpaced client under EDF
    // would spin thousands of extra rounds in the time FIFO serves
    // a handful, distorting the throughput comparison).
    std::vector<double> latencies;
    std::mutex lat_mu;
    std::vector<std::thread> critical;
    for (int c = 0; c < kCritClients; ++c) {
        critical.emplace_back([&, c] {
            const auto reqs = randomBatch(robot, kCritN, 200 + c);
            std::vector<DynamicsResult> res(kCritN);
            std::vector<double> mine;
            while (!bulk_done.load(std::memory_order_acquire)) {
                runtime::sched::JobTag tag;
                tag.deadline_us = nowUs() + 3000.0;
                const double start = nowUs();
                const int job = server.submit(
                    FunctionType::DeltaFD, reqs.data(), kCritN,
                    res.data(), runtime::DynamicsServer::kLeastLoaded,
                    tag);
                server.wait(job);
                mine.push_back(nowUs() - start);
                std::this_thread::sleep_for(
                    std::chrono::microseconds(kCritPeriodUs));
            }
            std::lock_guard<std::mutex> lock(lat_mu);
            latencies.insert(latencies.end(), mine.begin(), mine.end());
        });
    }
    for (auto &t : critical)
        t.join();
    for (auto &t : bulk)
        t.join();
    server.stop();

    ScenarioResult out;
    out.wall_us = nowUs() - t0;
    runtime::ServerStats stats;
    server.drain(&stats, &out.sched);
    out.tasks = stats.tasks;
    // Serving throughput in backend time — tasks over the busiest
    // lane's accumulated makespan, the same protocol as
    // bench_multi_client — so the FIFO-vs-QoS comparison is not
    // polluted by host scheduling jitter on the measuring machine
    // (client latencies above stay wall-clock: queueing delay IS the
    // quantity under test there).
    out.throughput_mtasks =
        stats.makespan_us > 0.0 ? stats.tasks / stats.makespan_us : 0.0;
    out.p50_us = percentile(latencies, 0.50);
    out.p99_us = percentile(latencies, 0.99);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    banner("QoS scheduling — critical-client p99 under bulk load");
    const RobotModel robot = model::makeIiwa();
    Accelerator accel(robot);

    std::printf("\n%d bulk clients x %d jobs x %d-task dFD (depth %d), "
                "%d critical clients x %d-task dFD until bulk done, "
                "2 lanes\n",
                kBulkClients, kBulkJobs, kBulkN, kBulkDepth,
                kCritClients, kCritN);

    struct Entry
    {
        const char *name;
        SchedConfig cfg;
    };
    SchedConfig fifo_cfg;
    SchedConfig edf_cfg;
    edf_cfg.kind = PolicyKind::Edf;
    SchedConfig qos_cfg;
    qos_cfg.kind = PolicyKind::Edf;
    qos_cfg.coalesce = true;
    qos_cfg.steal = true;
    const Entry entries[] = {
        {"fifo", fifo_cfg}, {"edf", edf_cfg}, {"qos", qos_cfg}};

    std::printf("%8s %10s %10s %12s %10s %8s %8s\n", "policy",
                "p50 us", "p99 us", "tasks/ms", "misses", "merged",
                "steals");
    JsonReport report;
    double fifo_p99 = 0.0, fifo_tput = 0.0;
    for (const Entry &e : entries) {
        const ScenarioResult r = runScenario(accel, e.cfg);
        std::printf("%8s %10.1f %10.1f %12.1f %10zu %8zu %8zu\n",
                    e.name, r.p50_us, r.p99_us,
                    r.throughput_mtasks * 1000.0,
                    r.sched.deadline_misses, r.sched.coalesced_batches,
                    r.sched.steals);
        const std::string k = e.name;
        report.add("crit_p50_" + k + "_us", r.p50_us);
        report.add("crit_p99_" + k + "_us", r.p99_us);
        report.add("throughput_" + k + "_mtasks", r.throughput_mtasks);
        if (k == "fifo") {
            fifo_p99 = r.p99_us;
            fifo_tput = r.throughput_mtasks;
        } else {
            report.add("p99_speedup_" + k,
                       r.p99_us > 0.0 ? fifo_p99 / r.p99_us : 0.0);
            report.add("throughput_ratio_" + k,
                       fifo_tput > 0.0
                           ? r.throughput_mtasks / fifo_tput
                           : 0.0);
        }
        if (k == "qos") {
            report.add("qos_coalesced_batches",
                       static_cast<double>(r.sched.coalesced_batches));
            report.add("qos_steals",
                       static_cast<double>(r.sched.steals));
        }
    }

    maybeWriteJson(argc, argv, report, "BENCH_sched.json");
    return 0;
}
