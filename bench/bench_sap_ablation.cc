/**
 * @file
 * Experiments E13/E14 — SAP organization and design-choice ablations.
 *
 * Reproduces the Section V-C structural claims:
 *  - Fig. 11a Tiago: linear topology, no branch arrays;
 *  - Fig. 11b Spot-arm: root + arm array + TDM'd leg arrays;
 *  - Fig. 11c Atlas: topology rotation reduces depth 11 -> 9-10 and
 *    keeps the arm/leg pairs mergeable;
 * and ablates the design choices: symmetric-branch TDM (resources),
 * topology rotation (latency/ops), and the DSP-budget fit.
 */

#include "bench_util.h"

#include "accel/op_count.h"
#include "accel/topology.h"

using namespace dadu;
using namespace dadu::bench;
using accel::compileSap;
using accel::SapConfig;
using accel::SapPlan;

int
main()
{
    banner("Fig. 11 — SAP organization per robot");
    struct Row
    {
        const char *name;
        RobotModel (*make)();
    };
    const Row rows[] = {
        {"Tiago", model::makeTiago},
        {"Spot-arm", model::makeSpotArm},
        {"Atlas", model::makeAtlas},
        {"quadruped-arm", model::makeQuadrupedArm},
        {"HyQ", model::makeHyq},
        {"iiwa", model::makeIiwa},
    };
    for (const Row &row : rows) {
        const RobotModel robot = row.make();
        const SapPlan plan = compileSap(robot);
        std::printf("%-14s %s\n", row.name, plan.summary().c_str());
    }
    std::printf("paper: Tiago root+1 linear; Spot 3 arrays (legs "
                "TDM x2); Atlas rotated depth 11 -> 9\n");

    banner("Ablation — symmetric-branch TDM (fixed lane target)");
    for (const Row &row : {rows[3], rows[1]}) {
        accel::AccelConfig merged, unmerged;
        merged.auto_fit = false;
        merged.target_ii = 8;
        unmerged = merged;
        unmerged.sap.merge_symmetric = false;
        const RobotModel robot = row.make();
        Accelerator a1(robot, merged), a2(robot, unmerged);
        std::printf("%-14s DSP with TDM %d vs without %d "
                    "(saves %.0f%%)\n",
                    row.name, a1.resources().dsp, a2.resources().dsp,
                    100.0 * (1.0 - static_cast<double>(
                                       a1.resources().dsp) /
                                       a2.resources().dsp));
    }

    banner("Ablation — topology rotation (Atlas)");
    {
        const RobotModel atlas = model::makeAtlas();
        SapConfig on, off;
        off.reroot = false;
        const SapPlan rot = compileSap(atlas, on);
        const SapPlan base = compileSap(atlas, off);
        std::printf("depth: %d (rotated) vs %d (pelvis root); "
                    "paper: 9 vs 11\n",
                    rot.maxDepth, base.maxDepth);
        accel::AccelConfig cfg_on, cfg_off;
        cfg_off.sap.reroot = false;
        Accelerator a_on(atlas, cfg_on), a_off(atlas, cfg_off);
        const auto e_on = a_on.analytic(FunctionType::DeltaID);
        const auto e_off = a_off.analytic(FunctionType::DeltaID);
        std::printf("∆ID latency: %.2f us (rotated) vs %.2f us; "
                    "throughput %.2f vs %.2f M/s\n",
                    e_on.latency_us, e_off.latency_us,
                    e_on.throughput_mtasks, e_off.throughput_mtasks);
    }

    banner("Ablation — per-robot DSP-budget auto-fit");
    for (const Row &row : rows) {
        const RobotModel robot = row.make();
        Accelerator accel(robot);
        const auto est = accel.analytic(FunctionType::DeltaID);
        std::printf("%-14s target_ii=%3d dsp=%5.1f%% ∆ID %6.2f M/s\n",
                    row.name, accel.config().target_ii,
                    accel.resources().dsp_pct, est.throughput_mtasks);
    }

    banner("Ablation — incremental column calculation (Section "
           "IV-A4)");
    {
        // With incremental columns, Df_i processes 2·pathDofs(i)
        // columns; without, every submodule carries the full 2·N
        // columns. Compare the multiplier totals.
        for (const Row &row : {rows[5], rows[2]}) {
            const RobotModel robot = row.make();
            long incremental = 0, full = 0;
            for (int i = 0; i < robot.nb(); ++i) {
                const auto ops = accel::submoduleOps(
                    robot, i, accel::SubmoduleKind::DeltaFwd);
                incremental += ops.mul;
                // Full-width variant: scale by N / pathDofs.
                int path = 0;
                for (int a = i; a != -1; a = robot.parent(a))
                    path += robot.subspace(a).nv();
                full += static_cast<long>(
                    ops.mul * (static_cast<double>(robot.nv()) / path));
            }
            std::printf("%-14s Df multipliers: %ld incremental vs "
                        "%ld full-width (saves %.0f%%)\n",
                        row.name, incremental, full,
                        100.0 * (1.0 - static_cast<double>(incremental) /
                                           full));
        }
    }

    banner("Ablation — fixed-point vs float datapath accuracy (iiwa)");
    {
        const RobotModel robot = model::makeIiwa();
        accel::AccelConfig fx, fl;
        fl.numeric.fixed_point = false;
        fl.numeric.taylor_terms = 12;
        Accelerator afx(robot, fx), afl(robot, fl);
        auto batch = randomBatch(robot, 8);
        const auto ofx = afx.run(FunctionType::ID, batch);
        const auto ofl = afl.run(FunctionType::ID, batch);
        double worst = 0.0;
        for (std::size_t i = 0; i < batch.size(); ++i)
            worst = std::max(worst,
                             (ofx[i].tau - ofl[i].tau).maxAbs());
        std::printf("max |tau_fixed - tau_float| over batch: %.2e "
                    "(Q%d datapath)\n",
                    worst, fx.numeric.frac_bits);
    }
    return 0;
}
