/**
 * @file
 * Experiment E6 — Fig. 17: batched ∆FD (iiwa) at large batch sizes
 * (16 … 8192) against the AGX GPU and RTX 4090M models.
 *
 * The shape to reproduce: Dadu-RBD's time grows linearly from small
 * batches (pipeline already saturated), the GPUs stay flat until
 * their SMs saturate; the RTX 4090M crosses over and wins past batch
 * ≈ 512. Batches ≤ 512 run through the cycle simulator; larger ones
 * use the analytic pipeline model (identical steady-state II, noted
 * in the output).
 */

#include "bench_util.h"

#include <string>

#include "runtime/backends.h"

using namespace dadu;
using namespace dadu::bench;

int
main(int argc, char **argv)
{
    banner("Fig. 17 — batched iiwa ∆FD time (us), log-log shape");
    const RobotModel robot = model::makeIiwa();
    Accelerator accel(robot);
    runtime::AcceleratorBackend backend(accel);
    std::vector<runtime::DynamicsResult> outputs;
    JsonReport report;
    const auto est = accel.analytic(FunctionType::DeltaFD);
    const double freq = accel.config().freq_mhz * 1e6;

    std::printf("%8s %14s %14s %16s\n", "batch", "AGX-GPU",
                "RTX4090M", "Dadu");
    int crossover = -1;
    for (int batch = 16; batch <= 8192; batch *= 2) {
        const double agx = perf::batchedTimeUs(
            perf::Platform::AgxGpu, perf::EvalRobot::Iiwa,
            FunctionType::DeltaFD, batch);
        const double rtx = perf::batchedTimeUs(
            perf::Platform::Rtx4090m, perf::EvalRobot::Iiwa,
            FunctionType::DeltaFD, batch);
        double dadu;
        const char *mode;
        if (batch <= 512) {
            accel::BatchStats stats;
            backend.submit(FunctionType::DeltaFD,
                           randomBatch(robot, batch), outputs, &stats);
            dadu = stats.total_us;
            mode = "(sim)";
        } else {
            dadu = (batch * est.ii_cycles + est.latency_cycles) / freq *
                   1e6;
            mode = "(analytic)";
        }
        std::printf("%8d %14.1f %14.1f %14.1f %s\n", batch, agx, rtx,
                    dadu, mode);
        report.add("fig17_dadu_batch_" + std::to_string(batch) + "_us",
                   dadu);
        if (crossover < 0 && rtx < dadu)
            crossover = batch;
    }
    std::printf("\nRTX 4090M overtakes Dadu-RBD at batch %d "
                "(paper: > 512)\n",
                crossover);
    report.add("fig17_rtx_crossover_batch", crossover);
    maybeWriteJson(argc, argv, report, "BENCH_fig17.json");
    return 0;
}
