/**
 * @file
 * Experiments E1/E2 — Fig. 2 b/c: the end-to-end robot application.
 *
 * (b) Multi-thread scaling of the MPC iteration: relative time vs
 *     thread count, saturating well before 12 threads (the workload
 *     is memory-bound). Single-thread phases are measured on the
 *     host; the scaling curve is the documented model calibrated to
 *     the paper's figure (this container exposes one core).
 * (c) Task breakdown of one iteration: the parallelizable LQ
 *     approximation (dynamics + derivatives) dominates; the paper
 *     highlights a 23.61% derivatives-of-dynamics share within it.
 */

#include "bench_util.h"

#include "app/mpc_workload.h"

using namespace dadu;
using namespace dadu::bench;

int
main()
{
    const RobotModel robot = model::makeQuadrupedArm();
    app::MpcConfig cfg;
    cfg.horizon_points = 64;
    app::MpcWorkload workload(robot, cfg);

    banner("Fig. 2c — task breakdown of one MPC iteration");
    const app::MpcBreakdown b = workload.measureCpu();
    std::printf("LQ approximation (parallelizable): %8.0f us (%.1f%%)\n",
                b.lq_us, 100.0 * b.lq_us / b.total());
    std::printf("RK4 rollout w/ sensitivities:      %8.0f us (%.1f%%)\n",
                b.rollout_us, 100.0 * b.rollout_us / b.total());
    std::printf("Riccati solver sweep (serial):     %8.0f us (%.1f%%)\n",
                b.solver_us, 100.0 * b.solver_us / b.total());
    std::printf("derivatives-of-dynamics share: %.1f%% "
                "(paper highlights 23.61%% of the whole app)\n",
                100.0 * b.derivativeShare());

    banner("Fig. 2b — relative iteration time vs thread count");
    const double t1 = workload.cpuIterationUs(1);
    std::printf("%8s %14s %10s\n", "threads", "time (us)", "relative");
    for (int threads : {1, 2, 4, 6, 8, 10, 12}) {
        const double t = workload.cpuIterationUs(threads);
        std::printf("%8d %14.0f %10.2f\n", threads, t, t / t1);
    }
    std::printf("\nexpected shape: fast drop to ~4 threads, then "
                "flat (Fig. 2b saturates by ~6-8 threads)\n");
    return 0;
}
