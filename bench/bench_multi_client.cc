/**
 * @file
 * Multi-client serving throughput: the asynchronous DynamicsServer
 * over 1, 2 and 4 accelerator shards.
 *
 * Two scenarios, both on the quadruped-with-arm robot of the
 * Section VI-B application:
 *
 *  1. sharded flat batch: one large ∆FD batch split across the
 *     registered accelerator instances by least-loaded water-filling
 *     (the cycle-accurate simulator provides the per-shard makespan;
 *     the executed number is cross-checked against the closed-form
 *     app::scheduleShardedUs model);
 *
 *  2. multi-client MPC traffic: M client threads each submit rounds
 *     of their LQ ∆FD batch (sharded across all instances) plus the
 *     Fig. 13 serial-stage rollout (least-loaded lane) and block on
 *     their own jobs — the heavy-traffic serving pattern of the
 *     ROADMAP north star. Throughput is tasks over the busiest
 *     lane's accumulated backend time (the serving makespan).
 *
 * Every accelerator instance past the first is a clone() of the one
 * fitted bitstream — no re-fit, no SAP recompilation — mirroring how
 * one configuration programs any number of FPGAs.
 *
 * --json writes BENCH_server.json.
 */

#include "bench_util.h"

#include <memory>

#include "app/mpc_workload.h"
#include "app/scheduler.h"
#include "runtime/backends.h"
#include "runtime/server.h"

using namespace dadu;
using namespace dadu::bench;

namespace {

/** Register @p base plus shards-1 clones; clones owned by @p owned. */
void
registerShards(runtime::DynamicsServer &server,
               runtime::AcceleratorBackend &base, int shards,
               std::vector<std::unique_ptr<runtime::DynamicsBackend>> &owned)
{
    server.addBackend(base);
    for (int s = 1; s < shards; ++s) {
        owned.push_back(base.clone());
        server.addBackend(*owned.back());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Async DynamicsServer — multi-client / multi-shard serving");
    const RobotModel robot = model::makeQuadrupedArm();
    Accelerator accel(robot);
    runtime::AcceleratorBackend base(accel);

    const int shard_counts[] = {1, 2, 4};
    JsonReport report;

    // ------------------------------------------------------ scenario 1
    const int flat_n = 768;
    const auto est = accel.analytic(FunctionType::DeltaFD);
    std::printf("\nsharded flat batch (%d x dFD, cycle-accurate sim):\n",
                flat_n);
    std::printf("%8s %14s %14s %10s %8s\n", "shards", "executed us",
                "model us", "exec/mod", "scale");
    const auto flat_reqs = randomBatch(robot, flat_n, 99);
    double flat_us_1 = 0.0;
    for (int shards : shard_counts) {
        std::vector<std::unique_ptr<runtime::DynamicsBackend>> owned;
        runtime::DynamicsServer server;
        registerShards(server, base, shards, owned);
        std::vector<runtime::DynamicsResult> res(flat_n);
        const int job = server.submitSharded(FunctionType::DeltaFD,
                                             flat_reqs.data(), flat_n,
                                             res.data());
        server.drain();
        const double executed = server.jobUs(job);
        const double model = app::scheduleShardedUs(
            flat_n, 1, shards, est.ii_cycles, est.latency_cycles,
            accel.config().freq_mhz);
        if (shards == 1)
            flat_us_1 = executed;
        const double scale = flat_us_1 / executed;
        std::printf("%8d %14.1f %14.1f %10.2f %7.2fx\n", shards,
                    executed, model, executed / model, scale);
        report.add("flat_" + std::to_string(shards) + "shard_us",
                   executed);
        report.add("flat_model_ratio_" + std::to_string(shards),
                   executed / model);
        if (shards > 1)
            report.add("flat_scale_" + std::to_string(shards) + "shards",
                       scale);
    }

    // ------------------------------------------------------ scenario 2
    const int clients = 4, rounds = 2;
    app::MpcConfig cfg;
    cfg.horizon_points = 160;
    app::MpcWorkload workload(robot, cfg);
    std::printf("\nmulti-client MPC traffic (%d clients x %d rounds, "
                "%d-point horizon):\n",
                clients, rounds, cfg.horizon_points);
    std::printf("%8s %14s %14s %12s %8s\n", "shards", "makespan us",
                "busy us", "Mtasks/s", "scale");
    double makespan_1 = 0.0;
    for (int shards : shard_counts) {
        std::vector<std::unique_ptr<runtime::DynamicsBackend>> owned;
        runtime::DynamicsServer server;
        registerShards(server, base, shards, owned);
        const app::MultiClientReport r =
            workload.serveMultiClient(server, clients, rounds);
        if (shards == 1)
            makespan_1 = r.makespan_us;
        const double scale = makespan_1 / r.makespan_us;
        std::printf("%8d %14.1f %14.1f %12.3f %7.2fx\n", shards,
                    r.makespan_us, r.busy_us, r.throughput_mtasks,
                    scale);
        const std::string k = std::to_string(shards);
        report.add("server_" + k + "shard_makespan_us", r.makespan_us);
        report.add("server_" + k + "shard_throughput_mtasks",
                   r.throughput_mtasks);
        if (shards > 1)
            report.add("server_scale_" + k + "shards", scale);
    }

    maybeWriteJson(argc, argv, report, "BENCH_server.json");
    return 0;
}
