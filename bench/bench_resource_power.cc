/**
 * @file
 * Experiment E11 — Section VI-C: resource usage, power and energy.
 *
 * Rows: per-robot configured resource utilization (the paper quotes
 * 62% DSP / 17% FF / 54% LUT for the quadruped-with-arm instance),
 * per-function power for iiwa (paper: 6.2-36.8 W; ∆iFD 31.2 W), and
 * the energy / EDP comparison against Robomorphic (paper: 2.0x
 * energy, 13.2x EDP in Dadu-RBD's favour).
 */

#include "bench_util.h"

#include "perf/power_model.h"
#include "perf/resource_model.h"

using namespace dadu;
using namespace dadu::bench;

int
main()
{
    banner("Section VI-C — resource usage per configuration");
    for (const char *name :
         {"quadruped_arm", "iiwa", "hyq", "atlas", "spot_arm"}) {
        RobotModel robot = std::string(name) == "quadruped_arm"
                               ? model::makeQuadrupedArm()
                           : std::string(name) == "iiwa"
                               ? model::makeIiwa()
                           : std::string(name) == "hyq"
                               ? model::makeHyq()
                           : std::string(name) == "atlas"
                               ? model::makeAtlas()
                               : model::makeSpotArm();
        Accelerator accel(robot);
        std::printf("%-14s %s\n", name,
                    perf::formatResources(accel.resources()).c_str());
    }
    std::printf("paper (quadruped-with-arm): 62%% DSP, 54%% LUT, "
                "17%% FF\n");
    std::printf("Robomorphic:   %s (\"at least half of the DSP\")\n",
                perf::formatResources(perf::robomorphicResources())
                    .c_str());

    banner("Power per function, iiwa configuration (W)");
    const RobotModel iiwa = model::makeIiwa();
    Accelerator accel(iiwa);
    double lo = 1e9, hi = 0.0;
    for (FunctionType fn :
         {FunctionType::ID, FunctionType::FD, FunctionType::M,
          FunctionType::Minv, FunctionType::DeltaID,
          FunctionType::DeltaiFD, FunctionType::DeltaFD}) {
        const auto p = perf::accelPower(accel, fn);
        lo = std::min(lo, p.total());
        hi = std::max(hi, p.total());
        std::printf("%6s: %6.1f W (static %.1f + dynamic %.1f)\n",
                    accel::functionName(fn), p.total(), p.static_w,
                    p.dynamic_w);
    }
    std::printf("range %.1f-%.1f W (paper: 6.2-36.8 W; ∆iFD 31.2 W)\n",
                lo, hi);

    banner("Energy and EDP vs Robomorphic, iiwa ∆iFD");
    const double dadu_e =
        perf::accelEnergyPerTaskUj(accel, FunctionType::DeltaiFD);
    const double dadu_edp =
        perf::accelEdpPerTask(accel, FunctionType::DeltaiFD);
    const double robo_task_us =
        1.0 / perf::paperThroughputMtasks(perf::Platform::Robomorphic,
                                          perf::EvalRobot::Iiwa,
                                          FunctionType::DeltaiFD);
    const double robo_e =
        perf::platformPowerW(perf::Platform::Robomorphic) *
        robo_task_us;
    const double robo_edp = robo_e * robo_task_us;
    std::printf("energy/task: Dadu %.2f uJ vs Robomorphic %.2f uJ "
                "-> %.1fx (paper: 2.0x)\n",
                dadu_e, robo_e, robo_e / dadu_e);
    std::printf("EDP/task:    Dadu %.3f vs Robomorphic %.3f "
                "-> %.1fx (paper: 13.2x)\n",
                dadu_edp, robo_edp, robo_edp / dadu_edp);
    return 0;
}
