/**
 * @file
 * FaultInjectingBackend: a deterministic, seeded fault-injection
 * decorator over any DynamicsBackend.
 *
 * Real accelerators wedge, drop batches, and return garbage under
 * thermal or link faults; the serving layer's failover and retry
 * machinery has to be exercised against those behaviours without
 * waiting for hardware to misbehave on cue. This decorator wraps an
 * inner backend and executes a FaultPlan — latency spikes, transient
 * submit failures, NaN-corrupted results, and permanent death after a
 * batch budget — with every draw taken from a private seeded PRNG so
 * a failing run replays bit-for-bit.
 *
 * The decorator preserves the inner backend's allocation contract:
 * the steady submit path performs no heap allocation of its own
 * (the PRNG and distributions live inline), so zero-alloc backends
 * stay zero-alloc when wrapped.
 */

#ifndef DADU_RUNTIME_FAULT_H
#define DADU_RUNTIME_FAULT_H

#include <cstdint>
#include <memory>
#include <random>
#include <string>

#include "runtime/backend.h"
#include "runtime/obs/trace.h"

namespace dadu::runtime {

/**
 * Deterministic fault schedule for one wrapped backend. Probabilities
 * are per submitted batch and drawn from a PRNG seeded with `seed`,
 * so two decorators with equal plans fault identically. The
 * counter-based knobs (`transient_every_n`, `die_after_batches`)
 * exist for tests that need exact fault positions, not just rates.
 */
struct FaultPlan
{
    unsigned seed = 1u; ///< PRNG seed; clones offset it per replica

    /// Probability a batch's reported makespan is inflated.
    double latency_spike_prob = 0.0;
    /// Inflation added to BatchStats::total_us on a spike.
    double latency_spike_us = 0.0;
    /// Also sleep the spike in wall time (for wall-clock benches).
    bool spike_wall = false;

    /// Probability a batch fails without executing (retryable).
    double transient_fail_prob = 0.0;
    /// If > 0, deterministically fail every Nth batch instead.
    int transient_every_n = 0;

    /// Probability an executed batch has one result NaN-corrupted.
    double corrupt_prob = 0.0;

    /// If >= 0, report BackendDown after this many executed batches.
    long die_after_batches = -1;
};

/**
 * Decorator that wraps an inner backend and injects the faults of a
 * FaultPlan into its submit path. Not thread-safe across concurrent
 * submits (same contract as the backends it wraps: one submitter per
 * instance, which DynamicsServer guarantees per lane).
 */
class FaultInjectingBackend final : public DynamicsBackend
{
  public:
    /** Wrap a borrowed backend; @p inner must outlive the decorator. */
    FaultInjectingBackend(DynamicsBackend &inner, const FaultPlan &plan);

    /** Wrap an owned backend. */
    FaultInjectingBackend(std::unique_ptr<DynamicsBackend> inner,
                          const FaultPlan &plan);

    const char *name() const override { return name_.c_str(); }
    const RobotModel &robot() const override { return inner_->robot(); }
    bool offloaded() const override { return inner_->offloaded(); }

    /**
     * Clones the inner backend and wraps the clone with the same
     * plan, seed offset per replica so sharded lanes fault
     * independently. Null when the inner backend cannot clone.
     */
    std::unique_ptr<DynamicsBackend> clone() const override;

    SubmitStatus submit(FunctionType fn, const DynamicsRequest *requests,
                        std::size_t count, DynamicsResult *results,
                        BatchStats *stats = nullptr) override;

    /** Kill the backend immediately (next submit reports BackendDown). */
    void kill() { dead_ = true; }

    /** True once the plan (or kill()) has declared the backend dead. */
    bool dead() const { return dead_; }

    const FaultPlan &plan() const { return plan_; }

    /**
     * Record every injected fault as an obs::EventKind::Fault on
     * @p ring (null disables, the default). The decorator runs on its
     * lane's serving thread, so pointing it at that lane's trace ring
     * keeps the ring SPSC — injected faults then appear on the same
     * track as the exec/retry events they caused.
     */
    void setTraceRing(obs::TraceRing *ring, int lane = -1)
    {
        trace_ring_ = ring;
        trace_lane_ = lane;
    }

    // Fault counters, for tests asserting exact accounting.
    long batchesSeen() const { return batches_; }
    long transientFaults() const { return transient_faults_; }
    long corruptedBatches() const { return corrupted_; }
    long latencySpikes() const { return spikes_; }

  private:
    bool draw(double prob);
    void corruptOne(FunctionType fn, DynamicsResult *results,
                    std::size_t count);

    DynamicsBackend *inner_;
    std::unique_ptr<DynamicsBackend> owned_;
    FaultPlan plan_;
    std::string name_;
    std::mt19937 rng_;
    bool dead_ = false;
    long batches_ = 0;
    long executed_ = 0;
    long transient_faults_ = 0;
    long corrupted_ = 0;
    long spikes_ = 0;
    mutable unsigned clone_count_ = 0;
    obs::TraceRing *trace_ring_ = nullptr; ///< not cloned; attach per lane
    int trace_lane_ = -1;
};

} // namespace dadu::runtime

#endif // DADU_RUNTIME_FAULT_H
