/**
 * @file
 * Asynchronous execution mode of DynamicsServer: one worker thread
 * per registered backend lane, client-side blocking waits, and the
 * lifecycle (start/stop) around them.
 *
 * The split from server.cc is deliberate: everything here is thread
 * lifecycle; the queue/accounting/sharding logic lives in server.cc
 * and is shared verbatim with the synchronous drain() path, which is
 * what keeps the two modes bitwise-identical in results and
 * accounting.
 */

#include "runtime/server.h"

#include "runtime/obs/aggregate.h"
#include "runtime/obs/endpoint.h"

namespace dadu::runtime {

void
DynamicsServer::startObsPlane()
{
    const obs::ServerObsConfig &o = sched_cfg_.obs;
    const bool stream = o.trace && !o.stream_trace_path.empty();
    if (o.aggregate_interval_ms <= 0 && o.stats_port < 0 && !stream)
        return;
    // Rebuild from scratch: a previous run's aggregator holds cursors
    // positioned at that run's end (and maybe a finalized file).
    endpoint_.reset();
    aggregator_.reset();
    obs::AggregatorConfig acfg;
    acfg.interval_ms = o.aggregate_interval_ms > 0 ? o.aggregate_interval_ms : 100;
    acfg.history = o.aggregate_history;
    if (stream)
        acfg.stream_path = o.stream_trace_path;
    aggregator_ = std::make_unique<obs::ObsAggregator>(*this, acfg);
    aggregator_->start();
    if (o.stats_port >= 0)
    {
        endpoint_ = std::make_unique<obs::StatsEndpoint>(*aggregator_,
                                                         o.stats_port);
        endpoint_->start();
    }
}

void
DynamicsServer::stopObsPlane()
{
    // Endpoint first: it reads the aggregator's snapshots. The
    // aggregator then takes its final tick over the quiesced server
    // (tail events reach the streamed file) and finalizes it. Both
    // objects stay readable until reconfiguration or restart.
    if (endpoint_)
        endpoint_->stop();
    if (aggregator_)
        aggregator_->stop();
}

void
DynamicsServer::start()
{
    if (running())
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = false;
    }
    // Publish running_ BEFORE the workers exist: a client observing
    // false may serve inline (wait() fallback), which must never
    // overlap a worker on the same lane. The mirror-image ordering
    // of stop().
    running_.store(true, std::memory_order_release);
    workers_.reserve(lanes_.size());
    for (int i = 0; i < static_cast<int>(lanes_.size()); ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
    startObsPlane();
}

void
DynamicsServer::stop()
{
    if (!running())
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    for (Lane &lane : lanes_)
        lane.cv.notify_all();
    for (std::thread &w : workers_)
        w.join();
    workers_.clear();
    // A submit() racing stop() can land work on a lane whose worker
    // already observed stop_ and exited; the straggler pass below
    // serves those so every accepted job completes (and wait()ers
    // blocked on them wake). running_ flips BEFORE the pass: any
    // submit the pass's final scan missed must have locked mu_ after
    // the scan, which orders this store before it — so that client's
    // later wait() reads running() == false and serves inline
    // instead of blocking on a cv nobody will signal.
    running_.store(false, std::memory_order_release);
    serveAllSync();
    stopObsPlane();
}

void
DynamicsServer::workerLoop(int lane)
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            Lane &me = lanes_[lane];
            // Manual wait loop so the `waiting` flag brackets the
            // actual sleep: pushWork spends its single thief
            // notification only on lanes that really are asleep.
            // Under a cross-lane (stealing) policy an idle lane also
            // wakes for other lanes' flat work: probe the policy
            // (non-mutating beyond this lane's own pick scratch,
            // which serveOne refreshes anyway).
            // A quarantined lane sleeps until stop(): its queue was
            // failed over and pushWork never offers it new work.
            while (!(stop_ ||
                     (me.healthy &&
                      (!me.work.empty() ||
                       (policy_->crossLane() &&
                        policy_->pick(view_, lane, me.pick)))))) {
                me.waiting = true;
                me.cv.wait(lock);
                me.waiting = false;
            }
            // Finish queued work before honoring stop: jobs already
            // accepted (including chained serial stages, which only
            // ever re-enqueue on their own lane) complete. Work left
            // on OTHER lanes belongs to their workers (and to the
            // straggler pass in stop()), so no stealing past stop.
            if (stop_ && (me.work.empty() || !me.healthy))
                return;
        }
        serveOne(lane);
    }
}

void
DynamicsServer::wait(int job)
{
    if (!running()) {
        // Serve inline, but do NOT drain(): the accounting interval
        // (and job-record retirement) stays untouched, keeping sync
        // and async call sequences equivalent.
        serveAllSync();
        return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    // issuedLocked also covers never-issued ids: waiting on one
    // returns immediately instead of dereferencing past jobs_.
    done_cv_.wait(lock, [&] {
        return !issuedLocked(job) || jobRef(job).done;
    });
}

void
DynamicsServer::waitAll()
{
    if (!running()) {
        serveAllSync();
        return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_jobs_ == 0; });
}

} // namespace dadu::runtime
