/**
 * @file
 * DynamicsServer: a queueing front-end over the DynamicsBackend
 * interface.
 *
 * Multiple clients (robots, workloads, benchmark harnesses) enqueue
 * jobs; drain() serves them in FIFO order over the registered
 * backends and accounts the makespan in backend time. Two job
 * shapes exist:
 *
 *  - flat batches: N independent requests of one function;
 *  - serial-stage jobs (Fig. 13 of the paper): P points x S stages
 *    where stage k+1 of a point consumes stage k's result of the
 *    *same* point. The server realizes the paper's interleaving as
 *    executable scheduling: each stage is submitted as ONE batch of
 *    all P points — the pipeline stays full within a stage and the
 *    latency is paid once per stage boundary — and a caller-supplied
 *    advance callback turns stage-k results into stage-(k+1)
 *    requests between submissions. The resulting makespan matches
 *    the closed-form app::scheduleSerialStagesUs model (validated in
 *    tests), but is now produced by real execution.
 */

#ifndef DADU_RUNTIME_SERVER_H
#define DADU_RUNTIME_SERVER_H

#include <cstddef>
#include <vector>

#include "runtime/backend.h"

namespace dadu::runtime {

/** Aggregate accounting of one drain(). */
struct ServerStats
{
    double busy_us = 0.0;         ///< total backend busy time
    std::size_t jobs = 0;         ///< jobs served
    std::size_t batches = 0;      ///< backend submissions issued
    std::size_t tasks = 0;        ///< individual requests executed
};

/** FIFO job server over one or more dynamics backends. */
class DynamicsServer
{
  public:
    /** Convenience: a server with @p backend pre-registered as id 0. */
    explicit DynamicsServer(DynamicsBackend &backend);

    DynamicsServer() = default;

    /**
     * Register a backend (non-owning; must outlive the server).
     * @return the backend id to tag jobs with.
     */
    int addBackend(DynamicsBackend &backend);

    int backendCount() const { return static_cast<int>(backends_.size()); }
    DynamicsBackend &backend(int id) { return *backends_[id]; }

    /**
     * Stage-boundary callback of a serial-stage job: build the
     * requests of stage @p next_stage (1-based from the second
     * stage) from the previous stage's @p results, updating
     * @p requests in place for all @p points.
     */
    using AdvanceFn = void (*)(void *ctx, int next_stage,
                               const DynamicsResult *results,
                               DynamicsRequest *requests,
                               std::size_t points);

    /**
     * Enqueue a flat batch of @p count requests. Storage for
     * requests and results stays caller-owned and must live until
     * drain() returns.
     * @return a job id for jobUs()/jobStats() after the drain.
     */
    int submit(FunctionType fn, const DynamicsRequest *requests,
               std::size_t count, DynamicsResult *results,
               int backend_id = 0);

    /**
     * Enqueue a Fig. 13 serial-stage job: @p stages chained batches
     * over @p points requests. @p requests is mutated between stages
     * by @p advance (skipped when advance is null); @p results holds
     * the final stage's outputs after the drain.
     */
    int submitSerialStages(FunctionType fn, DynamicsRequest *requests,
                           std::size_t points, int stages,
                           AdvanceFn advance, void *ctx,
                           DynamicsResult *results, int backend_id = 0);

    /** Jobs enqueued but not yet drained. */
    std::size_t pending() const { return queue_.size() - next_; }

    /**
     * Serve every queued job in FIFO order.
     * @return the total backend busy time in microseconds (the
     *         makespan of the drained work on the single-server
     *         backend queue, excluding host time spent in advance
     *         callbacks).
     */
    double drain(ServerStats *stats = nullptr);

    /** Backend busy time of one completed job (µs). */
    double jobUs(int job) const { return queue_[job].busy_us; }

    /** Per-job stats of the *last* submitted batch of the job. */
    const BatchStats &jobStats(int job) const
    {
        return queue_[job].last_stats;
    }

  private:
    struct Job
    {
        FunctionType fn{};
        DynamicsRequest *requests = nullptr;
        const DynamicsRequest *const_requests = nullptr;
        DynamicsResult *results = nullptr;
        std::size_t count = 0;
        int stages = 1;
        AdvanceFn advance = nullptr;
        void *ctx = nullptr;
        int backend = 0;
        bool done = false;
        double busy_us = 0.0;
        BatchStats last_stats{};
    };

    std::vector<DynamicsBackend *> backends_;
    std::vector<Job> queue_;
    std::size_t next_ = 0; ///< first un-served job
};

} // namespace dadu::runtime

#endif // DADU_RUNTIME_SERVER_H
