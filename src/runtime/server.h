/**
 * @file
 * DynamicsServer: a queueing front-end over the DynamicsBackend
 * interface, serving multiple clients over one or more backend
 * instances.
 *
 * Multiple clients (robots, workloads, benchmark harnesses) enqueue
 * jobs; the server runs them over the registered backends and
 * accounts the makespan in backend time. Three job shapes exist:
 *
 *  - flat batches: N independent requests of one function, bound to
 *    one backend (or to the least-loaded one via kLeastLoaded);
 *  - sharded flat batches: one large batch split across ALL
 *    registered backends by least-loaded water-filling, the shards
 *    executing concurrently (one per backend lane) and their
 *    BatchStats merged back into one job-level makespan;
 *  - serial-stage jobs (Fig. 13 of the paper): P points x S stages
 *    where stage k+1 of a point consumes stage k's result of the
 *    *same* point. Each stage is submitted as ONE batch of all P
 *    points — the pipeline stays full within a stage and the latency
 *    is paid once per stage boundary — and a caller-supplied advance
 *    callback turns stage-k results into stage-(k+1) requests
 *    between submissions. Stages of one job stay ordered, but OTHER
 *    clients' work interleaves between its stage boundaries, so a
 *    long rollout does not monopolize its backend lane.
 *
 * QoS scheduling (src/runtime/sched/): what a lane runs next is a
 * pluggable sched::SchedPolicy decision, selected via setPolicy().
 * Jobs optionally carry a sched::JobTag (priority + absolute
 * deadline); the EDF policy pops the earliest-deadline queued item
 * instead of the front, the coalescer merges small same-function
 * flat items of one lane into a single pipeline-filling backend
 * batch (the merged BatchStats split back per job in proportion to
 * task count), and the stealing policy lets a lane with nothing
 * runnable pull queued flat work from a lane stuck behind a long
 * job. The default FIFO policy reproduces the pre-QoS behavior
 * exactly. Lane load is accounted in FD-equivalent task-stages
 * (sched::functionWeight: ∆FD ≈ 1.5x FD), which is what
 * kLeastLoaded and the sharding water-filling balance.
 *
 * Fault tolerance (src/runtime/fault.h, sched/admission.h): submit()
 * can now fail. A TransientFailure is retried on the same lane up to
 * SchedConfig::max_retries times (optionally with NaN/inf validation
 * of the batch results folded into the same budget); a BackendDown —
 * or an exhausted budget — quarantines the lane: its queued flat
 * items fail over to healthy siblings and its lane-sticky
 * serial-stage jobs restart their current stage on one, preserving
 * completed stages. Only when NO healthy lane remains does a job get
 * JobOutcome::Failed. An optional AdmissionPolicy sheds work at
 * submission (JobOutcome::Rejected) before it can destroy tagged
 * deadlines; both outcomes are explicit — wait() returns for them.
 *
 * Execution modes:
 *
 *  - synchronous (default): drain() serves every queued item on the
 *    calling thread, lane by lane — the degenerate single-threaded
 *    case, bitwise-identical in results and accounting to the async
 *    path;
 *  - asynchronous: start() spawns one worker thread per registered
 *    backend; submissions from any number of client threads flow
 *    through a thread-safe queue and execute as they arrive.
 *    wait(job) blocks one client on its own job; drain() becomes
 *    wait-for-all. stop() finishes queued work and joins.
 *
 * Each backend is driven by exactly one lane, so backends never see
 * concurrent submissions — the server provides the thread safety
 * that the backends themselves (batched engines, simulator state)
 * do not. Policies only reorder and regroup queued work under the
 * server lock; stolen items execute on the thief's backend, so the
 * one-submitter-per-backend invariant survives every policy.
 */

#ifndef DADU_RUNTIME_SERVER_H
#define DADU_RUNTIME_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/backend.h"
#include "runtime/obs/metrics.h"
#include "runtime/obs/trace.h"
#include "runtime/sched/admission.h"
#include "runtime/sched/policy.h"

namespace dadu::runtime::obs {
class ObsAggregator;  // aggregate.h
class StatsEndpoint;  // endpoint.h
} // namespace dadu::runtime::obs

namespace dadu::runtime {

/** Aggregate accounting of one drain() interval. */
struct ServerStats
{
    double busy_us = 0.0;     ///< total backend busy time (sum of batches)
    double makespan_us = 0.0; ///< max over backend lanes of accumulated busy
    std::size_t jobs = 0;     ///< jobs served
    std::size_t batches = 0;  ///< backend submissions issued
    std::size_t tasks = 0;    ///< individual requests executed
};

/**
 * Terminal disposition of a submitted job. Every job id returned by a
 * submit call reaches exactly one of the three terminal states, and
 * wait() returns for all of them — rejection and failure are explicit
 * outcomes, never silence.
 */
enum class JobOutcome
{
    Pending,   ///< queued or executing
    Completed, ///< results written (late completion still counts here)
    Rejected,  ///< shed by admission control; results never written
    Failed,    ///< no healthy lane could run it; results unreliable
};

/** Multi-client job server over one or more dynamics backends. */
class DynamicsServer
{
  public:
    /** backend_id wildcard: bind the job to the least-loaded lane. */
    static constexpr int kLeastLoaded = -1;

    /** Convenience: a server with @p backend pre-registered as id 0. */
    explicit DynamicsServer(DynamicsBackend &backend);

    DynamicsServer();

    /** Stops the worker threads if the server is still running. */
    ~DynamicsServer();

    DynamicsServer(const DynamicsServer &) = delete;
    DynamicsServer &operator=(const DynamicsServer &) = delete;

    /**
     * Register a backend (non-owning; must outlive the server).
     * Register every backend before start(); lanes are fixed while
     * the workers run.
     * @return the backend id to tag jobs with.
     */
    int addBackend(DynamicsBackend &backend);

    int backendCount() const { return static_cast<int>(lanes_.size()); }
    DynamicsBackend &backend(int id) { return *lanes_[id].backend; }

    /**
     * Select the scheduling policy (default: plain FIFO, no
     * coalescing, no stealing). Call while the server is idle —
     * before start(), or after stop() with the queues drained.
     * Stealing assumes interchangeable backends (clone()s of one
     * configured instance), like submitSharded().
     */
    void setPolicy(const sched::SchedConfig &cfg);

    const sched::SchedConfig &schedConfig() const { return sched_cfg_; }

    /**
     * Install an admission policy (null disables shedding, the
     * default). Consulted once per submitted job under the server
     * lock; a shed job gets JobOutcome::Rejected and completes
     * immediately without executing. Call while the server is idle,
     * like setPolicy().
     */
    void setAdmission(std::unique_ptr<sched::AdmissionPolicy> policy);

    /**
     * Stage-boundary callback of a serial-stage job: build the
     * requests of stage @p next_stage (1-based from the second
     * stage) from the previous stage's @p results, updating
     * @p requests in place for all @p points. Runs on the worker
     * thread that completed the previous stage (or on the draining
     * thread in synchronous mode); it may re-enter submit().
     */
    using AdvanceFn = void (*)(void *ctx, int next_stage,
                               const DynamicsResult *results,
                               DynamicsRequest *requests,
                               std::size_t points);

    /**
     * Enqueue a flat batch of @p count requests on backend
     * @p backend_id (kLeastLoaded picks the lane with the least
     * outstanding FD-equivalent work at submission time). Storage
     * for requests and results stays caller-owned and must live
     * until the job completes. @p tag optionally attaches QoS
     * metadata (EDF deadline, priority).
     * @return a job id for wait()/jobUs()/jobStats().
     */
    int submit(FunctionType fn, const DynamicsRequest *requests,
               std::size_t count, DynamicsResult *results,
               int backend_id = 0, sched::JobTag tag = {});

    /**
     * Enqueue a flat batch split across ALL registered backends:
     * least-loaded water-filling assigns each lane a contiguous
     * shard sized to equalize outstanding FD-equivalent work, the
     * shards run concurrently, and the job's stats merge to the max
     * shard makespan (shards overlap in backend time). All backends
     * must serve the same robot — register clone()s of one
     * configured backend.
     */
    int submitSharded(FunctionType fn, const DynamicsRequest *requests,
                      std::size_t count, DynamicsResult *results,
                      sched::JobTag tag = {});

    /**
     * Enqueue a Fig. 13 serial-stage job: @p stages chained batches
     * over @p points requests. @p requests is mutated between stages
     * by @p advance (skipped when advance is null); @p results holds
     * the final stage's outputs after completion.
     */
    int submitSerialStages(FunctionType fn, DynamicsRequest *requests,
                           std::size_t points, int stages,
                           AdvanceFn advance, void *ctx,
                           DynamicsResult *results, int backend_id = 0,
                           sched::JobTag tag = {});

    /**
     * Spawn one worker thread per registered backend; submissions
     * from any thread then execute asynchronously. No-op when
     * already running.
     */
    void start();

    /**
     * Finish all queued work and join the workers. Work submitted
     * concurrently with stop() that a worker no longer picks up is
     * served synchronously before stop() returns, so accepted jobs
     * always complete. start()/stop()/drain() themselves are
     * control-plane calls: invoke them from one thread.
     */
    void stop();

    bool running() const
    {
        return running_.load(std::memory_order_acquire);
    }

    /**
     * Block until @p job completes. In synchronous mode this serves
     * pending work inline on the calling thread (without touching
     * the drain() accounting interval); concurrent sync waiters
     * serialize on an internal serving gate.
     */
    void wait(int job);

    /** Block until every submitted job has completed. */
    void waitAll();

    bool jobDone(int job) const;

    /** Jobs enqueued but not yet completed. */
    std::size_t pending() const;

    /**
     * Serve every queued job (synchronous mode) or block until the
     * workers have (asynchronous mode), then report and reset the
     * accounting interval. @p sstats additionally receives what the
     * scheduling policy did over the interval (picks, merges,
     * steals, deadline outcomes).
     * @return the total backend busy time in microseconds since the
     *         previous drain (excluding host time spent in advance
     *         callbacks).
     */
    double drain(ServerStats *stats = nullptr,
                 sched::SchedStats *sstats = nullptr);

    /** Scheduling telemetry accumulated since the last drain(). */
    sched::SchedStats schedStats() const;

    /**
     * Committed FD-equivalent work of one lane (queued task-stages
     * weighted by sched::functionWeight) — what kLeastLoaded and the
     * sharding water-filling balance, exposed so admission control
     * can predict queueing delay before tagging a deadline.
     */
    double laneLoadWeight(int lane) const;

    /**
     * Backend busy time of one completed job (µs): summed over the
     * stages of a serial-stage job, max over the concurrent shards
     * of a sharded batch. A job served inside a coalesced batch is
     * charged its task-proportional share of the merged batch time.
     * Per-job records are retired by the second drain() after
     * completion — read before then.
     */
    double jobUs(int job) const;

    /**
     * Per-job stats: the last submitted batch of an unsharded job,
     * the merged shard stats (max makespan/cycles, summed stalls) of
     * a sharded one. For a job served inside a coalesced batch, the
     * makespan-like fields are its task-proportional share and the
     * rate/latency fields are the merged batch's. Read after the job
     * completed; a retired record (like jobUs(), second drain()
     * after completion) returns zeroed stats.
     */
    BatchStats jobStats(int job) const;

    /**
     * Wall-clock (perf::nowUs) completion time of a finished job —
     * the instant its deadline was checked. 0 for unfinished jobs.
     */
    double jobDoneAtUs(int job) const;

    /**
     * True when the job carried a deadline and completed after it.
     * Every tagged job lands in exactly one of deadline_met /
     * deadline_misses of SchedStats — tagged work is never dropped
     * or parked, late jobs still complete and are reported here.
     */
    bool jobMissedDeadline(int job) const;

    /**
     * Terminal disposition of a job. Pending until completion;
     * Rejected/Failed jobs are done the moment they are recorded
     * (wait() on them returns immediately). Like the other per-job
     * accessors, reads of retired or never-issued ids are safe and
     * return Completed.
     */
    JobOutcome jobOutcome(int job) const;

    /**
     * False once the lane has been quarantined: its backend reported
     * BackendDown or exhausted the transient-retry budget, its queued
     * work failed over to siblings, and it will not be offered work
     * again until the server is reconfigured.
     */
    bool laneHealthy(int lane) const;

    /**
     * The lifecycle trace rings, or null when SchedConfig::obs.trace
     * is off. Rebuilt (emptied) by setPolicy()/addBackend(). Clients
     * wanting their own span track (MpcSession, iLQR) claim a ring
     * AFTER the final setPolicy()/addBackend() call — reconfiguring
     * invalidates claimed rings. Read the rings only while the server
     * is idle (stopped, or drained in sync mode).
     */
    obs::TraceBuffer *traceBuffer() { return trace_.get(); }
    const obs::TraceBuffer *traceBuffer() const { return trace_.get(); }

    /**
     * The metrics registry (histograms / counters / gauges), or null
     * when SchedConfig::obs.metrics is off. Mutated under the server
     * lock; snapshot (copy) it while the server is idle — or at any
     * time via metricsSnapshot(), which copies under the lock.
     */
    const obs::MetricsRegistry *metricsRegistry() const
    {
        return metrics_.get();
    }

    /**
     * Copy the live registry into @p out under the server lock —
     * safe while the workers are serving (unlike metricsRegistry(),
     * this is the aggregator's read path). Returns false (leaving
     * @p out untouched) when metrics are off.
     */
    bool metricsSnapshot(obs::MetricsRegistry &out) const;

    /** Work items queued on @p lane right now (thread-safe). */
    std::size_t laneQueueDepth(int lane) const;

    /**
     * The live-telemetry aggregator, or null when SchedConfig::obs
     * requests none (no aggregate_interval_ms, stats_port, or
     * stream_trace_path). Created by start(); survives stop() — its
     * final tick and the streamed-trace totals stay readable until
     * the next setPolicy()/addBackend()/start().
     */
    obs::ObsAggregator *aggregator() { return aggregator_.get(); }
    const obs::ObsAggregator *aggregator() const { return aggregator_.get(); }

    /**
     * The embedded stats endpoint (live while running), or null when
     * SchedConfig::obs.stats_port < 0. Its port() resolves ephemeral
     * binds (stats_port = 0).
     */
    obs::StatsEndpoint *statsEndpoint() { return endpoint_.get(); }

  private:
    struct Job
    {
        FunctionType fn{};
        DynamicsRequest *requests = nullptr;
        const DynamicsRequest *const_requests = nullptr;
        DynamicsResult *results = nullptr;
        std::size_t count = 0;
        int stages = 1;
        AdvanceFn advance = nullptr;
        void *ctx = nullptr;
        int stage = 0;          ///< stages completed so far
        int remaining = 0;      ///< outstanding work items
        bool sharded = false;
        bool done = false;
        JobOutcome outcome = JobOutcome::Pending;
        int priority = 0;                           ///< EDF tie-break
        double deadline_us = sched::kNoDeadline;    ///< absolute target
        /**
         * Per-task FD-equivalent weight, live-column aware: the mean
         * over the batch of sched::functionWeight(fn, live, nv).
         * Dense batches get exactly functionWeight(fn), so ungated
         * load accounting is bitwise-unchanged. Every load_weight
         * credit/debit of this job uses THIS value, keeping the
         * lane-load books balanced.
         */
        double unit_weight = 1.0;
        /** Batch mask signature (sched::maskSignature; 0 = dense). */
        std::uint64_t mask_sig = 0;
        double done_at_us = 0.0; ///< wall completion time (done only)
        bool missed = false;     ///< completed after its deadline
        double busy_us = 0.0;
        BatchStats last_stats{};
        // Observability fields; only written when obs is enabled.
        double submit_at_us = 0.0;     ///< wall submission time
        double first_pick_at_us = 0.0; ///< first serve pick (queue wait end)
        double predicted_done_us = 0.0; ///< admission-model completion estimate
    };

    /** One queued slice of a job, bound to a lane. */
    struct WorkItem
    {
        int job = 0;
        std::size_t begin = 0;
        std::size_t count = 0;
    };

    /**
     * One backend with its work queue and accounting. load_weight is
     * the lane's COMMITTED work in FD-equivalent task-stages
     * (sched::functionWeight), not just the queued items: a
     * serial-stage job charges points x stages up front (its later
     * stages are lane-sticky, so the lane owes that work even though
     * only one stage is queued at a time) and pays one stage's worth
     * back per completed batch. Each lane has its own worker wakeup
     * cv so a pushed item wakes only the target lane's worker (all
     * waits still use the shared mu_; cross-lane policies
     * additionally wake ONE sleeping lane — flagged by `waiting` —
     * as a potential thief).
     *
     * The pick/picked/gather fields are the serve-step scratch of
     * the ONE thread currently serving this lane (its async worker,
     * or the synchronous serving loop) — grow-only, reused, and
     * never touched concurrently.
     */
    struct Lane
    {
        DynamicsBackend *backend = nullptr;
        std::deque<WorkItem> work;
        std::condition_variable cv;
        bool waiting = false;       ///< worker asleep in cv.wait (async)
        bool healthy = true;        ///< false once quarantined
        std::size_t flat_queued = 0; ///< stealable items in `work`
        double load_weight = 0.0; ///< committed FD-equivalent task-stages
        double busy_us = 0.0;     ///< accumulated batch time (interval)
        sched::Pick pick;                    ///< policy decision scratch
        std::vector<WorkItem> picked;        ///< items popped this serve
        std::vector<const DynamicsRequest *> picked_req; ///< per item
        std::vector<DynamicsResult *> picked_res;        ///< per item
        std::vector<DynamicsRequest> co_req; ///< merged-batch gather
        std::vector<DynamicsResult> co_res;  ///< merged-batch scatter
    };

    /** sched::QueueView over the lanes (server mutex held). */
    class QueueAdapter : public sched::QueueView
    {
      public:
        explicit QueueAdapter(const DynamicsServer *server)
            : server_(server)
        {}
        int lanes() const override
        {
            return static_cast<int>(server_->lanes_.size());
        }
        std::size_t depth(int lane) const override
        {
            return server_->lanes_[lane].work.size();
        }
        sched::ItemView item(int lane, std::size_t pos) const override;
        std::size_t flatCount(int lane) const override
        {
            return server_->lanes_[lane].flat_queued;
        }

      private:
        const DynamicsServer *server_;
    };

    // All private helpers below assume mu_ is held unless noted.
    int enqueueJob(Job job, int backend_id);
    int leastLoadedLane();
    int healthyLaneCount() const;
    void pushWork(int lane, WorkItem item);
    Job &jobRef(int id) { return jobs_[id - retire_base_]; }
    const Job &jobRef(int id) const { return jobs_[id - retire_base_]; }
    /** True when @p id names a live (non-retired, issued) record. */
    bool issuedLocked(int id) const
    {
        return id >= 0 && static_cast<std::size_t>(id) >= retire_base_ &&
               static_cast<std::size_t>(id) < retire_base_ + jobs_.size();
    }
    /** Record a job that terminates at submission (shed / no lane). */
    int recordTerminalJob(Job job, JobOutcome outcome);
    /** Admission decision for @p job bound for @p lane. */
    bool admitLocked(const Job &job, int lane, double now_us);
    /**
     * FD-equivalent work on @p lane that would run before @p job
     * under the current policy (EDF: queued items with deadline ≤
     * the job's; FIFO: the whole lane load) — the admission model's
     * competing-weight input, shared by shedding and by the
     * predicted-completion estimate the metrics registry tracks.
     */
    double competingWeightLocked(const Job &job, int lane) const;
    /** Rebuild trace_/metrics_ to match sched_cfg_.obs and lane count. */
    void reconfigureObs();
    /** Create + start aggregator/endpoint per sched_cfg_.obs (from start()). */
    void startObsPlane();
    /** Final aggregator tick + endpoint shutdown (from stop()). */
    void stopObsPlane();
    /**
     * Quarantine @p lane after an unrecoverable fault: requeue its
     * queued and picked items onto healthy siblings (serial-stage
     * jobs restart their current stage there), fail jobs when no
     * healthy lane remains.
     */
    void failLane(int lane);
    /** Pop + execute one policy pick on @p lane. WITHOUT mu_ held. */
    bool serveOne(int lane);
    /** Batch completion for every item of the lane's current pick:
     *  accounting, deadline check, stage chaining, shard merge. */
    void completePicked(int lane, const BatchStats &stats,
                        std::size_t total);
    /**
     * Serve every lane on this thread until empty (WITHOUT mu_).
     * Whole-loop exclusive via serve_mu_: concurrent synchronous
     * clients (wait() without start()) serialize here, so a backend
     * never sees two submitting threads. Do not call from inside an
     * advance callback (it would self-deadlock on the gate).
     */
    void serveAllSync();
    void workerLoop(int lane);
    double snapshotAndReset(ServerStats *stats,
                            sched::SchedStats *sstats);

    mutable std::mutex mu_;
    std::mutex serve_mu_; ///< one synchronous serving loop at a time
    std::condition_variable done_cv_; ///< clients: job / queue completion
    std::deque<Lane> lanes_; ///< deque: Lane owns a cv, never moves
    /**
     * Live job records (deque: stable refs across reentrant submit).
     * Job ids are absolute submission indices; jobs_[i] holds id
     * retire_base_ + i. drain() retires records of jobs that were
     * already complete at the PREVIOUS drain, so a long-running
     * server does not accumulate history — which bounds the lifetime
     * of per-job accounting: read jobUs()/jobStats() before the
     * second drain() after the job completed.
     */
    std::deque<Job> jobs_;
    std::size_t retire_base_ = 0; ///< id of jobs_.front()
    std::size_t retire_mark_ = 0; ///< ids below this may retire
    std::vector<std::thread> workers_;
    // Grow-only sharding scratch, reused under mu_ so steady-state
    // sharded submission does not allocate while holding the lock.
    std::vector<std::size_t> order_scratch_, share_scratch_;
    std::vector<double> eff_scratch_, fshare_scratch_;
    std::atomic<bool> running_{false};
    bool stop_ = false;
    std::size_t pending_jobs_ = 0;
    int rr_next_ = 0;    ///< round-robin cursor for load ties
    int thief_next_ = 0; ///< round-robin cursor for steal wakeups
    ServerStats stats_{}; ///< accounting since the last drain()
    sched::SchedConfig sched_cfg_{};
    std::unique_ptr<sched::SchedPolicy> policy_;
    std::unique_ptr<sched::AdmissionPolicy> admission_;
    sched::SchedStats sched_stats_{}; ///< policy telemetry (interval)
    /**
     * EWMA of measured per-task backend time in FD-equivalent units
     * (batch total_us / (tasks x functionWeight)), fed to admission
     * predictions. 0 until the first batch completes.
     */
    double task_us_ewma_ = 0.0;
    /**
     * Observability state; null when the matching ServerObsConfig
     * flag is off, so every hook is `if (trace_)` / `if (metrics_)`.
     * Lane ring i is written only by the thread serving lane i; the
     * control ring only under mu_; the registry only under mu_.
     */
    std::unique_ptr<obs::TraceBuffer> trace_;
    std::unique_ptr<obs::MetricsRegistry> metrics_;
    /**
     * Live telemetry plane: built by start() when sched_cfg_.obs asks
     * for any of it, torn down (endpoint) / finalized (aggregator) by
     * stop(). The aggregator object outlives stop() so its totals and
     * time-series stay readable; reconfigureObs() destroys both.
     */
    std::unique_ptr<obs::ObsAggregator> aggregator_;
    std::unique_ptr<obs::StatsEndpoint> endpoint_;
    QueueAdapter view_{this};
};

} // namespace dadu::runtime

#endif // DADU_RUNTIME_SERVER_H
