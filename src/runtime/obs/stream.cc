#include "runtime/obs/stream.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>

namespace dadu::runtime::obs {

std::size_t TraceReader::read(TraceEvent *out, std::size_t max)
{
    const std::uint64_t cap = ring_->capacity();
    const std::uint64_t h1 = ring_->recorded(); // acquire
    // Drop-oldest already claimed [0, h1 - cap): the producer reused
    // those slots, so the cursor can only concede them.
    const std::uint64_t tail = h1 > cap ? h1 - cap : 0;
    if (next_ < tail)
    {
        dropped_ += tail - next_;
        next_ = tail;
    }
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(max, h1 - next_));
    if (n == 0)
        return 0;

    for (std::size_t i = 0; i < n; ++i)
        out[i] = ring_->loadSlot(next_ + i);

    // Order the copy loads before the h2 probe: an acquire load only
    // stops LATER accesses from moving up, so without the fence the
    // copies could sink past it and tear undetected.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::uint64_t h2 = ring_->recorded(); // acquire
    // While we copied, the producer advanced to h2; writing sequence
    // number h2 scribbles over the slot of h2 - cap, so every copied
    // sequence number ≤ h2 - cap may be torn. Discard exactly those.
    const std::uint64_t invalid_below = h2 >= cap ? h2 - cap + 1 : 0;
    std::size_t skip = 0;
    if (invalid_below > next_)
        skip = static_cast<std::size_t>(
            std::min<std::uint64_t>(invalid_below - next_, n));
    if (skip)
    {
        std::memmove(out, out + skip, (n - skip) * sizeof(TraceEvent));
        dropped_ += skip;
    }
    next_ += n;
    delivered_ += n - skip;
    return n - skip;
}

TraceStreamer::TraceStreamer(const TraceBuffer &buf, std::size_t chunk_events)
    : buf_(&buf), chunk_(chunk_events == 0 ? 1 : chunk_events)
{
    scratch_.resize(chunk_);
    ensureReaders();
}

void TraceStreamer::ensureReaders()
{
    const std::size_t n = buf_->ringCount();
    while (readers_.size() < n)
    {
        readers_.emplace_back(&buf_->ring(readers_.size()));
        announced_.push_back(0);
    }
}

bool TraceStreamer::openFile(const std::string &path)
{
    return writer_.open(path);
}

std::size_t TraceStreamer::flush()
{
    if (!writer_.isOpen())
        return 0;
    ensureReaders();
    const std::size_t n_rings = readers_.size();

    if (!have_t0_)
    {
        // First flush: buffer each ring's backlog so the time base
        // can be fixed at the earliest drained event BEFORE anything
        // is written — later chunks reuse it, keeping timestamps
        // consistent across the whole file. On a quiesced buffer this
        // path reproduces writeChromeTrace() byte for byte.
        std::vector<std::vector<TraceEvent>> backlog(n_rings);
        double t0 = std::numeric_limits<double>::infinity();
        std::size_t total = 0;
        for (std::size_t r = 0; r < n_rings; ++r)
        {
            std::size_t got;
            while ((got = readers_[r].read(scratch_.data(), chunk_)) > 0)
            {
                backlog[r].insert(backlog[r].end(), scratch_.begin(),
                                  scratch_.begin() + static_cast<long>(got));
                total += got;
            }
            for (const TraceEvent &ev : backlog[r])
                if (ev.t_us < t0)
                    t0 = ev.t_us;
        }
        if (total == 0)
            return 0; // nothing yet; try to fix the base next flush
        writer_.setTimeBaseUs(std::isfinite(t0) ? t0 : 0.0);
        have_t0_ = true;
        for (std::size_t r = 0; r < n_rings; ++r)
        {
            if (!announced_[r])
            {
                writer_.threadName(r, buf_->ring(r).name());
                announced_[r] = 1;
            }
            for (const TraceEvent &ev : backlog[r])
                writer_.event(ev, r);
        }
        return total;
    }

    std::size_t total = 0;
    for (std::size_t r = 0; r < n_rings; ++r)
    {
        std::size_t got;
        while ((got = readers_[r].read(scratch_.data(), chunk_)) > 0)
        {
            if (!announced_[r])
            {
                writer_.threadName(r, buf_->ring(r).name());
                announced_[r] = 1;
            }
            for (std::size_t i = 0; i < got; ++i)
                writer_.event(scratch_[i], r);
            total += got;
        }
    }
    return total;
}

bool TraceStreamer::closeFile()
{
    if (!writer_.isOpen())
        return false;
    return writer_.close(dropped());
}

std::uint64_t TraceStreamer::delivered() const
{
    std::uint64_t n = 0;
    for (const TraceReader &r : readers_)
        n += r.delivered();
    return n;
}

std::uint64_t TraceStreamer::dropped() const
{
    std::uint64_t n = 0;
    for (const TraceReader &r : readers_)
        n += r.dropped();
    return n;
}

} // namespace dadu::runtime::obs
