/**
 * @file
 * Metrics registry: log-bucketed latency histograms, exact counters,
 * and gauges for the serving layer.
 *
 * Histogram scheme. Buckets are logarithmic in microseconds with 16
 * sub-buckets per octave (power of two): bucket widths are ≤ 1/16 of
 * an octave, i.e. every recorded value is representable to within
 * ~4.4% relative error. 20 octaves cover [1µs, ~1.05s); values below
 * 1µs land in a dedicated underflow bucket and values at or above
 * 2^20 µs in an overflow bucket. Exact count/sum/min/max ride along,
 * so mean is exact and percentile extraction is guaranteed to land
 * within one bucket of the exact order statistic.
 *
 * Everything here is mutated under the server mutex (or by a single
 * bench thread); the registry itself takes no locks and performs no
 * allocation after construction. It is copyable so benches can
 * snapshot it while a server is merely idle rather than destroyed.
 */

#ifndef DADU_RUNTIME_OBS_METRICS_H
#define DADU_RUNTIME_OBS_METRICS_H

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "runtime/request.h"

namespace dadu::runtime::obs {

/** Log-bucketed latency histogram over microsecond samples. */
class LatencyHistogram
{
  public:
    static constexpr int kSubBuckets = 16; ///< per octave ⇒ ≤4.4% bucket width
    static constexpr int kOctaves = 20;    ///< [2^0, 2^20) µs ≈ [1µs, 1.05s)
    static constexpr int kBuckets = kOctaves * kSubBuckets + 2; ///< +under/overflow

    /** Bucket index of a sample. 0 = underflow (<1µs), kBuckets-1 = overflow. */
    static int bucketIndex(double us)
    {
        if (!(us >= 1.0))
            return 0; // <1µs, negative, and NaN all underflow
        if (us >= static_cast<double>(1u << kOctaves))
            return kBuckets - 1;
        int exp = 0;
        const double m = std::frexp(us, &exp); // us = m·2^exp, m ∈ [0.5, 1)
        const int octave = exp - 1;            // us ∈ [2^octave, 2^(octave+1))
        int sub = static_cast<int>((m - 0.5) * 2.0 * kSubBuckets);
        if (sub < 0)
            sub = 0;
        if (sub >= kSubBuckets)
            sub = kSubBuckets - 1;
        return 1 + octave * kSubBuckets + sub;
    }

    /** Inclusive lower edge of bucket i, in µs (0 for the underflow bucket). */
    static double bucketLowUs(int i)
    {
        if (i <= 0)
            return 0.0;
        if (i >= kBuckets - 1)
            return static_cast<double>(1u << kOctaves);
        const int octave = (i - 1) / kSubBuckets;
        const int sub = (i - 1) % kSubBuckets;
        const double lo = std::ldexp(1.0, octave);
        return lo * (1.0 + static_cast<double>(sub) / kSubBuckets);
    }

    /** Exclusive upper edge of bucket i, in µs (inf for the overflow bucket). */
    static double bucketHighUs(int i)
    {
        if (i <= 0)
            return 1.0;
        if (i >= kBuckets - 1)
            return std::numeric_limits<double>::infinity();
        const int octave = (i - 1) / kSubBuckets;
        const int sub = (i - 1) % kSubBuckets;
        const double lo = std::ldexp(1.0, octave);
        return lo * (1.0 + static_cast<double>(sub + 1) / kSubBuckets);
    }

    void record(double us)
    {
        ++buckets_[static_cast<std::size_t>(bucketIndex(us))];
        ++count_;
        sum_ += us;
        if (us < min_)
            min_ = us;
        if (us > max_)
            max_ = us;
    }

    std::uint64_t count() const { return count_; }
    double sumUs() const { return sum_; }
    double meanUs() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
    double minUs() const { return count_ ? min_ : 0.0; }
    double maxUs() const { return count_ ? max_ : 0.0; }
    std::uint64_t bucketCount(int i) const
    {
        return buckets_[static_cast<std::size_t>(i)];
    }

    /**
     * Percentile estimate: the midpoint of the bucket holding the
     * ceil(p·count)-th order statistic, clamped to the observed
     * [min, max]. Always within one bucket of the exact value.
     */
    double percentileUs(double p) const;

    void merge(const LatencyHistogram &other);
    void reset();

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Which latency a histogram measures. */
enum class LatKind : std::uint8_t
{
    QueueWait,  ///< submit → first picked by a serving thread
    Service,    ///< modeled backend busy time attributed to the job
    EndToEnd,   ///< submit → all items completed
};
constexpr int kLatKinds = 3;

/** Monotonic event counters. */
enum class Counter : std::uint8_t
{
    JobsSubmitted,
    JobsCompleted,
    JobsRejected,
    JobsFailed,
    DeadlineMet,
    DeadlineMissed,
    TransientFaults,
    Retries,
    LaneDeaths,
    StolenItems,
    CoalescedItems,
    AdmissionSamples, ///< completions with a recorded admission prediction
};
constexpr int kCounters = 12;

/** Point-in-time values. */
enum class Gauge : std::uint8_t
{
    TaskUsEwma,          ///< the admission predictor's per-task time estimate
    AdmissionErrRelEwma, ///< EWMA of |actual-predicted| / predicted horizon
    AdmissionLastErrUs,  ///< signed actual-minus-predicted of the last sample
};
constexpr int kGauges = 3;

constexpr int kFunctionTypes = 7; ///< matches FunctionType's enumerator count

/**
 * One server's metrics: histograms keyed by (function, tagged, kind),
 * counters, gauges, and per-lane load. Fixed-size after construction.
 */
class MetricsRegistry
{
  public:
    explicit MetricsRegistry(int lanes) : lane_load_(static_cast<std::size_t>(lanes), 0.0) {}

    LatencyHistogram &histogram(FunctionType fn, bool tagged, LatKind kind)
    {
        return hist_[static_cast<std::size_t>(fn)][tagged ? 1 : 0]
                    [static_cast<std::size_t>(kind)];
    }
    const LatencyHistogram &histogram(FunctionType fn, bool tagged, LatKind kind) const
    {
        return hist_[static_cast<std::size_t>(fn)][tagged ? 1 : 0]
                    [static_cast<std::size_t>(kind)];
    }

    /** All-function merged view of one (tagged, kind) cell. */
    LatencyHistogram mergedHistogram(bool tagged, LatKind kind) const;

    void add(Counter c, std::uint64_t n = 1)
    {
        counters_[static_cast<std::size_t>(c)] += n;
    }
    std::uint64_t counter(Counter c) const
    {
        return counters_[static_cast<std::size_t>(c)];
    }

    void set(Gauge g, double v)
    {
        gauges_[static_cast<std::size_t>(g)] = v;
        ++gauge_samples_[static_cast<std::size_t>(g)];
    }
    double gauge(Gauge g) const { return gauges_[static_cast<std::size_t>(g)]; }

    /** Exponentially-weighted update; the first sample seeds the gauge. */
    void ewma(Gauge g, double sample, double alpha = 0.2)
    {
        double &v = gauges_[static_cast<std::size_t>(g)];
        std::uint64_t &n = gauge_samples_[static_cast<std::size_t>(g)];
        v = n == 0 ? sample : (1.0 - alpha) * v + alpha * sample;
        ++n;
    }
    std::uint64_t gaugeSamples(Gauge g) const
    {
        return gauge_samples_[static_cast<std::size_t>(g)];
    }

    void setLaneLoad(int lane, double weight)
    {
        lane_load_[static_cast<std::size_t>(lane)] = weight;
    }
    double laneLoad(int lane) const { return lane_load_[static_cast<std::size_t>(lane)]; }
    int lanes() const { return static_cast<int>(lane_load_.size()); }

  private:
    std::array<std::array<std::array<LatencyHistogram, kLatKinds>, 2>, kFunctionTypes>
        hist_{};
    std::array<std::uint64_t, kCounters> counters_{};
    std::array<double, kGauges> gauges_{};
    std::array<std::uint64_t, kGauges> gauge_samples_{};
    std::vector<double> lane_load_;
};

} // namespace dadu::runtime::obs

#endif // DADU_RUNTIME_OBS_METRICS_H
