/**
 * @file
 * Exporters for the observability layer.
 *
 * writeChromeTrace() serializes a TraceBuffer as Chrome trace-event
 * JSON (the {"traceEvents": [...]} object form): each ring becomes a
 * named thread track (pid 0, tid = ring index), span-shaped kinds
 * (exec, MPC tick, iLQR iteration) become "B"/"E" duration events,
 * everything else becomes an instant, and each job's submit → picked
 * → completed path is stitched with "s"/"t"/"f" flow events keyed by
 * job id. The file loads directly in chrome://tracing and Perfetto.
 *
 * The emit* helpers flatten histograms and a MetricsRegistry into
 * (key, value) pairs for the flat schema-stamped JSON reports the
 * benches write via bench_util's JsonReport.
 */

#ifndef DADU_RUNTIME_OBS_EXPORT_H
#define DADU_RUNTIME_OBS_EXPORT_H

#include <functional>
#include <string>

#include "runtime/obs/metrics.h"
#include "runtime/obs/trace.h"

namespace dadu::runtime::obs {

/** ASCII function short-name for JSON keys (id/fd/m/minv/did/dfd/difd). */
const char *shortFunctionName(FunctionType fn);

/**
 * Write the buffer as Chrome trace-event JSON. Producers must be
 * quiesced (server idle, clients joined). Timestamps are rebased so
 * the earliest event is ts=0. Returns false if the file could not be
 * opened or written.
 */
bool writeChromeTrace(const TraceBuffer &buf, const std::string &path);

/** Receives one flat (key, value) report entry. */
using MetricEmitFn = std::function<void(const std::string &key, double value)>;

/**
 * Flatten one histogram: <prefix>_count/_mean_us/_min_us/_max_us,
 * _p50/_p90/_p99/_p999_us, and one <prefix>_b<i> entry per NONZERO
 * bucket (bucket edges are derivable from the scheme keys; see
 * emitHistogramScheme).
 */
void emitHistogram(const LatencyHistogram &h, const std::string &prefix,
                   const MetricEmitFn &emit);

/**
 * Emit the bucket-scheme constants once per report:
 * hist_sub_buckets, hist_octaves, hist_buckets. Bucket i (1-based up
 * to hist_buckets-2) spans [2^o·(1+s/S), 2^o·(1+(s+1)/S)) µs with
 * o=(i-1)/S, s=(i-1)%S; bucket 0 is <1µs, the last is overflow.
 */
void emitHistogramScheme(const MetricEmitFn &emit);

/**
 * Flatten a registry under <prefix>: counters, gauges, per-lane
 * loads, and the merged tagged/bulk queue-wait / service / e2e
 * histograms (via emitHistogram).
 */
void emitRegistry(const MetricsRegistry &m, const std::string &prefix,
                  const MetricEmitFn &emit);

} // namespace dadu::runtime::obs

#endif // DADU_RUNTIME_OBS_EXPORT_H
