/**
 * @file
 * Exporters for the observability layer.
 *
 * ChromeTraceWriter serializes TraceEvents as Chrome trace-event
 * JSON (the {"traceEvents": [...]} object form): each ring becomes a
 * named thread track (pid 0, tid = ring index), span-shaped kinds
 * (exec, MPC tick, iLQR iteration) become "B"/"E" duration events,
 * everything else becomes an instant, and each job's submit → picked
 * → completed path is stitched with "s"/"t"/"f" flow events keyed by
 * job id. The file loads directly in chrome://tracing and Perfetto.
 * The same writer backs the quiesced one-shot exporter
 * (writeChromeTrace) and the live chunked streamer (stream.h's
 * TraceStreamer); a given event sequence produces identical bytes
 * either way, which is how the streaming contract is tested.
 *
 * The emit* helpers flatten histograms and a MetricsRegistry into
 * (key, value) pairs for the flat schema-stamped JSON reports the
 * benches write via bench_util's JsonReport.
 */

#ifndef DADU_RUNTIME_OBS_EXPORT_H
#define DADU_RUNTIME_OBS_EXPORT_H

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "runtime/obs/metrics.h"
#include "runtime/obs/trace.h"

namespace dadu::runtime::obs {

/** ASCII function short-name for JSON keys (id/fd/m/minv/did/dfd/difd). */
const char *shortFunctionName(FunctionType fn);

/** Snake-case report key of a counter (e.g. "jobs_submitted"). */
const char *counterKeyName(Counter c);

/** Snake-case report key of a gauge (e.g. "task_us_ewma"). */
const char *gaugeKeyName(Gauge g);

/**
 * Incremental Chrome trace-event JSON writer. Usage: open(), set the
 * time base (all timestamps are rebased so t0 maps to ts = 0), then
 * any interleaving of threadName()/event() calls, then close() —
 * which appends the "droppedEvents" footer, making the object valid
 * JSON. One writer per file; not thread-safe (the one streaming or
 * exporting thread owns it).
 */
class ChromeTraceWriter
{
  public:
    ChromeTraceWriter() = default;
    ~ChromeTraceWriter();

    ChromeTraceWriter(const ChromeTraceWriter &) = delete;
    ChromeTraceWriter &operator=(const ChromeTraceWriter &) = delete;

    /** Open @p path and write the object header. */
    bool open(const std::string &path);
    bool isOpen() const { return f_ != nullptr; }

    /** Wall time (µs) that maps to ts = 0. Set before the first event(). */
    void setTimeBaseUs(double t0) { t0_ = t0; }
    double timeBaseUs() const { return t0_; }

    /** Emit the thread_name metadata record of track @p tid. */
    void threadName(std::size_t tid, const char *name);

    /** Emit one event (plus its flow stitch, for flow-relevant kinds). */
    void event(const TraceEvent &ev, std::size_t tid);

    /** Write the footer (with the final dropped count) and close. */
    bool close(std::uint64_t dropped_events);

  private:
    void comma();

    std::FILE *f_ = nullptr;
    double t0_ = 0.0;
    bool first_ = true;
};

/**
 * Write the buffer as Chrome trace-event JSON. Producers must be
 * quiesced (server idle, clients joined). Timestamps are rebased so
 * the earliest event is ts=0. Returns false if the file could not be
 * opened or written.
 */
bool writeChromeTrace(const TraceBuffer &buf, const std::string &path);

/** Receives one flat (key, value) report entry. */
using MetricEmitFn = std::function<void(const std::string &key, double value)>;

/**
 * Flatten one histogram: <prefix>_count/_mean_us/_min_us/_max_us,
 * _p50/_p90/_p99/_p999_us, and one <prefix>_b<i> entry per NONZERO
 * bucket (bucket edges are derivable from the scheme keys; see
 * emitHistogramScheme).
 */
void emitHistogram(const LatencyHistogram &h, const std::string &prefix,
                   const MetricEmitFn &emit);

/**
 * Emit the bucket-scheme constants once per report:
 * hist_sub_buckets, hist_octaves, hist_buckets. Bucket i (1-based up
 * to hist_buckets-2) spans [2^o·(1+s/S), 2^o·(1+(s+1)/S)) µs with
 * o=(i-1)/S, s=(i-1)%S; bucket 0 is <1µs, the last is overflow.
 */
void emitHistogramScheme(const MetricEmitFn &emit);

/**
 * Flatten a registry under <prefix>: counters, gauges, per-lane
 * loads, and the merged tagged/bulk queue-wait / service / e2e
 * histograms (via emitHistogram).
 */
void emitRegistry(const MetricsRegistry &m, const std::string &prefix,
                  const MetricEmitFn &emit);

} // namespace dadu::runtime::obs

#endif // DADU_RUNTIME_OBS_EXPORT_H
