#include "runtime/obs/metrics.h"

namespace dadu::runtime::obs {

double LatencyHistogram::percentileUs(double p) const
{
    if (count_ == 0)
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 1.0)
        p = 1.0;
    // Rank of the order statistic we want, 1-based, clamped into range.
    std::uint64_t rank =
        static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(count_)));
    if (rank < 1)
        rank = 1;
    if (rank > count_)
        rank = count_;

    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i)
    {
        seen += buckets_[static_cast<std::size_t>(i)];
        if (seen >= rank)
        {
            double lo = bucketLowUs(i);
            double hi = bucketHighUs(i);
            if (!std::isfinite(hi))
                hi = max_; // overflow bucket: best representative is the max
            double rep = 0.5 * (lo + hi);
            // Clamping to observed extrema keeps the estimate inside the
            // data range (and makes single-sample buckets exact at the ends).
            if (rep < min_)
                rep = min_;
            if (rep > max_)
                rep = max_;
            return rep;
        }
    }
    return max_;
}

void LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (int i = 0; i < kBuckets; ++i)
        buckets_[static_cast<std::size_t>(i)] +=
            other.buckets_[static_cast<std::size_t>(i)];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_)
    {
        if (other.min_ < min_)
            min_ = other.min_;
        if (other.max_ > max_)
            max_ = other.max_;
    }
}

void LatencyHistogram::reset()
{
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

LatencyHistogram MetricsRegistry::mergedHistogram(bool tagged, LatKind kind) const
{
    LatencyHistogram out;
    for (int f = 0; f < kFunctionTypes; ++f)
        out.merge(hist_[static_cast<std::size_t>(f)][tagged ? 1 : 0]
                       [static_cast<std::size_t>(kind)]);
    return out;
}

} // namespace dadu::runtime::obs
