#include "runtime/obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace dadu::runtime::obs {

const char *shortFunctionName(FunctionType fn)
{
    switch (fn)
    {
    case FunctionType::ID: return "id";
    case FunctionType::FD: return "fd";
    case FunctionType::M: return "m";
    case FunctionType::Minv: return "minv";
    case FunctionType::DeltaID: return "did";
    case FunctionType::DeltaFD: return "dfd";
    case FunctionType::DeltaiFD: return "difd";
    }
    return "fn";
}

namespace {

/** Chrome phase of an event kind: duration begin/end, or instant. */
char phaseOf(EventKind k)
{
    switch (k)
    {
    case EventKind::ExecBegin:
    case EventKind::TickBegin:
    case EventKind::IterBegin:
        return 'B';
    case EventKind::ExecEnd:
    case EventKind::TickEnd:
    case EventKind::IterEnd:
        return 'E';
    default:
        return 'i';
    }
}

/** Track name of a span; B/E pairs must agree for Chrome to nest them. */
const char *spanName(EventKind k)
{
    switch (k)
    {
    case EventKind::ExecBegin:
    case EventKind::ExecEnd:
        return "exec";
    case EventKind::TickBegin:
    case EventKind::TickEnd:
        return "tick";
    case EventKind::IterBegin:
    case EventKind::IterEnd:
        return "ilqr_iter";
    default:
        return eventKindName(k);
    }
}

/** JSON has no inf/nan; deadline-less jobs carry b = inf. */
double finiteOr(double v, double fallback) { return std::isfinite(v) ? v : fallback; }

} // namespace

ChromeTraceWriter::~ChromeTraceWriter()
{
    if (f_)
        std::fclose(f_);
}

bool ChromeTraceWriter::open(const std::string &path)
{
    if (f_)
        return false;
    f_ = std::fopen(path.c_str(), "w");
    if (!f_)
        return false;
    first_ = true;
    std::fprintf(f_, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    return true;
}

void ChromeTraceWriter::comma()
{
    if (!first_)
        std::fputc(',', f_);
    first_ = false;
}

void ChromeTraceWriter::threadName(std::size_t tid, const char *name)
{
    if (!f_)
        return;
    comma();
    std::fprintf(f_,
                 "{\"ph\":\"M\",\"pid\":0,\"tid\":%zu,\"ts\":0,"
                 "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                 tid, name);
}

void ChromeTraceWriter::event(const TraceEvent &ev, std::size_t tid)
{
    if (!f_)
        return;
    const double ts = ev.t_us - t0_;
    const char ph = phaseOf(ev.kind);

    comma();
    if (ph == 'B' || ph == 'E')
    {
        std::fprintf(f_,
                     "{\"ph\":\"%c\",\"pid\":0,\"tid\":%zu,\"ts\":%.3f,"
                     "\"name\":\"%s\",\"cat\":\"span\",\"args\":{\"job\":%d,"
                     "\"fn\":\"%s\",\"a\":%u,\"b\":%.3f}}",
                     ph, tid, ts, spanName(ev.kind), ev.job,
                     shortFunctionName(ev.fn), ev.a, finiteOr(ev.b, -1.0));
    }
    else
    {
        std::fprintf(f_,
                     "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%zu,"
                     "\"ts\":%.3f,\"name\":\"%s\",\"cat\":\"event\","
                     "\"args\":{\"job\":%d,\"lane\":%d,\"fn\":\"%s\","
                     "\"a\":%u,\"b\":%.3f}}",
                     tid, ts, eventKindName(ev.kind), ev.job, ev.lane,
                     shortFunctionName(ev.fn), ev.a, finiteOr(ev.b, -1.0));
    }

    // Stitch the job's path across tracks with flow events.
    if (ev.job >= 0 && (ev.kind == EventKind::Submit ||
                        ev.kind == EventKind::Picked ||
                        ev.kind == EventKind::Completed))
    {
        const char *fph = ev.kind == EventKind::Submit ? "s"
                          : ev.kind == EventKind::Picked ? "t"
                                                         : "f";
        comma();
        std::fprintf(f_,
                     "{\"ph\":\"%s\",\"pid\":0,\"tid\":%zu,\"ts\":%.3f,"
                     "\"name\":\"job\",\"cat\":\"job\",\"id\":%d%s}",
                     fph, tid, ts, ev.job,
                     ev.kind == EventKind::Completed ? ",\"bp\":\"e\"" : "");
    }
}

bool ChromeTraceWriter::close(std::uint64_t dropped_events)
{
    if (!f_)
        return false;
    std::fprintf(f_, "],\"droppedEvents\":%" PRIu64 "}\n", dropped_events);
    const bool ok = std::fclose(f_) == 0;
    f_ = nullptr;
    return ok;
}

bool writeChromeTrace(const TraceBuffer &buf, const std::string &path)
{
    ChromeTraceWriter w;
    if (!w.open(path))
        return false;

    const std::size_t n_rings = buf.ringCount();

    // Rebase timestamps so the earliest retained event is ts = 0.
    double t0 = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < n_rings; ++r)
    {
        const TraceRing &ring = buf.ring(r);
        for (std::size_t i = 0; i < ring.retained(); ++i)
            if (ring.at(i).t_us < t0)
                t0 = ring.at(i).t_us;
    }
    w.setTimeBaseUs(std::isfinite(t0) ? t0 : 0.0);

    for (std::size_t r = 0; r < n_rings; ++r)
    {
        const TraceRing &ring = buf.ring(r);
        w.threadName(r, ring.name());
        for (std::size_t i = 0; i < ring.retained(); ++i)
            w.event(ring.at(i), r);
    }
    return w.close(buf.totalDropped());
}

void emitHistogram(const LatencyHistogram &h, const std::string &prefix,
                   const MetricEmitFn &emit)
{
    emit(prefix + "_count", static_cast<double>(h.count()));
    if (h.count() == 0)
        return;
    emit(prefix + "_mean_us", h.meanUs());
    emit(prefix + "_min_us", h.minUs());
    emit(prefix + "_max_us", h.maxUs());
    emit(prefix + "_p50_us", h.percentileUs(0.50));
    emit(prefix + "_p90_us", h.percentileUs(0.90));
    emit(prefix + "_p99_us", h.percentileUs(0.99));
    emit(prefix + "_p999_us", h.percentileUs(0.999));
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i)
    {
        const std::uint64_t c = h.bucketCount(i);
        if (c)
            emit(prefix + "_b" + std::to_string(i), static_cast<double>(c));
    }
}

void emitHistogramScheme(const MetricEmitFn &emit)
{
    emit("hist_sub_buckets", LatencyHistogram::kSubBuckets);
    emit("hist_octaves", LatencyHistogram::kOctaves);
    emit("hist_buckets", LatencyHistogram::kBuckets);
}

const char *counterKeyName(Counter c)
{
    static const char *const names[kCounters] = {
        "jobs_submitted",  "jobs_completed",  "jobs_rejected", "jobs_failed",
        "deadline_met",    "deadline_missed", "transient_faults", "retries",
        "lane_deaths",     "stolen_items",    "coalesced_items",
        "admission_samples",
    };
    return names[static_cast<int>(c)];
}

const char *gaugeKeyName(Gauge g)
{
    static const char *const names[kGauges] = {
        "task_us_ewma", "admission_err_rel_ewma", "admission_last_err_us",
    };
    return names[static_cast<int>(g)];
}

void emitRegistry(const MetricsRegistry &m, const std::string &prefix,
                  const MetricEmitFn &emit)
{
    for (int c = 0; c < kCounters; ++c)
        emit(prefix + "_" + counterKeyName(static_cast<Counter>(c)),
             static_cast<double>(m.counter(static_cast<Counter>(c))));

    for (int g = 0; g < kGauges; ++g)
        emit(prefix + "_" + gaugeKeyName(static_cast<Gauge>(g)),
             m.gauge(static_cast<Gauge>(g)));

    for (int l = 0; l < m.lanes(); ++l)
        emit(prefix + "_lane" + std::to_string(l) + "_load", m.laneLoad(l));

    static const char *const kind_names[kLatKinds] = {"wait", "service", "e2e"};
    for (int tagged = 0; tagged < 2; ++tagged)
        for (int k = 0; k < kLatKinds; ++k)
        {
            const LatencyHistogram merged =
                m.mergedHistogram(tagged != 0, static_cast<LatKind>(k));
            if (merged.count() == 0)
                continue;
            emitHistogram(merged,
                          prefix + (tagged ? "_tagged_" : "_bulk_") + kind_names[k],
                          emit);
        }
}

} // namespace dadu::runtime::obs
