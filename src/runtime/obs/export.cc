#include "runtime/obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace dadu::runtime::obs {

const char *shortFunctionName(FunctionType fn)
{
    switch (fn)
    {
    case FunctionType::ID: return "id";
    case FunctionType::FD: return "fd";
    case FunctionType::M: return "m";
    case FunctionType::Minv: return "minv";
    case FunctionType::DeltaID: return "did";
    case FunctionType::DeltaFD: return "dfd";
    case FunctionType::DeltaiFD: return "difd";
    }
    return "fn";
}

namespace {

/** Chrome phase of an event kind: duration begin/end, or instant. */
char phaseOf(EventKind k)
{
    switch (k)
    {
    case EventKind::ExecBegin:
    case EventKind::TickBegin:
    case EventKind::IterBegin:
        return 'B';
    case EventKind::ExecEnd:
    case EventKind::TickEnd:
    case EventKind::IterEnd:
        return 'E';
    default:
        return 'i';
    }
}

/** Track name of a span; B/E pairs must agree for Chrome to nest them. */
const char *spanName(EventKind k)
{
    switch (k)
    {
    case EventKind::ExecBegin:
    case EventKind::ExecEnd:
        return "exec";
    case EventKind::TickBegin:
    case EventKind::TickEnd:
        return "tick";
    case EventKind::IterBegin:
    case EventKind::IterEnd:
        return "ilqr_iter";
    default:
        return eventKindName(k);
    }
}

/** JSON has no inf/nan; deadline-less jobs carry b = inf. */
double finiteOr(double v, double fallback) { return std::isfinite(v) ? v : fallback; }

} // namespace

bool writeChromeTrace(const TraceBuffer &buf, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;

    const std::size_t n_rings = buf.ringCount();

    // Rebase timestamps so the earliest retained event is ts = 0.
    double t0 = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < n_rings; ++r)
    {
        const TraceRing &ring = buf.ring(r);
        for (std::size_t i = 0; i < ring.retained(); ++i)
            if (ring.at(i).t_us < t0)
                t0 = ring.at(i).t_us;
    }
    if (!std::isfinite(t0))
        t0 = 0.0;

    std::fprintf(f, "{\"displayTimeUnit\":\"ms\",\"droppedEvents\":%" PRIu64
                    ",\"traceEvents\":[",
                 buf.totalDropped());

    bool first = true;
    auto comma = [&] {
        if (!first)
            std::fputc(',', f);
        first = false;
    };

    for (std::size_t r = 0; r < n_rings; ++r)
    {
        const TraceRing &ring = buf.ring(r);
        comma();
        std::fprintf(f,
                     "{\"ph\":\"M\",\"pid\":0,\"tid\":%zu,\"ts\":0,"
                     "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                     r, ring.name());

        for (std::size_t i = 0; i < ring.retained(); ++i)
        {
            const TraceEvent &ev = ring.at(i);
            const double ts = ev.t_us - t0;
            const char ph = phaseOf(ev.kind);

            comma();
            if (ph == 'B' || ph == 'E')
            {
                std::fprintf(f,
                             "{\"ph\":\"%c\",\"pid\":0,\"tid\":%zu,\"ts\":%.3f,"
                             "\"name\":\"%s\",\"cat\":\"span\",\"args\":{\"job\":%d,"
                             "\"fn\":\"%s\",\"a\":%u,\"b\":%.3f}}",
                             ph, r, ts, spanName(ev.kind), ev.job,
                             shortFunctionName(ev.fn), ev.a, finiteOr(ev.b, -1.0));
            }
            else
            {
                std::fprintf(f,
                             "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%zu,"
                             "\"ts\":%.3f,\"name\":\"%s\",\"cat\":\"event\","
                             "\"args\":{\"job\":%d,\"lane\":%d,\"fn\":\"%s\","
                             "\"a\":%u,\"b\":%.3f}}",
                             r, ts, eventKindName(ev.kind), ev.job, ev.lane,
                             shortFunctionName(ev.fn), ev.a, finiteOr(ev.b, -1.0));
            }

            // Stitch the job's path across tracks with flow events.
            if (ev.job >= 0 && (ev.kind == EventKind::Submit ||
                                ev.kind == EventKind::Picked ||
                                ev.kind == EventKind::Completed))
            {
                const char *fph = ev.kind == EventKind::Submit ? "s"
                                  : ev.kind == EventKind::Picked ? "t"
                                                                 : "f";
                comma();
                std::fprintf(f,
                             "{\"ph\":\"%s\",\"pid\":0,\"tid\":%zu,\"ts\":%.3f,"
                             "\"name\":\"job\",\"cat\":\"job\",\"id\":%d%s}",
                             fph, r, ts, ev.job,
                             ev.kind == EventKind::Completed ? ",\"bp\":\"e\"" : "");
            }
        }
    }

    std::fprintf(f, "]}\n");
    return std::fclose(f) == 0;
}

void emitHistogram(const LatencyHistogram &h, const std::string &prefix,
                   const MetricEmitFn &emit)
{
    emit(prefix + "_count", static_cast<double>(h.count()));
    if (h.count() == 0)
        return;
    emit(prefix + "_mean_us", h.meanUs());
    emit(prefix + "_min_us", h.minUs());
    emit(prefix + "_max_us", h.maxUs());
    emit(prefix + "_p50_us", h.percentileUs(0.50));
    emit(prefix + "_p90_us", h.percentileUs(0.90));
    emit(prefix + "_p99_us", h.percentileUs(0.99));
    emit(prefix + "_p999_us", h.percentileUs(0.999));
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i)
    {
        const std::uint64_t c = h.bucketCount(i);
        if (c)
            emit(prefix + "_b" + std::to_string(i), static_cast<double>(c));
    }
}

void emitHistogramScheme(const MetricEmitFn &emit)
{
    emit("hist_sub_buckets", LatencyHistogram::kSubBuckets);
    emit("hist_octaves", LatencyHistogram::kOctaves);
    emit("hist_buckets", LatencyHistogram::kBuckets);
}

void emitRegistry(const MetricsRegistry &m, const std::string &prefix,
                  const MetricEmitFn &emit)
{
    static const char *const counter_names[kCounters] = {
        "jobs_submitted",  "jobs_completed",  "jobs_rejected", "jobs_failed",
        "deadline_met",    "deadline_missed", "transient_faults", "retries",
        "lane_deaths",     "stolen_items",    "coalesced_items",
        "admission_samples",
    };
    for (int c = 0; c < kCounters; ++c)
        emit(prefix + "_" + counter_names[c],
             static_cast<double>(m.counter(static_cast<Counter>(c))));

    emit(prefix + "_task_us_ewma", m.gauge(Gauge::TaskUsEwma));
    emit(prefix + "_admission_err_rel_ewma", m.gauge(Gauge::AdmissionErrRelEwma));
    emit(prefix + "_admission_last_err_us", m.gauge(Gauge::AdmissionLastErrUs));

    for (int l = 0; l < m.lanes(); ++l)
        emit(prefix + "_lane" + std::to_string(l) + "_load", m.laneLoad(l));

    static const char *const kind_names[kLatKinds] = {"wait", "service", "e2e"};
    for (int tagged = 0; tagged < 2; ++tagged)
        for (int k = 0; k < kLatKinds; ++k)
        {
            const LatencyHistogram merged =
                m.mergedHistogram(tagged != 0, static_cast<LatKind>(k));
            if (merged.count() == 0)
                continue;
            emitHistogram(merged,
                          prefix + (tagged ? "_tagged_" : "_bulk_") + kind_names[k],
                          emit);
        }
}

} // namespace dadu::runtime::obs
