/**
 * @file
 * Runtime-toggleable observability knobs of one DynamicsServer,
 * carried inside sched::SchedConfig (the one configuration object
 * every serving test and bench already plumbs through).
 *
 * Both features default OFF, and off means off: the server then
 * holds null observability state and every instrumentation hook is a
 * single branch on a null pointer — the steady serving path performs
 * no clock reads, no event stores, and no histogram increments.
 */

#ifndef DADU_RUNTIME_OBS_CONFIG_H
#define DADU_RUNTIME_OBS_CONFIG_H

#include <cstddef>
#include <string>

namespace dadu::runtime::obs {

/** Observability selection of one DynamicsServer. */
struct ServerObsConfig
{
    /**
     * Record per-job lifecycle TraceEvents into fixed-capacity
     * per-lane rings (exportable as Chrome trace-event JSON). The
     * ring producer is always the one thread currently serving the
     * lane, so recording takes no lock and never allocates; a full
     * ring drops its OLDEST events and counts them.
     */
    bool trace = false;

    /**
     * Maintain the metrics registry: log-bucketed latency histograms
     * (queue wait / backend service / end-to-end, keyed by function
     * and tagged-vs-bulk), monotonic counters, and gauges including
     * the admission predictor's EWMA task time. Recorded under the
     * server lock alongside the accounting it describes.
     */
    bool metrics = false;

    /** TraceEvent capacity of EACH ring (lanes + control + clients). */
    std::size_t ring_capacity = 8192;

    // ----- Live telemetry plane (aggregator + endpoint + streaming).
    // Everything below runs OFF the serving threads: a background
    // aggregator thread snapshots the registry / lane state / ring
    // cursors on a period, and the optional endpoint thread serves
    // only the aggregator's latest snapshot.

    /**
     * Aggregation period in milliseconds. > 0 starts the
     * ObsAggregator with start(): every period it appends one
     * time-series sample and (when streaming) drains the trace
     * rings. 0 disables the live plane unless stats_port or
     * stream_trace_path asks for it (then a 100 ms default applies).
     */
    int aggregate_interval_ms = 0;

    /** Bounded time-series length (oldest samples evicted). */
    std::size_t aggregate_history = 512;

    /**
     * TCP port of the embedded stats endpoint (GET /stats JSON,
     * GET /metrics Prometheus text) on 127.0.0.1. -1 disables;
     * 0 binds an ephemeral port (see StatsEndpoint::port()).
     */
    int stats_port = -1;

    /**
     * Non-empty: stream trace chunks to this Chrome-trace file
     * DURING the run (instead of / in addition to a post-hoc
     * writeChromeTrace). Requires `trace`; the file is finalized
     * when the server stops.
     */
    std::string stream_trace_path;
};

} // namespace dadu::runtime::obs

#endif // DADU_RUNTIME_OBS_CONFIG_H
