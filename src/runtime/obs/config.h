/**
 * @file
 * Runtime-toggleable observability knobs of one DynamicsServer,
 * carried inside sched::SchedConfig (the one configuration object
 * every serving test and bench already plumbs through).
 *
 * Both features default OFF, and off means off: the server then
 * holds null observability state and every instrumentation hook is a
 * single branch on a null pointer — the steady serving path performs
 * no clock reads, no event stores, and no histogram increments.
 */

#ifndef DADU_RUNTIME_OBS_CONFIG_H
#define DADU_RUNTIME_OBS_CONFIG_H

#include <cstddef>

namespace dadu::runtime::obs {

/** Observability selection of one DynamicsServer. */
struct ServerObsConfig
{
    /**
     * Record per-job lifecycle TraceEvents into fixed-capacity
     * per-lane rings (exportable as Chrome trace-event JSON). The
     * ring producer is always the one thread currently serving the
     * lane, so recording takes no lock and never allocates; a full
     * ring drops its OLDEST events and counts them.
     */
    bool trace = false;

    /**
     * Maintain the metrics registry: log-bucketed latency histograms
     * (queue wait / backend service / end-to-end, keyed by function
     * and tagged-vs-bulk), monotonic counters, and gauges including
     * the admission predictor's EWMA task time. Recorded under the
     * server lock alongside the accounting it describes.
     */
    bool metrics = false;

    /** TraceEvent capacity of EACH ring (lanes + control + clients). */
    std::size_t ring_capacity = 8192;
};

} // namespace dadu::runtime::obs

#endif // DADU_RUNTIME_OBS_CONFIG_H
