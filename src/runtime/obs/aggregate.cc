#include "runtime/obs/aggregate.h"

#include <chrono>
#include <cmath>
#include <cstdio>

#include "perf/timing.h"
#include "runtime/obs/export.h"
#include "runtime/server.h"

namespace dadu::runtime::obs {

namespace {

/** Append a finite number (JSON/Prometheus have no inf/nan). */
void appendNum(std::string &s, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", std::isfinite(v) ? v : 0.0);
    s += buf;
}

void appendU64(std::string &s, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    s += buf;
}

} // namespace

std::string StatsSnapshot::toJson() const
{
    std::string s;
    s.reserve(2048);
    s += "{\"seq\":";
    appendU64(s, sample.seq);
    s += ",\"t_us\":";
    appendNum(s, sample.t_us);
    s += ",\"pending_jobs\":";
    appendU64(s, sample.pending_jobs);

    s += ",\"lanes\":[";
    for (std::size_t l = 0; l < sample.lanes.size(); ++l)
    {
        if (l)
            s += ',';
        const LaneSample &ls = sample.lanes[l];
        s += "{\"id\":";
        appendU64(s, l);
        s += ",\"healthy\":";
        s += ls.healthy ? "true" : "false";
        s += ",\"load\":";
        appendNum(s, ls.load_weight);
        s += ",\"queue_depth\":";
        appendU64(s, ls.queue_depth);
        s += '}';
    }
    s += ']';

    s += ",\"counters\":{";
    for (int c = 0; c < kCounters; ++c)
    {
        if (c)
            s += ',';
        s += '"';
        s += counterKeyName(static_cast<Counter>(c));
        s += "\":";
        appendU64(s, sample.counters[static_cast<std::size_t>(c)]);
    }
    s += "},\"deltas\":{";
    for (int c = 0; c < kCounters; ++c)
    {
        if (c)
            s += ',';
        s += '"';
        s += counterKeyName(static_cast<Counter>(c));
        s += "\":";
        appendU64(s, sample.delta[static_cast<std::size_t>(c)]);
    }
    s += "},\"gauges\":{";
    for (int g = 0; g < kGauges; ++g)
    {
        if (g)
            s += ',';
        s += '"';
        s += gaugeKeyName(static_cast<Gauge>(g));
        s += "\":";
        appendNum(s, sample.gauges[static_cast<std::size_t>(g)]);
    }
    s += '}';

    s += ",\"latency_us\":{\"tagged_e2e_p50\":";
    appendNum(s, sample.tagged_e2e_p50_us);
    s += ",\"tagged_e2e_p99\":";
    appendNum(s, sample.tagged_e2e_p99_us);
    s += ",\"bulk_e2e_p50\":";
    appendNum(s, sample.bulk_e2e_p50_us);
    s += ",\"bulk_e2e_p99\":";
    appendNum(s, sample.bulk_e2e_p99_us);
    s += '}';

    // Per-fn×tagged end-to-end percentiles: only cells with samples.
    s += ",\"fn_latency\":[";
    bool first = true;
    if (have_registry)
        for (int fn = 0; fn < kFunctionTypes; ++fn)
            for (int tagged = 0; tagged < 2; ++tagged)
            {
                const LatencyHistogram &h = registry.histogram(
                    static_cast<FunctionType>(fn), tagged != 0,
                    LatKind::EndToEnd);
                if (h.count() == 0)
                    continue;
                if (!first)
                    s += ',';
                first = false;
                s += "{\"fn\":\"";
                s += shortFunctionName(static_cast<FunctionType>(fn));
                s += "\",\"tagged\":";
                s += tagged ? "true" : "false";
                s += ",\"count\":";
                appendU64(s, h.count());
                s += ",\"mean_us\":";
                appendNum(s, h.meanUs());
                s += ",\"p50_us\":";
                appendNum(s, h.percentileUs(0.50));
                s += ",\"p99_us\":";
                appendNum(s, h.percentileUs(0.99));
                s += '}';
            }
    s += ']';

    s += ",\"trace\":{\"recorded\":";
    appendU64(s, sample.trace_recorded);
    s += ",\"streamed\":";
    appendU64(s, sample.trace_streamed);
    s += ",\"dropped\":";
    appendU64(s, sample.trace_dropped);
    s += "}}";
    return s;
}

std::string StatsSnapshot::toPrometheus() const
{
    std::string s;
    s.reserve(2048);
    char buf[160];

    s += "# HELP dadu_sample_seq Aggregator tick number of this snapshot.\n"
         "# TYPE dadu_sample_seq counter\n"
         "dadu_sample_seq ";
    appendU64(s, sample.seq);
    s += "\n# HELP dadu_pending_jobs Jobs enqueued but not yet completed.\n"
         "# TYPE dadu_pending_jobs gauge\ndadu_pending_jobs ";
    appendU64(s, sample.pending_jobs);
    s += '\n';

    s += "# TYPE dadu_lane_healthy gauge\n";
    for (std::size_t l = 0; l < sample.lanes.size(); ++l)
    {
        std::snprintf(buf, sizeof(buf), "dadu_lane_healthy{lane=\"%zu\"} %d\n",
                      l, sample.lanes[l].healthy ? 1 : 0);
        s += buf;
    }
    s += "# TYPE dadu_lane_load gauge\n";
    for (std::size_t l = 0; l < sample.lanes.size(); ++l)
    {
        std::snprintf(buf, sizeof(buf), "dadu_lane_load{lane=\"%zu\"} ", l);
        s += buf;
        appendNum(s, sample.lanes[l].load_weight);
        s += '\n';
    }
    s += "# TYPE dadu_lane_queue_depth gauge\n";
    for (std::size_t l = 0; l < sample.lanes.size(); ++l)
    {
        std::snprintf(buf, sizeof(buf),
                      "dadu_lane_queue_depth{lane=\"%zu\"} %zu\n", l,
                      sample.lanes[l].queue_depth);
        s += buf;
    }

    for (int c = 0; c < kCounters; ++c)
    {
        const char *name = counterKeyName(static_cast<Counter>(c));
        std::snprintf(buf, sizeof(buf), "# TYPE dadu_%s_total counter\ndadu_%s_total ",
                      name, name);
        s += buf;
        appendU64(s, sample.counters[static_cast<std::size_t>(c)]);
        s += '\n';
    }
    for (int g = 0; g < kGauges; ++g)
    {
        const char *name = gaugeKeyName(static_cast<Gauge>(g));
        std::snprintf(buf, sizeof(buf), "# TYPE dadu_%s gauge\ndadu_%s ",
                      name, name);
        s += buf;
        appendNum(s, sample.gauges[static_cast<std::size_t>(g)]);
        s += '\n';
    }

    s += "# TYPE dadu_latency_e2e_us gauge\n";
    if (have_registry)
        for (int fn = 0; fn < kFunctionTypes; ++fn)
            for (int tagged = 0; tagged < 2; ++tagged)
            {
                const LatencyHistogram &h = registry.histogram(
                    static_cast<FunctionType>(fn), tagged != 0,
                    LatKind::EndToEnd);
                if (h.count() == 0)
                    continue;
                const char *fname =
                    shortFunctionName(static_cast<FunctionType>(fn));
                const char *tag = tagged ? "true" : "false";
                std::snprintf(buf, sizeof(buf),
                              "dadu_latency_e2e_us{fn=\"%s\",tagged=\"%s\","
                              "quantile=\"0.5\"} ",
                              fname, tag);
                s += buf;
                appendNum(s, h.percentileUs(0.50));
                s += '\n';
                std::snprintf(buf, sizeof(buf),
                              "dadu_latency_e2e_us{fn=\"%s\",tagged=\"%s\","
                              "quantile=\"0.99\"} ",
                              fname, tag);
                s += buf;
                appendNum(s, h.percentileUs(0.99));
                s += '\n';
                std::snprintf(buf, sizeof(buf),
                              "dadu_latency_e2e_us_count{fn=\"%s\",tagged=\"%s\"} ",
                              fname, tag);
                s += buf;
                appendU64(s, h.count());
                s += '\n';
            }

    s += "# TYPE dadu_trace_events_total counter\ndadu_trace_events_total ";
    appendU64(s, sample.trace_recorded);
    s += "\n# TYPE dadu_trace_streamed_total counter\ndadu_trace_streamed_total ";
    appendU64(s, sample.trace_streamed);
    s += "\n# TYPE dadu_trace_dropped_total counter\ndadu_trace_dropped_total ";
    appendU64(s, sample.trace_dropped);
    s += '\n';
    return s;
}

ObsAggregator::ObsAggregator(DynamicsServer &server, AggregatorConfig cfg)
    : server_(server), cfg_(std::move(cfg))
{
    if (cfg_.interval_ms <= 0)
        cfg_.interval_ms = 100;
    if (cfg_.history == 0)
        cfg_.history = 1;
    if (!cfg_.stream_path.empty() && server_.traceBuffer())
    {
        streamer_ = std::make_unique<TraceStreamer>(*server_.traceBuffer(),
                                                    cfg_.chunk_events);
        if (!streamer_->openFile(cfg_.stream_path))
            streamer_.reset(); // unwritable path: run without streaming
    }
}

ObsAggregator::~ObsAggregator()
{
    stop();
}

void ObsAggregator::start()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (running_)
            return;
        running_ = true;
        stop_ = false;
    }
    thread_ = std::thread([this] { loop(); });
}

void ObsAggregator::loop()
{
    std::unique_lock<std::mutex> lk(mu_);
    while (!stop_)
    {
        lk.unlock();
        tickOnce();
        lk.lock();
        cv_.wait_for(lk, std::chrono::milliseconds(cfg_.interval_ms),
                     [&] { return stop_; });
    }
}

void ObsAggregator::stop()
{
    bool was_running;
    {
        std::lock_guard<std::mutex> lk(mu_);
        was_running = running_;
        stop_ = true;
        running_ = false;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
    if (!was_running)
        return;
    // Final tick with the producers quiesced: the tail of the run
    // lands in the series and the streamed file before the footer.
    tickOnce();
    if (streamer_ && streamer_->fileOpen())
        streamer_->closeFile();
}

void ObsAggregator::tickOnce()
{
    ObsSample s;
    s.t_us = perf::nowUs();
    s.pending_jobs = server_.pending();
    const int lanes = server_.backendCount();
    s.lanes.resize(static_cast<std::size_t>(lanes));
    for (int l = 0; l < lanes; ++l)
    {
        LaneSample &ls = s.lanes[static_cast<std::size_t>(l)];
        ls.healthy = server_.laneHealthy(l);
        ls.load_weight = server_.laneLoadWeight(l);
        ls.queue_depth = server_.laneQueueDepth(l);
    }

    const bool have_reg = server_.metricsSnapshot(scratch_);
    if (have_reg)
    {
        for (int c = 0; c < kCounters; ++c)
            s.counters[static_cast<std::size_t>(c)] =
                scratch_.counter(static_cast<Counter>(c));
        for (int g = 0; g < kGauges; ++g)
            s.gauges[static_cast<std::size_t>(g)] =
                scratch_.gauge(static_cast<Gauge>(g));
        const LatencyHistogram tagged =
            scratch_.mergedHistogram(true, LatKind::EndToEnd);
        const LatencyHistogram bulk =
            scratch_.mergedHistogram(false, LatKind::EndToEnd);
        s.tagged_e2e_p50_us = tagged.percentileUs(0.50);
        s.tagged_e2e_p99_us = tagged.percentileUs(0.99);
        s.bulk_e2e_p50_us = bulk.percentileUs(0.50);
        s.bulk_e2e_p99_us = bulk.percentileUs(0.99);
    }

    if (const TraceBuffer *buf = server_.traceBuffer())
    {
        const std::size_t n = buf->ringCount();
        for (std::size_t r = 0; r < n; ++r)
            s.trace_recorded += buf->ring(r).recorded();
    }
    if (streamer_)
    {
        streamer_->flush();
        s.trace_streamed = streamer_->delivered();
        s.trace_dropped = streamer_->dropped();
    }

    std::lock_guard<std::mutex> lk(mu_);
    s.seq = ++seq_;
    if (!series_.empty())
        for (int c = 0; c < kCounters; ++c)
        {
            const std::size_t i = static_cast<std::size_t>(c);
            const std::uint64_t prev = series_.back().counters[i];
            s.delta[i] = s.counters[i] >= prev ? s.counters[i] - prev : 0;
        }
    else
        s.delta = s.counters;
    series_.push_back(s);
    while (series_.size() > cfg_.history)
        series_.pop_front();
    latest_.sample = std::move(s);
    if (have_reg)
    {
        latest_.registry = scratch_;
        latest_.have_registry = true;
    }
}

StatsSnapshot ObsAggregator::latest() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return latest_;
}

std::vector<ObsSample> ObsAggregator::history() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return std::vector<ObsSample>(series_.begin(), series_.end());
}

std::uint64_t ObsAggregator::sampleCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return seq_;
}

std::uint64_t ObsAggregator::streamedEvents() const
{
    return streamer_ ? streamer_->delivered() : 0;
}

std::uint64_t ObsAggregator::streamedDropped() const
{
    return streamer_ ? streamer_->dropped() : 0;
}

} // namespace dadu::runtime::obs
