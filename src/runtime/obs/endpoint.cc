#include "runtime/obs/endpoint.h"

#include <cstdio>
#include <cstring>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "runtime/obs/aggregate.h"

namespace dadu::runtime::obs {

StatsEndpoint::StatsEndpoint(const ObsAggregator &aggregator, int port)
    : agg_(aggregator), req_port_(port)
{}

StatsEndpoint::~StatsEndpoint()
{
    stop();
}

bool StatsEndpoint::start()
{
    if (thread_.joinable())
        return true;
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        return false;
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(req_port_));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 8) != 0)
    {
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0)
        port_.store(static_cast<int>(ntohs(addr.sin_port)),
                    std::memory_order_release);

    stop_.store(false, std::memory_order_release);
    thread_ = std::thread([this] { serveLoop(); });
    return true;
}

void StatsEndpoint::stop()
{
    if (!thread_.joinable())
        return;
    stop_.store(true, std::memory_order_release);
    // Unblock accept(): shutdown makes the blocked call return on
    // Linux; close() finishes the job.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    thread_.join();
    listen_fd_ = -1;
    port_.store(-1, std::memory_order_release);
}

void StatsEndpoint::serveLoop()
{
    while (!stop_.load(std::memory_order_acquire))
    {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
        {
            if (stop_.load(std::memory_order_acquire))
                return;
            continue; // transient accept failure; keep serving
        }
        handle(fd);
        ::close(fd);
    }
}

void StatsEndpoint::handle(int fd)
{
    // Bound the read: a scraper that never finishes its request
    // line cannot wedge the endpoint thread forever.
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    char req[1024];
    std::size_t got = 0;
    while (got < sizeof(req) - 1)
    {
        const ssize_t n = ::recv(fd, req + got, sizeof(req) - 1 - got, 0);
        if (n <= 0)
            break;
        got += static_cast<std::size_t>(n);
        req[got] = '\0';
        if (std::strstr(req, "\r\n\r\n") || std::strstr(req, "\n\n"))
            break; // headers complete; we ignore them anyway
        if (std::strchr(req, '\n'))
            break; // request line complete is all we need
    }
    req[got] = '\0';

    std::string body;
    const char *content_type = "application/json";
    const char *status = "200 OK";
    if (std::strncmp(req, "GET /stats", 10) == 0)
    {
        body = agg_.latest().toJson();
        body += '\n';
    }
    else if (std::strncmp(req, "GET /metrics", 12) == 0)
    {
        body = agg_.latest().toPrometheus();
        content_type = "text/plain; version=0.0.4";
    }
    else
    {
        status = "404 Not Found";
        content_type = "text/plain";
        body = "not found; try /stats or /metrics\n";
    }

    char header[256];
    const int hn = std::snprintf(header, sizeof(header),
                                 "HTTP/1.0 %s\r\n"
                                 "Content-Type: %s\r\n"
                                 "Content-Length: %zu\r\n"
                                 "Connection: close\r\n\r\n",
                                 status, content_type, body.size());
    // Best-effort sends: a vanished client is its own problem.
    if (hn > 0)
        (void)::send(fd, header, static_cast<std::size_t>(hn), MSG_NOSIGNAL);
    (void)::send(fd, body.data(), body.size(), MSG_NOSIGNAL);
}

} // namespace dadu::runtime::obs
