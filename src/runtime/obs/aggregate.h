/**
 * @file
 * ObsAggregator: the background half of the live telemetry plane.
 *
 * A single aggregator thread wakes every interval_ms and takes one
 * tick: it snapshots the server's lane state (health, load weight,
 * queue depth), pending-job count, and MetricsRegistry (a bounded
 * ~100KB copy under the server lock — microseconds, once per
 * interval), drains the trace-ring cursors into the streamed
 * Chrome-trace file when streaming is configured, and appends one
 * delta-encoded ObsSample to a bounded in-memory time-series. The
 * latest full snapshot (sample + registry copy) is what the stats
 * endpoint serves — the network thread never touches hot-path state.
 *
 * Lifecycle: DynamicsServer::start() constructs and starts the
 * aggregator when SchedConfig::obs asks for it; stop() takes a final
 * tick after the workers quiesce (so the tail of the run is sampled
 * and streamed) and finalizes the streamed file. The object survives
 * until the next reconfiguration, so benches can read totals and the
 * time-series after stop().
 */

#ifndef DADU_RUNTIME_OBS_AGGREGATE_H
#define DADU_RUNTIME_OBS_AGGREGATE_H

#include <array>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/obs/metrics.h"
#include "runtime/obs/stream.h"

namespace dadu::runtime {
class DynamicsServer;
}

namespace dadu::runtime::obs {

/** Point-in-time state of one lane, as sampled by the aggregator. */
struct LaneSample
{
    bool healthy = true;
    double load_weight = 0.0;    ///< committed FD-equivalent work
    std::size_t queue_depth = 0; ///< work items queued right now
};

/** One aggregation tick: cumulative and delta-encoded. */
struct ObsSample
{
    std::uint64_t seq = 0; ///< tick number, strictly increasing
    double t_us = 0.0;     ///< perf::nowUs() at the tick
    std::uint64_t pending_jobs = 0;
    std::vector<LaneSample> lanes;
    /** Cumulative counter values (Counter enum order). */
    std::array<std::uint64_t, kCounters> counters{};
    /** Counter increments since the previous sample. */
    std::array<std::uint64_t, kCounters> delta{};
    std::array<double, kGauges> gauges{};
    // Merged e2e percentiles, the two headline QoS latencies.
    double tagged_e2e_p50_us = 0.0, tagged_e2e_p99_us = 0.0;
    double bulk_e2e_p50_us = 0.0, bulk_e2e_p99_us = 0.0;
    // Trace-plane accounting (zeros when tracing is off).
    std::uint64_t trace_recorded = 0; ///< events recorded, all rings
    std::uint64_t trace_streamed = 0; ///< events delivered to the stream
    std::uint64_t trace_dropped = 0;  ///< stream cursor drops + overruns
};

/**
 * What GET /stats and GET /metrics render: the latest sample plus a
 * full registry copy for per-fn×tagged histograms. Value type — the
 * endpoint thread copies it out under the aggregator lock.
 */
struct StatsSnapshot
{
    ObsSample sample;
    MetricsRegistry registry{0};
    bool have_registry = false;

    /** GET /stats body: one JSON object. */
    std::string toJson() const;
    /** GET /metrics body: Prometheus text exposition format. */
    std::string toPrometheus() const;
};

/** Aggregator knobs, derived from ServerObsConfig by the server. */
struct AggregatorConfig
{
    int interval_ms = 100;
    std::size_t history = 512;
    std::string stream_path;       ///< empty: no trace streaming
    std::size_t chunk_events = 4096;
};

class ObsAggregator
{
  public:
    ObsAggregator(DynamicsServer &server, AggregatorConfig cfg);
    ~ObsAggregator();

    ObsAggregator(const ObsAggregator &) = delete;
    ObsAggregator &operator=(const ObsAggregator &) = delete;

    /** Spawn the aggregator thread. No-op if already running. */
    void start();

    /**
     * Stop the thread, take one final tick (samples and streams the
     * tail of the run), and finalize the streamed file. Idempotent.
     * Call after the serving workers have quiesced.
     */
    void stop();

    /**
     * One synchronous aggregation tick on the calling thread. Used
     * by the background loop and directly by tests; external callers
     * must not race the background thread (tick while stopped, or
     * never start()).
     */
    void tickOnce();

    /** Latest snapshot (copy). Sample.seq == 0 ⇒ no tick yet. */
    StatsSnapshot latest() const;

    /** Time-series copy, oldest first (bounded by cfg.history). */
    std::vector<ObsSample> history() const;

    std::uint64_t sampleCount() const;

    bool streaming() const { return streamer_ != nullptr; }
    std::uint64_t streamedEvents() const;
    std::uint64_t streamedDropped() const;

    const AggregatorConfig &config() const { return cfg_; }

  private:
    void loop();

    DynamicsServer &server_;
    AggregatorConfig cfg_;
    std::unique_ptr<TraceStreamer> streamer_; ///< aggregator-thread only

    mutable std::mutex mu_; ///< guards series_/latest_/stop_/seq counters
    std::condition_variable cv_;
    std::thread thread_;
    bool running_ = false;
    bool stop_ = false;
    std::uint64_t seq_ = 0;
    std::deque<ObsSample> series_;
    StatsSnapshot latest_;
    MetricsRegistry scratch_{0}; ///< tick-thread registry copy target
};

} // namespace dadu::runtime::obs

#endif // DADU_RUNTIME_OBS_AGGREGATE_H
