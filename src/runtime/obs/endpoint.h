/**
 * @file
 * StatsEndpoint: a minimal embedded HTTP stats server — one blocking
 * POSIX listen socket on 127.0.0.1, one accept-loop thread, zero
 * dependencies. Routes:
 *
 *   GET /stats    application/json — StatsSnapshot::toJson()
 *   GET /metrics  text/plain       — StatsSnapshot::toPrometheus()
 *
 * Every response is rendered from the ObsAggregator's latest
 * snapshot: the network thread NEVER touches hot-path serving state,
 * so a slow or hostile scraper can at worst read stale telemetry.
 * Responses are HTTP/1.0 close-delimited with Content-Length; one
 * connection is served at a time (monitoring cadence, not traffic).
 *
 * This is also the first network-facing surface of the planned
 * multi-process fabric (ROADMAP item 3): remote health checks can
 * poll /stats for lane health before the wire protocol exists.
 */

#ifndef DADU_RUNTIME_OBS_ENDPOINT_H
#define DADU_RUNTIME_OBS_ENDPOINT_H

#include <atomic>
#include <thread>

namespace dadu::runtime::obs {

class ObsAggregator;

class StatsEndpoint
{
  public:
    /**
     * @param aggregator snapshot source; must outlive the endpoint.
     * @param port TCP port on 127.0.0.1; 0 binds an ephemeral port
     *             (read it back via port()).
     */
    StatsEndpoint(const ObsAggregator &aggregator, int port);
    ~StatsEndpoint();

    StatsEndpoint(const StatsEndpoint &) = delete;
    StatsEndpoint &operator=(const StatsEndpoint &) = delete;

    /**
     * Bind + listen + spawn the accept-loop thread. Returns false
     * (and stays inert) if the socket could not be bound — a serving
     * run never fails because its stats port was taken.
     */
    bool start();

    /** Unblock the accept loop, join the thread, close the socket. */
    void stop();

    /** Actual bound port once start() succeeded; -1 otherwise. */
    int port() const { return port_.load(std::memory_order_acquire); }

  private:
    void serveLoop();
    void handle(int fd);

    const ObsAggregator &agg_;
    int req_port_;
    int listen_fd_ = -1;
    std::atomic<int> port_{-1};
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

} // namespace dadu::runtime::obs

#endif // DADU_RUNTIME_OBS_ENDPOINT_H
