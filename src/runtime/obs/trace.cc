#include "runtime/obs/trace.h"

#include <cstdio>

namespace dadu::runtime::obs {

const char *eventKindName(EventKind k)
{
    switch (k)
    {
    case EventKind::Submit: return "submit";
    case EventKind::Admitted: return "admitted";
    case EventKind::Rejected: return "rejected";
    case EventKind::Enqueued: return "enqueued";
    case EventKind::Picked: return "picked";
    case EventKind::CoalescedInto: return "coalesced_into";
    case EventKind::StolenFrom: return "stolen_from";
    case EventKind::ExecBegin: return "exec";
    case EventKind::ExecEnd: return "exec_end";
    case EventKind::Retry: return "retry";
    case EventKind::Requeue: return "requeue";
    case EventKind::LaneDeath: return "lane_death";
    case EventKind::StageDone: return "stage_done";
    case EventKind::Completed: return "completed";
    case EventKind::Failed: return "failed";
    case EventKind::TickBegin: return "tick";
    case EventKind::TickEnd: return "tick_end";
    case EventKind::IterBegin: return "ilqr_iter";
    case EventKind::IterEnd: return "ilqr_iter_end";
    case EventKind::Fault: return "fault";
    }
    return "unknown";
}

TraceRing::TraceRing(std::size_t capacity, const char *name)
    : slots_(capacity == 0 ? 1 : capacity)
{
    std::snprintf(name_, sizeof(name_), "%s", name ? name : "");
}

TraceBuffer::TraceBuffer(int lanes, std::size_t ring_capacity)
    : lanes_(lanes), ring_capacity_(ring_capacity)
{
    char label[24];
    for (int i = 0; i < lanes; ++i)
    {
        std::snprintf(label, sizeof(label), "lane%d", i);
        rings_.emplace_back(ring_capacity_, label);
    }
    rings_.emplace_back(ring_capacity_, "control");
}

TraceRing *TraceBuffer::claimRing(const char *name)
{
    std::lock_guard<std::mutex> lk(claim_mu_);
    rings_.emplace_back(ring_capacity_, name);
    return &rings_.back();
}

std::size_t TraceBuffer::ringCount() const
{
    std::lock_guard<std::mutex> lk(claim_mu_);
    return rings_.size();
}

const TraceRing &TraceBuffer::ring(std::size_t i) const
{
    std::lock_guard<std::mutex> lk(claim_mu_);
    return rings_[i];
}

std::uint64_t TraceBuffer::totalDropped() const
{
    std::lock_guard<std::mutex> lk(claim_mu_);
    std::uint64_t n = 0;
    for (const TraceRing &r : rings_)
        n += r.dropped();
    return n;
}

} // namespace dadu::runtime::obs
