/**
 * @file
 * Lifecycle tracing: fixed-capacity rings of TraceEvents recording
 * every state transition a job goes through inside a DynamicsServer
 * — submit → admitted/rejected → enqueued → picked / coalesced-into /
 * stolen-from → backend-execute begin/end → transient-retry /
 * requeue-on-lane-death → completed/failed — plus client-side spans
 * (MPC ticks, iLQR iterations) and injected faults.
 *
 * Concurrency contract. Each TraceRing is SPSC on the producer side:
 * ONE producer thread at a time. Readers come in two flavors — the
 * quiesced kind (at()/retained(), valid once the producer stopped)
 * and the LIVE kind: stream.h's TraceReader drains a ring through
 * recorded()/loadSlot() while the producer keeps recording, using
 * the write index as a published cursor and discarding the window a
 * racing writer may have overwritten. Slots are stored as arrays of
 * relaxed atomic words so the racing reads are defined behavior (a
 * torn event is possible but detectable, a data race is not).
 * The server's ring layout leans on its existing serialization:
 *
 *  - ring i < lanes: events of lane i, recorded only by "the thread
 *    currently serving lane i". The server guarantees there is at
 *    most one such thread at any moment (the lane's async worker, or
 *    the single serveAllSync() caller), so the producer side is a
 *    sequence of happens-before-ordered writers — SPSC holds.
 *  - ring lanes ("control"): submit-side and completion-side events.
 *    Every producer holds the server mutex, so writes are serialized
 *    the same way.
 *  - further rings: claimed by clients (MpcSession per-tick spans,
 *    iLQR per-iteration spans) — one ring per client thread.
 *
 * Recording is wait-free and allocation-free: one relaxed index
 * bump and a struct store into preallocated storage. A full ring
 * overwrites its OLDEST events; recorded() - retained() events were
 * dropped, and the reader can report that number exactly.
 */

#ifndef DADU_RUNTIME_OBS_TRACE_H
#define DADU_RUNTIME_OBS_TRACE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <vector>

#include "runtime/request.h"

namespace dadu::runtime::obs {

/** What happened. Payload fields `a`/`b` per kind are documented below. */
enum class EventKind : std::uint8_t
{
    // Submit side (control ring).
    Submit,        ///< a = task count, b = deadline_us (inf ⇒ untagged)
    Admitted,      ///< a = chosen lane, b = predicted completion (µs, 0 if unknown)
    Rejected,      ///< a = SubmitStatus, b = competing weight at decision
    Enqueued,      ///< lane = destination, a = task count, b = lane load_weight after
    // Serving side (lane rings).
    Picked,        ///< a = items in pick, b = queue positions overtaken (queue-jump depth)
    CoalescedInto, ///< job absorbed into another pick; a = items absorbed
    StolenFrom,    ///< lane = thief, a = victim lane, b = items stolen
    ExecBegin,     ///< a = total tasks in batch
    ExecEnd,       ///< a = SubmitStatus of final attempt, b = modeled batch time (µs)
    Retry,         ///< a = attempt number (1-based), transient fault before it
    Requeue,       ///< lane = dying lane, a = destination lane (-1 ⇒ none healthy)
    LaneDeath,     ///< lane = dead lane, a = items in flight at death
    // Completion side (control ring).
    StageDone,     ///< a = completed stage index, b = stages total
    Completed,     ///< a = 1 if deadline missed else 0, b = end-to-end latency (µs)
    Failed,        ///< a = JobOutcome, b = end-to-end latency (µs)
    // Client-side spans (client rings).
    TickBegin,     ///< a = tick index
    TickEnd,       ///< a = 1 if degraded (reused stale plan) else 0, b = horizon cost
    IterBegin,     ///< b = cost before the iLQR iteration
    IterEnd,       ///< a = accepted | (gating mode << 1), b = live columns this iteration
    // Fault injection (recorded by the injecting backend's serving thread).
    Fault,         ///< a = 0 transient, 1 corrupt, 2 latency spike, 3 death; b = magnitude
};

/** Human-readable (and Chrome-trace "name") label of an event kind. */
const char *eventKindName(EventKind k);

/** One recorded state transition. Fixed-size, trivially copyable. */
struct TraceEvent
{
    double t_us = 0.0;          ///< perf::nowUs() at record time
    double b = 0.0;             ///< kind-specific payload (see EventKind)
    std::int32_t job = -1;      ///< job id (-1 for events not tied to a job)
    std::uint32_t a = 0;        ///< kind-specific payload (see EventKind)
    FunctionType fn = FunctionType::FD;
    std::int16_t lane = -1;     ///< lane id (-1 for control/client events)
    EventKind kind = EventKind::Submit;
};

static_assert(sizeof(TraceEvent) <= 32, "TraceEvent must stay one cache line per pair");

/**
 * Fixed-capacity drop-oldest event ring. Single producer; quiesced
 * reads via at(), live streaming reads via stream.h's TraceReader
 * (recorded() + loadSlot() + the overwrite-window discard protocol).
 */
class TraceRing
{
  public:
    /** 64-bit words per slot; a TraceEvent is stored as kSlotWords atomics. */
    static constexpr std::size_t kSlotWords =
        (sizeof(TraceEvent) + sizeof(std::uint64_t) - 1) / sizeof(std::uint64_t);

    TraceRing(std::size_t capacity, const char *name);

    // The ring is addressed by pointer from hot paths; never moved.
    TraceRing(const TraceRing &) = delete;
    TraceRing &operator=(const TraceRing &) = delete;

    /** Wait-free, allocation-free. Overwrites the oldest slot when full. */
    void record(const TraceEvent &ev)
    {
        const std::uint64_t h = head_.load(std::memory_order_relaxed);
        Slot &s = slots_[h % slots_.size()];
        std::uint64_t w[kSlotWords] = {};
        std::memcpy(w, &ev, sizeof(ev));
        // Relaxed word stores: plain movs on x86. The release head
        // bump below publishes them to any acquire reader of head_.
        for (std::size_t i = 0; i < kSlotWords; ++i)
            s.w[i].store(w[i], std::memory_order_relaxed);
        head_.store(h + 1, std::memory_order_release);
    }

    /** Convenience: fill-and-record without a named temporary at call sites. */
    void record(EventKind kind, double t_us, std::int32_t job, std::int16_t lane,
                FunctionType fn, std::uint32_t a = 0, double b = 0.0)
    {
        TraceEvent ev;
        ev.t_us = t_us;
        ev.b = b;
        ev.job = job;
        ev.a = a;
        ev.lane = lane;
        ev.fn = fn;
        ev.kind = kind;
        record(ev);
    }

    std::size_t capacity() const { return slots_.size(); }

    /** Total events ever recorded (including since-dropped ones). */
    std::uint64_t recorded() const { return head_.load(std::memory_order_acquire); }

    /** Events still present (≤ capacity). */
    std::size_t retained() const
    {
        const std::uint64_t h = recorded();
        return h < slots_.size() ? static_cast<std::size_t>(h) : slots_.size();
    }

    /** Events lost to drop-oldest wraparound. */
    std::uint64_t dropped() const { return recorded() - retained(); }

    /** i-th retained event, oldest first. Producer must be quiesced. */
    TraceEvent at(std::size_t i) const
    {
        const std::uint64_t h = recorded();
        const std::uint64_t oldest = h < slots_.size() ? 0 : h - slots_.size();
        return loadSlot(oldest + i);
    }

    /**
     * Raw copy of the slot currently holding sequence number @p seq
     * (relaxed word loads — never a data race, but the result may be
     * TORN if the producer is overwriting that slot concurrently).
     * stream.h's TraceReader makes this safe: it re-reads recorded()
     * after copying and discards every sequence number the producer
     * could have reached into, so a torn event is never delivered.
     */
    TraceEvent loadSlot(std::uint64_t seq) const
    {
        const Slot &s = slots_[seq % slots_.size()];
        std::uint64_t w[kSlotWords];
        for (std::size_t i = 0; i < kSlotWords; ++i)
            w[i] = s.w[i].load(std::memory_order_relaxed);
        TraceEvent ev;
        std::memcpy(&ev, w, sizeof(ev));
        return ev;
    }

    const char *name() const { return name_; }

  private:
    struct Slot
    {
        std::atomic<std::uint64_t> w[kSlotWords];
    };

    std::vector<Slot> slots_;
    std::atomic<std::uint64_t> head_{0};
    char name_[24] = {0};
};

/**
 * The set of rings of one server: lanes, control, and any client
 * rings claimed afterwards. Claiming takes a lock (it is rare and
 * cold); recording into an already-claimed ring never does.
 *
 * std::deque keeps ring addresses stable as clients claim more.
 */
class TraceBuffer
{
  public:
    /** Builds rings 0..lanes-1 ("lane<i>") plus ring `lanes` ("control"). */
    TraceBuffer(int lanes, std::size_t ring_capacity);

    TraceBuffer(const TraceBuffer &) = delete;
    TraceBuffer &operator=(const TraceBuffer &) = delete;

    TraceRing &lane(int i) { return rings_[static_cast<std::size_t>(i)]; }
    const TraceRing &lane(int i) const { return rings_[static_cast<std::size_t>(i)]; }
    TraceRing &control() { return rings_[static_cast<std::size_t>(lanes_)]; }
    const TraceRing &control() const { return rings_[static_cast<std::size_t>(lanes_)]; }

    /**
     * Claim a fresh ring for a client thread (e.g. one MpcSession).
     * Thread-safe; the returned pointer stays valid for the buffer's
     * lifetime. Call once per client, not per event.
     */
    TraceRing *claimRing(const char *name);

    int lanes() const { return lanes_; }
    std::size_t ringCount() const;
    /**
     * Ring @p i (i < a ringCount() you already observed). Takes the
     * claim lock: client threads may be appending rings concurrently
     * and deque indexing walks internal state their push mutates.
     * The returned reference itself is stable for the buffer's life.
     */
    const TraceRing &ring(std::size_t i) const;

    /** Sum of dropped() across all rings. */
    std::uint64_t totalDropped() const;

  private:
    std::deque<TraceRing> rings_;
    mutable std::mutex claim_mu_;
    int lanes_ = 0;
    std::size_t ring_capacity_ = 0;
};

} // namespace dadu::runtime::obs

#endif // DADU_RUNTIME_OBS_TRACE_H
