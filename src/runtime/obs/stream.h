/**
 * @file
 * Live trace streaming: drain TraceRings WHILE their producers are
 * recording.
 *
 * TraceReader is the cursor-based reader protocol over one ring. The
 * producer side is untouched — still wait-free, allocation-free, one
 * release store on the write index per event. The reader:
 *
 *   1. acquires the write index (h1) — every event below h1 has its
 *      word stores published;
 *   2. skips its cursor past the drop-oldest window [0, h1 - cap):
 *      those events are gone, counted into dropped();
 *   3. copies out up to `max` slots with relaxed word loads;
 *   4. fences, re-acquires the write index (h2), and discards the
 *      copied prefix with sequence number ≤ h2 - cap: the producer
 *      advancing to h2 may have been mid-overwrite of exactly those
 *      slots, so they are the only possibly-torn copies. Discards
 *      also count into dropped().
 *
 * The accounting is exact: once the producer quiesces and the reader
 * drains to empty, delivered() + dropped() == ring.recorded(), every
 * delivered event is intact, and delivery is in recording order with
 * gaps only where dropped() says so.
 *
 * TraceStreamer fans a TraceBuffer's rings (including client rings
 * claimed mid-run) through one TraceReader each and appends the
 * drained chunks to a ChromeTraceWriter. The time base is fixed at
 * the first flush and reused for every later chunk, so timestamps
 * are consistent across the whole streamed file; on a quiesced
 * buffer a single flush() produces byte-identical output to
 * writeChromeTrace().
 */

#ifndef DADU_RUNTIME_OBS_STREAM_H
#define DADU_RUNTIME_OBS_STREAM_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "runtime/obs/export.h"
#include "runtime/obs/trace.h"

namespace dadu::runtime::obs {

/**
 * Streaming cursor over one TraceRing. Single reader thread per
 * reader (the aggregator); the ring's producer keeps recording.
 */
class TraceReader
{
  public:
    explicit TraceReader(const TraceRing *ring) : ring_(ring) {}

    /**
     * Copy out up to @p max events the cursor has not yet seen,
     * oldest first. Returns the number delivered into @p out (0 when
     * caught up). Never blocks, never spins: one acquire load before
     * the copy, one after.
     */
    std::size_t read(TraceEvent *out, std::size_t max);

    /** Events handed out via read(), all of them intact. */
    std::uint64_t delivered() const { return delivered_; }

    /**
     * Events this cursor will never deliver: lost to drop-oldest
     * wraparound before the cursor reached them, or discarded because
     * the producer raced into the copied window (overrun).
     */
    std::uint64_t dropped() const { return dropped_; }

    /** Next sequence number to read (== delivered + dropped). */
    std::uint64_t cursor() const { return next_; }

    const TraceRing *ring() const { return ring_; }

  private:
    const TraceRing *ring_;
    std::uint64_t next_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t dropped_ = 0;
};

/**
 * Chunked streaming of a whole TraceBuffer into a Chrome-trace file.
 * Owned and driven by one thread (the ObsAggregator's); flush() is
 * called periodically during the run and once more after quiesce.
 */
class TraceStreamer
{
  public:
    explicit TraceStreamer(const TraceBuffer &buf,
                           std::size_t chunk_events = 4096);

    /** Open the output file (header written immediately). */
    bool openFile(const std::string &path);
    bool fileOpen() const { return writer_.isOpen(); }

    /**
     * Drain every ring once (readers for newly claimed rings are
     * added on the fly) and append the events to the file, if open.
     * The first flush that sees any event fixes the time base at the
     * earliest drained timestamp. Returns events delivered this call.
     */
    std::size_t flush();

    /** Write the footer (total dropped count) and close the file. */
    bool closeFile();

    /** Totals across all ring cursors. */
    std::uint64_t delivered() const;
    std::uint64_t dropped() const;

  private:
    void ensureReaders();

    const TraceBuffer *buf_;
    std::size_t chunk_;
    std::deque<TraceReader> readers_;        ///< readers_[i] over buf_->ring(i)
    std::vector<TraceEvent> scratch_;        ///< chunk copy-out buffer
    std::vector<char> announced_;            ///< thread_name emitted per tid
    ChromeTraceWriter writer_;
    bool have_t0_ = false;
};

} // namespace dadu::runtime::obs

#endif // DADU_RUNTIME_OBS_STREAM_H
