#include "runtime/backends.h"

#include <cassert>

#include "algorithms/crba.h"
#include "algorithms/dynamics.h"
#include "algorithms/mminv_gen.h"
#include "perf/timing.h"

namespace dadu::runtime {

const char *
functionName(FunctionType fn)
{
    switch (fn) {
      case FunctionType::ID: return "ID";
      case FunctionType::FD: return "FD";
      case FunctionType::M: return "M";
      case FunctionType::Minv: return "Minv";
      case FunctionType::DeltaID: return "dID";
      case FunctionType::DeltaFD: return "dFD";
      case FunctionType::DeltaiFD: return "diFD";
    }
    return "?";
}

namespace {

using perf::nowUs;

/** True for the functions a column mask applies to (∆ outputs). */
bool
derivativeFunction(FunctionType fn)
{
    return fn == FunctionType::DeltaID || fn == FunctionType::DeltaFD ||
           fn == FunctionType::DeltaiFD;
}

/** True when the request actually asks for column gating. */
bool
requestGated(const DynamicsRequest &req)
{
    return req.gating != algo::GatingMode::None && !req.seed_cols.empty();
}

/**
 * Deterministic submit-time mask validation, shared by every
 * backend: a derivative request with out-of-range or duplicate seed
 * indices rejects the whole batch before any point executes. Seeds
 * on non-derivative functions are ignored (masks only apply to ∆
 * outputs), as are seeds under GatingMode::None.
 */
bool
masksValid(FunctionType fn, const DynamicsRequest *requests,
           std::size_t count, int nv)
{
    if (!derivativeFunction(fn))
        return true;
    for (std::size_t i = 0; i < count; ++i)
        if (requestGated(requests[i]) &&
            !algo::seedValid(requests[i].seed_cols, nv))
            return false;
    return true;
}

/**
 * Single-point reference execution of one Table I function through
 * the workspace kernels, with optional column gating on the ∆
 * outputs. Shared by the CPU backend's non-batched functions and by
 * the analytic backend's functional path.
 */
void
referenceExecute(const RobotModel &robot, algo::DynamicsWorkspace &ws,
                 algo::FdDerivatives &fd_tmp, FunctionType fn,
                 const DynamicsRequest &req, DynamicsResult &out,
                 const algo::ColumnPlan *plan = nullptr)
{
    const std::vector<Vec6> *fext = req.fext.empty() ? nullptr : &req.fext;
    switch (fn) {
      case FunctionType::ID:
        algo::rnea(robot, ws, req.q, req.qd, req.qdd_or_tau, ws.rnea_res,
                   fext);
        out.tau = ws.rnea_res.tau;
        break;
      case FunctionType::FD:
        algo::forwardDynamics(robot, ws, req.q, req.qd, req.qdd_or_tau,
                              out.qdd, fext);
        break;
      case FunctionType::M:
        algo::crba(robot, ws, req.q, out.m);
        break;
      case FunctionType::Minv:
        algo::massMatrixInverse(robot, ws, req.q, out.minv);
        break;
      case FunctionType::DeltaID:
        algo::rnea(robot, ws, req.q, req.qd, req.qdd_or_tau, ws.rnea_res,
                   fext);
        out.tau = ws.rnea_res.tau;
        algo::rneaDerivatives(robot, ws, req.q, req.qd, req.qdd_or_tau,
                              ws.did, fext, false, plan);
        out.dtau_dq = ws.did.dtau_dq;
        out.dtau_dqd = ws.did.dtau_dqd;
        break;
      case FunctionType::DeltaFD:
        algo::fdDerivatives(robot, ws, req.q, req.qd, req.qdd_or_tau,
                            fd_tmp, fext, plan);
        out.qdd = fd_tmp.qdd;
        out.minv = fd_tmp.minv;
        out.dqdd_dq = fd_tmp.dqdd_dq;
        out.dqdd_dqd = fd_tmp.dqdd_dqd;
        break;
      case FunctionType::DeltaiFD:
        algo::fdDerivativesGivenAccel(robot, ws, req.q, req.qd,
                                      req.qdd_or_tau, req.minv, fd_tmp,
                                      fext, plan);
        out.qdd = req.qdd_or_tau;
        out.dqdd_dq = fd_tmp.dqdd_dq;
        out.dqdd_dqd = fd_tmp.dqdd_dqd;
        break;
    }
}

void
fillMeasuredStats(BatchStats *stats, double elapsed_us, std::size_t count)
{
    if (!stats)
        return;
    *stats = BatchStats{};
    stats->total_us = elapsed_us;
    stats->latency_us = count ? elapsed_us / count : 0.0;
    stats->throughput_mtasks =
        elapsed_us > 0.0 ? count / elapsed_us : 0.0;
}

} // namespace

// -----------------------------------------------------------------
// CpuBatchedBackend
// -----------------------------------------------------------------

CpuBatchedBackend::CpuBatchedBackend(const RobotModel &robot, int threads)
    : robot_(robot), engine_(robot, threads), ws_(robot)
{}

CpuBatchedBackend::CpuBatchedBackend(const RobotModel &robot,
                                     std::shared_ptr<app::ThreadPool> pool)
    : robot_(robot), engine_(robot, std::move(pool)), ws_(robot)
{}

std::unique_ptr<DynamicsBackend>
CpuBatchedBackend::clone() const
{
    // Clones share ONE host-wide worker pool (the bulk gate
    // serializes their dispatches); workspaces and staging stay
    // per-clone, so each clone remains independently submittable
    // from its own lane. The SIMD lane width carries over so a
    // fleet configured via setLaneWidth stays uniform.
    auto clone = std::make_unique<CpuBatchedBackend>(robot_, engine_.pool());
    clone->engine_.setLaneWidth(engine_.laneWidth());
    return clone;
}

SubmitStatus
CpuBatchedBackend::submit(FunctionType fn, const DynamicsRequest *requests,
                          std::size_t count, DynamicsResult *results,
                          BatchStats *stats)
{
    // Deterministic rejection before anything executes: a malformed
    // seed set fails the whole batch, never a partial one.
    if (!masksValid(fn, requests, count, robot_.nv()))
        return SubmitStatus::InvalidRequest;

    // The engine's columnar fast path covers the batch-shaped
    // functions; external forces (rare in the MPC workloads) and the
    // remaining Table I entries take the single-thread reference
    // kernels. A gated ∆FD/∆iFD batch stays on the engine path only
    // when the mask is uniform across the batch (the iLQR client's
    // shape: one drift-derived seed shared by the whole horizon) —
    // the SoA pack then shares one resolved plan; mixed-mask batches
    // fall back to the per-point reference kernels. ∆iFD also needs
    // every request's M⁻¹ input at full joint-space shape.
    bool engine_path = fn == FunctionType::FD ||
                       fn == FunctionType::DeltaFD ||
                       fn == FunctionType::DeltaiFD ||
                       fn == FunctionType::Minv;
    for (std::size_t i = 0; engine_path && i < count; ++i) {
        if (!requests[i].fext.empty())
            engine_path = false;
    }
    if (engine_path &&
        (fn == FunctionType::DeltaFD || fn == FunctionType::DeltaiFD)) {
        for (std::size_t i = 1; engine_path && i < count; ++i) {
            if (requests[i].gating != requests[0].gating ||
                requests[i].seed_cols != requests[0].seed_cols)
                engine_path = false;
        }
    }
    if (engine_path && fn == FunctionType::DeltaiFD) {
        const int nv = robot_.nv();
        for (std::size_t i = 0; engine_path && i < count; ++i) {
            if (static_cast<int>(requests[i].minv.rows()) != nv ||
                static_cast<int>(requests[i].minv.cols()) != nv)
                engine_path = false;
        }
    }

    const double t0 = nowUs();
    if (!engine_path) {
        const bool deriv = derivativeFunction(fn);
        for (std::size_t i = 0; i < count; ++i) {
            const algo::ColumnPlan *plan = nullptr;
            if (deriv && requestGated(requests[i])) {
                plan_.resolve(requests[i].gating, requests[i].seed_cols,
                              robot_.nv());
                plan = &plan_;
            }
            referenceExecute(robot_, ws_, fd_tmp_, fn, requests[i],
                             results[i], plan);
        }
        fillMeasuredStats(stats, nowUs() - t0, count);
        return SubmitStatus::Ok;
    }

    // Stage the struct-of-arrays views the engine dispatches over
    // (grow-only; element assignment reuses each vector's capacity).
    // ∆iFD's M⁻¹ inputs are staged as pointers into the requests —
    // no nv x nv copies.
    if (q_.size() < count) {
        q_.resize(count);
        qd_.resize(count);
        tau_.resize(count);
    }
    if (fn == FunctionType::DeltaiFD && minv_in_.size() < count)
        minv_in_.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
        q_[i] = requests[i].q;
        if (fn != FunctionType::Minv) {
            qd_[i] = requests[i].qd;
            tau_[i] = requests[i].qdd_or_tau;
        }
        if (fn == FunctionType::DeltaiFD)
            minv_in_[i] = &requests[i].minv;
    }
    const algo::ColumnPlan *plan = nullptr;
    if ((fn == FunctionType::DeltaFD || fn == FunctionType::DeltaiFD) &&
        count > 0 && requestGated(requests[0])) {
        plan_.resolve(requests[0].gating, requests[0].seed_cols,
                      robot_.nv());
        plan = &plan_;
    }
    runEngine(fn, q_.data(), qd_.data(), tau_.data(), count, results, plan);
    fillMeasuredStats(stats, nowUs() - t0, count);
    return SubmitStatus::Ok;
}

void
CpuBatchedBackend::submitColumns(FunctionType fn, const VectorX *q,
                                 const VectorX *qd, const VectorX *tau,
                                 std::size_t count, DynamicsResult *results,
                                 BatchStats *stats)
{
    assert((fn == FunctionType::FD || fn == FunctionType::DeltaFD ||
            fn == FunctionType::Minv) &&
           "submitColumns covers the engine-shaped functions only");
    const double t0 = nowUs();
    runEngine(fn, q, qd, tau, count, results);
    fillMeasuredStats(stats, nowUs() - t0, count);
}

void
CpuBatchedBackend::runEngine(FunctionType fn, const VectorX *q,
                             const VectorX *qd, const VectorX *tau,
                             std::size_t count, DynamicsResult *results,
                             const algo::ColumnPlan *plan)
{
    const int n = static_cast<int>(count);
    switch (fn) {
      case FunctionType::FD: {
        const auto &qdd = engine_.batchForwardDynamics(q, qd, tau, n);
        for (std::size_t i = 0; i < count; ++i)
            results[i].qdd = qdd[i];
        break;
      }
      case FunctionType::DeltaFD: {
        const auto &fd = engine_.batchFdDerivatives(q, qd, tau, n, plan);
        for (std::size_t i = 0; i < count; ++i) {
            results[i].qdd = fd[i].qdd;
            results[i].minv = fd[i].minv;
            results[i].dqdd_dq = fd[i].dqdd_dq;
            results[i].dqdd_dqd = fd[i].dqdd_dqd;
        }
        break;
      }
      case FunctionType::DeltaiFD: {
        // @p tau carries q̈ here (the request's qdd_or_tau slot).
        const auto &fd = engine_.batchFdDerivativesGivenAccel(
            q, qd, tau, minv_in_.data(), n, plan);
        for (std::size_t i = 0; i < count; ++i) {
            results[i].qdd = fd[i].qdd;
            results[i].dqdd_dq = fd[i].dqdd_dq;
            results[i].dqdd_dqd = fd[i].dqdd_dqd;
        }
        break;
      }
      case FunctionType::Minv: {
        const auto &minv = engine_.batchMinv(q, n);
        for (std::size_t i = 0; i < count; ++i)
            results[i].minv = minv[i];
        break;
      }
      default:
        assert(false && "engine path covers FD/DeltaFD/DeltaiFD/Minv only");
    }
}

// -----------------------------------------------------------------
// AcceleratorBackend
// -----------------------------------------------------------------

AcceleratorBackend::AcceleratorBackend(accel::Accelerator &accel)
    : accel_(&accel)
{}

AcceleratorBackend::AcceleratorBackend(
    std::unique_ptr<accel::Accelerator> accel)
    : owned_(std::move(accel)), accel_(owned_.get())
{}

std::unique_ptr<DynamicsBackend>
AcceleratorBackend::clone() const
{
    return std::make_unique<AcceleratorBackend>(accel_->clone());
}

SubmitStatus
AcceleratorBackend::submit(FunctionType fn, const DynamicsRequest *requests,
                           std::size_t count, DynamicsResult *results,
                           BatchStats *stats)
{
    if (!masksValid(fn, requests, count, accel_->robot().nv()))
        return SubmitStatus::InvalidRequest;
    // DynamicsRequest/DynamicsResult ARE the accelerator task types
    // (accel::TaskInput/TaskOutput alias them), so the batch — mask
    // included — goes to the cycle-accurate simulator without
    // conversion.
    accel_->run(fn, requests, count, results, stats);
    return SubmitStatus::Ok;
}

// -----------------------------------------------------------------
// AnalyticBackend
// -----------------------------------------------------------------

AnalyticBackend::AnalyticBackend(accel::Accelerator &accel)
    : accel_(accel), ws_(accel.robot())
{}

std::unique_ptr<DynamicsBackend>
AnalyticBackend::clone() const
{
    return std::make_unique<AnalyticBackend>(accel_);
}

SubmitStatus
AnalyticBackend::submit(FunctionType fn, const DynamicsRequest *requests,
                        std::size_t count, DynamicsResult *results,
                        BatchStats *stats)
{
    if (!masksValid(fn, requests, count, accel_.robot().nv()))
        return SubmitStatus::InvalidRequest;

    const bool deriv = derivativeFunction(fn);
    for (std::size_t i = 0; i < count; ++i) {
        const algo::ColumnPlan *plan = nullptr;
        if (deriv && requestGated(requests[i])) {
            plan_.resolve(requests[i].gating, requests[i].seed_cols,
                          accel_.robot().nv());
            plan = &plan_;
        }
        referenceExecute(accel_.robot(), ws_, fd_tmp_, fn, requests[i],
                         results[i], plan);
    }

    if (stats) {
        *stats = BatchStats{};
        // Price a uniformly gated batch for the union of its live
        // columns (one dense request prices the whole batch dense).
        algo::ColumnPlan union_plan;
        const algo::ColumnPlan *pricing = nullptr;
        const int nv = accel_.robot().nv();
        if (deriv && count > 0) {
            std::vector<char> live(static_cast<std::size_t>(nv), 0);
            bool all_gated = true;
            for (std::size_t i = 0; i < count && all_gated; ++i) {
                if (!requestGated(requests[i]) ||
                    !plan_.resolve(requests[i].gating,
                                   requests[i].seed_cols, nv) ||
                    plan_.dense()) {
                    all_gated = false;
                    break;
                }
                for (int c : plan_.cols())
                    live[c] = 1;
            }
            if (all_gated) {
                std::vector<int> seed;
                for (int c = 0; c < nv; ++c)
                    if (live[c])
                        seed.push_back(c);
                if (union_plan.resolve(algo::GatingMode::Simple, seed,
                                       nv) &&
                    !union_plan.dense())
                    pricing = &union_plan;
            }
        }
        const accel::TimingEstimate est = accel_.analytic(fn, pricing);
        const double cycles = count * est.ii_cycles + est.latency_cycles;
        const double freq_hz = accel_.config().freq_mhz * 1e6;
        stats->cycles = static_cast<std::uint64_t>(cycles);
        stats->total_us = cycles / freq_hz * 1e6;
        stats->latency_us = est.latency_us;
        stats->throughput_mtasks = est.throughput_mtasks;
    }
    return SubmitStatus::Ok;
}

} // namespace dadu::runtime
