#include "runtime/backends.h"

#include <cassert>

#include "algorithms/crba.h"
#include "algorithms/dynamics.h"
#include "algorithms/mminv_gen.h"
#include "perf/timing.h"

namespace dadu::runtime {

const char *
functionName(FunctionType fn)
{
    switch (fn) {
      case FunctionType::ID: return "ID";
      case FunctionType::FD: return "FD";
      case FunctionType::M: return "M";
      case FunctionType::Minv: return "Minv";
      case FunctionType::DeltaID: return "dID";
      case FunctionType::DeltaFD: return "dFD";
      case FunctionType::DeltaiFD: return "diFD";
    }
    return "?";
}

namespace {

using perf::nowUs;

/**
 * Single-point reference execution of one Table I function through
 * the workspace kernels. Shared by the CPU backend's non-batched
 * functions and by the analytic backend's functional path.
 */
void
referenceExecute(const RobotModel &robot, algo::DynamicsWorkspace &ws,
                 algo::FdDerivatives &fd_tmp, FunctionType fn,
                 const DynamicsRequest &req, DynamicsResult &out)
{
    const std::vector<Vec6> *fext = req.fext.empty() ? nullptr : &req.fext;
    switch (fn) {
      case FunctionType::ID:
        algo::rnea(robot, ws, req.q, req.qd, req.qdd_or_tau, ws.rnea_res,
                   fext);
        out.tau = ws.rnea_res.tau;
        break;
      case FunctionType::FD:
        algo::forwardDynamics(robot, ws, req.q, req.qd, req.qdd_or_tau,
                              out.qdd, fext);
        break;
      case FunctionType::M:
        algo::crba(robot, ws, req.q, out.m);
        break;
      case FunctionType::Minv:
        algo::massMatrixInverse(robot, ws, req.q, out.minv);
        break;
      case FunctionType::DeltaID:
        algo::rnea(robot, ws, req.q, req.qd, req.qdd_or_tau, ws.rnea_res,
                   fext);
        out.tau = ws.rnea_res.tau;
        algo::rneaDerivatives(robot, ws, req.q, req.qd, req.qdd_or_tau,
                              ws.did, fext);
        out.dtau_dq = ws.did.dtau_dq;
        out.dtau_dqd = ws.did.dtau_dqd;
        break;
      case FunctionType::DeltaFD:
        algo::fdDerivatives(robot, ws, req.q, req.qd, req.qdd_or_tau,
                            fd_tmp, fext);
        out.qdd = fd_tmp.qdd;
        out.minv = fd_tmp.minv;
        out.dqdd_dq = fd_tmp.dqdd_dq;
        out.dqdd_dqd = fd_tmp.dqdd_dqd;
        break;
      case FunctionType::DeltaiFD:
        algo::fdDerivativesGivenAccel(robot, ws, req.q, req.qd,
                                      req.qdd_or_tau, req.minv, fd_tmp,
                                      fext);
        out.qdd = req.qdd_or_tau;
        out.dqdd_dq = fd_tmp.dqdd_dq;
        out.dqdd_dqd = fd_tmp.dqdd_dqd;
        break;
    }
}

void
fillMeasuredStats(BatchStats *stats, double elapsed_us, std::size_t count)
{
    if (!stats)
        return;
    *stats = BatchStats{};
    stats->total_us = elapsed_us;
    stats->latency_us = count ? elapsed_us / count : 0.0;
    stats->throughput_mtasks =
        elapsed_us > 0.0 ? count / elapsed_us : 0.0;
}

} // namespace

// -----------------------------------------------------------------
// CpuBatchedBackend
// -----------------------------------------------------------------

CpuBatchedBackend::CpuBatchedBackend(const RobotModel &robot, int threads)
    : robot_(robot), engine_(robot, threads), ws_(robot)
{}

CpuBatchedBackend::CpuBatchedBackend(const RobotModel &robot,
                                     std::shared_ptr<app::ThreadPool> pool)
    : robot_(robot), engine_(robot, std::move(pool)), ws_(robot)
{}

std::unique_ptr<DynamicsBackend>
CpuBatchedBackend::clone() const
{
    // Clones share ONE host-wide worker pool (the bulk gate
    // serializes their dispatches); workspaces and staging stay
    // per-clone, so each clone remains independently submittable
    // from its own lane. The SIMD lane width carries over so a
    // fleet configured via setLaneWidth stays uniform.
    auto clone = std::make_unique<CpuBatchedBackend>(robot_, engine_.pool());
    clone->engine_.setLaneWidth(engine_.laneWidth());
    return clone;
}

SubmitStatus
CpuBatchedBackend::submit(FunctionType fn, const DynamicsRequest *requests,
                          std::size_t count, DynamicsResult *results,
                          BatchStats *stats)
{
    // The engine's columnar fast path covers the batch-shaped
    // functions; external forces (rare in the MPC workloads) and the
    // remaining Table I entries take the single-thread reference
    // kernels.
    bool engine_path = fn == FunctionType::FD ||
                       fn == FunctionType::DeltaFD ||
                       fn == FunctionType::Minv;
    for (std::size_t i = 0; engine_path && i < count; ++i) {
        if (!requests[i].fext.empty())
            engine_path = false;
    }

    const double t0 = nowUs();
    if (!engine_path) {
        for (std::size_t i = 0; i < count; ++i)
            referenceExecute(robot_, ws_, fd_tmp_, fn, requests[i],
                             results[i]);
        fillMeasuredStats(stats, nowUs() - t0, count);
        return SubmitStatus::Ok;
    }

    // Stage the struct-of-arrays views the engine dispatches over
    // (grow-only; element assignment reuses each vector's capacity).
    if (q_.size() < count) {
        q_.resize(count);
        qd_.resize(count);
        tau_.resize(count);
    }
    for (std::size_t i = 0; i < count; ++i) {
        q_[i] = requests[i].q;
        if (fn != FunctionType::Minv) {
            qd_[i] = requests[i].qd;
            tau_[i] = requests[i].qdd_or_tau;
        }
    }
    runEngine(fn, q_.data(), qd_.data(), tau_.data(), count, results);
    fillMeasuredStats(stats, nowUs() - t0, count);
    return SubmitStatus::Ok;
}

void
CpuBatchedBackend::submitColumns(FunctionType fn, const VectorX *q,
                                 const VectorX *qd, const VectorX *tau,
                                 std::size_t count, DynamicsResult *results,
                                 BatchStats *stats)
{
    assert((fn == FunctionType::FD || fn == FunctionType::DeltaFD ||
            fn == FunctionType::Minv) &&
           "submitColumns covers the engine-shaped functions only");
    const double t0 = nowUs();
    runEngine(fn, q, qd, tau, count, results);
    fillMeasuredStats(stats, nowUs() - t0, count);
}

void
CpuBatchedBackend::runEngine(FunctionType fn, const VectorX *q,
                             const VectorX *qd, const VectorX *tau,
                             std::size_t count, DynamicsResult *results)
{
    const int n = static_cast<int>(count);
    switch (fn) {
      case FunctionType::FD: {
        const auto &qdd = engine_.batchForwardDynamics(q, qd, tau, n);
        for (std::size_t i = 0; i < count; ++i)
            results[i].qdd = qdd[i];
        break;
      }
      case FunctionType::DeltaFD: {
        const auto &fd = engine_.batchFdDerivatives(q, qd, tau, n);
        for (std::size_t i = 0; i < count; ++i) {
            results[i].qdd = fd[i].qdd;
            results[i].minv = fd[i].minv;
            results[i].dqdd_dq = fd[i].dqdd_dq;
            results[i].dqdd_dqd = fd[i].dqdd_dqd;
        }
        break;
      }
      case FunctionType::Minv: {
        const auto &minv = engine_.batchMinv(q, n);
        for (std::size_t i = 0; i < count; ++i)
            results[i].minv = minv[i];
        break;
      }
      default:
        assert(false && "engine path covers FD/DeltaFD/Minv only");
    }
}

// -----------------------------------------------------------------
// AcceleratorBackend
// -----------------------------------------------------------------

AcceleratorBackend::AcceleratorBackend(accel::Accelerator &accel)
    : accel_(&accel)
{}

AcceleratorBackend::AcceleratorBackend(
    std::unique_ptr<accel::Accelerator> accel)
    : owned_(std::move(accel)), accel_(owned_.get())
{}

std::unique_ptr<DynamicsBackend>
AcceleratorBackend::clone() const
{
    return std::make_unique<AcceleratorBackend>(accel_->clone());
}

SubmitStatus
AcceleratorBackend::submit(FunctionType fn, const DynamicsRequest *requests,
                           std::size_t count, DynamicsResult *results,
                           BatchStats *stats)
{
    // DynamicsRequest/DynamicsResult ARE the accelerator task types
    // (accel::TaskInput/TaskOutput alias them), so the batch goes to
    // the cycle-accurate simulator without conversion.
    accel_->run(fn, requests, count, results, stats);
    return SubmitStatus::Ok;
}

// -----------------------------------------------------------------
// AnalyticBackend
// -----------------------------------------------------------------

AnalyticBackend::AnalyticBackend(accel::Accelerator &accel)
    : accel_(accel), ws_(accel.robot())
{}

std::unique_ptr<DynamicsBackend>
AnalyticBackend::clone() const
{
    return std::make_unique<AnalyticBackend>(accel_);
}

SubmitStatus
AnalyticBackend::submit(FunctionType fn, const DynamicsRequest *requests,
                        std::size_t count, DynamicsResult *results,
                        BatchStats *stats)
{
    for (std::size_t i = 0; i < count; ++i)
        referenceExecute(accel_.robot(), ws_, fd_tmp_, fn, requests[i],
                         results[i]);

    if (stats) {
        *stats = BatchStats{};
        const accel::TimingEstimate est = accel_.analytic(fn);
        const double cycles = count * est.ii_cycles + est.latency_cycles;
        const double freq_hz = accel_.config().freq_mhz * 1e6;
        stats->cycles = static_cast<std::uint64_t>(cycles);
        stats->total_us = cycles / freq_hz * 1e6;
        stats->latency_us = est.latency_us;
        stats->throughput_mtasks = est.throughput_mtasks;
    }
    return SubmitStatus::Ok;
}

} // namespace dadu::runtime
