/**
 * @file
 * The three DynamicsBackend implementations:
 *
 *  - CpuBatchedBackend:  host execution through the zero-allocation
 *                        algo::BatchedDynamics thread-pool engine
 *                        (measured wall-clock timing);
 *  - AcceleratorBackend: cycle-accurate simulation through
 *                        accel::Accelerator::run(), with simulated
 *                        cycles converted to modeled microseconds at
 *                        the configured clock;
 *  - AnalyticBackend:    the closed-form initiation-interval/latency
 *                        estimates of Accelerator::analytic() for the
 *                        timing, with the reference CPU kernels
 *                        supplying the numeric results so chained
 *                        (serial-stage) jobs still make progress.
 */

#ifndef DADU_RUNTIME_BACKENDS_H
#define DADU_RUNTIME_BACKENDS_H

#include <memory>
#include <vector>

#include "accel/accelerator.h"
#include "algorithms/batched.h"
#include "algorithms/rnea.h"
#include "algorithms/rnea_derivatives.h"
#include "algorithms/workspace.h"
#include "runtime/backend.h"

namespace dadu::runtime {

/**
 * Host CPU backend over the zero-allocation batched engine.
 *
 * FD / ∆FD / M⁻¹ batches fan out over the engine's thread pool; the
 * remaining Table I functions (ID, M, ∆ID, ∆iFD) and any request
 * carrying external forces run through the single-thread workspace
 * reference kernels. Steady-state submission with stable batch
 * sizes performs no heap allocation: inputs are staged into
 * grow-only engine vectors and outputs are copied into the caller's
 * reused result storage.
 *
 * Not thread-safe (one submit at a time), like the engine it wraps.
 */
class CpuBatchedBackend : public DynamicsBackend
{
  public:
    CpuBatchedBackend(const RobotModel &robot, int threads);

    /**
     * An engine over @p pool instead of an owned worker set — the
     * clone() path: every clone of one backend shares the original's
     * host-wide pool (per-clone workspaces and staging, shared
     * workers), so sharding CPU backends across DynamicsServer lanes
     * on one host serializes on the pool's bulk gate instead of
     * oversubscribing the cores.
     */
    CpuBatchedBackend(const RobotModel &robot,
                      std::shared_ptr<app::ThreadPool> pool);

    const char *name() const override { return "cpu-batched"; }
    const RobotModel &robot() const override { return robot_; }
    bool offloaded() const override { return false; }
    /**
     * A second engine over the same robot SHARING this backend's
     * thread pool (fresh workspaces and staging). Concurrent
     * submits to the original and its clones are safe: batch
     * dispatches serialize on the shared pool's bulk gate, so the
     * host's cores are never oversubscribed.
     */
    std::unique_ptr<DynamicsBackend> clone() const override;
    SubmitStatus submit(FunctionType fn, const DynamicsRequest *requests,
                        std::size_t count, DynamicsResult *results,
                        BatchStats *stats = nullptr) override;
    using DynamicsBackend::submit;

    /**
     * Columnar fast path for callers that already hold
     * struct-of-arrays inputs (the MPC workload's horizon vectors):
     * same semantics as submit() for the engine-shaped functions
     * (FD / ∆FD / M⁻¹, no external forces), minus the AoS staging
     * copy. @p qd and @p tau may be null for Minv.
     */
    void submitColumns(FunctionType fn, const VectorX *q,
                       const VectorX *qd, const VectorX *tau,
                       std::size_t count, DynamicsResult *results,
                       BatchStats *stats = nullptr);

    /** The wrapped engine (e.g. for thread-count introspection). */
    algo::BatchedDynamics &engine() { return engine_; }

  private:
    /** Engine dispatch + result copy shared by both submit paths. */
    void runEngine(FunctionType fn, const VectorX *q, const VectorX *qd,
                   const VectorX *tau, std::size_t count,
                   DynamicsResult *results,
                   const algo::ColumnPlan *plan = nullptr);

    const RobotModel &robot_;
    algo::BatchedDynamics engine_;
    algo::DynamicsWorkspace ws_;  ///< reference path for non-batched fns
    algo::FdDerivatives fd_tmp_;  ///< reference-path ∆FD scratch
    algo::ColumnPlan plan_;       ///< resolved column mask scratch
    // Grow-only input staging for the engine's columnar batch API.
    std::vector<VectorX> q_, qd_, tau_;
    // ∆iFD M⁻¹ inputs, staged as pointers into the submitted
    // requests (valid for the duration of the submit call only).
    std::vector<const linalg::MatrixX *> minv_in_;
};

/**
 * Cycle-accurate accelerator backend: every batch actually runs
 * through the simulated FB/BF pipeline arrays, and total_us is the
 * simulated makespan at the configured clock.
 */
class AcceleratorBackend : public DynamicsBackend
{
  public:
    /** Non-owning: @p accel must outlive the backend. */
    explicit AcceleratorBackend(accel::Accelerator &accel);

    /** Owning: the backend keeps the (typically cloned) instance. */
    explicit AcceleratorBackend(std::unique_ptr<accel::Accelerator> accel);

    const char *name() const override { return "accel-sim"; }
    const RobotModel &robot() const override { return accel_->robot(); }
    bool offloaded() const override { return true; }
    /**
     * One more simulated accelerator of the same fitted bitstream
     * (Accelerator::clone(): no auto-fit, no SAP recompilation),
     * owned by the new backend — the sharding unit of the runtime.
     */
    std::unique_ptr<DynamicsBackend> clone() const override;
    SubmitStatus submit(FunctionType fn, const DynamicsRequest *requests,
                        std::size_t count, DynamicsResult *results,
                        BatchStats *stats = nullptr) override;
    using DynamicsBackend::submit;

    accel::Accelerator &accelerator() { return *accel_; }

  private:
    std::unique_ptr<accel::Accelerator> owned_;
    accel::Accelerator *accel_;
};

/**
 * Closed-form backend: timing comes from Accelerator::analytic()
 * (batch makespan = count·II + latency cycles at the configured
 * clock — the pre-runtime modeling path), numerics from the
 * single-thread workspace reference kernels so chained jobs can
 * still consume real stage outputs.
 */
class AnalyticBackend : public DynamicsBackend
{
  public:
    /** Non-owning: @p accel must outlive the backend. */
    explicit AnalyticBackend(accel::Accelerator &accel);

    const char *name() const override { return "accel-analytic"; }
    const RobotModel &robot() const override { return accel_.robot(); }
    bool offloaded() const override { return true; }
    /**
     * Shares the (immutable, read-only) accelerator model but owns
     * its workspaces, so clones can serve concurrent lanes.
     */
    std::unique_ptr<DynamicsBackend> clone() const override;
    SubmitStatus submit(FunctionType fn, const DynamicsRequest *requests,
                        std::size_t count, DynamicsResult *results,
                        BatchStats *stats = nullptr) override;
    using DynamicsBackend::submit;

  private:
    accel::Accelerator &accel_;
    algo::DynamicsWorkspace ws_;
    algo::FdDerivatives fd_tmp_;
    algo::ColumnPlan plan_; ///< resolved column mask scratch
};

} // namespace dadu::runtime

#endif // DADU_RUNTIME_BACKENDS_H
