#include "runtime/sched/policies.h"

namespace dadu::runtime::sched {

bool
StealPolicy::pick(const QueueView &q, int lane, Pick &out)
{
    if (inner_->pick(q, lane, out))
        return true;
    // The asking lane has nothing runnable: hunt queued FLAT work on
    // the other lanes, in EDF order across all of them, so a stolen
    // deadline-tagged item is served before a stolen bulk one.
    // Serial-stage items are skipped — their later stages re-enqueue
    // on the lane that ran the previous stage, so migrating one
    // would split the job across backends.
    bool found = false;
    int best_lane = -1;
    std::size_t best_pos = 0;
    ItemView best_view;
    const int n_lanes = q.lanes();
    for (int victim = 0; victim < n_lanes; ++victim) {
        if (victim == lane || q.flatCount(victim) == 0)
            continue;
        const std::size_t depth = q.depth(victim);
        for (std::size_t pos = 0; pos < depth; ++pos) {
            const ItemView view = q.item(victim, pos);
            if (!view.flat)
                continue;
            if (!found || edfBefore(view, best_view)) {
                found = true;
                best_lane = victim;
                best_pos = pos;
                best_view = view;
            }
        }
    }
    if (!found)
        return false;
    out.lane = best_lane;
    out.positions.clear();
    out.positions.push_back(best_pos);
    out.overtaken = best_pos;
    // A stolen small batch can bring friends: absorb further small
    // same-function flat items of the SAME victim, so the migration
    // also fills the thief's pipeline.
    if (cfg_.coalesce)
        absorbSameFnFlat(q, cfg_, out);
    return true;
}

} // namespace dadu::runtime::sched
