/**
 * @file
 * Configuration and telemetry types of the QoS scheduling subsystem.
 *
 * A DynamicsServer lane is no longer a plain FIFO: the policy chosen
 * in SchedConfig decides which queued item a lane runs next
 * (deadline-aware EDF or submission-order FIFO), whether small
 * same-function flat batches from different clients merge into one
 * pipeline-filling batch (coalescing), and whether an idle lane may
 * pull queued flat work from a busy one (work stealing). SchedStats
 * counts what the policy actually did over one accounting interval,
 * including the deadline outcomes of tagged jobs — a tagged job is
 * never dropped or parked: it either completes by its deadline
 * (deadline_met) or completes late and is reported in
 * deadline_misses.
 */

#ifndef DADU_RUNTIME_SCHED_TELEMETRY_H
#define DADU_RUNTIME_SCHED_TELEMETRY_H

#include <cstddef>
#include <limits>

#include "runtime/obs/config.h"

namespace dadu::runtime::sched {

/** Base queue-pop order of a lane. */
enum class PolicyKind
{
    Fifo, ///< submission order (the pre-QoS behavior, the default)
    Edf,  ///< earliest absolute deadline first; untagged jobs after
};

/** Sentinel deadline of an untagged job ("no deadline"). */
inline constexpr double kNoDeadline =
    std::numeric_limits<double>::infinity();

/**
 * Optional QoS metadata attached to a job at submission. Deadlines
 * are absolute microseconds on the perf::nowUs() monotonic clock
 * (tag with nowUs() + budget); kNoDeadline means bulk work that any
 * deadline-tagged job may overtake under EDF.
 */
struct JobTag
{
    int priority = 0;                 ///< EDF tie-break: higher first
    double deadline_us = kNoDeadline; ///< absolute completion target
};

/** Scheduling-policy selection and knobs of one DynamicsServer. */
struct SchedConfig
{
    PolicyKind kind = PolicyKind::Fifo;

    /**
     * Merge small same-function flat items queued on one lane into a
     * single backend batch (per-batch pipeline latency is paid once
     * for all of them); the merged BatchStats is split back per job
     * in proportion to task count.
     */
    bool coalesce = false;

    /**
     * Let a lane whose queue yields nothing runnable pull queued
     * flat items from other lanes (serial-stage jobs stay
     * lane-sticky). Requires interchangeable backends — register
     * clone()s of one configured backend, as with submitSharded().
     */
    bool steal = false;

    /** Only items with fewer tasks than this are merged. */
    std::size_t coalesce_only_below = 64;

    /** Task cap of one merged batch. */
    std::size_t coalesce_max_tasks = 512;

    /** Item cap of one merged batch (bounds the gather/scatter). */
    std::size_t coalesce_max_items = 32;

    /**
     * Bounded retry budget for TransientFailure submits: a faulted
     * batch is resubmitted to the same lane up to this many times
     * before the lane is quarantined and its work failed over.
     */
    int max_retries = 2;

    /**
     * NaN/inf-guard the fields each completed batch wrote. A corrupt
     * batch counts as a transient fault (the retry budget applies) —
     * silent NaN propagation into an MPC plan is the failure mode
     * this exists to stop. Off by default: trusted backends should
     * not pay the scan.
     */
    bool validate_results = false;

    /**
     * Observability selection (lifecycle tracing + metrics registry).
     * Both off by default; when off, the server holds no
     * observability state and every hook is a branch on nullptr.
     */
    obs::ServerObsConfig obs;
};

/**
 * What the policy did over one drain() accounting interval. Returned
 * alongside ServerStats by DynamicsServer::drain().
 */
struct SchedStats
{
    std::size_t picks = 0;         ///< serve decisions taken
    std::size_t coalesced_batches = 0; ///< merged submissions issued
    std::size_t coalesced_items = 0;   ///< items absorbed beyond the first
    std::size_t steals = 0;        ///< items executed off their home lane
    std::size_t deadline_met = 0;  ///< tagged jobs done by their deadline
    std::size_t deadline_misses = 0; ///< tagged jobs that completed late

    // Fault-tolerance counters (zero unless faults or shedding occur).
    std::size_t transient_faults = 0; ///< non-Ok submits observed
    std::size_t retries = 0;          ///< resubmissions after a fault
    std::size_t corrupt_results = 0;  ///< batches failing NaN validation
    std::size_t lane_deaths = 0;      ///< lanes quarantined
    std::size_t requeued_items = 0;   ///< items failed over to siblings
    std::size_t failed_jobs = 0;      ///< jobs with no healthy lane left
    std::size_t rejected_jobs = 0;    ///< jobs shed by admission control
    std::size_t immediate_misses = 0; ///< tagged jobs admitted already late
};

} // namespace dadu::runtime::sched

#endif // DADU_RUNTIME_SCHED_TELEMETRY_H
