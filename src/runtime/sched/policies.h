/**
 * @file
 * The concrete SchedPolicy implementations (internal to the sched
 * subsystem; users select them through SchedConfig / makePolicy).
 * Each lives in its own translation unit: fifo.cc, edf.cc,
 * coalesce.cc, steal.cc.
 */

#ifndef DADU_RUNTIME_SCHED_POLICIES_H
#define DADU_RUNTIME_SCHED_POLICIES_H

#include "runtime/sched/policy.h"

namespace dadu::runtime::sched {

/** Submission order: always the queue front (the pre-QoS behavior). */
class FifoPolicy : public SchedPolicy
{
  public:
    const char *name() const override { return "fifo"; }
    bool pick(const QueueView &q, int lane, Pick &out) override;
};

/** Earliest absolute deadline first; untagged items in FIFO order after. */
class EdfPolicy : public SchedPolicy
{
  public:
    const char *name() const override { return "edf"; }
    bool pick(const QueueView &q, int lane, Pick &out) override;
};

/**
 * Decorator: after the inner policy picks a small flat primary,
 * absorb further small same-function flat items of the same lane
 * into one merged batch.
 */
class CoalescePolicy : public SchedPolicy
{
  public:
    CoalescePolicy(std::unique_ptr<SchedPolicy> inner, SchedConfig cfg)
        : inner_(std::move(inner)), cfg_(cfg)
    {}

    const char *name() const override { return "coalesce"; }
    bool crossLane() const override { return inner_->crossLane(); }
    bool pick(const QueueView &q, int lane, Pick &out) override;

  private:
    std::unique_ptr<SchedPolicy> inner_;
    SchedConfig cfg_;
};

/**
 * Decorator: when the inner policy finds nothing on the asking lane,
 * pull the best (EDF-ordered) queued flat item from another lane —
 * optionally coalescing more flat work from the same victim.
 * Serial-stage jobs are never stolen: their later stages are
 * lane-sticky and migrating one would split a job across backends.
 */
class StealPolicy : public SchedPolicy
{
  public:
    StealPolicy(std::unique_ptr<SchedPolicy> inner, SchedConfig cfg)
        : inner_(std::move(inner)), cfg_(cfg)
    {}

    const char *name() const override { return "steal"; }
    bool crossLane() const override { return true; }
    bool pick(const QueueView &q, int lane, Pick &out) override;

  private:
    std::unique_ptr<SchedPolicy> inner_;
    SchedConfig cfg_;
};

} // namespace dadu::runtime::sched

#endif // DADU_RUNTIME_SCHED_POLICIES_H
