#include "runtime/sched/policies.h"

namespace dadu::runtime::sched {

bool
FifoPolicy::pick(const QueueView &q, int lane, Pick &out)
{
    if (q.depth(lane) == 0)
        return false;
    out.lane = lane;
    out.positions.clear();
    out.positions.push_back(0);
    out.overtaken = 0;
    return true;
}

} // namespace dadu::runtime::sched
