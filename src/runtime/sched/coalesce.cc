#include <algorithm>

#include "runtime/sched/policies.h"

namespace dadu::runtime::sched {

std::size_t
absorbSameFnFlat(const QueueView &q, const SchedConfig &cfg, Pick &out)
{
    if (out.positions.size() != 1)
        return 0;
    const std::size_t primary_pos = out.positions.front();
    const ItemView primary = q.item(out.lane, primary_pos);
    // Only small flat batches amortize: a batch already near the
    // pipeline-filling size pays its latency once over many tasks,
    // and merging it would just delay whoever queued behind it.
    if (!primary.flat || primary.count >= cfg.coalesce_only_below)
        return 0;
    std::size_t total = primary.count;
    std::size_t absorbed = 0;
    const std::size_t depth = q.depth(out.lane);
    for (std::size_t pos = 0; pos < depth; ++pos) {
        if (pos == primary_pos)
            continue;
        if (out.positions.size() >= cfg.coalesce_max_items)
            break;
        const ItemView view = q.item(out.lane, pos);
        // mask_sig equality keeps the merged batch mask-uniform:
        // mixing a gated item with a dense one (or a differently
        // gated one) would push the whole merged batch off the
        // backend's uniform-mask SoA fast path.
        if (!view.flat || view.fn != primary.fn ||
            view.mask_sig != primary.mask_sig ||
            view.count >= cfg.coalesce_only_below)
            continue;
        if (total + view.count > cfg.coalesce_max_tasks)
            continue;
        out.positions.push_back(pos);
        total += view.count;
        ++absorbed;
    }
    if (absorbed > 0)
        std::sort(out.positions.begin(), out.positions.end());
    return absorbed;
}

bool
CoalescePolicy::pick(const QueueView &q, int lane, Pick &out)
{
    if (!inner_->pick(q, lane, out))
        return false;
    absorbSameFnFlat(q, cfg_, out);
    return true;
}

} // namespace dadu::runtime::sched
