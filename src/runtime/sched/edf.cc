#include "runtime/sched/policies.h"

namespace dadu::runtime::sched {

bool
EdfPolicy::pick(const QueueView &q, int lane, Pick &out)
{
    const std::size_t depth = q.depth(lane);
    if (depth == 0)
        return false;
    // Earliest-deadline scan of the lane's queue. Untagged items
    // carry kNoDeadline (+inf), so they sort after every tagged item
    // and among themselves fall back to priority, then submission
    // order — a lane with no tagged work degenerates to FIFO.
    std::size_t best = 0;
    ItemView best_view = q.item(lane, 0);
    for (std::size_t pos = 1; pos < depth; ++pos) {
        const ItemView view = q.item(lane, pos);
        if (edfBefore(view, best_view)) {
            best = pos;
            best_view = view;
        }
    }
    out.lane = lane;
    out.positions.clear();
    out.positions.push_back(best);
    out.overtaken = best;
    return true;
}

} // namespace dadu::runtime::sched
