#include "runtime/sched/policies.h"

namespace dadu::runtime::sched {

std::unique_ptr<SchedPolicy>
makePolicy(const SchedConfig &cfg)
{
    std::unique_ptr<SchedPolicy> policy;
    if (cfg.kind == PolicyKind::Edf)
        policy = std::make_unique<EdfPolicy>();
    else
        policy = std::make_unique<FifoPolicy>();
    if (cfg.coalesce)
        policy = std::make_unique<CoalescePolicy>(std::move(policy), cfg);
    if (cfg.steal)
        policy = std::make_unique<StealPolicy>(std::move(policy), cfg);
    return policy;
}

} // namespace dadu::runtime::sched
