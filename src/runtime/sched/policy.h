/**
 * @file
 * SchedPolicy: the pluggable queue-pop decision of a DynamicsServer
 * lane.
 *
 * The server owns the queues, the locking, the execution and the
 * accounting; a policy only answers one question — "what should the
 * worker of lane L run next?" — through a read-only view of every
 * lane's queued items. The answer (a Pick) names one or more queued
 * items of ONE source lane to pop and submit as a single backend
 * batch on L, which is how the three QoS mechanisms compose:
 *
 *  - EDF picks the earliest-deadline runnable item instead of the
 *    queue front;
 *  - coalescing returns several small same-function flat items as
 *    one Pick, so the backend sees one pipeline-filling batch;
 *  - work stealing returns a Pick whose source lane differs from L,
 *    migrating queued flat work to an otherwise idle lane.
 *
 * pick() is always called with the server mutex held and the popped
 * items execute on L's worker thread, so every backend still sees
 * exactly one submitting thread — the policy reorders and regroups
 * queued work, it never adds concurrency.
 */

#ifndef DADU_RUNTIME_SCHED_POLICY_H
#define DADU_RUNTIME_SCHED_POLICY_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/request.h"
#include "runtime/sched/telemetry.h"

namespace dadu::runtime::sched {

/**
 * Relative initiation-interval weight of one Table I function in
 * FD-equivalents — the load metric of the server's water-filling.
 * Counting raw task-stages treats a ∆FD task like an FD task, but a
 * ∆FD occupies the pipeline ~1.5x longer (the derivative pass reuses
 * the forward arrays and adds the ∂-propagation); weighting the lane
 * load by II packs lanes by the time they actually owe.
 */
constexpr double
functionWeight(FunctionType fn)
{
    switch (fn) {
      case FunctionType::DeltaFD:
      case FunctionType::DeltaiFD:
          return 1.5;
      case FunctionType::DeltaID:
          return 1.25;
      default:
          return 1.0; // ID / FD / M / Minv stream at the base II
    }
}

/**
 * Live-column-aware weight: a column-gated ∆ task streams only
 * @p live of the @p nv Jacobian columns, so the part of its II that
 * exceeds the base function (the ∂-propagation) scales with the live
 * fraction. Dense requests (live >= nv) and weight-1.0 functions
 * collapse to the dense weight, so ungated traffic prices exactly as
 * before.
 */
constexpr double
functionWeight(FunctionType fn, int live, int nv)
{
    const double w = functionWeight(fn);
    if (w == 1.0 || nv <= 0 || live >= nv)
        return w;
    return 1.0 + (w - 1.0) * static_cast<double>(live) /
                     static_cast<double>(nv);
}

/** Batch mask signature of a heterogeneously-masked batch. */
inline constexpr std::uint64_t kMaskMixed = ~std::uint64_t{0};

/**
 * FNV-1a signature of one request's column mask. 0 means dense (no
 * gating); equal signatures mean identical (mode, seed) pairs, which
 * is what the coalescer needs — merging identically-masked flat items
 * keeps the merged batch mask-uniform, so the backend's SoA fast path
 * still applies to it.
 */
inline std::uint64_t
maskSignature(const DynamicsRequest &req)
{
    if (req.gating == algo::GatingMode::None || req.seed_cols.empty())
        return 0;
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(static_cast<std::uint64_t>(req.gating));
    for (int c : req.seed_cols)
        mix(static_cast<std::uint64_t>(c) + 1);
    // 0 and all-ones are reserved (dense / mixed-batch sentinels).
    return h == 0 || h == kMaskMixed ? 1 : h;
}

/** Policy-visible metadata of one queued work item. */
struct ItemView
{
    FunctionType fn{};
    std::size_t count = 0; ///< tasks in this item
    std::uint64_t seq = 0; ///< submission order (job id): FIFO key
    int priority = 0;      ///< higher first (EDF tie-break)
    double deadline_us = kNoDeadline; ///< absolute, kNoDeadline if untagged
    bool flat = false;     ///< single-stage: mergeable and stealable
    /**
     * Column-mask signature of the item's batch: 0 dense,
     * kMaskMixed heterogeneous, else a hash of the shared (mode,
     * seed). The coalescer only merges items with EQUAL signatures.
     */
    std::uint64_t mask_sig = 0;
};

/** Read-only view of every lane's queue (server mutex held). */
class QueueView
{
  public:
    virtual ~QueueView() = default;
    virtual int lanes() const = 0;
    virtual std::size_t depth(int lane) const = 0;
    virtual ItemView item(int lane, std::size_t pos) const = 0;
    /**
     * Number of FLAT items queued on @p lane — lets the stealing
     * policy skip lanes with nothing stealable in O(1) instead of
     * walking their queues on every probe.
     */
    virtual std::size_t flatCount(int lane) const = 0;
};

/**
 * One serve decision: pop the items at @p positions (strictly
 * ascending) of @p lane's queue and run them as ONE backend batch on
 * the asking lane. More than one position implies every named item
 * is flat and of the same function.
 */
struct Pick
{
    int lane = -1;
    std::vector<std::size_t> positions; ///< grow-only scratch, reused
    /**
     * Queued items the primary position bypassed (its queue depth at
     * pick time): 0 for FIFO front-pops, the queue-jump depth of an
     * EDF or steal pick. Traced as the "overtaken" payload of the
     * Picked lifecycle event.
     */
    std::size_t overtaken = 0;
};

/** EDF order: deadline, then priority (desc), then submission. */
inline bool
edfBefore(const ItemView &a, const ItemView &b)
{
    if (a.deadline_us != b.deadline_us)
        return a.deadline_us < b.deadline_us;
    if (a.priority != b.priority)
        return a.priority > b.priority;
    return a.seq < b.seq;
}

/** The queue-pop decision of a lane. */
class SchedPolicy
{
  public:
    virtual ~SchedPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * Decide what @p lane runs next; return false when nothing is
     * runnable for it. Called with the server mutex held: must not
     * block, and must not allocate in steady state (@p out's
     * position vector is grow-only caller scratch).
     */
    virtual bool pick(const QueueView &q, int lane, Pick &out) = 0;

    /**
     * True when pick() may look beyond @p lane's own queue (the
     * stealing policy): the server then wakes every lane's worker on
     * any push, not just the target lane's.
     */
    virtual bool crossLane() const { return false; }
};

/**
 * Absorb further small same-function flat items of @p out.lane into
 * @p out (the coalescing step, shared by the coalescing and stealing
 * policies). @p out must already hold one flat primary position;
 * afterwards out.positions is sorted ascending. Returns the number
 * of items absorbed.
 */
std::size_t absorbSameFnFlat(const QueueView &q, const SchedConfig &cfg,
                             Pick &out);

/**
 * Build the policy chain of @p cfg: FIFO or EDF base, optionally
 * wrapped by the coalescer, optionally by the stealer.
 */
std::unique_ptr<SchedPolicy> makePolicy(const SchedConfig &cfg);

} // namespace dadu::runtime::sched

#endif // DADU_RUNTIME_SCHED_POLICY_H
