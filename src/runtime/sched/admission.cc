/**
 * @file
 * Stock deadline-aware admission policy. See admission.h for the
 * invariants every policy keeps.
 */

#include "runtime/sched/admission.h"

#include "runtime/sched/policy.h"

namespace dadu::runtime::sched {

double
predictedAdmissionUs(double queued_weight, int points, int stages,
                     double task_us, double latency_us, double fn_weight)
{
    return queued_weight * task_us +
           stages * (points * task_us * fn_weight + latency_us);
}

namespace {

class DeadlineAdmission final : public AdmissionPolicy
{
  public:
    explicit DeadlineAdmission(const AdmissionConfig &cfg) : cfg_(cfg) {}

    const char *name() const override { return "deadline-admission"; }

    bool admit(const AdmissionRequest &req) override
    {
        if (req.deadline_us == kNoDeadline) {
            // Bulk: shed on queue depth only. Depth bounds memory and
            // keeps the EDF scan short; bulk has no deadline to miss.
            return cfg_.max_queue_depth == 0 ||
                   req.queue_depth < cfg_.max_queue_depth;
        }
        // Already late: admit, never shed. The server counts it as an
        // immediate miss; a late answer still steers the controller.
        if (req.deadline_us <= req.now_us)
            return true;
        if (req.task_us <= 0.0)
            return true; // no calibration yet — cannot predict
        const double eta = predictedAdmissionUs(
            req.queued_weight, req.points, req.stages, req.task_us,
            /*latency_us=*/0.0,
            req.fn_weight > 0.0 ? req.fn_weight
                                : functionWeight(req.fn));
        return req.now_us + cfg_.headroom * eta <= req.deadline_us;
    }

  private:
    AdmissionConfig cfg_;
};

} // namespace

std::unique_ptr<AdmissionPolicy>
makeDeadlineAdmission(const AdmissionConfig &cfg)
{
    return std::make_unique<DeadlineAdmission>(cfg);
}

} // namespace dadu::runtime::sched
