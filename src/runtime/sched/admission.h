/**
 * @file
 * Admission control for DynamicsServer: decide at submission time
 * whether a job should enter a lane queue at all, instead of letting
 * unbounded bulk load destroy the deadlines of tagged traffic.
 *
 * The policy sees one AdmissionRequest per submitted job — shape,
 * QoS tag, and a snapshot of the contention it would face — and says
 * admit or shed. A shed job is never silent: the server records it
 * with JobOutcome::Rejected, wait() returns immediately, and the
 * client chooses its own fallback (MpcSession reuses the previous
 * warm-started plan and counts a degraded tick).
 *
 * Two invariants every policy must keep:
 *  - A tagged job whose deadline is already past is ADMITTED and
 *    counted as an immediate miss — shedding it would turn a late
 *    answer into no answer, which is strictly worse for a controller.
 *  - Only the caller's own traffic class pays for overload: bulk
 *    (untagged) work sheds on queue depth before tagged work sheds
 *    on predicted completion.
 */

#ifndef DADU_RUNTIME_SCHED_ADMISSION_H
#define DADU_RUNTIME_SCHED_ADMISSION_H

#include <cstddef>
#include <memory>

#include "runtime/request.h"
#include "runtime/sched/telemetry.h"

namespace dadu::runtime::sched {

/**
 * Predicted microseconds until a newly submitted job completes, given
 * the weighted work that drains before it. @p task_us is the per-task
 * steady-state cost of a weight-1.0 function on one lane; @p
 * fn_weight scales it to the submitted function; @p latency_us is the
 * per-batch pipeline fill paid once per stage:
 *
 *   queued_weight·task_us + stages·(points·task_us·fn_weight
 *                                   + latency_us)
 */
double predictedAdmissionUs(double queued_weight, int points, int stages,
                            double task_us, double latency_us,
                            double fn_weight);

/**
 * Everything an admission policy may consult, snapshotted under the
 * server lock at submission. `queued_weight` is the COMPETING weight:
 * under EDF only items that would drain before this job's deadline
 * count (queued bulk does not delay a tagged job that overtakes it);
 * under FIFO everything queued counts.
 */
struct AdmissionRequest
{
    FunctionType fn = FunctionType::FD;
    int points = 0;         ///< tasks per stage
    int stages = 1;         ///< serial stages (1 for flat jobs)
    int priority = 0;       ///< JobTag::priority
    double deadline_us = kNoDeadline; ///< absolute, perf::nowUs() clock
    double now_us = 0.0;    ///< submission timestamp, same clock
    double queued_weight = 0.0; ///< FD-equivalent weight draining first
    std::size_t queue_depth = 0; ///< items queued on the target lane
    int healthy_lanes = 0;  ///< lanes currently accepting work
    double task_us = 0.0;   ///< calibrated per-task cost (0 = unknown)
    /**
     * Live-column-aware per-task weight of the submitted job (the
     * job's unit_weight): a column-gated ∆ batch is cheaper than a
     * dense one and its completion prediction must reflect that. 0
     * means "unknown — fall back to the dense functionWeight(fn)".
     */
    double fn_weight = 0.0;
};

/** Admit-or-shed decision point, pluggable on a DynamicsServer. */
class AdmissionPolicy
{
  public:
    virtual ~AdmissionPolicy() = default;
    virtual const char *name() const = 0;

    /** True to enqueue the job, false to shed it (Rejected outcome). */
    virtual bool admit(const AdmissionRequest &req) = 0;
};

/** Knobs of the stock deadline-aware admission policy. */
struct AdmissionConfig
{
    /**
     * Bulk (untagged) jobs shed when the least-loaded healthy lane
     * already queues this many items. 0 means unbounded (bulk is
     * never depth-shed).
     */
    std::size_t max_queue_depth = 8;

    /**
     * Safety factor on the completion prediction for tagged jobs: a
     * job is shed when now + headroom·predictedAdmissionUs exceeds
     * its deadline. > 1.0 sheds earlier, < 1.0 gambles on the
     * prediction being pessimistic.
     */
    double headroom = 1.0;
};

/**
 * The stock policy: depth-bound bulk, predict-completion tagged,
 * always admit already-late tagged jobs (immediate-miss accounting
 * happens server-side). With task_us unknown (0) tagged jobs are
 * always admitted — no prediction beats a wrong one.
 */
std::unique_ptr<AdmissionPolicy>
makeDeadlineAdmission(const AdmissionConfig &cfg);

} // namespace dadu::runtime::sched

#endif // DADU_RUNTIME_SCHED_ADMISSION_H
