/**
 * @file
 * Runtime-level request/completion types of the unified dynamics
 * runtime (the accelerator's function-level interface of Table I,
 * lifted to a backend-agnostic layer).
 *
 * These are the canonical task types: `accel::TaskInput` /
 * `accel::TaskOutput` / `accel::FunctionType` are aliases of the
 * types defined here, so a request built for the runtime can be
 * handed to the cycle-accurate simulator (or any other backend)
 * without conversion or copying.
 */

#ifndef DADU_RUNTIME_REQUEST_H
#define DADU_RUNTIME_REQUEST_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "algorithms/col_gating.h"
#include "linalg/matrixx.h"
#include "linalg/vec.h"

namespace dadu::runtime {

using linalg::MatrixX;
using linalg::Vec6;
using linalg::VectorX;

/** Rigid body dynamics functions (Table I). */
enum class FunctionType
{
    ID,       ///< τ = ID(q, q̇, q̈, f_ext)
    FD,       ///< q̈ = FD(q, q̇, τ, f_ext)
    M,        ///< mass matrix M(q)
    Minv,     ///< M⁻¹(q)
    DeltaID,  ///< ∂uτ = ∆ID(q, q̇, q̈, f_ext)
    DeltaFD,  ///< ∂u q̈ = ∆FD(q, q̇, τ, f_ext)
    DeltaiFD, ///< ∂u q̈ = ∆iFD(q, q̇, q̈, M⁻¹, f_ext)
};

/** Human-readable function name as used in the paper's figures. */
const char *functionName(FunctionType fn);

/** Unified task input (the Decode Module payload of the paper). */
struct DynamicsRequest
{
    VectorX q;              ///< configuration (nq)
    VectorX qd;             ///< velocity (nv)
    VectorX qdd_or_tau;     ///< q̈ (ID/∆ID/∆iFD) or τ (FD/∆FD)
    std::vector<Vec6> fext; ///< optional external forces (per link)
    MatrixX minv;           ///< M⁻¹ input, ∆iFD only

    /**
     * Column-sparsity gating (∆ID/∆FD/∆iFD only; other functions
     * ignore it). `seed_cols` lists the tangent-space columns for
     * which derivative output is requested; `gating` selects how the
     * seed resolves (see algo::GatingMode). An empty seed or mode
     * None means dense. Out-of-range or duplicate seed indices are
     * rejected at submit with SubmitStatus::InvalidRequest. Columns
     * the resolved plan leaves dead are exactly 0.0 in the result;
     * live columns are bitwise identical to the dense path.
     */
    std::vector<int> seed_cols;
    algo::GatingMode gating = algo::GatingMode::None;
};

/** Unified task output (the Encode Module payload of the paper). */
struct DynamicsResult
{
    VectorX tau;      ///< ID/∆ID
    VectorX qdd;      ///< FD/∆FD
    MatrixX m;        ///< M
    MatrixX minv;     ///< Minv (also optional ∆FD byproduct)
    MatrixX dtau_dq;  ///< ∆ID
    MatrixX dtau_dqd; ///< ∆ID
    MatrixX dqdd_dq;  ///< ∆FD/∆iFD
    MatrixX dqdd_dqd; ///< ∆FD/∆iFD
};

/**
 * Outcome of one batch submission — the error channel of the backend
 * interface. The pre-fault-tolerance contract was that submit()
 * cannot fail; backends that can (a wedged accelerator, an injected
 * fault) report it here instead of aborting, and the serving layer
 * decides what to do: bounded retry for TransientFailure, lane
 * quarantine + failover for BackendDown.
 */
enum class SubmitStatus
{
    Ok,               ///< batch executed, results valid
    TransientFailure, ///< batch did not execute; a retry may succeed
    BackendDown,      ///< backend permanently dead; do not resubmit
    InvalidRequest,   ///< malformed request (bad seed set); never retried
};

/**
 * Timing and occupancy of one submitted batch. `total_us` is the
 * batch makespan in *backend time*: measured wall-clock for the CPU
 * backend, modeled microseconds (simulated or estimated cycles over
 * the configured clock) for the accelerator paths. The FIFO/cycle
 * fields are zero for backends without a cycle notion.
 */
struct BatchStats
{
    std::uint64_t cycles = 0;        ///< makespan in cycles (accel only)
    double total_us = 0.0;           ///< makespan in microseconds
    double throughput_mtasks = 0.0;  ///< million tasks per second
    double latency_us = 0.0;         ///< mean single-task latency
    std::size_t fifo_high_water = 0; ///< deepest FIFO occupancy
    std::uint64_t fifo_stalls = 0;   ///< full-FIFO push rejections
    SubmitStatus status = SubmitStatus::Ok; ///< mirrors submit()'s return
};

} // namespace dadu::runtime

#endif // DADU_RUNTIME_REQUEST_H
