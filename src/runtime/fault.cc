/**
 * @file
 * FaultInjectingBackend implementation. See fault.h for semantics.
 */

#include "runtime/fault.h"

#include <chrono>
#include <limits>
#include <thread>

#include "perf/timing.h"

namespace dadu::runtime {

namespace {
/** Fault sub-kind codes (obs Fault event payload `a`). */
enum : std::uint32_t
{
    kFaultTransient = 0,
    kFaultCorrupt = 1,
    kFaultSpike = 2,
    kFaultDeath = 3,
};
} // namespace

FaultInjectingBackend::FaultInjectingBackend(DynamicsBackend &inner,
                                             const FaultPlan &plan)
    : inner_(&inner), plan_(plan),
      name_(std::string("fault:") + inner.name()), rng_(plan.seed)
{
}

FaultInjectingBackend::FaultInjectingBackend(
    std::unique_ptr<DynamicsBackend> inner, const FaultPlan &plan)
    : inner_(inner.get()), owned_(std::move(inner)), plan_(plan),
      name_(std::string("fault:") + inner_->name()), rng_(plan.seed)
{
}

std::unique_ptr<DynamicsBackend>
FaultInjectingBackend::clone() const
{
    std::unique_ptr<DynamicsBackend> inner_clone = inner_->clone();
    if (!inner_clone)
        return nullptr;
    FaultPlan plan = plan_;
    // Offset the seed so replicas draw independent fault sequences.
    plan.seed = plan_.seed + 7919u * ++clone_count_;
    return std::make_unique<FaultInjectingBackend>(std::move(inner_clone),
                                                   plan);
}

bool
FaultInjectingBackend::draw(double prob)
{
    if (prob <= 0.0)
        return false;
    if (prob >= 1.0)
        return true;
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < prob;
}

/**
 * Overwrite one element of the field @p fn writes with a quiet NaN.
 * The inner backend has already executed, so the field is sized; the
 * victim index is a seeded draw so corruption positions replay.
 */
void
FaultInjectingBackend::corruptOne(FunctionType fn, DynamicsResult *results,
                                  std::size_t count)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const std::size_t victim =
        count > 1
            ? std::uniform_int_distribution<std::size_t>(0, count - 1)(rng_)
            : 0;
    DynamicsResult &r = results[victim];
    switch (fn) {
      case FunctionType::ID:
        if (r.tau.size() > 0)
            r.tau[0] = nan;
        break;
      case FunctionType::FD:
        if (r.qdd.size() > 0)
            r.qdd[0] = nan;
        break;
      case FunctionType::M:
        if (r.m.rows() > 0)
            r.m(0, 0) = nan;
        break;
      case FunctionType::Minv:
        if (r.minv.rows() > 0)
            r.minv(0, 0) = nan;
        break;
      case FunctionType::DeltaID:
        if (r.dtau_dq.rows() > 0)
            r.dtau_dq(0, 0) = nan;
        break;
      case FunctionType::DeltaFD:
      case FunctionType::DeltaiFD:
        if (r.dqdd_dq.rows() > 0)
            r.dqdd_dq(0, 0) = nan;
        break;
    }
}

SubmitStatus
FaultInjectingBackend::submit(FunctionType fn,
                              const DynamicsRequest *requests,
                              std::size_t count, DynamicsResult *results,
                              BatchStats *stats)
{
    ++batches_;
    if (dead_ ||
        (plan_.die_after_batches >= 0 && executed_ >= plan_.die_after_batches))
    {
        if (trace_ring_ && !dead_)
            trace_ring_->record(obs::EventKind::Fault, perf::nowUs(), -1,
                                static_cast<std::int16_t>(trace_lane_),
                                fn, kFaultDeath,
                                static_cast<double>(batches_));
        dead_ = true;
        if (stats) {
            *stats = BatchStats{};
            stats->status = SubmitStatus::BackendDown;
        }
        return SubmitStatus::BackendDown;
    }

    const bool transient =
        plan_.transient_every_n > 0
            ? (batches_ % plan_.transient_every_n == 0)
            : draw(plan_.transient_fail_prob);
    if (transient) {
        ++transient_faults_;
        if (trace_ring_)
            trace_ring_->record(obs::EventKind::Fault, perf::nowUs(), -1,
                                static_cast<std::int16_t>(trace_lane_),
                                fn, kFaultTransient,
                                static_cast<double>(batches_));
        if (stats) {
            *stats = BatchStats{};
            stats->status = SubmitStatus::TransientFailure;
        }
        return SubmitStatus::TransientFailure;
    }

    const SubmitStatus status =
        inner_->submit(fn, requests, count, results, stats);
    if (status != SubmitStatus::Ok) {
        if (stats)
            stats->status = status;
        return status;
    }
    ++executed_;

    if (draw(plan_.corrupt_prob)) {
        ++corrupted_;
        corruptOne(fn, results, count);
        if (trace_ring_)
            trace_ring_->record(obs::EventKind::Fault, perf::nowUs(), -1,
                                static_cast<std::int16_t>(trace_lane_),
                                fn, kFaultCorrupt,
                                static_cast<double>(batches_));
    }
    if (draw(plan_.latency_spike_prob)) {
        ++spikes_;
        if (stats)
            stats->total_us += plan_.latency_spike_us;
        if (trace_ring_)
            trace_ring_->record(obs::EventKind::Fault, perf::nowUs(), -1,
                                static_cast<std::int16_t>(trace_lane_),
                                fn, kFaultSpike, plan_.latency_spike_us);
        if (plan_.spike_wall)
            std::this_thread::sleep_for(std::chrono::microseconds(
                static_cast<long>(plan_.latency_spike_us)));
    }
    if (stats)
        stats->status = SubmitStatus::Ok;
    return SubmitStatus::Ok;
}

} // namespace dadu::runtime
