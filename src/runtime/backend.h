/**
 * @file
 * DynamicsBackend: the one request/completion interface every
 * rigid-body-dynamics consumer submits to, and every execution
 * engine serves.
 *
 * The paper's central claim is that one function-level interface
 * (Table I) covers every dynamics consumer; this layer makes that
 * claim executable on the software side. A workload builds a batch
 * of DynamicsRequests and submits it; whether the batch runs on the
 * host CPU through the zero-allocation batched engine, through the
 * cycle-accurate accelerator simulator, or through the closed-form
 * analytic model is a backend choice, invisible to the caller.
 *
 * Timing semantics: BatchStats::total_us is the batch makespan in
 * backend time — measured wall-clock for CPU backends, modeled
 * microseconds for the accelerator paths — so schedulers can compose
 * makespans from heterogeneous backends with one unit.
 */

#ifndef DADU_RUNTIME_BACKEND_H
#define DADU_RUNTIME_BACKEND_H

#include <cstddef>
#include <memory>
#include <vector>

#include "model/robot_model.h"
#include "runtime/request.h"

namespace dadu::runtime {

using model::RobotModel;

/** Abstract dynamics execution backend. */
class DynamicsBackend
{
  public:
    virtual ~DynamicsBackend() = default;

    /** Short backend name for reports ("cpu-batched", ...). */
    virtual const char *name() const = 0;

    /** The robot this backend instance is configured for. */
    virtual const RobotModel &robot() const = 0;

    /**
     * True when the backend runs off the host CPU (so its batches
     * can overlap host-side work in a schedule); false for backends
     * that compete with the caller for host cores.
     */
    virtual bool offloaded() const = 0;

    /**
     * A second, independently-submittable instance of this backend
     * for the same robot — what DynamicsServer shards batches
     * across. Cheap where the configuration work can be reused (the
     * accelerator clones its fitted bitstream). Returns null for
     * backends that cannot be replicated.
     */
    virtual std::unique_ptr<DynamicsBackend> clone() const
    {
        return nullptr;
    }

    /**
     * Execute @p count requests of @p fn, writing @c results[i] for
     * request i. Results are caller-provided storage (resized in
     * place, reusing capacity) so the steady path of a well-behaved
     * backend performs no heap allocation.
     *
     * The return value (mirrored into @p stats->status when stats is
     * provided) is the error channel: a non-Ok status means the
     * results were NOT written and the batch may be retried
     * (TransientFailure) or the backend abandoned (BackendDown).
     * The three production backends always return Ok; fault-injecting
     * decorators and future remote transports do not.
     */
    virtual SubmitStatus submit(FunctionType fn,
                                const DynamicsRequest *requests,
                                std::size_t count, DynamicsResult *results,
                                BatchStats *stats = nullptr) = 0;

    /** Vector convenience over the span entry point. */
    SubmitStatus
    submit(FunctionType fn, const std::vector<DynamicsRequest> &requests,
           std::vector<DynamicsResult> &results, BatchStats *stats = nullptr)
    {
        if (results.size() < requests.size())
            results.resize(requests.size());
        return submit(fn, requests.data(), requests.size(), results.data(),
                      stats);
    }
};

} // namespace dadu::runtime

#endif // DADU_RUNTIME_BACKEND_H
