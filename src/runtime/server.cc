#include "runtime/server.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "perf/timing.h"
#include "runtime/obs/aggregate.h"
#include "runtime/obs/endpoint.h"

namespace dadu::runtime {

DynamicsServer::DynamicsServer() : policy_(sched::makePolicy({})) {}

DynamicsServer::DynamicsServer(DynamicsBackend &backend)
    : DynamicsServer()
{
    addBackend(backend);
}

DynamicsServer::~DynamicsServer()
{
    stop();
}

int
DynamicsServer::addBackend(DynamicsBackend &backend)
{
    assert(!running() && "register backends before start()");
    lanes_.emplace_back();
    lanes_.back().backend = &backend;
    reconfigureObs();
    return static_cast<int>(lanes_.size()) - 1;
}

void
DynamicsServer::setPolicy(const sched::SchedConfig &cfg)
{
    assert(!running() && "select the policy while the server is idle");
    sched_cfg_ = cfg;
    policy_ = sched::makePolicy(cfg);
    reconfigureObs();
}

void
DynamicsServer::reconfigureObs()
{
    // Idle-only (asserted by every caller): safe to drop and rebuild.
    // Enabling needs at least one lane; addBackend re-runs this, so a
    // setPolicy() before the first addBackend() still ends up traced.
    // The live plane goes too — the aggregator's streamer holds ring
    // cursors into the buffer being dropped. start() rebuilds it.
    endpoint_.reset();
    aggregator_.reset();
    trace_.reset();
    metrics_.reset();
    const int n = backendCount();
    if (n == 0)
        return;
    if (sched_cfg_.obs.trace)
        trace_ = std::make_unique<obs::TraceBuffer>(
            n, sched_cfg_.obs.ring_capacity);
    if (sched_cfg_.obs.metrics)
        metrics_ = std::make_unique<obs::MetricsRegistry>(n);
}

void
DynamicsServer::setAdmission(std::unique_ptr<sched::AdmissionPolicy> policy)
{
    assert(!running() && "install admission while the server is idle");
    admission_ = std::move(policy);
}

sched::ItemView
DynamicsServer::QueueAdapter::item(int lane, std::size_t pos) const
{
    const WorkItem &w = server_->lanes_[lane].work[pos];
    const Job &job = server_->jobRef(w.job);
    sched::ItemView view;
    view.fn = job.fn;
    view.count = w.count;
    // Job ids are absolute submission indices: the FIFO key. A
    // re-enqueued serial stage keeps its job's original id, so under
    // EDF ties an old job's next stage is served before newer work.
    view.seq = static_cast<std::uint64_t>(w.job);
    view.priority = job.priority;
    view.deadline_us = job.deadline_us;
    view.flat = job.stages == 1;
    view.mask_sig = job.mask_sig;
    return view;
}

namespace {

/** True for the ∆ functions whose output columns a seed set gates. */
bool
gatesColumns(FunctionType fn)
{
    return fn == FunctionType::DeltaID || fn == FunctionType::DeltaFD ||
           fn == FunctionType::DeltaiFD;
}

/**
 * Submit-time seed validation over a whole batch (the same check the
 * backends apply). Catching a malformed mask here — instead of
 * letting the backend return InvalidRequest mid-serve — means a
 * deterministic Rejected outcome with no retry loop and no lane
 * quarantine for what is a client error.
 */
bool
batchMasksValid(FunctionType fn, const DynamicsRequest *requests,
                std::size_t count)
{
    if (!gatesColumns(fn) || requests == nullptr)
        return true;
    for (std::size_t i = 0; i < count; ++i) {
        const DynamicsRequest &r = requests[i];
        if (r.gating == algo::GatingMode::None || r.seed_cols.empty())
            continue;
        if (!algo::seedValid(r.seed_cols,
                             static_cast<int>(r.qd.size())))
            return false;
    }
    return true;
}

/**
 * Per-task FD-equivalent weight of a batch: the mean over the
 * requests of the live-column-aware functionWeight. Requires a
 * mask-valid batch (gatedLiveCount assumes valid seeds). Dense
 * batches return exactly functionWeight(fn).
 */
double
batchUnitWeight(FunctionType fn, const DynamicsRequest *requests,
                std::size_t count)
{
    const double dense = sched::functionWeight(fn);
    if (dense == 1.0 || count == 0 || requests == nullptr ||
        !gatesColumns(fn))
        return dense;
    double sum = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        const DynamicsRequest &r = requests[i];
        const int nv = static_cast<int>(r.qd.size());
        sum += sched::functionWeight(
            fn, algo::gatedLiveCount(r.gating, r.seed_cols, nv), nv);
    }
    return sum / static_cast<double>(count);
}

/**
 * Mask signature of a batch: 0 when every request is dense, the
 * shared maskSignature when every request carries the same (mode,
 * seed), kMaskMixed otherwise (a mixed batch never merges with
 * anything mask-uniform).
 */
std::uint64_t
batchMaskSig(FunctionType fn, const DynamicsRequest *requests,
             std::size_t count)
{
    if (!gatesColumns(fn) || requests == nullptr || count == 0)
        return 0;
    const std::uint64_t sig = sched::maskSignature(requests[0]);
    for (std::size_t i = 1; i < count; ++i)
        if (sched::maskSignature(requests[i]) != sig)
            return sched::kMaskMixed;
    return sig;
}

} // namespace

int
DynamicsServer::leastLoadedLane()
{
    // Round-robin tie-breaking: equal loads are the common case
    // right after a sharded batch equalized the lanes, and a fixed
    // preference would then funnel every serial-stage job onto lane
    // 0. Start each scan one past the previous winner. Quarantined
    // lanes are never candidates; -1 when none is healthy.
    const int n = static_cast<int>(lanes_.size());
    int best = -1;
    for (int k = 0; k < n; ++k) {
        const int i = (rr_next_ + k) % n;
        if (!lanes_[i].healthy)
            continue;
        if (best < 0 || lanes_[i].load_weight < lanes_[best].load_weight)
            best = i;
    }
    if (best >= 0)
        rr_next_ = (best + 1) % n;
    return best;
}

int
DynamicsServer::healthyLaneCount() const
{
    int n = 0;
    for (const Lane &lane : lanes_)
        n += lane.healthy ? 1 : 0;
    return n;
}

void
DynamicsServer::pushWork(int lane, WorkItem item)
{
    lanes_[lane].work.push_back(item);
    if (jobRef(item.job).stages == 1)
        ++lanes_[lane].flat_queued; // stealable-item count for thieves
    lanes_[lane].cv.notify_one(); // the home lane's worker always cares
    if (policy_->crossLane()) {
        // Wake ONE sleeping lane as a potential thief (round-robin
        // so repeated pushes spread across thieves). One is enough:
        // thieves are symmetric — any idle lane's pick scans every
        // other lane — and the home lane's worker serves whatever
        // nobody steals, so liveness never depends on the thief.
        // Waking all sleepers would just pile duplicate cross-lane
        // scans onto mu_ for the losers of the race. The `waiting`
        // flag (not an empty queue) identifies real sleepers: a lane
        // mid-batch has an empty queue too, and spending the one
        // notification on it would leave an actual sleeper unwoken.
        const int n = static_cast<int>(lanes_.size());
        for (int k = 1; k <= n; ++k) {
            const int l = (thief_next_ + k) % n;
            if (l != lane && lanes_[l].waiting && lanes_[l].healthy) {
                lanes_[l].cv.notify_one();
                thief_next_ = l;
                break;
            }
        }
    }
}

int
DynamicsServer::recordTerminalJob(Job job, JobOutcome outcome)
{
    // A job that ends at submission (shed, or no healthy lane) still
    // gets a live record: wait() must return for it and jobOutcome()
    // must say why — a shed job is never silent. It does not enter
    // pending_jobs_ (nothing will complete it), the deadline buckets
    // (it never ran), or stats_.jobs.
    job.done = true;
    job.outcome = outcome;
    job.done_at_us = perf::nowUs();
    if (outcome == JobOutcome::Rejected)
        ++sched_stats_.rejected_jobs;
    else
        ++sched_stats_.failed_jobs;
    const FunctionType fn = job.fn;
    const std::size_t count = job.count;
    const double deadline = job.deadline_us;
    jobs_.push_back(std::move(job));
    const int id = static_cast<int>(retire_base_ + jobs_.size()) - 1;
    if (trace_) {
        obs::TraceRing &ctl = trace_->control();
        const double now = jobs_.back().done_at_us;
        ctl.record(obs::EventKind::Submit, now, id, -1, fn,
                   static_cast<std::uint32_t>(count), deadline);
        ctl.record(outcome == JobOutcome::Rejected
                       ? obs::EventKind::Rejected
                       : obs::EventKind::Failed,
                   now, id, -1, fn,
                   static_cast<std::uint32_t>(outcome), deadline);
    }
    if (metrics_) {
        metrics_->add(obs::Counter::JobsSubmitted);
        metrics_->add(outcome == JobOutcome::Rejected
                          ? obs::Counter::JobsRejected
                          : obs::Counter::JobsFailed);
    }
    return id;
}

bool
DynamicsServer::admitLocked(const Job &job, int lane, double now_us)
{
    sched::AdmissionRequest req;
    req.fn = job.fn;
    req.points = static_cast<int>(job.count);
    req.stages = job.stages;
    req.priority = job.priority;
    req.deadline_us = job.deadline_us;
    req.now_us = now_us;
    req.queue_depth = lanes_[lane].work.size();
    req.healthy_lanes = healthyLaneCount();
    req.task_us = task_us_ewma_;
    req.fn_weight = job.unit_weight;
    req.queued_weight = competingWeightLocked(job, lane);
    return admission_->admit(req);
}

double
DynamicsServer::competingWeightLocked(const Job &job, int lane) const
{
    // What actually drains before this job. Under EDF only
    // earlier-or-equal deadlines delay it (queued bulk is overtaken);
    // under FIFO everything committed to the lane does.
    if (sched_cfg_.kind == sched::PolicyKind::Edf &&
        job.deadline_us != sched::kNoDeadline)
    {
        double w = 0.0;
        for (const WorkItem &item : lanes_[lane].work) {
            const Job &q = jobRef(item.job);
            if (q.deadline_us <= job.deadline_us)
                w += q.unit_weight * static_cast<double>(item.count);
        }
        return w;
    }
    return lanes_[lane].load_weight;
}

int
DynamicsServer::enqueueJob(Job job, int backend_id)
{
    // JobTag validation: a NaN deadline would poison every EDF
    // comparison — treat it as untagged. A deadline in the past stays
    // accepted (counted below as an immediate miss); shedding it
    // would turn a late answer into none.
    if (std::isnan(job.deadline_us))
        job.deadline_us = sched::kNoDeadline;
    const std::size_t count = job.count;
    const bool masks_ok =
        batchMasksValid(job.fn, job.const_requests, count);
    if (masks_ok) {
        job.unit_weight =
            batchUnitWeight(job.fn, job.const_requests, count);
        job.mask_sig = batchMaskSig(job.fn, job.const_requests, count);
    }
    // A serial-stage job commits ALL its stages to the chosen lane;
    // charge the full FD-equivalent debt so later placement
    // decisions see it.
    const double load =
        static_cast<double>(count * job.stages) * job.unit_weight;
    std::lock_guard<std::mutex> lock(mu_);
    assert(backendCount() > 0);
    assert(backend_id == kLeastLoaded ||
           (backend_id >= 0 && backend_id < backendCount()));
    if (!masks_ok)
        return recordTerminalJob(std::move(job), JobOutcome::Rejected);
    int lane = backend_id == kLeastLoaded ? leastLoadedLane() : backend_id;
    if (lane >= 0 && !lanes_[lane].healthy)
        lane = leastLoadedLane(); // explicit binding to a dead lane
    if (lane < 0)
        return recordTerminalJob(std::move(job), JobOutcome::Failed);
    const double now = perf::nowUs();
    if (admission_ && !admitLocked(job, lane, now))
        return recordTerminalJob(std::move(job), JobOutcome::Rejected);
    if (job.deadline_us != sched::kNoDeadline && job.deadline_us <= now)
        ++sched_stats_.immediate_misses;
    job.submit_at_us = now;
    // Admission-model completion estimate for the calibration gauges:
    // recorded per tagged job once the EWMA has its first sample, and
    // compared against the actual completion time in completePicked.
    if (metrics_ && job.deadline_us != sched::kNoDeadline &&
        task_us_ewma_ > 0.0)
        job.predicted_done_us =
            now + sched::predictedAdmissionUs(
                      competingWeightLocked(job, lane),
                      static_cast<int>(count), job.stages, task_us_ewma_,
                      0.0, job.unit_weight);
    jobs_.push_back(std::move(job));
    const int id =
        static_cast<int>(retire_base_ + jobs_.size()) - 1;
    ++pending_jobs_;
    lanes_[lane].load_weight += load;
    if (trace_) {
        const Job &j = jobs_.back();
        obs::TraceRing &ctl = trace_->control();
        ctl.record(obs::EventKind::Submit, now, id, -1, j.fn,
                   static_cast<std::uint32_t>(count), j.deadline_us);
        ctl.record(obs::EventKind::Admitted, now, id, -1, j.fn,
                   static_cast<std::uint32_t>(lane), j.predicted_done_us);
        ctl.record(obs::EventKind::Enqueued, now, id,
                   static_cast<std::int16_t>(lane), j.fn,
                   static_cast<std::uint32_t>(count),
                   lanes_[lane].load_weight);
    }
    if (metrics_)
        metrics_->add(obs::Counter::JobsSubmitted);
    pushWork(lane, WorkItem{id, 0, count});
    return id;
}

int
DynamicsServer::submit(FunctionType fn, const DynamicsRequest *requests,
                       std::size_t count, DynamicsResult *results,
                       int backend_id, sched::JobTag tag)
{
    Job job;
    job.fn = fn;
    job.const_requests = requests;
    job.results = results;
    job.count = count;
    job.remaining = 1;
    job.priority = tag.priority;
    job.deadline_us = tag.deadline_us;
    return enqueueJob(std::move(job), backend_id);
}

int
DynamicsServer::submitSerialStages(FunctionType fn,
                                   DynamicsRequest *requests,
                                   std::size_t points, int stages,
                                   AdvanceFn advance, void *ctx,
                                   DynamicsResult *results, int backend_id,
                                   sched::JobTag tag)
{
    assert(stages >= 1);
    Job job;
    job.fn = fn;
    job.requests = requests;
    job.const_requests = requests;
    job.results = results;
    job.count = points;
    job.stages = stages;
    job.advance = advance;
    job.ctx = ctx;
    job.remaining = 1;
    job.priority = tag.priority;
    job.deadline_us = tag.deadline_us;
    return enqueueJob(std::move(job), backend_id);
}

int
DynamicsServer::submitSharded(FunctionType fn,
                              const DynamicsRequest *requests,
                              std::size_t count, DynamicsResult *results,
                              sched::JobTag tag)
{
    assert(backendCount() > 0);
    if (backendCount() == 1 || count < 2)
        return submit(fn, requests, count, results, kLeastLoaded, tag);

    Job job;
    job.fn = fn;
    job.const_requests = requests;
    job.results = results;
    job.count = count;
    job.sharded = true;
    job.priority = tag.priority;
    job.deadline_us =
        std::isnan(tag.deadline_us) ? sched::kNoDeadline : tag.deadline_us;
    const bool masks_ok = batchMasksValid(fn, requests, count);
    if (masks_ok) {
        job.unit_weight = batchUnitWeight(fn, requests, count);
        job.mask_sig = batchMaskSig(fn, requests, count);
    }

    std::lock_guard<std::mutex> lock(mu_);
    if (!masks_ok)
        return recordTerminalJob(std::move(job), JobOutcome::Rejected);
    const int n_lanes = backendCount();
    const int n_healthy = healthyLaneCount();
    if (n_healthy == 0)
        return recordTerminalJob(std::move(job), JobOutcome::Failed);
    // One timestamp serves admission, the immediate-miss check, and
    // the observability hooks; untagged-unobserved submits skip the
    // clock read entirely (the pre-obs fast path).
    const bool want_now = admission_ != nullptr ||
                          job.deadline_us != sched::kNoDeadline ||
                          trace_ != nullptr || metrics_ != nullptr;
    const double now = want_now ? perf::nowUs() : 0.0;
    const std::size_t slice = (count + n_healthy - 1) / n_healthy;
    if (admission_) {
        // Admission sees the per-lane slice a healthy lane would run,
        // against the least-loaded healthy lane's queue.
        Job probe = job;
        probe.count = slice;
        const int lane = leastLoadedLane();
        if (!admitLocked(probe, lane, now))
            return recordTerminalJob(std::move(job), JobOutcome::Rejected);
    }
    if (job.deadline_us != sched::kNoDeadline && job.deadline_us <= now)
        ++sched_stats_.immediate_misses;
    job.submit_at_us = now;
    if (metrics_ && job.deadline_us != sched::kNoDeadline &&
        task_us_ewma_ > 0.0)
    {
        // Completion estimate of a sharded tagged job: its slice on
        // the healthy lane with the least competing weight (the
        // shards run concurrently; the least-contended lane bounds
        // the model's best case, matching the admission probe).
        Job probe = job;
        probe.count = slice;
        double min_w = std::numeric_limits<double>::infinity();
        for (int i = 0; i < n_lanes; ++i)
            if (lanes_[i].healthy)
                min_w = std::min(min_w,
                                 competingWeightLocked(probe, i));
        job.predicted_done_us =
            now + sched::predictedAdmissionUs(
                      min_w, static_cast<int>(slice), 1, task_us_ewma_,
                      0.0, job.unit_weight);
    }
    const double w = job.unit_weight;

    // Least-loaded water-filling in FD-equivalent units: raise every
    // lane's committed load toward one common level, spending exactly
    // `count` tasks of weight w — lighter lanes absorb more of the
    // batch, lanes already above the level get no shard. Levels are
    // computed in this-function task units (load / w), the continuous
    // level split back to integer tasks by largest remainder.
    if (order_scratch_.size() < static_cast<std::size_t>(n_lanes)) {
        order_scratch_.resize(n_lanes);
        share_scratch_.resize(n_lanes);
        eff_scratch_.resize(n_lanes);
        fshare_scratch_.resize(n_lanes);
    }
    std::vector<std::size_t> &order = order_scratch_;
    std::vector<std::size_t> &share = share_scratch_;
    std::vector<double> &eff = eff_scratch_;
    std::vector<double> &fshare = fshare_scratch_;
    // Water-fill over the HEALTHY lanes only; quarantined lanes get
    // no shard (share stays 0 and the push loop skips them).
    int n_fill = 0;
    for (int i = 0; i < n_lanes; ++i) {
        share[i] = 0;
        fshare[i] = 0.0;
        eff[i] = lanes_[i].load_weight / w;
        if (lanes_[i].healthy)
            order[n_fill++] = i;
    }
    std::sort(order.begin(), order.begin() + n_fill,
              [&](std::size_t a, std::size_t b) {
                  return eff[a] < eff[b];
              });
    // Find the water level L over the active (lightest) set: lifting
    // the k lightest lanes to L spends sum(L - eff) == count tasks.
    double prefix = 0.0;
    double level = 0.0;
    int active = n_fill;
    for (int k = 1; k <= n_fill; ++k) {
        prefix += eff[order[k - 1]];
        const double cand =
            (static_cast<double>(count) + prefix) / k;
        if (k == n_fill || cand <= eff[order[k]]) {
            level = cand;
            active = k;
            break;
        }
    }
    std::size_t assigned = 0;
    for (int j = 0; j < active; ++j) {
        const double f = std::max(0.0, level - eff[order[j]]);
        fshare[order[j]] = f;
        share[order[j]] = static_cast<std::size_t>(f);
        assigned += share[order[j]];
    }
    assert(assigned <= count);
    // Largest-remainder rounding; ties go to the lighter lane (the
    // earlier entry of the sorted order), matching the task-count
    // water-filling this replaces.
    for (std::size_t left = count - assigned; left > 0; --left) {
        int pick = -1;
        double best_frac = -1.0;
        for (int j = 0; j < active; ++j) {
            const std::size_t i = order[j];
            const double frac =
                fshare[i] - static_cast<double>(share[i]);
            if (frac > best_frac) {
                best_frac = frac;
                pick = static_cast<int>(i);
            }
        }
        ++share[pick];
        // Consumed its remainder: drop it behind untouched lanes.
        fshare[pick] = static_cast<double>(share[pick]) - 1.0;
    }

    int shards = 0;
    for (int i = 0; i < n_lanes; ++i)
        shards += share[i] > 0 ? 1 : 0;
    job.remaining = shards;

    jobs_.push_back(std::move(job));
    const int id =
        static_cast<int>(retire_base_ + jobs_.size()) - 1;
    ++pending_jobs_;
    if (trace_) {
        const Job &j = jobs_.back();
        obs::TraceRing &ctl = trace_->control();
        ctl.record(obs::EventKind::Submit, now, id, -1, j.fn,
                   static_cast<std::uint32_t>(count), j.deadline_us);
        ctl.record(obs::EventKind::Admitted, now, id, -1, j.fn,
                   static_cast<std::uint32_t>(shards),
                   j.predicted_done_us);
    }
    if (metrics_)
        metrics_->add(obs::Counter::JobsSubmitted);
    std::size_t begin = 0;
    for (int i = 0; i < n_lanes; ++i) {
        if (share[i] == 0)
            continue;
        lanes_[i].load_weight += static_cast<double>(share[i]) * w;
        if (trace_)
            trace_->control().record(
                obs::EventKind::Enqueued, now, id,
                static_cast<std::int16_t>(i), jobs_.back().fn,
                static_cast<std::uint32_t>(share[i]),
                lanes_[i].load_weight);
        pushWork(i, WorkItem{id, begin, share[i]});
        begin += share[i];
    }
    assert(begin == count);
    return id;
}

namespace {

/**
 * Copy only the fields @p fn writes from a merged-batch staging
 * entry to the caller's result slot. The staging entries are reused
 * across merged batches, so a whole-struct copy would overwrite
 * caller fields the backend never touched with stale data from
 * earlier batches — potentially another client's outputs. The solo
 * path hands the backend caller storage directly and has no such
 * hazard; this keeps the merged path's untouched-field semantics
 * identical to it.
 */
void
copyResultFields(FunctionType fn, const DynamicsResult &src,
                 DynamicsResult &dst)
{
    switch (fn) {
      case FunctionType::ID:
        dst.tau = src.tau;
        break;
      case FunctionType::FD:
        dst.qdd = src.qdd;
        break;
      case FunctionType::M:
        dst.m = src.m;
        break;
      case FunctionType::Minv:
        dst.minv = src.minv;
        break;
      case FunctionType::DeltaID:
        dst.tau = src.tau;
        dst.dtau_dq = src.dtau_dq;
        dst.dtau_dqd = src.dtau_dqd;
        break;
      case FunctionType::DeltaFD:
        dst.qdd = src.qdd;
        dst.minv = src.minv;
        dst.dqdd_dq = src.dqdd_dq;
        dst.dqdd_dqd = src.dqdd_dqd;
        break;
      case FunctionType::DeltaiFD:
        dst.qdd = src.qdd;
        dst.dqdd_dq = src.dqdd_dq;
        dst.dqdd_dqd = src.dqdd_dqd;
        break;
    }
}

bool
allFinite(const linalg::VectorX &v)
{
    for (std::size_t i = 0; i < v.size(); ++i)
        if (!std::isfinite(v[i]))
            return false;
    return true;
}

bool
allFinite(const linalg::MatrixX &m)
{
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            if (!std::isfinite(m(r, c)))
                return false;
    return true;
}

/**
 * NaN/inf guard over the fields @p fn writes (the same field sets
 * copyResultFields scatters) for all @p count results of a completed
 * batch. Paid only when SchedConfig::validate_results is on.
 */
bool
resultsFinite(FunctionType fn, const DynamicsResult *results,
              std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        const DynamicsResult &r = results[i];
        switch (fn) {
          case FunctionType::ID:
            if (!allFinite(r.tau))
                return false;
            break;
          case FunctionType::FD:
            if (!allFinite(r.qdd))
                return false;
            break;
          case FunctionType::M:
            if (!allFinite(r.m))
                return false;
            break;
          case FunctionType::Minv:
            if (!allFinite(r.minv))
                return false;
            break;
          case FunctionType::DeltaID:
            if (!allFinite(r.tau) || !allFinite(r.dtau_dq) ||
                !allFinite(r.dtau_dqd))
                return false;
            break;
          case FunctionType::DeltaFD:
          case FunctionType::DeltaiFD:
            if (!allFinite(r.qdd) || !allFinite(r.dqdd_dq) ||
                !allFinite(r.dqdd_dqd))
                return false;
            break;
        }
    }
    return true;
}

/**
 * Merge one shard's stats into the job's: shards overlap in backend
 * time, so the makespan-like fields take the max and the aggregate
 * throughput is the sum; stall counts accumulate.
 */
void
mergeShardStats(BatchStats &job, const BatchStats &shard)
{
    job.cycles = std::max(job.cycles, shard.cycles);
    job.total_us = std::max(job.total_us, shard.total_us);
    job.latency_us = std::max(job.latency_us, shard.latency_us);
    job.throughput_mtasks += shard.throughput_mtasks;
    job.fifo_high_water =
        std::max(job.fifo_high_water, shard.fifo_high_water);
    job.fifo_stalls += shard.fifo_stalls;
}

} // namespace

bool
DynamicsServer::serveOne(int lane_id)
{
    Lane &lane = lanes_[lane_id];
    DynamicsBackend *backend = nullptr;
    FunctionType fn{};
    const DynamicsRequest *requests = nullptr;
    DynamicsResult *results = nullptr;
    std::size_t total = 0;
    bool merged = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!lane.healthy)
            return false;
        if (!policy_->pick(view_, lane_id, lane.pick))
            return false;
        ++sched_stats_.picks;
        const int src = lane.pick.lane;
        Lane &victim = lanes_[src];
        // Pop the picked positions back-to-front so earlier indices
        // stay valid; lane.picked ends up in ascending queue order.
        lane.picked.clear();
        lane.picked_req.clear();
        lane.picked_res.clear();
        for (auto it = lane.pick.positions.rbegin();
             it != lane.pick.positions.rend(); ++it) {
            const WorkItem &w = victim.work[*it];
            if (jobRef(w.job).stages == 1)
                --victim.flat_queued;
            lane.picked.push_back(w);
            victim.work.erase(victim.work.begin() +
                              static_cast<std::ptrdiff_t>(*it));
        }
        std::reverse(lane.picked.begin(), lane.picked.end());
        for (const WorkItem &item : lane.picked) {
            const Job &job = jobRef(item.job);
            lane.picked_req.push_back(job.const_requests + item.begin);
            lane.picked_res.push_back(job.results + item.begin);
            total += item.count;
            if (src != lane_id) {
                // Stolen: the committed load migrates with the item,
                // and the thief's backend will run it.
                const double wgt = job.unit_weight * item.count;
                victim.load_weight -= wgt;
                lane.load_weight += wgt;
                ++sched_stats_.steals;
            }
        }
        backend = lane.backend;
        fn = jobRef(lane.picked.front().job).fn;
        merged = lane.picked.size() > 1;
        if (merged) {
            ++sched_stats_.coalesced_batches;
            sched_stats_.coalesced_items += lane.picked.size() - 1;
        }
        if (trace_ || metrics_) {
            const double t_pick = perf::nowUs();
            for (const WorkItem &item : lane.picked) {
                Job &job = jobRef(item.job);
                if (job.first_pick_at_us == 0.0)
                    job.first_pick_at_us = t_pick; // queue wait ends
            }
            if (trace_) {
                // This thread is the one serving lane_id, so its ring
                // (not the victim's) is the SPSC-safe destination —
                // including for steal events.
                obs::TraceRing &ring = trace_->lane(lane_id);
                const int primary = lane.picked.front().job;
                ring.record(obs::EventKind::Picked, t_pick, primary,
                            static_cast<std::int16_t>(lane_id), fn,
                            static_cast<std::uint32_t>(lane.picked.size()),
                            static_cast<double>(lane.pick.overtaken));
                if (src != lane_id)
                    ring.record(obs::EventKind::StolenFrom, t_pick,
                                primary,
                                static_cast<std::int16_t>(lane_id), fn,
                                static_cast<std::uint32_t>(src),
                                static_cast<double>(lane.picked.size()));
                for (std::size_t i = 1; i < lane.picked.size(); ++i)
                    ring.record(
                        obs::EventKind::CoalescedInto, t_pick,
                        lane.picked[i].job,
                        static_cast<std::int16_t>(lane_id), fn,
                        static_cast<std::uint32_t>(lane.picked[i].count));
            }
            if (metrics_) {
                if (src != lane_id)
                    metrics_->add(obs::Counter::StolenItems,
                                  lane.picked.size());
                if (merged)
                    metrics_->add(obs::Counter::CoalescedItems,
                                  lane.picked.size() - 1);
            }
        }
    }

    if (!merged) {
        requests = lane.picked_req.front();
        results = lane.picked_res.front();
    } else {
        // Gather the merged batch into lane staging (grow-only;
        // element assignment reuses capacity), one submission, then
        // scatter each job's slice back into its caller storage. The
        // caller-owned request/result arrays are stable while the
        // jobs are outstanding, so the copies run outside the lock.
        if (lane.co_req.size() < total) {
            lane.co_req.resize(total);
            lane.co_res.resize(total);
        }
        std::size_t off = 0;
        for (std::size_t i = 0; i < lane.picked.size(); ++i) {
            for (std::size_t j = 0; j < lane.picked[i].count; ++j)
                lane.co_req[off + j] = lane.picked_req[i][j];
            off += lane.picked[i].count;
        }
        requests = lane.co_req.data();
        results = lane.co_res.data();
    }

    // Bounded-retry execution: a TransientFailure (or a batch that
    // fails NaN validation) is resubmitted to the same backend up to
    // max_retries times; BackendDown or an exhausted budget
    // quarantines the lane and fails its work over.
    obs::TraceRing *ring = trace_ ? &trace_->lane(lane_id) : nullptr;
    const int primary = lane.picked.front().job;
    if (ring)
        ring->record(obs::EventKind::ExecBegin, perf::nowUs(), primary,
                     static_cast<std::int16_t>(lane_id), fn,
                     static_cast<std::uint32_t>(total));
    BatchStats stats;
    SubmitStatus status = SubmitStatus::Ok;
    std::size_t n_transient = 0, n_retries = 0, n_corrupt = 0;
    const int attempts = 1 + std::max(0, sched_cfg_.max_retries);
    for (int attempt = 0; attempt < attempts; ++attempt) {
        stats = BatchStats{};
        status = backend->submit(fn, requests, total, results, &stats);
        if (status == SubmitStatus::Ok && sched_cfg_.validate_results &&
            !resultsFinite(fn, results, total))
        {
            ++n_corrupt;
            status = SubmitStatus::TransientFailure;
        }
        if (status == SubmitStatus::Ok ||
            status == SubmitStatus::BackendDown ||
            status == SubmitStatus::InvalidRequest)
            break;
        ++n_transient;
        if (attempt + 1 < attempts) {
            ++n_retries;
            if (ring)
                ring->record(obs::EventKind::Retry, perf::nowUs(),
                             primary, static_cast<std::int16_t>(lane_id),
                             fn, static_cast<std::uint32_t>(attempt + 1));
        }
    }
    if (ring)
        ring->record(obs::EventKind::ExecEnd, perf::nowUs(), primary,
                     static_cast<std::int16_t>(lane_id), fn,
                     static_cast<std::uint32_t>(status), stats.total_us);
    if (n_transient || n_corrupt) {
        std::lock_guard<std::mutex> lock(mu_);
        sched_stats_.transient_faults += n_transient;
        sched_stats_.retries += n_retries;
        sched_stats_.corrupt_results += n_corrupt;
        if (metrics_) {
            metrics_->add(obs::Counter::TransientFaults, n_transient);
            metrics_->add(obs::Counter::Retries, n_retries);
        }
    }
    if (status == SubmitStatus::InvalidRequest) {
        // A malformed request (bad seed set) is a CLIENT error: the
        // lane is healthy, so no retry and no quarantine. Submit-time
        // validation catches these up front; this arm only fires when
        // an advance callback builds a bad mask mid-job. The picked
        // jobs fail explicitly — wait() returns, outcome says why.
        std::lock_guard<std::mutex> lock(mu_);
        bool any_done = false;
        for (const WorkItem &item : lane.picked) {
            Job &job = jobRef(item.job);
            lane.load_weight -= job.unit_weight * item.count;
            job.outcome = JobOutcome::Failed;
            if (--job.remaining == 0) {
                job.done = true;
                job.done_at_us = perf::nowUs();
                ++sched_stats_.failed_jobs;
                --pending_jobs_;
                any_done = true;
                if (trace_)
                    trace_->control().record(
                        obs::EventKind::Failed, job.done_at_us,
                        item.job, static_cast<std::int16_t>(lane_id),
                        job.fn,
                        static_cast<std::uint32_t>(job.outcome),
                        job.done_at_us - job.submit_at_us);
                if (metrics_)
                    metrics_->add(obs::Counter::JobsFailed);
            }
        }
        lane.picked.clear();
        lane.picked_req.clear();
        lane.picked_res.clear();
        if (any_done)
            done_cv_.notify_all();
        return true; // progress: the bad batch left the queue
    }
    if (status != SubmitStatus::Ok) {
        failLane(lane_id);
        return true; // progress was made: the lane's work moved on
    }

    if (merged) {
        std::size_t off = 0;
        for (std::size_t i = 0; i < lane.picked.size(); ++i) {
            for (std::size_t j = 0; j < lane.picked[i].count; ++j)
                copyResultFields(fn, lane.co_res[off + j],
                                 lane.picked_res[i][j]);
            off += lane.picked[i].count;
        }
    }
    completePicked(lane_id, stats, total);
    return true;
}

void
DynamicsServer::failLane(int lane_id)
{
    std::lock_guard<std::mutex> lock(mu_);
    Lane &lane = lanes_[lane_id];
    if (!lane.healthy)
        return;
    lane.healthy = false;
    ++sched_stats_.lane_deaths;
    // Only the lane's own serving thread reaches failLane, so its
    // ring is still this thread's to write — the death and every
    // requeue decision land on the dying lane's track.
    obs::TraceRing *ring = trace_ ? &trace_->lane(lane_id) : nullptr;
    const double t_death = (trace_ || metrics_) ? perf::nowUs() : 0.0;
    if (ring)
        ring->record(obs::EventKind::LaneDeath, t_death, -1,
                     static_cast<std::int16_t>(lane_id),
                     FunctionType::FD,
                     static_cast<std::uint32_t>(lane.picked.size() +
                                                lane.work.size()));
    if (metrics_)
        metrics_->add(obs::Counter::LaneDeaths);
    // Everything the lane owed — the picked items whose batch just
    // failed, then its queued items — fails over to healthy siblings.
    // Only the lane's own serving thread calls failLane (after its
    // submit returned), so by the time the LAST lane dies no batch
    // can be in flight anywhere: a job failed here is truly
    // unservable, not merely unlucky.
    bool any_failed = false;
    auto reroute = [&](const WorkItem &item) {
        Job &job = jobRef(item.job);
        if (job.done)
            return; // defensive: already terminal
        const int dest = leastLoadedLane();
        if (dest < 0) {
            job.done = true;
            job.outcome = JobOutcome::Failed;
            job.done_at_us = perf::nowUs();
            ++sched_stats_.failed_jobs;
            --pending_jobs_;
            any_failed = true;
            if (ring)
                ring->record(obs::EventKind::Failed, job.done_at_us,
                             item.job,
                             static_cast<std::int16_t>(lane_id), job.fn,
                             static_cast<std::uint32_t>(job.outcome),
                             job.done_at_us - job.submit_at_us);
            if (metrics_)
                metrics_->add(obs::Counter::JobsFailed);
            return;
        }
        if (ring)
            ring->record(obs::EventKind::Requeue, t_death, item.job,
                         static_cast<std::int16_t>(lane_id), job.fn,
                         static_cast<std::uint32_t>(dest),
                         static_cast<double>(item.count));
        // Flat items (including shards) migrate their queued weight;
        // a lane-sticky serial-stage job restarts its CURRENT stage
        // on the new lane — completed stages (and the advance calls
        // between them) are preserved — and moves its remaining
        // committed stage debt with it.
        const double w = job.unit_weight;
        const double debt =
            job.stages == 1
                ? w * static_cast<double>(item.count)
                : w * static_cast<double>(item.count) *
                      static_cast<double>(job.stages - job.stage);
        lanes_[dest].load_weight += debt;
        ++sched_stats_.requeued_items;
        pushWork(dest, item);
    };
    for (const WorkItem &item : lane.picked)
        reroute(item);
    lane.picked.clear();
    lane.picked_req.clear();
    lane.picked_res.clear();
    for (const WorkItem &item : lane.work)
        reroute(item);
    lane.work.clear();
    lane.flat_queued = 0;
    lane.load_weight = 0.0;
    if (any_failed)
        done_cv_.notify_all();
}

void
DynamicsServer::completePicked(int lane_id, const BatchStats &stats,
                               std::size_t total)
{
    Job *chained = nullptr;
    int chained_id = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        Lane &lane = lanes_[lane_id];
        lane.busy_us += stats.total_us;
        stats_.busy_us += stats.total_us;
        ++stats_.batches;
        stats_.tasks += total;
        // Calibrate the per-task cost admission predictions use: one
        // EWMA in FD-equivalent units across functions and lanes.
        if (stats.total_us > 0.0 && total > 0) {
            const double sample =
                stats.total_us /
                (static_cast<double>(total) *
                 jobRef(lane.picked.front().job).unit_weight);
            task_us_ewma_ = task_us_ewma_ == 0.0
                                ? sample
                                : 0.8 * task_us_ewma_ + 0.2 * sample;
            if (metrics_)
                metrics_->set(obs::Gauge::TaskUsEwma, task_us_ewma_);
        }
        const bool merged = lane.picked.size() > 1;

        for (const WorkItem &item : lane.picked) {
            Job &job = jobRef(item.job);
            lane.load_weight -= job.unit_weight * item.count;
            // A merged batch charges each job its task-proportional
            // share of the makespan-like fields; the rate/latency
            // fields describe the whole merged batch every job rode
            // in. A solo batch is attributed verbatim (the pre-QoS
            // accounting, bitwise-identical under default FIFO).
            BatchStats item_stats = stats;
            if (merged) {
                const double frac =
                    static_cast<double>(item.count) /
                    static_cast<double>(total);
                item_stats.cycles = static_cast<std::uint64_t>(
                    static_cast<double>(stats.cycles) * frac);
                item_stats.total_us = stats.total_us * frac;
            }
            if (job.sharded) {
                // Concurrent shards: the job's makespan is its
                // slowest shard, not the sum.
                job.busy_us = std::max(job.busy_us, item_stats.total_us);
                mergeShardStats(job.last_stats, item_stats);
            } else {
                job.busy_us += item_stats.total_us;
                job.last_stats = item_stats;
            }
            if (--job.remaining == 0) {
                ++job.stage;
                if (trace_ && job.stages > 1)
                    trace_->control().record(
                        obs::EventKind::StageDone, perf::nowUs(),
                        item.job, static_cast<std::int16_t>(lane_id),
                        job.fn, static_cast<std::uint32_t>(job.stage),
                        static_cast<double>(job.stages));
                if (job.stage < job.stages) {
                    // Chain the next stage outside the lock (the
                    // advance callback may re-enter submit()). Only
                    // this thread touches the job until its next item
                    // is queued, and jobs_ is a deque, so the pointer
                    // stays valid across concurrent submissions.
                    // Serial items are never merged or stolen, so a
                    // chained pick is always a solo item of this lane.
                    assert(!merged);
                    chained = &job;
                    chained_id = item.job;
                } else {
                    job.done = true;
                    job.done_at_us = perf::nowUs();
                    if (job.outcome != JobOutcome::Pending) {
                        // A sibling shard already failed this job
                        // (InvalidRequest arm): keep that outcome,
                        // book it as failed, skip deadline buckets.
                        ++sched_stats_.failed_jobs;
                        --pending_jobs_;
                        if (trace_)
                            trace_->control().record(
                                obs::EventKind::Failed, job.done_at_us,
                                item.job,
                                static_cast<std::int16_t>(lane_id),
                                job.fn,
                                static_cast<std::uint32_t>(job.outcome),
                                job.done_at_us - job.submit_at_us);
                        if (metrics_)
                            metrics_->add(obs::Counter::JobsFailed);
                        done_cv_.notify_all();
                        continue;
                    }
                    job.outcome = JobOutcome::Completed;
                    const bool tagged =
                        job.deadline_us != sched::kNoDeadline;
                    if (tagged) {
                        job.missed = job.done_at_us > job.deadline_us;
                        if (job.missed)
                            ++sched_stats_.deadline_misses;
                        else
                            ++sched_stats_.deadline_met;
                    }
                    if (trace_)
                        trace_->control().record(
                            obs::EventKind::Completed, job.done_at_us,
                            item.job, static_cast<std::int16_t>(lane_id),
                            job.fn, job.missed ? 1u : 0u,
                            job.done_at_us - job.submit_at_us);
                    if (metrics_) {
                        metrics_->add(obs::Counter::JobsCompleted);
                        if (tagged)
                            metrics_->add(job.missed
                                              ? obs::Counter::DeadlineMissed
                                              : obs::Counter::DeadlineMet);
                        if (job.first_pick_at_us > 0.0)
                            metrics_
                                ->histogram(job.fn, tagged,
                                            obs::LatKind::QueueWait)
                                .record(job.first_pick_at_us -
                                        job.submit_at_us);
                        metrics_
                            ->histogram(job.fn, tagged,
                                        obs::LatKind::Service)
                            .record(job.busy_us);
                        metrics_
                            ->histogram(job.fn, tagged,
                                        obs::LatKind::EndToEnd)
                            .record(job.done_at_us - job.submit_at_us);
                        if (job.predicted_done_us > 0.0) {
                            // Predicted-vs-actual admission error: the
                            // calibration signal of the admission
                            // model, relative to its own horizon.
                            const double err =
                                job.done_at_us - job.predicted_done_us;
                            const double horizon =
                                std::max(job.predicted_done_us -
                                             job.submit_at_us,
                                         1.0);
                            metrics_->set(
                                obs::Gauge::AdmissionLastErrUs, err);
                            metrics_->ewma(
                                obs::Gauge::AdmissionErrRelEwma,
                                std::abs(err) / horizon);
                            metrics_->add(
                                obs::Counter::AdmissionSamples);
                        }
                    }
                    ++stats_.jobs;
                    --pending_jobs_;
                    done_cv_.notify_all();
                }
            }
        }
        if (metrics_)
            metrics_->setLaneLoad(lane_id, lane.load_weight);
    }
    if (chained) {
        if (chained->advance)
            chained->advance(chained->ctx, chained->stage,
                             chained->results, chained->requests,
                             chained->count);
        std::lock_guard<std::mutex> lock(mu_);
        chained->remaining = 1;
        // Re-enqueue at the lane's tail: stages of this job stay
        // ordered, other clients' queued work interleaves between
        // the stage boundaries.
        pushWork(lane_id, WorkItem{chained_id, 0, chained->count});
    }
}

double
DynamicsServer::snapshotAndReset(ServerStats *stats,
                                 sched::SchedStats *sstats)
{
    for (const Lane &lane : lanes_)
        stats_.makespan_us = std::max(stats_.makespan_us, lane.busy_us);
    const double busy = stats_.busy_us;
    if (stats)
        *stats = stats_;
    if (sstats)
        *sstats = sched_stats_;
    stats_ = ServerStats{};
    sched_stats_ = sched::SchedStats{};
    for (Lane &lane : lanes_)
        lane.busy_us = 0.0;
    // Retire the records of jobs that were already complete at the
    // PREVIOUS drain: their accounting had a full interval to be
    // read, and dropping them keeps a long-running server's job
    // history bounded. Jobs submitted since (done or not) survive
    // until the next drain.
    while (retire_base_ < retire_mark_ && !jobs_.empty() &&
           jobs_.front().done) {
        jobs_.pop_front();
        ++retire_base_;
    }
    retire_mark_ = retire_base_ + jobs_.size();
    return busy;
}

void
DynamicsServer::serveAllSync()
{
    // Serve lane by lane on the calling thread until no lane holds
    // work — including work enqueued while serving (reentrant
    // submits, chained serial stages). The gate makes the whole
    // loop exclusive: a second synchronous client blocks here and,
    // once admitted, finds its work already served.
    std::lock_guard<std::mutex> serving(serve_mu_);
    for (bool any = true; any;) {
        any = false;
        for (int l = 0; l < static_cast<int>(lanes_.size()); ++l) {
            while (serveOne(l))
                any = true;
        }
    }
}

double
DynamicsServer::drain(ServerStats *stats, sched::SchedStats *sstats)
{
    if (running()) {
        waitAll();
        std::lock_guard<std::mutex> lock(mu_);
        return snapshotAndReset(stats, sstats);
    }
    serveAllSync();
    std::lock_guard<std::mutex> lock(mu_);
    return snapshotAndReset(stats, sstats);
}

sched::SchedStats
DynamicsServer::schedStats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sched_stats_;
}

double
DynamicsServer::laneLoadWeight(int lane) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return lanes_[lane].load_weight;
}

std::size_t
DynamicsServer::pending() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return pending_jobs_;
}

// The per-job accessors below are total functions of the id: a
// retired record (reads have until the second drain() after
// completion) or an id no submit call ever returned reads as a
// completed job with zeroed accounting — never UB, never a hang.

bool
DynamicsServer::jobDone(int job) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!issuedLocked(job))
        return true;
    return jobRef(job).done;
}

double
DynamicsServer::jobUs(int job) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!issuedLocked(job))
        return 0.0; // retired or never issued: zeroed, not UB
    return jobRef(job).busy_us;
}

BatchStats
DynamicsServer::jobStats(int job) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!issuedLocked(job))
        return BatchStats{};
    return jobRef(job).last_stats;
}

double
DynamicsServer::jobDoneAtUs(int job) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!issuedLocked(job))
        return 0.0;
    return jobRef(job).done_at_us;
}

bool
DynamicsServer::jobMissedDeadline(int job) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!issuedLocked(job))
        return false;
    return jobRef(job).missed;
}

JobOutcome
DynamicsServer::jobOutcome(int job) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!issuedLocked(job))
        return JobOutcome::Completed;
    return jobRef(job).outcome;
}

bool
DynamicsServer::laneHealthy(int lane) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (lane < 0 || lane >= static_cast<int>(lanes_.size()))
        return false;
    return lanes_[lane].healthy;
}

std::size_t
DynamicsServer::laneQueueDepth(int lane) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (lane < 0 || lane >= static_cast<int>(lanes_.size()))
        return 0;
    return lanes_[lane].work.size();
}

bool
DynamicsServer::metricsSnapshot(obs::MetricsRegistry &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!metrics_)
        return false;
    out = *metrics_;
    return true;
}

} // namespace dadu::runtime
