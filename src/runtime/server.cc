#include "runtime/server.h"

#include <cassert>

namespace dadu::runtime {

DynamicsServer::DynamicsServer(DynamicsBackend &backend)
{
    addBackend(backend);
}

int
DynamicsServer::addBackend(DynamicsBackend &backend)
{
    backends_.push_back(&backend);
    return static_cast<int>(backends_.size()) - 1;
}

int
DynamicsServer::submit(FunctionType fn, const DynamicsRequest *requests,
                       std::size_t count, DynamicsResult *results,
                       int backend_id)
{
    assert(backend_id >= 0 && backend_id < backendCount());
    Job job;
    job.fn = fn;
    job.const_requests = requests;
    job.results = results;
    job.count = count;
    job.backend = backend_id;
    queue_.push_back(job);
    return static_cast<int>(queue_.size()) - 1;
}

int
DynamicsServer::submitSerialStages(FunctionType fn,
                                   DynamicsRequest *requests,
                                   std::size_t points, int stages,
                                   AdvanceFn advance, void *ctx,
                                   DynamicsResult *results, int backend_id)
{
    assert(backend_id >= 0 && backend_id < backendCount());
    assert(stages >= 1);
    Job job;
    job.fn = fn;
    job.requests = requests;
    job.const_requests = requests;
    job.results = results;
    job.count = points;
    job.stages = stages;
    job.advance = advance;
    job.ctx = ctx;
    job.backend = backend_id;
    queue_.push_back(job);
    return static_cast<int>(queue_.size()) - 1;
}

double
DynamicsServer::drain(ServerStats *stats)
{
    double busy_us = 0.0;
    ServerStats local;
    for (; next_ < queue_.size(); ++next_) {
        Job &job = queue_[next_];
        DynamicsBackend &backend = *backends_[job.backend];
        // Fig. 13 interleaving: one full-width batch per stage, so
        // the pipeline drains once per stage boundary and streams
        // back-to-back within a stage. A flat batch is the
        // degenerate single-stage case.
        for (int stage = 0; stage < job.stages; ++stage) {
            if (stage > 0 && job.advance)
                job.advance(job.ctx, stage, job.results, job.requests,
                            job.count);
            backend.submit(job.fn, job.const_requests, job.count,
                           job.results, &job.last_stats);
            job.busy_us += job.last_stats.total_us;
            ++local.batches;
            local.tasks += job.count;
        }
        job.done = true;
        busy_us += job.busy_us;
        ++local.jobs;
    }
    local.busy_us = busy_us;
    if (stats)
        *stats = local;
    return busy_us;
}

} // namespace dadu::runtime
