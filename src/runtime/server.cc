#include "runtime/server.h"

#include <algorithm>
#include <cassert>

namespace dadu::runtime {

DynamicsServer::DynamicsServer(DynamicsBackend &backend)
{
    addBackend(backend);
}

DynamicsServer::~DynamicsServer()
{
    stop();
}

int
DynamicsServer::addBackend(DynamicsBackend &backend)
{
    assert(!running() && "register backends before start()");
    lanes_.emplace_back();
    lanes_.back().backend = &backend;
    return static_cast<int>(lanes_.size()) - 1;
}

int
DynamicsServer::leastLoadedLane()
{
    // Round-robin tie-breaking: equal loads are the common case
    // right after a sharded batch equalized the lanes, and a fixed
    // preference would then funnel every serial-stage job onto lane
    // 0. Start each scan one past the previous winner.
    const int n = static_cast<int>(lanes_.size());
    int best = rr_next_ % n;
    for (int k = 1; k < n; ++k) {
        const int i = (rr_next_ + k) % n;
        if (lanes_[i].load_tasks < lanes_[best].load_tasks)
            best = i;
    }
    rr_next_ = (best + 1) % n;
    return best;
}

void
DynamicsServer::pushWork(int lane, WorkItem item)
{
    lanes_[lane].work.push_back(item);
    lanes_[lane].cv.notify_one(); // only this lane's worker cares
}

int
DynamicsServer::enqueueJob(Job job, int backend_id)
{
    const std::size_t count = job.count;
    // A serial-stage job commits ALL its stages to the chosen lane;
    // charge the full debt so later placement decisions see it.
    const std::size_t load = count * job.stages;
    std::lock_guard<std::mutex> lock(mu_);
    assert(backendCount() > 0);
    assert(backend_id == kLeastLoaded ||
           (backend_id >= 0 && backend_id < backendCount()));
    const int lane =
        backend_id == kLeastLoaded ? leastLoadedLane() : backend_id;
    jobs_.push_back(std::move(job));
    const int id =
        static_cast<int>(retire_base_ + jobs_.size()) - 1;
    ++pending_jobs_;
    lanes_[lane].load_tasks += load;
    pushWork(lane, WorkItem{id, 0, count});
    return id;
}

int
DynamicsServer::submit(FunctionType fn, const DynamicsRequest *requests,
                       std::size_t count, DynamicsResult *results,
                       int backend_id)
{
    Job job;
    job.fn = fn;
    job.const_requests = requests;
    job.results = results;
    job.count = count;
    job.remaining = 1;
    return enqueueJob(std::move(job), backend_id);
}

int
DynamicsServer::submitSerialStages(FunctionType fn,
                                   DynamicsRequest *requests,
                                   std::size_t points, int stages,
                                   AdvanceFn advance, void *ctx,
                                   DynamicsResult *results, int backend_id)
{
    assert(stages >= 1);
    Job job;
    job.fn = fn;
    job.requests = requests;
    job.const_requests = requests;
    job.results = results;
    job.count = points;
    job.stages = stages;
    job.advance = advance;
    job.ctx = ctx;
    job.remaining = 1;
    return enqueueJob(std::move(job), backend_id);
}

int
DynamicsServer::submitSharded(FunctionType fn,
                              const DynamicsRequest *requests,
                              std::size_t count, DynamicsResult *results)
{
    assert(backendCount() > 0);
    if (backendCount() == 1 || count < 2)
        return submit(fn, requests, count, results, kLeastLoaded);

    Job job;
    job.fn = fn;
    job.const_requests = requests;
    job.results = results;
    job.count = count;
    job.sharded = true;

    std::lock_guard<std::mutex> lock(mu_);
    const int n_lanes = backendCount();

    // Least-loaded water-filling: raise every lane's outstanding
    // task count toward one common level, spending exactly `count`
    // tasks — lighter lanes absorb more of the batch. Lanes already
    // above the level get no shard.
    if (order_scratch_.size() < static_cast<std::size_t>(n_lanes)) {
        order_scratch_.resize(n_lanes);
        share_scratch_.resize(n_lanes);
    }
    std::vector<std::size_t> &order = order_scratch_;
    std::vector<std::size_t> &share = share_scratch_;
    for (int i = 0; i < n_lanes; ++i) {
        order[i] = i;
        share[i] = 0;
    }
    std::sort(order.begin(), order.begin() + n_lanes,
              [&](std::size_t a, std::size_t b) {
                  return lanes_[a].load_tasks < lanes_[b].load_tasks;
              });
    std::size_t remaining = count;
    for (int i = 0; i < n_lanes && remaining > 0; ++i) {
        // Lanes order[0..i] are the active (lowest) set; lift them to
        // the next lane's level, or split what is left evenly.
        const std::size_t active = i + 1;
        std::size_t lift = remaining;
        if (i + 1 < n_lanes) {
            lift = 0;
            for (std::size_t j = 0; j < active; ++j)
                lift += lanes_[order[i + 1]].load_tasks -
                        (lanes_[order[j]].load_tasks + share[order[j]]);
            lift = std::min(lift, remaining);
        }
        if (i + 1 < n_lanes && lift < remaining) {
            // Fully raise the active set to the next level.
            for (std::size_t j = 0; j < active; ++j)
                share[order[j]] +=
                    lanes_[order[i + 1]].load_tasks -
                    (lanes_[order[j]].load_tasks + share[order[j]]);
            remaining -= lift;
            continue;
        }
        // Final level lands inside the active set: split evenly,
        // earlier (lighter) lanes absorbing the remainder.
        const std::size_t base = remaining / active;
        std::size_t extra = remaining % active;
        for (std::size_t j = 0; j < active; ++j) {
            share[order[j]] += base + (extra > 0 ? 1 : 0);
            if (extra > 0)
                --extra;
        }
        remaining = 0;
    }

    int shards = 0;
    for (int i = 0; i < n_lanes; ++i)
        shards += share[i] > 0 ? 1 : 0;
    job.remaining = shards;

    jobs_.push_back(std::move(job));
    const int id =
        static_cast<int>(retire_base_ + jobs_.size()) - 1;
    ++pending_jobs_;
    std::size_t begin = 0;
    for (int i = 0; i < n_lanes; ++i) {
        if (share[i] == 0)
            continue;
        lanes_[i].load_tasks += share[i];
        pushWork(i, WorkItem{id, begin, share[i]});
        begin += share[i];
    }
    assert(begin == count);
    return id;
}

namespace {

/**
 * Merge one shard's stats into the job's: shards overlap in backend
 * time, so the makespan-like fields take the max and the aggregate
 * throughput is the sum; stall counts accumulate.
 */
void
mergeShardStats(BatchStats &job, const BatchStats &shard)
{
    job.cycles = std::max(job.cycles, shard.cycles);
    job.total_us = std::max(job.total_us, shard.total_us);
    job.latency_us = std::max(job.latency_us, shard.latency_us);
    job.throughput_mtasks += shard.throughput_mtasks;
    job.fifo_high_water =
        std::max(job.fifo_high_water, shard.fifo_high_water);
    job.fifo_stalls += shard.fifo_stalls;
}

} // namespace

bool
DynamicsServer::serveOne(int lane_id)
{
    WorkItem item;
    DynamicsBackend *backend;
    FunctionType fn;
    const DynamicsRequest *requests;
    DynamicsResult *results;
    {
        std::lock_guard<std::mutex> lock(mu_);
        Lane &lane = lanes_[lane_id];
        if (lane.work.empty())
            return false;
        item = lane.work.front();
        lane.work.pop_front();
        const Job &job = jobRef(item.job);
        backend = lane.backend;
        fn = job.fn;
        requests = job.const_requests + item.begin;
        results = job.results + item.begin;
    }
    BatchStats stats;
    backend->submit(fn, requests, item.count, results, &stats);
    completeItem(lane_id, item, stats);
    return true;
}

void
DynamicsServer::completeItem(int lane_id, const WorkItem &item,
                             const BatchStats &stats)
{
    Job *chained = nullptr;
    {
        std::lock_guard<std::mutex> lock(mu_);
        Lane &lane = lanes_[lane_id];
        lane.busy_us += stats.total_us;
        lane.load_tasks -= item.count;
        stats_.busy_us += stats.total_us;
        ++stats_.batches;
        stats_.tasks += item.count;

        Job &job = jobRef(item.job);
        if (job.sharded) {
            // Concurrent shards: the job's makespan is its slowest
            // shard, not the sum.
            job.busy_us = std::max(job.busy_us, stats.total_us);
            mergeShardStats(job.last_stats, stats);
        } else {
            job.busy_us += stats.total_us;
            job.last_stats = stats;
        }
        if (--job.remaining == 0) {
            ++job.stage;
            if (job.stage < job.stages) {
                // Chain the next stage outside the lock (the advance
                // callback may re-enter submit()). Only this thread
                // touches the job until its next item is queued, and
                // jobs_ is a deque, so the pointer stays valid across
                // concurrent submissions.
                chained = &job;
            } else {
                job.done = true;
                ++stats_.jobs;
                --pending_jobs_;
                done_cv_.notify_all();
            }
        }
    }
    if (chained) {
        if (chained->advance)
            chained->advance(chained->ctx, chained->stage,
                             chained->results, chained->requests,
                             chained->count);
        std::lock_guard<std::mutex> lock(mu_);
        chained->remaining = 1;
        // Re-enqueue at the lane's tail: stages of this job stay
        // ordered, other clients' queued work interleaves between
        // the stage boundaries.
        pushWork(lane_id, WorkItem{item.job, 0, chained->count});
    }
}

double
DynamicsServer::snapshotAndReset(ServerStats *stats)
{
    for (const Lane &lane : lanes_)
        stats_.makespan_us = std::max(stats_.makespan_us, lane.busy_us);
    const double busy = stats_.busy_us;
    if (stats)
        *stats = stats_;
    stats_ = ServerStats{};
    for (Lane &lane : lanes_)
        lane.busy_us = 0.0;
    // Retire the records of jobs that were already complete at the
    // PREVIOUS drain: their accounting had a full interval to be
    // read, and dropping them keeps a long-running server's job
    // history bounded. Jobs submitted since (done or not) survive
    // until the next drain.
    while (retire_base_ < retire_mark_ && !jobs_.empty() &&
           jobs_.front().done) {
        jobs_.pop_front();
        ++retire_base_;
    }
    retire_mark_ = retire_base_ + jobs_.size();
    return busy;
}

void
DynamicsServer::serveAllSync()
{
    // Serve lane by lane on the calling thread until no lane holds
    // work — including work enqueued while serving (reentrant
    // submits, chained serial stages). The gate makes the whole
    // loop exclusive: a second synchronous client blocks here and,
    // once admitted, finds its work already served.
    std::lock_guard<std::mutex> serving(serve_mu_);
    for (bool any = true; any;) {
        any = false;
        for (int l = 0; l < static_cast<int>(lanes_.size()); ++l) {
            while (serveOne(l))
                any = true;
        }
    }
}

double
DynamicsServer::drain(ServerStats *stats)
{
    if (running()) {
        waitAll();
        std::lock_guard<std::mutex> lock(mu_);
        return snapshotAndReset(stats);
    }
    serveAllSync();
    std::lock_guard<std::mutex> lock(mu_);
    return snapshotAndReset(stats);
}

std::size_t
DynamicsServer::pending() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return pending_jobs_;
}

bool
DynamicsServer::jobDone(int job) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (static_cast<std::size_t>(job) < retire_base_)
        return true; // only completed jobs retire
    return jobRef(job).done;
}

double
DynamicsServer::jobUs(int job) const
{
    std::lock_guard<std::mutex> lock(mu_);
    assert(static_cast<std::size_t>(job) >= retire_base_ &&
           "job record already retired (read before the second "
           "drain() after completion)");
    if (static_cast<std::size_t>(job) < retire_base_)
        return 0.0; // retired: accounting gone, not UB
    return jobRef(job).busy_us;
}

BatchStats
DynamicsServer::jobStats(int job) const
{
    std::lock_guard<std::mutex> lock(mu_);
    assert(static_cast<std::size_t>(job) >= retire_base_ &&
           "job record already retired (read before the second "
           "drain() after completion)");
    if (static_cast<std::size_t>(job) < retire_base_)
        return BatchStats{};
    return jobRef(job).last_stats;
}

} // namespace dadu::runtime
