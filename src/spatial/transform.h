/**
 * @file
 * Plücker spatial transforms.
 *
 * A SpatialTransform stores the sparse factored form of the 6x6
 * Plücker matrix
 *
 *     X = [ E      0 ]
 *         [ -E r̂   E ]
 *
 * (Featherstone's rot(E)·xlt(r)): E is the 3x3 rotation taking
 * parent-frame coordinates to child-frame coordinates and r is the
 * child origin expressed in the parent frame. Section II of the paper
 * points out exactly this sparsity ("its top right 3x3 elements are
 * always 0"); the accelerator's submodules exploit it, and so do
 * these routines.
 */

#ifndef DADU_SPATIAL_TRANSFORM_H
#define DADU_SPATIAL_TRANSFORM_H

#include "linalg/mat.h"
#include "linalg/vec.h"

namespace dadu::spatial {

using linalg::Mat3;
using linalg::Mat66;
using linalg::Vec3;
using linalg::Vec6;

/** Plücker coordinate transform between adjacent link frames. */
class SpatialTransform
{
  public:
    /** Identity transform. */
    SpatialTransform() : e_(Mat3::identity()), r_(Vec3::zero()) {}

    /**
     * @param e rotation (parent coords -> child coords).
     * @param r child origin expressed in parent coordinates.
     */
    SpatialTransform(const Mat3 &e, const Vec3 &r) : e_(e), r_(r) {}

    static SpatialTransform identity() { return SpatialTransform(); }

    /** Pure rotation. */
    static SpatialTransform
    rotation(const Mat3 &e)
    {
        return SpatialTransform(e, Vec3::zero());
    }

    /** Pure translation by @p r (child origin in parent coords). */
    static SpatialTransform
    translation(const Vec3 &r)
    {
        return SpatialTransform(Mat3::identity(), r);
    }

    const Mat3 &rotationPart() const { return e_; }
    const Vec3 &translationPart() const { return r_; }

    /**
     * Apply to a motion vector: v_child = X v_parent.
     * Costs two rotations and one cross product (the sparsity the
     * accelerator submodules exploit).
     */
    Vec6
    applyMotion(const Vec6 &v) const
    {
        const Vec3 omega = linalg::topHalf(v);
        const Vec3 vlin = linalg::bottomHalf(v);
        return linalg::join(e_ * omega,
                            e_ * (vlin - linalg::cross(r_, omega)));
    }

    /**
     * Apply the inverse to a motion vector: v_parent = X^-1 v_child.
     */
    Vec6
    applyInverseMotion(const Vec6 &v) const
    {
        const Vec3 omega = e_.transpose() * linalg::topHalf(v);
        const Vec3 vlin = e_.transpose() * linalg::bottomHalf(v);
        return linalg::join(omega, vlin + linalg::cross(r_, omega));
    }

    /**
     * Apply the force transform: f_child = X* f_parent with
     * X* = [E, -E r̂; 0, E].
     */
    Vec6
    applyForce(const Vec6 &f) const
    {
        const Vec3 n = linalg::topHalf(f);
        const Vec3 flin = linalg::bottomHalf(f);
        return linalg::join(e_ * (n - linalg::cross(r_, flin)), e_ * flin);
    }

    /**
     * Apply X^T to a force vector: f_parent = X^T f_child.
     *
     * This is the paper's λX*_i operator (power-conservation identity
     * f_λ = (iX_λ)^T f_i), used on every backward transfer of the
     * RNEA/∆RNEA/MMinvGen round-trip pipelines.
     */
    Vec6
    applyTransposeForce(const Vec6 &f) const
    {
        const Vec3 n = e_.transpose() * linalg::topHalf(f);
        const Vec3 flin = e_.transpose() * linalg::bottomHalf(f);
        return linalg::join(n + linalg::cross(r_, flin), flin);
    }

    /**
     * Composition: (*this) ∘ other, i.e. apply @p other first.
     * If *this is ^CX_B and other is ^BX_A, the result is ^CX_A.
     */
    SpatialTransform
    operator*(const SpatialTransform &other) const
    {
        return SpatialTransform(
            e_ * other.e_,
            other.r_ + other.e_.transpose() * r_);
    }

    /** Inverse transform. */
    SpatialTransform
    inverse() const
    {
        return SpatialTransform(e_.transpose(), -(e_ * r_));
    }

    /** Expand to the dense 6x6 Plücker motion matrix. */
    Mat66
    toMatrix() const
    {
        const Mat3 erx = e_ * linalg::skew(r_);
        return linalg::blocks66(e_, Mat3::zero(), -erx, e_);
    }

    /** Expand to the dense 6x6 force transform X* = X^-T. */
    Mat66
    toForceMatrix() const
    {
        const Mat3 erx = e_ * linalg::skew(r_);
        return linalg::blocks66(e_, -erx, Mat3::zero(), e_);
    }

  private:
    Mat3 e_;
    Vec3 r_;
};

} // namespace dadu::spatial

#endif // DADU_SPATIAL_TRANSFORM_H
