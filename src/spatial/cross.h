/**
 * @file
 * Spatial (6D) cross-product operators.
 *
 * crm(v) w  — motion cross product v ×ₘ w  (Featherstone's v ×).
 * crf(v) f  — force cross product  v ×* f  (Featherstone's v ×*).
 *
 * The identity crf(v) = -crm(v)^T holds, and the motion cross product
 * is antisymmetric in its arguments: v ×ₘ w = -(w ×ₘ v). Both facts
 * are exploited by the paper's ∆RNEA dataflow (the backward transfer
 * of Fig. 7 sends λX*(∂f + S ×* f)).
 */

#ifndef DADU_SPATIAL_CROSS_H
#define DADU_SPATIAL_CROSS_H

#include "linalg/mat.h"
#include "linalg/vec.h"

namespace dadu::spatial {

using linalg::Mat66;
using linalg::Vec3;
using linalg::Vec6;

/** Motion cross product v ×ₘ w of two spatial motion vectors. */
constexpr Vec6
crossMotion(const Vec6 &v, const Vec6 &w)
{
    const Vec3 omega = linalg::topHalf(v);
    const Vec3 vlin = linalg::bottomHalf(v);
    const Vec3 womega = linalg::topHalf(w);
    const Vec3 wlin = linalg::bottomHalf(w);
    return linalg::join(linalg::cross(omega, womega),
                        linalg::cross(omega, wlin) +
                            linalg::cross(vlin, womega));
}

/** Force cross product v ×* f of a motion vector and a force vector. */
constexpr Vec6
crossForce(const Vec6 &v, const Vec6 &f)
{
    const Vec3 omega = linalg::topHalf(v);
    const Vec3 vlin = linalg::bottomHalf(v);
    const Vec3 n = linalg::topHalf(f);
    const Vec3 flin = linalg::bottomHalf(f);
    return linalg::join(linalg::cross(omega, n) + linalg::cross(vlin, flin),
                        linalg::cross(omega, flin));
}

/** Matrix form of the motion cross product: crm(v) w == v ×ₘ w. */
constexpr Mat66
crmMatrix(const Vec6 &v)
{
    const linalg::Mat3 wx = linalg::skew(linalg::topHalf(v));
    const linalg::Mat3 vx = linalg::skew(linalg::bottomHalf(v));
    return linalg::blocks66(wx, linalg::Mat3::zero(), vx, wx);
}

/** Matrix form of the force cross product: crf(v) f == v ×* f. */
constexpr Mat66
crfMatrix(const Vec6 &v)
{
    const linalg::Mat3 wx = linalg::skew(linalg::topHalf(v));
    const linalg::Mat3 vx = linalg::skew(linalg::bottomHalf(v));
    return linalg::blocks66(wx, vx, linalg::Mat3::zero(), wx);
}

} // namespace dadu::spatial

#endif // DADU_SPATIAL_CROSS_H
