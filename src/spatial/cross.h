/**
 * @file
 * Spatial (6D) cross-product operators.
 *
 * crm(v) w  — motion cross product v ×ₘ w  (Featherstone's v ×).
 * crf(v) f  — force cross product  v ×* f  (Featherstone's v ×*).
 *
 * The identity crf(v) = -crm(v)^T holds, and the motion cross product
 * is antisymmetric in its arguments: v ×ₘ w = -(w ×ₘ v). Both facts
 * are exploited by the paper's ∆RNEA dataflow (the backward transfer
 * of Fig. 7 sends λX*(∂f + S ×* f)).
 */

#ifndef DADU_SPATIAL_CROSS_H
#define DADU_SPATIAL_CROSS_H

#include "linalg/mat.h"
#include "linalg/vec.h"

namespace dadu::spatial {

using linalg::Mat66;
using linalg::Vec3;
using linalg::Vec6;

/** Motion cross product v ×ₘ w of two spatial motion vectors. */
constexpr Vec6
crossMotion(const Vec6 &v, const Vec6 &w)
{
    const Vec3 omega = linalg::topHalf(v);
    const Vec3 vlin = linalg::bottomHalf(v);
    const Vec3 womega = linalg::topHalf(w);
    const Vec3 wlin = linalg::bottomHalf(w);
    return linalg::join(linalg::cross(omega, womega),
                        linalg::cross(omega, wlin) +
                            linalg::cross(vlin, womega));
}

/** Force cross product v ×* f of a motion vector and a force vector. */
constexpr Vec6
crossForce(const Vec6 &v, const Vec6 &f)
{
    const Vec3 omega = linalg::topHalf(v);
    const Vec3 vlin = linalg::bottomHalf(v);
    const Vec3 n = linalg::topHalf(f);
    const Vec3 flin = linalg::bottomHalf(f);
    return linalg::join(linalg::cross(omega, n) + linalg::cross(vlin, flin),
                        linalg::cross(omega, flin));
}

/**
 * v ×ₘ (s · e_axis) for a one-hot motion axis (axis ∈ [0, 6)) — the
 * constant-folded form of Section IV-A1: a joint's S columns and
 * S q̇ are one-hot(-scaled) for every supported joint type, so the
 * full 6D cross collapses to four (angular axis) or two (linear
 * axis) multiplies. Numerically identical to
 * crossMotion(v, s * Vec6::unit(axis)).
 */
constexpr Vec6
crossMotionUnitScaled(const Vec6 &v, int axis, double s)
{
    switch (axis) {
      case 0: // ω_w = s e_x
        return Vec6{0.0, s * v[2], -(s * v[1]),
                    0.0, s * v[5], -(s * v[4])};
      case 1: // ω_w = s e_y
        return Vec6{-(s * v[2]), 0.0, s * v[0],
                    -(s * v[5]), 0.0, s * v[3]};
      case 2: // ω_w = s e_z
        return Vec6{s * v[1], -(s * v[0]), 0.0,
                    s * v[4], -(s * v[3]), 0.0};
      case 3: // v_w = s e_x
        return Vec6{0.0, 0.0, 0.0, 0.0, s * v[2], -(s * v[1])};
      case 4: // v_w = s e_y
        return Vec6{0.0, 0.0, 0.0, -(s * v[2]), 0.0, s * v[0]};
      default: // v_w = s e_z
        return Vec6{0.0, 0.0, 0.0, s * v[1], -(s * v[0]), 0.0};
    }
}

/** v ×ₘ e_axis for a unit motion axis (unscaled form). */
constexpr Vec6
crossMotionUnit(const Vec6 &v, int axis)
{
    switch (axis) {
      case 0:
        return Vec6{0.0, v[2], -v[1], 0.0, v[5], -v[4]};
      case 1:
        return Vec6{-v[2], 0.0, v[0], -v[5], 0.0, v[3]};
      case 2:
        return Vec6{v[1], -v[0], 0.0, v[4], -v[3], 0.0};
      case 3:
        return Vec6{0.0, 0.0, 0.0, 0.0, v[2], -v[1]};
      case 4:
        return Vec6{0.0, 0.0, 0.0, -v[2], 0.0, v[0]};
      default:
        return Vec6{0.0, 0.0, 0.0, v[1], -v[0], 0.0};
    }
}

/** Matrix form of the motion cross product: crm(v) w == v ×ₘ w. */
constexpr Mat66
crmMatrix(const Vec6 &v)
{
    const linalg::Mat3 wx = linalg::skew(linalg::topHalf(v));
    const linalg::Mat3 vx = linalg::skew(linalg::bottomHalf(v));
    return linalg::blocks66(wx, linalg::Mat3::zero(), vx, wx);
}

/** Matrix form of the force cross product: crf(v) f == v ×* f. */
constexpr Mat66
crfMatrix(const Vec6 &v)
{
    const linalg::Mat3 wx = linalg::skew(linalg::topHalf(v));
    const linalg::Mat3 vx = linalg::skew(linalg::bottomHalf(v));
    return linalg::blocks66(wx, vx, linalg::Mat3::zero(), wx);
}

} // namespace dadu::spatial

#endif // DADU_SPATIAL_CROSS_H
