/**
 * @file
 * Rigid-body and articulated-body spatial inertias.
 *
 * A rigid-body inertia is parameterized by (m, h, Ī): mass, first
 * moment h = m·c, and the 3x3 rotational inertia Ī about the body
 * frame origin. Expanded to 6x6 it is the symmetric matrix
 *
 *     I = [ Ī    ĥ  ]
 *         [ ĥ^T  m1 ]
 *
 * which has exactly the "8 distinct non-zero constants" sparsity the
 * paper exploits in its submodules (Fig. 6b). Articulated-body
 * inertias (I^A in Algorithm 2) lose the rigid structure and are kept
 * as general symmetric 6x6 matrices.
 */

#ifndef DADU_SPATIAL_INERTIA_H
#define DADU_SPATIAL_INERTIA_H

#include "linalg/mat.h"
#include "linalg/vec.h"
#include "spatial/transform.h"

namespace dadu::spatial {

/** Rigid-body spatial inertia in the body's own joint frame. */
class SpatialInertia
{
  public:
    /** Zero inertia (massless body). */
    SpatialInertia() : mass_(0.0), h_(Vec3::zero()), ibar_(Mat3::zero()) {}

    /**
     * @param mass body mass.
     * @param com  center of mass in the body frame.
     * @param inertia_at_com 3x3 rotational inertia about the CoM.
     */
    static SpatialInertia
    fromComInertia(double mass, const Vec3 &com, const Mat3 &inertia_at_com)
    {
        // Parallel-axis: Ī = I_c + m ĉ ĉ^T.
        const Mat3 cx = linalg::skew(com);
        SpatialInertia si;
        si.mass_ = mass;
        si.h_ = com * mass;
        si.ibar_ = inertia_at_com + cx * cx.transpose() * mass;
        return si;
    }

    /**
     * @param mass body mass.
     * @param h    first mass moment m·c in the body frame.
     * @param ibar 3x3 rotational inertia about the body frame origin.
     */
    static SpatialInertia
    fromOriginInertia(double mass, const Vec3 &h, const Mat3 &ibar)
    {
        SpatialInertia si;
        si.mass_ = mass;
        si.h_ = h;
        si.ibar_ = ibar;
        return si;
    }

    double mass() const { return mass_; }
    const Vec3 &firstMoment() const { return h_; }
    const Mat3 &rotationalInertia() const { return ibar_; }

    /** f = I v for a spatial motion vector v. */
    Vec6
    apply(const Vec6 &v) const
    {
        const Vec3 omega = linalg::topHalf(v);
        const Vec3 vlin = linalg::bottomHalf(v);
        return linalg::join(ibar_ * omega + linalg::cross(h_, vlin),
                            vlin * mass_ - linalg::cross(h_, omega));
    }

    /** Expand to the dense symmetric 6x6 matrix. */
    linalg::Mat66
    toMatrix() const
    {
        const Mat3 hx = linalg::skew(h_);
        return linalg::blocks66(ibar_, hx, hx.transpose(),
                                Mat3::identity() * mass_);
    }

  private:
    double mass_;
    Vec3 h_;
    Mat3 ibar_;
};

/**
 * General symmetric 6x6 inertia (articulated-body inertia I^A of
 * Algorithm 2, or composite inertia I^C of CRBA).
 */
class ArticulatedInertia
{
  public:
    ArticulatedInertia() : m_(linalg::Mat66::zero()) {}

    explicit ArticulatedInertia(const linalg::Mat66 &m) : m_(m) {}

    explicit ArticulatedInertia(const SpatialInertia &si)
        : m_(si.toMatrix())
    {}

    const linalg::Mat66 &matrix() const { return m_; }
    linalg::Mat66 &matrix() { return m_; }

    ArticulatedInertia &
    operator+=(const ArticulatedInertia &o)
    {
        m_ += o.m_;
        return *this;
    }

    ArticulatedInertia &
    operator-=(const ArticulatedInertia &o)
    {
        m_ -= o.m_;
        return *this;
    }

    Vec6 apply(const Vec6 &v) const { return m_ * v; }

    /**
     * Congruence transform to the parent frame:
     * I_parent = X^T I X, the paper's λX*_i I^A_i iX_λi
     * (Algorithm 2 line 17). The result is symmetric by construction;
     * symmetry is re-imposed to suppress roundoff drift.
     */
    ArticulatedInertia
    transformToParent(const SpatialTransform &x) const
    {
        const linalg::Mat66 xm = x.toMatrix();
        linalg::Mat66 y = xm.transpose() * m_ * xm;
        for (std::size_t i = 0; i < 6; ++i) {
            for (std::size_t j = i + 1; j < 6; ++j) {
                const double avg = 0.5 * (y(i, j) + y(j, i));
                y(i, j) = avg;
                y(j, i) = avg;
            }
        }
        return ArticulatedInertia(y);
    }

  private:
    linalg::Mat66 m_;
};

} // namespace dadu::spatial

#endif // DADU_SPATIAL_INERTIA_H
