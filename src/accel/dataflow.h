/**
 * @file
 * Scheduling system of Dadu-RBD (Section V-B3): Input Stream Module,
 * Schedule Module and Feedback Module, plus the pipeline builder
 * that wires the FB and BF submodule arrays for a robot.
 *
 * The Schedule Module's per-task state machine realizes the dynamic
 * dataflow switching of Fig. 14: each function type is translated
 * into the micro-instruction sequence over the six computation steps
 * of Fig. 9a, with the Feedback Module writing ∆FD's intermediate
 * results back to the input stream for the second FB pass.
 */

#ifndef DADU_ACCEL_DATAFLOW_H
#define DADU_ACCEL_DATAFLOW_H

#include <memory>
#include <vector>

#include "accel/function.h"
#include "accel/submodules.h"
#include "accel/topology.h"

namespace dadu::accel {

/** Timing/numeric configuration of the simulated accelerator. */
struct AccelConfig
{
    double freq_mhz = 125.0; ///< Section VI: 125 MHz on the XVCU9P.

    /**
     * Auto-fit the per-submodule initiation-interval target so the
     * configured instance lands on the DSP budget (the paper
     * configures one bitstream per robot, so small robots get more
     * lanes per submodule and higher throughput).
     */
    bool auto_fit = true;
    double dsp_budget_pct = 62.0; ///< Section VI-C utilization target

    int target_ii = 8;       ///< per-submodule initiation interval goal
    int max_units = 256;     ///< multiplier-lane cap per submodule
    int schedule_units = 512; ///< MAC lanes of the Schedule Module
    int input_issue_ii = 2;  ///< cycles between task issues
    int task_pool = 128;     ///< in-flight task buffer entries
    std::size_t fifo_capacity = 8192;
    NumericConfig numeric;
    SapConfig sap;
};

/**
 * Timing and occupancy results of a simulated batch — the runtime
 * layer's per-batch stats type (the simulator fills the cycle and
 * FIFO fields that CPU backends leave at zero).
 */
using BatchStats = runtime::BatchStats;

/**
 * One fully wired accelerator instance (kernel + submodules) for one
 * robot. Construct per batch run.
 */
class AccelSim
{
  public:
    AccelSim(const RobotModel &robot, const SapPlan &plan,
             const AccelConfig &cfg);
    ~AccelSim();

    AccelSim(const AccelSim &) = delete;
    AccelSim &operator=(const AccelSim &) = delete;

    /**
     * Run a batch of @p count tasks through the simulated pipelines,
     * writing @c outputs[i] (caller-provided storage, resized in
     * place) for task i; stats via @p stats. Allocation-lean on the
     * caller side: the batch path owns no output storage.
     */
    void run(FunctionType fn, const TaskInput *inputs, std::size_t count,
             TaskOutput *outputs, BatchStats *stats = nullptr);

    /** Vector convenience over the span entry point. */
    std::vector<TaskOutput>
    run(FunctionType fn, const std::vector<TaskInput> &inputs,
        BatchStats *stats = nullptr)
    {
        std::vector<TaskOutput> outputs(inputs.size());
        run(fn, inputs.data(), inputs.size(), outputs.data(), stats);
        return outputs;
    }

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace dadu::accel

#endif // DADU_ACCEL_DATAFLOW_H
