/**
 * @file
 * Per-task state and the per-link functional core of the RTP
 * submodules.
 *
 * Every submodule in the paper processes one joint of one task per
 * initiation interval. The cycle simulator keeps the numerical state
 * of each in-flight task in a TaskState record; the FunctionalCore
 * methods perform exactly the per-joint computation of the
 * corresponding submodule (Figs. 6-8), reading and writing that
 * record. Tokens on the simulated FIFOs then only need to carry
 * (task, link, pass) tags while the dataflow ordering guarantees the
 * same producer/consumer relationships the hardware FIFOs enforce.
 *
 * An optional fixed-point mode quantizes every submodule result to
 * the Q-format grid of the hardware datapath and routes reciprocals
 * through the float-assisted unit (Section IV-B2), so the simulator
 * reproduces the accelerator's numerics, not just its timing.
 */

#ifndef DADU_ACCEL_CORE_STATE_H
#define DADU_ACCEL_CORE_STATE_H

#include <cstdint>
#include <vector>

#include "accel/function.h"
#include "linalg/mat.h"
#include "model/robot_model.h"
#include "spatial/transform.h"

namespace dadu::accel {

using linalg::Mat66;
using model::RobotModel;
using spatial::SpatialTransform;

/** Numeric behaviour of the simulated datapath. */
struct NumericConfig
{
    bool fixed_point = true; ///< quantize to the Q-grid per submodule
    int frac_bits = 29;      ///< fractional bits of the datapath
    int taylor_terms = 6;    ///< Global Trigonometric Module order
};

/** All numerical state of one in-flight task. */
struct TaskState
{
    TaskInput in;
    TaskOutput out;

    /**
     * Resolved ∆-output column gating of the request (dense when the
     * request carries no mask). The Df/Db submodules and the Schedule
     * Module's step ⑥ skip dead columns entirely — the hardware
     * analogue of not streaming those Jacobian columns through the
     * pipeline at all.
     */
    algo::ColumnPlan plan;

    // Joint transforms (updated by forward submodules, re-updated by
    // backward submodules per Section IV-A2).
    std::vector<SpatialTransform> xup;

    // RNEA state.
    std::vector<linalg::Vec6> v, a, f;
    VectorX tau;  ///< τ of the current pass
    VectorX bias; ///< saved C from the FD bias pass
    VectorX qdd;  ///< q̈ used by the full RNEA pass

    // ∆RNEA incremental columns, indexed [link][dof column].
    std::vector<std::vector<linalg::Vec6>> dv_dq, dv_dqd;
    std::vector<std::vector<linalg::Vec6>> da_dq, da_dqd;
    std::vector<std::vector<linalg::Vec6>> df_dq, df_dqd;
    MatrixX dtau_dq, dtau_dqd;

    // MMinvGen state.
    std::vector<Mat66> ia;
    std::vector<MatrixX> fcols; ///< F_i (6 x nv)
    std::vector<MatrixX> pcols; ///< P_i (6 x nv)
    MatrixX mwork;              ///< M or Minv under construction

    // U_i and D_i⁻¹ captured before the articulated-body subtraction
    // (the payload the paper's dtr stream forwards from Mb to Mf).
    std::vector<std::vector<linalg::Vec6>> ucache;
    std::vector<MatrixX> dinvcache;

    // Bookkeeping.
    std::uint64_t issue_cycle = 0;
    std::uint64_t done_cycle = 0;
    bool active = false;
};

/**
 * The per-joint datapath of every submodule kind, operating on
 * TaskState records.
 */
class FunctionalCore
{
  public:
    FunctionalCore(const RobotModel &robot, NumericConfig cfg);

    /** Reset and size @p st for a fresh task. */
    void initTask(TaskState &st, const TaskInput &in) const;

    /** Rf_i: X update, v, a, f (Algorithm 1 lines 3-6). */
    void rneaFwd(TaskState &st, int link, bool zero_qdd) const;

    /** Rb_i: re-update X, τ_i, lazy f_λ update (lines 8-10). */
    void rneaBwd(TaskState &st, int link) const;

    /** Df_i: incremental ∂v, ∂a, ∂f columns (Fig. 7). */
    void deltaFwd(TaskState &st, int link) const;

    /** Db_i: ∂τ rows and backward ∂f transfer (Fig. 7). */
    void deltaBwd(TaskState &st, int link) const;

    /** Mb_i: Algorithm 2 backward iteration for @p link. */
    void mminvBwd(TaskState &st, int link, bool out_m) const;

    /** Mf_i: Algorithm 2 forward iteration for @p link. */
    void mminvFwd(TaskState &st, int link) const;

    /** Schedule Module step ③: q̈ = M⁻¹ (τ - C). */
    void scheduleFd(TaskState &st) const;

    /** Schedule Module step ⑥: ∂u q̈ = -M⁻¹ ∂uτ. */
    void scheduleDeltaFd(TaskState &st) const;

    const RobotModel &robot() const { return robot_; }

    /** Quantize a scalar to the datapath grid (identity in float
     * mode). */
    double quantize(double x) const;

  private:
    linalg::Vec6 quantize(const linalg::Vec6 &v) const;
    void quantizeCols(std::vector<linalg::Vec6> &cols) const;

    /**
     * Joint transform evaluated the way the hardware does: sin/cos
     * from the Global Trigonometric Module's Taylor expansion.
     */
    SpatialTransform linkTransform(const TaskState &st, int link) const;

    const RobotModel &robot_;
    NumericConfig cfg_;
    double grid_;
};

} // namespace dadu::accel

#endif // DADU_ACCEL_CORE_STATE_H
