#include "accel/op_count.h"

#include <algorithm>
#include <cmath>

#include "model/joint.h"

namespace dadu::accel {

using model::JointType;

namespace {

// ---- primitive op-cost table (sparsity-optimized datapaths) ----

/** 3D cross product: 6 mul, 3 add. */
constexpr OpCount kCross3{6, 3, 0};

/**
 * Rotation of a 3-vector by a single-axis rotation block (the
 * revolute-joint X update leaves only a 2x2 rotation plus a fixed
 * row): 4 mul, 2 add.
 */
constexpr OpCount kRotAxis{4, 2, 0};

/** Dense 3x3 rotation (links whose fixed tree rotation is general). */
constexpr OpCount kRotDense{9, 6, 0};

/**
 * Apply a spatial transform to a motion/force vector: two rotations
 * plus one 3D cross and 3 adds (Section II sparsity).
 */
OpCount
xformCost(bool dense_rotation)
{
    const OpCount rot = dense_rotation ? kRotDense : kRotAxis;
    return rot + rot + kCross3 + OpCount{0, 3, 0};
}

/**
 * Rigid-inertia apply I v: the symmetric matrix has 8 distinct
 * non-zero constants (Fig. 6b): ~14 mul, 10 add.
 */
constexpr OpCount kInertiaApply{14, 10, 0};

/**
 * Spatial cross product (motion or force form): two 3D crosses plus
 * one extra cross and adds: 18 mul, 12 add.
 */
constexpr OpCount kSpatialCross{18, 12, 0};

/**
 * Symmetric 6x6 congruence transform X^T I X with Plücker sparsity
 * and symmetric output (21 distinct entries) — the I^A rotation of
 * Algorithm 2 line 17, the dominant MMinvGen cost the priority-vector
 * optimization targets.
 */
constexpr OpCount kCongruence{117, 96, 0};

/** True if the link's fixed tree rotation is not axis-aligned. */
bool
denseRotation(const RobotModel &robot, int link)
{
    const auto &e = robot.link(link).xtree.rotationPart();
    int nonzero = 0;
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            if (e(i, j) != 0.0)
                ++nonzero;
    return nonzero > 3;
}

/** X(q) update cost: c·sin q / c·cos q products (Section IV-A1). */
OpCount
xUpdateCost(const RobotModel &robot, int link)
{
    const JointType t = robot.link(link).joint;
    if (model::isRevolute(t)) {
        // 8 distinct values of the form c·sinq or c·cosq.
        return OpCount{8, 0, 0};
    }
    if (model::isPrismatic(t))
        return OpCount{2, 2, 0}; // translation offsets only
    switch (t) {
      case JointType::Spherical:
        return OpCount{16, 12, 0}; // quaternion-to-rotation
      case JointType::Translation3:
        return OpCount{0, 3, 0};
      case JointType::Floating:
        return OpCount{16, 15, 0};
      default:
        return OpCount{};
    }
}

/** DOF count of the joint (columns contributed to u = [q; q̇]). */
int
dof(const RobotModel &robot, int link)
{
    return robot.subspace(link).nv();
}

/** DOFs on the path from the root to @p link inclusive. */
int
pathDofs(const RobotModel &robot, int link)
{
    int n = 0;
    for (int i = link; i != -1; i = robot.parent(i))
        n += dof(robot, i);
    return n;
}

/** DOFs in the subtree rooted at @p link. */
int
subtreeDofs(const RobotModel &robot, int link)
{
    int n = 0;
    for (int i : robot.subtree(link))
        n += dof(robot, i);
    return n;
}

/** Live DOFs of one link's joint under an optional column plan. */
int
liveDof(const RobotModel &robot, int link, const algo::ColumnPlan *plan)
{
    if (plan == nullptr || plan->dense())
        return dof(robot, link);
    const int vi = robot.link(link).vIndex;
    int n = 0;
    for (int k = 0; k < dof(robot, link); ++k)
        if (plan->isLive(vi + k))
            ++n;
    return n;
}

/** Live DOFs on the root path of @p link under an optional plan. */
int
livePathDofs(const RobotModel &robot, int link,
             const algo::ColumnPlan *plan)
{
    if (plan == nullptr || plan->dense())
        return pathDofs(robot, link);
    int n = 0;
    for (int i = link; i != -1; i = robot.parent(i))
        n += liveDof(robot, i, plan);
    return n;
}

} // namespace

const char *
submoduleKindName(SubmoduleKind k)
{
    switch (k) {
      case SubmoduleKind::RneaFwd: return "Rf";
      case SubmoduleKind::RneaBwd: return "Rb";
      case SubmoduleKind::DeltaFwd: return "Df";
      case SubmoduleKind::DeltaBwd: return "Db";
      case SubmoduleKind::MMinvBwd: return "Mb";
      case SubmoduleKind::MMinvFwd: return "Mf";
    }
    return "?";
}

OpCount
submoduleOps(const RobotModel &robot, int link, SubmoduleKind kind,
             const algo::ColumnPlan *plan)
{
    const bool dense = denseRotation(robot, link);
    const OpCount xform = xformCost(dense);
    const int ni = dof(robot, link);
    // Incremental-column counts (Section IV-A4): two Jacobian column
    // blocks (∂/∂q and ∂/∂q̇) per LIVE path DOF — under a column plan
    // the Df/Db submodules stream only the live columns.
    const int cols = 2 * livePathDofs(robot, link, plan);
    const int ni_live = liveDof(robot, link, plan);
    const int tree_cols = subtreeDofs(robot, link);

    OpCount ops;
    switch (kind) {
      case SubmoduleKind::RneaFwd:
        // X update; v = Xv + Sq̇; a = Xa + Sq̈ + v×Sq̇; f = Ia + v×*Iv.
        ops += xUpdateCost(robot, link);
        ops += xform + OpCount{0, ni, 0};
        ops += xform + OpCount{0, ni, 0} + kSpatialCross;
        ops += kInertiaApply + kInertiaApply + kSpatialCross +
               OpCount{0, 12, 0};
        break;
      case SubmoduleKind::RneaBwd:
        // Re-update X (cheap); τ = S^T f (one-hot select: adds only
        // for multi-DOF); f_λ += X^T f (lazy update at the parent).
        ops += xUpdateCost(robot, link);
        ops += OpCount{0, ni, 0};
        ops += xform + OpCount{0, 6, 0};
        break;
      case SubmoduleKind::DeltaFwd:
        // Per column: ∂v = X∂v(+cross), ∂a = X∂a + cross, ∂f = I∂a +
        // two spatial crosses. New own-DOF columns add the X(v/a)
        // cross seeds.
        ops += xUpdateCost(robot, link);
        ops += (xform + kSpatialCross) * cols;                 // ∂v, coupling
        ops += (xform + kSpatialCross) * cols;                 // ∂a
        ops += (kInertiaApply + kSpatialCross * 2) * cols;     // ∂f
        ops += (kSpatialCross * 2) * (2 * ni_live);            // new columns
        break;
      case SubmoduleKind::DeltaBwd:
        // Per column: ∂τ = S^T ∂f (selects), backward X^T ∂f, plus
        // the S ×* f correction on own columns.
        ops += xUpdateCost(robot, link);
        ops += xform * cols;
        ops += OpCount{0, 6 * cols + ni * cols, 0};
        ops += kSpatialCross * (2 * ni_live);
        break;
      case SubmoduleKind::MMinvBwd:
        // I^A congruence (priority-vector critical path), F column
        // transforms for the subtree, U/D extraction (one-hot: column
        // select), reciprocal of D, Minv row for subtree columns.
        ops += xUpdateCost(robot, link);
        ops += kCongruence;
        ops += xform * tree_cols;                     // F columns up
        ops += OpCount{6 * ni, 6 * ni, 0};            // U·Minv update
        ops += OpCount{ni * tree_cols, ni * tree_cols, ni}; // rows + D⁻¹
        ops += OpCount{36, 36, 0};                    // U D⁻¹ U^T rank-ni
        break;
      case SubmoduleKind::MMinvFwd: {
        // P columns for all DOFs to the right of this link.
        const int right_cols = robot.nv() - robot.link(link).vIndex;
        ops += (xform + OpCount{6 * ni + ni, 6 * ni + ni, 0}) * right_cols;
        break;
      }
    }
    return ops;
}

namespace {

/** II and first-output latency of @p ops over @p units lanes. */
void
deriveTiming(SubmoduleTiming &t, const OpCount &ops)
{
    const int mul_work = std::max(1, ops.mul);
    t.ii = std::max(1, (mul_work + t.units - 1) / t.units);
    // Latency is the *first-output* delay, not the full drain: the
    // forward transfer (or first incremental column) leaves after a
    // couple of pipeline stages while the rest streams behind it —
    // the column-streaming behaviour of Section IV-A4. Reciprocals
    // add the 8-cycle float-assisted unit (Section IV-B2).
    constexpr int first_output_mults = 24;
    const int first = std::min(mul_work, first_output_mults);
    t.latency = 2 + (first + t.units - 1) / t.units + 8 * ops.recip;
}

} // namespace

SubmoduleTiming
allocateTiming(const OpCount &ops, int target_ii, int max_units)
{
    SubmoduleTiming t;
    const int mul_work = std::max(1, ops.mul);
    t.units = std::clamp((mul_work + target_ii - 1) / target_ii, 1,
                         max_units);
    deriveTiming(t, ops);
    return t;
}

SubmoduleTiming
gatedTiming(const OpCount &dense_ops, const OpCount &live_ops,
            int target_ii, int max_units)
{
    SubmoduleTiming t = allocateTiming(dense_ops, target_ii, max_units);
    deriveTiming(t, live_ops);
    return t;
}

} // namespace dadu::accel
