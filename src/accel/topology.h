/**
 * @file
 * SAP topology compiler (Section V-C).
 *
 * Turns a robot's kinematic tree into the Structure-Adaptive
 * Pipelines organization:
 *
 *  - branch decomposition: a root chain plus one pipeline array per
 *    subtree hanging off it (Fig. 11);
 *  - symmetric-branch merging: structurally identical sibling
 *    subtrees share one hardware array, time-division multiplexed.
 *    Merging applies at every fork, not just the root (Atlas merges
 *    its arm pair under the torso and its leg pair under the pelvis,
 *    Fig. 11c);
 *  - topology rotation: re-rooting the (undirected) tree to balance
 *    branch depths (Atlas: pelvis-rooted depth 11 → torso-rooted 9).
 *    A re-root is adopted only when it reduces the maximum depth by
 *    at least two levels without losing any symmetric-merge
 *    opportunities, and never for linear (chain) robots — matching
 *    the paper's choices (Atlas is rotated; the quadruped and Tiago
 *    keep their natural roots);
 *  - root split: the 6-DOF floating joint is split into a spherical
 *    and a 3-DOF-translation virtual joint (Section V-C5).
 *
 * The compiler works on the tree structure alone (joint types and
 * connectivity), so it can analyze re-rooted organizations without
 * re-deriving inertial parameters; the functional datapath always
 * evaluates with the original parameterization.
 */

#ifndef DADU_ACCEL_TOPOLOGY_H
#define DADU_ACCEL_TOPOLOGY_H

#include <string>
#include <vector>

#include "model/robot_model.h"

namespace dadu::accel {

using model::RobotModel;

/** SAP compilation options. */
struct SapConfig
{
    bool merge_symmetric = true; ///< TDM symmetric branches (V-C1).
    bool reroot = true;          ///< topology rotation (Fig. 11c).
    int max_tdm_group = 2;       ///< subtrees per shared array.
};

/** One hardware pipeline array serving one or more tree branches. */
struct HwBranch
{
    /**
     * The top-level branches this array serves; each entry is the
     * branch's links in topological order. All served branches have
     * identical structure.
     */
    std::vector<std::vector<int>> served;

    /** Time-division multiplexing factor (tasks per branch slot). */
    int tdmFactor() const { return static_cast<int>(served.size()); }
};

/** Compiled SAP organization for one robot. */
struct SapPlan
{
    /** Analysis parents (re-rooted if adopted), -1 for the root. */
    std::vector<int> parents;

    /** Chosen analysis root link. */
    int root = 0;

    /** Whether topology rotation was adopted. */
    bool rerooted = false;

    /** Links of the root chain (root until the first fork). */
    std::vector<int> rootChain;

    /** Top-level hardware branch arrays (for reporting, Fig. 11). */
    std::vector<HwBranch> hwBranches;

    /**
     * Representative (hardware) link for every link. Links merged by
     * TDM point at the corresponding link of the first subtree in
     * their group; unmerged links point at themselves.
     */
    std::vector<int> rep;

    /** Links whose hardware is shared (nb - #representatives). */
    int mergedLinks = 0;

    /** Per-link depth under the analysis root. */
    std::vector<int> depth;

    /** Maximum depth under the analysis root. */
    int maxDepth = 0;

    /** Maximum depth under the robot's original root. */
    int originalMaxDepth = 0;

    /** Number of physical branches at the root fork. */
    int branchCount = 0;

    /** One-line human-readable summary for reports. */
    std::string summary() const;
};

/** Compile the SAP plan for @p robot. */
SapPlan compileSap(const RobotModel &robot, const SapConfig &config = {});

/**
 * Re-rooted parents array: re-orient the undirected tree at
 * @p new_root. parents[new_root] == -1.
 */
std::vector<int> rerootParents(const RobotModel &robot, int new_root);

/**
 * The root minimizing the maximum link depth (the tree center) —
 * the paper's depth-balancing target.
 */
int bestRoot(const RobotModel &robot);

/**
 * Structural signature of the subtree at @p link under @p parents:
 * equal signatures mean the subtrees can share hardware.
 */
std::string branchSignature(const RobotModel &robot,
                            const std::vector<int> &parents, int link);

} // namespace dadu::accel

#endif // DADU_ACCEL_TOPOLOGY_H
