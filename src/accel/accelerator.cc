#include "accel/accelerator.h"

#include <algorithm>
#include <map>

#include "accel/op_count.h"

namespace dadu::accel {

Accelerator::Accelerator(const RobotModel &robot, AccelConfig cfg)
    : robot_(robot), cfg_(cfg), plan_(compileSap(robot_, cfg.sap))
{
    if (cfg_.auto_fit) {
        // Per-robot configuration (Section V): pick the smallest
        // initiation-interval target whose lane allocation fits the
        // DSP budget, and decide whether symmetric-branch TDM pays
        // off. Merging halves the submodule count but doubles the
        // tokens through the shared arrays, so it wins only when the
        // freed lanes speed up a dominating branch (quadruped+arm)
        // and loses when all branches are equal (HyQ) — exactly the
        // trade Section V-C1 describes.
        auto fit = [&](bool merge) {
            cfg_.sap.merge_symmetric = merge;
            plan_ = compileSap(robot_, cfg_.sap);
            for (int ii : {2, 3, 4, 6, 8, 10, 12, 16, 20, 24, 32, 48,
                           64, 96, 128}) {
                cfg_.target_ii = ii;
                if (resources().dsp_pct <= cfg_.dsp_budget_pct)
                    break;
            }
            // Effective task II of the configured arrays: the TDM'd
            // bottleneck of the full Dynamics Array.
            return std::make_pair(analytic(FunctionType::DeltaID)
                                      .ii_cycles,
                                  cfg_.target_ii);
        };
        const bool allow_merge = cfg.sap.merge_symmetric;
        const auto merged = allow_merge ? fit(true)
                                        : std::make_pair(1e30, 0);
        const auto unmerged = fit(false);
        if (allow_merge && merged.first <= unmerged.first) {
            cfg_.sap.merge_symmetric = true;
            cfg_.target_ii = merged.second;
            plan_ = compileSap(robot_, cfg_.sap);
        }
        // else: keep the unmerged fit already in place.
    }
    // The functional simulation keeps the original parameterization
    // (re-rooting is a hardware-organization analysis; the numbers in
    // the inertial parameters are expressed for the original root).
    SapConfig sim_sap = cfg_.sap;
    sim_sap.reroot = false;
    simPlan_ = compileSap(robot, sim_sap);
    sim_ = std::make_unique<AccelSim>(robot_, simPlan_, cfg_);
}

Accelerator::Accelerator(const Accelerator &other, CloneTag)
    : robot_(other.robot_), cfg_(other.cfg_), plan_(other.plan_),
      simPlan_(other.simPlan_)
{
    sim_ = std::make_unique<AccelSim>(robot_, simPlan_, cfg_);
}

std::unique_ptr<Accelerator>
Accelerator::clone() const
{
    return std::unique_ptr<Accelerator>(new Accelerator(*this, CloneTag{}));
}

Accelerator::~Accelerator() = default;

void
Accelerator::run(FunctionType fn, const TaskInput *inputs,
                 std::size_t count, TaskOutput *outputs, BatchStats *stats)
{
    sim_->run(fn, inputs, count, outputs, stats);
}

namespace {

/** Links served per representative link under a plan's TDM merge. */
std::map<int, int>
servedCount(const RobotModel &robot, const SapPlan &plan)
{
    std::map<int, int> count;
    for (int i = 0; i < robot.nb(); ++i)
        ++count[plan.rep[i]];
    return count;
}

/** The set of submodule kinds each function activates. */
std::vector<SubmoduleKind>
activeKinds(FunctionType fn)
{
    switch (fn) {
      case FunctionType::ID:
        return {SubmoduleKind::RneaFwd, SubmoduleKind::RneaBwd};
      case FunctionType::DeltaID:
      case FunctionType::DeltaiFD:
        return {SubmoduleKind::RneaFwd, SubmoduleKind::RneaBwd,
                SubmoduleKind::DeltaFwd, SubmoduleKind::DeltaBwd};
      case FunctionType::M:
        return {SubmoduleKind::MMinvBwd};
      case FunctionType::Minv:
        return {SubmoduleKind::MMinvBwd, SubmoduleKind::MMinvFwd};
      case FunctionType::FD:
        return {SubmoduleKind::RneaFwd, SubmoduleKind::RneaBwd,
                SubmoduleKind::MMinvBwd, SubmoduleKind::MMinvFwd};
      case FunctionType::DeltaFD:
        return {SubmoduleKind::RneaFwd, SubmoduleKind::RneaBwd,
                SubmoduleKind::DeltaFwd, SubmoduleKind::DeltaBwd,
                SubmoduleKind::MMinvBwd, SubmoduleKind::MMinvFwd};
    }
    return {};
}

/** FB passes per task (∆FD routes twice through the FB module). */
int
fbPasses(FunctionType fn)
{
    return fn == FunctionType::DeltaFD ? 2 : 1;
}

bool
isFbKind(SubmoduleKind k)
{
    return k == SubmoduleKind::RneaFwd || k == SubmoduleKind::RneaBwd ||
           k == SubmoduleKind::DeltaFwd || k == SubmoduleKind::DeltaBwd;
}

} // namespace

TimingEstimate
Accelerator::analytic(FunctionType fn, const algo::ColumnPlan *plan) const
{
    TimingEstimate est;
    const auto served = servedCount(robot_, plan_);
    const auto kinds = activeKinds(fn);
    const int nv = robot_.nv();
    if (plan != nullptr && plan->dense())
        plan = nullptr;
    // Live column count of the step-⑥ matmul (dense: all nv).
    const int live = plan != nullptr ? plan->liveCount() : nv;

    auto timing = [&](int link, SubmoduleKind k) {
        const OpCount dense_ops = submoduleOps(robot_, link, k);
        if (plan == nullptr)
            return allocateTiming(dense_ops, cfg_.target_ii,
                                  cfg_.max_units);
        return gatedTiming(dense_ops, submoduleOps(robot_, link, k, plan),
                           cfg_.target_ii, cfg_.max_units);
    };

    // Steady-state initiation interval: the slowest submodule, with
    // TDM multiplicity and pass count; plus the Schedule Module's
    // single-server costs and the input issue rate.
    double ii = cfg_.input_issue_ii;
    for (const auto &[link, mult] : served) {
        for (SubmoduleKind k : kinds) {
            // ∆ kinds only run on the derivative pass.
            int tokens = mult;
            if (isFbKind(k) &&
                (k == SubmoduleKind::RneaFwd ||
                 k == SubmoduleKind::RneaBwd))
                tokens *= fbPasses(fn);
            const auto t = timing(link, k);
            ii = std::max(ii, static_cast<double>(t.ii) * tokens);
        }
    }
    if (fn == FunctionType::FD || fn == FunctionType::DeltaFD) {
        const double matvec =
            (nv * nv + cfg_.schedule_units - 1) / cfg_.schedule_units + 4;
        ii = std::max(ii, matvec);
    }
    if (fn == FunctionType::DeltaFD || fn == FunctionType::DeltaiFD) {
        const double matmul =
            (2.0 * nv * nv * live + cfg_.schedule_units - 1) /
                cfg_.schedule_units +
            4;
        ii = std::max(ii, matmul);
    }

    // Latency: sum of latencies along the deepest round trip, per
    // activated pipeline, plus the schedule stages.
    // Deepest path under the analysis plan.
    int deepest = 0;
    for (int i = 0; i < robot_.nb(); ++i) {
        if (plan_.depth[i] > plan_.depth[deepest])
            deepest = i;
    }
    std::vector<int> path;
    for (int i = deepest; i != -1; i = plan_.parents[i])
        path.push_back(i);

    auto pathLatency = [&](SubmoduleKind k) {
        double l = 0;
        for (int link : path)
            l += timing(link, k).latency;
        return l;
    };

    double lat = cfg_.input_issue_ii;
    const double fb_pass0 =
        pathLatency(SubmoduleKind::RneaFwd) +
        pathLatency(SubmoduleKind::RneaBwd);
    const double fb_pass1 =
        fb_pass0 + pathLatency(SubmoduleKind::DeltaFwd) +
        pathLatency(SubmoduleKind::DeltaBwd);
    const double bf =
        pathLatency(SubmoduleKind::MMinvBwd) +
        (fn == FunctionType::M ? 0.0
                               : pathLatency(SubmoduleKind::MMinvFwd));
    const double matvec =
        (nv * nv + cfg_.schedule_units - 1) / cfg_.schedule_units + 4;
    const double matmul =
        (2.0 * nv * nv * live + cfg_.schedule_units - 1) /
            cfg_.schedule_units +
        4;

    switch (fn) {
      case FunctionType::ID:
        lat += fb_pass0;
        break;
      case FunctionType::DeltaID:
        lat += fb_pass1;
        break;
      case FunctionType::M:
      case FunctionType::Minv:
        lat += bf;
        break;
      case FunctionType::FD:
        lat += std::max(fb_pass0, bf) + matvec;
        break;
      case FunctionType::DeltaFD:
        lat += std::max(fb_pass0, bf) + matvec + fb_pass1 + matmul;
        break;
      case FunctionType::DeltaiFD:
        lat += fb_pass1 + matmul;
        break;
    }

    est.ii_cycles = ii;
    est.latency_cycles = lat;
    const double freq_hz = cfg_.freq_mhz * 1e6;
    est.latency_us = lat / freq_hz * 1e6;
    est.throughput_mtasks = freq_hz / ii / 1e6;
    return est;
}

ResourceEstimate
Accelerator::resources() const
{
    // Per-lane costs for a 32-bit fixed-point MAC on UltraScale+:
    // ~2 DSP48E2 slices plus control/register fabric (calibrated so
    // the quadruped-with-arm configuration reproduces the Section
    // VI-C utilization: 62% DSP / 54% LUT / 17% FF).
    constexpr int dsp_per_lane = 2;
    constexpr int lut_per_lane = 220;
    constexpr int ff_per_lane = 120;
    constexpr int lut_base = 1800; ///< per-submodule control/FIFO logic
    constexpr int ff_base = 800;

    ResourceEstimate r;
    const auto served = servedCount(robot_, plan_);
    // The multifunction accelerator instantiates all six submodule
    // kinds (FB + BF modules) regardless of which function runs.
    const SubmoduleKind all[] = {
        SubmoduleKind::RneaFwd, SubmoduleKind::RneaBwd,
        SubmoduleKind::DeltaFwd, SubmoduleKind::DeltaBwd,
        SubmoduleKind::MMinvBwd, SubmoduleKind::MMinvFwd};
    for (const auto &[link, mult] : served) {
        (void)mult;
        for (SubmoduleKind k : all) {
            const auto t = allocateTiming(submoduleOps(robot_, link, k),
                                          cfg_.target_ii, cfg_.max_units);
            r.dsp += t.units * dsp_per_lane;
            r.lut += t.units * lut_per_lane + lut_base;
            r.ff += t.units * ff_per_lane + ff_base;
        }
    }
    // Schedule Module MAC block, trigonometric module, decode/encode
    // and the scheduling state machine.
    r.dsp += cfg_.schedule_units * dsp_per_lane + 24;
    r.lut += cfg_.schedule_units * lut_per_lane + 30000;
    r.ff += cfg_.schedule_units * ff_per_lane + 26000;

    r.dsp_pct = 100.0 * r.dsp / Xcvu9p::dsp;
    r.lut_pct = 100.0 * static_cast<double>(r.lut) / Xcvu9p::lut;
    r.ff_pct = 100.0 * static_cast<double>(r.ff) / Xcvu9p::ff;
    return r;
}

} // namespace dadu::accel
