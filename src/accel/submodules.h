/**
 * @file
 * Cycle-level models of the RTP submodules (Rf/Rb, Df/Db, Mb/Mf).
 *
 * Each submodule is a pipelined unit with an initiation interval and
 * latency derived from its sparsity-optimized operation count
 * (op_count.h). Tokens on the FIFOs carry (task, link, pass) tags;
 * numerical state lives in the shared TaskTable and is transformed
 * by the FunctionalCore exactly as the hardware datapath would.
 *
 * Broadcast is a parent pushing one token per child into the
 * children's input FIFOs; reduce is a join counter that releases a
 * work item once tokens from all children have arrived (Section V-B
 * root/branches organization). A submodule that serves several
 * TDM-merged links (Section V-C1) simply receives tokens for all of
 * them through the same FIFO, which serializes the work and doubles
 * the effective initiation interval — the paper's time-division
 * multiplexing, emerging from the dataflow.
 */

#ifndef DADU_ACCEL_SUBMODULES_H
#define DADU_ACCEL_SUBMODULES_H

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "accel/core_state.h"
#include "accel/op_count.h"
#include "sim/kernel.h"

namespace dadu::accel {

/** Tag routed through the simulated FIFOs. */
struct Token
{
    std::int32_t task = 0;
    std::int16_t link = 0;
    std::int8_t pass = 0;
};

using TokenFifo = sim::Fifo<Token>;

/** Pool of in-flight task states. */
class TaskTable
{
  public:
    TaskTable(const FunctionalCore &core, int pool_size)
        : core_(core), pool_(pool_size)
    {}

    TaskState &at(int task) { return pool_[task % pool_.size()]; }

    const TaskState &at(int task) const
    {
        return pool_[task % pool_.size()];
    }

    int poolSize() const { return static_cast<int>(pool_.size()); }

    const FunctionalCore &core() const { return core_; }

  private:
    const FunctionalCore &core_;
    std::vector<TaskState> pool_;
};

/**
 * Base for pipelined units: accepts one work item per II cycles,
 * emits its output tokens `latency` cycles after acceptance, with
 * head-of-line stalling if a destination FIFO is full.
 */
class PipelinedUnit : public sim::Module
{
  public:
    PipelinedUnit(std::string name, SubmoduleTiming timing)
        : Module(std::move(name)), timing_(timing)
    {}

    const SubmoduleTiming &timing() const { return timing_; }

    /** Work items processed over the run. */
    std::uint64_t processed() const { return processed_; }

  protected:
    bool canAccept(sim::Cycle now) const
    {
        return now >= next_accept_ && inflight_.size() < 64;
    }

    /** Record acceptance and schedule emissions. */
    void
    accept(sim::Cycle now,
           std::vector<std::pair<TokenFifo *, Token>> emits)
    {
        next_accept_ = now + timing_.ii;
        inflight_.push_back({now + timing_.latency, std::move(emits)});
        ++processed_;
    }

    /** Emit due tokens; stalls preserve order. */
    void retire(sim::Cycle now);

    bool busy() const { return !inflight_.empty(); }

  private:
    struct Emission
    {
        sim::Cycle ready;
        std::vector<std::pair<TokenFifo *, Token>> tokens;
    };

    SubmoduleTiming timing_;
    sim::Cycle next_accept_ = 0;
    std::deque<Emission> inflight_;
    std::uint64_t processed_ = 0;
};

/** Join counter keyed by (task, link, pass). */
class JoinTable
{
  public:
    void
    add(const Token &t)
    {
        ++counts_[key(t)];
    }

    bool
    ready(const Token &t, int required) const
    {
        const auto it = counts_.find(key(t));
        return it != counts_.end() && it->second >= required;
    }

    void
    clear(const Token &t)
    {
        counts_.erase(key(t));
    }

    bool empty() const { return counts_.empty(); }

  private:
    static std::uint64_t
    key(const Token &t)
    {
        return (static_cast<std::uint64_t>(t.task) << 12) |
               (static_cast<std::uint64_t>(t.link & 0x3ff) << 2) |
               static_cast<std::uint64_t>(t.pass & 0x3);
    }

    std::unordered_map<std::uint64_t, int> counts_;
};

/** Per-link routing shared by the pipeline builders. */
struct Routing
{
    const RobotModel *robot = nullptr;

    /** Representative (hardware) link for every link (TDM merge). */
    std::vector<int> rep;

    /** Children of every link in the original tree. */
    std::vector<std::vector<int>> children;
};

// ---------------------------------------------------------------
// Forward-Backward module submodules (RNEA and ∆RNEA, Figs. 6-7).
// ---------------------------------------------------------------

/** Rf_i: forward RNEA submodule. */
class RfSub : public PipelinedUnit
{
  public:
    RfSub(std::string name, SubmoduleTiming timing, TaskTable &tasks,
          const Routing &routing, TokenFifo *in);

    /** Destination tables, filled by the pipeline builder. */
    std::vector<TokenFifo *> child_in; ///< indexed like routing.children
    TokenFifo *dtr = nullptr;          ///< to Rb of the same link
    TokenFifo *df_ready = nullptr;     ///< to Df (pass 1 only)

    /** Pass 0 runs RNEA with q̈ = 0 (FD bias pass) when set. */
    bool zero_qdd_pass0 = false;

    void tick(sim::Cycle now) override;
    bool idle() const override;

  private:
    TaskTable &tasks_;
    const Routing &routing_;
    TokenFifo *in_;
};

/** Rb_i: backward RNEA submodule (reduce over children). */
class RbSub : public PipelinedUnit
{
  public:
    RbSub(std::string name, SubmoduleTiming timing, TaskTable &tasks,
          const Routing &routing, TokenFifo *dtr_in, TokenFifo *btr_in);

    TokenFifo *parent_btr = nullptr; ///< to parent's Rb btr input
    TokenFifo *done = nullptr;       ///< root only: FB pass done
    TokenFifo *db_ready = nullptr;   ///< to Db (pass 1 only)

    void tick(sim::Cycle now) override;
    bool idle() const override;

  private:
    TaskTable &tasks_;
    const Routing &routing_;
    TokenFifo *dtr_in_;
    TokenFifo *btr_in_;
    JoinTable joins_;
};

/** Df_i: forward ∆RNEA submodule (incremental columns). */
class DfSub : public PipelinedUnit
{
  public:
    DfSub(std::string name, SubmoduleTiming timing, TaskTable &tasks,
          const Routing &routing, TokenFifo *ready_in);

    std::vector<TokenFifo *> child_in;
    TokenFifo *ddtr = nullptr; ///< to Db of the same link

    void tick(sim::Cycle now) override;
    bool idle() const override;

  private:
    TaskTable &tasks_;
    const Routing &routing_;
    TokenFifo *ready_in_; ///< merged Rf-done + parent-Df tokens
    JoinTable joins_;
    std::deque<Token> pending_;
};

/** Db_i: backward ∆RNEA submodule. */
class DbSub : public PipelinedUnit
{
  public:
    DbSub(std::string name, SubmoduleTiming timing, TaskTable &tasks,
          const Routing &routing, TokenFifo *ready_in);

    TokenFifo *parent_btr = nullptr;
    TokenFifo *done = nullptr; ///< root only: ∆ pass done

    void tick(sim::Cycle now) override;
    bool idle() const override;

  private:
    TaskTable &tasks_;
    const Routing &routing_;
    TokenFifo *ready_in_; ///< merged ddtr + Rb-done + child tokens
    JoinTable joins_;
    std::deque<Token> pending_;
};

// ---------------------------------------------------------------
// Backward-Forward module submodules (MMinvGen, Fig. 8).
// ---------------------------------------------------------------

/** Mb_i: backward MMinvGen submodule (reduce over children). */
class MbSub : public PipelinedUnit
{
  public:
    MbSub(std::string name, SubmoduleTiming timing, TaskTable &tasks,
          const Routing &routing, TokenFifo *trigger_in);

    TokenFifo *parent_trigger = nullptr; ///< to parent's Mb
    TokenFifo *mf_dtr = nullptr;         ///< to Mf of the same link
    TokenFifo *root_turnaround = nullptr; ///< root: to root Mf
    TokenFifo *done = nullptr;            ///< root, M mode: BF done

    bool out_m = false; ///< M mode instead of Minv

    void tick(sim::Cycle now) override;
    bool idle() const override;

  private:
    TaskTable &tasks_;
    const Routing &routing_;
    TokenFifo *trigger_in_;
    JoinTable joins_;
    std::deque<Token> pending_;
};

/** Mf_i: forward MMinvGen completion submodule. */
class MfSub : public PipelinedUnit
{
  public:
    MfSub(std::string name, SubmoduleTiming timing, TaskTable &tasks,
          const Routing &routing, TokenFifo *ready_in);

    std::vector<TokenFifo *> child_in;
    TokenFifo *row_out = nullptr; ///< per-link row completion

    void tick(sim::Cycle now) override;
    bool idle() const override;

  private:
    TaskTable &tasks_;
    const Routing &routing_;
    TokenFifo *ready_in_; ///< merged dtr + parent tokens
    JoinTable joins_;
    std::deque<Token> pending_;
};

} // namespace dadu::accel

#endif // DADU_ACCEL_SUBMODULES_H
