/**
 * @file
 * The accelerator's function-level interface (Table I of the paper).
 *
 * `type` in the paper's input stream selects which rigid-body
 * dynamics function the pipelines compute; inputs and outputs are
 * unified so every function can share the same decode/encode path.
 *
 * The concrete types live in runtime/request.h: the accelerator is
 * one backend of the unified dynamics runtime, and its task types
 * ARE the runtime's request/result types (no conversion layer).
 * The names below are the accelerator-side spelling of the same
 * types, kept for the hardware-model code and its tests.
 */

#ifndef DADU_ACCEL_FUNCTION_H
#define DADU_ACCEL_FUNCTION_H

#include "runtime/request.h"

namespace dadu::accel {

using linalg::MatrixX;
using linalg::Vec6;
using linalg::VectorX;

/** Rigid body dynamics functions (Table I). */
using FunctionType = runtime::FunctionType;

/** Human-readable function name as used in the paper's figures. */
using runtime::functionName;

/** Unified task input (Decode Module payload). */
using TaskInput = runtime::DynamicsRequest;

/** Unified task output (Encode Module payload). */
using TaskOutput = runtime::DynamicsResult;

} // namespace dadu::accel

#endif // DADU_ACCEL_FUNCTION_H
