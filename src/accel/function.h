/**
 * @file
 * The accelerator's function-level interface (Table I of the paper).
 *
 * `type` in the paper's input stream selects which rigid-body
 * dynamics function the pipelines compute; inputs and outputs are
 * unified so every function can share the same decode/encode path.
 */

#ifndef DADU_ACCEL_FUNCTION_H
#define DADU_ACCEL_FUNCTION_H

#include <vector>

#include "linalg/matrixx.h"
#include "linalg/vec.h"

namespace dadu::accel {

using linalg::MatrixX;
using linalg::Vec6;
using linalg::VectorX;

/** Rigid body dynamics functions (Table I). */
enum class FunctionType
{
    ID,       ///< τ = ID(q, q̇, q̈, f_ext)
    FD,       ///< q̈ = FD(q, q̇, τ, f_ext)
    M,        ///< mass matrix M(q)
    Minv,     ///< M⁻¹(q)
    DeltaID,  ///< ∂uτ = ∆ID(q, q̇, q̈, f_ext)
    DeltaFD,  ///< ∂u q̈ = ∆FD(q, q̇, τ, f_ext)
    DeltaiFD, ///< ∂u q̈ = ∆iFD(q, q̇, q̈, M⁻¹, f_ext)
};

/** Human-readable function name as used in the paper's figures. */
const char *functionName(FunctionType fn);

/** Unified task input (Decode Module payload). */
struct TaskInput
{
    VectorX q;                 ///< configuration (nq)
    VectorX qd;                ///< velocity (nv)
    VectorX qdd_or_tau;        ///< q̈ (ID/∆ID/∆iFD) or τ (FD/∆FD)
    std::vector<Vec6> fext;    ///< optional external forces (per link)
    MatrixX minv;              ///< M⁻¹ input, ∆iFD only
};

/** Unified task output (Encode Module payload). */
struct TaskOutput
{
    VectorX tau;       ///< ID/∆ID
    VectorX qdd;       ///< FD/∆FD
    MatrixX m;         ///< M
    MatrixX minv;      ///< Minv (also optional ∆FD byproduct)
    MatrixX dtau_dq;   ///< ∆ID
    MatrixX dtau_dqd;  ///< ∆ID
    MatrixX dqdd_dq;   ///< ∆FD/∆iFD
    MatrixX dqdd_dqd;  ///< ∆FD/∆iFD
};

} // namespace dadu::accel

#endif // DADU_ACCEL_FUNCTION_H
