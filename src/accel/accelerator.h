/**
 * @file
 * Dadu-RBD: the top-level accelerator model.
 *
 * One Accelerator instance corresponds to one configured FPGA
 * bitstream (Section V: "for a specific model of robot, only once
 * initial configuration is required"). It owns the SAP plan, and
 * offers two evaluation paths:
 *
 *  - run():      cycle-accurate simulation through the FB/BF pipeline
 *                arrays with real data (validates both results and
 *                timing);
 *  - analytic(): closed-form initiation-interval/latency estimates
 *                from the same op counts, for large sweeps.
 *
 * resources() reports the FPGA resource model for the configured
 * instance (Section VI-C).
 */

#ifndef DADU_ACCEL_ACCELERATOR_H
#define DADU_ACCEL_ACCELERATOR_H

#include <memory>
#include <vector>

#include "accel/dataflow.h"
#include "accel/function.h"
#include "accel/topology.h"

namespace dadu::accel {

/** Closed-form performance estimate for one function. */
struct TimingEstimate
{
    double ii_cycles = 0;          ///< steady-state cycles per task
    double latency_cycles = 0;     ///< single-task latency in cycles
    double latency_us = 0;         ///< single-task latency
    double throughput_mtasks = 0;  ///< million tasks per second
};

/** FPGA resource estimate (XVCU9P percentages as in Section VI-C). */
struct ResourceEstimate
{
    int dsp = 0;
    long lut = 0;
    long ff = 0;
    double dsp_pct = 0;
    double lut_pct = 0;
    double ff_pct = 0;
};

/** XVCU9P device capacities (the chip used by [12] and the paper). */
struct Xcvu9p
{
    static constexpr int dsp = 6840;
    static constexpr long lut = 1182240;
    static constexpr long ff = 2364480;
};

/** The configured accelerator. */
class Accelerator
{
  public:
    /**
     * Configure the accelerator for @p robot (the paper's one-time
     * per-robot configuration step).
     */
    explicit Accelerator(const RobotModel &robot, AccelConfig cfg = {});

    ~Accelerator();

    Accelerator(const Accelerator &) = delete;
    Accelerator &operator=(const Accelerator &) = delete;

    /**
     * Cheap clone: a second accelerator instance of the SAME
     * configured bitstream — the fitted config and compiled SAP
     * plans are reused as-is (no auto-fit search, no SAP
     * recompilation), only the simulator state is fresh. This is the
     * software analogue of programming one more FPGA with an
     * already-built bitstream, and what the runtime layer shards
     * batches across.
     */
    std::unique_ptr<Accelerator> clone() const;

    /**
     * Cycle-accurate batch execution of @p count tasks, writing
     * @c outputs[i] into caller-provided storage (resized in place,
     * reusing capacity) — the allocation-lean steady path the
     * runtime layer submits through.
     */
    void run(FunctionType fn, const TaskInput *inputs, std::size_t count,
             TaskOutput *outputs, BatchStats *stats = nullptr);

    /** Vector convenience over the span entry point. */
    std::vector<TaskOutput>
    run(FunctionType fn, const std::vector<TaskInput> &inputs,
        BatchStats *stats = nullptr)
    {
        std::vector<TaskOutput> outputs(inputs.size());
        run(fn, inputs.data(), inputs.size(), outputs.data(), stats);
        return outputs;
    }

    /** Closed-form timing for a saturated pipeline. */
    TimingEstimate analytic(FunctionType fn) const
    {
        return analytic(fn, nullptr);
    }

    /**
     * Live-column-aware closed form: the ∆ submodule streams and the
     * Schedule Module's step ⑥ matmul are priced for @p plan's live
     * columns over the dense-sized lane allocation (null or dense
     * plan = dense pricing; non-∆ functions ignore the plan).
     */
    TimingEstimate analytic(FunctionType fn,
                            const algo::ColumnPlan *plan) const;

    /** FPGA resource model for this configuration. */
    ResourceEstimate resources() const;

    const SapPlan &plan() const { return plan_; }
    const AccelConfig &config() const { return cfg_; }
    const RobotModel &robot() const { return robot_; }

  private:
    struct CloneTag
    {};
    Accelerator(const Accelerator &other, CloneTag);

    RobotModel robot_; ///< owned copy: one accelerator per robot
    AccelConfig cfg_;
    SapPlan plan_;     ///< analysis plan (re-rooting allowed)
    SapPlan simPlan_;  ///< functional plan (original root)
    std::unique_ptr<AccelSim> sim_;
};

} // namespace dadu::accel

#endif // DADU_ACCEL_ACCELERATOR_H
