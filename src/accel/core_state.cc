#include "accel/core_state.h"

#include <cmath>

#include "fixed/fixed_point.h"
#include "fixed/trig.h"
#include "model/joint.h"
#include "spatial/cross.h"
#include "linalg/factorize.h"
#include "spatial/inertia.h"

namespace dadu::accel {

using linalg::Vec6;
using model::JointType;
using spatial::crossForce;
using spatial::crossMotion;

FunctionalCore::FunctionalCore(const RobotModel &robot, NumericConfig cfg)
    : robot_(robot), cfg_(cfg),
      grid_(static_cast<double>(std::int64_t{1} << cfg.frac_bits))
{}

double
FunctionalCore::quantize(double x) const
{
    if (!cfg_.fixed_point)
        return x;
    return std::round(x * grid_) / grid_;
}

Vec6
FunctionalCore::quantize(const Vec6 &v) const
{
    if (!cfg_.fixed_point)
        return v;
    Vec6 r;
    for (int i = 0; i < 6; ++i)
        r[i] = quantize(v[i]);
    return r;
}

void
FunctionalCore::quantizeCols(std::vector<Vec6> &cols) const
{
    if (!cfg_.fixed_point)
        return;
    for (auto &c : cols)
        c = quantize(c);
}

SpatialTransform
FunctionalCore::linkTransform(const TaskState &st, int link) const
{
    const auto &l = robot_.link(link);
    if (model::isRevolute(l.joint)) {
        // Hardware path: the Global Trigonometric Module supplies
        // Taylor-series sin/cos (Section V-B2).
        const double q = st.in.q[l.qIndex];
        const auto [s, c] = fixed::taylorSinCos(q, cfg_.taylor_terms);
        linalg::Mat3 e;
        switch (l.joint) {
          case JointType::RevoluteX:
            e = linalg::Mat3{1, 0, 0, 0, c, s, 0, -s, c};
            break;
          case JointType::RevoluteY:
            e = linalg::Mat3{c, 0, -s, 0, 1, 0, s, 0, c};
            break;
          default:
            e = linalg::Mat3{c, s, 0, -s, c, 0, 0, 0, 1};
            break;
        }
        return SpatialTransform::rotation(e) * l.xtree;
    }
    return robot_.linkTransform(link, st.in.q);
}

void
FunctionalCore::initTask(TaskState &st, const TaskInput &in) const
{
    const int nb = robot_.nb();
    const int nv = robot_.nv();
    st.in = in;
    st.out = TaskOutput{};
    st.xup.assign(nb, SpatialTransform::identity());
    st.v.assign(nb, Vec6::zero());
    st.a.assign(nb, Vec6::zero());
    st.f.assign(nb, Vec6::zero());
    st.tau.resize(nv);
    st.bias.resize(nv);
    st.qdd.resize(nv);
    st.dv_dq.assign(nb, std::vector<Vec6>(nv, Vec6::zero()));
    st.dv_dqd.assign(nb, std::vector<Vec6>(nv, Vec6::zero()));
    st.da_dq.assign(nb, std::vector<Vec6>(nv, Vec6::zero()));
    st.da_dqd.assign(nb, std::vector<Vec6>(nv, Vec6::zero()));
    st.df_dq.assign(nb, std::vector<Vec6>(nv, Vec6::zero()));
    st.df_dqd.assign(nb, std::vector<Vec6>(nv, Vec6::zero()));
    st.dtau_dq.resize(nv, nv);
    st.dtau_dqd.resize(nv, nv);
    st.ia.assign(nb, Mat66::zero());
    st.fcols.assign(nb, MatrixX(6, nv));
    st.pcols.assign(nb, MatrixX(6, nv));
    st.mwork.resize(nv, nv);
    st.ucache.assign(nb, {});
    st.dinvcache.assign(nb, MatrixX());
    // Invalid seeds are rejected at backend submit; resolve() leaves
    // the plan dense for non-gated (or malformed) requests.
    st.plan.resolve(in.gating, in.seed_cols, nv);
    st.active = true;
}

void
FunctionalCore::rneaFwd(TaskState &st, int link, bool zero_qdd) const
{
    const int lam = robot_.parent(link);
    st.xup[link] = linkTransform(st, link);
    const auto &s = robot_.subspace(link);

    const Vec6 vj = s.apply(robot_.jointVelocity(link, st.in.qd));
    Vec6 aj;
    if (!zero_qdd) {
        const auto &l = robot_.link(link);
        for (int k = 0; k < s.nv(); ++k)
            aj += s.col(k) * st.qdd[l.vIndex + k];
    }

    const Vec6 vparent = lam == -1 ? Vec6::zero() : st.v[lam];
    const Vec6 aparent = lam == -1 ? robot_.gravity() : st.a[lam];

    st.v[link] = quantize(st.xup[link].applyMotion(vparent) + vj);
    st.a[link] = quantize(st.xup[link].applyMotion(aparent) + aj +
                          crossMotion(st.v[link], vj));
    Vec6 f = robot_.link(link).inertia.apply(st.a[link]) +
             crossForce(st.v[link],
                        robot_.link(link).inertia.apply(st.v[link]));
    if (!st.in.fext.empty())
        f -= st.in.fext[link];
    st.f[link] = quantize(f);
}

void
FunctionalCore::rneaBwd(TaskState &st, int link) const
{
    // X is re-updated rather than transferred (Section IV-A2); the
    // value is identical so we reuse st.xup.
    const auto &s = robot_.subspace(link);
    const auto &l = robot_.link(link);
    const VectorX taui = s.applyTranspose(st.f[link]);
    for (int k = 0; k < s.nv(); ++k)
        st.tau[l.vIndex + k] = quantize(taui[k]);
    const int lam = robot_.parent(link);
    if (lam != -1) {
        // Lazy update: the addend is handed to the parent submodule.
        st.f[lam] = quantize(
            st.f[lam] + st.xup[link].applyTransposeForce(st.f[link]));
    }
}

void
FunctionalCore::deltaFwd(TaskState &st, int link) const
{
    const int lam = robot_.parent(link);
    const auto &s = robot_.subspace(link);
    const auto &l = robot_.link(link);
    const int ni = s.nv();

    const Vec6 vj = s.apply(robot_.jointVelocity(link, st.in.qd));
    const Vec6 vparent = lam == -1 ? Vec6::zero() : st.v[lam];
    const Vec6 aparent = lam == -1 ? robot_.gravity() : st.a[lam];
    const Vec6 vc = st.xup[link].applyMotion(vparent);
    const Vec6 ac = st.xup[link].applyMotion(aparent);

    // Ancestor columns (incremental calculation: only path DOFs).
    // Dead columns under the task's plan are skipped outright — their
    // ∂v/∂a/∂f stay at initTask's zeros and nothing downstream reads
    // them.
    if (lam != -1) {
        for (int anc = lam; anc != -1; anc = robot_.parent(anc)) {
            const auto &la = robot_.link(anc);
            for (int k = 0; k < robot_.subspace(anc).nv(); ++k) {
                const int col = la.vIndex + k;
                if (!st.plan.isLive(col))
                    continue;
                const Vec6 dvq =
                    st.xup[link].applyMotion(st.dv_dq[lam][col]);
                const Vec6 dvqd =
                    st.xup[link].applyMotion(st.dv_dqd[lam][col]);
                st.dv_dq[link][col] = dvq;
                st.dv_dqd[link][col] = dvqd;
                st.da_dq[link][col] =
                    st.xup[link].applyMotion(st.da_dq[lam][col]) +
                    crossMotion(dvq, vj);
                st.da_dqd[link][col] =
                    st.xup[link].applyMotion(st.da_dqd[lam][col]) +
                    crossMotion(dvqd, vj);
            }
        }
    }
    // Own-DOF (newly added) columns.
    for (int k = 0; k < ni; ++k) {
        const int col = l.vIndex + k;
        if (!st.plan.isLive(col))
            continue;
        const Vec6 sk = s.col(k);
        const Vec6 dvq = crossMotion(vc, sk);
        st.dv_dq[link][col] = dvq;
        st.dv_dqd[link][col] = sk;
        st.da_dq[link][col] = crossMotion(ac, sk) + crossMotion(dvq, vj);
        st.da_dqd[link][col] =
            crossMotion(sk, vj) + crossMotion(st.v[link], sk);
    }

    // ∂f columns for all active (path) columns.
    const auto &inertia = robot_.link(link).inertia;
    const Vec6 iv = inertia.apply(st.v[link]);
    for (int anc = link; anc != -1; anc = robot_.parent(anc)) {
        const auto &la = robot_.link(anc);
        for (int k = 0; k < robot_.subspace(anc).nv(); ++k) {
            const int col = la.vIndex + k;
            if (!st.plan.isLive(col))
                continue;
            st.df_dq[link][col] =
                inertia.apply(st.da_dq[link][col]) +
                crossForce(st.dv_dq[link][col], iv) +
                crossForce(st.v[link],
                           inertia.apply(st.dv_dq[link][col]));
            st.df_dqd[link][col] =
                inertia.apply(st.da_dqd[link][col]) +
                crossForce(st.dv_dqd[link][col], iv) +
                crossForce(st.v[link],
                           inertia.apply(st.dv_dqd[link][col]));
        }
    }
    quantizeCols(st.dv_dq[link]);
    quantizeCols(st.dv_dqd[link]);
    quantizeCols(st.da_dq[link]);
    quantizeCols(st.da_dqd[link]);
    quantizeCols(st.df_dq[link]);
    quantizeCols(st.df_dqd[link]);
}

void
FunctionalCore::deltaBwd(TaskState &st, int link) const
{
    const int lam = robot_.parent(link);
    const auto &s = robot_.subspace(link);
    const auto &l = robot_.link(link);
    const int ni = s.nv();
    const int nv = robot_.nv();

    for (int col = 0; col < nv; ++col) {
        if (!st.plan.isLive(col))
            continue;
        for (int r = 0; r < ni; ++r) {
            st.dtau_dq(l.vIndex + r, col) =
                quantize(s.col(r).dot(st.df_dq[link][col]));
            st.dtau_dqd(l.vIndex + r, col) =
                quantize(s.col(r).dot(st.df_dqd[link][col]));
        }
    }
    if (lam != -1) {
        // Backward transfer btr = λX*(∂f + S ×* f) (Fig. 7), lazily
        // accumulated into the parent's columns.
        for (int col = 0; col < nv; ++col) {
            if (!st.plan.isLive(col))
                continue;
            Vec6 dq_col = st.df_dq[link][col];
            if (col >= l.vIndex && col < l.vIndex + ni)
                dq_col += crossForce(s.col(col - l.vIndex), st.f[link]);
            if (dq_col.maxAbs() != 0.0) {
                st.df_dq[lam][col] = quantize(
                    st.df_dq[lam][col] +
                    st.xup[link].applyTransposeForce(dq_col));
            }
            const Vec6 &dqd_col = st.df_dqd[link][col];
            if (dqd_col.maxAbs() != 0.0) {
                st.df_dqd[lam][col] = quantize(
                    st.df_dqd[lam][col] +
                    st.xup[link].applyTransposeForce(dqd_col));
            }
        }
    }
}

void
FunctionalCore::mminvBwd(TaskState &st, int link, bool out_m) const
{
    const int lam = robot_.parent(link);
    st.xup[link] = linkTransform(st, link);
    const auto &s = robot_.subspace(link);
    const auto &l = robot_.link(link);
    const int ni = s.nv();
    const int vi = l.vIndex;

    st.ia[link] += robot_.link(link).inertia.toMatrix();

    std::vector<Vec6> u(ni);
    for (int k = 0; k < ni; ++k)
        u[k] = st.ia[link] * s.col(k);
    MatrixX d(ni, ni);
    for (int r = 0; r < ni; ++r)
        for (int k = 0; k < ni; ++k)
            d(r, k) = s.col(r).dot(u[k]);

    // D⁻¹ through the float-assisted reciprocal for 1-DOF joints
    // (Section IV-B2); small LDLT inverse for multi-DOF roots.
    MatrixX dinv(ni, ni);
    if (ni == 1) {
        if (cfg_.fixed_point) {
            const auto fx = fixed::FixedPoint<29>(d(0, 0));
            dinv(0, 0) = fixed::reciprocalRefined(fx).toDouble();
        } else {
            dinv(0, 0) = 1.0 / d(0, 0);
        }
    } else {
        dinv = linalg::Ldlt(d).inverse();
    }
    // Forwarded to the Mf submodule via the dtr stream (Fig. 8b).
    st.ucache[link] = u;
    st.dinvcache[link] = dinv;

    // Subtree DOF columns (branch-induced sparsity).
    std::vector<int> cols;
    for (int j : robot_.subtree(link)) {
        const auto &lj = robot_.link(j);
        for (int k = 0; k < robot_.subspace(j).nv(); ++k)
            cols.push_back(lj.vIndex + k);
    }

    if (!out_m) {
        for (int r = 0; r < ni; ++r)
            for (int k = 0; k < ni; ++k)
                st.mwork(vi + r, vi + k) = quantize(dinv(r, k));
        for (int j : cols) {
            if (j >= vi && j < vi + ni)
                continue;
            VectorX stf(ni);
            for (int r = 0; r < ni; ++r) {
                double acc = 0.0;
                for (int a = 0; a < 6; ++a)
                    acc += s.col(r)[a] * st.fcols[link](a, j);
                stf[r] = acc;
            }
            for (int r = 0; r < ni; ++r) {
                double val = 0.0;
                for (int k = 0; k < ni; ++k)
                    val -= dinv(r, k) * stf[k];
                st.mwork(vi + r, j) = quantize(val);
            }
        }
    } else {
        for (int r = 0; r < ni; ++r)
            for (int k = 0; k < ni; ++k)
                st.mwork(vi + r, vi + k) = quantize(d(r, k));
        for (int j : cols) {
            if (j >= vi && j < vi + ni)
                continue;
            for (int r = 0; r < ni; ++r) {
                double acc = 0.0;
                for (int a = 0; a < 6; ++a)
                    acc += s.col(r)[a] * st.fcols[link](a, j);
                st.mwork(vi + r, j) = quantize(acc);
                st.mwork(j, vi + r) = st.mwork(vi + r, j);
            }
        }
    }

    if (lam != -1) {
        if (!out_m) {
            // F[:, tree] += U Minv[i, tree]; IA -= U D⁻¹ U^T.
            for (int j : cols) {
                for (int a = 0; a < 6; ++a) {
                    double acc = 0.0;
                    for (int k = 0; k < ni; ++k)
                        acc += u[k][a] * st.mwork(vi + k, j);
                    st.fcols[link](a, j) =
                        quantize(st.fcols[link](a, j) + acc);
                }
            }
            for (int r = 0; r < ni; ++r)
                for (int k = 0; k < ni; ++k) {
                    const double dk = dinv(r, k);
                    if (dk == 0.0)
                        continue;
                    for (int a = 0; a < 6; ++a)
                        for (int b = 0; b < 6; ++b)
                            st.ia[link](a, b) -= dk * u[r][a] * u[k][b];
                }
        } else {
            for (int k = 0; k < ni; ++k)
                for (int a = 0; a < 6; ++a)
                    st.fcols[link](a, vi + k) = u[k][a];
        }
        // Lazy updates into the parent: F and I^A (priority vector in
        // hardware; plain accumulation here).
        for (int j : cols) {
            Vec6 col;
            for (int a = 0; a < 6; ++a)
                col[a] = st.fcols[link](a, j);
            const Vec6 up = st.xup[link].applyTransposeForce(col);
            for (int a = 0; a < 6; ++a)
                st.fcols[lam](a, j) = quantize(st.fcols[lam](a, j) + up[a]);
        }
        const Mat66 xm = st.xup[link].toMatrix();
        st.ia[lam] += xm.transpose() * st.ia[link] * xm;
        if (cfg_.fixed_point) {
            for (int a = 0; a < 6; ++a)
                for (int b = 0; b < 6; ++b)
                    st.ia[lam](a, b) = quantize(st.ia[lam](a, b));
        }
    }
}

void
FunctionalCore::mminvFwd(TaskState &st, int link) const
{
    const int lam = robot_.parent(link);
    const auto &s = robot_.subspace(link);
    const auto &l = robot_.link(link);
    const int ni = s.nv();
    const int vi = l.vIndex;
    const int nv = robot_.nv();

    if (lam != -1) {
        // Minv[i, i:] -= D⁻¹ U^T (X P_λ[:, i:]).
        for (int j = vi; j < nv; ++j) {
            Vec6 pcol;
            for (int a = 0; a < 6; ++a)
                pcol[a] = st.pcols[lam](a, j);
            const Vec6 xp = st.xup[link].applyMotion(pcol);
            VectorX ut(ni);
            for (int r = 0; r < ni; ++r)
                ut[r] = st.ucache[link][r].dot(xp);
            for (int r = 0; r < ni; ++r) {
                double val = 0.0;
                for (int k = 0; k < ni; ++k)
                    val += st.dinvcache[link](r, k) * ut[k];
                st.mwork(vi + r, j) =
                    quantize(st.mwork(vi + r, j) - val);
            }
        }
    }
    // P_i[:, i:] = S Minv[i, i:] (+ X P_λ[:, i:]).
    for (int j = vi; j < nv; ++j) {
        Vec6 pcol;
        for (int k = 0; k < ni; ++k)
            pcol += s.col(k) * st.mwork(vi + k, j);
        if (lam != -1) {
            Vec6 plam;
            for (int a = 0; a < 6; ++a)
                plam[a] = st.pcols[lam](a, j);
            pcol += st.xup[link].applyMotion(plam);
        }
        pcol = quantize(pcol);
        for (int a = 0; a < 6; ++a)
            st.pcols[link](a, j) = pcol[a];
    }
}

namespace {

/** Mirror the upper triangle (the BF pipeline emits rows i, i:). */
MatrixX
fullSymmetric(const MatrixX &m)
{
    MatrixX out = m;
    for (std::size_t r = 0; r < out.rows(); ++r)
        for (std::size_t c = r + 1; c < out.cols(); ++c)
            out(c, r) = out(r, c);
    return out;
}

} // namespace

void
FunctionalCore::scheduleFd(TaskState &st) const
{
    const int nv = robot_.nv();
    const MatrixX minv =
        st.in.minv.rows() == static_cast<std::size_t>(nv)
            ? st.in.minv
            : fullSymmetric(st.mwork);
    VectorX rhs(nv);
    for (int i = 0; i < nv; ++i)
        rhs[i] = st.in.qdd_or_tau[i] - st.tau[i];
    st.qdd = minv * rhs;
    for (int i = 0; i < nv; ++i)
        st.qdd[i] = quantize(st.qdd[i]);
}

void
FunctionalCore::scheduleDeltaFd(TaskState &st) const
{
    const int nv = robot_.nv();
    const MatrixX minv =
        st.in.minv.rows() == static_cast<std::size_t>(nv)
            ? st.in.minv
            : fullSymmetric(st.mwork);
    if (!st.plan.dense()) {
        // Step ⑥ prices and computes only the live columns of
        // ∂u q̈ = -M⁻¹ ∂uτ; dead columns stay at resize()'s 0.0.
        st.out.dqdd_dq.resize(nv, nv);
        st.out.dqdd_dqd.resize(nv, nv);
        for (int c : st.plan.cols()) {
            for (int r = 0; r < nv; ++r) {
                double accq = 0.0, accqd = 0.0;
                for (int k = 0; k < nv; ++k) {
                    accq += minv(r, k) * st.dtau_dq(k, c);
                    accqd += minv(r, k) * st.dtau_dqd(k, c);
                }
                st.out.dqdd_dq(r, c) = quantize(-accq);
                st.out.dqdd_dqd(r, c) = quantize(-accqd);
            }
        }
        return;
    }
    st.out.dqdd_dq = -(minv * st.dtau_dq);
    st.out.dqdd_dqd = -(minv * st.dtau_dqd);
    if (cfg_.fixed_point) {
        for (int r = 0; r < nv; ++r)
            for (int c = 0; c < nv; ++c) {
                st.out.dqdd_dq(r, c) = quantize(st.out.dqdd_dq(r, c));
                st.out.dqdd_dqd(r, c) = quantize(st.out.dqdd_dqd(r, c));
            }
    }
}

} // namespace dadu::accel
