#include "accel/topology.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "model/joint.h"

namespace dadu::accel {

namespace {

/** Undirected adjacency of the kinematic tree. */
std::vector<std::vector<int>>
adjacency(const RobotModel &robot)
{
    std::vector<std::vector<int>> adj(robot.nb());
    for (int i = 0; i < robot.nb(); ++i) {
        const int p = robot.parent(i);
        if (p != -1) {
            adj[i].push_back(p);
            adj[p].push_back(i);
        }
    }
    return adj;
}

/** Depth of every link under @p parents (roots have depth 1). */
std::vector<int>
depthsOf(const std::vector<int> &parents)
{
    const int nb = static_cast<int>(parents.size());
    std::vector<int> depth(nb, 0);
    std::vector<int> stack;
    for (int i = 0; i < nb; ++i) {
        int j = i;
        stack.clear();
        while (j != -1 && depth[j] == 0) {
            stack.push_back(j);
            j = parents[j];
        }
        int d = (j == -1) ? 0 : depth[j];
        for (auto it = stack.rbegin(); it != stack.rend(); ++it)
            depth[*it] = ++d;
    }
    return depth;
}

/** Children lists under @p parents. */
std::vector<std::vector<int>>
childrenOf(const std::vector<int> &parents)
{
    std::vector<std::vector<int>> ch(parents.size());
    for (std::size_t i = 0; i < parents.size(); ++i) {
        if (parents[i] != -1)
            ch[parents[i]].push_back(static_cast<int>(i));
    }
    return ch;
}

/** Subtree of @p link under @p parents, topological order. */
std::vector<int>
subtreeOf(const std::vector<int> &parents, int link)
{
    const auto ch = childrenOf(parents);
    std::vector<int> out;
    std::vector<int> stack{link};
    while (!stack.empty()) {
        const int i = stack.back();
        stack.pop_back();
        out.push_back(i);
        for (auto it = ch[i].rbegin(); it != ch[i].rend(); ++it)
            stack.push_back(*it);
    }
    return out;
}

/** True if no link has more than one child (pure serial chain). */
bool
isLinear(const std::vector<std::vector<int>> &children)
{
    for (const auto &c : children)
        if (c.size() > 1)
            return false;
    return true;
}

/**
 * Map subtree @p b onto the structurally identical subtree @p a:
 * rep[x] = corresponding link in a, recursively, matching children
 * by signature.
 */
void
mapSubtree(const RobotModel &robot, const std::vector<int> &parents,
           const std::vector<std::vector<int>> &children, int a, int b,
           std::vector<int> &rep)
{
    rep[b] = rep[a];
    // Pair up children by signature (greedy multiset matching).
    std::vector<int> ca = children[a], cb = children[b];
    std::vector<bool> used(cb.size(), false);
    for (int child_a : ca) {
        const std::string sig = branchSignature(robot, parents, child_a);
        for (std::size_t j = 0; j < cb.size(); ++j) {
            if (used[j])
                continue;
            if (branchSignature(robot, parents, cb[j]) == sig) {
                used[j] = true;
                mapSubtree(robot, parents, children, child_a, cb[j], rep);
                break;
            }
        }
    }
}

/**
 * Recursive symmetric merging: at every fork, group structurally
 * identical sibling subtrees into TDM sets of max_tdm_group; members
 * after the first map onto the first.
 */
void
mergeSymmetric(const RobotModel &robot, const std::vector<int> &parents,
               const std::vector<std::vector<int>> &children, int link,
               int max_tdm_group, std::vector<int> &rep)
{
    std::map<std::string, std::vector<int>> groups;
    for (int c : children[link])
        groups[branchSignature(robot, parents, c)].push_back(c);
    for (auto &[sig, members] : groups) {
        (void)sig;
        for (std::size_t k = 0; k < members.size();
             k += max_tdm_group) {
            const std::size_t end =
                std::min(members.size(), k + max_tdm_group);
            for (std::size_t m = k + 1; m < end; ++m)
                mapSubtree(robot, parents, children, members[k],
                           members[m], rep);
            // Recurse into the representative only.
            mergeSymmetric(robot, parents, children, members[k],
                           max_tdm_group, rep);
        }
    }
}

/** Build a candidate plan (no merge bookkeeping) for a given root. */
SapPlan
planForRoot(const RobotModel &robot, int root, const SapConfig &config)
{
    SapPlan plan;
    plan.root = root;
    plan.parents = rerootParents(robot, root);
    plan.depth = depthsOf(plan.parents);
    plan.maxDepth =
        *std::max_element(plan.depth.begin(), plan.depth.end());

    const auto children = childrenOf(plan.parents);

    // Root chain: from the analysis root until the first fork.
    int cur = root;
    while (true) {
        plan.rootChain.push_back(cur);
        if (children[cur].size() != 1)
            break;
        cur = children[cur].front();
    }

    // Top-level branches hang off the end of the root chain.
    std::vector<std::vector<int>> branches;
    for (int c : children[plan.rootChain.back()])
        branches.push_back(subtreeOf(plan.parents, c));
    plan.branchCount = static_cast<int>(branches.size());

    // Representative map via recursive symmetric merging.
    plan.rep.resize(robot.nb());
    for (int i = 0; i < robot.nb(); ++i)
        plan.rep[i] = i;
    if (config.merge_symmetric) {
        mergeSymmetric(robot, plan.parents, children, root,
                       config.max_tdm_group, plan.rep);
    }
    plan.mergedLinks = 0;
    for (int i = 0; i < robot.nb(); ++i)
        if (plan.rep[i] != i)
            ++plan.mergedLinks;

    // Top-level hardware arrays for reporting: group the top-level
    // branches whose heads merged together.
    std::map<int, HwBranch> arrays;
    for (auto &b : branches) {
        arrays[plan.rep[b.front()]].served.push_back(b);
    }
    for (auto &[head, hw] : arrays) {
        (void)head;
        plan.hwBranches.push_back(hw);
    }
    return plan;
}

} // namespace

std::vector<int>
rerootParents(const RobotModel &robot, int new_root)
{
    const auto adj = adjacency(robot);
    std::vector<int> parents(robot.nb(), -2);
    std::vector<int> queue{new_root};
    parents[new_root] = -1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const int i = queue[head];
        for (int j : adj[i]) {
            if (parents[j] == -2) {
                parents[j] = i;
                queue.push_back(j);
            }
        }
    }
    return parents;
}

int
bestRoot(const RobotModel &robot)
{
    int best = 0;
    int best_depth = 1 << 30;
    for (int r = 0; r < robot.nb(); ++r) {
        const auto d = depthsOf(rerootParents(robot, r));
        const int md = *std::max_element(d.begin(), d.end());
        if (md < best_depth) {
            best_depth = md;
            best = r;
        }
    }
    return best;
}

std::string
branchSignature(const RobotModel &robot, const std::vector<int> &parents,
                int link)
{
    const auto ch = childrenOf(parents);
    std::string sig = "(";
    sig += model::jointTypeName(robot.link(link).joint);
    std::vector<std::string> child_sigs;
    for (int c : ch[link])
        child_sigs.push_back(branchSignature(robot, parents, c));
    std::sort(child_sigs.begin(), child_sigs.end());
    for (const auto &s : child_sigs)
        sig += s;
    sig += ")";
    return sig;
}

SapPlan
compileSap(const RobotModel &robot, const SapConfig &config)
{
    // Original-root plan.
    const int orig_root = robot.children(-1).front();
    SapPlan plan = planForRoot(robot, orig_root, config);
    plan.originalMaxDepth = plan.maxDepth;

    if (!config.reroot)
        return plan;

    // Topology rotation (Fig. 11c). Adopted only when it buys at
    // least two levels of depth, costs no merge opportunities, and
    // the robot is not a plain chain (a chain maps to the base RTP).
    std::vector<int> orig_parents(robot.nb());
    for (int i = 0; i < robot.nb(); ++i)
        orig_parents[i] = robot.parent(i);
    if (isLinear(childrenOf(orig_parents)))
        return plan;

    const int candidate_root = bestRoot(robot);
    if (candidate_root == orig_root)
        return plan;
    SapPlan candidate = planForRoot(robot, candidate_root, config);
    candidate.originalMaxDepth = plan.originalMaxDepth;
    if (candidate.maxDepth <= plan.maxDepth - 2 &&
        candidate.mergedLinks >= plan.mergedLinks) {
        candidate.rerooted = true;
        return candidate;
    }
    return plan;
}

std::string
SapPlan::summary() const
{
    std::ostringstream os;
    os << "root=" << root << (rerooted ? " (rotated)" : "")
       << " chain=" << rootChain.size() << " branches=" << branchCount
       << " hw_arrays=" << hwBranches.size() << " merged_links="
       << mergedLinks << " depth=" << maxDepth << " (orig "
       << originalMaxDepth << ")";
    return os.str();
}

} // namespace dadu::accel
