#include "accel/submodules.h"

#include <algorithm>

namespace dadu::accel {

void
PipelinedUnit::retire(sim::Cycle now)
{
    while (!inflight_.empty() && inflight_.front().ready <= now) {
        auto &em = inflight_.front();
        // All destinations must have room; otherwise stall in order
        // (the failed push records the back-pressure event).
        for (auto &[fifo, tok] : em.tokens) {
            if (fifo && !fifo->canPush()) {
                fifo->push(tok);
                return;
            }
        }
        for (auto &[fifo, tok] : em.tokens) {
            if (fifo)
                fifo->push(tok);
        }
        inflight_.pop_front();
    }
}

// ---------------------------------------------------------------
// RfSub
// ---------------------------------------------------------------

RfSub::RfSub(std::string name, SubmoduleTiming timing, TaskTable &tasks,
             const Routing &routing, TokenFifo *in)
    : PipelinedUnit(std::move(name), timing), tasks_(tasks),
      routing_(routing), in_(in)
{}

void
RfSub::tick(sim::Cycle now)
{
    retire(now);
    if (!canAccept(now) || in_->empty())
        return;
    const Token t = in_->pop();
    TaskState &st = tasks_.at(t.task);
    tasks_.core().rneaFwd(st, t.link, t.pass == 0 && zero_qdd_pass0);

    std::vector<std::pair<TokenFifo *, Token>> emits;
    // Broadcast to children (possibly through TDM-shared arrays).
    const auto &children = routing_.children[t.link];
    for (std::size_t c = 0; c < children.size(); ++c) {
        emits.emplace_back(child_in[c],
                           Token{t.task,
                                 static_cast<std::int16_t>(children[c]),
                                 t.pass});
    }
    emits.emplace_back(dtr, t);
    if (t.pass == 1 && df_ready)
        emits.emplace_back(df_ready, t);
    accept(now, std::move(emits));
}

bool
RfSub::idle() const
{
    return !busy() && in_->empty();
}

// ---------------------------------------------------------------
// RbSub
// ---------------------------------------------------------------

RbSub::RbSub(std::string name, SubmoduleTiming timing, TaskTable &tasks,
             const Routing &routing, TokenFifo *dtr_in, TokenFifo *btr_in)
    : PipelinedUnit(std::move(name), timing), tasks_(tasks),
      routing_(routing), dtr_in_(dtr_in), btr_in_(btr_in)
{}

void
RbSub::tick(sim::Cycle now)
{
    retire(now);
    // Reduce: collect child btr arrivals.
    while (btr_in_ && !btr_in_->empty())
        joins_.add(btr_in_->pop());
    if (!canAccept(now) || dtr_in_->empty())
        return;
    const Token t = dtr_in_->front();
    const int need =
        static_cast<int>(routing_.children[t.link].size());
    if (need > 0 && !joins_.ready(t, need))
        return;
    dtr_in_->pop();
    joins_.clear(t);

    TaskState &st = tasks_.at(t.task);
    tasks_.core().rneaBwd(st, t.link);

    std::vector<std::pair<TokenFifo *, Token>> emits;
    const int lam = routing_.robot->parent(t.link);
    if (lam != -1) {
        // Join keys are (task, link, pass) of the *consumer*, so the
        // backward transfer is tagged with the parent's link.
        emits.emplace_back(parent_btr,
                           Token{t.task, static_cast<std::int16_t>(lam),
                                 t.pass});
    } else if (done && t.pass == 0) {
        // Derivative passes complete at the root Db instead.
        emits.emplace_back(done, t);
    }
    if (t.pass == 1 && db_ready)
        emits.emplace_back(db_ready, t);
    accept(now, std::move(emits));
}

bool
RbSub::idle() const
{
    return !busy() && dtr_in_->empty() &&
           (!btr_in_ || btr_in_->empty());
}

// ---------------------------------------------------------------
// DfSub
// ---------------------------------------------------------------

DfSub::DfSub(std::string name, SubmoduleTiming timing, TaskTable &tasks,
             const Routing &routing, TokenFifo *ready_in)
    : PipelinedUnit(std::move(name), timing), tasks_(tasks),
      routing_(routing), ready_in_(ready_in)
{}

void
DfSub::tick(sim::Cycle now)
{
    retire(now);
    while (!ready_in_->empty()) {
        const Token t = ready_in_->pop();
        joins_.add(t);
        pending_.push_back(t);
    }
    if (!canAccept(now) || pending_.empty())
        return;
    // Deduplicate: only first-arrival entries trigger processing.
    const Token t = pending_.front();
    const int need =
        routing_.robot->parent(t.link) == -1 ? 1 : 2; // Rf + parent Df
    if (!joins_.ready(t, need))
        return;
    pending_.pop_front();
    // Drop later duplicates of the same key.
    joins_.clear(t);
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->task == t.task && it->link == t.link &&
            it->pass == t.pass)
            it = pending_.erase(it);
        else
            ++it;
    }

    TaskState &st = tasks_.at(t.task);
    tasks_.core().deltaFwd(st, t.link);

    std::vector<std::pair<TokenFifo *, Token>> emits;
    const auto &children = routing_.children[t.link];
    for (std::size_t c = 0; c < children.size(); ++c) {
        emits.emplace_back(child_in[c],
                           Token{t.task,
                                 static_cast<std::int16_t>(children[c]),
                                 t.pass});
    }
    emits.emplace_back(ddtr, t);
    accept(now, std::move(emits));
}

bool
DfSub::idle() const
{
    return !busy() && ready_in_->empty() && pending_.empty();
}

// ---------------------------------------------------------------
// DbSub
// ---------------------------------------------------------------

DbSub::DbSub(std::string name, SubmoduleTiming timing, TaskTable &tasks,
             const Routing &routing, TokenFifo *ready_in)
    : PipelinedUnit(std::move(name), timing), tasks_(tasks),
      routing_(routing), ready_in_(ready_in)
{}

void
DbSub::tick(sim::Cycle now)
{
    retire(now);
    while (!ready_in_->empty()) {
        const Token t = ready_in_->pop();
        joins_.add(t);
        pending_.push_back(t);
    }
    if (!canAccept(now) || pending_.empty())
        return;
    const Token t = pending_.front();
    // Requires: ddtr from Df, f-ready from Rb, one per child Db.
    const int need =
        2 + static_cast<int>(routing_.children[t.link].size());
    if (!joins_.ready(t, need))
        return;
    pending_.pop_front();
    joins_.clear(t);
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->task == t.task && it->link == t.link &&
            it->pass == t.pass)
            it = pending_.erase(it);
        else
            ++it;
    }

    TaskState &st = tasks_.at(t.task);
    tasks_.core().deltaBwd(st, t.link);

    std::vector<std::pair<TokenFifo *, Token>> emits;
    const int lam = routing_.robot->parent(t.link);
    if (lam != -1) {
        emits.emplace_back(parent_btr,
                           Token{t.task, static_cast<std::int16_t>(lam),
                                 t.pass});
    } else if (done) {
        emits.emplace_back(done, t);
    }
    accept(now, std::move(emits));
}

bool
DbSub::idle() const
{
    return !busy() && ready_in_->empty() && pending_.empty();
}

// ---------------------------------------------------------------
// MbSub
// ---------------------------------------------------------------

MbSub::MbSub(std::string name, SubmoduleTiming timing, TaskTable &tasks,
             const Routing &routing, TokenFifo *trigger_in)
    : PipelinedUnit(std::move(name), timing), tasks_(tasks),
      routing_(routing), trigger_in_(trigger_in)
{}

void
MbSub::tick(sim::Cycle now)
{
    retire(now);
    while (!trigger_in_->empty()) {
        const Token t = trigger_in_->pop();
        joins_.add(t);
        pending_.push_back(t);
    }
    if (!canAccept(now) || pending_.empty())
        return;
    const Token t = pending_.front();
    const int nchildren =
        static_cast<int>(routing_.children[t.link].size());
    const int need = std::max(1, nchildren);
    if (!joins_.ready(t, need))
        return;
    pending_.pop_front();
    joins_.clear(t);
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->task == t.task && it->link == t.link &&
            it->pass == t.pass)
            it = pending_.erase(it);
        else
            ++it;
    }

    TaskState &st = tasks_.at(t.task);
    tasks_.core().mminvBwd(st, t.link, out_m);

    std::vector<std::pair<TokenFifo *, Token>> emits;
    const int lam = routing_.robot->parent(t.link);
    if (lam != -1) {
        emits.emplace_back(parent_trigger,
                           Token{t.task,
                                 static_cast<std::int16_t>(lam),
                                 t.pass});
    } else if (out_m) {
        emits.emplace_back(done, t);
    } else {
        emits.emplace_back(root_turnaround, t);
    }
    if (!out_m && mf_dtr)
        emits.emplace_back(mf_dtr, t);
    accept(now, std::move(emits));
}

bool
MbSub::idle() const
{
    return !busy() && trigger_in_->empty() && pending_.empty();
}

// ---------------------------------------------------------------
// MfSub
// ---------------------------------------------------------------

MfSub::MfSub(std::string name, SubmoduleTiming timing, TaskTable &tasks,
             const Routing &routing, TokenFifo *ready_in)
    : PipelinedUnit(std::move(name), timing), tasks_(tasks),
      routing_(routing), ready_in_(ready_in)
{}

void
MfSub::tick(sim::Cycle now)
{
    retire(now);
    while (!ready_in_->empty()) {
        const Token t = ready_in_->pop();
        joins_.add(t);
        pending_.push_back(t);
    }
    if (!canAccept(now) || pending_.empty())
        return;
    const Token t = pending_.front();
    // dtr from Mb + token from parent Mf (or the root turnaround).
    if (!joins_.ready(t, 2))
        return;
    pending_.pop_front();
    joins_.clear(t);
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->task == t.task && it->link == t.link &&
            it->pass == t.pass)
            it = pending_.erase(it);
        else
            ++it;
    }

    TaskState &st = tasks_.at(t.task);
    tasks_.core().mminvFwd(st, t.link);

    std::vector<std::pair<TokenFifo *, Token>> emits;
    const auto &children = routing_.children[t.link];
    for (std::size_t c = 0; c < children.size(); ++c) {
        emits.emplace_back(child_in[c],
                           Token{t.task,
                                 static_cast<std::int16_t>(children[c]),
                                 t.pass});
    }
    emits.emplace_back(row_out, t);
    accept(now, std::move(emits));
}

bool
MfSub::idle() const
{
    return !busy() && ready_in_->empty() && pending_.empty();
}

} // namespace dadu::accel
