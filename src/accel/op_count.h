/**
 * @file
 * Per-submodule operation counting with the paper's sparsity and
 * constant optimizations (Section IV-A1, IV-A4, IV-B1).
 *
 * Every RTP submodule handles exactly one joint, so its datapath can
 * be specialized: one-hot motion subspaces eliminate the S products,
 * the joint transform has at most 8 distinct non-constant values for
 * a revolute joint, the 6x6 inertia has 8 distinct non-zero
 * constants, and ∆RNEA submodules process a number of Jacobian
 * columns proportional to their depth (incremental calculation).
 * These counts drive both the cycle model (initiation interval and
 * latency per submodule) and the FPGA resource model.
 */

#ifndef DADU_ACCEL_OP_COUNT_H
#define DADU_ACCEL_OP_COUNT_H

#include "algorithms/col_gating.h"
#include "model/robot_model.h"

namespace dadu::accel {

using model::RobotModel;

/** Fixed-point operation counts for one submodule's task. */
struct OpCount
{
    int mul = 0;   ///< multiplications
    int add = 0;   ///< additions/subtractions
    int recip = 0; ///< reciprocal operations (float-assisted)

    OpCount &
    operator+=(const OpCount &o)
    {
        mul += o.mul;
        add += o.add;
        recip += o.recip;
        return *this;
    }

    OpCount
    operator+(const OpCount &o) const
    {
        OpCount r = *this;
        r += o;
        return r;
    }

    OpCount
    operator*(int k) const
    {
        return OpCount{mul * k, add * k, recip * k};
    }
};

/** The six RTP submodule kinds (Figs. 6-8). */
enum class SubmoduleKind
{
    RneaFwd,    ///< Rf: X, v, a, f
    RneaBwd,    ///< Rb: re-update X, τ, backward f
    DeltaFwd,   ///< Df: incremental ∂v, ∂a, ∂f columns
    DeltaBwd,   ///< Db: ∂τ rows, backward ∂f columns
    MMinvBwd,   ///< Mb: I^A, U, D⁻¹, Minv/M rows, F
    MMinvFwd,   ///< Mf: P sweep, Minv completion
};

/** Human-readable kind name. */
const char *submoduleKindName(SubmoduleKind k);

/**
 * Operation count for the submodule of @p kind serving link @p link.
 *
 * @param robot the robot model.
 * @param link  link index.
 * @param kind  submodule kind.
 *
 * Depth-dependent kinds (Delta*, MMinv*) use the link's depth and
 * subtree size from the model. Counts assume the sparsity-optimized
 * datapaths of Section IV.
 *
 * @param plan optional ∆-column gating: the Df/Db per-column terms
 *             count only live path columns (the columns the gated
 *             functional core actually streams). Null or dense plans
 *             price dense; non-∆ kinds ignore the plan (the BF
 *             pipelines and the RNEA passes stay dense).
 */
OpCount submoduleOps(const RobotModel &robot, int link, SubmoduleKind kind,
                     const algo::ColumnPlan *plan = nullptr);

/**
 * Cycle model for a pipelined submodule with @p units parallel
 * multiplier lanes (each lane one MAC per cycle).
 */
struct SubmoduleTiming
{
    int units = 1;   ///< multiplier lanes allocated
    int ii = 1;      ///< initiation interval (cycles between tasks)
    int latency = 1; ///< input-to-output delay in cycles
};

/**
 * Allocate lanes so the submodule meets @p target_ii, then derive the
 * achieved initiation interval and latency.
 *
 * Lanes are capped at @p max_units; if the target cannot be met the
 * submodule becomes the array bottleneck with a larger II — the
 * "deeper submodules inevitably become the performance bottleneck"
 * effect of Section IV-A4.
 */
SubmoduleTiming allocateTiming(const OpCount &ops, int target_ii,
                               int max_units = 64);

/**
 * Timing of a submodule whose lanes were allocated for @p dense_ops
 * (the configured bitstream is sized for dense batches) but which
 * only streams @p live_ops this batch (column gating): same unit
 * count, shorter initiation interval and first-output latency.
 */
SubmoduleTiming gatedTiming(const OpCount &dense_ops,
                            const OpCount &live_ops, int target_ii,
                            int max_units = 64);

} // namespace dadu::accel

#endif // DADU_ACCEL_OP_COUNT_H
