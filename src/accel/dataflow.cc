#include "accel/dataflow.h"

#include <cassert>
#include <deque>

#include "sim/kernel.h"

namespace dadu::accel {

namespace {

/** Mirror the computed upper triangle of a symmetric matrix. */
MatrixX
symmetrized(const MatrixX &m)
{
    MatrixX out = m;
    for (std::size_t r = 0; r < out.rows(); ++r)
        for (std::size_t c = r + 1; c < out.cols(); ++c)
            out(c, r) = out(r, c);
    return out;
}

} // namespace

// -----------------------------------------------------------------
// Input Stream Module
// -----------------------------------------------------------------

class InputStream : public sim::Module
{
  public:
    InputStream(TaskTable &tasks, const TaskInput *inputs,
                std::size_t count, FunctionType fn,
                const RobotModel &robot, TokenFifo *rf_root,
                std::vector<TokenFifo *> leaf_mb, int issue_ii,
                std::vector<char> &done_flags,
                std::vector<std::uint64_t> &issue_cycles)
        : Module("input_stream"), tasks_(tasks), inputs_(inputs),
          count_(count), fn_(fn), robot_(robot), rf_root_(rf_root),
          leaf_mb_(std::move(leaf_mb)), issue_ii_(issue_ii),
          done_(done_flags), issue_cycles_(issue_cycles)
    {}

    void
    tick(sim::Cycle now) override
    {
        if (next_ >= static_cast<int>(count_))
            return;
        if (now < next_time_)
            return;
        // Bounded task buffer: wait for the slot to drain.
        if (next_ >= tasks_.poolSize() && !done_[next_ - tasks_.poolSize()])
            return;

        const bool use_fb = fn_ != FunctionType::M &&
                            fn_ != FunctionType::Minv;
        const bool use_bf = fn_ == FunctionType::M ||
                            fn_ == FunctionType::Minv ||
                            fn_ == FunctionType::FD ||
                            fn_ == FunctionType::DeltaFD;
        if (use_fb && !rf_root_->canPush())
            return;
        if (use_bf) {
            for (TokenFifo *f : leaf_mb_) {
                if (!f->canPush())
                    return;
            }
        }

        TaskState &st = tasks_.at(next_);
        tasks_.core().initTask(st, inputs_[next_]);
        if (fn_ == FunctionType::ID || fn_ == FunctionType::DeltaID ||
            fn_ == FunctionType::DeltaiFD) {
            st.qdd = inputs_[next_].qdd_or_tau;
        }
        st.issue_cycle = now;
        issue_cycles_[next_] = now;

        const std::int8_t pass =
            (fn_ == FunctionType::DeltaID || fn_ == FunctionType::DeltaiFD)
                ? 1
                : 0;
        if (use_fb) {
            // Single-root robots (asserted by the builder).
            rf_root_->push(Token{next_, 0, pass});
        }
        if (use_bf) {
            int li = 0;
            for (int l = 0; l < robot_.nb(); ++l) {
                if (robot_.children(l).empty()) {
                    leaf_mb_[li]->push(
                        Token{next_, static_cast<std::int16_t>(l), 0});
                    ++li;
                }
            }
        }
        ++next_;
        next_time_ = now + issue_ii_;
    }

    bool
    idle() const override
    {
        return next_ >= static_cast<int>(count_);
    }

  private:
    TaskTable &tasks_;
    const TaskInput *inputs_;
    std::size_t count_;
    FunctionType fn_;
    const RobotModel &robot_;
    TokenFifo *rf_root_;
    std::vector<TokenFifo *> leaf_mb_;
    int issue_ii_;
    std::vector<char> &done_;
    std::vector<std::uint64_t> &issue_cycles_;
    int next_ = 0;
    sim::Cycle next_time_ = 0;
};

// -----------------------------------------------------------------
// Schedule + Feedback Module
// -----------------------------------------------------------------

class ScheduleModule : public sim::Module
{
  public:
    ScheduleModule(TaskTable &tasks, FunctionType fn,
                   const RobotModel &robot, const AccelConfig &cfg,
                   TokenFifo *fb_done, TokenFifo *m_done,
                   TokenFifo *row_out, TokenFifo *rf_root,
                   TaskOutput *results, std::size_t count,
                   std::vector<char> &done_flags,
                   std::vector<std::uint64_t> &done_cycles)
        : Module("schedule"), tasks_(tasks), fn_(fn), robot_(robot),
          cfg_(cfg), fb_done_(fb_done), m_done_(m_done),
          row_out_(row_out), rf_root_(rf_root), results_(results),
          count_(count), done_(done_flags), done_cycles_(done_cycles),
          progress_(count)
    {}

    void
    tick(sim::Cycle now) override
    {
        drain(now);
        // Single-server compute queue (vector subtraction + matrix
        // products of steps ③ and ⑥).
        if (!executing_ && !jobs_.empty() && now >= free_at_) {
            current_ = jobs_.front();
            jobs_.pop_front();
            executing_ = true;
            free_at_ = now + cost(current_);
        }
        if (executing_ && now >= free_at_) {
            if (!complete(current_, now))
                return; // feedback FIFO full; retry next cycle
            executing_ = false;
        }
    }

    bool
    idle() const override
    {
        return doneCount_ == count_ && jobs_.empty() && !executing_;
    }

  private:
    enum class JobKind { Matvec, Matmul };

    struct Job
    {
        int task;
        JobKind kind;
    };

    struct Progress
    {
        bool fb0 = false;
        bool fb1 = false;
        bool bf = false;
        int rows = 0;
        bool fd_scheduled = false;
        bool dfd_scheduled = false;
    };

    int
    cost(const Job &job) const
    {
        const int nv = robot_.nv();
        const int lanes = cfg_.schedule_units;
        if (job.kind == JobKind::Matvec)
            return (nv * nv + lanes - 1) / lanes + 4;
        // Step ⑥ matmul: two nv x nv x live products — a gated task
        // prices only its live columns.
        const algo::ColumnPlan &p = tasks_.at(job.task).plan;
        const int live = p.dense() ? nv : p.liveCount();
        return (2 * nv * nv * live + lanes - 1) / lanes + 4;
    }

    void
    drain(sim::Cycle now)
    {
        const int nb = robot_.nb();
        while (!fb_done_->empty()) {
            const Token t = fb_done_->pop();
            Progress &p = progress_[t.task];
            if (t.pass == 0)
                p.fb0 = true;
            else
                p.fb1 = true;
            advance(t.task, now);
        }
        while (!m_done_->empty()) {
            const Token t = m_done_->pop();
            progress_[t.task].bf = true;
            advance(t.task, now);
        }
        while (!row_out_->empty()) {
            const Token t = row_out_->pop();
            Progress &p = progress_[t.task];
            if (++p.rows == nb)
                p.bf = true;
            advance(t.task, now);
        }
    }

    /** Advance the per-task micro-instruction state machine. */
    void
    advance(int task, sim::Cycle now)
    {
        Progress &p = progress_[task];
        TaskState &st = tasks_.at(task);
        switch (fn_) {
          case FunctionType::ID:
            if (p.fb0) {
                st.out.tau = st.tau;
                finish(task, now);
            }
            break;
          case FunctionType::DeltaID:
            if (p.fb1) {
                st.out.tau = st.tau;
                st.out.dtau_dq = st.dtau_dq;
                st.out.dtau_dqd = st.dtau_dqd;
                finish(task, now);
            }
            break;
          case FunctionType::M:
            if (p.bf) {
                st.out.m = st.mwork;
                finish(task, now);
            }
            break;
          case FunctionType::Minv:
            if (p.bf) {
                st.out.minv = symmetrized(st.mwork);
                finish(task, now);
            }
            break;
          case FunctionType::FD:
            if (p.fb0 && p.bf && !p.fd_scheduled) {
                p.fd_scheduled = true;
                jobs_.push_back({task, JobKind::Matvec});
            }
            break;
          case FunctionType::DeltaFD:
            if (p.fb0 && p.bf && !p.fd_scheduled) {
                p.fd_scheduled = true;
                jobs_.push_back({task, JobKind::Matvec});
            }
            if (p.fb1 && !p.dfd_scheduled) {
                p.dfd_scheduled = true;
                jobs_.push_back({task, JobKind::Matmul});
            }
            break;
          case FunctionType::DeltaiFD:
            if (p.fb1 && !p.dfd_scheduled) {
                p.dfd_scheduled = true;
                jobs_.push_back({task, JobKind::Matmul});
            }
            break;
        }
    }

    /** Completion action; false if a feedback push must be retried. */
    bool
    complete(const Job &job, sim::Cycle now)
    {
        TaskState &st = tasks_.at(job.task);
        if (job.kind == JobKind::Matvec) {
            tasks_.core().scheduleFd(st);
            if (fn_ == FunctionType::FD) {
                st.out.qdd = st.qdd;
                finish(job.task, now);
                return true;
            }
            // ∆FD: Feedback Module writes the task back to the input
            // stream for the second FB pass (Fig. 14f).
            if (!rf_root_->canPush())
                return false;
            rf_root_->push(Token{job.task, 0, 1});
            return true;
        }
        tasks_.core().scheduleDeltaFd(st);
        st.out.qdd = st.qdd;
        if (fn_ == FunctionType::DeltaFD)
            st.out.minv = symmetrized(st.mwork);
        finish(job.task, now);
        return true;
    }

    void
    finish(int task, sim::Cycle now)
    {
        if (done_[task])
            return;
        results_[task] = tasks_.at(task).out;
        done_[task] = 1;
        done_cycles_[task] = now;
        ++doneCount_;
        tasks_.at(task).active = false;
    }

    TaskTable &tasks_;
    FunctionType fn_;
    const RobotModel &robot_;
    const AccelConfig &cfg_;
    TokenFifo *fb_done_;
    TokenFifo *m_done_;
    TokenFifo *row_out_;
    TokenFifo *rf_root_;
    TaskOutput *results_;
    std::size_t count_;
    std::vector<char> &done_;
    std::vector<std::uint64_t> &done_cycles_;
    std::vector<Progress> progress_;
    std::deque<Job> jobs_;
    Job current_{};
    bool executing_ = false;
    sim::Cycle free_at_ = 0;
    std::size_t doneCount_ = 0;
};

// -----------------------------------------------------------------
// AccelSim
// -----------------------------------------------------------------

struct AccelSim::Impl
{
    const RobotModel &robot;
    SapPlan plan;
    AccelConfig cfg;
    FunctionalCore core;

    Impl(const RobotModel &r, const SapPlan &p, const AccelConfig &c)
        : robot(r), plan(p), cfg(c), core(r, c.numeric)
    {}
};

AccelSim::AccelSim(const RobotModel &robot, const SapPlan &plan,
                   const AccelConfig &cfg)
    : impl_(std::make_unique<Impl>(robot, plan, cfg))
{
    assert(robot.children(-1).size() == 1 &&
           "the accelerator model expects a single root link");
}

AccelSim::~AccelSim() = default;

void
AccelSim::run(FunctionType fn, const TaskInput *inputs, std::size_t count,
              TaskOutput *outputs, BatchStats *stats)
{
    const RobotModel &robot = impl_->robot;
    const AccelConfig &cfg = impl_->cfg;
    const int nb = robot.nb();
    const int n = static_cast<int>(count);

    sim::Kernel kernel;
    TaskTable tasks(impl_->core,
                    std::min<int>(cfg.task_pool, std::max(1, n)));

    Routing routing;
    routing.robot = &robot;
    routing.rep = impl_->plan.rep;
    routing.children.resize(nb);
    for (int i = 0; i < nb; ++i)
        routing.children[i] = robot.children(i);

    // Channels, per representative link.
    const std::size_t cap = cfg.fifo_capacity;
    std::vector<TokenFifo *> rf_in(nb, nullptr), rb_dtr(nb, nullptr),
        rb_btr(nb, nullptr), df_ready(nb, nullptr),
        db_ready(nb, nullptr), mb_in(nb, nullptr), mf_ready(nb, nullptr);
    for (int i = 0; i < nb; ++i) {
        if (routing.rep[i] != i)
            continue;
        const std::string t = std::to_string(i);
        rf_in[i] = kernel.makeFifo<Token>("rf_in" + t, cap);
        rb_dtr[i] = kernel.makeFifo<Token>("rb_dtr" + t, cap);
        rb_btr[i] = kernel.makeFifo<Token>("rb_btr" + t, cap);
        df_ready[i] = kernel.makeFifo<Token>("df_rdy" + t, cap);
        db_ready[i] = kernel.makeFifo<Token>("db_rdy" + t, cap);
        mb_in[i] = kernel.makeFifo<Token>("mb_in" + t, cap);
        mf_ready[i] = kernel.makeFifo<Token>("mf_rdy" + t, cap);
    }
    auto *fb_done = kernel.makeFifo<Token>("fb_done", cap);
    auto *m_done = kernel.makeFifo<Token>("m_done", cap);
    auto *row_out = kernel.makeFifo<Token>("row_out", cap);

    // Submodules.
    std::vector<std::unique_ptr<sim::Module>> owned;
    const bool use_delta = fn == FunctionType::DeltaID ||
                           fn == FunctionType::DeltaFD ||
                           fn == FunctionType::DeltaiFD;
    const bool use_fb = fn != FunctionType::M && fn != FunctionType::Minv;
    const bool use_bf = fn == FunctionType::M ||
                        fn == FunctionType::Minv ||
                        fn == FunctionType::FD ||
                        fn == FunctionType::DeltaFD;
    const bool zero_qdd = fn == FunctionType::FD ||
                          fn == FunctionType::DeltaFD;

    // Timing model for the ∆ submodules: when every request in the
    // batch is gated, size the Df/Db token streams for the UNION of
    // the batch's live columns (heterogeneous masks price at their
    // union; one dense request prices the whole batch dense).
    algo::ColumnPlan timing_plan;
    const algo::ColumnPlan *tplan = nullptr;
    if (use_delta && n > 0) {
        const int nv = robot.nv();
        std::vector<char> live(static_cast<std::size_t>(nv), 0);
        bool all_gated = true;
        algo::ColumnPlan tmp;
        for (int t = 0; t < n && all_gated; ++t) {
            const TaskInput &in = inputs[t];
            if (in.gating == algo::GatingMode::None ||
                in.seed_cols.empty() ||
                !tmp.resolve(in.gating, in.seed_cols, nv) || tmp.dense()) {
                all_gated = false;
                break;
            }
            for (int c : tmp.cols())
                live[c] = 1;
        }
        if (all_gated) {
            std::vector<int> seed;
            for (int c = 0; c < nv; ++c)
                if (live[c])
                    seed.push_back(c);
            if (timing_plan.resolve(algo::GatingMode::Simple, seed, nv) &&
                !timing_plan.dense())
                tplan = &timing_plan;
        }
    }

    auto timing = [&](int link, SubmoduleKind kind) {
        const OpCount dense_ops = submoduleOps(robot, link, kind);
        if (tplan == nullptr)
            return allocateTiming(dense_ops, cfg.target_ii, cfg.max_units);
        // Lanes stay sized for dense batches (the bitstream); gated
        // batches stream fewer column-ops through the same lanes.
        return gatedTiming(dense_ops,
                           submoduleOps(robot, link, kind, tplan),
                           cfg.target_ii, cfg.max_units);
    };

    for (int i = 0; i < nb; ++i) {
        if (routing.rep[i] != i)
            continue;
        const std::string t = std::to_string(i);
        if (use_fb) {
            auto rf = std::make_unique<RfSub>(
                "Rf" + t, timing(i, SubmoduleKind::RneaFwd), tasks,
                routing, rf_in[i]);
            rf->zero_qdd_pass0 = zero_qdd;
            rf->dtr = rb_dtr[i];
            rf->df_ready = use_delta ? df_ready[i] : nullptr;
            for (int c : routing.children[i])
                rf->child_in.push_back(rf_in[routing.rep[c]]);
            kernel.addModule(rf.get());
            owned.push_back(std::move(rf));

            auto rb = std::make_unique<RbSub>(
                "Rb" + t, timing(i, SubmoduleKind::RneaBwd), tasks,
                routing, rb_dtr[i], rb_btr[i]);
            const int lam = robot.parent(i);
            rb->parent_btr = lam == -1 ? nullptr
                                       : rb_btr[routing.rep[lam]];
            rb->done = lam == -1 ? fb_done : nullptr;
            rb->db_ready = use_delta ? db_ready[i] : nullptr;
            kernel.addModule(rb.get());
            owned.push_back(std::move(rb));

            if (use_delta) {
                auto df = std::make_unique<DfSub>(
                    "Df" + t, timing(i, SubmoduleKind::DeltaFwd), tasks,
                    routing, df_ready[i]);
                df->ddtr = db_ready[i];
                for (int c : routing.children[i])
                    df->child_in.push_back(df_ready[routing.rep[c]]);
                kernel.addModule(df.get());
                owned.push_back(std::move(df));

                auto db = std::make_unique<DbSub>(
                    "Db" + t, timing(i, SubmoduleKind::DeltaBwd), tasks,
                    routing, db_ready[i]);
                db->parent_btr = lam == -1 ? nullptr
                                           : db_ready[routing.rep[lam]];
                db->done = lam == -1 ? fb_done : nullptr;
                kernel.addModule(db.get());
                owned.push_back(std::move(db));
            }
        }
        if (use_bf) {
            auto mb = std::make_unique<MbSub>(
                "Mb" + t, timing(i, SubmoduleKind::MMinvBwd), tasks,
                routing, mb_in[i]);
            const int lam = robot.parent(i);
            mb->out_m = fn == FunctionType::M;
            mb->parent_trigger =
                lam == -1 ? nullptr : mb_in[routing.rep[lam]];
            mb->root_turnaround =
                lam == -1 ? mf_ready[routing.rep[i]] : nullptr;
            mb->done = lam == -1 ? m_done : nullptr;
            mb->mf_dtr = fn == FunctionType::M ? nullptr : mf_ready[i];
            kernel.addModule(mb.get());
            owned.push_back(std::move(mb));

            if (fn != FunctionType::M) {
                auto mf = std::make_unique<MfSub>(
                    "Mf" + t, timing(i, SubmoduleKind::MMinvFwd), tasks,
                    routing, mf_ready[i]);
                mf->row_out = row_out;
                for (int c : routing.children[i])
                    mf->child_in.push_back(mf_ready[routing.rep[c]]);
                kernel.addModule(mf.get());
                owned.push_back(std::move(mf));
            }
        }
    }

    // Leaf Mb channels for the input stream (backward pipelines start
    // at the leaves, Fig. 8).
    std::vector<TokenFifo *> leaf_mb;
    if (use_bf) {
        for (int l = 0; l < nb; ++l) {
            if (robot.children(l).empty())
                leaf_mb.push_back(mb_in[routing.rep[l]]);
        }
    }

    std::vector<char> done_flags(n, 0);
    std::vector<std::uint64_t> issue_cycles(n, 0), done_cycles(n, 0);

    InputStream input(tasks, inputs, count, fn, robot,
                      use_fb ? rf_in[routing.rep[0]] : nullptr, leaf_mb,
                      cfg.input_issue_ii, done_flags, issue_cycles);
    ScheduleModule sched(tasks, fn, robot, cfg, fb_done, m_done, row_out,
                         use_fb ? rf_in[routing.rep[0]] : nullptr,
                         outputs, count, done_flags, done_cycles);
    kernel.addModule(&input);
    kernel.addModule(&sched);

    const sim::Cycle cycles = kernel.run(500'000'000);

    if (stats) {
        stats->cycles = cycles;
        const double freq_hz = cfg.freq_mhz * 1e6;
        stats->total_us = static_cast<double>(cycles) / freq_hz * 1e6;
        stats->throughput_mtasks =
            n / (static_cast<double>(cycles) / freq_hz) / 1e6;
        double lat = 0.0;
        for (int t = 0; t < n; ++t)
            lat += static_cast<double>(done_cycles[t] - issue_cycles[t]);
        stats->latency_us = n ? lat / n / freq_hz * 1e6 : 0.0;
        stats->fifo_high_water = 0;
        stats->fifo_stalls = 0;
        for (const auto &f : kernel.fifos()) {
            stats->fifo_high_water =
                std::max(stats->fifo_high_water, f->highWater());
            stats->fifo_stalls += f->fullStalls();
        }
    }
}

} // namespace dadu::accel
