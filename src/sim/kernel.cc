#include "sim/kernel.h"

namespace dadu::sim {

Cycle
Kernel::run(Cycle max_cycles)
{
    const Cycle start = now_;
    while (now_ - start < max_cycles) {
        for (Module *m : modules_)
            m->tick(now_);
        for (auto &f : fifos_)
            f->commit();
        ++now_;
        if (quiescent())
            break;
    }
    return now_ - start;
}

bool
Kernel::quiescent() const
{
    for (const Module *m : modules_) {
        if (!m->idle())
            return false;
    }
    for (const auto &f : fifos_) {
        if (!f->quiescent())
            return false;
    }
    return true;
}

} // namespace dadu::sim
