/**
 * @file
 * Cycle-driven simulation kernel.
 *
 * The accelerator model is a set of Modules connected by bounded
 * FIFO channels (the paper's "FIFO streams", Section IV-A). The
 * kernel ticks every module once per cycle and then commits FIFO
 * pushes, giving two-phase semantics: a token pushed in cycle t
 * becomes visible to its consumer in cycle t+1, independent of the
 * order modules are ticked in. This mirrors registered channel
 * outputs in the RTL and makes the simulation deterministic.
 */

#ifndef DADU_SIM_KERNEL_H
#define DADU_SIM_KERNEL_H

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace dadu::sim {

/** Simulation time in clock cycles. */
using Cycle = std::uint64_t;

/** Base class for FIFO channels; see Fifo<T>. */
class FifoBase
{
  public:
    explicit FifoBase(std::string name, std::size_t capacity)
        : name_(std::move(name)), capacity_(capacity)
    {}

    virtual ~FifoBase() = default;

    const std::string &name() const { return name_; }
    std::size_t capacity() const { return capacity_; }

    /** Current visible occupancy. */
    virtual std::size_t size() const = 0;

    /** Make this cycle's pushes visible (called by the kernel). */
    virtual void commit() = 0;

    /** True if no visible or staged tokens remain. */
    virtual bool quiescent() const = 0;

    /** Peak visible occupancy over the run. */
    std::size_t highWater() const { return high_water_; }

    /** Total tokens pushed over the run. */
    std::uint64_t totalPushes() const { return total_pushes_; }

    /** Number of push attempts rejected because the FIFO was full. */
    std::uint64_t fullStalls() const { return full_stalls_; }

  protected:
    std::string name_;
    std::size_t capacity_;
    std::size_t high_water_ = 0;
    std::uint64_t total_pushes_ = 0;
    std::uint64_t full_stalls_ = 0;
};

/**
 * Bounded typed FIFO channel with deferred-visibility pushes.
 */
template <typename T>
class Fifo : public FifoBase
{
  public:
    Fifo(std::string name, std::size_t capacity)
        : FifoBase(std::move(name), capacity)
    {}

    /**
     * Attempt to push a token (visible next cycle).
     * @return false if the channel is full (producer must stall).
     */
    bool
    push(const T &token)
    {
        if (queue_.size() + staged_.size() >= capacity_) {
            ++full_stalls_;
            return false;
        }
        staged_.push_back(token);
        ++total_pushes_;
        return true;
    }

    /** Whether a push would succeed this cycle. */
    bool
    canPush() const
    {
        return queue_.size() + staged_.size() < capacity_;
    }

    bool empty() const { return queue_.empty(); }

    /** Front token; undefined if empty. */
    const T &front() const { return queue_.front(); }

    /** Remove and return the front token. */
    T
    pop()
    {
        T t = queue_.front();
        queue_.pop_front();
        return t;
    }

    std::size_t size() const override { return queue_.size(); }

    void
    commit() override
    {
        for (auto &t : staged_)
            queue_.push_back(std::move(t));
        staged_.clear();
        high_water_ = std::max(high_water_, queue_.size());
    }

    bool
    quiescent() const override
    {
        return queue_.empty() && staged_.empty();
    }

  private:
    std::deque<T> queue_;
    std::deque<T> staged_;
};

/** A clocked hardware module. */
class Module
{
  public:
    explicit Module(std::string name) : name_(std::move(name)) {}

    virtual ~Module() = default;

    const std::string &name() const { return name_; }

    /** Advance one clock cycle. */
    virtual void tick(Cycle now) = 0;

    /** True if the module holds no in-flight work. */
    virtual bool idle() const = 0;

  private:
    std::string name_;
};

/**
 * The clocked kernel: owns channels, ticks modules, commits channels,
 * and detects quiescence.
 */
class Kernel
{
  public:
    /** Register a module (not owned; must outlive the kernel run). */
    void addModule(Module *m) { modules_.push_back(m); }

    /** Create and own a FIFO channel. */
    template <typename T>
    Fifo<T> *
    makeFifo(const std::string &name, std::size_t capacity)
    {
        auto f = std::make_unique<Fifo<T>>(name, capacity);
        Fifo<T> *raw = f.get();
        fifos_.push_back(std::move(f));
        return raw;
    }

    /**
     * Run until every module is idle and every channel quiescent, or
     * until @p max_cycles elapse.
     * @return the number of cycles simulated in this call.
     */
    Cycle run(Cycle max_cycles = 100'000'000);

    /** Current simulation time. */
    Cycle now() const { return now_; }

    const std::vector<std::unique_ptr<FifoBase>> &fifos() const
    {
        return fifos_;
    }

  private:
    bool quiescent() const;

    std::vector<Module *> modules_;
    std::vector<std::unique_ptr<FifoBase>> fifos_;
    Cycle now_ = 0;
};

} // namespace dadu::sim

#endif // DADU_SIM_KERNEL_H
