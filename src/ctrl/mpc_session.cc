#include "ctrl/mpc_session.h"

#include <algorithm>

#include "app/scheduler.h"
#include "perf/timing.h"
#include "runtime/sched/policy.h"

namespace dadu::ctrl {

using runtime::DynamicsServer;
using runtime::FunctionType;

MpcSession::MpcSession(const RobotModel &robot, Scenario scenario,
                       IlqrOptions options, Config config)
    : robot_(robot), scenario_(std::move(scenario)), cfg_(config),
      solver_(robot, scenario_.problem, options), channel_(*this)
{
    // A negative slack would tag every job with a deadline in the
    // past; clamp to "untagged bulk" instead.
    cfg_.deadline_slack = std::max(0.0, cfg_.deadline_slack);
}

MpcSession::MpcSession(const RobotModel &robot, Scenario scenario,
                       IlqrOptions options)
    : MpcSession(robot, std::move(scenario), options, Config{})
{}

MpcSession::MpcSession(const RobotModel &robot, Scenario scenario)
    : MpcSession(robot, std::move(scenario), IlqrOptions{}, Config{})
{}

void
MpcSession::ServerChannel::run(FunctionType fn,
                               runtime::DynamicsRequest *requests,
                               std::size_t count,
                               runtime::DynamicsResult *results)
{
    DynamicsServer &srv = *server;
    MpcSession &s = session_;
    if (tick_failed)
        return; // tick already degraded: skip the rest of its jobs
    // Live-column-aware weight: a gated ∆FD linearization batch is
    // cheaper than a dense one, and both the deadline prediction and
    // the per-task calibration must price it that way or every
    // deadline derived from a gated tick would be inflated. The
    // solver builds mask-uniform batches, so request[0] speaks for
    // the batch.
    const int nv0 =
        count > 0 ? static_cast<int>(requests[0].qd.size()) : 0;
    const double fn_weight =
        count > 0 ? runtime::sched::functionWeight(
                        fn,
                        algo::gatedLiveCount(requests[0].gating,
                                             requests[0].seed_cols, nv0),
                        nv0)
                  : runtime::sched::functionWeight(fn);
    const double t0 = perf::nowUs();

    runtime::sched::JobTag tag;
    if (s.cfg_.deadline_slack > 0.0 && s.task_us_ > 0.0) {
        // Queueing delay ahead of this job: the least-loaded lane is
        // where kLeastLoaded (and the sharding water-filling's first
        // shard) will put it.
        double queued = srv.laneLoadWeight(0);
        for (int l = 1; l < srv.backendCount(); ++l)
            queued = std::min(queued, srv.laneLoadWeight(l));
        tag.deadline_us =
            t0 + s.cfg_.deadline_slack *
                     app::predictedAdmissionUs(
                         queued, static_cast<int>(count), 1,
                         s.task_us_, 0.0, fn_weight);
    }

    int job;
    int lanes_used = 1;
    if (count > 1 && s.cfg_.shard_batches && srv.backendCount() > 1) {
        job = srv.submitSharded(fn, requests, count, results, tag);
        lanes_used = srv.backendCount();
    } else {
        job = srv.submit(fn, requests, count, results,
                         DynamicsServer::kLeastLoaded, tag);
    }
    srv.wait(job);

    ++s.stats_.jobs;
    const runtime::JobOutcome outcome = srv.jobOutcome(job);
    if (outcome != runtime::JobOutcome::Completed) {
        // Shed or failed: results were never written. Mark the tick
        // degraded and read nothing — no deadline bucket (the server
        // kept it out of its own buckets too), no calibration.
        tick_failed = true;
        if (outcome == runtime::JobOutcome::Rejected)
            ++s.stats_.rejected_jobs;
        else
            ++s.stats_.failed_jobs;
        return;
    }
    if (tag.deadline_us != runtime::sched::kNoDeadline) {
        ++s.stats_.tagged_jobs;
        if (srv.jobMissedDeadline(job))
            ++s.stats_.deadline_misses;
        else
            ++s.stats_.deadline_met;
    }

    // Calibrate the per-task wall time from multi-point batches (the
    // deadline is judged on the wall clock, so wall time — queueing
    // included, which loosens the next prediction — is the right
    // basis; modeled backend time is not). A sharded batch ran its
    // shards concurrently on lanes_used lanes, so its wall time
    // reflects count/lanes_used SERIAL tasks — scale back up or the
    // per-task estimate (and every deadline derived from it) shrinks
    // by the lane count.
    if (count > 1) {
        const double wall = perf::nowUs() - t0;
        if (wall > 0.0)
            s.task_us_ = wall * lanes_used /
                         (static_cast<double>(count) * fn_weight);
    }
}

void
MpcSession::attachTrace(runtime::DynamicsServer &server,
                        const char *name)
{
    runtime::obs::TraceBuffer *buf = server.traceBuffer();
    trace_ = buf ? buf->claimRing(name) : nullptr;
    solver_.setTraceRing(trace_);
}

IlqrSummary
MpcSession::start(runtime::DynamicsServer &server)
{
    channel_.server = &server;
    channel_.tick_failed = false;
    solver_.reset(scenario_.q0, scenario_.qd0);
    const IlqrSummary summary =
        solver_.solve(channel_, scenario_.q0, scenario_.qd0);
    stats_.horizon_cost = solver_.cost();
    return summary;
}

const VectorX &
MpcSession::tick(runtime::DynamicsServer &server, const VectorX &q,
                 const VectorX &qd)
{
    // Shift-at-END ordering: tick t solves with controls and
    // references already advanced t times (by the previous ticks),
    // so the horizon references are time-aligned with the measured
    // state — shifting before the solve instead would make every
    // solve track references one knot in the future (a systematic
    // phase lead on periodic scenarios). The first tick after
    // start() re-anchors the primed time-0 problem unshifted.
    channel_.server = &server;
    channel_.tick_failed = false;
    if (trace_)
        trace_->record(runtime::obs::EventKind::TickBegin, perf::nowUs(),
                       -1, -1, FunctionType::FD,
                       static_cast<std::uint32_t>(stats_.ticks),
                       stats_.horizon_cost);
    // Save the incoming (previous tick's shifted) plan before the
    // solver mutates it: the graceful-degradation fallback if a job
    // of this tick is shed or failed. Element copies reuse capacity,
    // so the steady path does not allocate.
    const int knots = solver_.problem().knots;
    if (u_prev_.size() < static_cast<std::size_t>(knots))
        u_prev_.resize(knots);
    for (int k = 0; k < knots; ++k)
        u_prev_[k] = solver_.u(k);
    solver_.setInitialState(q, qd);
    solver_.rolloutNominal(channel_);
    for (int i = 0;
         i < cfg_.iterations_per_tick && !channel_.tick_failed; ++i)
        solver_.iterate(channel_);
    ++stats_.ticks;
    if (channel_.tick_failed) {
        // Degraded tick: discard the partial solve and re-apply the
        // warm-started previous plan. It still shifts forward below,
        // so the controller keeps emitting time-aligned (if stale)
        // controls; horizon_cost keeps its last good value.
        ++stats_.degraded_ticks;
        for (int k = 0; k < knots; ++k)
            solver_.control(k) = u_prev_[k];
    } else {
        stats_.horizon_cost = solver_.cost();
    }
    if (trace_)
        trace_->record(runtime::obs::EventKind::TickEnd, perf::nowUs(),
                       -1, -1, FunctionType::FD,
                       channel_.tick_failed ? 1u : 0u,
                       stats_.horizon_cost);
    // Copy the applied control out BEFORE the warm-start shift
    // overwrites u(0) for the next tick.
    u0_ = solver_.u(0);
    solver_.shiftControls();
    solver_.shiftReferences();
    return u0_;
}

} // namespace dadu::ctrl
