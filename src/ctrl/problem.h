/**
 * @file
 * Optimal-control problem definition of the trajectory-optimization
 * subsystem.
 *
 * One OcpProblem is a quadratic tracking objective over an N-knot
 * horizon of the whole-body dynamics: configuration errors are
 * measured in the tangent space (RobotModel::difference, quaternion
 * log map on floating bases), so the cost, its gradients and the
 * Riccati value function all live in the same nv-dimensional
 * coordinates as velocities and the analytical ∆FD derivatives.
 *
 *   J = Σ_k ½·wq‖q_k ⊖ q_ref_k‖² + ½·wqd‖q̇_k − q̇_ref_k‖²
 *           + ½·wu‖u_k − u_ref_k‖²
 *     + ½·wq_term‖q_N ⊖ q_ref_N‖² + ½·wqd_term‖q̇_N − q̇_ref_N‖²
 *
 * The discrete dynamics are explicit Euler on the manifold:
 * q_{k+1} = q_k ⊕ dt·q̇_k,  q̇_{k+1} = q̇_k + dt·q̈(q_k, q̇_k, u_k),
 * whose tangent-space linearization is assembled from one batched
 * ∆FD evaluation per knot (∂q̈/∂q, ∂q̈/∂q̇, and ∂q̈/∂τ = M⁻¹).
 */

#ifndef DADU_CTRL_PROBLEM_H
#define DADU_CTRL_PROBLEM_H

#include <vector>

#include "algorithms/col_gating.h"
#include "linalg/vec.h"
#include "linalg/matrixx.h"

namespace dadu::ctrl {

using linalg::VectorX;

/** Quadratic tracking objective over an N-knot horizon. */
struct OcpProblem
{
    int knots = 20;   ///< N: control intervals (N+1 states)
    double dt = 0.02; ///< integration step between knots

    double wq = 1.0;        ///< running configuration-error weight
    double wqd = 0.1;       ///< running velocity-error weight
    double wu = 1e-3;       ///< control effort weight
    double wq_term = 10.0;  ///< terminal configuration-error weight
    double wqd_term = 1.0;  ///< terminal velocity-error weight

    /**
     * References per knot: q_ref/qd_ref have knots+1 entries
     * (running + terminal), u_ref has knots entries or is empty
     * (zero torque reference).
     */
    std::vector<VectorX> q_ref, qd_ref, u_ref;

    /**
     * Receding-horizon reference advance: true rotates the reference
     * trajectory (periodic pattern, e.g. a gait cycle) one knot per
     * shift, false slides it forward repeating the terminal entry.
     * Constant references behave identically either way.
     */
    bool periodic_ref = false;
};

/** iLQR/DDP solver knobs. */
struct IlqrOptions
{
    int max_iterations = 30;

    /** Converged when the accepted relative cost decrease falls
     *  below this. */
    double tol_cost = 1e-7;

    /** Converged when max_k ‖∂H/∂u_k‖∞ (the Qu stationarity
     *  residual) falls below this. */
    double tol_grad = 1e-5;

    double reg_init = 1e-6; ///< initial Quu Levenberg regularization
    double reg_min = 1e-9;  ///< regularization floor after successes
    double reg_max = 1e8;   ///< give up (stalled) beyond this

    int max_line_search = 10; ///< backtracking halvings per iteration
    double armijo = 1e-4;     ///< accept: decrease ≥ armijo·expected

    // ---- column-sparsity gating of the ∆FD linearization ----

    /**
     * Request only the Jacobian columns whose coordinates drifted
     * since their last linearization (None = dense, today's
     * behavior). Columns left dead reuse the solver's cached values
     * from the linearization they were last computed at — an
     * approximation bounded by gating_tol and repaired by the
     * periodic dense refresh; the line search still guards every
     * accepted step against the true cost.
     */
    algo::GatingMode gating = algo::GatingMode::None;

    /**
     * A tangent coordinate's column goes live when its accumulated
     * state drift (tangent-space |δq_j| + |δq̇_j|, max over knots,
     * summed since the column was last computed) reaches this.
     * 0 keeps every column always live: the gated solve is then
     * bitwise identical to the dense one.
     */
    double gating_tol = 1e-4;

    /** Every K-th linearization is dense regardless of drift (cold
     *  starts are always dense). 0 disables the periodic refresh. */
    int dense_refresh_every = 8;
};

} // namespace dadu::ctrl

#endif // DADU_CTRL_PROBLEM_H
