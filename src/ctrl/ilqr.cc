#include "ctrl/ilqr.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>

#include "perf/timing.h"

#include "model/quaternion.h"

namespace dadu::ctrl {

using linalg::Mat3;
using linalg::Vec3;
using model::Quaternion;
using runtime::DynamicsRequest;
using runtime::DynamicsResult;
using runtime::FunctionType;

namespace {

/**
 * Right Jacobian of SO(3) at rotation vector θ:
 *   Jr(θ) = I − (1−cosθ)/θ²·[θ]× + (θ−sinθ)/θ³·[θ]×²
 * with the Taylor guard for small angles. Maps a perturbation of the
 * rotation vector to the body-frame tangent of Exp(θ).
 */
Mat3
so3RightJacobian(const Vec3 &theta)
{
    const double t2 = theta.dot(theta);
    double c1, c2; // (1−cosθ)/θ², (θ−sinθ)/θ³
    if (t2 < 1e-12) {
        c1 = 0.5 - t2 / 24.0;
        c2 = 1.0 / 6.0 - t2 / 120.0;
    } else {
        const double t = std::sqrt(t2);
        c1 = (1.0 - std::cos(t)) / t2;
        c2 = (t - std::sin(t)) / (t2 * t);
    }
    const Mat3 k = linalg::skew(theta);
    const Mat3 k2 = k * k;
    Mat3 jr = Mat3::identity();
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            jr(i, j) += -c1 * k(i, j) + c2 * k2(i, j);
    return jr;
}

/** Rotation matrix of Exp(θ) (the integration increment). */
Mat3
so3Exp(const Vec3 &theta)
{
    return Quaternion::identity().integrated(theta).toRotation();
}

} // namespace

IlqrSolver::IlqrSolver(const RobotModel &robot, OcpProblem problem,
                       IlqrOptions options)
    : robot_(robot), prob_(std::move(problem)), opts_(options),
      nv_(robot.nv())
{
    const int N = prob_.knots;
    const int nq = robot_.nq();
    const int nx = 2 * nv_;
    assert(N >= 1);

    // Default references: hold the neutral configuration at rest.
    if (prob_.q_ref.empty())
        prob_.q_ref.assign(N + 1, robot_.neutralConfiguration());
    if (prob_.qd_ref.empty())
        prob_.qd_ref.assign(N + 1, VectorX(nv_));
    assert(static_cast<int>(prob_.q_ref.size()) == N + 1);
    assert(static_cast<int>(prob_.qd_ref.size()) == N + 1);
    assert(prob_.u_ref.empty() ||
           static_cast<int>(prob_.u_ref.size()) == N);

    q_.assign(N + 1, VectorX(nq));
    qd_.assign(N + 1, VectorX(nv_));
    u_.assign(N, VectorX(nv_));
    q_new_ = q_;
    qd_new_ = qd_;
    u_new_ = u_;

    lin_req_.resize(N);
    lin_res_.resize(N);

    kff_.assign(N, VectorX(nv_));
    K_.assign(N, MatrixX(nv_, nx));
    reg_ = opts_.reg_init;
    costs_.reserve(opts_.max_iterations + 2);

    // Backward-pass storage, sized once.
    A_.resize(nx, nx);
    B_.resize(nx, nv_);
    Vxx_.resize(nx, nx);
    Qxx_.resize(nx, nx);
    Qux_.resize(nv_, nx);
    Quu_.resize(nv_, nv_);
    VA_.resize(nx, nx);
    VB_.resize(nx, nv_);
    QuuK_.resize(nv_, nx);
    KQux_.resize(nx, nx);
    rhs_.resize(nv_, 1 + nx);
    Vx_.resize(nx);
    Qx_.resize(nx);
    Qu_.resize(nv_);
    tmpu_.resize(nv_);
    tmpx_.resize(nx);
    step_.resize(nv_);
    dq_.resize(nv_);
    dqd_.resize(nv_);
    eq_.resize(nv_);

    if (opts_.gating != algo::GatingMode::None) {
        fq_cache_.assign(N, MatrixX(nv_, nv_));
        fqd_cache_.assign(N, MatrixX(nv_, nv_));
        minv_cache_.assign(N, MatrixX(nv_, nv_));
        qdd_cache_.assign(N, VectorX(nv_));
        q_lin_.assign(N, VectorX(nq));
        qd_lin_.assign(N, VectorX(nv_));
        drift_.resize(nv_);
        seed_.reserve(nv_);
    }
}

void
IlqrSolver::reset(const VectorX &q0, const VectorX &qd0)
{
    setInitialState(q0, qd0);
    // Reference controls (gravity compensation in the standard
    // scenarios) are the natural cold-start; zero otherwise.
    for (int k = 0; k < prob_.knots; ++k) {
        if (const VectorX *ur = uRef(k))
            u_[k] = *ur;
        else
            u_[k].setAll(0.0);
    }
    // Cold start: the Jacobian caches describe a discarded
    // trajectory; the next linearization must be dense.
    cache_valid_ = false;
    lin_count_ = 0;
    gating_stats_ = GatingStats{};
}

void
IlqrSolver::setInitialState(const VectorX &q0, const VectorX &qd0)
{
    assert(static_cast<int>(q0.size()) == robot_.nq());
    assert(static_cast<int>(qd0.size()) == nv_);
    q_[0] = q0;
    qd_[0] = qd0;
    // A new anchor state is a new problem: a stall at the previous
    // state does not carry over (receding-horizon re-entry).
    stalled_ = false;
    lin_valid_ = false;
}

void
IlqrSolver::shiftControls()
{
    const int N = prob_.knots;
    for (int k = 0; k + 1 < N; ++k)
        u_[k] = u_[k + 1];
    // The horizon's new tail repeats the last control.
    lin_valid_ = false;
}

void
IlqrSolver::shiftReferences()
{
    const int N = prob_.knots;
    if (prob_.periodic_ref) {
        // The pattern's period divides N and q_ref/qd_ref carry N+1
        // entries with first == last: rotate the N-entry period and
        // re-derive the terminal sample from the new front, so the
        // state references stay knot-aligned with the N-entry u_ref
        // (rotating all N+1 entries would advance the two streams at
        // different rates and desynchronize them over time).
        std::rotate(prob_.q_ref.begin(), prob_.q_ref.begin() + 1,
                    prob_.q_ref.begin() + N);
        std::rotate(prob_.qd_ref.begin(), prob_.qd_ref.begin() + 1,
                    prob_.qd_ref.begin() + N);
        prob_.q_ref[N] = prob_.q_ref[0];
        prob_.qd_ref[N] = prob_.qd_ref[0];
        if (!prob_.u_ref.empty())
            std::rotate(prob_.u_ref.begin(), prob_.u_ref.begin() + 1,
                        prob_.u_ref.end());
        return;
    }
    for (int k = 0; k < N; ++k) {
        prob_.q_ref[k] = prob_.q_ref[k + 1];
        prob_.qd_ref[k] = prob_.qd_ref[k + 1];
    }
    for (int k = 0; k + 1 < static_cast<int>(prob_.u_ref.size()); ++k)
        prob_.u_ref[k] = prob_.u_ref[k + 1];
}

const VectorX *
IlqrSolver::uRef(int k) const
{
    return prob_.u_ref.empty() ? nullptr : &prob_.u_ref[k];
}

double
IlqrSolver::stageCost(int k, const VectorX &q, const VectorX &qd,
                      const VectorX &u)
{
    robot_.differenceInto(prob_.q_ref[k], q, eq_);
    double c = 0.5 * prob_.wq * eq_.dot(eq_);
    const VectorX &qdr = prob_.qd_ref[k];
    for (int j = 0; j < nv_; ++j) {
        const double e = qd[j] - qdr[j];
        c += 0.5 * prob_.wqd * e * e;
    }
    const VectorX *ur = uRef(k);
    for (int j = 0; j < nv_; ++j) {
        const double e = u[j] - (ur ? (*ur)[j] : 0.0);
        c += 0.5 * prob_.wu * e * e;
    }
    return c;
}

double
IlqrSolver::terminalCost(const VectorX &q, const VectorX &qd)
{
    const int N = prob_.knots;
    robot_.differenceInto(prob_.q_ref[N], q, eq_);
    double c = 0.5 * prob_.wq_term * eq_.dot(eq_);
    const VectorX &qdr = prob_.qd_ref[N];
    for (int j = 0; j < nv_; ++j) {
        const double e = qd[j] - qdr[j];
        c += 0.5 * prob_.wqd_term * e * e;
    }
    return c;
}

double
IlqrSolver::rolloutNominal(DynamicsChannel &channel)
{
    const int N = prob_.knots;
    const double h = prob_.dt;
    double cost = 0.0;
    for (int k = 0; k < N; ++k) {
        ro_req_.q = q_[k];
        ro_req_.qd = qd_[k];
        ro_req_.qdd_or_tau = u_[k];
        channel.run(FunctionType::FD, &ro_req_, 1, &ro_res_);
        cost += stageCost(k, q_[k], qd_[k], u_[k]);
        for (int j = 0; j < nv_; ++j)
            step_[j] = h * qd_[k][j];
        robot_.integrateInto(q_[k], step_, q_[k + 1]);
        qd_[k + 1] = qd_[k];
        for (int j = 0; j < nv_; ++j)
            qd_[k + 1][j] += h * ro_res_.qdd[j];
    }
    cost += terminalCost(q_[N], qd_[N]);
    cost_ = cost;
    return cost;
}

void
IlqrSolver::linearize(DynamicsChannel &channel)
{
    const int N = prob_.knots;
    const bool gate = opts_.gating != algo::GatingMode::None;
    // A gated sweep needs valid caches to fill the dead columns from;
    // the periodic dense refresh bounds how stale any column can get.
    bool dense = !gate || !cache_valid_ ||
                 (opts_.dense_refresh_every > 0 &&
                  lin_count_ % opts_.dense_refresh_every == 0);
    ++lin_count_;
    if (!dense) {
        // Accumulate each coordinate's tangent movement since the
        // previous linearize call; a column goes live once its total
        // drift since it was last computed reaches the tolerance
        // (>=, so tol = 0 keeps every column live: bitwise-dense).
        for (int k = 0; k < N; ++k) {
            robot_.differenceInto(q_lin_[k], q_[k], dq_);
            for (int j = 0; j < nv_; ++j) {
                const double d = std::fabs(dq_[j]) +
                                 std::fabs(qd_[k][j] - qd_lin_[k][j]);
                if (k == 0 || d > dqd_[j])
                    dqd_[j] = d; // dqd_ doubles as max-drift scratch
            }
        }
        seed_.clear();
        for (int j = 0; j < nv_; ++j) {
            drift_[j] += dqd_[j];
            if (drift_[j] >= opts_.gating_tol)
                seed_.push_back(j);
        }
        if (static_cast<int>(seed_.size()) == nv_)
            dense = true; // everything moved: no point masking
        else if (seed_.empty()) {
            // Nothing drifted past tolerance: the caches already
            // describe this trajectory to within tol — skip the
            // batch entirely.
            for (int k = 0; k < N; ++k) {
                q_lin_[k] = q_[k];
                qd_lin_[k] = qd_[k];
            }
            ++gating_stats_.skipped;
            lin_valid_ = true;
            return;
        }
    }
    if (gate) {
        if (dense)
            ++gating_stats_.dense;
        else {
            ++gating_stats_.gated;
            gating_stats_.live_columns +=
                static_cast<long long>(seed_.size());
        }
    }
    // Dense refreshes run ∆FD (and bank q̈/M⁻¹ below); gated
    // refreshes submit ∆iFD with the banked q̈/M⁻¹ as inputs, so
    // the backend skips the dense steps ①②③ and the live columns
    // alone set the cost.
    const FunctionType fn =
        gate && !dense ? FunctionType::DeltaiFD : FunctionType::DeltaFD;
    for (int k = 0; k < N; ++k) {
        lin_req_[k].q = q_[k];
        lin_req_[k].qd = qd_[k];
        if (fn == FunctionType::DeltaiFD) {
            lin_req_[k].qdd_or_tau = qdd_cache_[k];
            lin_req_[k].minv = minv_cache_[k];
        } else {
            lin_req_[k].qdd_or_tau = u_[k];
        }
        if (gate) {
            // ONE shared seed across the horizon keeps the batch
            // mask-uniform (SoA fast path, coalescer-mergeable).
            lin_req_[k].gating =
                dense ? algo::GatingMode::None : opts_.gating;
            if (dense)
                lin_req_[k].seed_cols.clear();
            else
                lin_req_[k].seed_cols = seed_;
        }
    }
    channel.run(fn, lin_req_.data(), static_cast<std::size_t>(N),
                lin_res_.data());
    if (gate) {
        // Merge into the caches the backward pass reads, and reset
        // the drift of every column that was just recomputed. The
        // resolved plan may widen the seed (Adaptive gap filling);
        // merging by the REQUESTED seed only is still correct — any
        // extra live column holds its exact value but keeps
        // accumulating drift, which is conservative.
        if (dense) {
            // Swap (not copy) the fresh linearization into the
            // caches: lin_res_ is overwritten by the next batch
            // anyway, and the swapped-in old storage keeps its
            // capacity, so the dense refresh stays allocation-free
            // with no nv x nv copies.
            for (int k = 0; k < N; ++k) {
                std::swap(fq_cache_[k], lin_res_[k].dqdd_dq);
                std::swap(fqd_cache_[k], lin_res_[k].dqdd_dqd);
                std::swap(minv_cache_[k], lin_res_[k].minv);
                std::swap(qdd_cache_[k], lin_res_[k].qdd);
            }
            drift_.setAll(0.0);
            cache_valid_ = true;
        } else {
            for (int k = 0; k < N; ++k) {
                const MatrixX &fq = lin_res_[k].dqdd_dq;
                const MatrixX &fqd = lin_res_[k].dqdd_dqd;
                for (int c : seed_) {
                    for (int r = 0; r < nv_; ++r) {
                        fq_cache_[k](r, c) = fq(r, c);
                        fqd_cache_[k](r, c) = fqd(r, c);
                    }
                }
            }
            for (int c : seed_)
                drift_[c] = 0.0;
        }
        for (int k = 0; k < N; ++k) {
            q_lin_[k] = q_[k];
            qd_lin_[k] = qd_[k];
        }
    }
    lin_valid_ = true;
}

bool
IlqrSolver::backwardPass()
{
    const int N = prob_.knots;
    const int n = nv_;
    const int nx = 2 * n;
    const double h = prob_.dt;

    // Terminal value function.
    robot_.differenceInto(prob_.q_ref[N], q_[N], eq_);
    Vx_.resize(nx);
    for (int j = 0; j < n; ++j) {
        Vx_[j] = prob_.wq_term * eq_[j];
        Vx_[n + j] =
            prob_.wqd_term * (qd_[N][j] - prob_.qd_ref[N][j]);
    }
    Vxx_.resize(nx, nx);
    for (int j = 0; j < n; ++j) {
        Vxx_(j, j) = prob_.wq_term;
        Vxx_(n + j, n + j) = prob_.wqd_term;
    }

    d1_ = 0.0;
    d2_ = 0.0;
    grad_norm_ = 0.0;

    const bool gate = opts_.gating != algo::GatingMode::None;

    for (int k = N - 1; k >= 0; --k) {
        // Under gating the caches hold the merged Jacobians (live
        // columns fresh, dead columns from their last computation);
        // M⁻¹ is a dense ∆FD byproduct either way, always fresh.
        const MatrixX &fq =
            gate ? fq_cache_[k] : lin_res_[k].dqdd_dq;
        const MatrixX &fqd =
            gate ? fqd_cache_[k] : lin_res_[k].dqdd_dqd;
        const MatrixX &minv = gate ? minv_cache_[k] : lin_res_[k].minv;
        assert(static_cast<int>(fq.rows()) == n &&
               static_cast<int>(minv.rows()) == n);

        // Tangent-space linearization of the explicit-Euler step:
        //   A = [ I     h·I        ]   B = [ 0      ]
        //       [ h·fq  I + h·fqd ]       [ h·M⁻¹ ]
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                A_(i, j) = i == j ? 1.0 : 0.0;
                A_(i, n + j) = i == j ? h : 0.0;
                A_(n + i, j) = h * fq(i, j);
                A_(n + i, n + j) =
                    (i == j ? 1.0 : 0.0) + h * fqd(i, j);
                B_(i, j) = 0.0;
                B_(n + i, j) = h * minv(i, j);
            }
        }

        // Exact discrete Jacobian on the manifold: for quaternion
        // joints, ∂(q ⊕ h·q̇)/∂(δq, δq̇) is NOT the Euclidean
        // (I, h·I) — the configuration step is a group composition.
        // With right perturbations q' = q ∘ Exp(δφ) and the body-
        // frame log as the difference, the exact blocks are
        //   ∂δφ⁺/∂δφ = E_hᵀ           (E_h = Exp(h·ω)),
        //   ∂δφ⁺/∂δω = h·Jr(h·ω)      (right Jacobian),
        // and for a floating base additionally (p integrated via the
        // body frame, δp measured there):
        //   ∂δp⁺/∂δφ = −h·E_hᵀ·[v_lin]×,  ∂δp⁺/∂δp = E_hᵀ,
        //   ∂δp⁺/∂δv = h·E_hᵀ.
        for (int b = 0; b < robot_.nb(); ++b) {
            const auto &link = robot_.link(b);
            if (link.joint != model::JointType::Spherical &&
                link.joint != model::JointType::Floating)
                continue;
            const int vi = link.vIndex;
            const VectorX &v = qd_[k];
            const Vec3 homega{h * v[vi], h * v[vi + 1],
                              h * v[vi + 2]};
            const Mat3 eht = so3Exp(homega).transpose();
            const Mat3 hjr = so3RightJacobian(homega) * h;
            for (int i = 0; i < 3; ++i) {
                for (int j = 0; j < 3; ++j) {
                    A_(vi + i, vi + j) = eht(i, j);
                    A_(vi + i, n + vi + j) = hjr(i, j);
                }
            }
            if (link.joint == model::JointType::Floating) {
                const Vec3 vlin{v[vi + 3], v[vi + 4], v[vi + 5]};
                const Mat3 dp_dphi =
                    eht * linalg::skew(vlin) * (-h);
                for (int i = 0; i < 3; ++i) {
                    for (int j = 0; j < 3; ++j) {
                        A_(vi + 3 + i, vi + j) = dp_dphi(i, j);
                        A_(vi + 3 + i, vi + 3 + j) = eht(i, j);
                        A_(vi + 3 + i, n + vi + 3 + j) =
                            h * eht(i, j);
                    }
                }
            }
        }

        // Q-function gradients: Qx = lx + Aᵀ Vx', Qu = lu + Bᵀ Vx'.
        robot_.differenceInto(prob_.q_ref[k], q_[k], eq_);
        A_.transposeMultiplyInto(Vx_, Qx_);
        for (int j = 0; j < n; ++j) {
            Qx_[j] += prob_.wq * eq_[j];
            Qx_[n + j] +=
                prob_.wqd * (qd_[k][j] - prob_.qd_ref[k][j]);
        }
        B_.transposeMultiplyInto(Vx_, Qu_);
        const VectorX *ur = uRef(k);
        for (int j = 0; j < n; ++j)
            Qu_[j] += prob_.wu * (u_[k][j] - (ur ? (*ur)[j] : 0.0));
        grad_norm_ = std::max(grad_norm_, Qu_.maxAbs());

        // Q-function Hessians.
        Vxx_.multiplyInto(A_, VA_);
        A_.transposeMultiplyInto(VA_, Qxx_);
        for (int j = 0; j < n; ++j) {
            Qxx_(j, j) += prob_.wq;
            Qxx_(n + j, n + j) += prob_.wqd;
        }
        B_.transposeMultiplyInto(VA_, Qux_);
        Vxx_.multiplyInto(B_, VB_);
        B_.transposeMultiplyInto(VB_, Quu_);
        for (int j = 0; j < n; ++j)
            Quu_(j, j) += prob_.wu + reg_;

        // Gains: Quu · [kff | K] = -[Qu | Qux], one multi-RHS solve
        // into the constructor-sized rhs_ (every entry overwritten).
        for (int i = 0; i < n; ++i) {
            rhs_(i, 0) = -Qu_[i];
            for (int j = 0; j < nx; ++j)
                rhs_(i, 1 + j) = -Qux_(i, j);
        }
        if (n <= linalg::SmallLdlt::kMaxDim) {
            if (!quu_small_.compute(&Quu_(0, 0), n))
                return false;
            for (int i = 0; i < n; ++i) {
                if (quu_small_.pivot(i) <= 0.0)
                    return false; // not PD: raise regularization
            }
            double col[linalg::SmallLdlt::kMaxDim];
            for (int c = 0; c < 1 + nx; ++c) {
                for (int i = 0; i < n; ++i)
                    col[i] = rhs_(i, c);
                quu_small_.solveInPlace(col);
                for (int i = 0; i < n; ++i)
                    rhs_(i, c) = col[i];
            }
        } else {
            if (!quu_ldlt_.compute(Quu_))
                return false;
            for (int i = 0; i < n; ++i) {
                if (quu_ldlt_.vectorD()[i] <= 0.0)
                    return false; // not PD: raise regularization
            }
            quu_ldlt_.solveInPlace(rhs_);
        }
        VectorX &kff = kff_[k];
        MatrixX &K = K_[k];
        for (int i = 0; i < n; ++i) {
            kff[i] = rhs_(i, 0);
            for (int j = 0; j < nx; ++j)
                K(i, j) = rhs_(i, 1 + j);
        }

        // Expected decrease: ΔJ(α) ≈ α·d1 + ½α²·d2 with
        // d1 = Σ kffᵀQu < 0 and d2 = Σ kffᵀQuu·kff > 0 when PD.
        Quu_.multiplyInto(kff, tmpu_);
        const double k_quu_k = kff.dot(tmpu_);
        if (k_quu_k < 0.0)
            return false; // Quu indefinite despite factorization
        d1_ += kff.dot(Qu_);
        d2_ += k_quu_k;

        // Value recursion:
        //   Vx  = Qx + Kᵀ(Quu·kff + Qu) + Quxᵀ·kff
        //   Vxx = Qxx + Kᵀ·Quu·K + Kᵀ·Qux + Quxᵀ·K (symmetrized)
        for (int i = 0; i < n; ++i)
            tmpu_[i] += Qu_[i];
        K.transposeMultiplyInto(tmpu_, tmpx_);
        Vx_ = Qx_;
        for (int j = 0; j < nx; ++j)
            Vx_[j] += tmpx_[j];
        Qux_.transposeMultiplyInto(kff, tmpx_);
        for (int j = 0; j < nx; ++j)
            Vx_[j] += tmpx_[j];

        Quu_.multiplyInto(K, QuuK_);
        K.transposeMultiplyInto(QuuK_, Vxx_);
        K.transposeMultiplyInto(Qux_, KQux_);
        for (int i = 0; i < nx; ++i)
            for (int j = 0; j < nx; ++j)
                Vxx_(i, j) += Qxx_(i, j) + KQux_(i, j) + KQux_(j, i);
        for (int i = 0; i < nx; ++i) {
            for (int j = i + 1; j < nx; ++j) {
                const double s = 0.5 * (Vxx_(i, j) + Vxx_(j, i));
                Vxx_(i, j) = s;
                Vxx_(j, i) = s;
            }
        }
    }
    return true;
}

double
IlqrSolver::forwardPass(DynamicsChannel &channel, double alpha)
{
    const int N = prob_.knots;
    const int n = nv_;
    const double h = prob_.dt;
    q_new_[0] = q_[0];
    qd_new_[0] = qd_[0];
    double cost = 0.0;
    for (int k = 0; k < N; ++k) {
        // Feedback around the nominal: δx in the tangent space.
        robot_.differenceInto(q_[k], q_new_[k], dq_);
        for (int j = 0; j < n; ++j)
            dqd_[j] = qd_new_[k][j] - qd_[k][j];
        VectorX &u = u_new_[k];
        u = u_[k];
        const MatrixX &K = K_[k];
        const VectorX &kff = kff_[k];
        for (int i = 0; i < n; ++i) {
            double du = alpha * kff[i];
            for (int j = 0; j < n; ++j)
                du += K(i, j) * dq_[j] + K(i, n + j) * dqd_[j];
            u[i] += du;
        }

        ro_req_.q = q_new_[k];
        ro_req_.qd = qd_new_[k];
        ro_req_.qdd_or_tau = u;
        channel.run(FunctionType::FD, &ro_req_, 1, &ro_res_);

        cost += stageCost(k, q_new_[k], qd_new_[k], u);
        for (int j = 0; j < n; ++j)
            step_[j] = h * qd_new_[k][j];
        robot_.integrateInto(q_new_[k], step_, q_new_[k + 1]);
        qd_new_[k + 1] = qd_new_[k];
        for (int j = 0; j < n; ++j)
            qd_new_[k + 1][j] += h * ro_res_.qdd[j];
    }
    cost += terminalCost(q_new_[N], qd_new_[N]);
    return cost;
}

void
IlqrSolver::acceptCandidate()
{
    q_.swap(q_new_);
    qd_.swap(qd_new_);
    u_.swap(u_new_);
    lin_valid_ = false;
}

bool
IlqrSolver::iterate(DynamicsChannel &channel)
{
    if (!trace_)
        return iterateInner(channel);
    // Span the whole iteration; IterEnd packs accepted|mode<<1 with
    // mode the linearize path this iteration took (0 dense, 1 gated,
    // 2 skipped, 3 reused a still-valid linearization) and carries
    // the live-column count a gated refresh submitted.
    const GatingStats before = gating_stats_;
    trace_->record(runtime::obs::EventKind::IterBegin, perf::nowUs(), -1,
                   -1, runtime::FunctionType::DeltaFD, 0, cost_);
    const bool accepted = iterateInner(channel);
    std::uint32_t mode = 3;
    if (gating_stats_.dense > before.dense)
        mode = 0;
    else if (gating_stats_.gated > before.gated)
        mode = 1;
    else if (gating_stats_.skipped > before.skipped)
        mode = 2;
    trace_->record(runtime::obs::EventKind::IterEnd, perf::nowUs(), -1,
                   -1, runtime::FunctionType::DeltaFD,
                   (accepted ? 1u : 0u) | (mode << 1),
                   static_cast<double>(gating_stats_.live_columns -
                                       before.live_columns));
    return accepted;
}

bool
IlqrSolver::iterateInner(DynamicsChannel &channel)
{
    if (stalled_)
        return false;
    if (!lin_valid_)
        linearize(channel);
    while (!backwardPass()) {
        reg_ = std::max(reg_ * 10.0, 10.0 * opts_.reg_init);
        if (reg_ > opts_.reg_max) {
            stalled_ = true;
            return false;
        }
    }

    double alpha = 1.0;
    for (int t = 0; t < opts_.max_line_search; ++t, alpha *= 0.5) {
        const double cost = forwardPass(channel, alpha);
        const double expected =
            -(alpha * d1_ + 0.5 * alpha * alpha * d2_);
        if (std::isfinite(cost) &&
            cost_ - cost >= opts_.armijo * std::max(expected, 0.0) &&
            cost <= cost_) {
            acceptCandidate();
            cost_ = cost;
            reg_ = std::max(opts_.reg_min, 0.5 * reg_);
            return true;
        }
    }

    // No step accepted: steepen the regularization (more conservative
    // gains next iteration); stall once it saturates.
    reg_ *= 10.0;
    if (reg_ > opts_.reg_max)
        stalled_ = true;
    return false;
}

IlqrSummary
IlqrSolver::solve(DynamicsChannel &channel, const VectorX &q0,
                  const VectorX &qd0)
{
    setInitialState(q0, qd0);
    stalled_ = false;
    reg_ = opts_.reg_init;
    costs_.clear();
    rolloutNominal(channel);
    costs_.push_back(cost_);

    IlqrSummary summary;
    summary.initial_cost = cost_;
    for (int it = 0; it < opts_.max_iterations; ++it) {
        const double prev = cost_;
        const bool accepted = iterate(channel);
        summary.iterations = it + 1;
        if (accepted)
            costs_.push_back(cost_);
        // A stalled iterate may have aborted the backward sweep
        // mid-recursion, leaving grad_norm_ a partial max — check
        // stall first so a stalled solve never reports convergence.
        if (stalled_)
            break;
        if (grad_norm_ < opts_.tol_grad) {
            summary.converged = true;
            break;
        }
        if (accepted &&
            prev - cost_ < opts_.tol_cost * (1.0 + std::fabs(prev))) {
            summary.converged = true;
            break;
        }
    }
    summary.cost = cost_;
    summary.grad_norm = grad_norm_;
    return summary;
}

} // namespace dadu::ctrl
