/**
 * @file
 * iLQR/DDP trajectory optimizer over the unified dynamics runtime.
 *
 * The solver's hot loop runs entirely through DynamicsBackend-served
 * requests: per iteration it
 *
 *  1. linearizes the dynamics along the horizon with ONE batched
 *     ∆FD submission (N independent knots — the pipeline-filling
 *     flat batch the paper's accelerator is built for), assembling
 *     the tangent-space A_k/B_k from ∂q̈/∂q, ∂q̈/∂q̇ and M⁻¹;
 *  2. runs a regularized Riccati backward sweep on the host —
 *     linalg::Ldlt (or SmallLdlt for ≤6-DOF control spaces) on Quu
 *     in caller-owned workspaces, zero steady-state allocations;
 *  3. rolls the feedback policy forward with a backtracking line
 *     search — RobotModel::integrateInto plus one FD request per
 *     step — accepting on an Armijo cost-decrease test.
 *
 * Convergence is declared on relative cost decrease or on the
 * stationarity residual max_k ‖Qu_k‖∞. Where the dynamics execute is
 * a DynamicsChannel choice: directly on any backend (CPU batched,
 * cycle-accurate simulator, analytic), or through a DynamicsServer
 * with QoS deadline tags (ctrl::MpcSession), without touching the
 * solver.
 */

#ifndef DADU_CTRL_ILQR_H
#define DADU_CTRL_ILQR_H

#include <cstddef>
#include <vector>

#include "ctrl/problem.h"
#include "linalg/factorize.h"
#include "linalg/matrixx.h"
#include "model/robot_model.h"
#include "runtime/backend.h"
#include "runtime/obs/trace.h"

namespace dadu::ctrl {

using linalg::MatrixX;
using model::RobotModel;

/**
 * Dynamics submission seam of the solver: every FD/∆FD evaluation
 * flows through run(). BackendChannel executes directly on one
 * backend; MpcSession's channel submits deadline-tagged jobs to a
 * DynamicsServer. Results land in caller storage either way, so the
 * solver's zero-allocation property is channel-independent.
 */
class DynamicsChannel
{
  public:
    virtual ~DynamicsChannel() = default;

    /** Execute @p count requests of @p fn into @p results. */
    virtual void run(runtime::FunctionType fn,
                     runtime::DynamicsRequest *requests,
                     std::size_t count,
                     runtime::DynamicsResult *results) = 0;
};

/** Direct channel: requests execute on one backend, synchronously. */
class BackendChannel : public DynamicsChannel
{
  public:
    explicit BackendChannel(runtime::DynamicsBackend &backend)
        : backend_(backend)
    {}

    void
    run(runtime::FunctionType fn, runtime::DynamicsRequest *requests,
        std::size_t count, runtime::DynamicsResult *results) override
    {
        backend_.submit(fn, requests, count, results);
    }

  private:
    runtime::DynamicsBackend &backend_;
};

/** Outcome of one solve() (or of accumulated iterate() calls). */
struct IlqrSummary
{
    int iterations = 0;      ///< accepted + rejected iterations run
    double initial_cost = 0.0;
    double cost = 0.0;       ///< cost of the returned trajectory
    double grad_norm = 0.0;  ///< max_k ‖Qu_k‖∞ at the last backward pass
    bool converged = false;  ///< a tolerance was met (not stalled/maxed)
};

/** iLQR/DDP solver with persistent, reusable workspaces. */
class IlqrSolver
{
  public:
    IlqrSolver(const RobotModel &robot, OcpProblem problem,
               IlqrOptions options = {});

    const OcpProblem &problem() const { return prob_; }
    const IlqrOptions &options() const { return opts_; }

    /**
     * Set the initial state and reset the nominal controls to the
     * problem's reference controls (zero when u_ref is empty). Call
     * rolloutNominal() (or solve(), which does) afterwards to make
     * the nominal trajectory consistent.
     */
    void reset(const VectorX &q0, const VectorX &qd0);

    /**
     * Re-anchor the horizon at a new measured state, keeping the
     * current controls (the receding-horizon warm start path).
     */
    void setInitialState(const VectorX &q0, const VectorX &qd0);

    /**
     * Receding-horizon warm start: controls shift one knot toward
     * the present (u_k ← u_{k+1}, last repeated). The nominal
     * trajectory becomes stale; roll out before iterating.
     */
    void shiftControls();

    /**
     * Advance the reference trajectory one knot (the time shift that
     * matches shiftControls): rotated when the problem is
     * periodic_ref, slid-and-repeated otherwise. No-op in effect for
     * constant references.
     */
    void shiftReferences();

    /**
     * Open-loop rollout of the current controls from the initial
     * state through @p channel: fills the nominal trajectory and
     * returns (and stores) its cost.
     */
    double rolloutNominal(DynamicsChannel &channel);

    /**
     * One linearize → backward sweep → line-search iteration over
     * @p channel. Requires a consistent nominal trajectory.
     * @return true when a lower-cost trajectory was accepted.
     */
    bool iterate(DynamicsChannel &channel);

    /**
     * Full solve from @p q0/@p qd0, starting from the solver's
     * CURRENT controls: zero right after construction, the
     * problem's reference controls right after reset(), the
     * previous solution on reuse — the receding-horizon warm
     * start. Call reset() first for a reproducible cold start.
     */
    IlqrSummary solve(DynamicsChannel &channel, const VectorX &q0,
                      const VectorX &qd0);

    /** Convenience: solve with the dynamics directly on @p backend. */
    IlqrSummary
    solve(runtime::DynamicsBackend &backend, const VectorX &q0,
          const VectorX &qd0)
    {
        BackendChannel channel(backend);
        return solve(channel, q0, qd0);
    }

    // ---------------------------------------------------- accessors
    int knots() const { return prob_.knots; }
    const VectorX &q(int k) const { return q_[k]; }    ///< k in [0, N]
    const VectorX &qd(int k) const { return qd_[k]; }  ///< k in [0, N]
    const VectorX &u(int k) const { return u_[k]; }    ///< k in [0, N)
    VectorX &control(int k) { return u_[k]; } ///< seed/override controls

    double cost() const { return cost_; }
    double gradNorm() const { return grad_norm_; }
    double regularization() const { return reg_; }
    bool stalled() const { return stalled_; }

    /** Cost after every accepted iteration of the last solve()
     *  (costs_[0] is the initial rollout). Monotone non-increasing. */
    const std::vector<double> &costTrace() const { return costs_; }

    /**
     * Column-gating engagement counters, accumulated across
     * linearize calls since construction/reset(): how many refreshes
     * ran dense (∆FD, cold start / periodic / everything drifted),
     * gated (∆iFD over the live seed), or were skipped outright
     * (nothing drifted past tolerance). live_columns sums the seed
     * size over gated refreshes — live_columns / (gated · nv) is the
     * mean live density actually submitted.
     */
    struct GatingStats
    {
        long long dense = 0;
        long long gated = 0;
        long long skipped = 0;
        long long live_columns = 0;
    };
    const GatingStats &gatingStats() const { return gating_stats_; }

    /**
     * Record a per-iteration span (IterBegin/IterEnd) on @p ring —
     * null disables (the default). IterEnd carries whether the step
     * was accepted, the linearize mode this iteration engaged (dense
     * / gated / skipped) and the live-column count it submitted, so
     * a trace shows how gating and convergence interleave. The ring
     * must be single-producer: the solver's calling thread (e.g. its
     * MpcSession's claimed ring).
     */
    void setTraceRing(runtime::obs::TraceRing *ring) { trace_ = ring; }

  private:
    /** iterate() minus the tracing wrapper (the whole pre-obs body). */
    bool iterateInner(DynamicsChannel &channel);

    /** Fill lin_req_ from the nominal trajectory and run one batched
     *  ∆FD submission over the horizon. */
    void linearize(DynamicsChannel &channel);

    /**
     * Regularized Riccati sweep over lin_res_. Fills kff_/K_ and the
     * expected-decrease coefficients; updates grad_norm_.
     * @return false when Quu failed to factorize positive-definite
     *         at the current regularization.
     */
    bool backwardPass();

    /**
     * Roll the policy u = u_nom + α·kff + K·δx forward from the
     * initial state, writing the candidate trajectory and returning
     * its cost. α = 0 with zero gains reproduces the nominal.
     */
    double forwardPass(DynamicsChannel &channel, double alpha);

    /** Promote the candidate trajectory to nominal (pointer swaps). */
    void acceptCandidate();

    double stageCost(int k, const VectorX &q, const VectorX &qd,
                     const VectorX &u);
    double terminalCost(const VectorX &q, const VectorX &qd);

    /** Reference controls (u_ref empty means zero). */
    const VectorX *uRef(int k) const;

    const RobotModel &robot_;
    OcpProblem prob_;
    IlqrOptions opts_;

    int nv_ = 0; ///< tangent/velocity dimension (= control dimension)

    // Nominal and candidate trajectories (swapped on acceptance).
    std::vector<VectorX> q_, qd_, u_;
    std::vector<VectorX> q_new_, qd_new_, u_new_;

    // Runtime staging: one ∆FD request per knot, one FD request per
    // rollout step (grow-only, caller-owned storage for the channel).
    std::vector<runtime::DynamicsRequest> lin_req_;
    std::vector<runtime::DynamicsResult> lin_res_;
    runtime::DynamicsRequest ro_req_;
    runtime::DynamicsResult ro_res_;

    // Column-gating state (allocated only when opts_.gating != None).
    // The caches hold the merged Jacobians the backward pass reads: a
    // gated refresh overwrites the live columns, dead columns keep
    // the values from the linearization they were last computed at.
    // Dense refreshes run ∆FD and bank its q̈/M⁻¹ per knot
    // (minv_cache_/qdd_cache_); gated refreshes then submit ∆iFD
    // with those banked inputs, skipping the dense ①②③ prefix
    // entirely — the input staleness is the same order as the
    // dead-column staleness the scheme already tolerates, bounded by
    // the periodic dense refresh. q_lin_/qd_lin_ is the trajectory
    // of the PREVIOUS linearize call; drift_ accumulates each
    // coordinate's tangent movement since its column was last
    // recomputed, and resets per live column. One seed is shared by
    // every knot of the batch, so the submitted batch stays
    // mask-uniform (the backends' SoA fast path and the server
    // coalescer both key on that).
    std::vector<MatrixX> fq_cache_, fqd_cache_, minv_cache_;
    std::vector<VectorX> qdd_cache_;
    std::vector<VectorX> q_lin_, qd_lin_;
    VectorX drift_;          ///< per-coordinate accumulated drift
    std::vector<int> seed_;  ///< live-column seed of the next batch
    int lin_count_ = 0;      ///< linearize calls (dense-refresh clock)
    bool cache_valid_ = false; ///< caches hold a full linearization
    GatingStats gating_stats_;

    // Policy: u = u_nom + α·kff + K·[δq; δq̇] per knot (K: nv x 2nv).
    std::vector<VectorX> kff_;
    std::vector<MatrixX> K_;

    // Backward-pass workspace (all sized once, reused per knot).
    MatrixX A_, B_;            ///< 2nv x 2nv / 2nv x nv linearization
    MatrixX Vxx_, Qxx_, Qux_, Quu_, VA_, VB_, QuuK_, KQux_;
    VectorX Vx_, Qx_, Qu_, tmpu_, tmpx_;
    linalg::Ldlt quu_ldlt_;         ///< nu > 6 factorization
    linalg::SmallLdlt quu_small_;   ///< nu ≤ 6 fast path
    MatrixX rhs_;                   ///< [-Qu | -Qux] gain solve RHS

    // Rollout scratch.
    VectorX step_, dq_, dqd_, eq_;

    double cost_ = 0.0;
    double grad_norm_ = 0.0;
    double reg_ = 0.0;
    double d1_ = 0.0, d2_ = 0.0; ///< expected-decrease coefficients
    bool stalled_ = false; ///< regularization saturated at reg_max
    /** lin_res_ matches the current nominal trajectory; a rejected
     *  iteration leaves it valid, so the retry (higher reg, more
     *  conservative gains) skips the redundant ∆FD batch. */
    bool lin_valid_ = false;
    std::vector<double> costs_;  ///< accepted-cost trace (reserved)
    runtime::obs::TraceRing *trace_ = nullptr; ///< per-iteration spans
};

} // namespace dadu::ctrl

#endif // DADU_CTRL_ILQR_H
