/**
 * @file
 * Canonical control scenarios for the evaluation robots.
 *
 * Each scenario packages an OcpProblem with an initial state so
 * tests, benches and the closed-loop MPC serving workload all solve
 * the same, reproducible problems:
 *
 *  - reaching: drive the robot from its neutral posture to a fixed
 *    tangent-space target posture and hold it (iiwa-style task, but
 *    defined for any robot);
 *  - periodic gait tracking: follow a sinusoidal joint-space pattern
 *    (phase-shifted per DOF), the HyQ-style locomotion proxy;
 *  - disturbance recovery: from the reference posture with a
 *    velocity push, bring the robot back to rest (Atlas-style).
 *
 * Scenarios are deterministic: the same robot and phase produce the
 * same problem, so solver trajectories can be compared bitwise
 * across backends. The @p phase parameter decorrelates concurrent
 * MPC clients without changing the problem's character.
 */

#ifndef DADU_CTRL_SCENARIOS_H
#define DADU_CTRL_SCENARIOS_H

#include "ctrl/problem.h"
#include "model/robot_model.h"

namespace dadu::ctrl {

using model::RobotModel;

/** A problem plus the state the robot starts in. */
struct Scenario
{
    const char *name = "";
    OcpProblem problem;
    VectorX q0;  ///< initial configuration (nq)
    VectorX qd0; ///< initial velocity (nv)
};

/** Neutral posture -> fixed target posture, then hold. */
Scenario makeReachingScenario(const RobotModel &robot, int knots = 20,
                              double dt = 0.01, double phase = 0.0);

/** Track a phase-shifted sinusoidal joint pattern (periodic gait). */
Scenario makeGaitScenario(const RobotModel &robot, int knots = 24,
                          double dt = 0.01, double phase = 0.0);

/** Recover to rest at the reference posture from a velocity push. */
Scenario makeDisturbanceScenario(const RobotModel &robot,
                                 int knots = 20, double dt = 0.01,
                                 double phase = 0.0);

/** Number of standard scenarios (the index domain of makeScenario). */
inline constexpr int kScenarioCount = 3;

/**
 * Standard scenario by index (mod kScenarioCount): 0 reaching,
 * 1 gait tracking, 2 disturbance recovery — the one mapping shared
 * by tests, benches and the multi-client serving mix.
 */
Scenario makeScenario(const RobotModel &robot, int index,
                      int knots = 20, double dt = 0.01,
                      double phase = 0.0);

} // namespace dadu::ctrl

#endif // DADU_CTRL_SCENARIOS_H
