/**
 * @file
 * Receding-horizon MPC session over the async dynamics runtime.
 *
 * One MpcSession is one closed-loop MPC client: per control tick it
 * re-anchors its iLQR solver at the measured state, warm-starts by
 * shifting the previous solution one knot, and runs a fixed number
 * of solver iterations whose dynamics requests all flow through a
 * DynamicsServer — the horizon-wide ∆FD linearization as a sharded
 * (or least-loaded) flat batch, the rollout FD evaluations as small
 * flat jobs that the server's coalescer can merge across concurrent
 * sessions.
 *
 * With deadline_slack > 0 the session becomes deadline-tagged
 * (EDF-schedulable) traffic: it predicts each job's makespan with
 * app::predictedAdmissionUs — per-task time calibrated from its own
 * previous linearization batch, queued work read from the server's
 * lane loads — and tags the job with deadline = now + slack x
 * prediction. M concurrent sessions are the closed-loop serving
 * workload of bench_mpc_solve.
 */

#ifndef DADU_CTRL_MPC_SESSION_H
#define DADU_CTRL_MPC_SESSION_H

#include <cstddef>
#include <vector>

#include "ctrl/ilqr.h"
#include "ctrl/scenarios.h"
#include "runtime/server.h"

namespace dadu::ctrl {

/** One closed-loop MPC client over a DynamicsServer. */
class MpcSession
{
  public:
    struct Config
    {
        /** Solver iterations per control tick (receding horizon). */
        int iterations_per_tick = 1;

        /**
         * > 0: tag every job with deadline = now + slack x predicted
         * makespan (EDF-schedulable traffic); 0 = untagged bulk.
         */
        double deadline_slack = 0.0;

        /** Shard multi-point batches across all server lanes. */
        bool shard_batches = true;
    };

    struct Stats
    {
        std::size_t ticks = 0;        ///< control ticks served
        std::size_t jobs = 0;         ///< server jobs submitted
        std::size_t tagged_jobs = 0;  ///< jobs carrying a deadline
        std::size_t deadline_met = 0;
        std::size_t deadline_misses = 0;
        /**
         * Ticks that fell back to the warm-started previous plan
         * because a dynamics job was shed or failed — the session
         * still returned a control (graceful degradation), just not a
         * re-optimized one.
         */
        std::size_t degraded_ticks = 0;
        std::size_t rejected_jobs = 0; ///< jobs shed by admission
        std::size_t failed_jobs = 0;   ///< jobs with no healthy lane
        double horizon_cost = 0.0;    ///< solver cost after last tick
    };

    MpcSession(const RobotModel &robot, Scenario scenario,
               IlqrOptions options, Config config);
    MpcSession(const RobotModel &robot, Scenario scenario,
               IlqrOptions options);
    MpcSession(const RobotModel &robot, Scenario scenario);

    /**
     * Prime the session: full iLQR solve from the scenario's initial
     * state, dynamics served by @p server. Call once before the
     * closed-loop tick stream.
     */
    IlqrSummary start(runtime::DynamicsServer &server);

    /**
     * One control tick from the measured state (@p q, @p qd):
     * warm-start shift, nominal re-rollout, iterations_per_tick
     * solver iterations — every dynamics request through @p server.
     * @return the first control of the re-optimized horizon.
     */
    const VectorX &tick(runtime::DynamicsServer &server,
                        const VectorX &q, const VectorX &qd);

    IlqrSolver &solver() { return solver_; }
    const IlqrSolver &solver() const { return solver_; }
    const Scenario &scenario() const { return scenario_; }
    const Stats &stats() const { return stats_; }

    /**
     * Claim a client span track on the server's trace buffer: every
     * tick() records a TickBegin/TickEnd span and the solver records
     * its per-iteration spans on the same ring. Call AFTER the
     * server's final setPolicy()/addBackend() (reconfiguring drops
     * claimed rings) and BEFORE concurrent ticking starts; one
     * session's ticks must stay on one thread (the ring is SPSC).
     * No-op when the server has tracing off.
     */
    void attachTrace(runtime::DynamicsServer &server,
                     const char *name = "mpc");

  private:
    /** DynamicsChannel that submits deadline-tagged server jobs. */
    class ServerChannel : public DynamicsChannel
    {
      public:
        explicit ServerChannel(MpcSession &session)
            : session_(session)
        {}

        void run(runtime::FunctionType fn,
                 runtime::DynamicsRequest *requests, std::size_t count,
                 runtime::DynamicsResult *results) override;

        runtime::DynamicsServer *server = nullptr;

        /**
         * Set when a job of the current tick was Rejected or Failed;
         * subsequent run() calls of the tick become no-ops (the
         * solver's intermediate state is abandoned anyway) and tick()
         * falls back to the previous plan.
         */
        bool tick_failed = false;

      private:
        MpcSession &session_;
    };

    const RobotModel &robot_;
    Scenario scenario_;
    Config cfg_;
    IlqrSolver solver_;
    ServerChannel channel_;
    Stats stats_;
    VectorX u0_; ///< tick()'s returned control (pre-shift copy)
    /** Previous tick's control horizon — the degradation fallback
     *  plan, saved (buffer reused) at the top of every tick. */
    std::vector<VectorX> u_prev_;
    double task_us_ = 0.0; ///< calibrated per-FD-equivalent wall time
    runtime::obs::TraceRing *trace_ = nullptr; ///< per-tick span track
};

} // namespace dadu::ctrl

#endif // DADU_CTRL_MPC_SESSION_H
