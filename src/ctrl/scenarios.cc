#include "ctrl/scenarios.h"

#include <cmath>

#include "algorithms/rnea.h"

namespace dadu::ctrl {

namespace {

/**
 * Deterministic per-DOF amplitude pattern: bounded, phase-shifted
 * and incommensurate across DOFs so no joint target is degenerate.
 */
double
dofWave(int j, double phase)
{
    return std::sin(0.9 * j + 0.4 + phase);
}

/**
 * Gravity-compensation torque references: u_ref_k = ID(q_ref_k, 0, 0).
 * Without these, the effort term prices the static holding torque of
 * a heavy (floating-base) robot orders of magnitude above the
 * tracking error of simply falling — and the solver rationally lets
 * it fall. Penalizing the deviation from the holding torque instead
 * makes "stay put" the cheap behavior on every robot.
 */
void
addGravityCompensation(const model::RobotModel &robot, OcpProblem &p)
{
    const VectorX zero(robot.nv());
    p.u_ref.resize(p.knots);
    for (int k = 0; k < p.knots; ++k)
        p.u_ref[k] = algo::rnea(robot, p.q_ref[k], zero, zero).tau;
}

} // namespace

Scenario
makeReachingScenario(const RobotModel &robot, int knots, double dt,
                     double phase)
{
    Scenario s;
    s.name = "reaching";
    s.q0 = robot.neutralConfiguration();
    s.qd0 = VectorX(robot.nv());

    // Target: a moderate tangent-space offset from neutral, reached
    // and held over the horizon.
    VectorX dv(robot.nv());
    for (int j = 0; j < robot.nv(); ++j)
        dv[j] = 0.25 * dofWave(j, phase);
    const VectorX q_target = robot.integrate(s.q0, dv);

    OcpProblem &p = s.problem;
    p.knots = knots;
    p.dt = dt;
    p.wq = 2.0;
    p.wqd = 0.05;
    p.wu = 1e-4;
    p.wq_term = 50.0;
    p.wqd_term = 2.0;
    p.q_ref.assign(knots + 1, q_target);
    p.qd_ref.assign(knots + 1, VectorX(robot.nv()));
    addGravityCompensation(robot, p);
    return s;
}

Scenario
makeGaitScenario(const RobotModel &robot, int knots, double dt,
                 double phase)
{
    Scenario s;
    s.name = "gait-tracking";
    s.q0 = robot.neutralConfiguration();
    s.qd0 = VectorX(robot.nv());

    // Periodic joint-space pattern: q_ref_k = q0 ⊕ a·sin(ωt + φ_j),
    // with the matching tangent velocity as the qd reference.
    const double amp = 0.12;
    const double omega = 2.0 * 3.14159265358979323846 /
                         (0.5 * knots * dt); // two periods per horizon
    OcpProblem &p = s.problem;
    p.knots = knots;
    p.dt = dt;
    p.wq = 4.0;
    p.wqd = 0.2;
    p.wu = 1e-4;
    p.wq_term = 8.0;
    p.wqd_term = 0.4;
    p.periodic_ref = true;
    p.q_ref.resize(knots + 1);
    p.qd_ref.resize(knots + 1);
    VectorX dv(robot.nv()), dvd(robot.nv());
    for (int k = 0; k <= knots; ++k) {
        const double t = k * dt;
        for (int j = 0; j < robot.nv(); ++j) {
            const double phi = 0.7 * j + phase;
            dv[j] = amp * std::sin(omega * t + phi);
            dvd[j] = amp * omega * std::cos(omega * t + phi);
        }
        p.q_ref[k] = robot.integrate(s.q0, dv);
        p.qd_ref[k] = dvd;
    }
    addGravityCompensation(robot, p);
    return s;
}

Scenario
makeDisturbanceScenario(const RobotModel &robot, int knots, double dt,
                        double phase)
{
    Scenario s;
    s.name = "disturbance-recovery";
    s.q0 = robot.neutralConfiguration();
    s.qd0 = VectorX(robot.nv());
    for (int j = 0; j < robot.nv(); ++j)
        s.qd0[j] = 0.5 * dofWave(j, 1.3 + phase);

    OcpProblem &p = s.problem;
    p.knots = knots;
    p.dt = dt;
    p.wq = 3.0;
    p.wqd = 0.5;
    p.wu = 1e-4;
    p.wq_term = 30.0;
    p.wqd_term = 5.0;
    p.q_ref.assign(knots + 1, s.q0);
    p.qd_ref.assign(knots + 1, VectorX(robot.nv()));
    addGravityCompensation(robot, p);
    return s;
}

Scenario
makeScenario(const RobotModel &robot, int index, int knots, double dt,
             double phase)
{
    switch (((index % kScenarioCount) + kScenarioCount) %
            kScenarioCount) {
      case 0: return makeReachingScenario(robot, knots, dt, phase);
      case 1: return makeGaitScenario(robot, knots, dt, phase);
      default:
        return makeDisturbanceScenario(robot, knots, dt, phase);
    }
}

} // namespace dadu::ctrl
