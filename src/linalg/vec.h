/**
 * @file
 * Fixed-size dense vector types used throughout the Dadu-RBD
 * reproduction.
 *
 * The paper's accelerator (and the rigid-body algorithms it
 * implements) operate almost exclusively on 3-vectors and 6-vectors
 * (spatial motion/force vectors), so these types are kept small,
 * trivially copyable and constexpr-friendly. No external linear
 * algebra dependency is used: the sparsity/constant-folding
 * optimizations of Section IV-A1 of the paper require full control
 * over the scalar operations anyway.
 */

#ifndef DADU_LINALG_VEC_H
#define DADU_LINALG_VEC_H

#include <array>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <initializer_list>

namespace dadu::linalg {

/**
 * Fixed-size column vector of doubles.
 *
 * @tparam N compile-time dimension.
 */
template <std::size_t N>
class Vec
{
  public:
    /** Zero-initialized vector. */
    constexpr Vec() : data_{} {}

    /** Construct from an initializer list of exactly N values. */
    constexpr Vec(std::initializer_list<double> values) : data_{}
    {
        assert(values.size() == N);
        std::size_t i = 0;
        for (double v : values)
            data_[i++] = v;
    }

    /** All-constant vector. */
    static constexpr Vec
    constant(double c)
    {
        Vec v;
        for (std::size_t i = 0; i < N; ++i)
            v[i] = c;
        return v;
    }

    /** Zero vector. */
    static constexpr Vec zero() { return Vec(); }

    /** Unit vector along axis @p i. */
    static constexpr Vec
    unit(std::size_t i)
    {
        Vec v;
        v[i] = 1.0;
        return v;
    }

    constexpr double &operator[](std::size_t i)
    {
        assert(i < N);
        return data_[i];
    }

    constexpr double operator[](std::size_t i) const
    {
        assert(i < N);
        return data_[i];
    }

    static constexpr std::size_t size() { return N; }

    constexpr Vec &
    operator+=(const Vec &o)
    {
        for (std::size_t i = 0; i < N; ++i)
            data_[i] += o.data_[i];
        return *this;
    }

    constexpr Vec &
    operator-=(const Vec &o)
    {
        for (std::size_t i = 0; i < N; ++i)
            data_[i] -= o.data_[i];
        return *this;
    }

    constexpr Vec &
    operator*=(double s)
    {
        for (std::size_t i = 0; i < N; ++i)
            data_[i] *= s;
        return *this;
    }

    constexpr Vec
    operator+(const Vec &o) const
    {
        Vec r = *this;
        r += o;
        return r;
    }

    constexpr Vec
    operator-(const Vec &o) const
    {
        Vec r = *this;
        r -= o;
        return r;
    }

    constexpr Vec
    operator-() const
    {
        Vec r;
        for (std::size_t i = 0; i < N; ++i)
            r[i] = -data_[i];
        return r;
    }

    constexpr Vec
    operator*(double s) const
    {
        Vec r = *this;
        r *= s;
        return r;
    }

    /** Dot product. */
    constexpr double
    dot(const Vec &o) const
    {
        double s = 0.0;
        for (std::size_t i = 0; i < N; ++i)
            s += data_[i] * o.data_[i];
        return s;
    }

    /** Euclidean norm. */
    double norm() const { return std::sqrt(dot(*this)); }

    /** Largest absolute entry; used by approximate-equality tests. */
    constexpr double
    maxAbs() const
    {
        double m = 0.0;
        for (std::size_t i = 0; i < N; ++i)
            m = std::max(m, std::fabs(data_[i]));
        return m;
    }

    constexpr bool
    operator==(const Vec &o) const
    {
        for (std::size_t i = 0; i < N; ++i) {
            if (data_[i] != o.data_[i])
                return false;
        }
        return true;
    }

  private:
    std::array<double, N> data_;
};

template <std::size_t N>
constexpr Vec<N>
operator*(double s, const Vec<N> &v)
{
    return v * s;
}

/** 3-vector (positions, axes, angular/linear parts). */
using Vec3 = Vec<3>;

/** 6-vector (spatial motion or force vector, Plücker coordinates). */
using Vec6 = Vec<6>;

/** 3D cross product a × b. */
constexpr Vec3
cross(const Vec3 &a, const Vec3 &b)
{
    return Vec3{a[1] * b[2] - a[2] * b[1],
                a[2] * b[0] - a[0] * b[2],
                a[0] * b[1] - a[1] * b[0]};
}

/** Concatenate two 3-vectors into a 6-vector [top; bottom]. */
constexpr Vec6
join(const Vec3 &top, const Vec3 &bottom)
{
    return Vec6{top[0], top[1], top[2], bottom[0], bottom[1], bottom[2]};
}

/** Top (angular) half of a 6-vector. */
constexpr Vec3
topHalf(const Vec6 &v)
{
    return Vec3{v[0], v[1], v[2]};
}

/** Bottom (linear) half of a 6-vector. */
constexpr Vec3
bottomHalf(const Vec6 &v)
{
    return Vec3{v[3], v[4], v[5]};
}

} // namespace dadu::linalg

#endif // DADU_LINALG_VEC_H
