/**
 * @file
 * Dynamically sized dense matrix/vector types.
 *
 * Used for joint-space quantities whose dimension depends on the
 * robot: the mass matrix M (N x N), its inverse, and the derivative
 * matrices ∂τ/∂u and ∂q̈/∂u (N x 2N). Row-major storage.
 */

#ifndef DADU_LINALG_MATRIXX_H
#define DADU_LINALG_MATRIXX_H

#include <cassert>
#include <cstddef>
#include <vector>

#include "linalg/vec.h"

namespace dadu::linalg {

/** Dynamically sized column vector of doubles. */
class VectorX
{
  public:
    VectorX() = default;

    /** Zero vector of dimension @p n. */
    explicit VectorX(std::size_t n) : data_(n, 0.0) {}

    VectorX(std::initializer_list<double> values) : data_(values) {}

    static VectorX zero(std::size_t n) { return VectorX(n); }

    double &operator[](std::size_t i)
    {
        assert(i < data_.size());
        return data_[i];
    }

    double operator[](std::size_t i) const
    {
        assert(i < data_.size());
        return data_[i];
    }

    std::size_t size() const { return data_.size(); }

    void resize(std::size_t n) { data_.assign(n, 0.0); }

    VectorX &
    operator+=(const VectorX &o)
    {
        assert(size() == o.size());
        for (std::size_t i = 0; i < size(); ++i)
            data_[i] += o.data_[i];
        return *this;
    }

    VectorX &
    operator-=(const VectorX &o)
    {
        assert(size() == o.size());
        for (std::size_t i = 0; i < size(); ++i)
            data_[i] -= o.data_[i];
        return *this;
    }

    VectorX &
    operator*=(double s)
    {
        for (double &v : data_)
            v *= s;
        return *this;
    }

    VectorX
    operator+(const VectorX &o) const
    {
        VectorX r = *this;
        r += o;
        return r;
    }

    VectorX
    operator-(const VectorX &o) const
    {
        VectorX r = *this;
        r -= o;
        return r;
    }

    VectorX
    operator-() const
    {
        VectorX r = *this;
        for (double &v : r.data_)
            v = -v;
        return r;
    }

    VectorX
    operator*(double s) const
    {
        VectorX r = *this;
        r *= s;
        return r;
    }

    double
    dot(const VectorX &o) const
    {
        assert(size() == o.size());
        double s = 0.0;
        for (std::size_t i = 0; i < size(); ++i)
            s += data_[i] * o.data_[i];
        return s;
    }

    double
    maxAbs() const
    {
        double m = 0.0;
        for (double v : data_)
            m = std::max(m, std::fabs(v));
        return m;
    }

    double norm() const { return std::sqrt(dot(*this)); }

    /** Contiguous slice [begin, begin+len). */
    VectorX
    segment(std::size_t begin, std::size_t len) const
    {
        assert(begin + len <= size());
        VectorX r(len);
        for (std::size_t i = 0; i < len; ++i)
            r[i] = data_[begin + i];
        return r;
    }

    /** Overwrite slice [begin, begin+v.size()). */
    void
    setSegment(std::size_t begin, const VectorX &v)
    {
        assert(begin + v.size() <= size());
        for (std::size_t i = 0; i < v.size(); ++i)
            data_[begin + i] = v[i];
    }

    /** this = a - b without a temporary; reuses existing capacity. */
    void
    setDifference(const VectorX &a, const VectorX &b)
    {
        assert(a.size() == b.size());
        resize(a.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            data_[i] = a[i] - b[i];
    }

    /** In-place negation. */
    void
    negate()
    {
        for (double &v : data_)
            v = -v;
    }

    void setAll(double c) { data_.assign(data_.size(), c); }

  private:
    std::vector<double> data_;
};

inline VectorX
operator*(double s, const VectorX &v)
{
    return v * s;
}

/** Dynamically sized row-major matrix of doubles. */
class MatrixX
{
  public:
    MatrixX() = default;

    /** Zero matrix of @p r rows and @p c columns. */
    MatrixX(std::size_t r, std::size_t c)
        : rows_(r), cols_(c), data_(r * c, 0.0)
    {}

    static MatrixX zero(std::size_t r, std::size_t c)
    {
        return MatrixX(r, c);
    }

    static MatrixX
    identity(std::size_t n)
    {
        MatrixX m(n, n);
        for (std::size_t i = 0; i < n; ++i)
            m(i, i) = 1.0;
        return m;
    }

    double &
    operator()(std::size_t r, std::size_t c)
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    double
    operator()(std::size_t r, std::size_t c) const
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    void
    resize(std::size_t r, std::size_t c)
    {
        rows_ = r;
        cols_ = c;
        data_.assign(r * c, 0.0);
    }

    void setZero() { data_.assign(data_.size(), 0.0); }

    MatrixX &
    operator+=(const MatrixX &o)
    {
        assert(rows_ == o.rows_ && cols_ == o.cols_);
        for (std::size_t i = 0; i < data_.size(); ++i)
            data_[i] += o.data_[i];
        return *this;
    }

    MatrixX &
    operator-=(const MatrixX &o)
    {
        assert(rows_ == o.rows_ && cols_ == o.cols_);
        for (std::size_t i = 0; i < data_.size(); ++i)
            data_[i] -= o.data_[i];
        return *this;
    }

    MatrixX &
    operator*=(double s)
    {
        for (double &v : data_)
            v *= s;
        return *this;
    }

    MatrixX
    operator+(const MatrixX &o) const
    {
        MatrixX r = *this;
        r += o;
        return r;
    }

    MatrixX
    operator-(const MatrixX &o) const
    {
        MatrixX r = *this;
        r -= o;
        return r;
    }

    MatrixX
    operator-() const
    {
        MatrixX r = *this;
        for (double &v : r.data_)
            v = -v;
        return r;
    }

    MatrixX
    operator*(double s) const
    {
        MatrixX r = *this;
        r *= s;
        return r;
    }

    VectorX
    operator*(const VectorX &v) const
    {
        assert(cols_ == v.size());
        VectorX r(rows_);
        for (std::size_t i = 0; i < rows_; ++i) {
            double s = 0.0;
            for (std::size_t j = 0; j < cols_; ++j)
                s += (*this)(i, j) * v[j];
            r[i] = s;
        }
        return r;
    }

    MatrixX
    operator*(const MatrixX &o) const
    {
        assert(cols_ == o.rows_);
        MatrixX r(rows_, o.cols_);
        for (std::size_t i = 0; i < rows_; ++i) {
            for (std::size_t j = 0; j < cols_; ++j) {
                const double a = (*this)(i, j);
                if (a == 0.0)
                    continue;
                for (std::size_t k = 0; k < o.cols_; ++k)
                    r(i, k) += a * o(j, k);
            }
        }
        return r;
    }

    /**
     * out = (*this) * x without allocating in the steady state
     * (@p out is resized, which reuses its capacity). @p out must not
     * alias @p x. Accumulation order matches operator*, so results
     * are bitwise identical to the allocating product.
     */
    void
    multiplyInto(const VectorX &x, VectorX &out) const
    {
        assert(cols_ == x.size() && &x != &out);
        out.resize(rows_);
        for (std::size_t i = 0; i < rows_; ++i) {
            double s = 0.0;
            for (std::size_t j = 0; j < cols_; ++j)
                s += (*this)(i, j) * x[j];
            out[i] = s;
        }
    }

    /**
     * out = (*this) * o without allocating in the steady state.
     * @p out must not alias either operand. Bitwise identical to
     * operator* (same zero-skip accumulation order).
     */
    void
    multiplyInto(const MatrixX &o, MatrixX &out) const
    {
        assert(cols_ == o.rows_ && &o != &out && this != &out);
        out.resize(rows_, o.cols_);
        for (std::size_t i = 0; i < rows_; ++i) {
            for (std::size_t j = 0; j < cols_; ++j) {
                const double a = (*this)(i, j);
                if (a == 0.0)
                    continue;
                for (std::size_t k = 0; k < o.cols_; ++k)
                    out(i, k) += a * o(j, k);
            }
        }
    }

    /**
     * out = (*this) * o restricted to the listed columns of o (and
     * of out): out is resized (zero-filled), then only columns in
     * @p cols are accumulated. Per-column accumulation order matches
     * multiplyInto — the listed columns are bitwise identical to the
     * dense product; all other columns stay exactly 0.0.
     */
    void
    multiplyColsInto(const MatrixX &o, MatrixX &out, const int *cols,
                     std::size_t ncols) const
    {
        assert(cols_ == o.rows_ && &o != &out && this != &out);
        out.resize(rows_, o.cols_);
        for (std::size_t i = 0; i < rows_; ++i) {
            for (std::size_t j = 0; j < cols_; ++j) {
                const double a = (*this)(i, j);
                if (a == 0.0)
                    continue;
                for (std::size_t n = 0; n < ncols; ++n) {
                    const auto k = static_cast<std::size_t>(cols[n]);
                    out(i, k) += a * o(j, k);
                }
            }
        }
    }

    /** In-place negation of the listed columns only. */
    void
    negateCols(const int *cols, std::size_t ncols)
    {
        for (std::size_t i = 0; i < rows_; ++i)
            for (std::size_t n = 0; n < ncols; ++n) {
                double &v = (*this)(i, static_cast<std::size_t>(cols[n]));
                v = -v;
            }
    }

    /**
     * out = (*this)ᵀ · x without allocating in the steady state
     * (@p out is resized, reusing capacity, then accumulated into).
     * @p out must not alias @p x. Same zero-skip accumulation
     * contract as multiplyInto, iterating rows of *this so the
     * row-major storage streams in order.
     */
    void
    transposeMultiplyInto(const VectorX &x, VectorX &out) const
    {
        assert(rows_ == x.size() && &x != &out);
        out.resize(cols_);
        for (std::size_t k = 0; k < rows_; ++k) {
            const double v = x[k];
            if (v == 0.0)
                continue;
            for (std::size_t i = 0; i < cols_; ++i)
                out[i] += (*this)(k, i) * v;
        }
    }

    /**
     * out = (*this)ᵀ · o without allocating in the steady state.
     * @p out must not alias either operand.
     */
    void
    transposeMultiplyInto(const MatrixX &o, MatrixX &out) const
    {
        assert(rows_ == o.rows_ && &o != &out && this != &out);
        out.resize(cols_, o.cols_);
        for (std::size_t k = 0; k < rows_; ++k) {
            for (std::size_t i = 0; i < cols_; ++i) {
                const double v = (*this)(k, i);
                if (v == 0.0)
                    continue;
                for (std::size_t j = 0; j < o.cols_; ++j)
                    out(i, j) += v * o(k, j);
            }
        }
    }

    /** In-place negation of every entry. */
    void
    negate()
    {
        for (double &v : data_)
            v = -v;
    }

    MatrixX
    transpose() const
    {
        MatrixX r(cols_, rows_);
        for (std::size_t i = 0; i < rows_; ++i)
            for (std::size_t j = 0; j < cols_; ++j)
                r(j, i) = (*this)(i, j);
        return r;
    }

    double
    maxAbs() const
    {
        double m = 0.0;
        for (double v : data_)
            m = std::max(m, std::fabs(v));
        return m;
    }

    VectorX
    col(std::size_t c) const
    {
        VectorX v(rows_);
        for (std::size_t i = 0; i < rows_; ++i)
            v[i] = (*this)(i, c);
        return v;
    }

    VectorX
    row(std::size_t r) const
    {
        VectorX v(cols_);
        for (std::size_t j = 0; j < cols_; ++j)
            v[j] = (*this)(r, j);
        return v;
    }

    void
    setCol(std::size_t c, const VectorX &v)
    {
        assert(v.size() == rows_);
        for (std::size_t i = 0; i < rows_; ++i)
            (*this)(i, c) = v[i];
    }

    /** Rectangular block copy of size (h, w) starting at (r, c). */
    MatrixX
    block(std::size_t r, std::size_t c, std::size_t h, std::size_t w) const
    {
        assert(r + h <= rows_ && c + w <= cols_);
        MatrixX m(h, w);
        for (std::size_t i = 0; i < h; ++i)
            for (std::size_t j = 0; j < w; ++j)
                m(i, j) = (*this)(r + i, c + j);
        return m;
    }

    /** Overwrite a block starting at (r, c) with @p m. */
    void
    setBlock(std::size_t r, std::size_t c, const MatrixX &m)
    {
        assert(r + m.rows() <= rows_ && c + m.cols() <= cols_);
        for (std::size_t i = 0; i < m.rows(); ++i)
            for (std::size_t j = 0; j < m.cols(); ++j)
                (*this)(r + i, c + j) = m(i, j);
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

inline MatrixX
operator*(double s, const MatrixX &m)
{
    return m * s;
}

} // namespace dadu::linalg

#endif // DADU_LINALG_MATRIXX_H
