/**
 * @file
 * Dense symmetric factorizations and triangular solves.
 *
 * The paper computes the inverse of the mass matrix either directly
 * (MMinvGen, Algorithm 2) or via Cholesky/LDLT factorization
 * (Section III-A). These routines provide the factorization route,
 * both as a software baseline and as the reference the accelerator
 * results are validated against.
 */

#ifndef DADU_LINALG_FACTORIZE_H
#define DADU_LINALG_FACTORIZE_H

#include "linalg/matrixx.h"

namespace dadu::linalg {

/**
 * Cholesky factorization M = L L^T of a symmetric positive-definite
 * matrix.
 */
class Cholesky
{
  public:
    /**
     * Factorize @p m.
     * @param m symmetric positive-definite matrix.
     */
    explicit Cholesky(const MatrixX &m);

    /** Whether the factorization succeeded (matrix was SPD). */
    bool ok() const { return ok_; }

    /** Lower-triangular factor L. */
    const MatrixX &matrixL() const { return l_; }

    /** Solve M x = b. */
    VectorX solve(const VectorX &b) const;

    /** Solve M X = B column-wise. */
    MatrixX solve(const MatrixX &b) const;

    /** Dense inverse M^-1. */
    MatrixX inverse() const;

  private:
    MatrixX l_;
    bool ok_ = true;
};

/**
 * LDL^T factorization M = L D L^T of a symmetric matrix, with L unit
 * lower-triangular and D diagonal. This is the decomposition named in
 * Section III-A of the paper; it avoids square roots, matching the
 * accelerator's preference for reciprocal-only scalar kernels.
 */
class Ldlt
{
  public:
    explicit Ldlt(const MatrixX &m);

    bool ok() const { return ok_; }

    const MatrixX &matrixL() const { return l_; }
    const VectorX &vectorD() const { return d_; }

    VectorX solve(const VectorX &b) const;
    MatrixX solve(const MatrixX &b) const;
    MatrixX inverse() const;

  private:
    MatrixX l_;
    VectorX d_;
    bool ok_ = true;
};

/** Solve L x = b with L lower-triangular (forward substitution). */
VectorX solveLowerTriangular(const MatrixX &l, const VectorX &b);

/** Solve L^T x = b with L lower-triangular (backward substitution). */
VectorX solveLowerTriangularTransposed(const MatrixX &l, const VectorX &b);

} // namespace dadu::linalg

#endif // DADU_LINALG_FACTORIZE_H
