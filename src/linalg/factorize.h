/**
 * @file
 * Dense symmetric factorizations and triangular solves.
 *
 * The paper computes the inverse of the mass matrix either directly
 * (MMinvGen, Algorithm 2) or via Cholesky/LDLT factorization
 * (Section III-A). These routines provide the factorization route,
 * both as a software baseline and as the reference the accelerator
 * results are validated against.
 */

#ifndef DADU_LINALG_FACTORIZE_H
#define DADU_LINALG_FACTORIZE_H

#include "linalg/matrixx.h"

namespace dadu::linalg {

/**
 * Cholesky factorization M = L L^T of a symmetric positive-definite
 * matrix.
 */
class Cholesky
{
  public:
    /**
     * Factorize @p m.
     * @param m symmetric positive-definite matrix.
     */
    explicit Cholesky(const MatrixX &m);

    /** Whether the factorization succeeded (matrix was SPD). */
    bool ok() const { return ok_; }

    /** Lower-triangular factor L. */
    const MatrixX &matrixL() const { return l_; }

    /** Solve M x = b. */
    VectorX solve(const VectorX &b) const;

    /** Solve M X = B column-wise. */
    MatrixX solve(const MatrixX &b) const;

    /** Dense inverse M^-1. */
    MatrixX inverse() const;

  private:
    MatrixX l_;
    bool ok_ = true;
};

/**
 * LDL^T factorization M = L D L^T of a symmetric matrix, with L unit
 * lower-triangular and D diagonal. This is the decomposition named in
 * Section III-A of the paper; it avoids square roots, matching the
 * accelerator's preference for reciprocal-only scalar kernels.
 */
class Ldlt
{
  public:
    /** Empty factorization; call compute() before use. */
    Ldlt() = default;

    explicit Ldlt(const MatrixX &m);

    /**
     * Refactorize @p m into the existing L/D storage. Reuses the
     * previously allocated capacity, so repeated factorizations of
     * same-sized matrices perform no heap allocation.
     */
    bool compute(const MatrixX &m);

    bool ok() const { return ok_; }

    const MatrixX &matrixL() const { return l_; }
    const VectorX &vectorD() const { return d_; }

    VectorX solve(const VectorX &b) const;
    MatrixX solve(const MatrixX &b) const;
    MatrixX inverse() const;

    /** Solve M x = b overwriting @p b with x; no allocation. */
    void solveInPlace(VectorX &b) const;

    /**
     * Solve M X = B column-wise, overwriting @p b with X; no
     * allocation (the substitutions run directly on the row-major
     * columns). The multi-RHS path of the iLQR backward pass.
     */
    void solveInPlace(MatrixX &b) const;

  private:
    MatrixX l_;
    VectorX d_;
    bool ok_ = false; // false until a compute() succeeds
};

/**
 * LDL^T factorization of a small (n <= 6) SPD matrix with fixed,
 * stack-resident storage — the joint-space D_i blocks of ABA and
 * MMinvGen (Algorithm 2) are at most 6x6 (one per joint, N_i DOF).
 * The whole factor-solve-invert path performs no heap allocation,
 * writing results into caller-provided storage.
 */
class SmallLdlt
{
  public:
    static constexpr int kMaxDim = 6;

    SmallLdlt() = default;

    /** Factorize the n x n row-major matrix @p a (stride n). */
    bool compute(const double *a, int n);

    /** Factorize @p m (must be at most 6x6). */
    bool compute(const MatrixX &m);

    int dim() const { return n_; }
    bool ok() const { return ok_; }

    /**
     * Pivot D(i, i) of the factorization. All pivots positive ⇔ the
     * matrix was positive definite — the check regularized solvers
     * (iLQR's Quu) use to reject indefinite factorizations, matching
     * Ldlt::vectorD().
     */
    double pivot(int i) const { return d_[i]; }

    /** Solve M x = b overwriting the n entries of @p b. */
    void solveInPlace(double *b) const;

    /** Write the n x n inverse into row-major @p out (stride n). */
    void inverseInto(double *out) const;

  private:
    double l_[kMaxDim * kMaxDim] = {};
    double d_[kMaxDim] = {};
    int n_ = 0;
    bool ok_ = false;
};

/** Solve L x = b with L lower-triangular (forward substitution). */
VectorX solveLowerTriangular(const MatrixX &l, const VectorX &b);

/** Solve L^T x = b with L lower-triangular (backward substitution). */
VectorX solveLowerTriangularTransposed(const MatrixX &l, const VectorX &b);

} // namespace dadu::linalg

#endif // DADU_LINALG_FACTORIZE_H
