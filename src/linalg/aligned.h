/**
 * @file
 * Cache-line-aligned allocation for the dynamics arenas.
 *
 * The SoA lane kernels (src/algorithms/soa/) read and write whole
 * lane packs — W doubles per field — with compiler-vectorized loops.
 * Aligning every arena to the 64-byte cache line lets those loops
 * use aligned vector loads/stores and keeps a pack from straddling
 * two lines. The scalar workspace arenas share the allocator: it is
 * harmless for the link-by-link sweeps and means one allocation
 * policy for every per-thread arena.
 */

#ifndef DADU_LINALG_ALIGNED_H
#define DADU_LINALG_ALIGNED_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace dadu::linalg {

/** Allocation alignment of every dynamics arena (one cache line). */
inline constexpr std::size_t kArenaAlign = 64;

/** True when @p p is aligned to @p align bytes. */
inline bool
isAligned(const void *p, std::size_t align = kArenaAlign)
{
    return (reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0;
}

/**
 * Minimal std::allocator drop-in handing out @p Align-aligned
 * blocks via the C++17 aligned operator new. Stateless: all
 * instances compare equal, so containers can propagate it freely.
 */
template <typename T, std::size_t Align = kArenaAlign>
struct AlignedAllocator
{
    using value_type = T;

    static_assert((Align & (Align - 1)) == 0, "alignment must be 2^k");

    AlignedAllocator() = default;

    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &) noexcept
    {}

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    T *
    allocate(std::size_t n)
    {
        const std::size_t align = Align < alignof(T) ? alignof(T) : Align;
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t(align)));
    }

    void
    deallocate(T *p, std::size_t)
    {
        const std::size_t align = Align < alignof(T) ? alignof(T) : Align;
        ::operator delete(p, std::align_val_t(align));
    }

    template <typename U>
    bool
    operator==(const AlignedAllocator<U, Align> &) const noexcept
    {
        return true;
    }
};

/** std::vector whose data() is 64-byte (cache-line) aligned. */
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

} // namespace dadu::linalg

#endif // DADU_LINALG_ALIGNED_H
