/**
 * @file
 * Fixed-size dense matrix types (3x3 and 6x6) for spatial algebra.
 *
 * Row-major storage. These are the workhorse types of the rigid-body
 * algorithms: rotation matrices, spatial transforms expanded to 6x6,
 * rigid-body and articulated-body inertias.
 */

#ifndef DADU_LINALG_MAT_H
#define DADU_LINALG_MAT_H

#include <array>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <initializer_list>

#include "linalg/vec.h"

namespace dadu::linalg {

/**
 * Fixed-size row-major matrix of doubles.
 *
 * @tparam R rows, @tparam C columns.
 */
template <std::size_t R, std::size_t C>
class Mat
{
  public:
    /** Zero-initialized matrix. */
    constexpr Mat() : data_{} {}

    /** Construct from a row-major initializer list of R*C values. */
    constexpr Mat(std::initializer_list<double> values) : data_{}
    {
        assert(values.size() == R * C);
        std::size_t i = 0;
        for (double v : values)
            data_[i++] = v;
    }

    /** Identity (square only meaningful; off-square fills diagonal). */
    static constexpr Mat
    identity()
    {
        Mat m;
        for (std::size_t i = 0; i < R && i < C; ++i)
            m(i, i) = 1.0;
        return m;
    }

    static constexpr Mat zero() { return Mat(); }

    constexpr double &
    operator()(std::size_t r, std::size_t c)
    {
        assert(r < R && c < C);
        return data_[r * C + c];
    }

    constexpr double
    operator()(std::size_t r, std::size_t c) const
    {
        assert(r < R && c < C);
        return data_[r * C + c];
    }

    static constexpr std::size_t rows() { return R; }
    static constexpr std::size_t cols() { return C; }

    constexpr Mat &
    operator+=(const Mat &o)
    {
        for (std::size_t i = 0; i < R * C; ++i)
            data_[i] += o.data_[i];
        return *this;
    }

    constexpr Mat &
    operator-=(const Mat &o)
    {
        for (std::size_t i = 0; i < R * C; ++i)
            data_[i] -= o.data_[i];
        return *this;
    }

    constexpr Mat &
    operator*=(double s)
    {
        for (std::size_t i = 0; i < R * C; ++i)
            data_[i] *= s;
        return *this;
    }

    constexpr Mat
    operator+(const Mat &o) const
    {
        Mat r = *this;
        r += o;
        return r;
    }

    constexpr Mat
    operator-(const Mat &o) const
    {
        Mat r = *this;
        r -= o;
        return r;
    }

    constexpr Mat
    operator-() const
    {
        Mat r;
        for (std::size_t i = 0; i < R * C; ++i)
            r.data_[i] = -data_[i];
        return r;
    }

    constexpr Mat
    operator*(double s) const
    {
        Mat r = *this;
        r *= s;
        return r;
    }

    /** Matrix-vector product. */
    constexpr Vec<R>
    operator*(const Vec<C> &v) const
    {
        Vec<R> r;
        for (std::size_t i = 0; i < R; ++i) {
            double s = 0.0;
            for (std::size_t j = 0; j < C; ++j)
                s += (*this)(i, j) * v[j];
            r[i] = s;
        }
        return r;
    }

    /** Matrix-matrix product. */
    template <std::size_t K>
    constexpr Mat<R, K>
    operator*(const Mat<C, K> &o) const
    {
        Mat<R, K> r;
        for (std::size_t i = 0; i < R; ++i) {
            for (std::size_t k = 0; k < K; ++k) {
                double s = 0.0;
                for (std::size_t j = 0; j < C; ++j)
                    s += (*this)(i, j) * o(j, k);
                r(i, k) = s;
            }
        }
        return r;
    }

    constexpr Mat<C, R>
    transpose() const
    {
        Mat<C, R> r;
        for (std::size_t i = 0; i < R; ++i)
            for (std::size_t j = 0; j < C; ++j)
                r(j, i) = (*this)(i, j);
        return r;
    }

    /** Largest absolute entry; used by approximate-equality tests. */
    constexpr double
    maxAbs() const
    {
        double m = 0.0;
        for (std::size_t i = 0; i < R * C; ++i)
            m = std::max(m, std::fabs(data_[i]));
        return m;
    }

    constexpr bool
    operator==(const Mat &o) const
    {
        for (std::size_t i = 0; i < R * C; ++i) {
            if (data_[i] != o.data_[i])
                return false;
        }
        return true;
    }

    /** Column @p c as a vector. */
    constexpr Vec<R>
    col(std::size_t c) const
    {
        Vec<R> v;
        for (std::size_t i = 0; i < R; ++i)
            v[i] = (*this)(i, c);
        return v;
    }

    /** Row @p r as a vector. */
    constexpr Vec<C>
    row(std::size_t r) const
    {
        Vec<C> v;
        for (std::size_t j = 0; j < C; ++j)
            v[j] = (*this)(r, j);
        return v;
    }

    /** Overwrite column @p c. */
    constexpr void
    setCol(std::size_t c, const Vec<R> &v)
    {
        for (std::size_t i = 0; i < R; ++i)
            (*this)(i, c) = v[i];
    }

  private:
    std::array<double, R * C> data_;
};

template <std::size_t R, std::size_t C>
constexpr Mat<R, C>
operator*(double s, const Mat<R, C> &m)
{
    return m * s;
}

/** 3x3 matrix (rotations, inertia blocks). */
using Mat3 = Mat<3, 3>;

/** 6x6 matrix (expanded spatial transforms and inertias). */
using Mat66 = Mat<6, 6>;

/** Skew-symmetric matrix S(v) such that S(v) w == v × w. */
constexpr Mat3
skew(const Vec3 &v)
{
    return Mat3{0.0, -v[2], v[1],
                v[2], 0.0, -v[0],
                -v[1], v[0], 0.0};
}

/** Outer product a b^T. */
constexpr Mat3
outer(const Vec3 &a, const Vec3 &b)
{
    Mat3 m;
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            m(i, j) = a[i] * b[j];
    return m;
}

/** Rotation about the x axis by angle @p q (frame transform E). */
inline Mat3
rotX(double q)
{
    const double s = std::sin(q), c = std::cos(q);
    return Mat3{1, 0, 0,
                0, c, s,
                0, -s, c};
}

/** Rotation about the y axis by angle @p q (frame transform E). */
inline Mat3
rotY(double q)
{
    const double s = std::sin(q), c = std::cos(q);
    return Mat3{c, 0, -s,
                0, 1, 0,
                s, 0, c};
}

/** Rotation about the z axis by angle @p q (frame transform E). */
inline Mat3
rotZ(double q)
{
    const double s = std::sin(q), c = std::cos(q);
    return Mat3{c, s, 0,
                -s, c, 0,
                0, 0, 1};
}

/**
 * Assemble a 6x6 from four 3x3 blocks
 * [tl tr; bl br].
 */
constexpr Mat66
blocks66(const Mat3 &tl, const Mat3 &tr, const Mat3 &bl, const Mat3 &br)
{
    Mat66 m;
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            m(i, j) = tl(i, j);
            m(i, j + 3) = tr(i, j);
            m(i + 3, j) = bl(i, j);
            m(i + 3, j + 3) = br(i, j);
        }
    }
    return m;
}

} // namespace dadu::linalg

#endif // DADU_LINALG_MAT_H
