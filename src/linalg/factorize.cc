#include "linalg/factorize.h"

#include <cmath>

namespace dadu::linalg {

Cholesky::Cholesky(const MatrixX &m) : l_(m.rows(), m.cols())
{
    assert(m.rows() == m.cols());
    const std::size_t n = m.rows();
    for (std::size_t j = 0; j < n; ++j) {
        double diag = m(j, j);
        for (std::size_t k = 0; k < j; ++k)
            diag -= l_(j, k) * l_(j, k);
        if (diag <= 0.0) {
            ok_ = false;
            return;
        }
        const double ljj = std::sqrt(diag);
        l_(j, j) = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double s = m(i, j);
            for (std::size_t k = 0; k < j; ++k)
                s -= l_(i, k) * l_(j, k);
            l_(i, j) = s / ljj;
        }
    }
}

VectorX
Cholesky::solve(const VectorX &b) const
{
    VectorX y = solveLowerTriangular(l_, b);
    return solveLowerTriangularTransposed(l_, y);
}

MatrixX
Cholesky::solve(const MatrixX &b) const
{
    MatrixX x(b.rows(), b.cols());
    for (std::size_t c = 0; c < b.cols(); ++c)
        x.setCol(c, solve(b.col(c)));
    return x;
}

MatrixX
Cholesky::inverse() const
{
    return solve(MatrixX::identity(l_.rows()));
}

Ldlt::Ldlt(const MatrixX &m) : l_(m.rows(), m.cols()), d_(m.rows())
{
    assert(m.rows() == m.cols());
    const std::size_t n = m.rows();
    for (std::size_t j = 0; j < n; ++j) {
        double dj = m(j, j);
        for (std::size_t k = 0; k < j; ++k)
            dj -= l_(j, k) * l_(j, k) * d_[k];
        if (dj == 0.0) {
            ok_ = false;
            return;
        }
        d_[j] = dj;
        l_(j, j) = 1.0;
        for (std::size_t i = j + 1; i < n; ++i) {
            double s = m(i, j);
            for (std::size_t k = 0; k < j; ++k)
                s -= l_(i, k) * l_(j, k) * d_[k];
            l_(i, j) = s / dj;
        }
    }
}

VectorX
Ldlt::solve(const VectorX &b) const
{
    VectorX y = solveLowerTriangular(l_, b);
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] /= d_[i];
    return solveLowerTriangularTransposed(l_, y);
}

MatrixX
Ldlt::solve(const MatrixX &b) const
{
    MatrixX x(b.rows(), b.cols());
    for (std::size_t c = 0; c < b.cols(); ++c)
        x.setCol(c, solve(b.col(c)));
    return x;
}

MatrixX
Ldlt::inverse() const
{
    return solve(MatrixX::identity(l_.rows()));
}

VectorX
solveLowerTriangular(const MatrixX &l, const VectorX &b)
{
    assert(l.rows() == l.cols() && l.rows() == b.size());
    const std::size_t n = b.size();
    VectorX x(n);
    for (std::size_t i = 0; i < n; ++i) {
        double s = b[i];
        for (std::size_t j = 0; j < i; ++j)
            s -= l(i, j) * x[j];
        x[i] = s / l(i, i);
    }
    return x;
}

VectorX
solveLowerTriangularTransposed(const MatrixX &l, const VectorX &b)
{
    assert(l.rows() == l.cols() && l.rows() == b.size());
    const std::size_t n = b.size();
    VectorX x(n);
    for (std::size_t ii = 0; ii < n; ++ii) {
        const std::size_t i = n - 1 - ii;
        double s = b[i];
        for (std::size_t j = i + 1; j < n; ++j)
            s -= l(j, i) * x[j];
        x[i] = s / l(i, i);
    }
    return x;
}

} // namespace dadu::linalg
