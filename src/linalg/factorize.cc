#include "linalg/factorize.h"

#include <cmath>

namespace dadu::linalg {

Cholesky::Cholesky(const MatrixX &m) : l_(m.rows(), m.cols())
{
    assert(m.rows() == m.cols());
    const std::size_t n = m.rows();
    for (std::size_t j = 0; j < n; ++j) {
        double diag = m(j, j);
        for (std::size_t k = 0; k < j; ++k)
            diag -= l_(j, k) * l_(j, k);
        if (diag <= 0.0) {
            ok_ = false;
            return;
        }
        const double ljj = std::sqrt(diag);
        l_(j, j) = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double s = m(i, j);
            for (std::size_t k = 0; k < j; ++k)
                s -= l_(i, k) * l_(j, k);
            l_(i, j) = s / ljj;
        }
    }
}

VectorX
Cholesky::solve(const VectorX &b) const
{
    VectorX y = solveLowerTriangular(l_, b);
    return solveLowerTriangularTransposed(l_, y);
}

MatrixX
Cholesky::solve(const MatrixX &b) const
{
    MatrixX x(b.rows(), b.cols());
    for (std::size_t c = 0; c < b.cols(); ++c)
        x.setCol(c, solve(b.col(c)));
    return x;
}

MatrixX
Cholesky::inverse() const
{
    return solve(MatrixX::identity(l_.rows()));
}

Ldlt::Ldlt(const MatrixX &m)
{
    compute(m);
}

bool
Ldlt::compute(const MatrixX &m)
{
    assert(m.rows() == m.cols());
    const std::size_t n = m.rows();
    l_.resize(n, n);
    d_.resize(n);
    ok_ = true;
    for (std::size_t j = 0; j < n; ++j) {
        double dj = m(j, j);
        for (std::size_t k = 0; k < j; ++k)
            dj -= l_(j, k) * l_(j, k) * d_[k];
        if (dj == 0.0) {
            ok_ = false;
            return ok_;
        }
        d_[j] = dj;
        l_(j, j) = 1.0;
        for (std::size_t i = j + 1; i < n; ++i) {
            double s = m(i, j);
            for (std::size_t k = 0; k < j; ++k)
                s -= l_(i, k) * l_(j, k) * d_[k];
            l_(i, j) = s / dj;
        }
    }
    return ok_;
}

VectorX
Ldlt::solve(const VectorX &b) const
{
    VectorX y = solveLowerTriangular(l_, b);
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] /= d_[i];
    return solveLowerTriangularTransposed(l_, y);
}

MatrixX
Ldlt::solve(const MatrixX &b) const
{
    MatrixX x(b.rows(), b.cols());
    for (std::size_t c = 0; c < b.cols(); ++c)
        x.setCol(c, solve(b.col(c)));
    return x;
}

MatrixX
Ldlt::inverse() const
{
    return solve(MatrixX::identity(l_.rows()));
}

void
Ldlt::solveInPlace(VectorX &b) const
{
    assert(b.size() == l_.rows());
    const std::size_t n = b.size();
    // Forward substitution with unit-diagonal L.
    for (std::size_t i = 0; i < n; ++i) {
        double s = b[i];
        for (std::size_t j = 0; j < i; ++j)
            s -= l_(i, j) * b[j];
        b[i] = s;
    }
    for (std::size_t i = 0; i < n; ++i)
        b[i] /= d_[i];
    // Backward substitution with L^T.
    for (std::size_t ii = 0; ii < n; ++ii) {
        const std::size_t i = n - 1 - ii;
        double s = b[i];
        for (std::size_t j = i + 1; j < n; ++j)
            s -= l_(j, i) * b[j];
        b[i] = s;
    }
}

void
Ldlt::solveInPlace(MatrixX &b) const
{
    assert(b.rows() == l_.rows());
    const std::size_t n = b.rows();
    const std::size_t m = b.cols();
    for (std::size_t c = 0; c < m; ++c) {
        for (std::size_t i = 0; i < n; ++i) {
            double s = b(i, c);
            for (std::size_t j = 0; j < i; ++j)
                s -= l_(i, j) * b(j, c);
            b(i, c) = s;
        }
        for (std::size_t i = 0; i < n; ++i)
            b(i, c) /= d_[i];
        for (std::size_t ii = 0; ii < n; ++ii) {
            const std::size_t i = n - 1 - ii;
            double s = b(i, c);
            for (std::size_t j = i + 1; j < n; ++j)
                s -= l_(j, i) * b(j, c);
            b(i, c) = s;
        }
    }
}

bool
SmallLdlt::compute(const double *a, int n)
{
    assert(n >= 0 && n <= kMaxDim);
    n_ = n;
    ok_ = true;
    for (int j = 0; j < n; ++j) {
        double dj = a[j * n + j];
        for (int k = 0; k < j; ++k)
            dj -= l_[j * n + k] * l_[j * n + k] * d_[k];
        if (dj == 0.0) {
            ok_ = false;
            return ok_;
        }
        d_[j] = dj;
        l_[j * n + j] = 1.0;
        for (int i = j + 1; i < n; ++i) {
            double s = a[i * n + j];
            for (int k = 0; k < j; ++k)
                s -= l_[i * n + k] * l_[j * n + k] * d_[k];
            l_[i * n + j] = s / dj;
        }
    }
    return ok_;
}

bool
SmallLdlt::compute(const MatrixX &m)
{
    assert(m.rows() == m.cols() &&
           m.rows() <= static_cast<std::size_t>(kMaxDim));
    // MatrixX is row-major and dense, so its data block has exactly
    // the stride compute() expects.
    const int n = static_cast<int>(m.rows());
    double a[kMaxDim * kMaxDim];
    for (int r = 0; r < n; ++r)
        for (int c = 0; c < n; ++c)
            a[r * n + c] = m(r, c);
    return compute(a, n);
}

void
SmallLdlt::solveInPlace(double *b) const
{
    const int n = n_;
    for (int i = 0; i < n; ++i) {
        double s = b[i];
        for (int j = 0; j < i; ++j)
            s -= l_[i * n + j] * b[j];
        b[i] = s;
    }
    for (int i = 0; i < n; ++i)
        b[i] /= d_[i];
    for (int i = n - 1; i >= 0; --i) {
        double s = b[i];
        for (int j = i + 1; j < n; ++j)
            s -= l_[j * n + i] * b[j];
        b[i] = s;
    }
}

void
SmallLdlt::inverseInto(double *out) const
{
    const int n = n_;
    double col[kMaxDim];
    for (int c = 0; c < n; ++c) {
        for (int i = 0; i < n; ++i)
            col[i] = i == c ? 1.0 : 0.0;
        solveInPlace(col);
        for (int r = 0; r < n; ++r)
            out[r * n + c] = col[r];
    }
}

VectorX
solveLowerTriangular(const MatrixX &l, const VectorX &b)
{
    assert(l.rows() == l.cols() && l.rows() == b.size());
    const std::size_t n = b.size();
    VectorX x(n);
    for (std::size_t i = 0; i < n; ++i) {
        double s = b[i];
        for (std::size_t j = 0; j < i; ++j)
            s -= l(i, j) * x[j];
        x[i] = s / l(i, i);
    }
    return x;
}

VectorX
solveLowerTriangularTransposed(const MatrixX &l, const VectorX &b)
{
    assert(l.rows() == l.cols() && l.rows() == b.size());
    const std::size_t n = b.size();
    VectorX x(n);
    for (std::size_t ii = 0; ii < n; ++ii) {
        const std::size_t i = n - 1 - ii;
        double s = b[i];
        for (std::size_t j = i + 1; j < n; ++j)
            s -= l(j, i) * x[j];
        x[i] = s / l(i, i);
    }
    return x;
}

} // namespace dadu::linalg
