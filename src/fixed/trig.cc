#include "fixed/trig.h"

namespace dadu::fixed {

namespace {

/** Taylor sine on a reduced argument |x| <= π/4. */
double
taylorSinReduced(double x, int terms)
{
    // sin x = x - x^3/3! + x^5/5! - ...
    double term = x;
    double sum = x;
    const double x2 = x * x;
    for (int k = 1; k < terms; ++k) {
        term *= -x2 / ((2.0 * k) * (2.0 * k + 1.0));
        sum += term;
    }
    return sum;
}

/** Taylor cosine on a reduced argument |x| <= π/4. */
double
taylorCosReduced(double x, int terms)
{
    // cos x = 1 - x^2/2! + x^4/4! - ...
    double term = 1.0;
    double sum = 1.0;
    const double x2 = x * x;
    for (int k = 1; k < terms; ++k) {
        term *= -x2 / ((2.0 * k - 1.0) * (2.0 * k));
        sum += term;
    }
    return sum;
}

} // namespace

std::pair<double, double>
taylorSinCos(double q, int terms)
{
    // Quadrant reduction: q = r + k·π/2 with |r| ≤ π/4.
    const double x = reduceAngle(q);
    constexpr double half_pi = 0.5 * std::numbers::pi;
    const int k = static_cast<int>(std::lround(x / half_pi));
    const double r = x - k * half_pi;

    const double s = taylorSinReduced(r, terms);
    const double c = taylorCosReduced(r, terms);
    switch (((k % 4) + 4) % 4) {
      case 0: return {s, c};
      case 1: return {c, -s};
      case 2: return {-s, -c};
      default: return {-c, s};
    }
}

} // namespace dadu::fixed
