/**
 * @file
 * Taylor-series trigonometric evaluation — the functional model of
 * the paper's Global Trigonometric Module (Section V-B2).
 *
 * The hardware computes sin q and cos q for every joint up front with
 * an unrolled Taylor expansion; most submodules then consume the
 * precomputed pair. The polynomial degree is a configuration knob so
 * tests can measure the approximation error the accelerator would
 * incur.
 */

#ifndef DADU_FIXED_TRIG_H
#define DADU_FIXED_TRIG_H

#include <cmath>
#include <numbers>
#include <utility>

namespace dadu::fixed {

/**
 * Range-reduce an angle to [-π, π].
 */
inline double
reduceAngle(double q)
{
    constexpr double two_pi = 2.0 * std::numbers::pi;
    double r = std::fmod(q, two_pi);
    if (r > std::numbers::pi)
        r -= two_pi;
    else if (r < -std::numbers::pi)
        r += two_pi;
    return r;
}

/**
 * sin/cos via Taylor expansion of order @p terms (terms pairs of the
 * series, evaluated after quadrant reduction to |x| ≤ π/4 so few
 * terms reach near-single precision, as the loop-unrolled hardware
 * pipeline does).
 */
std::pair<double, double> taylorSinCos(double q, int terms = 6);

} // namespace dadu::fixed

#endif // DADU_FIXED_TRIG_H
