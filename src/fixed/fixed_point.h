/**
 * @file
 * Fixed-point arithmetic for the accelerator datapaths.
 *
 * Section IV-B2 of the paper: the accelerator computes with
 * fixed-point add/sub/mul (cheap on FPGA DSP slices) and handles the
 * reciprocal in MMinvGen by converting to floating point, using the
 * float reciprocal, and converting back. This module reproduces that
 * numeric behaviour so the accelerator's functional results can be
 * validated at the same precision the hardware would deliver.
 *
 * Format: signed 64-bit raw value with a compile-time fractional bit
 * count (Q-format). The default Q34.29 gives ~1e-8 resolution over a
 * ±~8.6e9 range, comfortably covering joint dynamics magnitudes.
 */

#ifndef DADU_FIXED_FIXED_POINT_H
#define DADU_FIXED_FIXED_POINT_H

#include <cmath>
#include <cstdint>

namespace dadu::fixed {

/**
 * Signed fixed-point number with @p FracBits fractional bits.
 */
template <int FracBits>
class FixedPoint
{
  public:
    static constexpr int fracBits = FracBits;
    static constexpr double scale =
        static_cast<double>(std::int64_t{1} << FracBits);

    constexpr FixedPoint() : raw_(0) {}

    /** Quantize a double to the fixed-point grid. */
    explicit FixedPoint(double v)
        : raw_(static_cast<std::int64_t>(std::llround(v * scale)))
    {}

    static constexpr FixedPoint
    fromRaw(std::int64_t raw)
    {
        FixedPoint f;
        f.raw_ = raw;
        return f;
    }

    constexpr std::int64_t raw() const { return raw_; }

    double toDouble() const { return static_cast<double>(raw_) / scale; }

    constexpr FixedPoint
    operator+(const FixedPoint &o) const
    {
        return fromRaw(raw_ + o.raw_);
    }

    constexpr FixedPoint
    operator-(const FixedPoint &o) const
    {
        return fromRaw(raw_ - o.raw_);
    }

    constexpr FixedPoint
    operator-() const
    {
        return fromRaw(-raw_);
    }

    /**
     * Fixed-point multiply: 128-bit intermediate, magnitude
     * truncation toward zero — the documented DSP-truncation
     * behaviour of a multiplier feeding a shifter.
     *
     * Rounding mode, explicitly: the product's fractional tail is
     * DROPPED, i.e. rounded toward zero for either sign, so negation
     * commutes with multiplication: (-a)*b == -(a*b). A bare
     * arithmetic right shift would instead floor negative products
     * (round toward -inf), introducing an asymmetric -1 ULP bias on
     * negative results (pinned by a regression test in
     * tests/test_fixed.cc).
     */
    constexpr FixedPoint
    operator*(const FixedPoint &o) const
    {
        const __int128 p =
            static_cast<__int128>(raw_) * static_cast<__int128>(o.raw_);
        const __int128 t =
            p >= 0 ? (p >> FracBits) : -((-p) >> FracBits);
        return fromRaw(static_cast<std::int64_t>(t));
    }

    constexpr FixedPoint &
    operator+=(const FixedPoint &o)
    {
        raw_ += o.raw_;
        return *this;
    }

    constexpr FixedPoint &
    operator-=(const FixedPoint &o)
    {
        raw_ -= o.raw_;
        return *this;
    }

    constexpr bool operator==(const FixedPoint &o) const = default;

    constexpr bool
    operator<(const FixedPoint &o) const
    {
        return raw_ < o.raw_;
    }

  private:
    std::int64_t raw_;
};

/** The accelerator's default datapath format. */
using Fix = FixedPoint<29>;

/**
 * Float-assisted reciprocal (Section IV-B2 / [48]): convert to
 * float, take the single-precision reciprocal (as the FPGA core
 * would), convert back to fixed point.
 */
template <int F>
FixedPoint<F>
reciprocal(const FixedPoint<F> &x)
{
    const float xf = static_cast<float>(x.toDouble());
    const float rf = 1.0f / xf;
    return FixedPoint<F>(static_cast<double>(rf));
}

/**
 * One Newton-Raphson refinement of the float-assisted reciprocal in
 * fixed point: r' = r (2 - x r). Doubles the effective precision at
 * the cost of two fixed-point multiplies — the optional refinement
 * stage of reciprocal cores in [48].
 */
template <int F>
FixedPoint<F>
reciprocalRefined(const FixedPoint<F> &x)
{
    const FixedPoint<F> r = reciprocal(x);
    const FixedPoint<F> two(2.0);
    return r * (two - x * r);
}

} // namespace dadu::fixed

#endif // DADU_FIXED_FIXED_POINT_H
