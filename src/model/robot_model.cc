#include "model/robot_model.h"

#include <cassert>
#include <numbers>

namespace dadu::model {

RobotModel::RobotModel(std::string name) : name_(std::move(name))
{
    // Featherstone's trick: seed the base acceleration with -g so
    // gravity propagates through the RNEA forward pass. Default
    // gravity is -9.81 along world z.
    gravity_ = linalg::Vec6{0, 0, 0, 0, 0, 9.81};
}

int
RobotModel::addLink(const std::string &name, int parent, JointType joint,
                    const SpatialTransform &xtree,
                    const SpatialInertia &inertia)
{
    assert(parent >= -1 && parent < nb());
    Link l;
    l.name = name;
    l.parent = parent;
    l.joint = joint;
    l.xtree = xtree;
    l.inertia = inertia;
    l.qIndex = nq_;
    l.vIndex = nv_;
    nq_ += jointNq(joint);
    nv_ += jointNv(joint);

    const int id = nb();
    links_.push_back(l);
    subspaces_.push_back(MotionSubspace::forType(joint));
    children_.emplace_back();
    if (parent == -1)
        worldChildren_.push_back(id);
    else
        children_[parent].push_back(id);
    return id;
}

const std::vector<int> &
RobotModel::children(int i) const
{
    if (i == -1)
        return worldChildren_;
    return children_[i];
}

std::vector<int>
RobotModel::subtree(int i) const
{
    // Links are appended parent-first, so a single increasing sweep
    // yields topological order.
    std::vector<int> out;
    std::vector<bool> in_tree(nb(), false);
    in_tree[i] = true;
    out.push_back(i);
    for (int j = i + 1; j < nb(); ++j) {
        const int p = links_[j].parent;
        if (p >= 0 && in_tree[p]) {
            in_tree[j] = true;
            out.push_back(j);
        }
    }
    return out;
}

bool
RobotModel::isAncestorOf(int a, int d) const
{
    while (d != -1) {
        if (d == a)
            return true;
        d = links_[d].parent;
    }
    return false;
}

int
RobotModel::depth(int i) const
{
    int d = 0;
    while (i != -1) {
        ++d;
        i = links_[i].parent;
    }
    return d;
}

int
RobotModel::maxDepth() const
{
    int m = 0;
    for (int i = 0; i < nb(); ++i)
        m = std::max(m, depth(i));
    return m;
}

std::vector<std::vector<int>>
RobotModel::branches() const
{
    std::vector<std::vector<int>> out;
    // Root chain: walk down from the first world child while the
    // chain stays linear.
    std::vector<int> root_chain;
    if (worldChildren_.empty())
        return out;
    int cur = worldChildren_.front();
    while (true) {
        root_chain.push_back(cur);
        if (children_[cur].size() != 1)
            break;
        cur = children_[cur].front();
    }
    out.push_back(root_chain);
    for (int child : children_[root_chain.back()])
        out.push_back(subtree(child));
    return out;
}

VectorX
RobotModel::neutralConfiguration() const
{
    VectorX q(nq_);
    for (int i = 0; i < nb(); ++i) {
        const VectorX jq = jointNeutral(links_[i].joint);
        q.setSegment(links_[i].qIndex, jq);
    }
    return q;
}

VectorX
RobotModel::integrate(const VectorX &q, const VectorX &dv) const
{
    VectorX out;
    integrateInto(q, dv, out);
    return out;
}

void
RobotModel::integrateInto(const VectorX &q, const VectorX &dv,
                          VectorX &out) const
{
    assert(static_cast<int>(q.size()) == nq_);
    assert(static_cast<int>(dv.size()) == nv_);
    assert(&out != &q && &out != &dv);
    out.resize(nq_);
    for (int i = 0; i < nb(); ++i) {
        const Link &l = links_[i];
        jointIntegrateAt(l.joint, q, l.qIndex, dv, l.vIndex, out);
    }
}

VectorX
RobotModel::difference(const VectorX &a, const VectorX &b) const
{
    VectorX out;
    differenceInto(a, b, out);
    return out;
}

void
RobotModel::differenceInto(const VectorX &a, const VectorX &b,
                           VectorX &out) const
{
    assert(static_cast<int>(a.size()) == nq_);
    assert(static_cast<int>(b.size()) == nq_);
    assert(&out != &a && &out != &b);
    out.resize(nv_);
    for (int i = 0; i < nb(); ++i) {
        const Link &l = links_[i];
        jointDifferenceAt(l.joint, a, b, l.qIndex, l.vIndex, out);
    }
}

VectorX
RobotModel::randomConfiguration(std::mt19937 &rng) const
{
    std::uniform_real_distribution<double> angle(-std::numbers::pi,
                                                 std::numbers::pi);
    std::uniform_real_distribution<double> lin(-1.0, 1.0);
    VectorX q = neutralConfiguration();
    for (int i = 0; i < nb(); ++i) {
        const Link &l = links_[i];
        switch (l.joint) {
          case JointType::Spherical:
          case JointType::Floating: {
            // Random tangent step from the neutral quaternion keeps
            // the configuration on the manifold.
            VectorX jq = jointNeutral(l.joint);
            VectorX jv(jointNv(l.joint));
            for (std::size_t k = 0; k < jv.size(); ++k)
                jv[k] = lin(rng);
            q.setSegment(l.qIndex, jointIntegrate(l.joint, jq, jv));
            break;
          }
          case JointType::Translation3: {
            q.setSegment(l.qIndex, VectorX{lin(rng), lin(rng), lin(rng)});
            break;
          }
          default:
            if (isPrismatic(l.joint))
                q.setSegment(l.qIndex, VectorX{lin(rng)});
            else
                q.setSegment(l.qIndex, VectorX{angle(rng)});
        }
    }
    return q;
}

VectorX
RobotModel::randomVelocity(std::mt19937 &rng) const
{
    std::uniform_real_distribution<double> lin(-1.0, 1.0);
    VectorX v(nv_);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = lin(rng);
    return v;
}

SpatialTransform
RobotModel::linkTransform(int i, const VectorX &q) const
{
    const Link &l = links_[i];
    return jointTransformAt(l.joint, q, l.qIndex) * l.xtree;
}

VectorX
RobotModel::jointConfig(int i, const VectorX &q) const
{
    const Link &l = links_[i];
    return q.segment(l.qIndex, jointNq(l.joint));
}

VectorX
RobotModel::jointVelocity(int i, const VectorX &v) const
{
    const Link &l = links_[i];
    return v.segment(l.vIndex, jointNv(l.joint));
}

} // namespace dadu::model
