/**
 * @file
 * Builders for the robot models used throughout the paper.
 *
 * The evaluation robots (Section VI): LBR iiwa, HyQ, and Atlas —
 * matching the robots used by Pinocchio [13] and GRiD [34]. The
 * architecture-walkthrough robots: the quadruped-with-arm of Fig. 3
 * (NB = 19, N = 24), Tiago (mobile arm, Fig. 11a), and Spot-arm
 * (Fig. 11b).
 *
 * Kinematic layouts (joint types, axes, topology) follow the public
 * robot descriptions; masses and inertias are realistic engineering
 * approximations (documented per builder), since the paper's results
 * depend on structure/sparsity rather than on exact inertia values.
 */

#ifndef DADU_MODEL_BUILDERS_H
#define DADU_MODEL_BUILDERS_H

#include "model/robot_model.h"

namespace dadu::model {

/**
 * Serial chain of @p n links connected by revolute joints with
 * alternating z/y axes. Useful for scaling studies and unit tests.
 */
RobotModel makeSerialChain(int n, double link_length = 0.3,
                           double link_mass = 1.0);

/** KUKA LBR iiwa 14: 7-DOF fixed-base serial arm. NB=7, N=7. */
RobotModel makeIiwa();

/**
 * IIT HyQ: floating base + four 3-DOF legs (HAA/HFE/KFE).
 * NB=13, N=18.
 */
RobotModel makeHyq();

/**
 * Boston Dynamics Atlas (humanoid): floating pelvis, 3-joint torso,
 * neck, two 7-DOF arms, two 6-DOF legs. NB=31, N=36.
 */
RobotModel makeAtlas();

/**
 * The quadruped-with-arm of Fig. 3: floating body, four 3-DOF legs
 * and a 6-DOF arm. NB=19, N=24 — the configuration used in
 * Section V-B to demonstrate the architecture.
 */
RobotModel makeQuadrupedArm();

/**
 * PAL Tiago (mobile arm, Fig. 11a): 3-DOF planar base (modeled as a
 * prismatic-x / prismatic-y / revolute-z composite) plus a 7-DOF arm.
 * Linear topology. NB=10, N=10.
 */
RobotModel makeTiago();

/**
 * Boston Dynamics Spot with arm (Fig. 11b): floating body, four
 * symmetric 3-DOF legs, 6-DOF arm. NB=19, N=24.
 */
RobotModel makeSpotArm();

} // namespace dadu::model

#endif // DADU_MODEL_BUILDERS_H
