/**
 * @file
 * Minimal unit-quaternion type for spherical and floating joints.
 *
 * Convention: the quaternion stores the orientation of the child
 * frame in the parent frame, i.e. R(q) rotates child-frame vectors
 * into parent-frame coordinates. The Plücker rotation E used by the
 * spatial transforms is then R^T.
 */

#ifndef DADU_MODEL_QUATERNION_H
#define DADU_MODEL_QUATERNION_H

#include <cmath>

#include "linalg/mat.h"
#include "linalg/vec.h"

namespace dadu::model {

using linalg::Mat3;
using linalg::Vec3;

/** Unit quaternion (x, y, z, w). */
struct Quaternion
{
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;
    double w = 1.0;

    static Quaternion identity() { return {}; }

    /** Quaternion for a rotation of @p angle about unit @p axis. */
    static Quaternion
    fromAxisAngle(const Vec3 &axis, double angle)
    {
        const double h = 0.5 * angle;
        const double s = std::sin(h);
        return {axis[0] * s, axis[1] * s, axis[2] * s, std::cos(h)};
    }

    /** Rotation matrix R: child-frame vectors -> parent frame. */
    Mat3
    toRotation() const
    {
        const double xx = x * x, yy = y * y, zz = z * z;
        const double xy = x * y, xz = x * z, yz = y * z;
        const double wx = w * x, wy = w * y, wz = w * z;
        return Mat3{1 - 2 * (yy + zz), 2 * (xy - wz), 2 * (xz + wy),
                    2 * (xy + wz), 1 - 2 * (xx + zz), 2 * (yz - wx),
                    2 * (xz - wy), 2 * (yz + wx), 1 - 2 * (xx + yy)};
    }

    /** Hamilton product (*this) ∘ other. */
    Quaternion
    operator*(const Quaternion &o) const
    {
        return {w * o.x + x * o.w + y * o.z - z * o.y,
                w * o.y - x * o.z + y * o.w + z * o.x,
                w * o.z + x * o.y - y * o.x + z * o.w,
                w * o.w - x * o.x - y * o.y - z * o.z};
    }

    /** Renormalize to a unit quaternion. */
    void
    normalize()
    {
        const double n = std::sqrt(x * x + y * y + z * z + w * w);
        if (n > 0.0) {
            x /= n;
            y /= n;
            z /= n;
            w /= n;
        }
    }

    /**
     * Right-multiply by the exponential of a body-frame rotation
     * vector: q' = q ∘ exp(ω/2). This is the local-frame integration
     * convention the analytical derivatives are expressed in.
     */
    Quaternion
    integrated(const Vec3 &omega) const
    {
        const double angle = omega.norm();
        Quaternion dq;
        if (angle < 1e-12) {
            dq = {0.5 * omega[0], 0.5 * omega[1], 0.5 * omega[2], 1.0};
        } else {
            const Vec3 axis = omega * (1.0 / angle);
            dq = fromAxisAngle(axis, angle);
        }
        Quaternion r = (*this) * dq;
        r.normalize();
        return r;
    }
};

} // namespace dadu::model

#endif // DADU_MODEL_QUATERNION_H
