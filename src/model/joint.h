/**
 * @file
 * Joint models: types, motion subspaces, joint transforms.
 *
 * Section II of the paper: each joint i has a type with a motion
 * subspace S_i ∈ R^{6×N_i}; for revolute and prismatic joints S_i is
 * a one-hot 6-vector. The transform iXλ(q) has the fixed sparsity the
 * accelerator submodules exploit. This module provides the joint
 * kinematics (jcalc) shared by the reference algorithms and the
 * accelerator's functional model.
 *
 * Multi-DOF joints use body-frame constant motion subspaces
 * (quaternion state for rotations), so Ṡ = 0 in joint coordinates
 * and the bias term of Algorithm 1 is exactly v × S q̇ — the same
 * simplification the paper's RNEA (Algorithm 1) relies on.
 */

#ifndef DADU_MODEL_JOINT_H
#define DADU_MODEL_JOINT_H

#include <cstdint>
#include <string>

#include "linalg/mat.h"
#include "linalg/matrixx.h"
#include "linalg/vec.h"
#include "model/quaternion.h"
#include "spatial/transform.h"

namespace dadu::model {

using linalg::Vec3;
using linalg::Vec6;
using linalg::VectorX;
using spatial::SpatialTransform;

/** Joint types supported by the model (Section II of the paper). */
enum class JointType : std::uint8_t
{
    RevoluteX,    ///< 1-DOF rotation about local x.
    RevoluteY,    ///< 1-DOF rotation about local y.
    RevoluteZ,    ///< 1-DOF rotation about local z.
    PrismaticX,   ///< 1-DOF translation along local x.
    PrismaticY,   ///< 1-DOF translation along local y.
    PrismaticZ,   ///< 1-DOF translation along local z.
    Spherical,    ///< 3-DOF ball joint (quaternion state).
    Translation3, ///< 3-DOF translation.
    Floating,     ///< 6-DOF free joint (position + quaternion state).
};

/** Human-readable joint type name. */
const char *jointTypeName(JointType t);

/** Number of configuration variables (nq) for a joint type. */
int jointNq(JointType t);

/** Number of velocity variables / DOF (nv, the paper's N_i). */
int jointNv(JointType t);

/** True for RevoluteX/Y/Z. */
bool isRevolute(JointType t);

/** True for PrismaticX/Y/Z. */
bool isPrismatic(JointType t);

/**
 * Motion subspace S: 6 x nv, stored as up to six spatial columns.
 * For every supported joint type S is constant in joint coordinates.
 */
class MotionSubspace
{
  public:
    MotionSubspace() : nv_(0) {}

    /** Motion subspace for joint type @p t. */
    static MotionSubspace forType(JointType t);

    int nv() const { return nv_; }

    const Vec6 &col(int i) const { return cols_[i]; }

    /**
     * Index of the single unit entry of column @p i, or -1 when the
     * column is not one-hot. Every joint type in Section II has
     * one-hot subspace columns, which turns S^T f projections and
     * I S e_k products into plain element/column reads — the same
     * constant-folding the paper's submodules apply (Section IV-A1).
     * Results are bitwise identical to the generic dot products.
     */
    int unitAxis(int i) const { return axes_[i]; }

    /** S q̇ for a joint velocity segment (size nv). */
    Vec6
    apply(const VectorX &qdot) const
    {
        Vec6 v;
        for (int i = 0; i < nv_; ++i)
            v += cols_[i] * qdot[i];
        return v;
    }

    /**
     * S q̇ reading the joint's segment directly from a full-robot
     * velocity vector at offset @p vIndex — avoids materializing the
     * segment (the allocation-free path of the workspace algorithms).
     */
    Vec6
    applySegment(const VectorX &full, int vIndex) const
    {
        Vec6 v;
        for (int i = 0; i < nv_; ++i)
            v += cols_[i] * full[vIndex + i];
        return v;
    }

    /** S^T f for a spatial force (size-nv result). */
    VectorX
    applyTranspose(const Vec6 &f) const
    {
        VectorX r(nv_);
        for (int i = 0; i < nv_; ++i)
            r[i] = cols_[i].dot(f);
        return r;
    }

  private:
    int nv_;
    Vec6 cols_[6];
    int axes_[6] = {-1, -1, -1, -1, -1, -1};
};

/**
 * Joint kinematics: compute the joint transform X_J(q) (child joint
 * frame relative to its zero pose) for configuration segment @p q
 * (size nq).
 */
SpatialTransform jointTransform(JointType t, const VectorX &q);

/**
 * Joint transform X_J(q) reading the joint's nq-sized configuration
 * segment directly from the full-robot vector @p q at offset
 * @p qIndex. Identical math to jointTransform without the segment
 * copy (and therefore without its heap allocation).
 */
SpatialTransform jointTransformAt(JointType t, const VectorX &q,
                                  int qIndex);

/**
 * Integrate a joint configuration: q' = q ⊕ (v·1), where @p v is a
 * tangent-space (joint velocity) segment of size nv. Quaternion
 * joints compose on the right (local frame), matching the analytical
 * derivatives.
 */
VectorX jointIntegrate(JointType t, const VectorX &q, const VectorX &v);

/**
 * jointIntegrate reading/writing at offsets into full-robot
 * vectors: the joint's nq segment of @p q at @p qIndex and nv
 * segment of @p v at @p vIndex, result written to @p out at
 * @p qIndex. The single home of the quaternion-integration
 * conventions, shared by RobotModel::integrate/integrateInto;
 * performs no heap allocation.
 */
void jointIntegrateAt(JointType t, const VectorX &q, int qIndex,
                      const VectorX &v, int vIndex, VectorX &out);

/**
 * Tangent-space difference of two joint configurations: the v with
 * a ⊕ v = b under jointIntegrate's conventions (quaternion log map
 * for rotational joints, body-frame linear displacement for the
 * floating joint). Reads the nq segments of @p a and @p b at
 * @p qIndex and writes the nv segment of @p out at @p vIndex;
 * performs no heap allocation.
 */
void jointDifferenceAt(JointType t, const VectorX &a, const VectorX &b,
                       int qIndex, int vIndex, VectorX &out);

/** Neutral (zero) configuration for a joint type (size nq). */
VectorX jointNeutral(JointType t);

} // namespace dadu::model

#endif // DADU_MODEL_JOINT_H
