#include "model/builders.h"

#include <numbers>
#include <string>

namespace dadu::model {

namespace {

using linalg::Mat3;
using linalg::Vec3;

/** Inertia of a solid box about its CoM. */
Mat3
boxInertia(double m, double lx, double ly, double lz)
{
    const double c = m / 12.0;
    Mat3 i;
    i(0, 0) = c * (ly * ly + lz * lz);
    i(1, 1) = c * (lx * lx + lz * lz);
    i(2, 2) = c * (lx * lx + ly * ly);
    return i;
}

/** Inertia of a solid cylinder (axis z) about its CoM. */
Mat3
cylinderInertia(double m, double r, double h)
{
    Mat3 i;
    i(0, 0) = m * (3 * r * r + h * h) / 12.0;
    i(1, 1) = i(0, 0);
    i(2, 2) = 0.5 * m * r * r;
    return i;
}

/** Link modeled as a cylinder extending along +z from the joint. */
SpatialInertia
limbSegment(double m, double r, double len)
{
    return SpatialInertia::fromComInertia(m, Vec3{0, 0, 0.5 * len},
                                          cylinderInertia(m, r, len));
}

/** Compact body (box) centered at the joint frame. */
SpatialInertia
bodyBox(double m, double lx, double ly, double lz,
        const Vec3 &com = Vec3::zero())
{
    return SpatialInertia::fromComInertia(m, com,
                                          boxInertia(m, lx, ly, lz));
}

SpatialTransform
xlate(double x, double y, double z)
{
    return SpatialTransform::translation(Vec3{x, y, z});
}

/**
 * Append a 3-DOF leg (HAA about x, HFE about y, KFE about y) to
 * @p parent at hip offset (@p hx, @p hy, 0). Returns the foot link.
 */
int
addLeg(RobotModel &robot, int parent, const std::string &prefix,
       double hx, double hy, double upper_len, double lower_len,
       double upper_mass, double lower_mass, double hip_mass)
{
    const int haa = robot.addLink(
        prefix + "_haa", parent, JointType::RevoluteX, xlate(hx, hy, 0),
        bodyBox(hip_mass, 0.08, 0.08, 0.08));
    const int hfe = robot.addLink(
        prefix + "_hfe", haa, JointType::RevoluteY, xlate(0, 0, 0),
        SpatialInertia::fromComInertia(
            upper_mass, Vec3{0, 0, -0.5 * upper_len},
            cylinderInertia(upper_mass, 0.04, upper_len)));
    const int kfe = robot.addLink(
        prefix + "_kfe", hfe, JointType::RevoluteY,
        xlate(0, 0, -upper_len),
        SpatialInertia::fromComInertia(
            lower_mass, Vec3{0, 0, -0.5 * lower_len},
            cylinderInertia(lower_mass, 0.03, lower_len)));
    return kfe;
}

/**
 * Append a 6-DOF arm (yaw/pitch/pitch/roll/pitch/roll) to @p parent.
 * Returns the wrist link.
 */
int
addArm6(RobotModel &robot, int parent, const std::string &prefix,
        const Vec3 &mount, double scale = 1.0)
{
    const double l1 = 0.25 * scale, l2 = 0.25 * scale, l3 = 0.2 * scale;
    int id = robot.addLink(prefix + "_j1", parent, JointType::RevoluteZ,
                           SpatialTransform::translation(mount),
                           limbSegment(2.0, 0.05, l1));
    id = robot.addLink(prefix + "_j2", id, JointType::RevoluteY,
                       xlate(0, 0, l1), limbSegment(2.0, 0.05, l2));
    id = robot.addLink(prefix + "_j3", id, JointType::RevoluteY,
                       xlate(0, 0, l2), limbSegment(1.5, 0.04, l3));
    id = robot.addLink(prefix + "_j4", id, JointType::RevoluteX,
                       xlate(0, 0, l3), limbSegment(1.0, 0.04, l3));
    id = robot.addLink(prefix + "_j5", id, JointType::RevoluteY,
                       xlate(0, 0, l3), limbSegment(0.7, 0.03, 0.1));
    id = robot.addLink(prefix + "_j6", id, JointType::RevoluteX,
                       xlate(0, 0, 0.1), limbSegment(0.3, 0.03, 0.08));
    return id;
}

/**
 * Append a 7-DOF anthropomorphic arm (shoulder z/y/x, elbow y,
 * wrist z/y/x). Returns the hand link.
 */
int
addArm7(RobotModel &robot, int parent, const std::string &prefix,
        const Vec3 &mount, double side)
{
    const double lu = 0.30, lf = 0.25;
    int id = robot.addLink(prefix + "_shz", parent, JointType::RevoluteZ,
                           SpatialTransform::translation(mount),
                           bodyBox(1.5, 0.08, 0.08, 0.08));
    id = robot.addLink(prefix + "_shx", id, JointType::RevoluteX,
                       xlate(0, side * 0.05, 0),
                       limbSegment(2.5, 0.05, lu));
    id = robot.addLink(prefix + "_shy", id, JointType::RevoluteY,
                       xlate(0, 0, -0.05),
                       limbSegment(2.0, 0.05, lu));
    id = robot.addLink(prefix + "_el", id, JointType::RevoluteY,
                       xlate(0, 0, -lu), limbSegment(1.5, 0.04, lf));
    id = robot.addLink(prefix + "_wrz", id, JointType::RevoluteZ,
                       xlate(0, 0, -lf), limbSegment(0.8, 0.04, 0.1));
    id = robot.addLink(prefix + "_wry", id, JointType::RevoluteY,
                       xlate(0, 0, -0.1), limbSegment(0.5, 0.03, 0.08));
    id = robot.addLink(prefix + "_wrx", id, JointType::RevoluteX,
                       xlate(0, 0, -0.08), bodyBox(0.4, 0.06, 0.06, 0.06));
    return id;
}

/** Append a 6-DOF humanoid leg (hip z/x/y, knee y, ankle y/x). */
int
addHumanoidLeg(RobotModel &robot, int parent, const std::string &prefix,
               double side)
{
    const double lt = 0.40, ls = 0.40;
    int id = robot.addLink(prefix + "_hpz", parent, JointType::RevoluteZ,
                           xlate(0, side * 0.12, -0.1),
                           bodyBox(1.0, 0.1, 0.1, 0.1));
    id = robot.addLink(prefix + "_hpx", id, JointType::RevoluteX,
                       xlate(0, 0, -0.05), bodyBox(1.0, 0.1, 0.1, 0.1));
    id = robot.addLink(prefix + "_hpy", id, JointType::RevoluteY,
                       xlate(0, 0, -0.05),
                       SpatialInertia::fromComInertia(
                           5.0, Vec3{0, 0, -0.5 * lt},
                           cylinderInertia(5.0, 0.07, lt)));
    id = robot.addLink(prefix + "_kny", id, JointType::RevoluteY,
                       xlate(0, 0, -lt),
                       SpatialInertia::fromComInertia(
                           3.5, Vec3{0, 0, -0.5 * ls},
                           cylinderInertia(3.5, 0.05, ls)));
    id = robot.addLink(prefix + "_aky", id, JointType::RevoluteY,
                       xlate(0, 0, -ls), bodyBox(0.8, 0.08, 0.08, 0.05));
    id = robot.addLink(prefix + "_akx", id, JointType::RevoluteX,
                       xlate(0, 0, -0.05),
                       bodyBox(1.2, 0.22, 0.1, 0.04, Vec3{0.05, 0, -0.03}));
    return id;
}

} // namespace

RobotModel
makeSerialChain(int n, double link_length, double link_mass)
{
    RobotModel robot("chain" + std::to_string(n));
    int parent = -1;
    for (int i = 0; i < n; ++i) {
        const JointType jt =
            (i % 2 == 0) ? JointType::RevoluteZ : JointType::RevoluteY;
        parent = robot.addLink(
            "link" + std::to_string(i + 1), parent, jt,
            xlate(0, 0, i == 0 ? 0.0 : link_length),
            limbSegment(link_mass, 0.04, link_length));
    }
    return robot;
}

RobotModel
makeIiwa()
{
    // Layout per the LBR iiwa 14 R820 datasheet: all joints revolute,
    // axes alternating via fixed frame rotations; link masses from
    // the commonly used iiwa URDF (rounded).
    RobotModel robot("iiwa");
    const double d1 = 0.36, d3 = 0.42, d5 = 0.4, d7 = 0.126;
    int id = robot.addLink("link1", -1, JointType::RevoluteZ,
                           xlate(0, 0, 0.1575),
                           bodyBox(4.0, 0.12, 0.12, 0.2, Vec3{0, -0.03, 0.12}));
    id = robot.addLink("link2", id, JointType::RevoluteY,
                       xlate(0, 0, d1 - 0.1575),
                       bodyBox(4.0, 0.12, 0.12, 0.2, Vec3{0, 0.059, 0.042}));
    id = robot.addLink("link3", id, JointType::RevoluteZ,
                       xlate(0, 0, 0.2045),
                       bodyBox(3.0, 0.1, 0.1, 0.18, Vec3{0, 0.03, 0.13}));
    id = robot.addLink("link4", id, JointType::RevoluteY,
                       xlate(0, 0, d3 - 0.2045),
                       bodyBox(2.7, 0.1, 0.1, 0.16, Vec3{0, 0.067, 0.034}));
    id = robot.addLink("link5", id, JointType::RevoluteZ,
                       xlate(0, 0, 0.1845),
                       bodyBox(1.7, 0.08, 0.08, 0.14, Vec3{0.0001, 0.021, 0.076}));
    id = robot.addLink("link6", id, JointType::RevoluteY,
                       xlate(0, 0, d5 - 0.1845),
                       bodyBox(1.8, 0.08, 0.08, 0.1, Vec3{0, 0.0006, 0.0004}));
    id = robot.addLink("link7", id, JointType::RevoluteZ,
                       xlate(0, 0, d7),
                       bodyBox(0.3, 0.06, 0.06, 0.05, Vec3{0, 0, 0.02}));
    (void)id;
    return robot;
}

RobotModel
makeHyq()
{
    RobotModel robot("hyq");
    const int body = robot.addLink(
        "trunk", -1, JointType::Floating, SpatialTransform::identity(),
        bodyBox(60.0, 1.0, 0.45, 0.25));
    const double hx = 0.37, hy = 0.21;
    addLeg(robot, body, "lf", hx, hy, 0.35, 0.35, 2.9, 1.3, 2.0);
    addLeg(robot, body, "rf", hx, -hy, 0.35, 0.35, 2.9, 1.3, 2.0);
    addLeg(robot, body, "lh", -hx, hy, 0.35, 0.35, 2.9, 1.3, 2.0);
    addLeg(robot, body, "rh", -hx, -hy, 0.35, 0.35, 2.9, 1.3, 2.0);
    return robot;
}

RobotModel
makeAtlas()
{
    RobotModel robot("atlas");
    const int pelvis = robot.addLink(
        "pelvis", -1, JointType::Floating, SpatialTransform::identity(),
        bodyBox(17.0, 0.25, 0.3, 0.2));
    // Torso chain: back_bkz -> back_bky -> back_bkx (utorso).
    const int bkz = robot.addLink("back_bkz", pelvis, JointType::RevoluteZ,
                                  xlate(-0.01, 0, 0.09),
                                  bodyBox(3.0, 0.15, 0.25, 0.1));
    const int bky = robot.addLink("back_bky", bkz, JointType::RevoluteY,
                                  xlate(0, 0, 0.16),
                                  bodyBox(10.0, 0.2, 0.3, 0.2));
    const int bkx = robot.addLink("back_bkx", bky, JointType::RevoluteX,
                                  xlate(0, 0, 0.05),
                                  bodyBox(29.0, 0.3, 0.4, 0.5,
                                          Vec3{-0.02, 0, 0.3}));
    robot.addLink("neck", bkx, JointType::RevoluteY,
                  xlate(0.03, 0, 0.55), bodyBox(1.5, 0.15, 0.15, 0.15));
    addArm7(robot, bkx, "l_arm", Vec3{0.06, 0.23, 0.42}, 1.0);
    addArm7(robot, bkx, "r_arm", Vec3{0.06, -0.23, 0.42}, -1.0);
    addHumanoidLeg(robot, pelvis, "l_leg", 1.0);
    addHumanoidLeg(robot, pelvis, "r_leg", -1.0);
    return robot;
}

RobotModel
makeQuadrupedArm()
{
    RobotModel robot("quadruped_arm");
    const int body = robot.addLink(
        "body", -1, JointType::Floating, SpatialTransform::identity(),
        bodyBox(25.0, 0.8, 0.4, 0.2));
    const double hx = 0.3, hy = 0.17;
    addLeg(robot, body, "lf", hx, hy, 0.3, 0.32, 1.8, 0.9, 1.5);
    addLeg(robot, body, "rf", hx, -hy, 0.3, 0.32, 1.8, 0.9, 1.5);
    addLeg(robot, body, "lh", -hx, hy, 0.3, 0.32, 1.8, 0.9, 1.5);
    addLeg(robot, body, "rh", -hx, -hy, 0.3, 0.32, 1.8, 0.9, 1.5);
    addArm6(robot, body, "arm", Vec3{0.25, 0, 0.1});
    return robot;
}

RobotModel
makeTiago()
{
    // Planar base modeled as a prismatic-x / prismatic-y / revolute-z
    // composite; the first two composite links are massless (the
    // paper keeps the planar joint whole in hardware — Section V-C1 —
    // which is functionally equivalent).
    RobotModel robot("tiago");
    const int bx = robot.addLink("base_x", -1, JointType::PrismaticX,
                                 SpatialTransform::identity(),
                                 SpatialInertia());
    const int by = robot.addLink("base_y", bx, JointType::PrismaticY,
                                 SpatialTransform::identity(),
                                 SpatialInertia());
    const int base = robot.addLink("base", by, JointType::RevoluteZ,
                                   SpatialTransform::identity(),
                                   bodyBox(28.0, 0.5, 0.5, 0.3));
    // 7-DOF arm mounted on the base column.
    const double l1 = 0.15, l2 = 0.22, l3 = 0.22;
    int id = robot.addLink("arm_1", base, JointType::RevoluteZ,
                           xlate(0.16, 0, 0.6), limbSegment(2.0, 0.05, l1));
    id = robot.addLink("arm_2", id, JointType::RevoluteY,
                       xlate(0, 0, l1), limbSegment(2.0, 0.05, l2));
    id = robot.addLink("arm_3", id, JointType::RevoluteZ,
                       xlate(0, 0, l2), limbSegment(1.6, 0.04, l3));
    id = robot.addLink("arm_4", id, JointType::RevoluteY,
                       xlate(0, 0, l3), limbSegment(1.4, 0.04, 0.16));
    id = robot.addLink("arm_5", id, JointType::RevoluteZ,
                       xlate(0, 0, 0.16), limbSegment(1.0, 0.04, 0.15));
    id = robot.addLink("arm_6", id, JointType::RevoluteY,
                       xlate(0, 0, 0.15), limbSegment(0.4, 0.03, 0.08));
    id = robot.addLink("arm_7", id, JointType::RevoluteX,
                       xlate(0, 0, 0.08), bodyBox(0.3, 0.05, 0.05, 0.05));
    (void)id;
    return robot;
}

RobotModel
makeSpotArm()
{
    RobotModel robot("spot_arm");
    const int body = robot.addLink(
        "body", -1, JointType::Floating, SpatialTransform::identity(),
        bodyBox(16.0, 0.85, 0.24, 0.2));
    const double hx = 0.29, hy = 0.11;
    // Symmetric legs: left/right pairs differ only in the sign of the
    // hip lateral offset — the property the SAP time-division
    // multiplexing of Section V-C1 exploits.
    addLeg(robot, body, "fl", hx, hy, 0.32, 0.33, 1.2, 0.6, 1.0);
    addLeg(robot, body, "fr", hx, -hy, 0.32, 0.33, 1.2, 0.6, 1.0);
    addLeg(robot, body, "hl", -hx, hy, 0.32, 0.33, 1.2, 0.6, 1.0);
    addLeg(robot, body, "hr", -hx, -hy, 0.32, 0.33, 1.2, 0.6, 1.0);
    addArm6(robot, body, "arm", Vec3{0.29, 0, 0.1});
    return robot;
}

} // namespace dadu::model
