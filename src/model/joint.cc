#include "model/joint.h"

#include <cassert>

namespace dadu::model {

const char *
jointTypeName(JointType t)
{
    switch (t) {
      case JointType::RevoluteX: return "revolute_x";
      case JointType::RevoluteY: return "revolute_y";
      case JointType::RevoluteZ: return "revolute_z";
      case JointType::PrismaticX: return "prismatic_x";
      case JointType::PrismaticY: return "prismatic_y";
      case JointType::PrismaticZ: return "prismatic_z";
      case JointType::Spherical: return "spherical";
      case JointType::Translation3: return "translation3";
      case JointType::Floating: return "floating";
    }
    return "unknown";
}

int
jointNq(JointType t)
{
    switch (t) {
      case JointType::Spherical: return 4;
      case JointType::Translation3: return 3;
      case JointType::Floating: return 7;
      default: return 1;
    }
}

int
jointNv(JointType t)
{
    switch (t) {
      case JointType::Spherical: return 3;
      case JointType::Translation3: return 3;
      case JointType::Floating: return 6;
      default: return 1;
    }
}

bool
isRevolute(JointType t)
{
    return t == JointType::RevoluteX || t == JointType::RevoluteY ||
           t == JointType::RevoluteZ;
}

bool
isPrismatic(JointType t)
{
    return t == JointType::PrismaticX || t == JointType::PrismaticY ||
           t == JointType::PrismaticZ;
}

MotionSubspace
MotionSubspace::forType(JointType t)
{
    MotionSubspace s;
    s.nv_ = jointNv(t);
    switch (t) {
      case JointType::RevoluteX:
        s.cols_[0] = Vec6::unit(0);
        break;
      case JointType::RevoluteY:
        s.cols_[0] = Vec6::unit(1);
        break;
      case JointType::RevoluteZ:
        s.cols_[0] = Vec6::unit(2);
        break;
      case JointType::PrismaticX:
        s.cols_[0] = Vec6::unit(3);
        break;
      case JointType::PrismaticY:
        s.cols_[0] = Vec6::unit(4);
        break;
      case JointType::PrismaticZ:
        s.cols_[0] = Vec6::unit(5);
        break;
      case JointType::Spherical:
        for (int i = 0; i < 3; ++i)
            s.cols_[i] = Vec6::unit(i);
        break;
      case JointType::Translation3:
        for (int i = 0; i < 3; ++i)
            s.cols_[i] = Vec6::unit(3 + i);
        break;
      case JointType::Floating:
        for (int i = 0; i < 6; ++i)
            s.cols_[i] = Vec6::unit(i);
        break;
    }
    // Detect one-hot columns (true for every current joint type) so
    // the algorithms can fold S projections into element reads.
    for (int c = 0; c < s.nv_; ++c) {
        int axis = -1;
        bool one_hot = true;
        for (int a = 0; a < 6; ++a) {
            const double v = s.cols_[c][a];
            if (v == 0.0)
                continue;
            if (v == 1.0 && axis == -1)
                axis = a;
            else
                one_hot = false;
        }
        s.axes_[c] = one_hot && axis != -1 ? axis : -1;
    }
    return s;
}

SpatialTransform
jointTransform(JointType t, const VectorX &q)
{
    assert(static_cast<int>(q.size()) == jointNq(t));
    return jointTransformAt(t, q, 0);
}

SpatialTransform
jointTransformAt(JointType t, const VectorX &q, int qIndex)
{
    assert(qIndex + jointNq(t) <= static_cast<int>(q.size()));
    const int o = qIndex;
    switch (t) {
      case JointType::RevoluteX:
        return SpatialTransform::rotation(linalg::rotX(q[o]));
      case JointType::RevoluteY:
        return SpatialTransform::rotation(linalg::rotY(q[o]));
      case JointType::RevoluteZ:
        return SpatialTransform::rotation(linalg::rotZ(q[o]));
      case JointType::PrismaticX:
        return SpatialTransform::translation(Vec3{q[o], 0, 0});
      case JointType::PrismaticY:
        return SpatialTransform::translation(Vec3{0, q[o], 0});
      case JointType::PrismaticZ:
        return SpatialTransform::translation(Vec3{0, 0, q[o]});
      case JointType::Spherical: {
        const Quaternion quat{q[o + 0], q[o + 1], q[o + 2], q[o + 3]};
        return SpatialTransform::rotation(quat.toRotation().transpose());
      }
      case JointType::Translation3:
        return SpatialTransform::translation(Vec3{q[o], q[o + 1], q[o + 2]});
      case JointType::Floating: {
        const Quaternion quat{q[o + 3], q[o + 4], q[o + 5], q[o + 6]};
        return SpatialTransform(quat.toRotation().transpose(),
                                Vec3{q[o], q[o + 1], q[o + 2]});
      }
    }
    return SpatialTransform::identity();
}

VectorX
jointIntegrate(JointType t, const VectorX &q, const VectorX &v)
{
    assert(static_cast<int>(q.size()) == jointNq(t));
    assert(static_cast<int>(v.size()) == jointNv(t));
    VectorX out(jointNq(t));
    jointIntegrateAt(t, q, 0, v, 0, out);
    return out;
}

void
jointIntegrateAt(JointType t, const VectorX &q, int qIndex,
                 const VectorX &v, int vIndex, VectorX &out)
{
    assert(qIndex + jointNq(t) <= static_cast<int>(q.size()));
    assert(vIndex + jointNv(t) <= static_cast<int>(v.size()));
    assert(qIndex + jointNq(t) <= static_cast<int>(out.size()));
    const int qi = qIndex;
    const int vi = vIndex;
    switch (t) {
      case JointType::Spherical: {
        const Quaternion quat{q[qi], q[qi + 1], q[qi + 2], q[qi + 3]};
        const Quaternion nq =
            quat.integrated(Vec3{v[vi], v[vi + 1], v[vi + 2]});
        out[qi] = nq.x;
        out[qi + 1] = nq.y;
        out[qi + 2] = nq.z;
        out[qi + 3] = nq.w;
        break;
      }
      case JointType::Floating: {
        const Quaternion quat{q[qi + 3], q[qi + 4], q[qi + 5], q[qi + 6]};
        // Linear displacement is expressed in the body frame; map it
        // to the world frame with R before adding.
        const linalg::Mat3 r = quat.toRotation();
        const Vec3 dp = r * Vec3{v[vi + 3], v[vi + 4], v[vi + 5]};
        const Quaternion nq =
            quat.integrated(Vec3{v[vi], v[vi + 1], v[vi + 2]});
        out[qi] = q[qi] + dp[0];
        out[qi + 1] = q[qi + 1] + dp[1];
        out[qi + 2] = q[qi + 2] + dp[2];
        out[qi + 3] = nq.x;
        out[qi + 4] = nq.y;
        out[qi + 5] = nq.z;
        out[qi + 6] = nq.w;
        break;
      }
      default: {
        const int n = jointNv(t);
        for (int k = 0; k < n; ++k)
            out[qi + k] = q[qi + k] + v[vi + k];
        break;
      }
    }
}

namespace {

/**
 * Rotation vector ω with a.integrated(ω) == b (the log map of
 * conj(a) ∘ b, shortest arc). Inverse of Quaternion::integrated.
 */
Vec3
quaternionDifference(const Quaternion &a, const Quaternion &b)
{
    // conj(a) ∘ b without materializing the conjugate.
    Quaternion rel{a.w * b.x - a.x * b.w - a.y * b.z + a.z * b.y,
                   a.w * b.y + a.x * b.z - a.y * b.w - a.z * b.x,
                   a.w * b.z - a.x * b.y + a.y * b.x - a.z * b.w,
                   a.w * b.w + a.x * b.x + a.y * b.y + a.z * b.z};
    if (rel.w < 0.0) { // shortest arc: q and -q are the same rotation
        rel.x = -rel.x;
        rel.y = -rel.y;
        rel.z = -rel.z;
        rel.w = -rel.w;
    }
    const Vec3 xyz{rel.x, rel.y, rel.z};
    const double sin_half = xyz.norm();
    if (sin_half < 1e-12)
        return xyz * 2.0; // small angle: exp(ω) ≈ (ω/2, 1)
    const double angle = 2.0 * std::atan2(sin_half, rel.w);
    return xyz * (angle / sin_half);
}

} // namespace

void
jointDifferenceAt(JointType t, const VectorX &a, const VectorX &b,
                  int qIndex, int vIndex, VectorX &out)
{
    assert(qIndex + jointNq(t) <= static_cast<int>(a.size()));
    assert(qIndex + jointNq(t) <= static_cast<int>(b.size()));
    assert(vIndex + jointNv(t) <= static_cast<int>(out.size()));
    const int qi = qIndex;
    const int vi = vIndex;
    switch (t) {
      case JointType::Spherical: {
        const Quaternion qa{a[qi], a[qi + 1], a[qi + 2], a[qi + 3]};
        const Quaternion qb{b[qi], b[qi + 1], b[qi + 2], b[qi + 3]};
        const Vec3 w = quaternionDifference(qa, qb);
        out[vi] = w[0];
        out[vi + 1] = w[1];
        out[vi + 2] = w[2];
        break;
      }
      case JointType::Floating: {
        const Quaternion qa{a[qi + 3], a[qi + 4], a[qi + 5], a[qi + 6]};
        const Quaternion qb{b[qi + 3], b[qi + 4], b[qi + 5], b[qi + 6]};
        const Vec3 w = quaternionDifference(qa, qb);
        // integrate adds R_a·v_lin in the world frame, so the
        // difference maps the world displacement back to a's frame.
        const Vec3 dp{b[qi] - a[qi], b[qi + 1] - a[qi + 1],
                      b[qi + 2] - a[qi + 2]};
        const Vec3 v = qa.toRotation().transpose() * dp;
        out[vi] = w[0];
        out[vi + 1] = w[1];
        out[vi + 2] = w[2];
        out[vi + 3] = v[0];
        out[vi + 4] = v[1];
        out[vi + 5] = v[2];
        break;
      }
      default: {
        const int n = jointNv(t);
        for (int k = 0; k < n; ++k)
            out[vi + k] = b[qi + k] - a[qi + k];
        break;
      }
    }
}

VectorX
jointNeutral(JointType t)
{
    switch (t) {
      case JointType::Spherical:
        return VectorX{0, 0, 0, 1};
      case JointType::Translation3:
        return VectorX{0, 0, 0};
      case JointType::Floating:
        return VectorX{0, 0, 0, 0, 0, 0, 1};
      default:
        return VectorX{0};
    }
}

} // namespace dadu::model
